// wlgen inspects and exports the trace-derived workloads: it prints the
// flow-size CDF at the paper's bucket edges, the analytic mean, and can
// emit a generated arrival trace as CSV for external tools.
//
// Examples:
//
//	wlgen -wl hadoop                 # distribution summary
//	wlgen -wl websearch -trace -ms 2 # CSV arrival trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	wl := flag.String("wl", "websearch", "workload: websearch | hadoop")
	file := flag.String("file", "", "load a custom CDF file (HPCC artifact format: 'bytes cum' lines)")
	export := flag.Bool("export", false, "print the distribution in CDF-file format")
	trace := flag.Bool("trace", false, "emit a generated arrival trace as CSV")
	hosts := flag.Int("hosts", 128, "host count for trace generation")
	ms := flag.Float64("ms", 1, "trace horizon, milliseconds")
	load := flag.Float64("load", 0.5, "trace load")
	seed := flag.Int64("seed", 1, "trace seed")
	flag.Parse()

	var cdf *workload.CDF
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wlgen:", err)
			os.Exit(1)
		}
		cdf, err = workload.ParseCDF(*file, f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "wlgen:", err)
			os.Exit(1)
		}
	} else {
		var ok bool
		cdf, ok = workload.ByName(*wl)
		if !ok {
			fmt.Fprintf(os.Stderr, "wlgen: unknown workload %q\n", *wl)
			os.Exit(2)
		}
	}
	if *export {
		fmt.Print(workload.FormatCDF(cdf))
		return
	}

	if !*trace {
		fmt.Printf("workload %s: mean %.0fB, min %dB, max %dB\n",
			cdf.Name(), cdf.MeanBytes(), cdf.MinBytes(), cdf.MaxBytes())
		fmt.Println("quantile  size_bytes")
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0} {
			fmt.Printf("%8.2f  %10d\n", q, cdf.Quantile(q))
		}
		return
	}

	flows, err := workload.Generate(workload.GenConfig{
		Hosts:     *hosts,
		AccessBps: 100e9,
		Load:      *load,
		CDF:       cdf,
		Horizon:   sim.FromSeconds(*ms / 1000),
		Seed:      *seed,
		FirstID:   1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlgen:", err)
		os.Exit(1)
	}
	fmt.Printf("# %s trace: %d flows, offered load %.3f\n",
		cdf.Name(), len(flows),
		workload.OfferedLoad(flows, *hosts, 100e9, sim.FromSeconds(*ms/1000)))
	fmt.Println("id,src,dst,bytes,start_us")
	for _, f := range flows {
		fmt.Printf("%d,%d,%d,%d,%.3f\n", f.ID, f.SrcHost, f.DstHost, f.SizeBytes, f.Start.Micros())
	}
}
