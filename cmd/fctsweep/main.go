// fctsweep regenerates the paper's Figs 14 and 15: FCT slowdown tables
// (average / median / p95 / p99 per flow-size bucket) on a k-ary fat-tree
// under WebSearch or FB_Hadoop traffic, repeated over seeds and averaged —
// §5.5's methodology. Paper scale is -k 8 -ms 10+ -seeds 5; defaults are
// sized for a laptop run.
//
// Example:
//
//	fctsweep -wl websearch -k 8 -ms 5 -seeds 3 -load 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/exp"
	"repro/internal/sim"
)

func main() {
	wl := flag.String("wl", "websearch", "workload: websearch | hadoop")
	k := flag.Int("k", 8, "fat-tree arity (paper: 8 -> 128 hosts)")
	ms := flag.Float64("ms", 2, "arrival horizon, milliseconds")
	load := flag.Float64("load", 0.5, "average access-link load")
	seeds := flag.Int("seeds", 2, "number of repetitions (paper: 5)")
	schemes := flag.String("schemes", "DCQCN,HPCC,FNCC", "comma-separated schemes")
	flag.Parse()

	var names []string
	start := 0
	s := *schemes
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				names = append(names, s[start:i])
			}
			start = i + 1
		}
	}

	base := exp.DefaultFCTConfig(exp.SchemeFNCC, *wl)
	base.K = *k
	base.Horizon = sim.FromSeconds(*ms / 1000)
	base.Load = *load

	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = int64(i + 1)
	}

	fmt.Printf("fat-tree k=%d (%d hosts), %s @ %.0f%% load, %.1fms arrivals, %d seeds\n",
		*k, (*k)*(*k)*(*k)/4, *wl, 100**load, *ms, *seeds)
	t0 := time.Now()
	merged, runs, err := exp.RunFCTSweep(base, names, seedList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fctsweep:", err)
		os.Exit(1)
	}
	for _, r := range runs {
		fmt.Printf("  %-6s seed %d: %6d/%6d flows done, offered load %.2f, %d pauses, %d drops\n",
			r.Scheme, r.Seed, r.Completed, r.Generated, r.OfferedLoad, r.PauseFrames, r.Drops)
	}
	fmt.Printf("  wall time %.1fs\n", time.Since(t0).Seconds())

	tables, err := exp.FormatFCTTables(*wl, merged, names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fctsweep:", err)
		os.Exit(1)
	}
	fmt.Println(tables)
	fmt.Println(exp.FormatHeadlines(*wl, merged))
}
