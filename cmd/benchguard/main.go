// Command benchguard turns `go test -bench -benchmem` output into a
// machine-readable perf snapshot and enforces allocation budgets, so CI
// fails when a change regresses the allocation-free hot paths.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | tee bench.txt
//	go run ./cmd/benchguard -in bench.txt -out BENCH_2.json \
//	    -max BenchmarkEngineScheduleFire=0 -max BenchmarkOneHopForward=0
//
// Each -max NAME=N asserts the named benchmark reports at most N allocs/op;
// a named benchmark missing from the input is also an error (a silently
// skipped guard is a disabled guard).
//
// A benchmark appearing more than once (go test -count N) keeps its
// fastest run — best-of-N is the standard scheduler-noise filter, and it
// is what makes tight ratio gates usable on shared CI machines.
//
// Derived metrics: -ratio NAME=NUM/DEN records NUM's ns/op divided by DEN's
// (e.g. the packet-vs-fluid wall-clock speedup of the same experiment), and
// -min NAME=V fails the run when the named ratio falls below V — the guard
// that keeps "the fluid backend is two orders of magnitude faster" a tested
// property instead of a README claim. -maxratio NAME=V is the other
// direction: fail when the ratio exceeds V, which is how the telemetry
// overhead bound ("probes cost under 5%") is enforced.
//
// The JSON output groups parsed benchmarks (keyed by name, CPU-count suffix
// stripped) with the computed ratios, suitable for committing as the
// perf-trajectory point of a PR:
//
//	{"benchmarks": {"BenchmarkX": {...}}, "ratios": {"fluid_speedup": 123.4}}
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Point is one benchmark's parsed result.
type Point struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchLine matches "BenchmarkName-8  123  45.6 ns/op  7 B/op  8 allocs/op";
// the -benchmem columns are optional so plain -bench output still parses.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

type maxFlags map[string]int64

func (m maxFlags) String() string { return fmt.Sprint(map[string]int64(m)) }

func (m maxFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want NAME=ALLOCS, got %q", s)
	}
	n, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return fmt.Errorf("bad allocs bound %q: %w", val, err)
	}
	m[name] = n
	return nil
}

func parse(r io.Reader) (map[string]Point, error) {
	out := map[string]Point{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		match := benchLine.FindStringSubmatch(sc.Text())
		if match == nil {
			continue
		}
		p := Point{}
		p.Iterations, _ = strconv.ParseInt(match[2], 10, 64)
		p.NsPerOp, _ = strconv.ParseFloat(match[3], 64)
		if match[4] != "" {
			p.BytesPerOp, _ = strconv.ParseInt(match[4], 10, 64)
			p.AllocsPerOp, _ = strconv.ParseInt(match[5], 10, 64)
		}
		if prev, ok := out[match[1]]; ok && prev.NsPerOp <= p.NsPerOp {
			continue // -count N repeats: keep the fastest run
		}
		out[match[1]] = p
	}
	return out, sc.Err()
}

// ratioFlags collects -ratio NAME=NUM/DEN definitions.
type ratioFlags map[string][2]string

func (r ratioFlags) String() string { return fmt.Sprint(map[string][2]string(r)) }

func (r ratioFlags) Set(s string) error {
	name, expr, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want NAME=NUM/DEN, got %q", s)
	}
	num, den, ok := strings.Cut(expr, "/")
	if !ok || num == "" || den == "" {
		return fmt.Errorf("want NAME=NUM/DEN, got %q", s)
	}
	r[name] = [2]string{num, den}
	return nil
}

type minFlags map[string]float64

func (m minFlags) String() string { return fmt.Sprint(map[string]float64(m)) }

func (m minFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want NAME=MIN, got %q", s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("bad ratio bound %q: %w", val, err)
	}
	m[name] = v
	return nil
}

// snapshot is the JSON output: parsed benchmarks plus derived ratios.
type snapshot struct {
	Benchmarks map[string]Point   `json:"benchmarks"`
	Ratios     map[string]float64 `json:"ratios,omitempty"`
}

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "JSON snapshot to write (default: none)")
	limits := maxFlags{}
	flag.Var(limits, "max", "NAME=ALLOCS allocs/op budget; repeatable")
	ratios := ratioFlags{}
	flag.Var(ratios, "ratio", "NAME=NUM/DEN ns/op ratio to derive; repeatable")
	mins := minFlags{}
	flag.Var(mins, "min", "NAME=V minimum for a derived ratio; repeatable")
	maxRatios := minFlags{}
	flag.Var(maxRatios, "maxratio", "NAME=V maximum for a derived ratio; repeatable")
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	points, err := parse(src)
	if err != nil {
		fatal(err)
	}
	if len(points) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}

	derived := map[string]float64{}
	rnames := make([]string, 0, len(ratios))
	for name := range ratios {
		rnames = append(rnames, name)
	}
	sort.Strings(rnames)
	failed := false
	for _, name := range rnames {
		nd := ratios[name]
		num, okN := points[nd[0]]
		den, okD := points[nd[1]]
		switch {
		case !okN || !okD:
			fmt.Fprintf(os.Stderr, "benchguard: ratio %s: benchmark missing from input (%s, %s)\n",
				name, nd[0], nd[1])
			failed = true
			continue
		case den.NsPerOp == 0:
			fmt.Fprintf(os.Stderr, "benchguard: ratio %s: zero denominator %s\n", name, nd[1])
			failed = true
			continue
		}
		derived[name] = num.NsPerOp / den.NsPerOp
	}
	for name := range mins {
		if _, ok := ratios[name]; !ok {
			fmt.Fprintf(os.Stderr, "benchguard: -min %s has no matching -ratio\n", name)
			failed = true
		}
	}
	for name := range maxRatios {
		if _, ok := ratios[name]; !ok {
			fmt.Fprintf(os.Stderr, "benchguard: -maxratio %s has no matching -ratio\n", name)
			failed = true
		}
	}
	for _, name := range rnames {
		v, ok := derived[name]
		if !ok {
			continue
		}
		status := ""
		if minV, bounded := mins[name]; bounded {
			status = "ok"
			if v < minV {
				status = "REGRESSION"
				failed = true
			}
			status = fmt.Sprintf("(min %g) %s", minV, status)
		}
		if maxV, bounded := maxRatios[name]; bounded {
			s := "ok"
			if v > maxV {
				s = "REGRESSION"
				failed = true
			}
			status = strings.TrimSpace(status + fmt.Sprintf(" (max %g) %s", maxV, s))
		}
		fmt.Printf("%-40s %10.1fx %s\n", "ratio:"+name, v, status)
	}

	if *out != "" {
		data, err := json.MarshalIndent(snapshot{Benchmarks: points, Ratios: derived}, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	names := make([]string, 0, len(limits))
	for name := range limits {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		budget := limits[name]
		p, ok := points[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: %s missing from input (guard cannot run)\n", name)
			failed = true
			continue
		}
		status := "ok"
		if p.AllocsPerOp > budget {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-40s %8.1f ns/op %6d allocs/op (budget %d) %s\n",
			name, p.NsPerOp, p.AllocsPerOp, budget, status)
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
