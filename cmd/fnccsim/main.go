// fnccsim regenerates the paper's micro-benchmark figures from the command
// line. Subcommands map to DESIGN.md's experiment index:
//
//	fnccsim micro    — Figs 1b-d / 9: dumbbell queue, rates, utilization
//	fnccsim pfc      — Fig 3: PFC pause frames at 200/400G
//	fnccsim hoploc   — Fig 13a-d: congestion location gains (± LHCS)
//	fnccsim fairness — Fig 13e: staggered fairness
//	fnccsim notify   — Fig 2/12: notification latency matrix
//
// Use -csv to dump raw time series for re-plotting.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "micro":
		err = cmdMicro(os.Args[2:])
	case "pfc":
		err = cmdPFC(os.Args[2:])
	case "hoploc":
		err = cmdHopLoc(os.Args[2:])
	case "fairness":
		err = cmdFairness(os.Args[2:])
	case "notify":
		err = cmdNotify(os.Args[2:])
	case "incast":
		err = cmdIncast(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "fnccsim: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fnccsim:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fnccsim <micro|pfc|hoploc|fairness|notify|incast> [flags]
Run 'fnccsim <subcommand> -h' for flags.`)
}

func cmdMicro(args []string) error {
	fs := flag.NewFlagSet("micro", flag.ExitOnError)
	rate := fs.Int64("rate", 100, "link rate in Gbps (paper: 100/200/400)")
	durUs := fs.Int("us", 1200, "observation window, microseconds")
	senders := fs.Int("senders", 2, "number of elephant senders")
	csv := fs.Bool("csv", false, "dump queue/rate/util time series as CSV")
	schemes := fs.String("schemes", "FNCC,HPCC,DCQCN,RoCC", "comma-separated schemes")
	fs.Parse(args)

	names := splitSchemes(*schemes)
	rs, err := exp.RunMicroAll(names, *rate*1e9, func(c *exp.MicroConfig) {
		c.Duration = sim.Time(*durUs) * sim.Microsecond
		c.Senders = *senders
	})
	if err != nil {
		return err
	}
	fmt.Print(exp.FormatMicroTable(*rate*1e9, rs))
	if *csv {
		for _, r := range rs {
			fmt.Println(r.Queue.CSV())
			fmt.Println(r.Util.CSV())
			for _, s := range r.Rates {
				fmt.Println(s.CSV())
			}
		}
	}
	return nil
}

func cmdPFC(args []string) error {
	fs := flag.NewFlagSet("pfc", flag.ExitOnError)
	durUs := fs.Int("us", 1200, "observation window, microseconds")
	pauseKB := fs.Int64("pausekb", 500, "PFC pause threshold, KB")
	fs.Parse(args)

	fmt.Println("PFC pause frames at the congestion point (Fig 3)")
	for _, rate := range []int64{200e9, 400e9} {
		rs, err := exp.RunMicroAll([]string{exp.SchemeDCQCN, exp.SchemeHPCC, exp.SchemeFNCC},
			rate, func(c *exp.MicroConfig) {
				c.Duration = sim.Time(*durUs) * sim.Microsecond
				c.PFCPauseBytes = *pauseKB << 10
			})
		if err != nil {
			return err
		}
		fmt.Printf("\n@%dGbps:\n", rate/1e9)
		for _, r := range rs {
			fmt.Printf("  %-8s pause frames: %d  (resumes: %d, queue peak %.0fKB)\n",
				r.Scheme, r.PauseFrames, r.ResumeFrames, r.QueuePeak/1000)
		}
	}
	return nil
}

func cmdHopLoc(args []string) error {
	fs := flag.NewFlagSet("hoploc", flag.ExitOnError)
	hop := fs.String("hop", "all", "first|middle|last|all")
	rates := fs.Bool("rates", false, "dump flow-rate series (Fig 13d)")
	fs.Parse(args)

	positions := []exp.HopPosition{exp.HopFirst, exp.HopMiddle, exp.HopLast}
	if *hop != "all" {
		positions = []exp.HopPosition{exp.HopPosition(*hop)}
	}
	var results []*exp.HopResult
	for _, pos := range positions {
		schemes := []string{exp.SchemeHPCC, exp.SchemeFNCC}
		if pos == exp.HopLast {
			schemes = append(schemes, exp.SchemeFNCCNoLHCS)
		}
		for _, s := range schemes {
			r, err := exp.RunHop(exp.DefaultHopConfig(s, pos))
			if err != nil {
				return err
			}
			results = append(results, r)
			if *rates {
				fmt.Println(r.Rates[0].CSV())
				fmt.Println(r.Rates[1].CSV())
			}
		}
	}
	fmt.Print(exp.FormatHopTable(results))
	return nil
}

func cmdFairness(args []string) error {
	fs := flag.NewFlagSet("fairness", flag.ExitOnError)
	scheme := fs.String("scheme", exp.SchemeFNCC, "scheme under test")
	staggerUs := fs.Int("stagger", 1000, "per-flow stagger, microseconds (paper: 100ms)")
	senders := fs.Int("senders", 4, "number of staggered senders")
	csv := fs.Bool("csv", false, "dump per-flow goodput series")
	fs.Parse(args)

	cfg := exp.DefaultFairnessConfig(*scheme)
	cfg.Stagger = sim.Time(*staggerUs) * sim.Microsecond
	cfg.Senders = *senders
	r, err := exp.RunFairness(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("fairness (%s, %d senders, %v stagger): Jain index %.4f during full overlap\n",
		r.Scheme, *senders, cfg.Stagger, r.JainAllActive)
	if *csv {
		for _, s := range r.Goodput {
			fmt.Println(s.CSV())
		}
	}
	return nil
}

func cmdNotify(args []string) error {
	fs := flag.NewFlagSet("notify", flag.ExitOnError)
	rate := fs.Int64("rate", 100, "link rate in Gbps")
	fs.Parse(args)

	cfg := exp.DefaultNotifyConfig()
	cfg.RateBps = *rate * 1e9
	rows, err := exp.RunNotify(cfg)
	if err != nil {
		return err
	}
	fmt.Print(exp.FormatNotifyTable(rows))
	return nil
}

func cmdIncast(args []string) error {
	fs := flag.NewFlagSet("incast", flag.ExitOnError)
	fanout := fs.Int("fanout", 16, "number of simultaneous senders")
	mb := fs.Int64("mb", 2, "megabytes per sender")
	schemes := fs.String("schemes", "FNCC,FNCC-noLHCS,HPCC,DCQCN", "comma-separated schemes")
	fs.Parse(args)

	var rs []*exp.IncastResult
	for _, s := range splitSchemes(*schemes) {
		cfg := exp.DefaultIncastConfig(s)
		cfg.Fanout = *fanout
		cfg.BytesPerSender = *mb << 20
		r, err := exp.RunIncast(cfg)
		if err != nil {
			return err
		}
		rs = append(rs, r)
	}
	fmt.Print(exp.FormatIncastTable(rs))
	return nil
}

func splitSchemes(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
