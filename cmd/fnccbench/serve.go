package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/sweepd"
)

// cmdServe runs the long-running sweep service: POST sweeps, stream
// results, share one content-addressed cache and one worker pool across
// every client. SIGINT/SIGTERM drain gracefully — in-flight points finish
// and write their cache entries, queued points are skipped — so a
// restarted server resumes interrupted sweeps from cache.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", ":8080", "address to serve the sweep API on")
	cache := fs.String("cache", ".fnccbench", "result cache directory shared across restarts (empty disables)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	logMode := fs.String("log", "text", "status log format: text|json|off")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight jobs on shutdown")
	fs.Parse(args)

	env, err := setupObs(*logMode, "")
	if err != nil {
		return err
	}
	runner := &harness.Runner{CacheDir: *cache, Workers: *workers,
		Obs: env.reg, Tracer: env.tracer}
	srv, err := sweepd.New(sweepd.Config{
		Runner:  runner,
		Workers: *workers,
		Logger:  env.logger,
		Reg:     env.reg,
		Tracer:  env.tracer,
	})
	if err != nil {
		return err
	}

	l, err := obs.Listen(*listen)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	env.logger.Info("sweep server listening", "addr", l.Addr().String(),
		"cache", *cache, "endpoints", "POST /sweeps  GET /sweeps/{id}/results  /progress  /debug/vars")

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(l) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errCh:
		return err
	}
	stop()
	env.logger.Info("shutting down", "drain_timeout", *drainTimeout)
	// Refuse new work and let in-flight jobs cache their results before the
	// HTTP listener closes, so streaming clients see every finished point.
	drainErr := srv.Drain(*drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	env.logger.Info("sweep server stopped")
	return drainErr
}

// cmdSubmit posts a sweep to a running server and prints the sweep id and
// results path; with -watch it stays attached and streams the points.
func cmdSubmit(args []string) error {
	if len(args) < 1 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("submit needs a scenario name or spec file first")
	}
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "sweep server base URL")
	schemes := fs.String("schemes", "", "comma-separated scheme names")
	backend := fs.String("backend", "", "simulation backend for every point: packet|fluid")
	backends := fs.String("backends", "", "comma-separated backends to sweep as a grid dimension")
	seeds := fs.String("seeds", "", "comma-separated int64 seeds")
	loads := fs.String("loads", "", "comma-separated target loads")
	sizes := fs.String("sizes", "", "comma-separated topology sizes (K / senders / fanout)")
	watch := fs.Bool("watch", false, "stay attached and stream the results as they land")
	fs.Parse(args[1:])

	base, err := resolve(args[0])
	if err != nil {
		return err
	}
	if *backend != "" {
		base.Backend = *backend
	}
	grid, err := parseGrid(*schemes, *backends, *seeds, *loads, *sizes)
	if err != nil {
		return err
	}
	body, err := json.Marshal(sweepd.SubmitRequest{Base: base, Grid: grid})
	if err != nil {
		return err
	}
	resp, err := http.Post(strings.TrimRight(*addr, "/")+"/sweeps",
		"application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return serverError(resp)
	}
	var sr sweepd.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return fmt.Errorf("decode submit response: %w", err)
	}
	fmt.Printf("sweep %s accepted: %d point(s)\n", sr.ID, sr.Points)
	fmt.Printf("results: %s%s\n", *addr, sr.Results)
	if !*watch {
		return nil
	}
	return streamResults(*addr, sr.ID, 0)
}

// cmdWatch attaches to a sweep on a running server and streams its
// remaining points (all points when it already finished).
func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "sweep server base URL")
	from := fs.Int("from", 0, "skip the first N streamed points (resume)")
	fs.Parse(args)
	if fs.NArg() < 1 {
		return fmt.Errorf("watch needs a sweep id (see GET /sweeps)")
	}
	return streamResults(*addr, fs.Arg(0), *from)
}

// streamResults follows a sweep's NDJSON stream, printing one line per
// point until the sweep completes.
func streamResults(addr, id string, from int) error {
	url := strings.TrimRight(addr, "/") + "/sweeps/" + id + "/results"
	if from > 0 {
		url += "?from=" + strconv.Itoa(from)
	}
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serverError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	var done, cached, errored, skipped int
	for sc.Scan() {
		var p sweepd.Point
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			return fmt.Errorf("bad stream line: %w", err)
		}
		switch {
		case p.Skipped:
			skipped++
			fmt.Printf("point %-3d skipped (server drained)\n", p.Index)
		case p.Error != "":
			errored++
			fmt.Printf("point %-3d ERROR %s\n", p.Index, p.Error)
		default:
			done++
			src := "simulated"
			if p.Cached {
				cached++
				src = "cached"
			}
			fmt.Printf("point %-3d %-9s %s\n", p.Index, src, pointLine(p.Row))
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	fmt.Printf("sweep %s: %d done (%d cached), %d errored, %d skipped\n",
		id, done, cached, errored, skipped)
	if errored > 0 || skipped > 0 {
		return fmt.Errorf("sweep %s incomplete: %d errored, %d skipped", id, errored, skipped)
	}
	return nil
}

// pointLine compacts a result row to its identity plus a few headline
// metrics — the stream is progress feedback, not the export format.
func pointLine(row *harness.Row) string {
	if row == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s", row.Scheme, row.Kind)
	if row.Name != "" {
		fmt.Fprintf(&b, " %s", row.Name)
	}
	for _, k := range []string{"fct_avg_us", "fct_p99_us", "goodput_gbps", "engine_events"} {
		if v, ok := row.Metrics[k]; ok {
			fmt.Fprintf(&b, "  %s=%g", k, v)
		}
	}
	return b.String()
}

// parseGrid converts the comma-separated grid flags (shared by submit and
// sweep) into a harness.Grid.
func parseGrid(schemes, backends, seeds, loads, sizes string) (harness.Grid, error) {
	var g harness.Grid
	g.Schemes = splitList(schemes)
	g.Backends = splitList(backends)
	for _, s := range splitList(seeds) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return g, fmt.Errorf("bad seed %q: %w", s, err)
		}
		g.Seeds = append(g.Seeds, v)
	}
	for _, s := range splitList(loads) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return g, fmt.Errorf("bad load %q: %w", s, err)
		}
		g.Loads = append(g.Loads, v)
	}
	for _, s := range splitList(sizes) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return g, fmt.Errorf("bad size %q: %w", s, err)
		}
		g.Sizes = append(g.Sizes, v)
	}
	return g, nil
}

// serverError surfaces the server's JSON {"error": ...} body as a CLI
// error, falling back to the status text.
func serverError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
		return fmt.Errorf("server: %s (%s)", e.Error, resp.Status)
	}
	return fmt.Errorf("server: %s", resp.Status)
}
