// fnccbench drives the declarative scenario subsystem from the command
// line: list the built-in scenarios, run one by name or from a JSON spec
// file, or sweep a grid of schemes × seeds × loads × sizes with a
// content-addressed result cache.
//
//	fnccbench list
//	fnccbench show  <name>                     # canonical spec + hash
//	fnccbench run   <name|spec.json> [flags]
//	fnccbench sweep <name|spec.json> [flags]
//	fnccbench spans <spans.jsonl>              # -> Chrome trace JSON
//
// Examples:
//
//	fnccbench run incast -scheme HPCC
//	fnccbench sweep micro -schemes FNCC,HPCC,DCQCN,RoCC -cache .fnccbench
//	fnccbench sweep fct-websearch -schemes FNCC,HPCC -seeds 1,2,3 \
//	    -loads 0.3,0.5,0.7 -agg -format csv -cache .fnccbench
//	fnccbench sweep fct-websearch -backend fluid -schemes FNCC,HPCC,DCQCN \
//	    -loads 0.1,0.3,0.5,0.7,0.9 -seeds 1,2,3,4,5   # ms per point
//	fnccbench sweep permutation -backends packet,fluid -sizes 4,8  # cross-check
//	fnccbench sweep fct-websearch -listen :8080 -log json \
//	    -spans spans.jsonl -metrics metrics.json       # observable sweep
//	curl localhost:8080/progress                       # ...from another shell
//	fnccbench serve -cache .fnccbench &                # long-running service
//	fnccbench submit fct-websearch -schemes FNCC,HPCC -watch
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "show":
		err = cmdShow(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "spans":
		err = cmdSpans(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "watch":
		err = cmdWatch(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "fnccbench: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fnccbench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fnccbench <list|show|run|sweep|spans|serve|submit|watch> [args]
  list                      built-in scenarios
  show  <name|spec.json>    canonical spec JSON + content hash + probe support
  run   <name|spec.json>    execute one scenario (flags: -scheme -backend -seed -load -workers
                            -cache -telemetry <dir> -json -log text|json|off -listen addr
                            -cpuprofile file -memprofile file)
  sweep <name|spec.json>    expand and run a grid (flags: -schemes -backend -backends -seeds
                            -loads -sizes -workers -cache -agg -progress -format table|csv|json
                            -log text|json|off -listen addr -spans file.jsonl -metrics file.json
                            -cpuprofile file -memprofile file)
  spans <spans.jsonl>       convert exported sweep spans to Chrome trace JSON on stdout
                            (load in Perfetto or chrome://tracing)
  serve                     long-running sweep server (flags: -listen -cache -workers -log
                            -drain-timeout); POST /sweeps, NDJSON result streams, /progress
  submit <name|spec.json>   post a sweep to a running server (flags: -addr -schemes -backend
                            -backends -seeds -loads -sizes -watch)
  watch [-from N] <id>      attach to a sweep on a running server and stream its points
Run 'fnccbench <subcommand> -h' for flags.`)
}

// resolve loads a spec from the registry or, when the argument names an
// existing file, parses it as JSON. Read failures other than "no such
// file" surface as-is instead of masquerading as unknown scenario names.
func resolve(arg string) (scenario.Spec, error) {
	data, err := os.ReadFile(arg)
	if err == nil {
		return scenario.ParseSpec(data)
	}
	if !errors.Is(err, fs.ErrNotExist) {
		return scenario.Spec{}, err
	}
	return scenario.Lookup(arg)
}

func cmdList() error {
	fmt.Printf("%-24s %-12s %-8s %-7s %s\n", "name", "kind", "scheme", "backend", "description")
	for _, e := range scenario.Builtin() {
		fmt.Printf("%-24s %-12s %-8s %-7s %s\n",
			e.Spec.Name, e.Spec.Kind, e.Spec.Scheme, e.Spec.BackendName(), e.Desc)
	}
	return nil
}

func cmdShow(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("show needs a scenario name or spec file")
	}
	sp, err := resolve(args[0])
	if err != nil {
		return err
	}
	if err := sp.Validate(); err != nil {
		return err
	}
	canon, err := sp.Canonical()
	if err != nil {
		return err
	}
	fmt.Printf("%s\nhash: %s\n", canon, sp.Hash())
	// Which probe classes a telemetry block on this spec could sample: the
	// fluid backend models rates and link shares, not packets, so the
	// packet-level classes are rejected there (mirroring Backend rules).
	supported := map[string]bool{}
	for _, p := range sp.SupportedProbes() {
		supported[p] = true
	}
	fmt.Println("probes:")
	for _, p := range telemetry.AllProbes() {
		mark := "no (backend " + sp.BackendName() + ")"
		if supported[p] {
			mark = "yes"
		}
		fmt.Printf("  %-8s %s\n", p, mark)
	}
	trace := "yes"
	if sp.BackendName() == scenario.BackendFluid {
		trace = "no (event tracing is packet-level)"
	}
	fmt.Printf("  %-8s %s\n", "trace", trace)
	return nil
}

// startProfiles implements the -cpuprofile/-memprofile pair shared by run
// and sweep: a one-shot pprof capture without standing up the serve debug
// mux. The returned stop function ends the CPU profile and writes the heap
// profile; callers must invoke it before printing results so the files are
// complete even when the command errors afterwards.
func startProfiles(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		var errs []error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				errs = append(errs, fmt.Errorf("cpuprofile: %w", err))
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				errs = append(errs, fmt.Errorf("memprofile: %w", err))
			} else {
				runtime.GC() // settle live-heap accounting before the snapshot
				werr := pprof.WriteHeapProfile(f)
				cerr := f.Close()
				if err := errors.Join(werr, cerr); err != nil {
					errs = append(errs, fmt.Errorf("memprofile: %w", err))
				}
			}
		}
		return errors.Join(errs...)
	}, nil
}

// obsEnv is the per-invocation observability state the -log and -listen
// flags configure: the structured logger every status print goes through,
// the metrics registry the runner feeds, the span tracer, and (when
// -listen is set) the live debug HTTP server.
type obsEnv struct {
	logger *slog.Logger
	reg    *obs.Registry
	tracer *obs.Tracer

	mu   sync.Mutex
	last harness.Progress
}

// setProgress records the latest sweep progress for /progress.
func (e *obsEnv) setProgress(p harness.Progress) {
	e.mu.Lock()
	e.last = p
	e.mu.Unlock()
}

// progressBody is /progress's JSON shape: the latest harness snapshot plus
// the open span states (which jobs are in which phase right now).
type progressBody struct {
	Progress harness.Progress `json:"progress"`
	Jobs     []obs.ActiveSpan `json:"jobs,omitempty"`
}

// setupObs validates the -log/-listen pair and brings the layer up. The
// registry and tracer are always created — per-job counter bumps are
// nanoseconds against millisecond jobs, and the final stats summary reads
// from them — and the HTTP server starts only when listen is non-empty.
// Malformed values fail here with a usage-quality error, before any
// simulation starts.
func setupObs(logMode, listen string) (*obsEnv, error) {
	logger, err := obs.NewLogger(logMode, os.Stderr)
	if err != nil {
		return nil, err
	}
	env := &obsEnv{logger: logger, reg: obs.NewRegistry(), tracer: obs.NewTracer()}
	if listen == "" {
		return env, nil
	}
	l, err := obs.Listen(listen)
	if err != nil {
		return nil, err
	}
	mux := obs.NewDebugMux(env.reg, func() any {
		env.mu.Lock()
		p := env.last
		env.mu.Unlock()
		return progressBody{Progress: p, Jobs: env.tracer.Active()}
	})
	logger.Info("debug server listening", "addr", l.Addr().String(),
		"endpoints", "/debug/vars /debug/pprof/ /progress")
	go func() {
		if err := http.Serve(l, mux); err != nil {
			logger.Error("debug server exited", "err", err)
		}
	}()
	return env, nil
}

// logRunStats is the one-line registry summary both run and sweep end
// with: cache split, total engine events, and the last run's throughput.
func (e *obsEnv) logRunStats(results, simulated, cached int) {
	s := e.reg.Snapshot()
	e.logger.Info("stats",
		"points", results,
		"simulated", simulated,
		"cached", cached,
		"engine_events", s.Counters[harness.MetricEngineEvents],
		"events_per_sec_last", s.Gauges[harness.MetricEventsPerSecLast],
		"sweep_events_per_sec", s.Gauges[harness.MetricSweepEventsPerSec],
		"fluid_full_passes", s.Counters[harness.MetricFluidFullPasses],
		"fluid_incremental_passes", s.Counters[harness.MetricFluidIncrPasses],
	)
}

func cmdRun(args []string) error {
	if len(args) < 1 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("run needs a scenario name or spec file first")
	}
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	schemeF := fs.String("scheme", "", "override the spec's scheme")
	backend := fs.String("backend", "", "simulation backend: packet|fluid (empty keeps the spec's)")
	seed := fs.Int64("seed", -1, "override the spec's seed (-1 keeps it)")
	load := fs.Float64("load", 0, "override the spec's target load")
	cache := fs.String("cache", "", "result cache directory (empty disables)")
	telemetryDir := fs.String("telemetry", "", "export telemetry series to this directory "+
		"(adds a default telemetry block if the spec has none)")
	asJSON := fs.Bool("json", false, "print the full result as JSON")
	workers := fs.Int("workers", 0, "parallel packet-executor width for this run (0/1 = serial)")
	logMode := fs.String("log", "text", "status log format: text|json|off")
	listen := fs.String("listen", "", "serve /debug/vars, /debug/pprof and /progress on this address")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProf := fs.String("memprofile", "", "write a heap profile taken after the run to this file")
	fs.Parse(args[1:])

	env, err := setupObs(*logMode, *listen)
	if err != nil {
		return err
	}
	sp, err := resolve(args[0])
	if err != nil {
		return err
	}
	if *schemeF != "" {
		sp.Scheme = *schemeF
	}
	if *backend != "" {
		sp.Backend = *backend
	}
	if *seed >= 0 {
		sp.Seed = *seed
	}
	if *load > 0 {
		sp.Load = *load
	}
	if *workers > 0 {
		sp.Workers = *workers
	}
	if *telemetryDir != "" && sp.Telemetry == nil {
		sp.Telemetry = defaultTelemetry(sp)
	}
	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	r := &harness.Runner{CacheDir: *cache, Obs: env.reg, Tracer: env.tracer}
	res, err := r.Run(sp)
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		return err
	}
	if *telemetryDir != "" {
		if err := harness.ExportTelemetry(*telemetryDir, res); err != nil {
			return err
		}
		env.logger.Info("telemetry exported", "dir", *telemetryDir,
			"series", len(res.Telemetry.Series), "samples", len(res.Telemetry.TimesUs))
	}
	if *asJSON {
		return harness.WriteJSON(os.Stdout, harness.Rows([]*scenario.Result{res}))
	}
	src := "simulated"
	if res.Cached {
		src = "cached"
	}
	fmt.Printf("%s (%s, %s) %s [%s]\n", res.Spec.Name, res.Spec.Kind, res.Spec.Scheme, res.Hash, src)
	for _, k := range res.MetricNames() {
		fmt.Printf("  %-20s %g\n", k, res.Metrics[k])
	}
	hits, misses := r.Stats()
	env.logRunStats(1, int(misses), int(hits))
	return nil
}

// defaultTelemetry is the block `run -telemetry` injects when the spec has
// none: every probe class the backend supports at a 10 us cadence, plus a
// bounded event trace on the packet backend (serial only — the flight
// recorder is not shard-aware, and validation rejects it under workers > 1).
func defaultTelemetry(sp scenario.Spec) *scenario.TelemetrySpec {
	t := &scenario.TelemetrySpec{IntervalUs: 10, Probes: sp.SupportedProbes()}
	if sp.BackendName() != scenario.BackendFluid && sp.Workers <= 1 {
		t.TraceCap = 4096
	}
	return t
}

func cmdSweep(args []string) error {
	if len(args) < 1 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("sweep needs a scenario name or spec file first")
	}
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	schemes := fs.String("schemes", "", "comma-separated scheme names")
	backend := fs.String("backend", "", "simulation backend for every point: packet|fluid")
	backends := fs.String("backends", "", "comma-separated backends to sweep as a grid dimension")
	seeds := fs.String("seeds", "", "comma-separated int64 seeds")
	loads := fs.String("loads", "", "comma-separated target loads")
	sizes := fs.String("sizes", "", "comma-separated topology sizes (K / senders / fanout)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	cache := fs.String("cache", "", "result cache directory (empty disables)")
	agg := fs.Bool("agg", false, "aggregate metrics across seeds")
	progress := fs.Bool("progress", true, "live progress line on stderr (only when stderr is a terminal)")
	format := fs.String("format", "table", "output format: table|csv|json")
	logMode := fs.String("log", "text", "status log format: text|json|off")
	listen := fs.String("listen", "", "serve /debug/vars, /debug/pprof and /progress on this address")
	spansOut := fs.String("spans", "", "export the sweep's span trace as JSONL to this file")
	metricsOut := fs.String("metrics", "", "write the final metrics-registry snapshot as JSON to this file")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile of the whole sweep to this file")
	memProf := fs.String("memprofile", "", "write a heap profile taken after the sweep to this file")
	fs.Parse(args[1:])

	env, err := setupObs(*logMode, *listen)
	if err != nil {
		return err
	}
	base, err := resolve(args[0])
	if err != nil {
		return err
	}
	if *backend != "" {
		base.Backend = *backend
	}
	sweep := harness.Sweep{Base: base}
	if *schemes != "" {
		sweep.Grid.Schemes = splitList(*schemes)
	}
	if *backends != "" {
		sweep.Grid.Backends = splitList(*backends)
	}
	for _, s := range splitList(*seeds) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q: %w", s, err)
		}
		sweep.Grid.Seeds = append(sweep.Grid.Seeds, v)
	}
	for _, s := range splitList(*loads) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("bad load %q: %w", s, err)
		}
		sweep.Grid.Loads = append(sweep.Grid.Loads, v)
	}
	for _, s := range splitList(*sizes) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return fmt.Errorf("bad size %q: %w", s, err)
		}
		sweep.Grid.Sizes = append(sweep.Grid.Sizes, v)
	}

	expand := env.tracer.Start("expand", nil)
	specs, err := sweep.Expand()
	expand.End()
	if err != nil {
		return err
	}
	// Resolve the pool against the shared GOMAXPROCS budget up front so the
	// log shows the worker count the sweep will actually run with (points
	// using the parallel packet executor shrink the pool; see
	// harness.PoolWorkers).
	pool := harness.PoolWorkers(*workers, harness.MaxSimWorkers(specs))
	env.logger.Info("sweep starting", "scenario", args[0], "points", len(specs),
		"workers", pool, "sim_workers", harness.MaxSimWorkers(specs), "cache", *cache)

	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	runner := &harness.Runner{CacheDir: *cache, Workers: *workers,
		Obs: env.reg, Tracer: env.tracer}
	showProgress := *progress && stderrIsTerminal()
	runner.OnProgress = func(p harness.Progress) {
		env.setProgress(p)
		if showProgress {
			fmt.Fprintf(os.Stderr,
				"\rfnccbench: %d/%d done (%d cached, %d in flight) %.2fM events/s   ",
				p.Done, p.Total, p.Cached, p.InFlight, p.EventsPerSec/1e6)
		}
	}

	// SIGINT/SIGTERM cancel the sweep cooperatively: in-flight jobs finish
	// and write their cache entries, then the partial table, span trace and
	// metrics snapshot all flush as usual. A second signal kills outright
	// (signal.NotifyContext restores default handling once ctx fires).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	results, runErr := runner.RunAllCtx(ctx, specs)
	stop()
	if perr := stopProf(); perr != nil {
		env.logger.Error("profile export failed", "err", perr)
	}
	if showProgress {
		fmt.Fprintln(os.Stderr)
	}
	interrupted := errors.Is(runErr, harness.ErrInterrupted)
	if runErr != nil && !interrupted {
		return runErr
	}
	if interrupted {
		env.logger.Warn("sweep interrupted; printing partial results",
			"done", len(results), "total", len(specs))
	}

	export := env.tracer.Start("export", nil)
	rows := harness.Rows(results)
	if *agg {
		rows = harness.Aggregate(rows)
	}
	switch *format {
	case "table":
		fmt.Print(harness.FormatTable(rows))
	case "csv":
		if err := harness.WriteCSV(os.Stdout, rows); err != nil {
			export.End()
			return err
		}
	case "json":
		if err := harness.WriteJSON(os.Stdout, rows); err != nil {
			export.End()
			return err
		}
	default:
		export.End()
		return fmt.Errorf("unknown format %q", *format)
	}
	export.End()

	if *spansOut != "" {
		if err := writeSpans(*spansOut, env.tracer); err != nil {
			return err
		}
		env.logger.Info("spans exported", "file", *spansOut, "spans", len(env.tracer.Spans()))
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, env.reg); err != nil {
			return err
		}
		env.logger.Info("metrics snapshot written", "file", *metricsOut)
	}
	hits, misses := runner.Stats()
	env.logRunStats(len(results), int(misses), int(hits))
	if interrupted {
		return fmt.Errorf("sweep interrupted after %d/%d point(s)", len(results), len(specs))
	}
	return nil
}

// writeSpans flushes the tracer to a JSONL file.
func writeSpans(path string, t *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := t.WriteJSONL(f)
	cerr := f.Close()
	return errors.Join(werr, cerr)
}

// writeMetrics dumps the registry snapshot as indented JSON.
func writeMetrics(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(reg.Snapshot())
	cerr := f.Close()
	return errors.Join(werr, cerr)
}

// cmdSpans converts an exported span JSONL file to the Chrome trace-event
// format on stdout, loadable in Perfetto or chrome://tracing.
func cmdSpans(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("spans needs a spans.jsonl file (from sweep -spans)")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	spans, err := obs.ReadSpansJSONL(f)
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("%s contains no spans", args[0])
	}
	return obs.WriteChromeTrace(os.Stdout, spans)
}

// stderrIsTerminal gates the carriage-return progress line: redirected
// stderr (CI logs) gets the plain summary line only.
func stderrIsTerminal() bool {
	st, err := os.Stderr.Stat()
	return err == nil && st.Mode()&os.ModeCharDevice != 0
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
