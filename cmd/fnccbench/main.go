// fnccbench drives the declarative scenario subsystem from the command
// line: list the built-in scenarios, run one by name or from a JSON spec
// file, or sweep a grid of schemes × seeds × loads × sizes with a
// content-addressed result cache.
//
//	fnccbench list
//	fnccbench show  <name>                     # canonical spec + hash
//	fnccbench run   <name|spec.json> [flags]
//	fnccbench sweep <name|spec.json> [flags]
//
// Examples:
//
//	fnccbench run incast -scheme HPCC
//	fnccbench sweep micro -schemes FNCC,HPCC,DCQCN,RoCC -cache .fnccbench
//	fnccbench sweep fct-websearch -schemes FNCC,HPCC -seeds 1,2,3 \
//	    -loads 0.3,0.5,0.7 -agg -format csv -cache .fnccbench
//	fnccbench sweep fct-websearch -backend fluid -schemes FNCC,HPCC,DCQCN \
//	    -loads 0.1,0.3,0.5,0.7,0.9 -seeds 1,2,3,4,5   # ms per point
//	fnccbench sweep permutation -backends packet,fluid -sizes 4,8  # cross-check
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "show":
		err = cmdShow(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "fnccbench: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fnccbench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fnccbench <list|show|run|sweep> [args]
  list                      built-in scenarios
  show  <name|spec.json>    canonical spec JSON + content hash + probe support
  run   <name|spec.json>    execute one scenario (flags: -scheme -backend -seed -load -cache
                            -telemetry <dir> -json)
  sweep <name|spec.json>    expand and run a grid (flags: -schemes -backend -backends -seeds
                            -loads -sizes -workers -cache -agg -progress -format table|csv|json)
Run 'fnccbench <subcommand> -h' for flags.`)
}

// resolve loads a spec from the registry or, when the argument names an
// existing file, parses it as JSON. Read failures other than "no such
// file" surface as-is instead of masquerading as unknown scenario names.
func resolve(arg string) (scenario.Spec, error) {
	data, err := os.ReadFile(arg)
	if err == nil {
		return scenario.ParseSpec(data)
	}
	if !errors.Is(err, fs.ErrNotExist) {
		return scenario.Spec{}, err
	}
	return scenario.Lookup(arg)
}

func cmdList() error {
	fmt.Printf("%-24s %-12s %-8s %-7s %s\n", "name", "kind", "scheme", "backend", "description")
	for _, e := range scenario.Builtin() {
		fmt.Printf("%-24s %-12s %-8s %-7s %s\n",
			e.Spec.Name, e.Spec.Kind, e.Spec.Scheme, e.Spec.BackendName(), e.Desc)
	}
	return nil
}

func cmdShow(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("show needs a scenario name or spec file")
	}
	sp, err := resolve(args[0])
	if err != nil {
		return err
	}
	if err := sp.Validate(); err != nil {
		return err
	}
	canon, err := sp.Canonical()
	if err != nil {
		return err
	}
	fmt.Printf("%s\nhash: %s\n", canon, sp.Hash())
	// Which probe classes a telemetry block on this spec could sample: the
	// fluid backend models rates and link shares, not packets, so the
	// packet-level classes are rejected there (mirroring Backend rules).
	supported := map[string]bool{}
	for _, p := range sp.SupportedProbes() {
		supported[p] = true
	}
	fmt.Println("probes:")
	for _, p := range telemetry.AllProbes() {
		mark := "no (backend " + sp.BackendName() + ")"
		if supported[p] {
			mark = "yes"
		}
		fmt.Printf("  %-8s %s\n", p, mark)
	}
	trace := "yes"
	if sp.BackendName() == scenario.BackendFluid {
		trace = "no (event tracing is packet-level)"
	}
	fmt.Printf("  %-8s %s\n", "trace", trace)
	return nil
}

func cmdRun(args []string) error {
	if len(args) < 1 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("run needs a scenario name or spec file first")
	}
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	schemeF := fs.String("scheme", "", "override the spec's scheme")
	backend := fs.String("backend", "", "simulation backend: packet|fluid (empty keeps the spec's)")
	seed := fs.Int64("seed", -1, "override the spec's seed (-1 keeps it)")
	load := fs.Float64("load", 0, "override the spec's target load")
	cache := fs.String("cache", "", "result cache directory (empty disables)")
	telemetryDir := fs.String("telemetry", "", "export telemetry series to this directory "+
		"(adds a default telemetry block if the spec has none)")
	asJSON := fs.Bool("json", false, "print the full result as JSON")
	fs.Parse(args[1:])

	sp, err := resolve(args[0])
	if err != nil {
		return err
	}
	if *schemeF != "" {
		sp.Scheme = *schemeF
	}
	if *backend != "" {
		sp.Backend = *backend
	}
	if *seed >= 0 {
		sp.Seed = *seed
	}
	if *load > 0 {
		sp.Load = *load
	}
	if *telemetryDir != "" && sp.Telemetry == nil {
		sp.Telemetry = defaultTelemetry(sp)
	}
	r := &harness.Runner{CacheDir: *cache}
	res, err := r.Run(sp)
	if err != nil {
		return err
	}
	if *telemetryDir != "" {
		if err := harness.ExportTelemetry(*telemetryDir, res); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fnccbench: %d telemetry series (%d samples) -> %s\n",
			len(res.Telemetry.Series), len(res.Telemetry.TimesUs), *telemetryDir)
	}
	if *asJSON {
		return harness.WriteJSON(os.Stdout, harness.Rows([]*scenario.Result{res}))
	}
	src := "simulated"
	if res.Cached {
		src = "cached"
	}
	fmt.Printf("%s (%s, %s) %s [%s]\n", res.Spec.Name, res.Spec.Kind, res.Spec.Scheme, res.Hash, src)
	for _, k := range res.MetricNames() {
		fmt.Printf("  %-20s %g\n", k, res.Metrics[k])
	}
	return nil
}

// defaultTelemetry is the block `run -telemetry` injects when the spec has
// none: every probe class the backend supports at a 10 us cadence, plus a
// bounded event trace on the packet backend.
func defaultTelemetry(sp scenario.Spec) *scenario.TelemetrySpec {
	t := &scenario.TelemetrySpec{IntervalUs: 10, Probes: sp.SupportedProbes()}
	if sp.BackendName() != scenario.BackendFluid {
		t.TraceCap = 4096
	}
	return t
}

func cmdSweep(args []string) error {
	if len(args) < 1 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("sweep needs a scenario name or spec file first")
	}
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	schemes := fs.String("schemes", "", "comma-separated scheme names")
	backend := fs.String("backend", "", "simulation backend for every point: packet|fluid")
	backends := fs.String("backends", "", "comma-separated backends to sweep as a grid dimension")
	seeds := fs.String("seeds", "", "comma-separated int64 seeds")
	loads := fs.String("loads", "", "comma-separated target loads")
	sizes := fs.String("sizes", "", "comma-separated topology sizes (K / senders / fanout)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	cache := fs.String("cache", "", "result cache directory (empty disables)")
	agg := fs.Bool("agg", false, "aggregate metrics across seeds")
	progress := fs.Bool("progress", true, "live progress line on stderr (only when stderr is a terminal)")
	format := fs.String("format", "table", "output format: table|csv|json")
	fs.Parse(args[1:])

	base, err := resolve(args[0])
	if err != nil {
		return err
	}
	if *backend != "" {
		base.Backend = *backend
	}
	sweep := harness.Sweep{Base: base}
	if *schemes != "" {
		sweep.Grid.Schemes = splitList(*schemes)
	}
	if *backends != "" {
		sweep.Grid.Backends = splitList(*backends)
	}
	for _, s := range splitList(*seeds) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q: %w", s, err)
		}
		sweep.Grid.Seeds = append(sweep.Grid.Seeds, v)
	}
	for _, s := range splitList(*loads) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("bad load %q: %w", s, err)
		}
		sweep.Grid.Loads = append(sweep.Grid.Loads, v)
	}
	for _, s := range splitList(*sizes) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return fmt.Errorf("bad size %q: %w", s, err)
		}
		sweep.Grid.Sizes = append(sweep.Grid.Sizes, v)
	}

	specs, err := sweep.Expand()
	if err != nil {
		return err
	}
	runner := &harness.Runner{CacheDir: *cache, Workers: *workers}
	showProgress := *progress && stderrIsTerminal()
	if showProgress {
		runner.OnProgress = func(p harness.Progress) {
			fmt.Fprintf(os.Stderr,
				"\rfnccbench: %d/%d done (%d cached, %d in flight) %.2fM events/s   ",
				p.Done, p.Total, p.Cached, p.InFlight, p.EventsPerSec/1e6)
		}
	}
	results, err := runner.RunAll(specs)
	if showProgress {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}
	rows := harness.Rows(results)
	if *agg {
		rows = harness.Aggregate(rows)
	}
	switch *format {
	case "table":
		fmt.Print(harness.FormatTable(rows))
	case "csv":
		if err := harness.WriteCSV(os.Stdout, rows); err != nil {
			return err
		}
	case "json":
		if err := harness.WriteJSON(os.Stdout, rows); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	hits, misses := runner.Stats()
	fmt.Fprintf(os.Stderr, "fnccbench: %d point(s): %d simulated, %d from cache\n",
		len(results), misses, hits)
	return nil
}

// stderrIsTerminal gates the carriage-return progress line: redirected
// stderr (CI logs) gets the plain summary line only.
func stderrIsTerminal() bool {
	st, err := os.Stderr.Stat()
	return err == nil && st.Mode()&os.ModeCharDevice != 0
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
