// Package fncc is the public facade of the FNCC reproduction: a
// packet-level data-center network simulator with four congestion-control
// schemes (FNCC, HPCC, DCQCN, RoCC), the paper's topologies (dumbbell
// chains and k-ary fat-trees), trace-driven workloads (WebSearch,
// FB_Hadoop), and one experiment runner per evaluation figure.
//
// # Quick start
//
//	scheme := fncc.MustScheme(fncc.SchemeFNCC)
//	chain := fncc.MustChain(fncc.DefaultNetConfig(), scheme, fncc.DefaultChainOpts(2))
//	f0 := chain.AddFlow(1, 0, 1<<30, 0)
//	f1 := chain.AddFlow(2, 1, 1<<30, 300*fncc.Microsecond)
//	chain.Net.RunUntil(1200 * fncc.Microsecond)
//
// See examples/ for runnable programs and DESIGN.md for the map from the
// paper's figures to the runners re-exported here.
package fncc

import (
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/fluid"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/sweepd"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Time units re-exported from the simulation clock.
const (
	Picosecond  = sim.Picosecond
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Time is a simulation timestamp/duration in picoseconds.
type Time = sim.Time

// Core simulation types.
type (
	// Network is the built fabric: engine, nodes, flows, counters.
	Network = netsim.Network
	// NetConfig is the fabric-wide configuration (MTU, PFC, ECMP mode...).
	NetConfig = netsim.Config
	// Scheme bundles one congestion-control algorithm's three plug points.
	Scheme = netsim.Scheme
	// Flow is one RDMA-style transfer.
	Flow = netsim.Flow
	// Host is an end station; Switch a fabric switch; Port an attachment.
	Host   = netsim.Host
	Switch = netsim.Switch
	Port   = netsim.Port
)

// Topology builders.
type (
	// Chain is the Fig 10/11 dumbbell-chain topology.
	Chain = topo.Chain
	// ChainOpts parameterizes BuildChain.
	ChainOpts = topo.ChainOpts
	// FatTree is the §5.5 k-ary fat-tree.
	FatTree = topo.FatTree
	// FatTreeOpts parameterizes BuildFatTree.
	FatTreeOpts = topo.FatTreeOpts
	// Mesh is an arbitrary switch graph with spanning-tree symmetric
	// routing (Observation 2 / Fig 6).
	Mesh = topo.Mesh
	// MeshOpts parameterizes BuildMesh.
	MeshOpts = topo.MeshOpts
)

// Hot-path performance telemetry. The simulation core is allocation-free in
// steady state: events recycle through an engine-owned slot pool and frames
// through a per-network packet pool. These counters quantify both, and
// every experiment result and sweep row carries them (engine_events,
// pool_hit_rate, mallocs_per_run...), so perf regressions show up in the
// same tables as the modelled metrics.
type (
	// EngineStats is the event scheduler's throughput/pool telemetry.
	EngineStats = sim.EngineStats
	// PacketPoolStats is the packet pool's hit-rate telemetry.
	PacketPoolStats = packet.PoolStats
	// PerfStats is one run's combined simulator-performance record,
	// attached to every experiment result.
	PerfStats = exp.PerfStats
)

// Metrics types surfaced by the runners.
type (
	// Series is a time series of samples.
	Series = metrics.Series
	// Dist is an exact scalar distribution (quantiles).
	Dist = metrics.Dist
	// FCTCollector accumulates flow completions.
	FCTCollector = metrics.FCTCollector
	// BucketStats is one row of a Fig 14/15 slowdown table.
	BucketStats = metrics.BucketStats
)

// Scheme names accepted by NewScheme/MustScheme.
const (
	SchemeFNCC       = exp.SchemeFNCC
	SchemeFNCCNoLHCS = exp.SchemeFNCCNoLHCS
	SchemeHPCC       = exp.SchemeHPCC
	SchemeDCQCN      = exp.SchemeDCQCN
	SchemeRoCC       = exp.SchemeRoCC
)

// DefaultNetConfig returns the paper's §5 fabric constants (1518 B MTU,
// PFC at 500 KB, symmetric ECMP, per-packet ACKs).
func DefaultNetConfig() NetConfig { return netsim.DefaultConfig() }

// NewScheme builds a congestion-control scheme by name with paper-default
// parameters.
func NewScheme(name string) (Scheme, error) { return exp.NewScheme(name) }

// MustScheme is NewScheme that panics on unknown names.
func MustScheme(name string) Scheme { return exp.MustScheme(name) }

// AllSchemes lists the four compared schemes in canonical order.
func AllSchemes() []string { return exp.AllSchemes() }

// FNCCConfig exposes the contribution's tuning knobs (α, β, LHCS toggle,
// All_INT_Table refresh) for custom schemes.
type FNCCConfig = core.Config

// DefaultFNCCConfig returns the paper's FNCC constants.
func DefaultFNCCConfig() FNCCConfig { return core.DefaultConfig() }

// NewFNCCScheme builds FNCC with custom parameters.
func NewFNCCScheme(cfg FNCCConfig) Scheme { return core.NewScheme(cfg) }

// HPCCConfig exposes the HPCC baseline's constants.
type HPCCConfig = cc.HPCCConfig

// NewHPCCScheme builds HPCC with custom parameters.
func NewHPCCScheme(cfg HPCCConfig) Scheme { return cc.NewHPCCScheme(cfg) }

// DefaultChainOpts returns the Fig 10 dumbbell (M=3 switches, given sender
// count, 100 G links, 1.5 us delay).
func DefaultChainOpts(senders int) ChainOpts { return topo.DefaultChainOpts(senders) }

// BuildChain constructs a chain topology.
func BuildChain(cfg NetConfig, s Scheme, o ChainOpts) (*Chain, error) {
	return topo.BuildChain(cfg, s, o)
}

// MustChain is BuildChain that panics on error.
func MustChain(cfg NetConfig, s Scheme, o ChainOpts) *Chain { return topo.MustChain(cfg, s, o) }

// DefaultFatTreeOpts returns the §5.5 fabric (k=8, 128 hosts, 100 G).
func DefaultFatTreeOpts() FatTreeOpts { return topo.DefaultFatTreeOpts() }

// BuildFatTree constructs a fat-tree.
func BuildFatTree(cfg NetConfig, s Scheme, o FatTreeOpts) (*FatTree, error) {
	return topo.BuildFatTree(cfg, s, o)
}

// MustFatTree is BuildFatTree that panics on error.
func MustFatTree(cfg NetConfig, s Scheme, o FatTreeOpts) *FatTree {
	return topo.MustFatTree(cfg, s, o)
}

// Fig6Opts returns the paper's Fig 6-style multi-path mesh example.
func Fig6Opts() MeshOpts { return topo.Fig6Opts() }

// BuildMesh constructs an arbitrary mesh with spanning-tree routing.
func BuildMesh(cfg NetConfig, s Scheme, o MeshOpts) (*Mesh, error) {
	return topo.BuildMesh(cfg, s, o)
}

// MustMesh is BuildMesh that panics on error.
func MustMesh(cfg NetConfig, s Scheme, o MeshOpts) *Mesh { return topo.MustMesh(cfg, s, o) }

// Workload distributions.
var (
	// WebSearch returns the DCTCP web-search flow-size CDF (Fig 14).
	WebSearch = workload.WebSearch
	// FBHadoop returns the Facebook Hadoop flow-size CDF (Fig 15).
	FBHadoop = workload.FBHadoop
)

// Experiment runners (one per figure; see DESIGN.md's index).
type (
	// MicroConfig / MicroResult: Figs 1b-d, 3, 9 dumbbell micro-benchmark.
	MicroConfig = exp.MicroConfig
	MicroResult = exp.MicroResult
	// HopConfig / HopResult: Fig 13a-d hop-location study.
	HopConfig = exp.HopConfig
	HopResult = exp.HopResult
	// FairnessConfig / FairnessResult: Fig 13e staggered fairness.
	FairnessConfig = exp.FairnessConfig
	FairnessResult = exp.FairnessResult
	// FCTConfig / FCTResult: Figs 14-15 fat-tree FCT sweeps.
	FCTConfig = exp.FCTConfig
	FCTResult = exp.FCTResult
	// IncastConfig / IncastResult: the N-to-1 last-hop burst motivating
	// LHCS (§3.2.2).
	IncastConfig = exp.IncastConfig
	IncastResult = exp.IncastResult
)

// Experiment entry points.
var (
	DefaultMicroConfig    = exp.DefaultMicroConfig
	RunMicro              = exp.RunMicro
	RunMicroAll           = exp.RunMicroAll
	DefaultHopConfig      = exp.DefaultHopConfig
	RunHop                = exp.RunHop
	DefaultFairnessConfig = exp.DefaultFairnessConfig
	RunFairness           = exp.RunFairness
	DefaultFCTConfig      = exp.DefaultFCTConfig
	RunFCT                = exp.RunFCT
	RunFCTSweep           = exp.RunFCTSweep
	RunNotify             = exp.RunNotify
	DefaultNotifyConfig   = exp.DefaultNotifyConfig
	DefaultIncastConfig   = exp.DefaultIncastConfig
	RunIncast             = exp.RunIncast
	FormatIncastTable     = exp.FormatIncastTable
)

// Declarative scenarios and the sweep harness (cmd/fnccbench drives these
// from the command line; see DESIGN.md's scenario index).
type (
	// Scenario is a JSON-serializable experiment description with a
	// canonical encoding and stable content hash.
	Scenario = scenario.Spec
	// ScenarioTopo declares a scenario's fabric.
	ScenarioTopo = scenario.TopoSpec
	// ScenarioWorkload declares a scenario's offered traffic.
	ScenarioWorkload = scenario.WorkloadSpec
	// ScenarioResult is one executed scenario's flat metric map.
	ScenarioResult = scenario.Result
	// ScenarioEntry is a named registry scenario.
	ScenarioEntry = scenario.Entry
	// Sweep is a base scenario plus a grid over schemes/seeds/loads/sizes.
	Sweep = harness.Sweep
	// SweepGrid is the sweep dimensions.
	SweepGrid = harness.Grid
	// SweepRunner executes specs in parallel with a disk result cache.
	SweepRunner = harness.Runner
	// SweepRow is one exported result line.
	SweepRow = harness.Row
	// SweepServer is the long-running HTTP sweep service over a
	// SweepRunner (fnccbench serve); SweepServerConfig assembles one.
	SweepServer       = sweepd.Server
	SweepServerConfig = sweepd.Config
	// SweepPoint is one streamed result on the server's NDJSON stream;
	// SweepStatus one sweep's live summary.
	SweepPoint  = sweepd.Point
	SweepStatus = sweepd.Status
)

// NewSweepServer builds a sweep service and starts its worker pool; serve
// its Handler() and stop it with Drain.
var NewSweepServer = sweepd.New

// Scenario and sweep entry points.
var (
	// RunScenario validates and executes one declarative scenario.
	RunScenario = scenario.Run
	// ParseScenario decodes a JSON spec, rejecting unknown fields.
	ParseScenario = scenario.ParseSpec
	// BuiltinScenarios lists the registry sorted by name.
	BuiltinScenarios = scenario.Builtin
	// LookupScenario resolves a registry name.
	LookupScenario = scenario.Lookup
	// ScenarioKinds lists the runnable scenario kinds.
	ScenarioKinds = scenario.Kinds
	// BuildCCScheme constructs a scheme with parameter overrides applied.
	BuildCCScheme = scenario.BuildScheme
	// SweepRows flattens results for export; AggregateRows averages them
	// across seeds; WriteSweepCSV / WriteSweepJSON serialize them.
	SweepRows      = harness.Rows
	AggregateRows  = harness.Aggregate
	WriteSweepCSV  = harness.WriteCSV
	WriteSweepJSON = harness.WriteJSON
)

// Simulation backends a Scenario can select (Scenario.Backend): the full
// per-packet engine, or the flow-level max-min fluid approximation for
// FCT-style kinds (internal/fluid; orders of magnitude faster per point).
const (
	BackendPacket = scenario.BackendPacket
	BackendFluid  = scenario.BackendFluid
)

// Backends lists the simulation backends.
var Backends = scenario.Backends

// Flow-level fluid backend, usable directly (without the scenario layer)
// for custom flow sets on chain or fat-tree fabrics.
type (
	// FluidConfig carries the wire-format constants shared with netsim.
	FluidConfig = fluid.Config
	// FluidModel is a scheme's rate-convergence behavior (Tau=0: instant
	// max-min).
	FluidModel = fluid.Model
	// FluidFabric is a capacitated link graph with flow routing.
	FluidFabric = fluid.Fabric
	// FluidChainOpts parameterizes NewFluidChain (mirrors ChainOpts).
	FluidChainOpts = fluid.ChainOpts
	// FluidFatTreeOpts parameterizes NewFluidFatTree (mirrors FatTreeOpts).
	FluidFatTreeOpts = fluid.FatTreeOpts
	// FluidSim runs a flow set over a fabric under a model.
	FluidSim = fluid.Sim
	// FluidResult is one fluid run: FCT collector plus engine telemetry.
	FluidResult = fluid.Result
)

// Fluid-backend entry points.
var (
	DefaultFluidConfig = fluid.DefaultConfig
	NewFluidSim        = fluid.NewSim
	FluidModelFor      = fluid.ModelFor
	NewFluidChain      = fluid.NewChain
	NewFluidFatTree    = fluid.NewFatTree
)

// In-simulation telemetry: time-series probes over either backend plus an
// opt-in bounded event trace, zero-cost when off (see DESIGN.md
// "Telemetry"). Scenarios opt in via ScenarioTelemetry; direct simulations
// attach probes with AttachNetProbe / AttachFluidProbe.
type (
	// TelemetryConfig selects probe classes, sampling interval, trace cap.
	TelemetryConfig = telemetry.Config
	// TelemetryOutput is one run's recorded series + trace.
	TelemetryOutput = telemetry.Output
	// TelemetrySeries is one named probe series.
	TelemetrySeries = telemetry.Series
	// TelemetryTraceRecord is one flight-recorder event.
	TelemetryTraceRecord = telemetry.TraceRecord
	// NetProbe samples a packet-backend Network; FluidProbe a fluid Sim.
	NetProbe   = telemetry.NetProbe
	FluidProbe = telemetry.FluidProbe
	// ScenarioTelemetry is a Scenario's telemetry block.
	ScenarioTelemetry = scenario.TelemetrySpec
	// SweepProgress is one live progress snapshot from SweepRunner.
	SweepProgress = harness.Progress
)

// Telemetry entry points.
var (
	AttachNetProbe   = telemetry.AttachNet
	AttachFluidProbe = telemetry.AttachFluid
	// PacketProbes / FluidProbes / AllProbes list the probe classes per
	// backend; TelemetrySamples sizes a ring for a span and interval.
	PacketProbes     = telemetry.PacketProbes
	FluidProbes      = telemetry.FluidProbes
	AllProbes        = telemetry.AllProbes
	TelemetrySamples = telemetry.Samples
	// WriteTraceJSONL serializes a trace; ExportTelemetry writes a
	// result's series/trace to a directory as JSON + CSV + JSONL.
	WriteTraceJSONL = telemetry.WriteTraceJSONL
	ExportTelemetry = harness.ExportTelemetry
)

// Extension baselines (paper §6 related work; not part of the paper's
// evaluation): Timely (RTT gradient), Swift (delay target) and ExpressPass
// (receiver-driven credits).
const (
	SchemeTimely      = exp.SchemeTimely
	SchemeSwift       = exp.SchemeSwift
	SchemeExpressPass = exp.SchemeExpressPass
)

// Hop positions for HopConfig.
const (
	HopFirst  = exp.HopFirst
	HopMiddle = exp.HopMiddle
	HopLast   = exp.HopLast
)

// Table formatters.
var (
	FormatMicroTable  = exp.FormatMicroTable
	FormatHopTable    = exp.FormatHopTable
	FormatNotifyTable = exp.FormatNotifyTable
	FormatFCTTables   = exp.FormatFCTTables
	FormatHeadlines   = exp.FormatHeadlines
)
