package fncc_test

import (
	"testing"

	fncc "repro"
)

// TestScenarioFacade drives the declarative layer through the public API:
// registry lookup, a cached sweep, and export rows.
func TestScenarioFacade(t *testing.T) {
	if n := len(fncc.BuiltinScenarios()); n < 8 {
		t.Fatalf("registry exposes %d scenarios, want >= 8", n)
	}
	sp, err := fncc.LookupScenario("micro")
	if err != nil {
		t.Fatal(err)
	}
	sp.DurationUs = 500

	sweep := fncc.Sweep{Base: sp, Grid: fncc.SweepGrid{Schemes: []string{"FNCC", "HPCC"}}}
	specs, err := sweep.Expand()
	if err != nil {
		t.Fatal(err)
	}
	runner := &fncc.SweepRunner{CacheDir: t.TempDir()}
	results, err := runner.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	rows := fncc.SweepRows(results)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Metrics["queue_peak_bytes"] <= 0 {
			t.Errorf("%s: no queue buildup recorded", r.Scheme)
		}
	}

	// The cache round-trips through the facade too.
	again, err := (&fncc.SweepRunner{CacheDir: runner.CacheDir}).RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if !again[0].Cached || !again[1].Cached {
		t.Error("second sweep was not served from cache")
	}
}
