package fncc

import (
	"testing"

	"repro/internal/sim"
)

// Facade-level tests: everything a downstream user touches through the
// public package must work without reaching into internal/.

func TestFacadeQuickstartPath(t *testing.T) {
	scheme := MustScheme(SchemeFNCC)
	chain := MustChain(DefaultNetConfig(), scheme, DefaultChainOpts(2))
	f0 := chain.AddFlow(1, 0, 500_000, 0)
	f1 := chain.AddFlow(2, 1, 500_000, 100*Microsecond)
	chain.Net.RunUntil(5 * Millisecond)
	if !f0.Done() || !f1.Done() {
		t.Fatal("facade quickstart flows incomplete")
	}
	if chain.Net.Drops.N != 0 {
		t.Fatal("drops in quickstart")
	}
}

func TestFacadeAllSchemesRun(t *testing.T) {
	for _, name := range AllSchemes() {
		chain := MustChain(DefaultNetConfig(), MustScheme(name), DefaultChainOpts(2))
		f := chain.AddFlow(1, 0, 100_000, 0)
		chain.AddFlow(2, 1, 100_000, 0)
		chain.Net.RunUntil(10 * Millisecond)
		if !f.Done() {
			t.Fatalf("%s: flow incomplete via facade", name)
		}
	}
}

func TestFacadeCustomFNCCConfig(t *testing.T) {
	cfg := DefaultFNCCConfig()
	cfg.Beta = 0.8
	cfg.TableUpdatePeriod = 4 * Microsecond
	scheme := NewFNCCScheme(cfg)
	chain := MustChain(DefaultNetConfig(), scheme, DefaultChainOpts(2))
	f := chain.AddFlow(1, 0, 200_000, 0)
	chain.Net.RunUntil(5 * Millisecond)
	if !f.Done() {
		t.Fatal("custom-config FNCC incomplete")
	}
}

func TestFacadeFatTreeOversubscription(t *testing.T) {
	// 2:1 oversubscribed core: cross-pod traffic is throttled by the
	// core links; same-pod traffic is not. Both must still complete.
	opts := FatTreeOpts{K: 4, RateBps: 100e9, CoreRateBps: 50e9, Delay: 1500 * sim.Nanosecond}
	ft := MustFatTree(DefaultNetConfig(), MustScheme(SchemeFNCC), opts)
	cross := ft.AddFlow(1, 0, 8, 2_000_000, 0) // pod 0 -> pod 2
	local := ft.AddFlow(2, 1, 2, 2_000_000, 0) // within pod 0
	ft.Net.RunToCompletion(100 * Millisecond)
	if !cross.Done() || !local.Done() {
		t.Fatal("oversubscribed flows incomplete")
	}
	// The same-pod flow never crosses the slow core, so it finishes first.
	if local.FinishedAt >= cross.FinishedAt {
		t.Fatalf("local %v should beat cross-pod %v over a 2:1 core",
			local.FinishedAt, cross.FinishedAt)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	if WebSearch().MeanBytes() < FBHadoop().MeanBytes() {
		t.Fatal("WebSearch should be heavier than Hadoop")
	}
}

func TestFacadeRunners(t *testing.T) {
	r, err := RunMicro(DefaultMicroConfig(SchemeFNCC, 100e9))
	if err != nil || r.QueuePeak <= 0 {
		t.Fatalf("RunMicro via facade: %v", err)
	}
	rows, err := RunNotify(DefaultNotifyConfig())
	if err != nil || len(rows) == 0 {
		t.Fatalf("RunNotify via facade: %v", err)
	}
	if FormatMicroTable(100e9, []*MicroResult{r}) == "" {
		t.Fatal("empty table")
	}
}
