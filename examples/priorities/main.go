// Service levels: the substrate capability the paper elides "for clarity
// of description" (§3.2.1). A bulk elephant rides SL 1 while short RPC
// bursts ride SL 0; strict-priority scheduling plus per-class PFC keeps the
// RPCs' completion times near-ideal regardless of the elephant, and FNCC
// still regulates both classes.
//
// Run: go run ./examples/priorities
package main

import (
	"fmt"

	fncc "repro"
)

func run(split bool) (bulkFCT fncc.Time, rpcWorst fncc.Time) {
	cfg := fncc.DefaultNetConfig()
	cfg.PriorityLevels = 2
	chain := fncc.MustChain(cfg, fncc.MustScheme(fncc.SchemeFNCC), fncc.DefaultChainOpts(2))

	bulk := chain.AddFlow(1, 0, 20<<20, 0) // 20 MB elephant
	if split {
		bulk.Class = 1 // demoted below the RPCs
	}
	var rpcs []*fncc.Flow
	for i := 0; i < 8; i++ {
		f := chain.AddFlow(uint64(10+i), 1, 64<<10, fncc.Time(i)*200*fncc.Microsecond)
		f.Class = 0
		rpcs = append(rpcs, f)
	}
	chain.Net.RunToCompletion(100 * fncc.Millisecond)

	for _, f := range rpcs {
		if fct := f.FinishedAt - f.Start; fct > rpcWorst {
			rpcWorst = fct
		}
	}
	return bulk.FinishedAt - bulk.Start, rpcWorst
}

func main() {
	fmt.Println("20MB elephant vs 8x64KB RPCs through one bottleneck (FNCC)")
	fmt.Printf("%-28s %14s %18s\n", "configuration", "elephant FCT", "worst RPC FCT")
	for _, split := range []bool{false, true} {
		name := "single service level"
		if split {
			name = "RPCs on SL0, bulk on SL1"
		}
		b, r := run(split)
		fmt.Printf("%-28s %14v %18v\n", name, b, r)
	}
	fmt.Println("\nWith two lanes the RPCs preempt the elephant at every egress,")
	fmt.Println("so their tail drops to near-unloaded latency while the elephant")
	fmt.Println("pays only their (tiny) bandwidth share.")
}
