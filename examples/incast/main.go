// Incast: the scenario LHCS was designed for. Sixteen senders, all attached
// at the receiver-side switch (Fig 11b's last-hop geometry), burst to one
// receiver simultaneously — classic partition/aggregate incast where every
// byte of congestion lands on the last hop. We run FNCC with and without
// the Last-Hop Congestion Speedup and compare last-hop queue peaks, PFC
// pauses and the time to reach a fair allocation.
//
// Run: go run ./examples/incast
package main

import (
	"fmt"

	fncc "repro"
	"repro/internal/metrics"
)

const (
	senders  = 16
	flowSize = 2 << 20 // 2 MB per responder
	lineRate = 100e9
)

func run(lhcs bool) (peakKB float64, pauses int64, fairAt fncc.Time) {
	cfg := fncc.DefaultFNCCConfig()
	cfg.EnableLHCS = lhcs
	scheme := fncc.NewFNCCScheme(cfg)

	// All senders on the last chain switch: their only shared link is the
	// receiver's access link — pure last-hop congestion.
	opts := fncc.DefaultChainOpts(senders)
	for i := range opts.SenderAttach {
		opts.SenderAttach[i] = opts.Switches - 1
	}
	chain := fncc.MustChain(fncc.DefaultNetConfig(), scheme, opts)

	flows := make([]*fncc.Flow, senders)
	for i := range flows {
		flows[i] = chain.AddFlow(uint64(i+1), i, flowSize, 0)
	}

	port := chain.HopPort(opts.Switches - 1) // egress to the receiver
	fairShare := float64(lineRate) / senders
	fairAt = -1
	var maxQ int64
	stop := chain.Net.Eng.Ticker(10*fncc.Microsecond, func() {
		if q := port.QueueBytes(); q > maxQ {
			maxQ = q
		}
		// Converged when every sender's *pacing rate* (the CC's decision,
		// not the FIFO-shared goodput) sits near the fair share.
		rates := make([]float64, 0, senders)
		for _, f := range flows {
			if !f.Finished() {
				rates = append(rates, float64(f.CC().RateBps()))
			}
		}
		if fairAt < 0 && len(rates) == senders && metrics.JainIndex(rates) > 0.95 {
			ok := true
			for _, r := range rates {
				if r < 0.5*fairShare || r > 1.5*fairShare {
					ok = false
					break
				}
			}
			if ok {
				fairAt = chain.Net.Eng.Now()
			}
		}
	})
	chain.Net.RunToCompletion(100 * fncc.Millisecond)
	stop()
	return float64(maxQ) / 1000, chain.Switches[opts.Switches-1].PauseFrames, fairAt
}

func main() {
	fmt.Printf("%d-to-1 incast at the last hop, %d MB each, 100Gbps fabric\n\n",
		senders, flowSize>>20)
	for _, lhcs := range []bool{false, true} {
		peak, pauses, fairAt := run(lhcs)
		mode := "FNCC without LHCS"
		if lhcs {
			mode = "FNCC with LHCS   "
		}
		fair := "never"
		if fairAt >= 0 {
			fair = fairAt.String()
		}
		fmt.Printf("%s  last-hop queue peak %7.1fKB  pauses %2d  fair allocation by %s\n",
			mode, peak, pauses, fair)
	}
	fmt.Println("\nLHCS jumps each sender straight to B*RTT*beta/N on its first")
	fmt.Println("congested ACK, cutting the incast queue peak; without it the")
	fmt.Println("window decay needs several round trips to shed the same backlog.")
}
