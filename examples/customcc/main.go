// Custom congestion control: how to plug your own scheme into the
// substrate. We implement "AIMD-ECN" — a deliberately naive TCP-flavoured
// window algorithm (halve on ECN echo, grow one MTU per RTT) reusing
// DCQCN's switch-side WRED marking — then race it against FNCC on the
// dumbbell.
//
// The three interfaces a scheme implements (see internal/netsim):
//
//	SenderCC   — per-flow window/rate decisions at the sending NIC
//	ReceiverCC — what the receiver writes into ACKs
//	SwitchHook — what switches do to transiting packets
//
// Run: go run ./examples/customcc
package main

import (
	"fmt"

	fncc "repro"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topo"
)

// aimd is the SenderCC: window halving on marked ACKs, +1 MTU per RTT
// otherwise, rate = W/RTT.
type aimd struct {
	w       float64
	minW    float64
	rtt     sim.Time
	lastCut sim.Time
}

func newAIMD(f *netsim.Flow) netsim.SenderCC {
	rtt := f.SrcHost.Net().Cfg.BaseRTT
	bdp := float64(f.SrcHost.Port().RateBps()) / 8 * rtt.Seconds()
	return &aimd{w: bdp, minW: 1518, rtt: rtt}
}

func (a *aimd) Name() string                 { return "AIMD-ECN" }
func (a *aimd) WindowBytes() int64           { return int64(a.w) }
func (a *aimd) RateBps() int64               { return int64(a.w * 8 / a.rtt.Seconds()) }
func (a *aimd) OnCnp(*netsim.Flow, sim.Time) {}

func (a *aimd) OnAck(f *netsim.Flow, ack *packet.Packet, now sim.Time) {
	if ack.AckedECN {
		// Halve at most once per RTT, like TCP's congestion-event rule.
		if now-a.lastCut >= a.rtt {
			a.w /= 2
			if a.w < a.minW {
				a.w = a.minW
			}
			a.lastCut = now
		}
		return
	}
	// Additive increase, amortized per ACK: +MTU per window's worth.
	a.w += 1518 * 1452 / a.w * 4
}

// echoECN is the ReceiverCC: echo the ECN mark back on the ACK.
type echoECN struct{}

func (echoECN) FillAck(ack, data *packet.Packet, _ *netsim.Host) {
	ack.AckedECN = data.ECN
}
func (echoECN) WantCnp(*packet.Packet, *netsim.Host, sim.Time) bool { return false }

// mark is the SwitchHook: threshold ECN marking at 100KB.
type mark struct{}

func (mark) OnEnqueue(sw *netsim.Switch, pkt *packet.Packet, out int) {
	if pkt.Type == packet.Data && sw.PortAt(out).QueueBytes() > 100<<10 {
		pkt.ECN = true
	}
}
func (mark) OnDequeue(*netsim.Switch, *packet.Packet, int) {}

func run(scheme netsim.Scheme) (peakKB float64, util float64, firstSlow fncc.Time) {
	c := topo.MustChain(fncc.DefaultNetConfig(), scheme, fncc.DefaultChainOpts(2))
	f0 := c.AddFlow(1, 0, 1<<40, 0)
	c.AddFlow(2, 1, 1<<40, 300*fncc.Microsecond)
	port := c.BottleneckPort()
	var maxQ int64
	var lastTx uint64
	var utilSum float64
	var n int
	firstSlow = -1
	stop := c.Net.Eng.Ticker(fncc.Microsecond, func() {
		if q := port.QueueBytes(); q > maxQ {
			maxQ = q
		}
		tx := port.TxBytes()
		if c.Net.Eng.Now() > 300*fncc.Microsecond {
			utilSum += float64(tx-lastTx) * 8 / (100e9 * fncc.Microsecond.Seconds())
			n++
			if firstSlow < 0 && float64(f0.CC().RateBps()) < 85e9 {
				firstSlow = c.Net.Eng.Now()
			}
		}
		lastTx = tx
	})
	c.Net.RunUntil(900 * fncc.Microsecond)
	stop()
	return float64(maxQ) / 1000, utilSum / float64(n), firstSlow
}

func main() {
	custom := netsim.Scheme{
		Name:          "AIMD-ECN",
		NewSenderCC:   newAIMD,
		Receiver:      echoECN{},
		NewSwitchHook: func(*netsim.Switch) netsim.SwitchHook { return mark{} },
	}
	fmt.Printf("%-10s %12s %10s %14s\n", "scheme", "queue peak", "util", "1st slowdown")
	for _, s := range []netsim.Scheme{custom, fncc.MustScheme(fncc.SchemeFNCC)} {
		peak, util, slow := run(s)
		fmt.Printf("%-10s %10.1fKB %9.1f%% %14v\n", s.Name, peak, 100*util, slow)
	}
	fmt.Println("\nThe naive AIMD waits a full RTT for its ECN echo and halves blindly;")
	fmt.Println("FNCC's sub-RTT INT keeps both the queue and the rate dip smaller.")
}
