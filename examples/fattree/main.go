// Fat-tree FCT comparison: a small (k=4, 16-host) version of the paper's
// §5.5 experiment. An FB_Hadoop workload at 50% load runs under each
// scheme; we print the per-size-bucket FCT slowdown tables and the headline
// reductions of FNCC over the baselines.
//
// Run: go run ./examples/fattree            (quick: k=4, 1ms of arrivals)
// Run: go run ./examples/fattree -k 8 -ms 5 (closer to paper scale)
package main

import (
	"flag"
	"fmt"
	"time"

	fncc "repro"
	"repro/internal/sim"
)

func main() {
	k := flag.Int("k", 4, "fat-tree arity (paper: 8)")
	ms := flag.Int("ms", 1, "arrival horizon in milliseconds")
	load := flag.Float64("load", 0.5, "average access-link load")
	wl := flag.String("wl", "hadoop", "workload: hadoop | websearch")
	flag.Parse()

	schemes := []string{fncc.SchemeDCQCN, fncc.SchemeHPCC, fncc.SchemeFNCC}
	fmt.Printf("fat-tree k=%d (%d hosts), %s @ %.0f%% load, %dms of arrivals\n",
		*k, (*k)*(*k)*(*k)/4, *wl, 100**load, *ms)

	base := fncc.DefaultFCTConfig(fncc.SchemeFNCC, *wl)
	base.K = *k
	base.Horizon = sim.Time(*ms) * fncc.Millisecond
	base.Load = *load

	start := time.Now()
	merged, runs, err := fncc.RunFCTSweep(base, schemes, []int64{1, 2})
	if err != nil {
		panic(err)
	}
	for _, r := range runs {
		fmt.Printf("  %-6s seed %d: %d/%d flows completed, %d pauses, %d drops\n",
			r.Scheme, r.Seed, r.Completed, r.Generated, r.PauseFrames, r.Drops)
	}
	fmt.Printf("  (simulated in %.1fs wall time)\n", time.Since(start).Seconds())

	tables, err := fncc.FormatFCTTables(*wl, merged, schemes)
	if err != nil {
		panic(err)
	}
	fmt.Println(tables)
	fmt.Println(fncc.FormatHeadlines(*wl, merged))
}
