// Hop-location walkthrough (Fig 13): place the colliding flow at the
// first, middle and last switch of the chain and compare FNCC's queue-depth
// gains over HPCC at each position — reproducing the paper's observation
// that fast notification helps most when congestion is far from the
// receiver, while LHCS recovers the gain at the last hop.
//
// Run: go run ./examples/hopcongestion
package main

import (
	"fmt"

	fncc "repro"
	"repro/internal/exp"
)

func main() {
	fmt.Println("Congestion location study (M=3 chain, 100Gbps, flow1 joins at 300us)")
	fmt.Println()
	fmt.Printf("%-8s %-14s %12s %10s %14s\n", "hop", "scheme", "queue peak", "util", "vs HPCC peak")

	for _, pos := range []exp.HopPosition{fncc.HopFirst, fncc.HopMiddle, fncc.HopLast} {
		schemes := []string{fncc.SchemeHPCC, fncc.SchemeFNCC}
		if pos == fncc.HopLast {
			schemes = append(schemes, fncc.SchemeFNCCNoLHCS)
		}
		var hpccPeak float64
		for _, s := range schemes {
			r, err := fncc.RunHop(fncc.DefaultHopConfig(s, pos))
			if err != nil {
				panic(err)
			}
			gain := ""
			if s == fncc.SchemeHPCC {
				hpccPeak = r.QueuePeak
			} else if hpccPeak > 0 {
				gain = fmt.Sprintf("-%.1f%%", 100*(1-r.QueuePeak/hpccPeak))
			}
			fmt.Printf("%-8s %-14s %10.1fKB %9.1f%% %14s\n",
				pos, s, r.QueuePeak/1000, 100*r.MeanUtil, gain)
		}
		fmt.Println()
	}
	fmt.Println("Paper's Fig 13: -37.5% (first), -29.5% (middle), -8.4% (last w/o LHCS),")
	fmt.Println("-38.5% (last with LHCS). Expect the same ordering here.")
}
