// Quickstart: the paper's §5.1 micro-benchmark in ~40 lines. Two elephant
// flows share a 100 Gbps dumbbell; flow1 joins at 300 us. We print the
// bottleneck queue and both flows' pacing rates over time and report when
// FNCC first reacted to the congestion.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	fncc "repro"
)

func main() {
	scheme := fncc.MustScheme(fncc.SchemeFNCC)
	chain := fncc.MustChain(fncc.DefaultNetConfig(), scheme, fncc.DefaultChainOpts(2))

	f0 := chain.AddFlow(1, 0, 1<<40, 0)
	f1 := chain.AddFlow(2, 1, 1<<40, 300*fncc.Microsecond)

	fmt.Println("time_us  queueKB  flow0_Gbps  flow1_Gbps")
	var reactedAt fncc.Time = -1
	stop := chain.Net.Eng.Ticker(20*fncc.Microsecond, func() {
		now := chain.Net.Eng.Now()
		q := chain.BottleneckPort().QueueBytes()
		r0 := float64(f0.CC().RateBps()) / 1e9
		r1 := float64(f1.CC().RateBps()) / 1e9
		fmt.Printf("%7.0f  %7.1f  %10.1f  %10.1f\n", now.Micros(), float64(q)/1000, r0, r1)
		if reactedAt < 0 && now >= 300*fncc.Microsecond && r0 < 85 {
			reactedAt = now
		}
	})
	chain.Net.RunUntil(800 * fncc.Microsecond)
	stop()

	fmt.Printf("\nflow1 joined at 300us; flow0 first slowed at %v (sub-RTT: base RTT is %v)\n",
		reactedAt, chain.Net.Cfg.BaseRTT)
	fmt.Printf("PFC pause frames at congestion point: %d\n", chain.Switches[0].PauseFrames)
}
