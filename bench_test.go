// Benchmarks regenerating every table and figure of the paper's evaluation
// at CI scale (full-scale parameter sets live behind cmd/fnccsim and
// cmd/fctsweep). Each benchmark reports the figure's headline quantity via
// b.ReportMetric, so `go test -bench=.` prints the reproduction numbers
// alongside the runtime cost. DESIGN.md's experiment index maps figures to
// these benchmarks.
package fncc

import (
	"fmt"
	"testing"

	"repro/internal/exp"
	"repro/internal/sim"
)

// --- Fig 1b-d: queue length vs time at 100/200/400 G (DCQCN/HPCC/FNCC) ---

func benchFig1(b *testing.B, rate int64) {
	for _, scheme := range []string{SchemeDCQCN, SchemeHPCC, SchemeFNCC} {
		b.Run(scheme, func(b *testing.B) {
			var peak float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultMicroConfig(scheme, rate)
				cfg.Duration = 600 * sim.Microsecond
				r, err := RunMicro(cfg)
				if err != nil {
					b.Fatal(err)
				}
				peak = r.QueuePeak
			}
			b.ReportMetric(peak/1000, "queuePeakKB")
		})
	}
}

func BenchmarkFig1QueueLength100G(b *testing.B) { benchFig1(b, 100e9) }
func BenchmarkFig1QueueLength200G(b *testing.B) { benchFig1(b, 200e9) }
func BenchmarkFig1QueueLength400G(b *testing.B) { benchFig1(b, 400e9) }

// --- Fig 3: PFC pause frames at the congestion point, 200/400 G ---

func benchFig3(b *testing.B, rate int64) {
	for _, scheme := range []string{SchemeDCQCN, SchemeHPCC, SchemeFNCC} {
		b.Run(scheme, func(b *testing.B) {
			var pauses int64
			for i := 0; i < b.N; i++ {
				cfg := DefaultMicroConfig(scheme, rate)
				cfg.Duration = 900 * sim.Microsecond
				// The paper's 500KB threshold at full scale; at bench scale
				// a tighter threshold exposes the same ordering.
				cfg.PFCPauseBytes = 200 << 10
				r, err := RunMicro(cfg)
				if err != nil {
					b.Fatal(err)
				}
				pauses = r.PauseFrames
			}
			b.ReportMetric(float64(pauses), "pauseFrames")
		})
	}
}

func BenchmarkFig3PauseFrames200G(b *testing.B) { benchFig3(b, 200e9) }
func BenchmarkFig3PauseFrames400G(b *testing.B) { benchFig3(b, 400e9) }

// --- Fig 9: response speed + utilization, all four schemes ---

func BenchmarkFig9ResponseSpeed100G(b *testing.B) {
	for _, scheme := range AllSchemes() {
		b.Run(scheme, func(b *testing.B) {
			var first sim.Time
			for i := 0; i < b.N; i++ {
				cfg := DefaultMicroConfig(scheme, 100e9)
				cfg.Duration = 800 * sim.Microsecond
				r, err := RunMicro(cfg)
				if err != nil {
					b.Fatal(err)
				}
				first = r.FirstSlowdown
			}
			if first >= 0 {
				b.ReportMetric(first.Micros(), "firstSlowdown_us")
			} else {
				b.ReportMetric(-1, "firstSlowdown_us")
			}
		})
	}
}

func BenchmarkFig9Utilization(b *testing.B) {
	for _, rate := range []int64{200e9, 400e9} {
		for _, scheme := range AllSchemes() {
			b.Run(fmt.Sprintf("%dG/%s", rate/1e9, scheme), func(b *testing.B) {
				var util float64
				for i := 0; i < b.N; i++ {
					cfg := DefaultMicroConfig(scheme, rate)
					cfg.Duration = 700 * sim.Microsecond
					r, err := RunMicro(cfg)
					if err != nil {
						b.Fatal(err)
					}
					util = r.MeanUtil
				}
				b.ReportMetric(100*util, "meanUtil_pct")
			})
		}
	}
}

// --- Fig 13a-d: gains by congestion location, including the LHCS ablation ---

func BenchmarkFig13HopLocation(b *testing.B) {
	for _, pos := range []exp.HopPosition{HopFirst, HopMiddle, HopLast} {
		for _, scheme := range []string{SchemeHPCC, SchemeFNCC, SchemeFNCCNoLHCS} {
			if scheme == SchemeFNCCNoLHCS && pos != HopLast {
				continue // the paper only ablates LHCS at the last hop
			}
			b.Run(fmt.Sprintf("%s/%s", pos, scheme), func(b *testing.B) {
				var peak, util float64
				for i := 0; i < b.N; i++ {
					r, err := RunHop(DefaultHopConfig(scheme, pos))
					if err != nil {
						b.Fatal(err)
					}
					peak, util = r.QueuePeak, r.MeanUtil
				}
				b.ReportMetric(peak/1000, "queuePeakKB")
				b.ReportMetric(100*util, "meanUtil_pct")
			})
		}
	}
}

// --- Fig 13e: fairness over staggered flows ---

func BenchmarkFig13Fairness(b *testing.B) {
	for _, scheme := range []string{SchemeFNCC, SchemeHPCC} {
		b.Run(scheme, func(b *testing.B) {
			var jain float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultFairnessConfig(scheme)
				cfg.Stagger = 500 * sim.Microsecond
				r, err := RunFairness(cfg)
				if err != nil {
					b.Fatal(err)
				}
				jain = r.JainAllActive
			}
			b.ReportMetric(jain, "jainIndex")
		})
	}
}

// --- Figs 14/15: fat-tree FCT slowdown sweeps ---

func benchFCT(b *testing.B, wl string, horizon sim.Time, load float64) {
	for _, scheme := range []string{SchemeDCQCN, SchemeHPCC, SchemeFNCC} {
		b.Run(scheme, func(b *testing.B) {
			var p95Small, medLarge float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultFCTConfig(scheme, wl)
				cfg.K = 4 // CI-scale fabric; cmd/fctsweep runs k=8
				cfg.Horizon = horizon
				cfg.Load = load
				r, err := RunFCT(cfg)
				if err != nil {
					b.Fatal(err)
				}
				p95Small = r.Collector.SlowdownDist(0, 100_000).P95()
				medLarge = r.Collector.SlowdownDist(1_000_000, 1<<62).Median()
			}
			b.ReportMetric(p95Small, "p95SlowdownSmall")
			if medLarge > 0 {
				b.ReportMetric(medLarge, "medianSlowdownLarge")
			}
		})
	}
}

func BenchmarkFig14WebSearchFCT(b *testing.B) {
	benchFCT(b, "websearch", 2*sim.Millisecond, 0.5)
}

func BenchmarkFig15HadoopFCT(b *testing.B) {
	benchFCT(b, "hadoop", sim.Millisecond, 0.5)
}

// --- Fig 2/12 model: notification latency by congested hop ---

func BenchmarkNotificationLatency(b *testing.B) {
	for _, scheme := range []string{SchemeFNCC, SchemeHPCC} {
		b.Run(scheme, func(b *testing.B) {
			var firstHop float64
			for i := 0; i < b.N; i++ {
				rows, err := RunNotify(exp.NotifyConfig{Schemes: []string{scheme}, RateBps: 100e9})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.Hop == HopFirst {
						firstHop = r.Latency.Micros()
					}
				}
			}
			b.ReportMetric(firstHop, "firstHopNotify_us")
		})
	}
}

// --- Ablation A1: symmetric vs asymmetric ECMP hashing for FNCC ---

func BenchmarkAblationAsymmetricRouting(b *testing.B) {
	for _, symmetric := range []bool{true, false} {
		name := "symmetric"
		if !symmetric {
			name = "asymmetric"
		}
		b.Run(name, func(b *testing.B) {
			var p95 float64
			for i := 0; i < b.N; i++ {
				scheme := MustScheme(SchemeFNCC)
				cfg := DefaultNetConfig()
				cfg.SymmetricECMP = symmetric
				ft := MustFatTree(cfg, scheme, FatTreeOpts{K: 4, RateBps: 100e9, Delay: 1500 * sim.Nanosecond})
				wlFlows := incastWorkload(ft, 800)
				ft.Net.RunToCompletion(50 * sim.Millisecond)
				d := ft.Net.FCT.SlowdownDist(0, 1<<62)
				p95 = d.P95()
				_ = wlFlows
			}
			b.ReportMetric(p95, "p95Slowdown")
		})
	}
}

// incastWorkload adds a deterministic mixed workload across the fat-tree.
func incastWorkload(ft *FatTree, flows int) int {
	rng := sim.NewRNG(7)
	hosts := len(ft.Hosts)
	for i := 0; i < flows; i++ {
		src := rng.Intn(hosts)
		dst := rng.Intn(hosts - 1)
		if dst >= src {
			dst++
		}
		size := int64(2000 + rng.Intn(60_000))
		start := sim.Time(rng.Int63n(int64(2 * sim.Millisecond)))
		ft.AddFlow(uint64(i+1), src, dst, size, start)
	}
	return flows
}

// --- Ablation A2: cumulative ACK coalescing (§3.2.3) ---

func BenchmarkAblationCumulativeAck(b *testing.B) {
	for _, every := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ackEvery%d", every), func(b *testing.B) {
			var peak float64
			for i := 0; i < b.N; i++ {
				scheme := MustScheme(SchemeFNCC)
				cfg := DefaultNetConfig()
				cfg.AckEveryN = every
				c := MustChain(cfg, scheme, DefaultChainOpts(2))
				c.AddFlow(1, 0, 1<<40, 0)
				c.AddFlow(2, 1, 1<<40, 300*sim.Microsecond)
				var maxQ int64
				stop := c.Net.Eng.Ticker(sim.Microsecond, func() {
					if q := c.BottleneckPort().QueueBytes(); q > maxQ {
						maxQ = q
					}
				})
				c.Net.RunUntil(800 * sim.Microsecond)
				stop()
				peak = float64(maxQ)
			}
			b.ReportMetric(peak/1000, "queuePeakKB")
		})
	}
}

// --- Ablation A3: LHCS β sensitivity (Algorithm 2's drain factor) ---

func BenchmarkAblationLHCSParams(b *testing.B) {
	for _, beta := range []float64{0.8, 0.9, 0.95, 1.0} {
		b.Run(fmt.Sprintf("beta%.2f", beta), func(b *testing.B) {
			var peak, util float64
			for i := 0; i < b.N; i++ {
				fc := DefaultFNCCConfig()
				fc.Beta = beta
				scheme := NewFNCCScheme(fc)
				opts := DefaultChainOpts(2)
				opts.SenderAttach = []int{0, 2}
				c := MustChain(DefaultNetConfig(), scheme, opts)
				c.AddFlow(1, 0, 1<<40, 0)
				c.AddFlow(2, 1, 1<<40, 300*sim.Microsecond)
				port := c.HopPort(2)
				var maxQ int64
				var lastTx uint64
				var utilSum float64
				var utilN int
				stop := c.Net.Eng.Ticker(sim.Microsecond, func() {
					if q := port.QueueBytes(); q > maxQ {
						maxQ = q
					}
					tx := port.TxBytes()
					if c.Net.Eng.Now() > 320*sim.Microsecond {
						utilSum += float64(tx-lastTx) * 8 / (100e9 * sim.Microsecond.Seconds())
						utilN++
					}
					lastTx = tx
				})
				c.Net.RunUntil(700 * sim.Microsecond)
				stop()
				peak = float64(maxQ)
				if utilN > 0 {
					util = utilSum / float64(utilN)
				}
			}
			b.ReportMetric(peak/1000, "queuePeakKB")
			b.ReportMetric(100*util, "meanUtil_pct")
		})
	}
}

// --- Extension baselines: Timely and Swift on the Fig 9 micro-benchmark ---

func BenchmarkExtensionBaselines(b *testing.B) {
	for _, scheme := range []string{SchemeTimely, SchemeSwift} {
		b.Run(scheme, func(b *testing.B) {
			var peak float64
			var first sim.Time
			for i := 0; i < b.N; i++ {
				cfg := DefaultMicroConfig(scheme, 100e9)
				cfg.Duration = 800 * sim.Microsecond
				r, err := RunMicro(cfg)
				if err != nil {
					b.Fatal(err)
				}
				peak, first = r.QueuePeak, r.FirstSlowdown
			}
			b.ReportMetric(peak/1000, "queuePeakKB")
			b.ReportMetric(first.Micros(), "firstSlowdown_us")
		})
	}
}

// --- Substrate microbenchmarks: simulator cost itself ---

func BenchmarkSubstrateDumbbellSimSpeed(b *testing.B) {
	// Cost of simulating 200us of the 2-flow dumbbell with FNCC: reported
	// as wall time per simulated event.
	for i := 0; i < b.N; i++ {
		c := MustChain(DefaultNetConfig(), MustScheme(SchemeFNCC), DefaultChainOpts(2))
		c.AddFlow(1, 0, 1<<40, 0)
		c.AddFlow(2, 1, 1<<40, 50*sim.Microsecond)
		c.Net.RunUntil(200 * sim.Microsecond)
		b.ReportMetric(float64(c.Net.Eng.Processed()), "events")
	}
}
