package fncc_test

import (
	"fmt"

	fncc "repro"
)

// Example_microBenchmark reproduces the paper's §5.1 setup in a few lines:
// two elephants share a dumbbell, the second joins at 300 us, and FNCC's
// sub-RTT notification caps the bottleneck queue below one PFC threshold.
func Example_microBenchmark() {
	chain := fncc.MustChain(fncc.DefaultNetConfig(),
		fncc.MustScheme(fncc.SchemeFNCC), fncc.DefaultChainOpts(2))
	chain.AddFlow(1, 0, 1<<40, 0)
	chain.AddFlow(2, 1, 1<<40, 300*fncc.Microsecond)

	var peak int64
	stop := chain.Net.Eng.Ticker(fncc.Microsecond, func() {
		if q := chain.BottleneckPort().QueueBytes(); q > peak {
			peak = q
		}
	})
	chain.Net.RunUntil(800 * fncc.Microsecond)
	stop()

	fmt.Println("peak below PFC threshold:", peak < 500<<10)
	fmt.Println("pause frames:", chain.Switches[0].PauseFrames)
	// Output:
	// peak below PFC threshold: true
	// pause frames: 0
}

// Example_schemeComparison runs the same scenario under every scheme the
// paper evaluates and prints who reacted to congestion first.
func Example_schemeComparison() {
	type result struct {
		name string
		at   fncc.Time
	}
	var fastest result
	for _, name := range fncc.AllSchemes() {
		r, err := fncc.RunMicro(fncc.DefaultMicroConfig(name, 100e9))
		if err != nil {
			panic(err)
		}
		if r.FirstSlowdown >= 0 && (fastest.name == "" || r.FirstSlowdown < fastest.at) {
			fastest = result{name, r.FirstSlowdown}
		}
	}
	fmt.Println("first to react:", fastest.name)
	// Output:
	// first to react: FNCC
}

// Example_workloads samples the paper's trace-derived distributions.
func Example_workloads() {
	ws, hd := fncc.WebSearch(), fncc.FBHadoop()
	fmt.Println("WebSearch mean > 1MB:", ws.MeanBytes() > 1<<20)
	fmt.Println("Hadoop median fits one MTU:", hd.Quantile(0.5) <= 1518)
	// Output:
	// WebSearch mean > 1MB: true
	// Hadoop median fits one MTU: true
}
