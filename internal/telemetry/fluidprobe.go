package telemetry

import (
	"fmt"

	"repro/internal/fluid"
	"repro/internal/sim"
)

// FluidProbe samples a fluid-backend run: per-flow granted rate ("rate")
// and per-link occupancy ("link", the sum of occupant rates over the
// link's capacity). It installs itself as the Sim's probe callback, which
// the fluid event loop invokes at each sample instant; sampling evaluates
// the engine's lazy rate profiles read-only (Sim.RateAt) and reads link
// occupancy off the persistent per-link occupant sets (Sim.LinkRateBps)
// instead of recomputing it from every active flow's path. Attach after
// every AddFlow and before Run.
type FluidProbe struct {
	rec *Recorder
	sim *fluid.Sim

	flowCol map[uint64]int // flow ID -> rate column
	linkCol []int          // link index -> occupancy column (nil: off)
	linkBps []float64
}

// AttachFluid installs probes on s per cfg, with ring capacity slots (see
// Samples). It returns nil when the config selects no fluid probe class.
func AttachFluid(s *fluid.Sim, cfg Config, capacity int) *FluidProbe {
	if !cfg.Enabled() || (!cfg.Has(ProbeRate) && !cfg.Has(ProbeLink)) {
		return nil
	}
	p := &FluidProbe{rec: NewRecorder(cfg.Interval, capacity), sim: s}
	if cfg.Has(ProbeRate) {
		flows := s.Flows()
		p.flowCol = make(map[uint64]int, len(flows))
		for _, f := range flows {
			p.flowCol[f.ID] = p.rec.AddColumn(fmt.Sprintf("flow%d/rate_bps", f.ID))
		}
	}
	if cfg.Has(ProbeLink) {
		fab := s.Fabric()
		p.linkBps = fab.LinkBps
		p.linkCol = make([]int, len(fab.LinkBps))
		for l := range fab.LinkBps {
			p.linkCol[l] = p.rec.AddColumn(fmt.Sprintf("link%d/occupancy", l))
		}
	}
	s.SetProbe(cfg.Interval, p.observe)
	return p
}

// observe is the Sim probe callback: record each active flow's rate at the
// probe instant and each link's occupancy. Flows not active this tick read
// as 0 (ring slots are zeroed).
func (p *FluidProbe) observe(now sim.Time, active []*fluid.Flow) {
	slot := p.rec.Begin(now)
	if p.flowCol != nil {
		for _, f := range active {
			if c, ok := p.flowCol[f.ID]; ok {
				p.rec.Put(slot, c, p.sim.RateAt(f, now))
			}
		}
	}
	for l, c := range p.linkCol {
		p.rec.Put(slot, c, p.sim.LinkRateBps(l, now)/p.linkBps[l])
	}
}

// Samples returns how many probe ticks have fired so far.
func (p *FluidProbe) Samples() int { return p.rec.Samples() }

// Output exports the retained sample window.
func (p *FluidProbe) Output() *Output { return p.rec.Output() }
