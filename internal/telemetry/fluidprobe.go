package telemetry

import (
	"fmt"

	"repro/internal/fluid"
	"repro/internal/sim"
)

// FluidProbe samples a fluid-backend run: per-flow granted rate ("rate")
// and per-link occupancy ("link", the sum of active-flow rates over the
// link's capacity). It installs itself as the Sim's probe callback, which
// the fluid event loop invokes with the state advanced exactly to each
// sample instant. Attach after every AddFlow and before Run.
type FluidProbe struct {
	rec *Recorder

	flowCol map[uint64]int // flow ID -> rate column
	linkCol []int          // link index -> occupancy column (nil: off)
	linkBps []float64
	occ     []float64 // per-link rate accumulator, reused each tick
}

// AttachFluid installs probes on s per cfg, with ring capacity slots (see
// Samples). It returns nil when the config selects no fluid probe class.
func AttachFluid(s *fluid.Sim, cfg Config, capacity int) *FluidProbe {
	if !cfg.Enabled() || (!cfg.Has(ProbeRate) && !cfg.Has(ProbeLink)) {
		return nil
	}
	p := &FluidProbe{rec: NewRecorder(cfg.Interval, capacity)}
	if cfg.Has(ProbeRate) {
		flows := s.Flows()
		p.flowCol = make(map[uint64]int, len(flows))
		for _, f := range flows {
			p.flowCol[f.ID] = p.rec.AddColumn(fmt.Sprintf("flow%d/rate_bps", f.ID))
		}
	}
	if cfg.Has(ProbeLink) {
		fab := s.Fabric()
		p.linkBps = fab.LinkBps
		p.linkCol = make([]int, len(fab.LinkBps))
		for l := range fab.LinkBps {
			p.linkCol[l] = p.rec.AddColumn(fmt.Sprintf("link%d/occupancy", l))
		}
	}
	p.occ = make([]float64, len(p.linkBps))
	s.SetProbe(cfg.Interval, p.observe)
	return p
}

// observe is the Sim probe callback: record each active flow's rate and
// accumulate per-link occupancy. Flows not active this tick read as 0.
func (p *FluidProbe) observe(now sim.Time, active []*fluid.Flow) {
	slot := p.rec.Begin(now)
	for i := range p.occ {
		p.occ[i] = 0
	}
	for _, f := range active {
		r := f.RateBps()
		if p.flowCol != nil {
			if c, ok := p.flowCol[f.ID]; ok {
				p.rec.Put(slot, c, r)
			}
		}
		if p.linkCol != nil {
			for _, l := range f.Path() {
				p.occ[l] += r
			}
		}
	}
	for l, c := range p.linkCol {
		p.rec.Put(slot, c, p.occ[l]/p.linkBps[l])
	}
}

// Samples returns how many probe ticks have fired so far.
func (p *FluidProbe) Samples() int { return p.rec.Samples() }

// Output exports the retained sample window.
func (p *FluidProbe) Output() *Output { return p.rec.Output() }
