package telemetry

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/trace"
)

// NetProbe samples a packet-backend network on a fixed sim-time interval.
// All column storage and scratch state is allocated in AttachNet; each tick
// only reads counters and writes ring slots, so steady-state sampling is
// allocation-free. Attach after the fabric is wired and flows are added.
type NetProbe struct {
	rec  *Recorder
	net  *netsim.Network
	stop func()

	// Flight recorder (nil unless cfg.TraceCap > 0).
	tr     *trace.Recorder
	detach func()

	// "queue": per wired switch port.
	ports    []*netsim.Port
	qCol     []int     // queue_bytes column per port
	uCol     []int     // util column per port
	lastTx   []uint64  // TxBytes at the previous tick
	fullBits []float64 // line-rate bits per interval (util denominator)

	// "switch": per switch, 4 consecutive columns from swCol.
	switches []*netsim.Switch
	swCol    []int

	// "host": per host, 2 consecutive columns from hostCol.
	hosts   []*netsim.Host
	hostCol []int

	// "cc": per flow rate plus optional Observable internals.
	flows   []*netsim.Flow
	rateCol []int
	obs     []netsim.Observable // nil entry: scheme not observable
	obsCol  []int
	obsN    []int
	scratch []float64 // shared Observable sample buffer
}

// AttachNet installs probes on n per cfg, with ring capacity slots (see
// Samples). It returns nil when the config asks for nothing. A positive
// cfg.TraceCap installs a flight recorder as n.Trace, replacing any
// previously installed sink.
func AttachNet(n *netsim.Network, cfg Config, capacity int) *NetProbe {
	if !cfg.Enabled() {
		return nil
	}
	p := &NetProbe{
		rec: NewRecorder(cfg.Interval, capacity),
		net: n,
	}
	if cfg.Has(ProbeQueue) {
		ival := cfg.Interval.Seconds()
		for _, sw := range n.Switches {
			for i := 0; i < sw.NumPorts(); i++ {
				port := sw.PortAt(i)
				if port.Peer() == nil {
					continue
				}
				p.ports = append(p.ports, port)
				p.qCol = append(p.qCol, p.rec.AddColumn(
					fmt.Sprintf("sw%d/p%d/queue_bytes", sw.ID(), i)))
				p.uCol = append(p.uCol, p.rec.AddColumn(
					fmt.Sprintf("sw%d/p%d/util", sw.ID(), i)))
				p.lastTx = append(p.lastTx, port.TxBytes())
				p.fullBits = append(p.fullBits, float64(port.RateBps())*ival)
			}
		}
	}
	if cfg.Has(ProbeSwitch) {
		for _, sw := range n.Switches {
			p.switches = append(p.switches, sw)
			base := p.rec.AddColumn(fmt.Sprintf("sw%d/ecn_marks", sw.ID()))
			p.rec.AddColumn(fmt.Sprintf("sw%d/pause_tx", sw.ID()))
			p.rec.AddColumn(fmt.Sprintf("sw%d/resume_tx", sw.ID()))
			p.rec.AddColumn(fmt.Sprintf("sw%d/drops", sw.ID()))
			p.swCol = append(p.swCol, base)
		}
	}
	if cfg.Has(ProbeHost) {
		for _, h := range n.Hosts {
			p.hosts = append(p.hosts, h)
			base := p.rec.AddColumn(fmt.Sprintf("host%d/cnp_rx", h.ID()))
			p.rec.AddColumn(fmt.Sprintf("host%d/retx", h.ID()))
			p.hostCol = append(p.hostCol, base)
		}
	}
	if cfg.Has(ProbeCC) {
		maxVars := 0
		for _, f := range n.Flows() {
			p.flows = append(p.flows, f)
			p.rateCol = append(p.rateCol, p.rec.AddColumn(
				fmt.Sprintf("flow%d/rate_bps", f.ID)))
			ob, _ := f.CC().(netsim.Observable)
			p.obs = append(p.obs, ob)
			if ob == nil {
				p.obsCol = append(p.obsCol, -1)
				p.obsN = append(p.obsN, 0)
				continue
			}
			vars := ob.TelemetryVars()
			base := -1
			for vi, v := range vars {
				c := p.rec.AddColumn(fmt.Sprintf("flow%d/cc/%s", f.ID, v))
				if vi == 0 {
					base = c
				}
			}
			p.obsCol = append(p.obsCol, base)
			p.obsN = append(p.obsN, len(vars))
			if len(vars) > maxVars {
				maxVars = len(vars)
			}
		}
		p.scratch = make([]float64, maxVars)
	}
	if len(p.rec.cols) > 0 {
		p.stop = n.GlobalTicker(cfg.Interval, p.sample)
	}
	if cfg.TraceCap > 0 {
		p.tr = trace.NewRecorder(cfg.TraceCap)
		p.detach = p.tr.Attach(n)
	}
	return p
}

// sample takes one tick: read every probed counter into the current ring
// slot. Runs on the engine's ticker path; must not allocate.
func (p *NetProbe) sample() {
	slot := p.rec.Begin(p.net.Eng.Now())
	for i, port := range p.ports {
		p.rec.Put(slot, p.qCol[i], float64(port.QueueBytes()))
		tx := port.TxBytes()
		p.rec.Put(slot, p.uCol[i], float64(tx-p.lastTx[i])*8/p.fullBits[i])
		p.lastTx[i] = tx
	}
	for i, sw := range p.switches {
		c := p.swCol[i]
		p.rec.Put(slot, c, float64(sw.EcnMarks))
		p.rec.Put(slot, c+1, float64(sw.PauseFrames))
		p.rec.Put(slot, c+2, float64(sw.ResumeFrames))
		p.rec.Put(slot, c+3, float64(sw.Drops))
	}
	for i, h := range p.hosts {
		c := p.hostCol[i]
		p.rec.Put(slot, c, float64(h.CnpRx()))
		p.rec.Put(slot, c+1, float64(h.RetxEvents()))
	}
	for i, f := range p.flows {
		p.rec.Put(slot, p.rateCol[i], float64(f.CC().RateBps()))
		if ob := p.obs[i]; ob != nil {
			ob.TelemetrySample(p.scratch)
			base := p.obsCol[i]
			for j := 0; j < p.obsN[i]; j++ {
				p.rec.Put(slot, base+j, p.scratch[j])
			}
		}
	}
}

// Stop halts sampling and detaches the flight recorder. Idempotent; call
// before reading Output so no tick lands mid-export.
func (p *NetProbe) Stop() {
	if p.stop != nil {
		p.stop()
		p.stop = nil
	}
	if p.detach != nil {
		p.detach()
		p.detach = nil
	}
}

// Samples returns how many ticks have fired so far.
func (p *NetProbe) Samples() int { return p.rec.Samples() }

// Output exports the retained sample window and trace events.
func (p *NetProbe) Output() *Output {
	out := p.rec.Output()
	if p.tr != nil {
		out.TraceTotal = p.tr.Total()
		out.Trace = TraceRecords(p.tr.Events())
	}
	return out
}
