package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Recorder is a fixed-capacity ring of column-oriented samples sharing one
// time axis. All storage is allocated up front (AddColumn before the first
// Begin); the sampling path — Begin then Put per column — only indexes into
// it, which is what keeps probe ticks allocation-free. When more samples
// arrive than the capacity holds, the oldest are overwritten, so the ring
// always retains the most recent window.
type Recorder struct {
	interval sim.Time
	times    []sim.Time
	cols     []column
	n        int // total samples taken (may exceed len(times))
}

type column struct {
	name string
	vals []float64
}

// NewRecorder returns a recorder sampling at the given interval with room
// for capacity samples (clamped to at least 1).
func NewRecorder(interval sim.Time, capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{interval: interval, times: make([]sim.Time, capacity)}
}

// AddColumn registers a named series and returns its column index for Put.
// Columns must be registered before the first Begin.
func (r *Recorder) AddColumn(name string) int {
	if r.n > 0 {
		panic("telemetry: AddColumn after sampling started")
	}
	r.cols = append(r.cols, column{name: name, vals: make([]float64, len(r.times))})
	return len(r.cols) - 1
}

// Begin opens the sample at the given time and returns its slot for Put.
// The slot's row is zeroed, so columns not Put this tick read as 0 rather
// than leaking the value the ring held a full wrap ago.
func (r *Recorder) Begin(now sim.Time) int {
	slot := r.n % len(r.times)
	r.times[slot] = now
	for c := range r.cols {
		r.cols[c].vals[slot] = 0
	}
	r.n++
	return slot
}

// Put records one column's value for the sample opened by Begin.
func (r *Recorder) Put(slot, col int, v float64) {
	r.cols[col].vals[slot] = v
}

// Samples returns how many samples have been taken (including overwritten).
func (r *Recorder) Samples() int { return r.n }

// Series is one named value column, aligned with Output.TimesUs.
type Series struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// TraceRecord is one flight-recorder event in export form (JSONL rows).
type TraceRecord struct {
	AtUs    float64 `json:"at_us"`
	Kind    string  `json:"kind"`
	Node    int32   `json:"node"`
	Port    int     `json:"port"`
	Type    string  `json:"type"`
	Flow    uint64  `json:"flow,omitempty"`
	Seq     int64   `json:"seq,omitempty"`
	Size    int     `json:"size,omitempty"`
	RateBps int64   `json:"rate_bps,omitempty"`
}

// Output is a run's exported telemetry: the retained sample window in
// chronological order plus any captured trace events. It marshals to JSON,
// which is how the harness persists it alongside cached results.
type Output struct {
	// IntervalUs is the sampling period in microseconds.
	IntervalUs float64 `json:"interval_us"`
	// Samples counts all samples taken; when it exceeds len(TimesUs) the
	// ring dropped the oldest.
	Samples int `json:"samples"`
	// TimesUs is the shared time axis (microseconds) of every series.
	TimesUs []float64 `json:"times_us,omitempty"`
	// Series holds one value column per probed quantity.
	Series []Series `json:"series,omitempty"`
	// TraceTotal counts all events the flight recorder saw; Trace retains
	// the most recent TraceCap of them.
	TraceTotal uint64        `json:"trace_total,omitempty"`
	Trace      []TraceRecord `json:"trace,omitempty"`
}

// Output unwraps the ring into chronological series.
func (r *Recorder) Output() *Output {
	kept := r.n
	if kept > len(r.times) {
		kept = len(r.times)
	}
	start := 0
	if r.n > len(r.times) {
		start = r.n % len(r.times)
	}
	out := &Output{
		IntervalUs: r.interval.Micros(),
		Samples:    r.n,
		TimesUs:    make([]float64, kept),
		Series:     make([]Series, len(r.cols)),
	}
	for i := 0; i < kept; i++ {
		out.TimesUs[i] = r.times[(start+i)%len(r.times)].Micros()
	}
	for c, col := range r.cols {
		vals := make([]float64, kept)
		for i := 0; i < kept; i++ {
			vals[i] = col.vals[(start+i)%len(r.times)]
		}
		out.Series[c] = Series{Name: col.name, Values: vals}
	}
	return out
}

// SeriesByName returns the named series, or nil if absent.
func (o *Output) SeriesByName(name string) *Series {
	for i := range o.Series {
		if o.Series[i].Name == name {
			return &o.Series[i]
		}
	}
	return nil
}

// ToSeries converts the output into metrics.Series values (shared time
// axis expanded per series), reusing that package's CSV rendering and
// summary statistics.
func (o *Output) ToSeries() []*metrics.Series {
	out := make([]*metrics.Series, len(o.Series))
	for i, s := range o.Series {
		ms := metrics.NewSeries(s.Name)
		for j, v := range s.Values {
			ms.Add(sim.Time(o.TimesUs[j]*float64(sim.Microsecond)+0.5), v)
		}
		out[i] = ms
	}
	return out
}

// TraceRecords converts netsim trace events to export form.
func TraceRecords(evs []netsim.TraceEvent) []TraceRecord {
	out := make([]TraceRecord, len(evs))
	for i, ev := range evs {
		out[i] = TraceRecord{
			AtUs:    ev.At.Micros(),
			Kind:    ev.Kind.String(),
			Node:    ev.Node,
			Port:    ev.Port,
			Type:    ev.Type.String(),
			Flow:    ev.FlowID,
			Seq:     ev.Seq,
			Size:    ev.Size,
			RateBps: ev.Rate,
		}
	}
	return out
}

// WriteTraceJSONL writes one JSON object per line, the conventional format
// for event traces consumed by external tooling.
func WriteTraceJSONL(w io.Writer, recs []TraceRecord) error {
	enc := json.NewEncoder(w)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("telemetry: trace record %d: %w", i, err)
		}
	}
	return nil
}
