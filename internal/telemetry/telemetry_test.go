package telemetry_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/exp"
	"repro/internal/fluid"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topo"
)

func TestConfigEnabled(t *testing.T) {
	var nilCfg *telemetry.Config
	if nilCfg.Enabled() {
		t.Fatal("nil config reports enabled")
	}
	cases := []struct {
		cfg  telemetry.Config
		want bool
	}{
		{telemetry.Config{}, false},
		{telemetry.Config{Interval: sim.Microsecond}, false},
		{telemetry.Config{Probes: []string{"queue"}}, false},
		{telemetry.Config{Interval: sim.Microsecond, Probes: []string{"queue"}}, true},
		{telemetry.Config{Interval: sim.Microsecond, TraceCap: 8}, true},
	}
	for i, c := range cases {
		if got := c.cfg.Enabled(); got != c.want {
			t.Errorf("case %d: Enabled() = %v, want %v", i, got, c.want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	var nilCfg *telemetry.Config
	if err := nilCfg.Validate(telemetry.PacketProbes()); err != nil {
		t.Fatalf("nil config: %v", err)
	}
	ok := telemetry.Config{Interval: sim.Microsecond, Probes: []string{"queue", "cc"}}
	if err := ok.Validate(telemetry.PacketProbes()); err != nil {
		t.Fatalf("valid packet config: %v", err)
	}
	bad := []telemetry.Config{
		{Probes: []string{"queue"}},                             // no interval
		{Interval: sim.Microsecond},                             // nothing selected
		{Interval: sim.Microsecond, TraceCap: -1},               // negative cap
		{Interval: sim.Microsecond, Probes: []string{"bogus"}},  // unknown
		{Interval: sim.Microsecond, Probes: []string{"rate"}},   // fluid-only
		{Interval: -sim.Microsecond, Probes: []string{"queue"}}, // negative
	}
	for i, c := range bad {
		if err := c.Validate(telemetry.PacketProbes()); err == nil {
			t.Errorf("case %d: config %+v validated", i, c)
		}
	}
	fl := telemetry.Config{Interval: sim.Microsecond, Probes: []string{"rate", "link"}}
	if err := fl.Validate(telemetry.FluidProbes()); err != nil {
		t.Fatalf("valid fluid config: %v", err)
	}
}

func TestSamplesClamp(t *testing.T) {
	if n := telemetry.Samples(sim.Millisecond, 0); n != 1 {
		t.Fatalf("zero interval: %d samples, want 1", n)
	}
	if n := telemetry.Samples(100*sim.Microsecond, 10*sim.Microsecond); n != 12 {
		t.Fatalf("100/10us: %d samples, want 12", n)
	}
	if n := telemetry.Samples(sim.Time(1<<60), sim.Nanosecond); n != 1<<20 {
		t.Fatalf("huge span: %d samples, want %d", n, 1<<20)
	}
}

// TestRecorderRingWrap drives a 3-slot ring past capacity and checks the
// export keeps the most recent window in chronological order, with slots
// zeroed on reuse so stale values cannot leak into sparse columns.
func TestRecorderRingWrap(t *testing.T) {
	r := telemetry.NewRecorder(sim.Microsecond, 3)
	a := r.AddColumn("a")
	b := r.AddColumn("b")
	// Sample 5 times at t = 1..5us; column b is only written on the first
	// two ticks, which the ring later overwrites.
	for i := 1; i <= 5; i++ {
		slot := r.Begin(sim.Time(i) * sim.Microsecond)
		r.Put(slot, a, float64(10*i))
		if i <= 2 {
			r.Put(slot, b, float64(i))
		}
	}
	out := r.Output()
	if out.Samples != 5 {
		t.Fatalf("Samples = %d, want 5", out.Samples)
	}
	wantT := []float64{3, 4, 5}
	if len(out.TimesUs) != len(wantT) {
		t.Fatalf("kept %d samples, want %d", len(out.TimesUs), len(wantT))
	}
	for i, w := range wantT {
		if out.TimesUs[i] != w {
			t.Fatalf("TimesUs[%d] = %v, want %v", i, out.TimesUs[i], w)
		}
	}
	sa := out.SeriesByName("a")
	for i, w := range []float64{30, 40, 50} {
		if sa.Values[i] != w {
			t.Fatalf("a[%d] = %v, want %v", i, sa.Values[i], w)
		}
	}
	for i, v := range out.SeriesByName("b").Values {
		if v != 0 {
			t.Fatalf("b[%d] = %v, want 0 (slot not zeroed on reuse)", i, v)
		}
	}
	if out.SeriesByName("nope") != nil {
		t.Fatal("SeriesByName found a series that does not exist")
	}
}

func TestRecorderAddColumnAfterBeginPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddColumn after Begin did not panic")
		}
	}()
	r := telemetry.NewRecorder(sim.Microsecond, 2)
	r.AddColumn("a")
	r.Begin(0)
	r.AddColumn("b")
}

// chainProbe builds a 2-sender chain with long-lived flows and attaches a
// probe with the given config.
func chainProbe(t *testing.T, scheme string, cfg telemetry.Config) (*topo.Chain, *telemetry.NetProbe) {
	t.Helper()
	s, err := exp.NewScheme(scheme)
	if err != nil {
		t.Fatal(err)
	}
	opts := topo.DefaultChainOpts(2)
	c, err := topo.BuildChain(netsim.DefaultConfig(), s, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.AddFlow(1, 0, 1<<30, 0)
	c.AddFlow(2, 1, 1<<30, 0)
	return c, telemetry.AttachNet(c.Net, cfg, telemetry.Samples(sim.Millisecond, cfg.Interval))
}

func TestNetProbeSeries(t *testing.T) {
	cfg := telemetry.Config{
		Interval: 5 * sim.Microsecond,
		Probes:   telemetry.PacketProbes(),
		TraceCap: 256,
	}
	c, tp := chainProbe(t, exp.SchemeDCQCN, cfg)
	if tp == nil {
		t.Fatal("AttachNet returned nil for an enabled config")
	}
	c.Net.RunUntil(300 * sim.Microsecond)
	tp.Stop()
	out := tp.Output()
	if out.Samples < 50 {
		t.Fatalf("only %d samples over 300us at 5us interval", out.Samples)
	}
	// One series per probed quantity, including the DCQCN Observable vars.
	// Host/switch columns are named by node ID, so match by suffix.
	bySuffix := func(suffix string) *telemetry.Series {
		for i := range out.Series {
			if strings.HasSuffix(out.Series[i].Name, suffix) {
				return &out.Series[i]
			}
		}
		return nil
	}
	for _, suffix := range []string{
		"/ecn_marks", "/cnp_rx", "/retx", "/queue_bytes", "/util",
	} {
		if bySuffix(suffix) == nil {
			t.Errorf("missing series *%s (have %d series)", suffix, len(out.Series))
		}
	}
	for _, name := range []string{
		"flow1/rate_bps", "flow1/cc/alpha", "flow1/cc/target_rate_bps",
	} {
		if out.SeriesByName(name) == nil {
			t.Errorf("missing series %q (have %d series)", name, len(out.Series))
		}
	}
	// Two competing flows through one bottleneck: DCQCN must have marked and
	// sent CNPs by 300us, and the cumulative counters must be monotone.
	var markTotal float64
	for i := range out.Series {
		if strings.HasSuffix(out.Series[i].Name, "/ecn_marks") {
			markTotal += out.Series[i].Values[len(out.Series[i].Values)-1]
		}
	}
	if markTotal == 0 {
		t.Error("no ECN marks recorded in a congested run")
	}
	var cnpTotal float64
	for i := range out.Series {
		if !strings.HasSuffix(out.Series[i].Name, "/cnp_rx") {
			continue
		}
		last := -1.0
		for j, v := range out.Series[i].Values {
			if v < last {
				t.Fatalf("%s not monotone at sample %d: %v -> %v",
					out.Series[i].Name, j, last, v)
			}
			last = v
		}
		cnpTotal += last
	}
	if cnpTotal == 0 {
		t.Error("no CNPs recorded under DCQCN congestion")
	}
	// Rates must be populated and positive while the flows are active.
	rate := out.SeriesByName("flow1/rate_bps").Values
	if rate[len(rate)-1] <= 0 {
		t.Error("flow1 rate not sampled")
	}
	if out.TraceTotal == 0 || len(out.Trace) == 0 {
		t.Fatalf("flight recorder captured nothing (total=%d len=%d)",
			out.TraceTotal, len(out.Trace))
	}
	if len(out.Trace) > cfg.TraceCap {
		t.Fatalf("trace kept %d events, cap %d", len(out.Trace), cfg.TraceCap)
	}
	kinds := map[string]bool{}
	for _, r := range out.Trace {
		kinds[r.Kind] = true
	}
	for _, k := range []string{"enq", "deq"} {
		if !kinds[k] {
			t.Errorf("trace has no %q events (kinds: %v)", k, kinds)
		}
	}
}

// TestNetProbeSteadyStateZeroAlloc is the tentpole's hard requirement from
// the other side: with probes attached, steady-state sampling allocates
// nothing after warm-up.
func TestNetProbeSteadyStateZeroAlloc(t *testing.T) {
	cfg := telemetry.Config{
		Interval: 5 * sim.Microsecond,
		Probes:   telemetry.PacketProbes(),
	}
	c, tp := chainProbe(t, exp.SchemeDCQCN, cfg)
	defer tp.Stop()
	deadline := 200 * sim.Microsecond
	c.Net.RunUntil(deadline) // warm-up: pools filled, rings allocated
	avg := testing.AllocsPerRun(10, func() {
		deadline += 50 * sim.Microsecond
		c.Net.RunUntil(deadline)
	})
	if avg != 0 {
		t.Fatalf("steady-state sampling allocates %.1f objects per 50us slice", avg)
	}
}

func TestAttachNetDisabled(t *testing.T) {
	s, err := exp.NewScheme(exp.SchemeFNCC)
	if err != nil {
		t.Fatal(err)
	}
	c, err := topo.BuildChain(netsim.DefaultConfig(), s, topo.DefaultChainOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if tp := telemetry.AttachNet(c.Net, telemetry.Config{}, 8); tp != nil {
		t.Fatal("AttachNet attached a probe for the zero config")
	}
	if c.Net.Trace != nil {
		t.Fatal("disabled config installed a trace sink")
	}
}

func TestFluidProbeSeries(t *testing.T) {
	fanout := 4
	attach := make([]int, fanout)
	for i := range attach {
		attach[i] = 2
	}
	fb, err := fluid.NewChain(fluid.DefaultConfig(), fluid.ChainOpts{
		Switches:     3,
		SenderAttach: attach,
		RateBps:      100e9,
		Delay:        sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := fluid.NewSim(fb, fluid.Model{})
	receiver := fb.Hosts - 1
	for i := 0; i < fanout; i++ {
		if _, err := s.AddFlow(uint64(i+1), i, receiver, 10<<20, 0); err != nil {
			t.Fatal(err)
		}
	}
	cfg := telemetry.Config{
		Interval: 20 * sim.Microsecond,
		Probes:   telemetry.FluidProbes(),
	}
	tp := telemetry.AttachFluid(s, cfg, telemetry.Samples(10*sim.Millisecond, cfg.Interval))
	if tp == nil {
		t.Fatal("AttachFluid returned nil for an enabled config")
	}
	s.Run(10 * sim.Millisecond)
	out := tp.Output()
	if out.Samples < 10 {
		t.Fatalf("only %d fluid samples", out.Samples)
	}
	// While all 4 flows share the receiver access link, each holds 1/4 of
	// it and the bottleneck link sits at full occupancy.
	rates := out.SeriesByName("flow1/rate_bps")
	if rates == nil {
		t.Fatal("missing flow1/rate_bps")
	}
	mid := len(rates.Values) / 4
	if got, want := rates.Values[mid], 25e9; got < want*0.99 || got > want*1.01 {
		t.Fatalf("flow1 rate at sample %d = %g, want ~%g", mid, got, want)
	}
	var occPeak float64
	for _, sr := range out.Series {
		if !strings.Contains(sr.Name, "occupancy") {
			continue
		}
		for _, v := range sr.Values {
			if v > occPeak {
				occPeak = v
			}
			if v > 1.0000001 {
				t.Fatalf("%s exceeds capacity: %v", sr.Name, v)
			}
		}
	}
	if occPeak < 0.99 {
		t.Fatalf("bottleneck occupancy peak %v, want ~1", occPeak)
	}
}

func TestAttachFluidPacketOnlyProbes(t *testing.T) {
	fb, err := fluid.NewChain(fluid.DefaultConfig(), fluid.ChainOpts{
		Switches: 1, SenderAttach: []int{0}, RateBps: 100e9, Delay: sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := fluid.NewSim(fb, fluid.Model{})
	cfg := telemetry.Config{Interval: sim.Microsecond, Probes: []string{"queue"}}
	if tp := telemetry.AttachFluid(s, cfg, 8); tp != nil {
		t.Fatal("AttachFluid attached for packet-only probes")
	}
}

func TestWriteTraceJSONL(t *testing.T) {
	recs := []telemetry.TraceRecord{
		{AtUs: 1.5, Kind: "enq", Node: 3, Port: 1, Type: "DATA", Flow: 7, Seq: 4096, Size: 1000},
		{AtUs: 2.0, Kind: "rate", Node: 100, Type: "DATA", Flow: 7, RateBps: 5e9},
	}
	var buf bytes.Buffer
	if err := telemetry.WriteTraceJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	var back telemetry.TraceRecord
	if err := json.Unmarshal([]byte(lines[0]), &back); err != nil {
		t.Fatal(err)
	}
	if back != recs[0] {
		t.Fatalf("roundtrip mismatch: %+v != %+v", back, recs[0])
	}
	// Zero-valued optional fields stay off the wire.
	if strings.Contains(lines[0], "rate_bps") || strings.Contains(lines[1], "size") {
		t.Fatalf("omitempty fields serialized: %s / %s", lines[0], lines[1])
	}
}

func TestOutputToSeriesCSV(t *testing.T) {
	r := telemetry.NewRecorder(10*sim.Microsecond, 4)
	q := r.AddColumn("sw0/p0/queue_bytes")
	for i := 1; i <= 3; i++ {
		slot := r.Begin(sim.Time(10*i) * sim.Microsecond)
		r.Put(slot, q, float64(1000*i))
	}
	series := r.Output().ToSeries()
	if len(series) != 1 {
		t.Fatalf("got %d series, want 1", len(series))
	}
	csv := series[0].CSV()
	if !strings.HasPrefix(csv, "# sw0/p0/queue_bytes\ntime_us,value\n") {
		t.Fatalf("unexpected CSV header:\n%s", csv)
	}
	if !strings.Contains(csv, "20.000,2000.000") {
		t.Fatalf("CSV missing sample row:\n%s", csv)
	}
}

func TestOutputJSONRoundTrip(t *testing.T) {
	r := telemetry.NewRecorder(sim.Microsecond, 4)
	a := r.AddColumn("a")
	slot := r.Begin(sim.Microsecond)
	r.Put(slot, a, 42)
	out := r.Output()
	out.TraceTotal = 3
	out.Trace = []telemetry.TraceRecord{{AtUs: 1, Kind: "enq", Type: "DATA"}}
	blob, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	var back telemetry.Output
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Samples != 1 || back.SeriesByName("a").Values[0] != 42 ||
		back.TraceTotal != 3 || len(back.Trace) != 1 {
		t.Fatalf("roundtrip mismatch: %+v", back)
	}
}
