// Package telemetry is the in-simulation observability layer: time-series
// probes over both simulation backends plus an opt-in bounded event trace.
//
// The design constraint is zero cost when off and allocation-free when on:
// with no probe attached the substrates pay only nil-checked Trace branches
// and plain counter increments; with probes attached, every sample lands in
// ring/column buffers preallocated at attach time, so steady-state sampling
// performs no allocation (enforced by tests and cmd/benchguard).
//
// Probe classes map to the two backends:
//
//   - packet (internal/netsim): "queue" (per-port queue depth and link
//     utilization), "switch" (ECN marks, PFC pause/resume, drops), "host"
//     (CNP receipts, go-back-N rewinds), "cc" (per-flow pacing rate plus
//     any netsim.Observable scheme internals such as DCQCN's alpha);
//   - fluid (internal/fluid): "rate" (per-flow granted rate), "link"
//     (per-link occupancy, the water-filling allocation over capacity).
//
// Event tracing ("trace_cap") rides netsim's typed Network.Trace stream and
// is therefore packet-only.
package telemetry

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Probe class names. Packet classes sample netsim state; fluid classes
// sample the water-filling allocation.
const (
	ProbeQueue  = "queue"
	ProbeSwitch = "switch"
	ProbeHost   = "host"
	ProbeCC     = "cc"
	ProbeRate   = "rate"
	ProbeLink   = "link"
)

// PacketProbes returns the probe classes the packet backend supports.
func PacketProbes() []string {
	return []string{ProbeQueue, ProbeSwitch, ProbeHost, ProbeCC}
}

// FluidProbes returns the probe classes the fluid backend supports.
func FluidProbes() []string {
	return []string{ProbeRate, ProbeLink}
}

// AllProbes returns every probe class, packet first.
func AllProbes() []string {
	return append(PacketProbes(), FluidProbes()...)
}

// Config selects what a run samples. The zero value (and a nil pointer)
// means telemetry off.
type Config struct {
	// Interval is the sampling period in simulation time. Probing and
	// tracing both require it to be positive.
	Interval sim.Time
	// Probes lists the probe classes to sample (see the package constants).
	Probes []string
	// TraceCap, when positive, bounds an event flight-recorder over the
	// packet backend's Network.Trace stream (most recent events win).
	TraceCap int
}

// Enabled reports whether the config asks for any instrumentation.
// Nil-safe, so call sites can keep a *Config field and never branch twice.
func (c *Config) Enabled() bool {
	return c != nil && c.Interval > 0 && (len(c.Probes) > 0 || c.TraceCap > 0)
}

// Has reports whether the config selects the given probe class.
func (c *Config) Has(probe string) bool {
	if c == nil {
		return false
	}
	for _, p := range c.Probes {
		if p == probe {
			return true
		}
	}
	return false
}

// Validate checks interval, trace bound and probe names against the given
// supported set (use PacketProbes or FluidProbes per backend).
func (c *Config) Validate(supported []string) error {
	if c == nil {
		return nil
	}
	if c.Interval <= 0 {
		return fmt.Errorf("telemetry: non-positive sample interval %v", c.Interval)
	}
	if c.TraceCap < 0 {
		return fmt.Errorf("telemetry: negative trace cap %d", c.TraceCap)
	}
	if len(c.Probes) == 0 && c.TraceCap == 0 {
		return fmt.Errorf("telemetry: no probes and no trace cap")
	}
	for _, p := range c.Probes {
		ok := false
		for _, s := range supported {
			if p == s {
				ok = true
				break
			}
		}
		if !ok {
			sorted := append([]string(nil), supported...)
			sort.Strings(sorted)
			return fmt.Errorf("telemetry: unsupported probe %q (have %v)", p, sorted)
		}
	}
	return nil
}

// Samples sizes a Recorder for a run of the given span: one slot per
// interval plus slack, clamped to [1, 1<<20] so a misconfigured interval
// cannot demand unbounded memory (the ring keeps the most recent window).
func Samples(span, interval sim.Time) int {
	if interval <= 0 {
		return 1
	}
	n := int(span/interval) + 2
	if n < 1 {
		n = 1
	}
	if n > 1<<20 {
		n = 1 << 20
	}
	return n
}
