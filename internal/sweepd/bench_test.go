package sweepd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/scenario"
)

// benchSpecs is the sweep both benchmarks run: four schemes over a ~50 ms
// micro point, no cache dir, so simulation dominates and the ratio
// isolates the service envelope (HTTP submit, queueing, NDJSON streaming).
func benchSpecs() []scenario.Spec {
	specs := make([]scenario.Spec, 0, 4)
	for _, scheme := range []string{"FNCC", "HPCC", "DCQCN", "RoCC"} {
		specs = append(specs, scenario.Spec{
			Kind: scenario.KindMicro, Scheme: scheme, DurationUs: 2000,
		})
	}
	return specs
}

// BenchmarkSweepDirect is the baseline: the same sweep through the Runner
// with no server in front.
func BenchmarkSweepDirect(b *testing.B) {
	specs := benchSpecs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &harness.Runner{Workers: 4}
		if _, err := r.RunAll(specs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepServe runs the identical sweep through the full service
// path — HTTP submit, the shared worker pool, and an NDJSON stream read to
// completion. The benchguard serve_overhead gate holds this within 5% of
// BenchmarkSweepDirect: the server must stay an envelope, not a tax.
func BenchmarkSweepServe(b *testing.B) {
	specs := benchSpecs()
	srv, err := New(Config{Runner: &harness.Runner{Workers: 4}, Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(time.Minute)
	body, err := json.Marshal(SubmitRequest{Specs: specs})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/sweeps", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var sr SubmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		stream, err := http.Get(ts.URL + sr.Results)
		if err != nil {
			b.Fatal(err)
		}
		sc := bufio.NewScanner(stream.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		points := 0
		for sc.Scan() {
			points++
		}
		stream.Body.Close()
		if sc.Err() != nil || points != len(specs) {
			b.Fatalf("streamed %d points, err %v", points, sc.Err())
		}
	}
}
