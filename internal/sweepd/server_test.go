package sweepd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// slowSpec is a micro run long enough (~50 ms wall) that streaming
// assertions can observe a sweep mid-flight without sleeping.
func slowSpec(scheme string) scenario.Spec {
	return scenario.Spec{Kind: scenario.KindMicro, Scheme: scheme, DurationUs: 2000}
}

// fastSpec is the cheapest distinct-per-scheme job for plumbing tests.
func fastSpec(scheme string) scenario.Spec {
	return scenario.Spec{Kind: scenario.KindMicro, Scheme: scheme, DurationUs: 50}
}

func newTestServer(t *testing.T, cacheDir string, workers int) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	runner := &harness.Runner{CacheDir: cacheDir, Obs: reg}
	srv, err := New(Config{Runner: runner, Workers: workers, Reg: reg, Tracer: obs.NewTracer()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Drain(10 * time.Second) })
	return srv, ts, reg
}

func submit(t *testing.T, ts *httptest.Server, req SubmitRequest) SubmitResponse {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit status %d: %v", resp.StatusCode, e)
	}
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// streamAll reads the whole NDJSON result stream.
func streamAll(t *testing.T, ts *httptest.Server, path string) []Point {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pts []Point
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var p Point
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		pts = append(pts, p)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return pts
}

// TestStreamBeforeCompletion is the service's defining property: GET
// /sweeps/{id}/results delivers points while the sweep is still running.
// One worker and four ~50 ms jobs leave a wide window — after the first
// streamed point, at least two jobs have not started yet.
func TestStreamBeforeCompletion(t *testing.T) {
	_, ts, _ := newTestServer(t, t.TempDir(), 1)
	sr := submit(t, ts, SubmitRequest{
		Base: slowSpec("FNCC"),
		Grid: harness.Grid{Schemes: []string{"FNCC", "HPCC", "DCQCN", "RoCC"}},
	})
	if sr.Points != 4 {
		t.Fatalf("points = %d, want 4", sr.Points)
	}
	resp, err := http.Get(ts.URL + sr.Results)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	if !sc.Scan() {
		t.Fatalf("stream ended before first point: %v", sc.Err())
	}
	var first Point
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if first.Error != "" || first.Row == nil {
		t.Fatalf("first point = %+v", first)
	}
	// The stream delivered a point; the sweep must still be running.
	if st := getStatus(t, ts, sr.ID); st.Finished {
		t.Errorf("sweep already finished when the first point arrived: %+v", st)
	}
	rest := 1
	for sc.Scan() {
		rest++
	}
	if rest != 4 {
		t.Fatalf("streamed %d points, want 4", rest)
	}
	if st := getStatus(t, ts, sr.ID); !st.Finished || st.Done != 4 || st.Errored != 0 {
		t.Errorf("final status %+v", st)
	}
}

// TestResubmitAllCached: the same sweep twice is one set of simulations
// and one full replay from cache — the exactly-once spec-hash contract
// surfaced at the HTTP layer.
func TestResubmitAllCached(t *testing.T) {
	srv, ts, reg := newTestServer(t, t.TempDir(), 4)
	req := SubmitRequest{
		Base: fastSpec("FNCC"),
		Grid: harness.Grid{Schemes: []string{"FNCC", "HPCC"}},
	}
	sr1 := submit(t, ts, req)
	pts1 := streamAll(t, ts, sr1.Results)
	if len(pts1) != 2 {
		t.Fatalf("first sweep streamed %d points", len(pts1))
	}
	missesAfterFirst := reg.Snapshot().Counters[harness.MetricCacheMisses]
	if missesAfterFirst != 2 {
		t.Fatalf("first sweep misses = %d, want 2", missesAfterFirst)
	}

	sr2 := submit(t, ts, req)
	pts2 := streamAll(t, ts, sr2.Results)
	if len(pts2) != 2 {
		t.Fatalf("resubmit streamed %d points", len(pts2))
	}
	for _, p := range pts2 {
		if !p.Cached {
			t.Errorf("resubmitted point %d not served from cache", p.Index)
		}
	}
	if got := reg.Snapshot().Counters[harness.MetricCacheMisses]; got != missesAfterFirst {
		t.Errorf("resubmit simulated: misses %d -> %d", missesAfterFirst, got)
	}
	if st := getStatus(t, ts, sr2.ID); st.Cached != 2 {
		t.Errorf("resubmit status %+v, want cached=2", st)
	}
	// Metric maps must replay bit-identically. Points stream in completion
	// order, so match them by sweep index, not stream position.
	byIdx := map[int]Point{}
	for _, p := range pts1 {
		byIdx[p.Index] = p
	}
	for _, p := range pts2 {
		orig, ok := byIdx[p.Index]
		if !ok {
			t.Fatalf("replayed point %d missing from first run", p.Index)
		}
		for k, v := range orig.Row.Metrics {
			if p.Row.Metrics[k] != v {
				t.Errorf("point %d metric %s = %v, want %v", p.Index, k, p.Row.Metrics[k], v)
			}
		}
	}
	_ = srv
}

// TestConcurrentClientsOneSimulation: N clients submitting the same spec
// at the same moment produce exactly one simulation — the singleflight
// layer observed through the HTTP front end, verified by the coalesced/
// miss counters. Runs under -race in CI.
func TestConcurrentClientsOneSimulation(t *testing.T) {
	_, ts, reg := newTestServer(t, t.TempDir(), 8)
	const clients = 6
	var wg sync.WaitGroup
	ids := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(SubmitRequest{Base: slowSpec("FNCC")})
			resp, err := http.Post(ts.URL+"/sweeps", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var sr SubmitResponse
			json.NewDecoder(resp.Body).Decode(&sr)
			ids[i] = sr.ID
		}(i)
	}
	wg.Wait()
	// Stream every sweep to completion.
	for _, id := range ids {
		if id == "" {
			t.Fatal("a submit failed")
		}
		pts := streamAll(t, ts, "/sweeps/"+id+"/results")
		if len(pts) != 1 || pts[0].Error != "" {
			t.Fatalf("sweep %s: %+v", id, pts)
		}
	}
	s := reg.Snapshot()
	misses := s.Counters[harness.MetricCacheMisses]
	coalesced := s.Counters[harness.MetricCacheCoalesced]
	hits := s.Counters[harness.MetricCacheHits]
	if misses != 1 {
		t.Errorf("misses = %d, want exactly 1 simulation for %d clients", misses, clients)
	}
	if hits+coalesced != clients-1 {
		t.Errorf("hits=%d coalesced=%d, want %d covered without simulating",
			hits, coalesced, clients-1)
	}
}

// TestDrainInterruptsAndResumes: draining mid-sweep finishes in-flight
// jobs, skips the rest, marks the sweep interrupted — and a fresh server
// on the same cache dir serves the finished prefix as hits.
func TestDrainInterruptsAndResumes(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	runner := &harness.Runner{CacheDir: dir, Obs: reg}
	srv, err := New(Config{Runner: runner, Workers: 1, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sr := submit(t, ts, SubmitRequest{
		Base: slowSpec("FNCC"),
		Grid: harness.Grid{Schemes: []string{"FNCC", "HPCC", "DCQCN", "RoCC"}},
	})
	// Wait for the first point so the drain lands mid-sweep.
	resp, err := http.Get(ts.URL + sr.Results)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	if !sc.Scan() {
		t.Fatal("no first point before drain")
	}
	if err := srv.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	st := getStatus(t, ts, sr.ID)
	if !st.Finished || !st.Interrupted {
		t.Fatalf("drained sweep status %+v, want finished+interrupted", st)
	}
	if st.Done < 1 || st.Done+st.Skipped != st.Total || st.Running != 0 {
		t.Fatalf("drained sweep accounting %+v", st)
	}
	// New submissions are refused while drained.
	body, _ := json.Marshal(SubmitRequest{Base: fastSpec("FNCC")})
	r2, err := http.Post(ts.URL+"/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", r2.StatusCode)
	}

	// Restart on the same cache dir: the finished prefix is all hits.
	reg2 := obs.NewRegistry()
	runner2 := &harness.Runner{CacheDir: dir, Obs: reg2}
	srv2, err := New(Config{Runner: runner2, Workers: 2, Reg: reg2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Drain(10 * time.Second)
	sr2 := submit(t, ts2, SubmitRequest{
		Base: slowSpec("FNCC"),
		Grid: harness.Grid{Schemes: []string{"FNCC", "HPCC", "DCQCN", "RoCC"}},
	})
	pts := streamAll(t, ts2, sr2.Results)
	if len(pts) != 4 {
		t.Fatalf("resumed sweep streamed %d points", len(pts))
	}
	s2 := reg2.Snapshot()
	if int(s2.Counters[harness.MetricCacheHits]) < st.Done {
		t.Errorf("resume served %d hits, want >= %d (drained jobs lost their cache writes)",
			s2.Counters[harness.MetricCacheHits], st.Done)
	}
	if got := s2.Counters[harness.MetricCacheMisses]; got != int64(4-st.Done) {
		t.Errorf("resume simulated %d points, want %d", got, 4-st.Done)
	}
}

// TestSubmitValidation: malformed bodies and unknown resources get typed
// JSON errors with the right status codes, never a panic or a hang.
func TestSubmitValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, "", 2)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", "{not json", http.StatusBadRequest},
		{"empty body", "{}", http.StatusBadRequest},
		{"invalid spec", `{"base": {"kind": "no-such-kind", "scheme": "FNCC"}}`, http.StatusBadRequest},
		{"bad grid point", `{"base": {"kind": "fct", "scheme": "FNCC", "workload": {"cdf": "websearch"}, "load": 0.5, "duration_us": 100}, "grid": {"sizes": [5]}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%v)", tc.name, resp.StatusCode, tc.want, e)
		}
		if e["error"] == "" {
			t.Errorf("%s: no error body", tc.name)
		}
	}
	for _, path := range []string{"/sweeps/s-999", "/sweeps/s-999/results"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestProgressAndList: /progress carries per-sweep rows and /sweeps lists
// submissions in order; /debug/vars serves the registry the runner feeds.
func TestProgressAndList(t *testing.T) {
	_, ts, _ := newTestServer(t, t.TempDir(), 2)
	a := submit(t, ts, SubmitRequest{Base: fastSpec("FNCC")})
	b := submit(t, ts, SubmitRequest{Base: fastSpec("HPCC")})
	streamAll(t, ts, a.Results)
	streamAll(t, ts, b.Results)

	resp, err := http.Get(ts.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var prog struct {
		Sweeps []Status `json:"sweeps"`
	}
	err = json.NewDecoder(resp.Body).Decode(&prog)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Sweeps) != 2 || prog.Sweeps[0].ID != a.ID || prog.Sweeps[1].ID != b.ID {
		t.Fatalf("/progress sweeps = %+v", prog.Sweeps)
	}
	for _, st := range prog.Sweeps {
		if !st.Finished || st.Done != 1 {
			t.Errorf("sweep %s not settled in /progress: %+v", st.ID, st)
		}
	}

	lresp, err := http.Get(ts.URL + "/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	var list []Status
	err = json.NewDecoder(lresp.Body).Decode(&list)
	lresp.Body.Close()
	if err != nil || len(list) != 2 {
		t.Fatalf("/sweeps list = %d entries, err %v", len(list), err)
	}

	vresp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	err = json.NewDecoder(vresp.Body).Decode(&snap)
	vresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters[MetricSweepsSubmitted] != 2 {
		t.Errorf("%s = %d, want 2", MetricSweepsSubmitted, snap.Counters[MetricSweepsSubmitted])
	}
	if snap.Counters[MetricRequests] == 0 {
		t.Error("request middleware recorded nothing")
	}
	if snap.Histograms[MetricRequestMs].Count == 0 {
		t.Error("request latency histogram empty")
	}
}

// TestResultsResume: ?from=N replays only the tail, and a post-completion
// stream replays everything.
func TestResultsResume(t *testing.T) {
	_, ts, _ := newTestServer(t, t.TempDir(), 2)
	sr := submit(t, ts, SubmitRequest{
		Base: fastSpec("FNCC"),
		Grid: harness.Grid{Schemes: []string{"FNCC", "HPCC", "DCQCN"}},
	})
	all := streamAll(t, ts, sr.Results)
	if len(all) != 3 {
		t.Fatalf("streamed %d points", len(all))
	}
	tail := streamAll(t, ts, sr.Results+"?from=2")
	if len(tail) != 1 || tail[0].Index != all[2].Index {
		t.Fatalf("resume tail = %+v", tail)
	}
	if bad := streamAllStatus(t, ts, sr.Results+"?from=-1"); bad != http.StatusBadRequest {
		t.Errorf("from=-1 status = %d, want 400", bad)
	}
}

func streamAllStatus(t *testing.T, ts *httptest.Server, path string) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestErroredPointStreams: a point that fails simulation streams as an
// error entry; the sweep still finishes and the good points survive.
func TestErroredPointStreams(t *testing.T) {
	_, ts, reg := newTestServer(t, "", 2)
	bad := fastSpec("FNCC")
	bad.Kind = "no-such-kind"
	sr := SubmitRequest{Specs: []scenario.Spec{fastSpec("FNCC"), bad}}
	body, _ := json.Marshal(sr)
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Submit validates specs up front, so the invalid point is rejected at
	// admission — the service never wastes workers on a doomed sweep.
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("submit with invalid point = %d, want 400", resp.StatusCode)
	}
	if got := reg.Snapshot().Counters[MetricSweepsSubmitted]; got != 0 {
		t.Errorf("rejected sweep counted as submitted: %d", got)
	}
	_ = fmt.Sprint()
}
