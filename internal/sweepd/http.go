package sweepd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// SubmitRequest is POST /sweeps' JSON body: either a base spec plus grid
// (the same shape `fnccbench sweep` expands, and harness.Sweep's JSON
// encoding) or an explicit spec list. When both are present the explicit
// list wins.
type SubmitRequest struct {
	Base  scenario.Spec   `json:"base"`
	Grid  harness.Grid    `json:"grid"`
	Specs []scenario.Spec `json:"specs,omitempty"`
}

// SubmitResponse acknowledges an admitted sweep.
type SubmitResponse struct {
	ID     string `json:"id"`
	Points int    `json:"points"`
	// Results is the streaming endpoint for this sweep, NDJSON, points in
	// completion order while the sweep runs.
	Results string `json:"results"`
}

// maxSubmitBytes bounds a submit body; a sweep request is a spec and a
// grid, not a payload.
const maxSubmitBytes = 1 << 20

// Handler returns the service's HTTP surface:
//
//	POST /sweeps                submit (SubmitRequest -> SubmitResponse)
//	GET  /sweeps                list sweep statuses
//	GET  /sweeps/{id}           one sweep's status
//	GET  /sweeps/{id}/results   NDJSON result stream (?from=N resumes)
//	GET  /progress              per-sweep rows + runner snapshot
//	GET  /debug/vars            metrics-registry snapshot
//	GET  /debug/pprof/*         pprof
//
// Every handler runs inside the request-metrics middleware: a server.*
// counter bump, a request span, and a latency histogram observation.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sweeps", s.handleSubmit)
	mux.HandleFunc("POST /sweeps/{$}", s.handleSubmit)
	mux.HandleFunc("GET /sweeps", s.handleList)
	mux.HandleFunc("GET /sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /sweeps/{id}/results", s.handleResults)
	// The live debug surface every fnccbench -listen already serves, with
	// /progress promoted from one sweep's snapshot to the service table.
	debug := obs.NewDebugMux(s.reg, func() any { return s.progressBody() })
	mux.Handle("GET /progress", debug)
	mux.Handle("GET /debug/", debug)
	return s.instrument(mux)
}

// progressBody is /progress's JSON shape at service scope: one row per
// sweep plus the registry's live sweep/cache counters and the open spans.
type progressBodyT struct {
	Sweeps []Status         `json:"sweeps"`
	Jobs   []obs.ActiveSpan `json:"jobs,omitempty"`
}

func (s *Server) progressBody() any {
	return progressBodyT{Sweeps: s.statuses(), Jobs: s.tracer.Active()}
}

// instrument wraps the mux with the request middleware.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started := time.Now()
		s.reg.Counter(MetricRequests).Add(1)
		span := s.tracer.Start("http", nil)
		span.SetAttr("method", r.Method)
		span.SetAttr("path", r.URL.Path)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		span.SetAttr("status", strconv.Itoa(sw.code))
		span.End()
		if sw.code >= 400 {
			s.reg.Counter(MetricRequestErrors).Add(1)
		}
		s.reg.Histogram(MetricRequestMs).
			Observe(float64(time.Since(started).Nanoseconds()) / 1e6)
	})
}

// statusWriter records the response code for the middleware, forwarding
// Flush so NDJSON streaming keeps working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSubmitBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	if len(body) > maxSubmitBytes {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("submit body exceeds %d bytes", maxSubmitBytes))
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("parse sweep: %w", err))
		return
	}
	specs := req.Specs
	if len(specs) == 0 {
		specs, err = harness.Sweep{Base: req.Base, Grid: req.Grid}.Expand()
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}
	sw, err := s.Submit(specs)
	switch {
	case err == errDraining:
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(SubmitResponse{
		ID:      sw.id,
		Points:  len(specs),
		Results: "/sweeps/" + sw.id + "/results",
	})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.statuses())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(sw.status())
}

// handleResults streams a sweep's points as NDJSON in completion order,
// flushing after every batch so clients see points while the sweep is
// still running. ?from=N skips the first N points (resume after a dropped
// connection). The stream ends when every point has been delivered; a
// client connecting after the sweep finished gets the full replay.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad from=%q", v))
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := from
	for {
		pts, finished := sw.snapshot(sent)
		for _, p := range pts {
			if err := enc.Encode(p); err != nil {
				return // client went away
			}
			sent++
		}
		if flusher != nil {
			flusher.Flush()
		}
		if finished && sent >= sw.total() {
			return
		}
		select {
		case <-sw.await(sent):
		case <-r.Context().Done():
			return
		}
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
