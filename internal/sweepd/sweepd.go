// Package sweepd is the long-running sweep service: an HTTP/JSON front end
// over the harness Runner's exactly-once execution core. Clients POST
// scenario sweeps (a base spec plus a grid, or an explicit spec list), the
// server expands them to jobs, runs the jobs on one bounded worker pool
// shared across every live sweep, and streams per-point results back as
// NDJSON while the sweep is still running.
//
// The exactly-once story is layered, and the server adds nothing to it —
// it inherits the Runner's guarantees wholesale:
//
//   - the spec content hash is the job identity, so resubmitting a sweep
//     (or two clients submitting overlapping grids) re-uses the same cache
//     entries;
//   - the Runner's in-process singleflight coalesces identical jobs that
//     are in flight at the same moment, whichever sweeps they came from;
//   - the content-addressed disk cache, written via temp-file + atomic
//     rename with an advisory .inflight marker, extends both properties
//     across server processes sharing one cache directory.
//
// Admission is continuous (Orca-style): jobs from a newly submitted sweep
// interleave with an older sweep's remaining jobs on the same worker pool
// instead of queueing behind them sweep-by-sweep.
package sweepd

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// Registry metric names the server maintains, alongside the harness.*
// counters its Runner feeds.
const (
	MetricRequests        = "server.requests"
	MetricRequestErrors   = "server.request_errors"
	MetricSweepsSubmitted = "server.sweeps_submitted"
	MetricJobsQueued      = "server.jobs_queued"
	MetricPointsStreamed  = "server.points_streamed"
	MetricRequestMs       = "server.request_ms"
)

// Config assembles a Server.
type Config struct {
	// Runner executes jobs; its CacheDir is the service's shared store and
	// its Obs/Tracer (if set) pick up the per-job accounting. Required.
	Runner *harness.Runner
	// Workers bounds the shared job pool; <= 0 means GOMAXPROCS.
	Workers int
	// Logger receives request and lifecycle logs; nil discards.
	Logger *slog.Logger
	// Reg receives the server.* metrics; nil disables them (the Runner's
	// own registry is independent).
	Reg *obs.Registry
	// Tracer parents each sweep's job spans under a per-sweep root span;
	// nil disables.
	Tracer *obs.Tracer
}

// Server owns the sweep table and the worker pool. Create with New, serve
// its Handler, and stop with Drain.
type Server struct {
	runner *harness.Runner
	logger *slog.Logger
	reg    *obs.Registry
	tracer *obs.Tracer

	mu     sync.Mutex
	sweeps map[string]*sweepState
	order  []string // submission order, for stable listings
	seq    int

	jobs     chan job
	draining bool
	drained  chan struct{} // closed when every worker has exited
	workerWG sync.WaitGroup
}

// job is one grid point of one sweep.
type job struct {
	sw  *sweepState
	idx int
}

// New builds a Server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Runner == nil {
		return nil, fmt.Errorf("sweepd: Config.Runner is required")
	}
	// The shared job pool is sized by the central GOMAXPROCS budget (jobs
	// submitted to the service run serial simulations, so simWorkers is 1).
	workers := harness.PoolWorkers(cfg.Workers, 0)
	logger := cfg.Logger
	if logger == nil {
		logger, _ = obs.NewLogger(obs.LogOff, nil)
	}
	s := &Server{
		runner:  cfg.Runner,
		logger:  logger,
		reg:     cfg.Reg,
		tracer:  cfg.Tracer,
		sweeps:  map[string]*sweepState{},
		jobs:    make(chan job),
		drained: make(chan struct{}),
	}
	s.workerWG.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	go func() {
		s.workerWG.Wait()
		close(s.drained)
	}()
	return s, nil
}

// worker drains the shared job channel until Drain closes it. In-flight
// jobs always run to completion (and write their cache entries) — the
// RunAllCtx contract, inherited here by construction: a worker that has
// taken a job finishes it before checking the channel again.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for j := range s.jobs {
		s.runJob(j)
	}
}

// runJob executes one grid point through the Runner's exactly-once core
// and publishes the outcome to the sweep's result stream.
func (s *Server) runJob(j job) {
	sw := j.sw
	sw.jobStarted()
	res, err := s.runner.RunUnder(sw.specs[j.idx], sw.root)
	sw.complete(j.idx, res, err)
	s.reg.Counter(MetricPointsStreamed).Add(1)
	if err != nil {
		s.logger.Warn("job failed", "sweep", sw.id, "point", j.idx, "err", err)
	}
}

// Submit registers a new sweep and enqueues its jobs. The returned state
// is live immediately: results stream as workers finish points.
func (s *Server) Submit(specs []scenario.Spec) (*sweepState, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("sweepd: sweep has no points")
	}
	for i, sp := range specs {
		if err := sp.Validate(); err != nil {
			return nil, fmt.Errorf("sweepd: point %d: %w", i, err)
		}
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errDraining
	}
	s.seq++
	sw := newSweepState(fmt.Sprintf("s-%d", s.seq), specs, s.tracer)
	s.sweeps[sw.id] = sw
	s.order = append(s.order, sw.id)
	s.mu.Unlock()

	s.reg.Counter(MetricSweepsSubmitted).Add(1)
	s.reg.Counter(MetricJobsQueued).Add(int64(len(specs)))
	s.logger.Info("sweep submitted", "id", sw.id, "points", len(specs))

	// Feed from a dedicated goroutine so a huge sweep never blocks the
	// submitting HTTP handler; Drain aborts the feed via sw.stop.
	go func() {
		for i := range specs {
			select {
			case s.jobs <- job{sw: sw, idx: i}:
			case <-sw.stop:
				sw.skipFrom(i)
				return
			}
		}
		sw.fed()
	}()
	return sw, nil
}

var errDraining = fmt.Errorf("sweepd: server is draining")

// Drain stops the service gracefully, mirroring RunAllCtx's interrupt
// semantics at service scope: no new sweeps are admitted, queued-but-
// unstarted jobs are skipped (their sweeps finish as interrupted), and
// every in-flight job runs to completion — writing its cache entry — so a
// restarted server resumes the remainder from cache. Returns when the
// pool is idle or timeout elapses (0 waits forever).
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.drained
		return nil
	}
	s.draining = true
	live := make([]*sweepState, 0, len(s.sweeps))
	for _, sw := range s.sweeps {
		live = append(live, sw)
	}
	s.mu.Unlock()

	s.logger.Info("draining", "live_sweeps", len(live))
	// Stop the feeders first: once every feeder has exited (skipping its
	// unqueued remainder), nothing new can land on s.jobs and closing the
	// channel is safe.
	var fed sync.WaitGroup
	for _, sw := range live {
		sw.abort()
		fed.Add(1)
		go func(sw *sweepState) { defer fed.Done(); <-sw.feederDone }(sw)
	}
	fed.Wait()
	close(s.jobs)

	if timeout <= 0 {
		<-s.drained
		return nil
	}
	select {
	case <-s.drained:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("sweepd: drain timed out after %v", timeout)
	}
}

// get looks up a sweep by id.
func (s *Server) get(id string) (*sweepState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	return sw, ok
}

// statuses snapshots every sweep in submission order — the /sweeps listing
// and the per-sweep rows on /progress.
func (s *Server) statuses() []Status {
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	table := make(map[string]*sweepState, len(s.sweeps))
	for k, v := range s.sweeps {
		table[k] = v
	}
	s.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		out = append(out, table[id].status())
	}
	return out
}
