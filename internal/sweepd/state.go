package sweepd

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// Point is one streamed sweep result: the harness export row (sweep
// coordinates + metric map) plus the service-level envelope. Errored
// points carry Error instead of a Row; skipped points (drain) carry
// Skipped. Exactly total points are eventually streamed per sweep.
type Point struct {
	// Index is the point's position in the expanded sweep (spec order),
	// NOT its completion rank — points stream in completion order.
	Index int `json:"index"`
	// Cached is true when the point was served from the disk cache or
	// coalesced onto an identical in-flight job rather than simulated.
	Cached  bool   `json:"cached,omitempty"`
	Error   string `json:"error,omitempty"`
	Skipped bool   `json:"skipped,omitempty"`
	// Row is the same shape `fnccbench sweep -format json` exports.
	Row *harness.Row `json:"row,omitempty"`
}

// Status is a sweep's point-in-time summary: the /sweeps listing, the
// per-sweep row on /progress, and the poll target for clients that do not
// stream.
type Status struct {
	ID     string `json:"id"`
	Total  int    `json:"total"`
	Done   int    `json:"done"`
	Cached int    `json:"cached"`
	// Errored counts failed points, Skipped the points a drain abandoned
	// before they started.
	Errored  int  `json:"errored"`
	Skipped  int  `json:"skipped"`
	Running  int  `json:"running"`
	Finished bool `json:"finished"`
	// Interrupted is set when a drain skipped points; resubmitting the
	// same sweep to a restarted server serves the finished prefix from
	// cache and simulates only the remainder.
	Interrupted bool      `json:"interrupted,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	ElapsedMs   float64   `json:"elapsed_ms"`
}

// sweepState accumulates a live sweep's results in completion order and
// wakes streamers as points land.
type sweepState struct {
	id        string
	specs     []scenario.Spec
	root      *obs.Span
	submitted time.Time

	// stop aborts the feeder (Drain); feederDone is closed once the feeder
	// has stopped enqueueing (normally or via stop).
	stop       chan struct{}
	feederDone chan struct{}

	mu       sync.Mutex
	points   []Point // completion order
	running  int
	done     int
	cached   int
	errored  int
	skipped  int
	finished bool
	// waiters are streamer wake-up channels, signalled (closed) whenever
	// points grow or the sweep finishes.
	waiters []chan struct{}
}

func newSweepState(id string, specs []scenario.Spec, tracer *obs.Tracer) *sweepState {
	sw := &sweepState{
		id:         id,
		specs:      specs,
		submitted:  time.Now(),
		stop:       make(chan struct{}),
		feederDone: make(chan struct{}),
	}
	sw.root = tracer.Start("sweep", nil)
	sw.root.SetAttr("sweep_id", id)
	return sw
}

// fed marks the feeder finished after enqueueing every point.
func (sw *sweepState) fed() { close(sw.feederDone) }

// abort stops the feeder; queued-but-unsent points will be skipped.
func (sw *sweepState) abort() {
	select {
	case <-sw.stop:
	default:
		close(sw.stop)
	}
}

// jobStarted bumps the running count; complete decrements it.
func (sw *sweepState) jobStarted() {
	sw.mu.Lock()
	sw.running++
	sw.mu.Unlock()
}

// complete publishes one finished point and wakes streamers.
func (sw *sweepState) complete(idx int, res *scenario.Result, err error) {
	p := Point{Index: idx}
	switch {
	case err != nil:
		p.Error = err.Error()
	default:
		p.Cached = res.Cached
		row := harness.Rows([]*scenario.Result{res})[0]
		p.Row = &row
	}
	sw.mu.Lock()
	if sw.running > 0 {
		sw.running--
	}
	sw.points = append(sw.points, p)
	switch {
	case err != nil:
		sw.errored++
	default:
		sw.done++
		if res.Cached {
			sw.cached++
		}
	}
	sw.settleLocked()
	sw.wakeLocked()
	sw.mu.Unlock()
}

// skipFrom records every not-yet-enqueued point from idx on as skipped
// (drain path) and closes the feeder.
func (sw *sweepState) skipFrom(idx int) {
	sw.mu.Lock()
	for i := idx; i < len(sw.specs); i++ {
		sw.points = append(sw.points, Point{Index: i, Skipped: true})
		sw.skipped++
	}
	sw.settleLocked()
	sw.wakeLocked()
	sw.mu.Unlock()
	close(sw.feederDone)
}

// settleLocked marks the sweep finished once every point is accounted for
// (mu held).
func (sw *sweepState) settleLocked() {
	if !sw.finished && len(sw.points) == len(sw.specs) {
		sw.finished = true
		sw.root.SetAttr("points", strconv.Itoa(len(sw.specs)))
		sw.root.End()
	}
}

// wakeLocked signals every streamer (mu held).
func (sw *sweepState) wakeLocked() {
	for _, w := range sw.waiters {
		close(w)
	}
	sw.waiters = nil
}

// await returns a channel that closes the next time the sweep's state
// advances past n points (or it finishes); if it already has, the returned
// channel is closed immediately.
func (sw *sweepState) await(n int) <-chan struct{} {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	ch := make(chan struct{})
	if len(sw.points) > n || sw.finished {
		close(ch)
		return ch
	}
	sw.waiters = append(sw.waiters, ch)
	return ch
}

// snapshot copies the points at [from:] along with the finished flag; a
// from beyond the current point count yields an empty batch rather than a
// panic (an over-large ?from= simply waits for the stream to catch up).
func (sw *sweepState) snapshot(from int) ([]Point, bool) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if from > len(sw.points) {
		from = len(sw.points)
	}
	pts := make([]Point, len(sw.points)-from)
	copy(pts, sw.points[from:])
	return pts, sw.finished
}

// total is the sweep's point count (immutable after construction).
func (sw *sweepState) total() int { return len(sw.specs) }

func (sw *sweepState) status() Status {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return Status{
		ID:          sw.id,
		Total:       len(sw.specs),
		Done:        sw.done,
		Cached:      sw.cached,
		Errored:     sw.errored,
		Skipped:     sw.skipped,
		Running:     sw.running,
		Finished:    sw.finished,
		Interrupted: sw.skipped > 0,
		SubmittedAt: sw.submitted,
		ElapsedMs:   float64(time.Since(sw.submitted).Nanoseconds()) / 1e6,
	}
}
