package harness

import (
	"runtime"

	"repro/internal/scenario"
)

// Budget is the process's parallelism budget: GOMAXPROCS. Every worker-pool
// sizing decision in the repo (fnccbench sweeps via Runner, the sweepd job
// pool) funnels through PoolWorkers so the budget is spent in exactly one
// place instead of each call site reading GOMAXPROCS for itself.
func Budget() int { return runtime.GOMAXPROCS(0) }

// PoolWorkers resolves a sweep-level worker-pool size when each simulation
// may itself run simWorkers goroutines (the LP-sharded packet executor;
// <= 1 means serial). A requested size <= 0 asks to fill the budget. The
// result is clamped so pool × sim workers never exceeds the budget:
// oversubscribing GOMAXPROCS turns the parallel executor's per-window
// barriers into scheduler thrash that slows every job down. At least one
// pool worker is always granted — a single over-wide job degrades into
// time-slicing rather than refusing to run.
func PoolWorkers(requested, simWorkers int) int {
	if simWorkers < 1 {
		simWorkers = 1
	}
	cap := Budget() / simWorkers
	if cap < 1 {
		cap = 1
	}
	if requested <= 0 || requested > cap {
		return cap
	}
	return requested
}

// MaxSimWorkers scans a sweep's points for the widest per-simulation worker
// count, the simWorkers input to PoolWorkers (0 when every point is serial).
func MaxSimWorkers(specs []scenario.Spec) int {
	w := 0
	for _, sp := range specs {
		if sp.Workers > w {
			w = sp.Workers
		}
	}
	return w
}
