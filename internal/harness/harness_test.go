package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// cheapSweep is a fast sweep used by the cache tests: a 2-host shuffle
// (alltoall consumes the seed, so the grid's seed dimension is legal).
func cheapSweep() Sweep {
	return Sweep{
		Base: scenario.Spec{Name: "tiny-shuffle", Kind: scenario.KindAllToAll,
			Scheme: "FNCC", Topo: scenario.TopoSpec{K: 2},
			Workload: scenario.WorkloadSpec{FlowBytes: 50_000}},
		Grid: Grid{Schemes: []string{"FNCC", "HPCC"}, Seeds: []int64{1, 2}},
	}
}

// TestExpandGrid: full cross product, deterministic order, base values kept
// for empty dimensions.
func TestExpandGrid(t *testing.T) {
	s := Sweep{
		Base: scenario.Spec{Kind: scenario.KindFCT, Scheme: "FNCC",
			Workload: scenario.WorkloadSpec{CDF: "websearch"}, DurationUs: 300},
		Grid: Grid{
			Schemes: []string{"FNCC", "HPCC"},
			Seeds:   []int64{1, 2, 3},
			Loads:   []float64{0.3, 0.7},
			Sizes:   []int{4, 8},
		},
	}
	if got, want := s.Grid.Points(), 24; got != want {
		t.Fatalf("Points() = %d, want %d", got, want)
	}
	specs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 24 {
		t.Fatalf("expanded to %d specs, want 24", len(specs))
	}
	// Outer dimension is schemes: first half FNCC, second half HPCC.
	if specs[0].Scheme != "FNCC" || specs[12].Scheme != "HPCC" {
		t.Errorf("scheme order wrong: %s / %s", specs[0].Scheme, specs[12].Scheme)
	}
	// Innermost dimension is seeds.
	if specs[0].Seed != 1 || specs[1].Seed != 2 || specs[2].Seed != 3 {
		t.Errorf("seed order wrong: %d %d %d", specs[0].Seed, specs[1].Seed, specs[2].Seed)
	}
	if specs[0].Topo.K != 4 || specs[6].Topo.K != 8 {
		t.Errorf("size not applied: K=%d / K=%d", specs[0].Topo.K, specs[6].Topo.K)
	}
	// Every point must be distinct by content hash.
	seen := map[string]bool{}
	for _, sp := range specs {
		h := sp.Hash()
		if seen[h] {
			t.Fatalf("duplicate grid point %s", h)
		}
		seen[h] = true
	}

	// Empty grid: one job, the base itself.
	one, err := Sweep{Base: s.Base}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Scheme != "FNCC" {
		t.Fatalf("empty grid expanded to %d specs", len(one))
	}

	// Invalid grid points surface as errors.
	bad := s
	bad.Grid.Sizes = []int{5} // odd fat-tree arity
	if _, err := bad.Expand(); err == nil {
		t.Error("odd fat-tree size expanded without error")
	}
}

// TestSizeDimensionPerKind: the grid's size lands on the kind's natural
// scale knob.
func TestSizeDimensionPerKind(t *testing.T) {
	incast := Sweep{
		Base: scenario.Spec{Kind: scenario.KindIncast, Scheme: "FNCC"},
		Grid: Grid{Sizes: []int{4, 8}},
	}
	specs, err := incast.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Workload.Fanout != 4 || specs[1].Workload.Fanout != 8 {
		t.Errorf("incast sizes -> fanouts %d,%d", specs[0].Workload.Fanout, specs[1].Workload.Fanout)
	}
	hop := Sweep{
		Base: scenario.Spec{Kind: scenario.KindHop, Scheme: "FNCC"},
		Grid: Grid{Sizes: []int{4}},
	}
	if _, err := hop.Expand(); err == nil {
		t.Error("hop kind accepted a size dimension")
	}
}

// TestSweepCache is the resumability contract: a repeated sweep must be
// served entirely from the cache, performing no simulation work, and return
// identical metrics.
func TestSweepCache(t *testing.T) {
	dir := t.TempDir()
	specs, err := cheapSweep().Expand()
	if err != nil {
		t.Fatal(err)
	}

	first := &Runner{CacheDir: dir, Workers: 2}
	res1, err := first.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := first.Stats(); hits != 0 || misses != int64(len(specs)) {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/%d", hits, misses, len(specs))
	}
	for _, r := range res1 {
		if r.Cached {
			t.Error("cold run returned a cached result")
		}
	}

	second := &Runner{CacheDir: dir, Workers: 2}
	res2, err := second.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := second.Stats(); misses != 0 || hits != int64(len(specs)) {
		t.Fatalf("warm run simulated: hits=%d misses=%d, want %d/0", hits, misses, len(specs))
	}
	for i, r := range res2 {
		if !r.Cached {
			t.Errorf("warm result %d not served from cache", i)
		}
		if len(r.Metrics) == 0 {
			t.Fatalf("warm result %d has no metrics", i)
		}
		for k, v := range res1[i].Metrics {
			if r.Metrics[k] != v {
				t.Errorf("warm result %d metric %s = %v, want %v", i, k, r.Metrics[k], v)
			}
		}
		if r.Spec.Name != specs[i].Name {
			t.Errorf("warm result lost its name: %q", r.Spec.Name)
		}
	}

	// A resumed sweep (superset grid) only simulates the new points.
	wider := cheapSweep()
	wider.Grid.Seeds = []int64{1, 2, 3}
	more, err := wider.Expand()
	if err != nil {
		t.Fatal(err)
	}
	third := &Runner{CacheDir: dir}
	if _, err := third.RunAll(more); err != nil {
		t.Fatal(err)
	}
	if hits, misses := third.Stats(); hits != int64(len(specs)) || misses != int64(len(more)-len(specs)) {
		t.Fatalf("resume: hits=%d misses=%d, want %d/%d",
			hits, misses, len(specs), len(more)-len(specs))
	}
}

// TestCacheCorruptionIsAMiss: a truncated or tampered cache file re-runs
// the simulation instead of failing or returning garbage.
func TestCacheCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	sp := scenario.Spec{Kind: scenario.KindMicro, Scheme: "FNCC", DurationUs: 400}
	r := &Runner{CacheDir: dir}
	if _, err := r.Run(sp); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, sp.Hash()+".json")
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("corrupt cache entry served as a hit")
	}
	if _, misses := r.Stats(); misses != 2 {
		t.Errorf("misses = %d, want 2", misses)
	}
}

// TestExport: rows, seed aggregation, CSV and JSON shapes.
func TestExport(t *testing.T) {
	dir := t.TempDir()
	specs, err := cheapSweep().Expand()
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{CacheDir: dir}
	results, err := r.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	rows := Rows(results)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}

	agg := Aggregate(rows)
	if len(agg) != 2 {
		t.Fatalf("aggregated to %d rows, want 2 (one per scheme)", len(agg))
	}
	if agg[0].Runs != 2 || agg[1].Runs != 2 {
		t.Errorf("aggregate runs %d/%d, want 2/2", agg[0].Runs, agg[1].Runs)
	}
	// The aggregate is the per-seed mean.
	want := (rows[0].Metrics["makespan_us"] + rows[1].Metrics["makespan_us"]) / 2
	if got := agg[0].Metrics["makespan_us"]; got != want {
		t.Errorf("aggregate mean %v, want %v", got, want)
	}

	var csvBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines, want header+4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name,kind,scheme,backend,size,load,seed,runs") {
		t.Errorf("CSV header %q", lines[0])
	}
	if !strings.Contains(lines[0], "makespan_us") {
		t.Errorf("CSV header missing metric column: %q", lines[0])
	}

	var jsonBuf bytes.Buffer
	if err := WriteJSON(&jsonBuf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonBuf.String(), `"scheme": "HPCC"`) {
		t.Error("JSON export missing scheme field")
	}

	if tbl := FormatTable(agg); !strings.Contains(tbl, "FNCC") || !strings.Contains(tbl, "HPCC") {
		t.Errorf("table missing schemes:\n%s", tbl)
	}
}
