package harness

import (
	"testing"

	"repro/internal/scenario"
)

// BenchmarkFluidFCTSweep is a whole sweep grid — 3 schemes x 3 loads x
// 2 seeds, 18 FCT points — on the fluid backend, uncached and
// single-worker: the workload the backend exists for. One op is the full
// grid; this is the BENCH_3.json trajectory point for sweep throughput.
func BenchmarkFluidFCTSweep(b *testing.B) {
	sweep := Sweep{
		Base: scenario.Spec{Kind: scenario.KindFCT, Scheme: "FNCC",
			Backend:    scenario.BackendFluid,
			Topo:       scenario.TopoSpec{K: 4},
			Workload:   scenario.WorkloadSpec{CDF: "websearch"},
			DurationUs: 500},
		Grid: Grid{
			Schemes: []string{"FNCC", "HPCC", "DCQCN"},
			Loads:   []float64{0.3, 0.5, 0.7},
			Seeds:   []int64{1, 2},
		},
	}
	specs, err := sweep.Expand()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &Runner{Workers: 1}
		if _, err := r.RunAll(specs); err != nil {
			b.Fatal(err)
		}
	}
}
