package harness

import (
	"testing"

	"repro/internal/scenario"
)

// BenchmarkFluidFCTSweep is a whole sweep grid — 3 schemes x 3 loads x
// 2 seeds, 18 FCT points — on the fluid backend, uncached and
// single-worker: the workload the backend exists for. One op is the full
// grid; this is the BENCH_3.json trajectory point for sweep throughput.
// BenchmarkMicroObsOff is exp.BenchmarkMicroSteadyState's workload (FNCC
// micro, 100 Gbit/s, 400 us) driven through the obs-capable Runner with
// the observability layer unconfigured — no registry, no tracer, nil
// scenario sink. cmd/benchguard pins the ratio of this bench to the bare
// runner at <= 1.01: the whole obs layer must cost nothing when off.
func BenchmarkMicroObsOff(b *testing.B) {
	sp := scenario.Spec{Kind: scenario.KindMicro, Scheme: "FNCC", DurationUs: 400}
	r := &Runner{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Run(sp)
		if err != nil {
			b.Fatal(err)
		}
		if res.Metrics["queue_peak_bytes"] <= 0 {
			b.Fatal("no queue buildup: benchmark not exercising the hot path")
		}
	}
}

func BenchmarkFluidFCTSweep(b *testing.B) {
	sweep := Sweep{
		Base: scenario.Spec{Kind: scenario.KindFCT, Scheme: "FNCC",
			Backend:    scenario.BackendFluid,
			Topo:       scenario.TopoSpec{K: 4},
			Workload:   scenario.WorkloadSpec{CDF: "websearch"},
			DurationUs: 500},
		Grid: Grid{
			Schemes: []string{"FNCC", "HPCC", "DCQCN"},
			Loads:   []float64{0.3, 0.5, 0.7},
			Seeds:   []int64{1, 2},
		},
	}
	specs, err := sweep.Expand()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &Runner{Workers: 1}
		if _, err := r.RunAll(specs); err != nil {
			b.Fatal(err)
		}
	}
}
