package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// ErrInterrupted reports that RunAllCtx's context was cancelled mid-sweep:
// the returned results cover every job that finished (all of them safely
// in the cache), and the not-yet-started remainder was skipped.
var ErrInterrupted = errors.New("harness: sweep interrupted")

// Runner executes scenario specs on the exp.ParallelMap worker pool with an
// optional content-addressed disk cache. A Runner is safe for concurrent
// use; Hits/Misses accumulate across RunAll calls.
type Runner struct {
	// CacheDir stores one JSON result file per spec hash; empty disables
	// caching.
	CacheDir string
	// Workers bounds the pool; <= 0 means GOMAXPROCS.
	Workers int
	// OnProgress, when set, is invoked (serialized) after every job starts
	// or finishes during RunAll, feeding live sweep progress displays. The
	// callback must be fast; it runs on the worker goroutines under a lock.
	OnProgress func(Progress)
	// Obs, when set, receives operational metrics: cache hits/misses, job
	// wall-time histograms, live sweep.* gauges, and per-run engine stats
	// (engine events, pool rates, fluid pass split) via the scenario.Sink
	// hook. Nil keeps the whole layer off at the cost of pointer tests —
	// the obs_overhead bench ratio pins that cost at ≤ 1%.
	Obs *obs.Registry
	// Tracer, when set, records spans: RunAll opens a "sweep" root, each
	// job a child with cache-lookup / simulate / cache-store phases. Nil
	// disables tracing.
	Tracer *obs.Tracer

	hits   atomic.Int64
	misses atomic.Int64

	sinkOnce sync.Once
	obsSink  *obsSink
}

// Progress is a point-in-time snapshot of a RunAll sweep.
type Progress struct {
	// Total is the sweep's job count; Done counts finished jobs, of which
	// Cached were served from the disk cache. InFlight jobs are simulating
	// right now.
	Total, Done, Cached, InFlight int
	// Events totals the engine events of the simulated (non-cached) jobs
	// finished so far; EventsPerSec divides by the wall time since RunAll
	// began, the sweep's aggregate simulation throughput.
	Events       float64
	EventsPerSec float64
}

// progressTracker serializes progress accounting across workers.
type progressTracker struct {
	mu      sync.Mutex
	p       Progress
	started time.Time
	notify  func(Progress)
}

func newProgressTracker(total int, notify func(Progress)) *progressTracker {
	if notify == nil {
		return nil
	}
	return &progressTracker{
		p:       Progress{Total: total},
		started: time.Now(),
		notify:  notify,
	}
}

func (t *progressTracker) start() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.p.InFlight++
	t.emit()
	t.mu.Unlock()
}

func (t *progressTracker) finish(res *scenario.Result) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.p.InFlight--
	t.p.Done++
	if res != nil {
		if res.Cached {
			t.p.Cached++
		} else {
			t.p.Events += res.Metrics["engine_events"]
		}
	}
	t.emit()
	t.mu.Unlock()
}

// emit recomputes the throughput and fires the callback (mu held).
func (t *progressTracker) emit() {
	if dt := time.Since(t.started).Seconds(); dt > 0 {
		t.p.EventsPerSec = t.p.Events / dt
	}
	t.notify(t.p)
}

// Stats reports how many jobs were served from cache vs simulated.
func (r *Runner) Stats() (hits, misses int64) {
	return r.hits.Load(), r.misses.Load()
}

// RunAll executes every spec (cache-first) and returns results in spec
// order. The first simulation error aborts; completed jobs remain cached.
func (r *Runner) RunAll(specs []scenario.Spec) ([]*scenario.Result, error) {
	return r.RunAllCtx(context.Background(), specs)
}

// RunAllCtx is RunAll with cooperative cancellation: once ctx is done, no
// new job starts, but every in-flight job runs to completion and writes
// its cache entry — an interrupted sweep never leaves torn state, and a
// re-run resumes from the cache. A cancelled sweep returns the completed
// results (spec order, skipped points absent) and ErrInterrupted.
func (r *Runner) RunAllCtx(ctx context.Context, specs []scenario.Spec) ([]*scenario.Result, error) {
	if r.CacheDir != "" {
		if err := os.MkdirAll(r.CacheDir, 0o755); err != nil {
			return nil, fmt.Errorf("harness: cache dir: %w", err)
		}
	}
	type out struct {
		res     *scenario.Result
		err     error
		skipped bool
	}
	notify := r.progressNotify()
	tracker := newProgressTracker(len(specs), notify)
	root := r.Tracer.Start("sweep", nil)
	outs := exp.ParallelMap(specs, r.Workers, func(sp scenario.Spec) out {
		if ctx.Err() != nil {
			return out{skipped: true}
		}
		tracker.start()
		res, err := r.runOne(sp, root)
		tracker.finish(res)
		return out{res: res, err: err}
	})
	root.End()
	results := make([]*scenario.Result, 0, len(outs))
	interrupted := false
	for _, o := range outs {
		if o.skipped {
			interrupted = true
			continue
		}
		if o.err != nil {
			return nil, o.err
		}
		results = append(results, o.res)
	}
	if interrupted {
		return results, ErrInterrupted
	}
	return results, nil
}

// progressNotify composes the caller's OnProgress with the sweep.* gauge
// mirror; nil when neither consumer exists so the tracker stays off.
func (r *Runner) progressNotify() func(Progress) {
	if r.Obs == nil {
		return r.OnProgress
	}
	reg, cb := r.Obs, r.OnProgress
	return func(p Progress) {
		observeProgress(reg, p)
		if cb != nil {
			cb(p)
		}
	}
}

// Run executes one spec through the same cache path as RunAll.
func (r *Runner) Run(sp scenario.Spec) (*scenario.Result, error) {
	if r.CacheDir != "" {
		if err := os.MkdirAll(r.CacheDir, 0o755); err != nil {
			return nil, fmt.Errorf("harness: cache dir: %w", err)
		}
	}
	return r.runOne(sp, nil)
}

func (r *Runner) runOne(sp scenario.Spec, root *obs.Span) (*scenario.Result, error) {
	started := time.Now()
	// Validate here, not just inside scenario.Run: a cache hit returns
	// before Run, and a spec that today's rules reject must not be served
	// from a cache written under yesterday's.
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	hash := sp.Hash()
	job := r.jobSpan(sp, hash, root)
	defer job.End()
	lookup := r.Tracer.Start("cache-lookup", job)
	res, ok := r.load(hash)
	lookup.End()
	if ok {
		// The cache key ignores Name; restore the caller's label.
		res.Spec.Name = sp.Name
		r.hits.Add(1)
		r.Obs.Counter(MetricCacheHits).Add(1)
		r.Obs.Counter(MetricJobsDone).Add(1)
		job.SetAttr("outcome", "cached")
		return res, nil
	}
	simulate := r.Tracer.Start("simulate", job)
	res, err := scenario.RunWithSink(sp, r.sink())
	simulate.End()
	if err != nil {
		job.SetAttr("outcome", "error")
		return nil, err
	}
	r.misses.Add(1)
	r.Obs.Counter(MetricCacheMisses).Add(1)
	store := r.Tracer.Start("cache-store", job)
	serr := r.store(hash, res)
	store.End()
	if serr != nil {
		job.SetAttr("outcome", "error")
		return nil, serr
	}
	r.Obs.Counter(MetricJobsDone).Add(1)
	job.SetAttr("outcome", "simulated")
	if r.Obs != nil {
		timeHist(r.Obs, MetricJobWallMs, started)
	}
	return res, nil
}

// load reads a cached result; any unreadable or mismatched file is treated
// as a miss (and re-simulated), never an error.
func (r *Runner) load(hash string) (*scenario.Result, bool) {
	if r.CacheDir == "" {
		return nil, false
	}
	data, err := os.ReadFile(r.cachePath(hash))
	if err != nil {
		return nil, false
	}
	var res scenario.Result
	if json.Unmarshal(data, &res) != nil || res.Hash != hash || res.Metrics == nil {
		return nil, false
	}
	res.Cached = true
	return &res, true
}

// store writes the result atomically (temp file + rename) so a crashed or
// concurrent sweep never leaves a truncated cache entry.
func (r *Runner) store(hash string, res *scenario.Result) error {
	if r.CacheDir == "" {
		return nil
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: encode result: %w", err)
	}
	tmp, err := os.CreateTemp(r.CacheDir, hash+".tmp-")
	if err != nil {
		return fmt.Errorf("harness: cache write: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if err := errors.Join(werr, cerr); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), r.cachePath(hash)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cache write: %w", err)
	}
	return nil
}

func (r *Runner) cachePath(hash string) string {
	return filepath.Join(r.CacheDir, hash+".json")
}
