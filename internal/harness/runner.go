package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// ErrInterrupted reports that RunAllCtx's context was cancelled mid-sweep:
// the returned results cover every job that finished (all of them safely
// in the cache), and the not-yet-started remainder was skipped.
var ErrInterrupted = errors.New("harness: sweep interrupted")

// Tunables for the cross-process coordination protocol. Package variables
// rather than constants so the concurrency tests can shrink them; the
// defaults are sized for real sweeps (jobs run milliseconds to minutes).
var (
	// tmpMaxAge guards the startup reaper: an orphaned <hash>.tmp-* file is
	// only deleted once it is old enough that no live writer can still own
	// it (a write is CreateTemp → Write → Rename, microseconds to
	// milliseconds of life for a legitimate temp file).
	tmpMaxAge = time.Hour
	// markerStaleAfter bounds how long a <hash>.inflight advisory marker is
	// trusted: past this age the owning process is presumed crashed and a
	// waiter reclaims the hash. Owners refresh the marker's mtime while the
	// simulation runs, so a healthy long job is never hijacked.
	markerStaleAfter = time.Minute
	// markerRefresh is how often a simulating owner touches its marker.
	markerRefresh = 10 * time.Second
	// markerPoll is how often a cross-process waiter re-checks for the
	// owner's result file.
	markerPoll = 5 * time.Millisecond
)

// Runner executes scenario specs on the exp.ParallelMap worker pool with an
// optional content-addressed disk cache. A Runner is safe for concurrent
// use; Hits/Misses/Coalesced accumulate across RunAll calls.
//
// The Runner is an exactly-once execution core over the spec content hash:
//
//   - within a process, concurrent runs of the same hash coalesce on an
//     in-memory singleflight table — one leader simulates, everyone else
//     waits for its result;
//   - across processes sharing one CacheDir, an advisory <hash>.inflight
//     marker (O_EXCL create) plus the atomic temp-file + rename store means
//     a second process waits for the first one's cache entry instead of
//     simulating the same hash twice.
type Runner struct {
	// CacheDir stores one JSON result file per spec hash; empty disables
	// caching.
	CacheDir string
	// Workers bounds the pool; <= 0 means GOMAXPROCS.
	Workers int
	// OnProgress, when set, is invoked (serialized) after every job starts
	// or finishes during RunAll, feeding live sweep progress displays. The
	// callback must be fast; it runs on the worker goroutines under a lock.
	OnProgress func(Progress)
	// Obs, when set, receives operational metrics: cache hits/misses/
	// coalesced counts, job wall-time histograms, live sweep.* gauges, and
	// per-run engine stats (engine events, pool rates, fluid pass split)
	// via the scenario.Sink hook. Nil keeps the whole layer off at the cost
	// of pointer tests — the obs_overhead bench ratio pins that cost at
	// ≤ 1%.
	Obs *obs.Registry
	// Tracer, when set, records spans: RunAll opens a "sweep" root, each
	// job a child with cache-lookup / simulate / cache-store phases. Nil
	// disables tracing.
	Tracer *obs.Tracer

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64

	sinkOnce sync.Once
	obsSink  *obsSink

	initOnce sync.Once
	initErr  error

	flightMu sync.Mutex
	flight   map[string]*flightCall
}

// flightCall is one in-flight simulation of a spec hash. The leader closes
// done after res/err are set; waiters block on done and then read them.
type flightCall struct {
	done chan struct{}
	res  *scenario.Result
	err  error
}

// Progress is a point-in-time snapshot of a RunAll sweep.
type Progress struct {
	// Total is the sweep's job count; Done counts successfully finished
	// jobs, of which Cached were served from the disk cache (or coalesced
	// onto another job's simulation). Errored counts jobs that failed;
	// Done + Errored + InFlight never exceeds Total. InFlight jobs are
	// simulating right now.
	Total, Done, Cached, Errored, InFlight int
	// Events totals the engine events of the simulated (non-cached) jobs
	// finished so far; EventsPerSec divides by the wall time since RunAll
	// began, the sweep's aggregate simulation throughput.
	Events       float64
	EventsPerSec float64
}

// progressTracker serializes progress accounting across workers.
type progressTracker struct {
	mu      sync.Mutex
	p       Progress
	started time.Time
	notify  func(Progress)
}

func newProgressTracker(total int, notify func(Progress)) *progressTracker {
	if notify == nil {
		return nil
	}
	return &progressTracker{
		p:       Progress{Total: total},
		started: time.Now(),
		notify:  notify,
	}
}

func (t *progressTracker) start() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.p.InFlight++
	t.emit()
	t.mu.Unlock()
}

func (t *progressTracker) finish(res *scenario.Result, err error) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.p.InFlight--
	if err != nil {
		t.p.Errored++
	} else {
		t.p.Done++
		if res != nil {
			if res.Cached {
				t.p.Cached++
			} else {
				t.p.Events += res.Metrics["engine_events"]
			}
		}
	}
	t.emit()
	t.mu.Unlock()
}

// emit recomputes the throughput and fires the callback (mu held).
func (t *progressTracker) emit() {
	if dt := time.Since(t.started).Seconds(); dt > 0 {
		t.p.EventsPerSec = t.p.Events / dt
	}
	t.notify(t.p)
}

// Stats reports how many jobs were served from cache vs simulated.
func (r *Runner) Stats() (hits, misses int64) {
	return r.hits.Load(), r.misses.Load()
}

// Coalesced reports how many jobs rode an identical in-flight simulation
// (same spec hash, in this process or another sharing the cache dir)
// instead of simulating or reading a settled cache entry.
func (r *Runner) Coalesced() int64 { return r.coalesced.Load() }

// initCache creates the cache dir and, once per Runner, reaps debris a
// crashed earlier process may have left behind: orphaned .tmp- files (a
// crash between CreateTemp and Rename) and stale .inflight markers (a
// crash mid-simulation). Both are age-guarded so a live concurrent
// writer's files are never touched.
func (r *Runner) initCache() error {
	if r.CacheDir == "" {
		return nil
	}
	r.initOnce.Do(func() {
		if err := os.MkdirAll(r.CacheDir, 0o755); err != nil {
			r.initErr = fmt.Errorf("harness: cache dir: %w", err)
			return
		}
		r.reapDebris()
	})
	return r.initErr
}

// reapDebris deletes aged-out temp files and in-flight markers from the
// cache dir. Errors are ignored: the reaper is hygiene, not correctness —
// a file that cannot be listed or removed today will age out tomorrow.
func (r *Runner) reapDebris() {
	entries, err := os.ReadDir(r.CacheDir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		var maxAge time.Duration
		switch {
		case strings.Contains(name, ".tmp-"):
			maxAge = tmpMaxAge
		case strings.HasSuffix(name, inflightSuffix):
			maxAge = markerStaleAfter
		default:
			continue
		}
		info, err := e.Info()
		if err != nil || time.Since(info.ModTime()) < maxAge {
			continue
		}
		if os.Remove(filepath.Join(r.CacheDir, name)) == nil {
			r.Obs.Counter(MetricCacheReaped).Add(1)
		}
	}
}

// RunAll executes every spec (cache-first) and returns results in spec
// order. The first simulation error aborts; completed jobs remain cached.
func (r *Runner) RunAll(specs []scenario.Spec) ([]*scenario.Result, error) {
	return r.RunAllCtx(context.Background(), specs)
}

// RunAllCtx is RunAll with cooperative cancellation: once ctx is done, no
// new job starts, but every in-flight job runs to completion and writes
// its cache entry — an interrupted sweep never leaves torn state, and a
// re-run resumes from the cache. A cancelled sweep returns the completed
// results (spec order, skipped points absent) and ErrInterrupted.
func (r *Runner) RunAllCtx(ctx context.Context, specs []scenario.Spec) ([]*scenario.Result, error) {
	if err := r.initCache(); err != nil {
		return nil, err
	}
	type out struct {
		res     *scenario.Result
		err     error
		skipped bool
	}
	notify := r.progressNotify()
	tracker := newProgressTracker(len(specs), notify)
	root := r.Tracer.Start("sweep", nil)
	// Oversubscription guard: points running the sharded packet executor
	// multiply the pool's concurrency, so the pool shrinks to keep
	// sweep-level × sim-level workers within the GOMAXPROCS budget.
	workers := PoolWorkers(r.Workers, MaxSimWorkers(specs))
	outs := exp.ParallelMap(specs, workers, func(sp scenario.Spec) out {
		if ctx.Err() != nil {
			return out{skipped: true}
		}
		tracker.start()
		res, err := r.runOne(sp, root)
		tracker.finish(res, err)
		return out{res: res, err: err}
	})
	root.End()
	results := make([]*scenario.Result, 0, len(outs))
	interrupted := false
	for _, o := range outs {
		if o.skipped {
			interrupted = true
			continue
		}
		if o.err != nil {
			return nil, o.err
		}
		results = append(results, o.res)
	}
	if interrupted {
		return results, ErrInterrupted
	}
	return results, nil
}

// progressNotify composes the caller's OnProgress with the sweep.* gauge
// mirror; nil when neither consumer exists so the tracker stays off.
func (r *Runner) progressNotify() func(Progress) {
	if r.Obs == nil {
		return r.OnProgress
	}
	reg, cb := r.Obs, r.OnProgress
	return func(p Progress) {
		observeProgress(reg, p)
		if cb != nil {
			cb(p)
		}
	}
}

// Run executes one spec through the same cache path as RunAll.
func (r *Runner) Run(sp scenario.Spec) (*scenario.Result, error) {
	return r.RunUnder(sp, nil)
}

// RunUnder is Run with the job span parented under root — the hook a
// long-running server uses to group many independently submitted jobs
// under one sweep span. A nil root (or nil Tracer) is Run.
func (r *Runner) RunUnder(sp scenario.Spec, root *obs.Span) (*scenario.Result, error) {
	if err := r.initCache(); err != nil {
		return nil, err
	}
	return r.runOne(sp, root)
}

// runOne executes one job end to end and settles the shared accounting:
// exactly one of jobs_done / jobs_errored increments, and job.wall_ms
// observes every outcome — simulated, cached, coalesced, or errored — so
// the histogram covers the whole sweep rather than just the misses.
func (r *Runner) runOne(sp scenario.Spec, root *obs.Span) (*scenario.Result, error) {
	started := time.Now()
	// Validate here, not just inside scenario.Run: a cache hit returns
	// before Run, and a spec that today's rules reject must not be served
	// from a cache written under yesterday's.
	if err := sp.Validate(); err != nil {
		r.Obs.Counter(MetricJobsErrored).Add(1)
		timeHist(r.Obs, MetricJobWallMs, started)
		return nil, err
	}
	hash := sp.Hash()
	job := r.jobSpan(sp, hash, root)
	defer job.End()
	res, err := r.runHashed(sp, hash, job)
	timeHist(r.Obs, MetricJobWallMs, started)
	if err != nil {
		job.SetAttr("outcome", "error")
		r.Obs.Counter(MetricJobsErrored).Add(1)
		return nil, err
	}
	r.Obs.Counter(MetricJobsDone).Add(1)
	return res, nil
}

// runHashed serves one validated, hashed job: cache hit, coalesce onto an
// identical in-flight job, or become the leader and simulate.
func (r *Runner) runHashed(sp scenario.Spec, hash string, job *obs.Span) (*scenario.Result, error) {
	lookup := r.Tracer.Start("cache-lookup", job)
	res, ok := r.load(hash)
	lookup.End()
	if ok {
		// The cache key ignores Name; restore the caller's label.
		res.Spec.Name = sp.Name
		r.hits.Add(1)
		r.Obs.Counter(MetricCacheHits).Add(1)
		job.SetAttr("outcome", "cached")
		return res, nil
	}
	// Singleflight: exactly one goroutine per hash proceeds past here at a
	// time; the rest wait on the leader's call and share its outcome. This
	// is what makes N identical specs in one sweep — or concurrent Run
	// calls from many server clients — exactly one simulation.
	r.flightMu.Lock()
	if c, ok := r.flight[hash]; ok {
		r.flightMu.Unlock()
		wait := r.Tracer.Start("coalesce-wait", job)
		<-c.done
		wait.End()
		return r.adoptCoalesced(sp, hash, c, job)
	}
	c := &flightCall{done: make(chan struct{})}
	if r.flight == nil {
		r.flight = map[string]*flightCall{}
	}
	r.flight[hash] = c
	r.flightMu.Unlock()

	res, err := r.leaderRun(sp, hash, job)

	r.flightMu.Lock()
	delete(r.flight, hash)
	r.flightMu.Unlock()
	c.res, c.err = res, err
	close(c.done)
	return res, err
}

// adoptCoalesced turns a settled in-flight call into this job's result.
// Waiters re-load from the cache when there is one — an independent copy,
// since each caller may carry a different Name — and otherwise take a
// shallow copy of the leader's result (the metric map is never mutated).
func (r *Runner) adoptCoalesced(sp scenario.Spec, hash string, c *flightCall, job *obs.Span) (*scenario.Result, error) {
	if c.err != nil {
		return nil, c.err
	}
	r.coalesced.Add(1)
	r.Obs.Counter(MetricCacheCoalesced).Add(1)
	job.SetAttr("outcome", "coalesced")
	if res, ok := r.load(hash); ok {
		res.Spec.Name = sp.Name
		return res, nil
	}
	res := *c.res
	res.Spec.Name = sp.Name
	res.Cached = true
	return &res, nil
}

// leaderRun is the singleflight winner's path: claim the cross-process
// in-flight marker (or adopt another process's result), simulate, and
// store. The simulated result is stored before the marker is released, so
// a waiter that sees the marker vanish always finds the cache entry.
func (r *Runner) leaderRun(sp scenario.Spec, hash string, job *obs.Span) (*scenario.Result, error) {
	if r.CacheDir != "" {
		res, owned, err := r.claimHash(sp, hash, job)
		if err != nil {
			return nil, err
		}
		if !owned {
			// Another process simulated this hash while we waited; res is
			// its cache entry.
			return res, nil
		}
		defer os.Remove(r.markerPath(hash))
	}
	stopRefresh := r.refreshMarker(hash)
	simulate := r.Tracer.Start("simulate", job)
	res, err := scenario.RunWithSink(sp, r.sink())
	simulate.End()
	stopRefresh()
	if err != nil {
		return nil, err
	}
	r.misses.Add(1)
	r.Obs.Counter(MetricCacheMisses).Add(1)
	store := r.Tracer.Start("cache-store", job)
	serr := r.store(hash, res)
	store.End()
	if serr != nil {
		return nil, serr
	}
	job.SetAttr("outcome", "simulated")
	return res, nil
}

// inflightSuffix names the advisory cross-process marker: its presence
// means some process is simulating the hash right now. Advisory only —
// correctness comes from the atomic rename; the marker merely prevents
// duplicate work between processes.
const inflightSuffix = ".inflight"

func (r *Runner) markerPath(hash string) string {
	return filepath.Join(r.CacheDir, hash+inflightSuffix)
}

// claimHash acquires the cross-process in-flight marker for hash, or waits
// out another process's claim. Returns owned=true when this process must
// simulate; otherwise the other process's result (served from the cache it
// wrote) with owned=false.
func (r *Runner) claimHash(sp scenario.Spec, hash string, job *obs.Span) (*scenario.Result, bool, error) {
	path := r.markerPath(hash)
	for {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			// Owner identity, for humans inspecting a stuck cache dir.
			fmt.Fprintf(f, "pid %d\n", os.Getpid())
			f.Close()
			return nil, true, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return nil, false, fmt.Errorf("harness: in-flight marker: %w", err)
		}
		wait := r.Tracer.Start("marker-wait", job)
		res, ok := r.awaitMarker(path, hash)
		wait.End()
		if ok {
			res.Spec.Name = sp.Name
			r.coalesced.Add(1)
			r.Obs.Counter(MetricCacheCoalesced).Add(1)
			job.SetAttr("outcome", "coalesced")
			return res, false, nil
		}
		// The marker went stale or vanished without a result (owner
		// crashed); loop and contend for ownership again.
	}
}

// awaitMarker polls for the marker owner's result file. It returns false
// when the marker disappears or goes stale without a result appearing —
// the caller then re-contends for ownership.
func (r *Runner) awaitMarker(path, hash string) (*scenario.Result, bool) {
	for {
		if res, ok := r.load(hash); ok {
			return res, true
		}
		st, err := os.Stat(path)
		if err != nil {
			// Marker gone: the owner finished (result stored before the
			// marker was removed — check once more) or errored out.
			res, ok := r.load(hash)
			return res, ok
		}
		if time.Since(st.ModTime()) > markerStaleAfter {
			// Presumed-crashed owner; reclaim. Remove is idempotent across
			// racing waiters, and the O_EXCL create arbitrates who wins.
			os.Remove(path)
			return nil, false
		}
		time.Sleep(markerPoll)
	}
}

// refreshMarker keeps the owner's marker mtime fresh while a long
// simulation runs, so healthy jobs outlive markerStaleAfter. Returns a
// stop func; a no-op without a cache dir.
func (r *Runner) refreshMarker(hash string) func() {
	if r.CacheDir == "" {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		path := r.markerPath(hash)
		t := time.NewTicker(markerRefresh)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				os.Chtimes(path, now, now)
			}
		}
	}()
	return func() { close(done) }
}

// load reads a cached result; any unreadable or mismatched file is treated
// as a miss (and re-simulated), never an error.
func (r *Runner) load(hash string) (*scenario.Result, bool) {
	if r.CacheDir == "" {
		return nil, false
	}
	data, err := os.ReadFile(r.cachePath(hash))
	if err != nil {
		return nil, false
	}
	var res scenario.Result
	if json.Unmarshal(data, &res) != nil || res.Hash != hash || res.Metrics == nil {
		return nil, false
	}
	res.Cached = true
	return &res, true
}

// store writes the result atomically (temp file + rename) so a crashed or
// concurrent sweep never leaves a truncated cache entry. A .tmp- file
// orphaned by a crash between CreateTemp and Rename is reclaimed by the
// next Runner's startup reaper (see initCache).
func (r *Runner) store(hash string, res *scenario.Result) error {
	if r.CacheDir == "" {
		return nil
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: encode result: %w", err)
	}
	tmp, err := os.CreateTemp(r.CacheDir, hash+".tmp-")
	if err != nil {
		return fmt.Errorf("harness: cache write: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if err := errors.Join(werr, cerr); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), r.cachePath(hash)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cache write: %w", err)
	}
	return nil
}

func (r *Runner) cachePath(hash string) string {
	return filepath.Join(r.CacheDir, hash+".json")
}
