package harness

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/scenario"
)

func microSpec(scheme string) scenario.Spec {
	return scenario.Spec{Kind: scenario.KindMicro, Scheme: scheme, DurationUs: 50}
}

// TestProgressTrackerInvariants hammers one tracker from many goroutines
// — the shape of a wide RunAll — and checks every emitted snapshot holds
// the structural invariants the /progress endpoint publishes: counts never
// exceed Total, nothing goes negative, and the throughput is a finite
// non-negative number. Run under -race in CI, this is also the data-race
// guard for the progress path.
func TestProgressTrackerInvariants(t *testing.T) {
	const total = 200
	var mu sync.Mutex
	var bad []string
	check := func(p Progress) {
		if p.Done+p.Errored+p.InFlight > p.Total || p.Done < 0 || p.Errored < 0 ||
			p.InFlight < 0 || p.Cached < 0 {
			mu.Lock()
			bad = append(bad, "count invariant broken")
			mu.Unlock()
		}
		if p.Cached > p.Done {
			mu.Lock()
			bad = append(bad, "cached exceeds done")
			mu.Unlock()
		}
		if p.EventsPerSec < 0 || math.IsNaN(p.EventsPerSec) || math.IsInf(p.EventsPerSec, 0) {
			mu.Lock()
			bad = append(bad, "events/sec not a finite non-negative")
			mu.Unlock()
		}
	}
	tracker := newProgressTracker(total, check)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < total/8; i++ {
				tracker.start()
				res := &scenario.Result{Metrics: map[string]float64{"engine_events": 1000}}
				if i%2 == 0 {
					res.Cached = true
				}
				tracker.finish(res, nil)
			}
		}(g)
	}
	wg.Wait()
	if len(bad) > 0 {
		t.Fatalf("%d invariant violations, first: %s", len(bad), bad[0])
	}
	tracker.mu.Lock()
	final := tracker.p
	tracker.mu.Unlock()
	wantCached := 8 * ((total/8 + 1) / 2) // even i per goroutine
	if final.Done != total || final.InFlight != 0 || final.Cached != wantCached {
		t.Errorf("final progress = %+v, want cached %d", final, wantCached)
	}
}

// TestProgressTrackerInstantSweep pins the all-cached corner: when every
// job completes in the same clock instant RunAll started, EventsPerSec
// must come out 0 — not NaN, not negative, not Inf.
func TestProgressTrackerInstantSweep(t *testing.T) {
	var last Progress
	tracker := newProgressTracker(3, func(p Progress) { last = p })
	for i := 0; i < 3; i++ {
		tracker.start()
		tracker.finish(&scenario.Result{Cached: true, Metrics: map[string]float64{}}, nil)
	}
	if last.Done != 3 || last.Cached != 3 {
		t.Fatalf("final progress = %+v", last)
	}
	if last.EventsPerSec != 0 || math.IsNaN(last.EventsPerSec) {
		t.Errorf("all-cached sweep events/sec = %g, want exactly 0", last.EventsPerSec)
	}
	// An errored finish lands in Errored, not Done, and must not panic.
	tracker2 := newProgressTracker(1, func(Progress) {})
	tracker2.start()
	tracker2.finish(nil, errors.New("boom"))
	tracker2.mu.Lock()
	p2 := tracker2.p
	tracker2.mu.Unlock()
	if p2.Done != 0 || p2.Errored != 1 || p2.InFlight != 0 {
		t.Errorf("errored finish progress = %+v, want Errored=1 Done=0", p2)
	}
}

// TestRunnerObsIntegration runs a small sweep with the full obs layer on
// and checks the registry totals and span tree line up with what actually
// happened: every job gets a span with cache-lookup and simulate phases,
// re-running from cache flips the counters to hits, and the engine stats
// flow through the scenario sink into process totals.
func TestRunnerObsIntegration(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	r := &Runner{CacheDir: t.TempDir(), Workers: 2, Obs: reg, Tracer: tracer}
	specs := []scenario.Spec{microSpec("FNCC"), microSpec("HPCC")}
	results, err := r.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	s := reg.Snapshot()
	if s.Counters[MetricCacheMisses] != 2 || s.Counters[MetricCacheHits] != 0 {
		t.Errorf("first sweep counters: %+v", s.Counters)
	}
	if s.Counters[MetricJobsDone] != 2 {
		t.Errorf("jobs done = %d", s.Counters[MetricJobsDone])
	}
	wantEvents := int64(results[0].Metrics["engine_events"] + results[1].Metrics["engine_events"])
	if got := s.Counters[MetricEngineEvents]; got != wantEvents {
		t.Errorf("engine events total = %d, want %d (sink missed runs)", got, wantEvents)
	}
	if s.Gauges[MetricSweepDone] != 2 || s.Gauges[MetricSweepTotal] != 2 {
		t.Errorf("sweep gauges: %+v", s.Gauges)
	}
	if s.Histograms[MetricJobWallMs].Count != 2 {
		t.Errorf("job wall histogram count = %d", s.Histograms[MetricJobWallMs].Count)
	}

	// Span tree: one sweep root, two jobs under it, each with at least
	// cache-lookup + simulate + cache-store phases.
	spans := tracer.Spans()
	var rootID uint64
	jobs, phases := 0, map[string]int{}
	for _, sp := range spans {
		if sp.Name == "sweep" {
			rootID = sp.ID
		}
	}
	if rootID == 0 {
		t.Fatal("no sweep root span")
	}
	jobIDs := map[uint64]bool{}
	for _, sp := range spans {
		if sp.Name == "job" && sp.Parent == rootID {
			jobs++
			jobIDs[sp.ID] = true
			if sp.Attrs["hash"] == "" || sp.Attrs["outcome"] != "simulated" {
				t.Errorf("job span attrs: %+v", sp.Attrs)
			}
		}
	}
	for _, sp := range spans {
		if jobIDs[sp.Parent] {
			phases[sp.Name]++
		}
	}
	if jobs != 2 || phases["cache-lookup"] != 2 || phases["simulate"] != 2 || phases["cache-store"] != 2 {
		t.Errorf("span coverage: jobs=%d phases=%v", jobs, phases)
	}

	// Second sweep over the same specs: all cache hits, sink untouched.
	r2 := &Runner{CacheDir: r.CacheDir, Obs: reg, Tracer: tracer}
	if _, err := r2.RunAll(specs); err != nil {
		t.Fatal(err)
	}
	s = reg.Snapshot()
	if s.Counters[MetricCacheHits] != 2 {
		t.Errorf("cache hits after re-run = %d", s.Counters[MetricCacheHits])
	}
	if got := s.Counters[MetricEngineEvents]; got != wantEvents {
		t.Errorf("cached re-run changed engine totals: %d != %d", got, wantEvents)
	}
	for _, sp := range tracer.Spans() {
		if sp.Name == "job" && sp.Attrs["outcome"] == "cached" {
			return
		}
	}
	t.Error("no job span marked cached after the re-run")
}

// TestRunnerObsOffIsInert pins the other side of the contract: a Runner
// with no Obs/Tracer behaves exactly as before the layer existed — no
// spans, results identical to an instrumented run.
func TestRunnerObsOffIsInert(t *testing.T) {
	plain := &Runner{}
	instr := &Runner{Obs: obs.NewRegistry(), Tracer: obs.NewTracer()}
	a, err := plain.Run(microSpec("FNCC"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := instr.Run(microSpec("FNCC"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Errorf("hash differs with obs on: %s != %s", a.Hash, b.Hash)
	}
	for _, k := range []string{"queue_peak_bytes", "engine_events", "mean_util"} {
		if math.Float64bits(a.Metrics[k]) != math.Float64bits(b.Metrics[k]) {
			t.Errorf("metric %s differs with obs on: %g != %g", k, a.Metrics[k], b.Metrics[k])
		}
	}
}

// TestRunAllCtxInterrupt cancels mid-sweep and checks the contract: the
// completed prefix comes back with ErrInterrupted, everything returned is
// in the cache, and a resumed run serves those points as hits.
func TestRunAllCtxInterrupt(t *testing.T) {
	cacheDir := t.TempDir()
	specs := make([]scenario.Spec, 8)
	for i := range specs {
		sp := microSpec("FNCC")
		sp.Seed = 0
		sp.DurationUs = int64(50 + i) // distinct hashes
		specs[i] = sp
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := 0
	r := &Runner{CacheDir: cacheDir, Workers: 1, OnProgress: func(p Progress) {
		done = p.Done
		if p.Done == 2 {
			cancel() // cancel after the second job completes
		}
	}}
	results, err := r.RunAllCtx(ctx, specs)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if len(results) == 0 || len(results) >= len(specs) {
		t.Fatalf("partial results = %d of %d (done=%d)", len(results), len(specs), done)
	}
	for _, res := range results {
		if res == nil {
			t.Fatal("nil result in completed prefix")
		}
	}
	// Resume: the finished points must be cache hits, the rest simulate.
	r2 := &Runner{CacheDir: cacheDir}
	full, err := r2.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(specs) {
		t.Fatalf("resumed sweep = %d results", len(full))
	}
	hits, _ := r2.Stats()
	if int(hits) < len(results) {
		t.Errorf("resume served %d hits, want >= %d (interrupted jobs lost their cache writes)", hits, len(results))
	}
}

// TestRunAllCtxUncancelled pins that the context path is invisible when
// never cancelled.
func TestRunAllCtxUncancelled(t *testing.T) {
	r := &Runner{}
	results, err := r.RunAllCtx(context.Background(), []scenario.Spec{microSpec("FNCC")})
	if err != nil || len(results) != 1 {
		t.Fatalf("RunAllCtx = %d results, %v", len(results), err)
	}
}
