package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/scenario"
)

// Row is one exported sweep line: the identifying sweep coordinates plus
// the flat metric map.
type Row struct {
	Name    string  `json:"name"`
	Kind    string  `json:"kind"`
	Scheme  string  `json:"scheme"`
	Backend string  `json:"backend"`
	Size    int     `json:"size,omitempty"`
	Load    float64 `json:"load,omitempty"`
	Seed    int64   `json:"seed"`
	Hash    string  `json:"hash,omitempty"`
	// Runs counts how many results aggregated into this row (1 for raw
	// rows, the seed count after Aggregate).
	Runs    int                `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// sizeOf extracts the kind's natural scale dimension (applySize's inverse).
func sizeOf(sp scenario.Spec) int {
	switch sp.Kind {
	case scenario.KindFCT, scenario.KindPermutation, scenario.KindAllToAll, scenario.KindMixed:
		return sp.Topo.K
	case scenario.KindMicro, scenario.KindFairness:
		return sp.Topo.Senders
	case scenario.KindIncast:
		return sp.Workload.Fanout
	default:
		return 0
	}
}

// Rows flattens results into export rows, one per run.
func Rows(results []*scenario.Result) []Row {
	rows := make([]Row, len(results))
	for i, res := range results {
		rows[i] = Row{
			Name:    res.Spec.Name,
			Kind:    res.Spec.Kind,
			Scheme:  res.Spec.Scheme,
			Backend: res.Spec.BackendName(),
			Size:    sizeOf(res.Spec),
			Load:    res.Spec.Load,
			Seed:    res.Spec.Seed,
			Hash:    res.Hash,
			Runs:    1,
			Metrics: res.Metrics,
		}
	}
	return rows
}

// Aggregate averages rows across seeds: rows sharing (name, kind, scheme,
// size, load) merge into one row with per-metric means, Runs counting the
// merged seeds and Seed/Hash cleared. Output order follows first
// appearance, so sweep ordering is preserved.
func Aggregate(rows []Row) []Row {
	type key struct {
		name, kind, scheme, backend string
		size                        int
		load                        float64
	}
	index := map[key]int{}
	var out []Row
	counts := map[key]map[string]int{}
	for _, r := range rows {
		k := key{r.Name, r.Kind, r.Scheme, r.Backend, r.Size, r.Load}
		i, ok := index[k]
		if !ok {
			i = len(out)
			index[k] = i
			out = append(out, Row{Name: r.Name, Kind: r.Kind, Scheme: r.Scheme,
				Backend: r.Backend, Size: r.Size, Load: r.Load,
				Metrics: map[string]float64{}})
			counts[k] = map[string]int{}
		}
		out[i].Runs += r.Runs
		for m, v := range r.Metrics {
			out[i].Metrics[m] += v
			counts[k][m]++
		}
	}
	for k, i := range index {
		for m, n := range counts[k] {
			out[i].Metrics[m] /= float64(n)
		}
	}
	return out
}

// metricColumns returns the sorted union of metric names across rows.
func metricColumns(rows []Row) []string {
	set := map[string]bool{}
	for _, r := range rows {
		for m := range r.Metrics {
			set[m] = true
		}
	}
	cols := make([]string, 0, len(set))
	for m := range set {
		cols = append(cols, m)
	}
	sort.Strings(cols)
	return cols
}

// WriteJSON exports rows as an indented JSON array.
func WriteJSON(w io.Writer, rows []Row) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// WriteCSV exports rows as CSV with one column per metric (sorted union;
// rows missing a metric leave the cell empty).
func WriteCSV(w io.Writer, rows []Row) error {
	cols := metricColumns(rows)
	cw := csv.NewWriter(w)
	header := append([]string{"name", "kind", "scheme", "backend", "size", "load", "seed", "runs"}, cols...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Name, r.Kind, r.Scheme, r.Backend,
			strconv.Itoa(r.Size),
			strconv.FormatFloat(r.Load, 'g', -1, 64),
			strconv.FormatInt(r.Seed, 10),
			strconv.Itoa(r.Runs)}
		for _, c := range cols {
			v, ok := r.Metrics[c]
			if !ok {
				rec = append(rec, "")
				continue
			}
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FormatTable renders rows as an aligned text table for terminals, keeping
// at most the first six metric columns (CSV/JSON carry the full set).
func FormatTable(rows []Row) string {
	cols := metricColumns(rows)
	if len(cols) > 6 {
		cols = cols[:6]
	}
	out := fmt.Sprintf("%-24s %-12s %-12s %-7s %5s %6s %6s %5s", "name", "kind", "scheme", "backend", "size", "load", "seed", "runs")
	for _, c := range cols {
		out += fmt.Sprintf(" %18s", c)
	}
	out += "\n"
	for _, r := range rows {
		out += fmt.Sprintf("%-24s %-12s %-12s %-7s %5d %6.2f %6d %5d", r.Name, r.Kind, r.Scheme, r.Backend, r.Size, r.Load, r.Seed, r.Runs)
		for _, c := range cols {
			if v, ok := r.Metrics[c]; ok {
				out += fmt.Sprintf(" %18.4g", v)
			} else {
				out += fmt.Sprintf(" %18s", "-")
			}
		}
		out += "\n"
	}
	return out
}
