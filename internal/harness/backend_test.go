package harness

import (
	"os"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// fastFluidPair is a scenario cheap enough to simulate under both backends
// in a unit test (a 4-to-1 incast of 100 KB flows).
func fastFluidPair() (packet, fluid scenario.Spec) {
	base := scenario.Spec{Kind: scenario.KindIncast, Scheme: "FNCC",
		Workload:   scenario.WorkloadSpec{Fanout: 4, FlowBytes: 100_000},
		DurationUs: 20_000}
	packet = base
	fluid = base
	fluid.Backend = scenario.BackendFluid
	return packet, fluid
}

// TestCacheKeySeparatesBackends: the same experiment under "packet" vs
// "fluid" must hash to distinct cache entries — a shared key would silently
// serve packet ground truth for fluid requests (masking model error) or,
// worse, fluid approximations for packet requests.
func TestCacheKeySeparatesBackends(t *testing.T) {
	pk, fl := fastFluidPair()
	if pk.Hash() == fl.Hash() {
		t.Fatalf("packet and fluid specs share hash %s", pk.Hash())
	}

	dir := t.TempDir()
	r := &Runner{CacheDir: dir}
	pres, err := r.Run(pk)
	if err != nil {
		t.Fatal(err)
	}
	// The fluid run must be a miss, not a hit on the packet entry.
	fres, err := r.Run(fl)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := r.Stats(); hits != 0 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 0/2 (fluid served from packet cache?)", hits, misses)
	}
	if fres.Cached {
		t.Fatal("fluid result claims to be cached on first run")
	}
	// Distinct physical entries on disk.
	for _, h := range []string{pk.Hash(), fl.Hash()} {
		if _, err := os.Stat(r.cachePath(h)); err != nil {
			t.Errorf("cache entry for %s missing: %v", h, err)
		}
	}
	// Re-running each spec hits its own entry and returns its own backend.
	pres2, err := r.Run(pk)
	if err != nil {
		t.Fatal(err)
	}
	fres2, err := r.Run(fl)
	if err != nil {
		t.Fatal(err)
	}
	if !pres2.Cached || !fres2.Cached {
		t.Fatal("second runs were not served from cache")
	}
	if got := pres2.Spec.BackendName(); got != scenario.BackendPacket {
		t.Errorf("packet rerun returned backend %q", got)
	}
	if got := fres2.Spec.BackendName(); got != scenario.BackendFluid {
		t.Errorf("fluid rerun returned backend %q", got)
	}
	if pres2.Hash == fres2.Hash {
		t.Error("cached results share a hash")
	}
	// And the results themselves differ in surface: only packet has queues.
	if _, ok := pres.Metrics["queue_peak_bytes"]; !ok {
		t.Error("packet incast lost its queue metric")
	}
	if _, ok := fres.Metrics["queue_peak_bytes"]; ok {
		t.Error("fluid incast reports a queue metric (served packet data?)")
	}
}

// TestGridBackendsDimension: Backends expands as a full grid dimension and
// exports with a backend column per row.
func TestGridBackendsDimension(t *testing.T) {
	pk, _ := fastFluidPair()
	sweep := Sweep{
		Base: pk,
		Grid: Grid{
			Schemes:  []string{"FNCC", "HPCC"},
			Backends: []string{scenario.BackendPacket, scenario.BackendFluid},
		},
	}
	if got := sweep.Grid.Points(); got != 4 {
		t.Fatalf("Points() = %d, want 4", got)
	}
	specs, err := sweep.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("expanded %d specs, want 4", len(specs))
	}
	seen := map[string]int{}
	for _, sp := range specs {
		seen[sp.Scheme+"/"+sp.BackendName()]++
	}
	for _, want := range []string{"FNCC/packet", "FNCC/fluid", "HPCC/packet", "HPCC/fluid"} {
		if seen[want] != 1 {
			t.Errorf("grid point %s appears %d times, want 1", want, seen[want])
		}
	}

	r := &Runner{}
	results, err := r.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	rows := Rows(results)
	var sb strings.Builder
	if err := WriteCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if !strings.HasPrefix(lines[0], "name,kind,scheme,backend,") {
		t.Errorf("CSV header missing backend column: %q", lines[0])
	}
	nFluid := 0
	for _, l := range lines[1:] {
		if strings.Contains(l, ",fluid,") {
			nFluid++
		}
	}
	if nFluid != 2 {
		t.Errorf("CSV has %d fluid rows, want 2", nFluid)
	}

	// Aggregation must not merge across backends.
	agg := Aggregate(rows)
	if len(agg) != 4 {
		t.Errorf("Aggregate merged across backends: %d rows, want 4", len(agg))
	}
}

// TestGridBackendRejectsPacketOnlyKind: expanding a fluid backend over a
// packet-only kind fails at Expand (validation), not at run time.
func TestGridBackendRejectsPacketOnlyKind(t *testing.T) {
	sweep := Sweep{
		Base: scenario.Spec{Kind: scenario.KindMicro, Scheme: "FNCC"},
		Grid: Grid{Backends: []string{scenario.BackendFluid}},
	}
	if _, err := sweep.Expand(); err == nil {
		t.Fatal("Expand accepted fluid backend for the micro kind")
	}
}
