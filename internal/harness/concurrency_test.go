package harness

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// repeatSpec returns the same cheap spec n times — the degenerate sweep
// that used to simulate n times.
func repeatSpec(n int) []scenario.Spec {
	specs := make([]scenario.Spec, n)
	for i := range specs {
		specs[i] = microSpec("FNCC")
	}
	return specs
}

// TestSingleflightDuplicateSpecs: a sweep containing the same spec 8×
// performs exactly one simulation; the other seven coalesce onto it (or
// hit the cache if they start after the leader stored). Runs under -race
// in CI, which also makes it the data-race guard for the flight table.
func TestSingleflightDuplicateSpecs(t *testing.T) {
	reg := obs.NewRegistry()
	r := &Runner{CacheDir: t.TempDir(), Workers: 8, Obs: reg}
	results, err := r.RunAll(repeatSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("results = %d, want 8", len(results))
	}
	hits, misses := r.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 simulation", misses)
	}
	if hits+r.Coalesced() != 7 {
		t.Fatalf("hits=%d coalesced=%d, want them to cover the other 7 jobs",
			hits, r.Coalesced())
	}
	s := reg.Snapshot()
	if s.Counters[MetricCacheMisses] != 1 {
		t.Errorf("%s = %d, want 1", MetricCacheMisses, s.Counters[MetricCacheMisses])
	}
	if s.Counters[MetricCacheCoalesced] != r.Coalesced() {
		t.Errorf("%s = %d, want %d", MetricCacheCoalesced,
			s.Counters[MetricCacheCoalesced], r.Coalesced())
	}
	if s.Counters[MetricJobsDone] != 8 {
		t.Errorf("%s = %d, want 8", MetricJobsDone, s.Counters[MetricJobsDone])
	}
	// Every copy carries the full metric map of the one simulation.
	for i, res := range results {
		if len(res.Metrics) == 0 || res.Metrics["engine_events"] != results[0].Metrics["engine_events"] {
			t.Fatalf("result %d metrics diverge from the leader's", i)
		}
	}
}

// TestSingleflightNoCache pins that coalescing works without a cache dir:
// waiters share the leader's in-memory result instead of re-loading. With
// no cache there is nothing for late starters to hit, so the test releases
// all callers through a barrier while the leader (a ~50 ms job) is still
// simulating — only overlapping work can coalesce.
func TestSingleflightNoCache(t *testing.T) {
	sp := microSpec("FNCC")
	sp.DurationUs = 2000
	r := &Runner{}
	const callers = 8
	var ready, wg sync.WaitGroup
	release := make(chan struct{})
	results := make([]*scenario.Result, callers)
	errs := make([]error, callers)
	ready.Add(callers)
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			ready.Done()
			<-release
			results[i], errs[i] = r.Run(sp)
		}(i)
	}
	ready.Wait()
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if _, misses := r.Stats(); misses != 1 {
		t.Fatalf("misses = %d, want 1 (no cache, pure singleflight)", misses)
	}
	if r.Coalesced() != callers-1 {
		t.Fatalf("coalesced = %d, want %d", r.Coalesced(), callers-1)
	}
	// Shared-copy results must still carry the leader's metrics.
	for _, res := range results {
		if res == nil || res.Metrics == nil {
			t.Fatal("coalesced result lost its metrics")
		}
	}
}

// TestSingleflightNameIndependence: the cache key ignores Name, so two
// differently named copies of one spec coalesce — and each caller still
// gets its own label back.
func TestSingleflightNameIndependence(t *testing.T) {
	a := microSpec("FNCC")
	a.Name = "alpha"
	b := microSpec("FNCC")
	b.Name = "beta"
	r := &Runner{CacheDir: t.TempDir(), Workers: 2}
	results, err := r.RunAll([]scenario.Spec{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := r.Stats(); misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
	if results[0].Spec.Name != "alpha" || results[1].Spec.Name != "beta" {
		t.Errorf("names = %q/%q, want alpha/beta",
			results[0].Spec.Name, results[1].Spec.Name)
	}
}

// TestCrossProcessExactlyOnce: two Runners sharing one CacheDir — the
// in-process stand-in for two server processes on one cache volume — race
// on the same spec and simulate exactly once between them. Each Runner has
// its own singleflight table, so this exercises the .inflight marker
// protocol, not the in-memory path. Runs under -race in CI.
func TestCrossProcessExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	const racers = 4
	runners := make([]*Runner, racers)
	for i := range runners {
		runners[i] = &Runner{CacheDir: dir}
	}
	var wg sync.WaitGroup
	errs := make([]error, racers)
	results := make([]*scenario.Result, racers)
	for i := range runners {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = runners[i].Run(microSpec("FNCC"))
		}(i)
	}
	wg.Wait()
	var misses, hits, coalesced int64
	for i, r := range runners {
		if errs[i] != nil {
			t.Fatalf("runner %d: %v", i, errs[i])
		}
		if results[i] == nil || len(results[i].Metrics) == 0 {
			t.Fatalf("runner %d returned an empty result", i)
		}
		h, m := r.Stats()
		hits += h
		misses += m
		coalesced += r.Coalesced()
	}
	if misses != 1 {
		t.Fatalf("total misses = %d, want exactly 1 simulation across all runners", misses)
	}
	if hits+coalesced != racers-1 {
		t.Fatalf("hits=%d coalesced=%d, want them to cover the other %d runners",
			hits, coalesced, racers-1)
	}
	// The marker must not outlive the winner.
	if _, err := os.Stat(filepath.Join(dir, microSpec("FNCC").Hash()+inflightSuffix)); err == nil {
		t.Error("in-flight marker leaked after all runners finished")
	}
}

// TestStaleMarkerReclaimed: a marker left by a crashed process (old mtime,
// no result file ever coming) must not wedge the hash forever — a new
// Runner reclaims it and simulates.
func TestStaleMarkerReclaimed(t *testing.T) {
	dir := t.TempDir()
	sp := microSpec("FNCC")
	marker := filepath.Join(dir, sp.Hash()+inflightSuffix)
	if err := os.WriteFile(marker, []byte("pid 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * markerStaleAfter)
	if err := os.Chtimes(marker, old, old); err != nil {
		t.Fatal(err)
	}
	r := &Runner{CacheDir: dir}
	res, err := r.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("stale marker produced a phantom cache hit")
	}
	if _, misses := r.Stats(); misses != 1 {
		t.Errorf("misses = %d, want 1 (reclaimed and simulated)", misses)
	}
}

// TestTempFileReaping: Runner startup deletes aged-out .tmp- orphans and
// stale .inflight markers but leaves fresh ones (a live writer) alone.
func TestTempFileReaping(t *testing.T) {
	dir := t.TempDir()
	oldTmp := filepath.Join(dir, "sc-dead.tmp-123")
	freshTmp := filepath.Join(dir, "sc-live.tmp-456")
	oldMarker := filepath.Join(dir, "sc-dead"+inflightSuffix)
	for _, p := range []string{oldTmp, freshTmp, oldMarker} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	past := time.Now().Add(-2 * tmpMaxAge)
	for _, p := range []string{oldTmp, oldMarker} {
		if err := os.Chtimes(p, past, past); err != nil {
			t.Fatal(err)
		}
	}
	reg := obs.NewRegistry()
	r := &Runner{CacheDir: dir, Obs: reg}
	if _, err := r.Run(microSpec("FNCC")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(oldTmp); !os.IsNotExist(err) {
		t.Error("aged-out temp file survived the reaper")
	}
	if _, err := os.Stat(oldMarker); !os.IsNotExist(err) {
		t.Error("stale in-flight marker survived the reaper")
	}
	if _, err := os.Stat(freshTmp); err != nil {
		t.Error("fresh temp file was reaped (live writer's file deleted)")
	}
	if got := reg.Snapshot().Counters[MetricCacheReaped]; got != 2 {
		t.Errorf("%s = %d, want 2", MetricCacheReaped, got)
	}
}

// TestErroredAccounting: a failing job lands in jobs_errored and
// Progress.Errored — not in jobs_done — and still observes job.wall_ms,
// so the histogram covers the whole sweep (simulated + cached + errored).
func TestErroredAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	good := microSpec("FNCC")
	// Warm the cache so the sweep below has a cached outcome too.
	warm := &Runner{CacheDir: dir}
	if _, err := warm.Run(good); err != nil {
		t.Fatal(err)
	}
	bad := microSpec("FNCC")
	bad.Kind = "no-such-kind" // fails Validate inside runOne
	var last Progress
	r := &Runner{CacheDir: dir, Workers: 1, Obs: reg,
		OnProgress: func(p Progress) { last = p }}
	_, err := r.RunAll([]scenario.Spec{good, bad})
	if err == nil {
		t.Fatal("sweep with an invalid spec succeeded")
	}
	s := reg.Snapshot()
	if s.Counters[MetricJobsErrored] != 1 {
		t.Errorf("%s = %d, want 1", MetricJobsErrored, s.Counters[MetricJobsErrored])
	}
	if s.Counters[MetricJobsDone] != 1 {
		t.Errorf("%s = %d, want 1 (errored job folded into done)", MetricJobsDone,
			s.Counters[MetricJobsDone])
	}
	if last.Errored != 1 || last.Done != 1 {
		t.Errorf("progress = %+v, want Done=1 Errored=1", last)
	}
	if s.Gauges[MetricSweepErrored] != 1 {
		t.Errorf("%s gauge = %g, want 1", MetricSweepErrored, s.Gauges[MetricSweepErrored])
	}
	// wall_ms must cover both outcomes: one cached hit + one errored job.
	if got := s.Histograms[MetricJobWallMs].Count; got != 2 {
		t.Errorf("%s count = %d, want 2 (cached + errored both observed)",
			MetricJobWallMs, got)
	}
}
