package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// telemetrySpec is a cheap incast with probes and a trace cap, used by the
// cache and export tests.
func telemetrySpec() scenario.Spec {
	return scenario.Spec{
		Name:   "probe-incast",
		Kind:   scenario.KindIncast,
		Scheme: "FNCC",
		Workload: scenario.WorkloadSpec{
			Fanout:    4,
			FlowBytes: 20_000,
		},
		DurationUs: 1000,
		Telemetry: &scenario.TelemetrySpec{
			IntervalUs: 10,
			Probes:     []string{"queue", "host"},
			TraceCap:   128,
		},
	}
}

// TestCacheKeysUnchangedByTelemetryLayer pins cache keys for specs without
// a telemetry block (or with an all-zero one): they must canonicalize
// byte-for-byte as they did when the keys were captured, so sweep caches
// written by earlier builds of the same cache epoch stay valid. The values
// below are the fncc-scenario-v2 keys (the epoch bumped with the engine's
// canonical collision-order change).
func TestCacheKeysUnchangedByTelemetryLayer(t *testing.T) {
	pinned := map[string]string{
		"micro":               "sc-aed404ce9f8898de",
		"incast":              "sc-494032cbfb559e74",
		"fct-websearch":       "sc-e7d6670fa8fd5bcc",
		"fct-websearch-fluid": "sc-b28b07433ca15a81",
		"permutation-fluid":   "sc-a30191ec6f7ae645",
	}
	for name, want := range pinned {
		sp, err := scenario.Lookup(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := sp.Hash(); got != want {
			t.Errorf("%s: hash %s, want pre-telemetry %s", name, got, want)
		}
		// An explicit zero telemetry block normalizes away entirely.
		sp.Telemetry = &scenario.TelemetrySpec{}
		if got := sp.Hash(); got != want {
			t.Errorf("%s: zero telemetry block changed hash to %s", name, got)
		}
		if sp.Normalized().Telemetry != nil {
			t.Errorf("%s: zero telemetry block survived normalization", name)
		}
		// A configured block must change the key: sampled runs never share
		// a cache entry with unsampled ones.
		sp.Telemetry = &scenario.TelemetrySpec{IntervalUs: 10, Probes: []string{"queue"}}
		if sp.BackendName() == scenario.BackendFluid {
			sp.Telemetry.Probes = []string{"rate"}
		}
		if got := sp.Hash(); got == want {
			t.Errorf("%s: telemetry-on spec kept the telemetry-off hash", name)
		}
	}
}

// TestTelemetryNormalization: probes sort and dedupe canonically.
func TestTelemetryNormalization(t *testing.T) {
	sp := telemetrySpec()
	sp.Telemetry.Probes = []string{"queue", "host", "queue"}
	n := sp.Normalized()
	got := n.Telemetry.Probes
	if len(got) != 2 || got[0] != "host" || got[1] != "queue" {
		t.Fatalf("normalized probes = %v, want [host queue]", got)
	}
	// Normalization deep-copies: mutating the copy leaves the input alone.
	n.Telemetry.Probes[0] = "mutated"
	if sp.Telemetry.Probes[0] == "mutated" {
		t.Fatal("Normalized aliases the input telemetry block")
	}
	// Probe order must not affect the cache key.
	a, b := telemetrySpec(), telemetrySpec()
	a.Telemetry.Probes = []string{"host", "queue"}
	b.Telemetry.Probes = []string{"queue", "host", "host"}
	if a.Hash() != b.Hash() {
		t.Fatal("probe order changed the cache key")
	}
}

func TestTelemetryValidation(t *testing.T) {
	bad := telemetrySpec()
	bad.Telemetry.IntervalUs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero interval with probes validated")
	}
	bad = telemetrySpec()
	bad.Telemetry.Probes = []string{"rate"} // fluid-only probe on packet
	if err := bad.Validate(); err == nil {
		t.Error("fluid probe on packet backend validated")
	}
	fl := scenario.Spec{
		Kind: scenario.KindIncast, Backend: scenario.BackendFluid,
		Scheme:   "FNCC",
		Workload: scenario.WorkloadSpec{Fanout: 4, FlowBytes: 20_000},
		Telemetry: &scenario.TelemetrySpec{
			IntervalUs: 10, Probes: []string{"rate", "link"},
		},
	}
	if err := fl.Validate(); err != nil {
		t.Errorf("fluid telemetry spec rejected: %v", err)
	}
	fl.Telemetry.Probes = []string{"queue"}
	if err := fl.Validate(); err == nil {
		t.Error("packet probe on fluid backend validated")
	}
	fl.Telemetry.Probes = []string{"rate"}
	fl.Telemetry.TraceCap = 64
	if err := fl.Validate(); err == nil {
		t.Error("trace_cap on fluid backend validated")
	}
}

// TestTelemetryPersistsThroughCache: a telemetry-bearing result round-trips
// through the disk cache with its series and trace intact.
func TestTelemetryPersistsThroughCache(t *testing.T) {
	r := &Runner{CacheDir: t.TempDir()}
	sp := telemetrySpec()
	fresh, err := r.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Cached {
		t.Fatal("first run served from empty cache")
	}
	if fresh.Telemetry == nil || fresh.Telemetry.Samples == 0 {
		t.Fatal("run produced no telemetry")
	}
	if fresh.Metrics["telemetry_samples"] == 0 {
		t.Error("telemetry_samples metric missing")
	}
	if fresh.Telemetry.TraceTotal == 0 {
		t.Error("flight recorder captured nothing")
	}
	hit, err := r.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Fatal("second run missed the cache")
	}
	if hit.Telemetry == nil {
		t.Fatal("cache hit dropped the telemetry")
	}
	if hit.Telemetry.Samples != fresh.Telemetry.Samples ||
		len(hit.Telemetry.Series) != len(fresh.Telemetry.Series) ||
		hit.Telemetry.TraceTotal != fresh.Telemetry.TraceTotal {
		t.Fatalf("cached telemetry differs: %d/%d/%d vs %d/%d/%d",
			hit.Telemetry.Samples, len(hit.Telemetry.Series), hit.Telemetry.TraceTotal,
			fresh.Telemetry.Samples, len(fresh.Telemetry.Series), fresh.Telemetry.TraceTotal)
	}
}

func TestRunAllProgress(t *testing.T) {
	specs, err := cheapSweep().Expand()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var snaps []Progress
	r := &Runner{CacheDir: dir, Workers: 2,
		OnProgress: func(p Progress) { snaps = append(snaps, p) }}
	if _, err := r.RunAll(specs); err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2*len(specs) {
		t.Fatalf("%d progress snapshots, want %d", len(snaps), 2*len(specs))
	}
	final := snaps[len(snaps)-1]
	if final.Total != len(specs) || final.Done != len(specs) || final.InFlight != 0 {
		t.Fatalf("final snapshot %+v", final)
	}
	if final.Cached != 0 || final.Events <= 0 || final.EventsPerSec <= 0 {
		t.Fatalf("cold sweep counted %d cached, %v events", final.Cached, final.Events)
	}
	// A warm sweep reports every job cached and no new events.
	var warm Progress
	r2 := &Runner{CacheDir: dir, OnProgress: func(p Progress) { warm = p }}
	if _, err := r2.RunAll(specs); err != nil {
		t.Fatal(err)
	}
	if warm.Cached != len(specs) || warm.Events != 0 {
		t.Fatalf("warm sweep snapshot %+v", warm)
	}
}

func TestExportTelemetry(t *testing.T) {
	r := &Runner{}
	res, err := r.Run(telemetrySpec())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "series")
	if err := ExportTelemetry(dir, res); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "series.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "queue_bytes") {
		t.Error("series.json has no queue series")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var csvs, traces int
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".csv"):
			csvs++
		case e.Name() == "trace.jsonl":
			traces++
		}
	}
	if csvs == 0 {
		t.Error("no per-series CSV exported")
	}
	if traces != 1 {
		t.Error("trace.jsonl not exported despite trace_cap")
	}
	// Sanity-check one CSV: header plus at least one row.
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		body, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(body), "time_us,value") {
			t.Errorf("%s: missing CSV header", e.Name())
		}
		break
	}

	// Results without telemetry refuse to export.
	plain := telemetrySpec()
	plain.Telemetry = nil
	pres, err := r.Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if err := ExportTelemetry(t.TempDir(), pres); err == nil {
		t.Error("exported a result with no telemetry")
	}
}
