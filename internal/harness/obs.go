package harness

import (
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// Registry metric names the harness maintains. Counters accumulate across
// every run the Runner executes; sweep.* gauges track the live RunAll in
// flight. Exposed as constants so tests and the CLI summary line don't
// drift from the writers.
const (
	MetricCacheHits = "harness.cache_hits"
	// MetricCacheMisses counts simulations: jobs neither cached, coalesced
	// onto an identical in-flight job, nor errored.
	MetricCacheMisses = "harness.cache_misses"
	// MetricCacheCoalesced counts jobs that rode an identical in-flight
	// simulation (singleflight within the process, or the .inflight marker
	// across processes sharing a cache dir) instead of simulating.
	MetricCacheCoalesced = "harness.cache_coalesced"
	// MetricCacheReaped counts orphaned .tmp- files and stale .inflight
	// markers the startup reaper deleted from the cache dir.
	MetricCacheReaped = "harness.cache_reaped"
	// MetricJobsDone and MetricJobsErrored partition every finished job:
	// done counts successes (simulated, cached, or coalesced), errored the
	// failures. Their sum is the number of runOne calls that returned.
	MetricJobsDone    = "harness.jobs_done"
	MetricJobsErrored = "harness.jobs_errored"

	MetricEngineEvents       = "engine.events_total"
	MetricEngineMallocs      = "engine.mallocs_total"
	MetricEngineAllocBytes   = "engine.alloc_bytes_total"
	MetricFluidFullPasses    = "fluid.full_passes_total"
	MetricFluidIncrPasses    = "fluid.incremental_passes_total"
	MetricTelemetrySamples   = "telemetry.samples_total"
	MetricTraceEvents        = "telemetry.trace_events_total"
	MetricEventsPerSecLast   = "engine.events_per_sec_last"
	MetricPoolHitRateLast    = "engine.pool_hit_rate_last"
	MetricEventReuseRateLast = "engine.event_reuse_rate_last"

	MetricJobWallMs  = "job.wall_ms"
	MetricJobEvents  = "job.engine_events"
	MetricJobMallocs = "job.mallocs"

	MetricSweepTotal        = "sweep.jobs_total"
	MetricSweepDone         = "sweep.jobs_done"
	MetricSweepCached       = "sweep.jobs_cached"
	MetricSweepErrored      = "sweep.jobs_errored"
	MetricSweepInFlight     = "sweep.jobs_in_flight"
	MetricSweepEventsPerSec = "sweep.events_per_sec"
)

// obsSink adapts the registry to scenario.Sink, with every instrument
// resolved once so the per-run cost is a handful of atomic adds. It feeds
// the engine-level stats each run already computes — sim.EngineStats and
// packet.PoolStats via exp.PerfStats's metric columns, fluid.Stats's
// full-vs-incremental pass split — into process-lifetime totals.
type obsSink struct {
	events, mallocs, allocBytes  *obs.Counter
	fluidFull, fluidIncr         *obs.Counter
	telemSamples, traceEvents    *obs.Counter
	epsLast, poolHit, eventReuse *obs.Gauge
	jobEvents, jobMallocs        *obs.Histogram
}

func newObsSink(reg *obs.Registry) *obsSink {
	return &obsSink{
		events:       reg.Counter(MetricEngineEvents),
		mallocs:      reg.Counter(MetricEngineMallocs),
		allocBytes:   reg.Counter(MetricEngineAllocBytes),
		fluidFull:    reg.Counter(MetricFluidFullPasses),
		fluidIncr:    reg.Counter(MetricFluidIncrPasses),
		telemSamples: reg.Counter(MetricTelemetrySamples),
		traceEvents:  reg.Counter(MetricTraceEvents),
		epsLast:      reg.Gauge(MetricEventsPerSecLast),
		poolHit:      reg.Gauge(MetricPoolHitRateLast),
		eventReuse:   reg.Gauge(MetricEventReuseRateLast),
		jobEvents:    reg.Histogram(MetricJobEvents),
		jobMallocs:   reg.Histogram(MetricJobMallocs),
	}
}

// ObserveRun implements scenario.Sink: fold one simulated run's engine
// stats into the registry. The metric map is the pre-Collect superset, so
// the perf columns are always present (fluid_* only on the fluid backend).
func (s *obsSink) ObserveRun(_ scenario.Spec, _ string, m map[string]float64) {
	s.events.Add(int64(m["engine_events"]))
	s.mallocs.Add(int64(m["mallocs_per_run"]))
	s.allocBytes.Add(int64(m["alloc_bytes_per_run"]))
	s.epsLast.Set(m["engine_events_per_sec"])
	if v, ok := m["pool_hit_rate"]; ok {
		s.poolHit.Set(v)
	}
	if v, ok := m["event_reuse_rate"]; ok {
		s.eventReuse.Set(v)
	}
	if v, ok := m["fluid_full_passes"]; ok {
		s.fluidFull.Add(int64(v))
	}
	if v, ok := m["fluid_incremental_passes"]; ok {
		s.fluidIncr.Add(int64(v))
	}
	if v, ok := m["telemetry_samples"]; ok {
		s.telemSamples.Add(int64(v))
		s.traceEvents.Add(int64(m["trace_events"]))
	}
	s.jobEvents.Observe(m["engine_events"])
	s.jobMallocs.Observe(m["mallocs_per_run"])
}

// sink returns the scenario.Sink feeding r.Obs, nil when obs is off. The
// nil return must be a true nil interface — a typed nil *obsSink would
// defeat scenario.RunWithSink's pointer test.
func (r *Runner) sink() scenario.Sink {
	if r.Obs == nil {
		return nil
	}
	r.sinkOnce.Do(func() { r.obsSink = newObsSink(r.Obs) })
	return r.obsSink
}

// observeProgress mirrors a progress snapshot into the sweep.* gauges.
func observeProgress(reg *obs.Registry, p Progress) {
	reg.Gauge(MetricSweepTotal).Set(float64(p.Total))
	reg.Gauge(MetricSweepDone).Set(float64(p.Done))
	reg.Gauge(MetricSweepCached).Set(float64(p.Cached))
	reg.Gauge(MetricSweepErrored).Set(float64(p.Errored))
	reg.Gauge(MetricSweepInFlight).Set(float64(p.InFlight))
	reg.Gauge(MetricSweepEventsPerSec).Set(p.EventsPerSec)
}

// jobSpan opens the per-job span under the sweep root, labelled with the
// sweep coordinates that identify the job in a trace viewer.
func (r *Runner) jobSpan(sp scenario.Spec, hash string, parent *obs.Span) *obs.Span {
	if r.Tracer == nil {
		return nil
	}
	s := r.Tracer.Start("job", parent)
	s.SetAttr("hash", hash)
	s.SetAttr("name", sp.Name)
	s.SetAttr("kind", sp.Kind)
	s.SetAttr("scheme", sp.Scheme)
	s.SetAttr("backend", sp.BackendName())
	s.SetAttr("seed", strconv.FormatInt(sp.Seed, 10))
	return s
}

// timeHist observes elapsed milliseconds on the named histogram; a nil
// registry makes it a no-op via the nil instrument.
func timeHist(reg *obs.Registry, name string, since time.Time) {
	reg.Histogram(name).Observe(float64(time.Since(since).Nanoseconds()) / 1e6)
}
