// Package harness turns declarative scenarios (internal/scenario) into
// sweeps: a grid over schemes × seeds × loads × topology sizes expands to
// one spec per point, jobs execute on the exp.ParallelMap worker pool, a
// disk cache keyed by spec content hash makes re-runs and resumed sweeps
// near-free, and results export as aggregated JSON/CSV tables.
package harness

import (
	"fmt"

	"repro/internal/scenario"
)

// Grid is the sweep dimensions. Empty dimensions keep the base spec's
// value; expansion order is schemes (outer) → backends → sizes → loads →
// seeds.
type Grid struct {
	// Schemes are congestion-control scheme names (exp registry).
	Schemes []string `json:"schemes,omitempty"`
	// Backends are simulation backends ("packet", "fluid"); sweeping both
	// runs every point twice, e.g. to quantify the fluid approximation
	// against packet ground truth across a whole grid.
	Backends []string `json:"backends,omitempty"`
	// Seeds repeat each point with different randomness.
	Seeds []int64 `json:"seeds,omitempty"`
	// Loads are target access-link loads for Poisson kinds.
	Loads []float64 `json:"loads,omitempty"`
	// Sizes scale the topology: fat-tree arity K for fat-tree kinds,
	// sender count for micro/fairness, fanout for incast.
	Sizes []int `json:"sizes,omitempty"`
}

// Points returns how many jobs the grid expands to.
func (g Grid) Points() int {
	n := 1
	for _, d := range []int{len(g.Schemes), len(g.Backends), len(g.Seeds), len(g.Loads), len(g.Sizes)} {
		if d > 0 {
			n *= d
		}
	}
	return n
}

// Sweep is a base scenario plus the grid swept over it.
type Sweep struct {
	Base scenario.Spec `json:"base"`
	Grid Grid          `json:"grid"`
}

// Expand produces one validated spec per grid point, in deterministic
// order.
func (s Sweep) Expand() ([]scenario.Spec, error) {
	schemes := s.Grid.Schemes
	if len(schemes) == 0 {
		schemes = []string{s.Base.Scheme}
	}
	backends := s.Grid.Backends
	if len(backends) == 0 {
		backends = []string{s.Base.Backend}
	}
	sizes := s.Grid.Sizes
	if len(sizes) == 0 {
		sizes = []int{0} // 0 = keep base
	}
	loads := s.Grid.Loads
	if len(loads) == 0 {
		loads = []float64{s.Base.Load}
	}
	seeds := s.Grid.Seeds
	if len(seeds) == 0 {
		seeds = []int64{s.Base.Seed}
	}
	var specs []scenario.Spec
	for _, scheme := range schemes {
		for _, backend := range backends {
			for _, size := range sizes {
				for _, load := range loads {
					for _, seed := range seeds {
						sp := s.Base
						sp.Scheme = scheme
						sp.Backend = backend
						sp.Load = load
						sp.Seed = seed
						if size > 0 {
							if err := applySize(&sp, size); err != nil {
								return nil, err
							}
						}
						if err := sp.Validate(); err != nil {
							return nil, fmt.Errorf("harness: grid point %s/%s: %w", scheme, sp.Kind, err)
						}
						specs = append(specs, sp)
					}
				}
			}
		}
	}
	return specs, nil
}

// applySize maps a grid size onto the kind's natural scale dimension.
func applySize(sp *scenario.Spec, n int) error {
	switch sp.Kind {
	case scenario.KindFCT, scenario.KindPermutation, scenario.KindAllToAll, scenario.KindMixed:
		sp.Topo.K = n
	case scenario.KindMicro, scenario.KindFairness:
		sp.Topo.Senders = n
	case scenario.KindIncast:
		sp.Workload.Fanout = n
	default:
		return fmt.Errorf("harness: kind %q has no size dimension", sp.Kind)
	}
	return nil
}
