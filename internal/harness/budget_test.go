package harness

import (
	"runtime"
	"testing"

	"repro/internal/scenario"
)

// TestPoolWorkers pins the oversubscription guard: pool × simWorkers never
// exceeds GOMAXPROCS, requested <= 0 fills the budget, and at least one
// worker is always granted even when a single job is wider than the budget.
func TestPoolWorkers(t *testing.T) {
	budget := runtime.GOMAXPROCS(0)
	if got := Budget(); got != budget {
		t.Fatalf("Budget() = %d, want GOMAXPROCS %d", got, budget)
	}

	cases := []struct {
		name                        string
		requested, simWorkers, want int
	}{
		{"default fills budget", 0, 0, budget},
		{"negative fills budget", -3, 1, budget},
		{"one is one", 1, 0, 1},
		{"over-ask clamps to budget", budget + 7, 1, budget},
		{"sim workers shrink the pool", 0, budget, 1},
		{"wider than budget still grants one", 4, 2 * budget, 1},
	}
	for _, tc := range cases {
		if got := PoolWorkers(tc.requested, tc.simWorkers); got != tc.want {
			t.Errorf("%s: PoolWorkers(%d, %d) = %d, want %d",
				tc.name, tc.requested, tc.simWorkers, got, tc.want)
		}
	}

	// The invariant itself, across a small grid.
	for req := -1; req <= budget+2; req++ {
		for sw := 0; sw <= budget+2; sw++ {
			pool := PoolWorkers(req, sw)
			eff := sw
			if eff < 1 {
				eff = 1
			}
			if pool < 1 {
				t.Fatalf("PoolWorkers(%d, %d) = %d < 1", req, sw, pool)
			}
			if pool > 1 && pool*eff > budget {
				t.Fatalf("PoolWorkers(%d, %d) = %d oversubscribes: %d × %d > budget %d",
					req, sw, pool, pool, eff, budget)
			}
		}
	}
}

// TestMaxSimWorkers checks the sweep scan used to size shared pools.
func TestMaxSimWorkers(t *testing.T) {
	if got := MaxSimWorkers(nil); got != 0 {
		t.Fatalf("MaxSimWorkers(nil) = %d, want 0", got)
	}
	specs := []scenario.Spec{
		{Kind: scenario.KindMicro, Scheme: "FNCC"},
		{Kind: scenario.KindMicro, Scheme: "FNCC", Workers: 4},
		{Kind: scenario.KindMicro, Scheme: "FNCC", Workers: 2},
	}
	if got := MaxSimWorkers(specs); got != 4 {
		t.Fatalf("MaxSimWorkers = %d, want 4", got)
	}
}
