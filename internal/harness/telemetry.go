package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/scenario"
	"repro/internal/telemetry"
)

// ExportTelemetry writes a result's telemetry under dir: the full output as
// series.json, one CSV per probe series (slashes in series names become
// directories-unfriendly, so they flatten to underscores), and the event
// trace as trace.jsonl when one was captured. Returns an error if the result
// carries no telemetry.
func ExportTelemetry(dir string, res *scenario.Result) error {
	if res.Telemetry == nil {
		return fmt.Errorf("harness: result %s has no telemetry (spec lacks a telemetry block)", res.Hash)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("harness: telemetry dir: %w", err)
	}
	blob, err := json.MarshalIndent(res.Telemetry, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: encode telemetry: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "series.json"), append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("harness: telemetry export: %w", err)
	}
	for _, s := range res.Telemetry.ToSeries() {
		name := strings.ReplaceAll(s.Name, "/", "_") + ".csv"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(s.CSV()), 0o644); err != nil {
			return fmt.Errorf("harness: telemetry export: %w", err)
		}
	}
	if len(res.Telemetry.Trace) > 0 {
		f, err := os.Create(filepath.Join(dir, "trace.jsonl"))
		if err != nil {
			return fmt.Errorf("harness: trace export: %w", err)
		}
		werr := telemetry.WriteTraceJSONL(f, res.Telemetry.Trace)
		cerr := f.Close()
		if werr != nil {
			return fmt.Errorf("harness: trace export: %w", werr)
		}
		if cerr != nil {
			return fmt.Errorf("harness: trace export: %w", cerr)
		}
	}
	return nil
}
