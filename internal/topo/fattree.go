package topo

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// FatTreeOpts parameterizes a three-level k-ary fat-tree (§5.5: k=8, 128
// servers, 100 Gbps everywhere, 1:1 oversubscription, 1.5 us links, ECMP on
// ToR and aggregation).
type FatTreeOpts struct {
	// K is the arity; k pods, (k/2)^2 core switches, k^3/4 hosts. Must be
	// even and >= 2.
	K int
	// RateBps is the access and edge-aggregation link rate.
	RateBps int64
	// CoreRateBps is the aggregation-core link rate; zero means RateBps
	// (the paper's 1:1 oversubscription). Setting it below RateBps
	// oversubscribes the core (e.g. RateBps/2 gives 2:1).
	CoreRateBps int64
	// Delay is the uniform propagation delay.
	Delay sim.Time
	// Workers > 1 runs the simulation on the conservative parallel executor
	// with one shard per pod plus a core shard, executed by Workers
	// goroutines. Results are bit-identical to serial (Workers <= 1). The
	// shard plan depends only on the topology, not on Workers, so any two
	// parallel worker counts are identical by construction.
	Workers int
}

// coreRate resolves the effective agg-core rate.
func (o FatTreeOpts) coreRate() int64 {
	if o.CoreRateBps > 0 {
		return o.CoreRateBps
	}
	return o.RateBps
}

// DefaultFatTreeOpts is the paper's large-scale setup.
func DefaultFatTreeOpts() FatTreeOpts {
	return FatTreeOpts{K: 8, RateBps: 100e9, Delay: 1500 * sim.Nanosecond}
}

// FatTree is a built fat-tree.
type FatTree struct {
	Net   *netsim.Network
	Opts  FatTreeOpts
	Hosts []*netsim.Host
	Edge  []*netsim.Switch // k/2 per pod, pod-major order
	Agg   []*netsim.Switch // k/2 per pod, pod-major order
	Core  []*netsim.Switch // (k/2)^2
}

// BuildFatTree constructs the fabric with ECMP routes and a BaseRTT sized
// for the longest (cross-pod) path.
func BuildFatTree(cfg netsim.Config, scheme netsim.Scheme, opts FatTreeOpts) (*FatTree, error) {
	k := opts.K
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree arity %d must be even and >= 2", k)
	}
	half := k / 2

	// Longest path: 6 links (host-edge-agg-core-agg-edge-host).
	mtuTx := sim.TxTime(cfg.MTUBytes, opts.RateBps)
	ackTx := sim.TxTime(packet.AckBaseBytes+5*packet.IntHopBytes, opts.RateBps)
	cfg.BaseRTT = 6 * (2*opts.Delay + mtuTx + ackTx)

	n, err := netsim.New(cfg, scheme)
	if err != nil {
		return nil, err
	}
	ft := &FatTree{Net: n, Opts: opts}

	// Shard plan for parallel execution: pod p owns its hosts, edges and
	// aggs (shard p); every core switch lands in shard k. All cross-shard
	// links (agg-core) carry opts.Delay, which becomes the lookahead.
	sharded := opts.Workers > 1
	if sharded {
		n.ConfigureSharding(k+1, opts.Workers)
	}

	nHosts := k * k * k / 4
	for i := 0; i < nHosts; i++ {
		if sharded {
			n.BuildShard(i / (half * half)) // host's pod
		}
		ft.Hosts = append(ft.Hosts, n.NewHost())
	}
	for i := 0; i < k*half; i++ {
		if sharded {
			n.BuildShard(i / half) // pod of edge/agg pair i
		}
		ft.Edge = append(ft.Edge, n.NewSwitch(k)) // half hosts + half aggs
		ft.Agg = append(ft.Agg, n.NewSwitch(k))   // half edges + half cores
	}
	if sharded {
		n.BuildShard(k)
	}
	for i := 0; i < half*half; i++ {
		ft.Core = append(ft.Core, n.NewSwitch(k)) // one port per pod
	}

	// Wiring. Edge e in pod p: hosts on ports 0..half-1, aggs on half..k-1.
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			edge := ft.Edge[pod*half+e]
			for hIdx := 0; hIdx < half; hIdx++ {
				host := ft.Hosts[pod*half*half+e*half+hIdx]
				netsim.Connect(host.Port(), edge.PortAt(hIdx), opts.RateBps, opts.Delay)
			}
			for a := 0; a < half; a++ {
				agg := ft.Agg[pod*half+a]
				netsim.Connect(edge.PortAt(half+a), agg.PortAt(e), opts.RateBps, opts.Delay)
			}
		}
		// Agg a in pod: edges on ports 0..half-1 (wired above), cores on
		// half..k-1. Core index c = a*half + j attaches to pod's agg a.
		for a := 0; a < half; a++ {
			agg := ft.Agg[pod*half+a]
			for j := 0; j < half; j++ {
				core := ft.Core[a*half+j]
				netsim.Connect(agg.PortAt(half+j), core.PortAt(pod), opts.coreRate(), opts.Delay)
			}
		}
	}

	// Routes. Helper coordinates for a host index.
	podOf := func(h int) int { return h / (half * half) }
	edgeOf := func(h int) int { return (h % (half * half)) / half } // within pod
	slotOf := func(h int) int { return h % half }                   // port on edge

	uplinks := make([]int, half)
	for i := range uplinks {
		uplinks[i] = half + i
	}

	for hi, host := range ft.Hosts {
		hid := host.ID()
		hp, he, hs := podOf(hi), edgeOf(hi), slotOf(hi)
		// Edge switches.
		for pod := 0; pod < k; pod++ {
			for e := 0; e < half; e++ {
				edge := ft.Edge[pod*half+e]
				if pod == hp && e == he {
					edge.SetRoute(hid, hs)
				} else {
					edge.SetRoute(hid, uplinks...) // ECMP across aggs
				}
			}
		}
		// Aggregation switches.
		for pod := 0; pod < k; pod++ {
			for a := 0; a < half; a++ {
				agg := ft.Agg[pod*half+a]
				if pod == hp {
					agg.SetRoute(hid, he) // down to the host's edge
				} else {
					agg.SetRoute(hid, uplinks...) // ECMP across cores
				}
			}
		}
		// Core switches: one deterministic downlink per pod.
		for _, core := range ft.Core {
			core.SetRoute(hid, hp)
		}
	}
	return ft, nil
}

// MustFatTree is BuildFatTree that panics on error.
func MustFatTree(cfg netsim.Config, scheme netsim.Scheme, opts FatTreeOpts) *FatTree {
	ft, err := BuildFatTree(cfg, scheme, opts)
	if err != nil {
		panic(err)
	}
	return ft
}

// PathLinks returns the link count between two hosts: 2 within an edge, 4
// within a pod, 6 across pods.
func (ft *FatTree) PathLinks(src, dst int) int {
	half := ft.Opts.K / 2
	sp, dp := src/(half*half), dst/(half*half)
	if sp != dp {
		return 6
	}
	if (src%(half*half))/half != (dst%(half*half))/half {
		return 4
	}
	return 2
}

// IdealFCT computes the standalone completion time between two hosts.
func (ft *FatTree) IdealFCT(src, dst int, size int64) sim.Time {
	return idealFCT(size, ft.PathLinks(src, dst), ft.Opts.RateBps, ft.Opts.Delay, &ft.Net.Cfg)
}

// AddFlow wires a workload flow between host indexes with IdealFCT filled.
func (ft *FatTree) AddFlow(id uint64, src, dst int, size int64, start sim.Time) *netsim.Flow {
	f := ft.Net.AddFlow(id, ft.Hosts[src], ft.Hosts[dst], size, start)
	f.IdealFCT = ft.IdealFCT(src, dst, size)
	return f
}
