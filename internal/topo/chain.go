// Package topo builds the paper's evaluation topologies on the netsim
// substrate: the dumbbell/chain of Figs 10-11 and the three-level fat-tree
// (k=8, 128 hosts) of §5.5, including ECMP route installation and base-RTT
// / ideal-FCT computation.
package topo

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// ChainOpts parameterizes a linear switch chain with hosts hanging off it.
type ChainOpts struct {
	// Switches is the chain length M (Fig 10; paper micro-benchmarks use 3).
	Switches int
	// SenderAttach lists, per sender, the switch index it attaches to.
	// All-zeros is the classic dumbbell; attaching later senders mid-chain
	// or at the last switch reproduces Fig 11's middle-/last-hop scenarios.
	SenderAttach []int
	// RateBps is the uniform link rate (paper sweeps 100/200/400 G).
	RateBps int64
	// Delay is the uniform propagation delay (paper: 1.5 us).
	Delay sim.Time
	// Workers > 1 runs the simulation on the conservative parallel executor
	// with one shard per switch (each owning its attached hosts; the
	// receiver joins the last switch's shard), executed by Workers
	// goroutines. Results are bit-identical to serial (Workers <= 1).
	Workers int
}

// Chain is a built chain topology.
type Chain struct {
	Net      *netsim.Network
	Senders  []*netsim.Host
	Receiver *netsim.Host
	Switches []*netsim.Switch
	Opts     ChainOpts
}

// DefaultChainOpts is the Fig 10 micro-benchmark setup: M=3 switches,
// N senders on switch 0, 100 Gbps, 1.5 us.
func DefaultChainOpts(senders int) ChainOpts {
	return ChainOpts{
		Switches:     3,
		SenderAttach: make([]int, senders),
		RateBps:      100e9,
		Delay:        1500 * sim.Nanosecond,
	}
}

// BuildChain constructs the topology, wires routes for every host pair
// direction, and sets cfg.BaseRTT from the longest sender->receiver path.
func BuildChain(cfg netsim.Config, scheme netsim.Scheme, opts ChainOpts) (*Chain, error) {
	if opts.Switches < 1 {
		return nil, fmt.Errorf("topo: chain needs >= 1 switch")
	}
	if len(opts.SenderAttach) == 0 {
		return nil, fmt.Errorf("topo: chain needs >= 1 sender")
	}
	for i, at := range opts.SenderAttach {
		if at < 0 || at >= opts.Switches {
			return nil, fmt.Errorf("topo: sender %d attach point %d out of range", i, at)
		}
	}

	// Longest path: a sender on switch 0 crosses Switches+1 links. BaseRTT
	// counts both directions' propagation plus per-hop store-and-forward of
	// one MTU for data and one bare ACK back.
	links := opts.Switches + 1
	mtuTx := sim.TxTime(cfg.MTUBytes, opts.RateBps)
	ackTx := sim.TxTime(packet.AckBaseBytes+opts.Switches*packet.IntHopBytes, opts.RateBps)
	cfg.BaseRTT = sim.Time(links) * (2*opts.Delay + mtuTx + ackTx)

	n, err := netsim.New(cfg, scheme)
	if err != nil {
		return nil, err
	}
	c := &Chain{Net: n, Opts: opts}

	// Count per-switch local hosts to size ports: port 0 = toward previous
	// switch, port 1 = toward next switch (or the receiver at the last),
	// ports 2.. = local senders.
	local := make([][]int, opts.Switches) // switch -> sender indexes
	for i, at := range opts.SenderAttach {
		local[at] = append(local[at], i)
	}
	// Shard plan for parallel execution: one shard per switch, every host
	// in its attach switch's shard (the receiver joins the last switch), so
	// only the inter-switch links cross shards. A single-switch chain has
	// nothing to parallelize and stays serial.
	sharded := opts.Workers > 1 && opts.Switches > 1
	if sharded {
		n.ConfigureSharding(opts.Switches, opts.Workers)
	}
	for i := 0; i < opts.Switches; i++ {
		if sharded {
			n.BuildShard(i)
		}
		c.Switches = append(c.Switches, n.NewSwitch(2+len(local[i])))
	}
	c.Senders = make([]*netsim.Host, len(opts.SenderAttach))
	for i := range c.Senders {
		if sharded {
			n.BuildShard(opts.SenderAttach[i])
		}
		c.Senders[i] = n.NewHost()
	}
	if sharded {
		n.BuildShard(opts.Switches - 1)
	}
	c.Receiver = n.NewHost()

	// Wire the chain.
	for i := 0; i+1 < opts.Switches; i++ {
		netsim.Connect(c.Switches[i].PortAt(1), c.Switches[i+1].PortAt(0), opts.RateBps, opts.Delay)
	}
	netsim.Connect(c.Switches[opts.Switches-1].PortAt(1), c.Receiver.Port(), opts.RateBps, opts.Delay)
	senderPort := make([]int, len(c.Senders)) // port index on its switch
	for swi, idxs := range local {
		for k, si := range idxs {
			p := 2 + k
			senderPort[si] = p
			netsim.Connect(c.Senders[si].Port(), c.Switches[swi].PortAt(p), opts.RateBps, opts.Delay)
		}
	}

	// Routes. Toward the receiver every switch forwards "next" (port 1).
	for _, sw := range c.Switches {
		sw.SetRoute(c.Receiver.ID(), 1)
	}
	// Toward each sender: its own switch uses the local port; switches
	// further down the chain forward "previous" (port 0); switches before
	// it forward "next" (port 1).
	for si, h := range c.Senders {
		at := opts.SenderAttach[si]
		for swi, sw := range c.Switches {
			switch {
			case swi == at:
				sw.SetRoute(h.ID(), senderPort[si])
			case swi > at:
				sw.SetRoute(h.ID(), 0)
			default:
				sw.SetRoute(h.ID(), 1)
			}
		}
	}
	return c, nil
}

// MustChain is BuildChain that panics on error (tests, examples).
func MustChain(cfg netsim.Config, scheme netsim.Scheme, opts ChainOpts) *Chain {
	c, err := BuildChain(cfg, scheme, opts)
	if err != nil {
		panic(err)
	}
	return c
}

// BottleneckPort returns the canonical congestion point: the egress of the
// first switch toward the next hop (the port all Fig 9/13 queue-length
// plots monitor). For senders attached mid-chain the relevant port is
// Switches[attach].PortAt(1); this helper returns switch 0's.
func (c *Chain) BottleneckPort() *netsim.Port { return c.Switches[0].PortAt(1) }

// HopPort returns the egress port of the i-th switch toward the receiver,
// i.e. the queue of hop i+1 on the request path.
func (c *Chain) HopPort(i int) *netsim.Port { return c.Switches[i].PortAt(1) }

// PathLinks returns the number of links from sender si to the receiver.
func (c *Chain) PathLinks(si int) int {
	return c.Opts.Switches - c.Opts.SenderAttach[si] + 1
}

// IdealFCT computes the standalone completion time of size bytes from
// sender si: store-and-forward pipelining of full-MTU segments across the
// path at the uniform link rate.
func (c *Chain) IdealFCT(si int, size int64) sim.Time {
	return idealFCT(size, c.PathLinks(si), c.Opts.RateBps, c.Opts.Delay, &c.Net.Cfg)
}

// AddFlow is a convenience wrapper: sender si to the receiver, with
// IdealFCT pre-filled.
func (c *Chain) AddFlow(id uint64, si int, size int64, start sim.Time) *netsim.Flow {
	f := c.Net.AddFlow(id, c.Senders[si], c.Receiver, size, start)
	f.IdealFCT = c.IdealFCT(si, size)
	return f
}

// idealFCT models the unloaded network: the wire volume serializes once at
// the access rate, the last segment then crosses the remaining hops, and
// every link adds its propagation delay.
func idealFCT(size int64, links int, rate int64, delay sim.Time, cfg *netsim.Config) sim.Time {
	payload := int64(cfg.PayloadBytes())
	nPkts := (size + payload - 1) / payload
	wire := size + nPkts*int64(packet.DataHeaderBytes)
	lastPkt := size - (nPkts-1)*payload + int64(packet.DataHeaderBytes)
	t := sim.TxTime(int(wire), rate)                        // source serialization
	t += sim.Time(links-1) * sim.TxTime(int(lastPkt), rate) // per-hop store-and-forward
	t += sim.Time(links) * delay                            // propagation
	return t
}
