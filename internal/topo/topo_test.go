package topo

import (
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// fixedScheme gives the topology tests a CC-free substrate.
type fixedCC struct{ rate int64 }

func (c *fixedCC) Name() string                                 { return "fixed" }
func (c *fixedCC) OnAck(*netsim.Flow, *packet.Packet, sim.Time) {}
func (c *fixedCC) OnCnp(*netsim.Flow, sim.Time)                 {}
func (c *fixedCC) WindowBytes() int64                           { return 1 << 40 }
func (c *fixedCC) RateBps() int64                               { return c.rate }

type plainReceiver struct{}

func (plainReceiver) FillAck(ack, data *packet.Packet, _ *netsim.Host)    {}
func (plainReceiver) WantCnp(*packet.Packet, *netsim.Host, sim.Time) bool { return false }

func fixedScheme(rate int64) netsim.Scheme {
	return netsim.Scheme{
		Name:        "fixed",
		NewSenderCC: func(*netsim.Flow) netsim.SenderCC { return &fixedCC{rate: rate} },
		Receiver:    plainReceiver{},
	}
}

func TestChainValidation(t *testing.T) {
	cfg := netsim.DefaultConfig()
	sch := fixedScheme(100e9)
	bad := []ChainOpts{
		{Switches: 0, SenderAttach: []int{0}, RateBps: 100e9, Delay: sim.Microsecond},
		{Switches: 3, SenderAttach: nil, RateBps: 100e9, Delay: sim.Microsecond},
		{Switches: 3, SenderAttach: []int{5}, RateBps: 100e9, Delay: sim.Microsecond},
		{Switches: 3, SenderAttach: []int{-1}, RateBps: 100e9, Delay: sim.Microsecond},
	}
	for i, o := range bad {
		if _, err := BuildChain(cfg, sch, o); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestChainDumbbellDelivery(t *testing.T) {
	c := MustChain(netsim.DefaultConfig(), fixedScheme(100e9), DefaultChainOpts(2))
	if len(c.Switches) != 3 || len(c.Senders) != 2 {
		t.Fatal("wrong chain shape")
	}
	f0 := c.AddFlow(1, 0, 100_000, 0)
	f1 := c.AddFlow(2, 1, 100_000, 0)
	c.Net.RunUntil(5 * sim.Millisecond)
	if !f0.Done() || !f1.Done() {
		t.Fatal("dumbbell flows did not complete")
	}
	if f0.IdealFCT <= 0 {
		t.Fatal("IdealFCT not filled")
	}
	if c.Net.Drops.N != 0 {
		t.Fatalf("drops: %d", c.Net.Drops.N)
	}
}

func TestChainMidAndLastAttach(t *testing.T) {
	// Fig 11 variants: sender 1 attached at middle and last switch.
	for _, attach := range [][]int{{0, 1}, {0, 2}} {
		opts := DefaultChainOpts(2)
		opts.SenderAttach = attach
		c := MustChain(netsim.DefaultConfig(), fixedScheme(100e9), opts)
		f0 := c.AddFlow(1, 0, 50_000, 0)
		f1 := c.AddFlow(2, 1, 50_000, 0)
		c.Net.RunUntil(5 * sim.Millisecond)
		if !f0.Done() || !f1.Done() {
			t.Fatalf("attach=%v: flows incomplete", attach)
		}
		// Path lengths shrink with the attach point.
		if got := c.PathLinks(1); got != 3+1-attach[1] {
			t.Fatalf("attach=%v: PathLinks(1) = %d", attach, got)
		}
	}
}

func TestChainIdealFCTMatchesUnloadedRun(t *testing.T) {
	cfg := netsim.DefaultConfig()
	c := MustChain(cfg, fixedScheme(100e9), DefaultChainOpts(1))
	size := int64(10 * cfg.PayloadBytes())
	f := c.AddFlow(1, 0, size, 0)
	c.Net.RunUntil(5 * sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	got := f.FinishedAt - f.Start
	want := c.IdealFCT(0, size)
	// The analytic model must match an unloaded line-rate run to within an
	// MTU's serialization per hop.
	tol := 4 * sim.TxTime(cfg.MTUBytes, 100e9)
	if got < want-tol || got > want+tol {
		t.Fatalf("unloaded FCT %v vs ideal %v (tol %v)", got, want, tol)
	}
}

func TestChainBaseRTTSetAndPlausible(t *testing.T) {
	c := MustChain(netsim.DefaultConfig(), fixedScheme(100e9), DefaultChainOpts(2))
	rtt := c.Net.Cfg.BaseRTT
	// 4 links, 1.5us each way: >= 12us, and below 20us with serialization.
	if rtt < 12*sim.Microsecond || rtt > 20*sim.Microsecond {
		t.Fatalf("BaseRTT = %v", rtt)
	}
}

func TestFatTreeShape(t *testing.T) {
	ft := MustFatTree(netsim.DefaultConfig(), fixedScheme(100e9), FatTreeOpts{K: 4, RateBps: 100e9, Delay: sim.Microsecond})
	if len(ft.Hosts) != 16 || len(ft.Edge) != 8 || len(ft.Agg) != 8 || len(ft.Core) != 4 {
		t.Fatalf("k=4 shape: hosts=%d edge=%d agg=%d core=%d",
			len(ft.Hosts), len(ft.Edge), len(ft.Agg), len(ft.Core))
	}
	ft8 := MustFatTree(netsim.DefaultConfig(), fixedScheme(100e9), DefaultFatTreeOpts())
	if len(ft8.Hosts) != 128 || len(ft8.Core) != 16 || len(ft8.Edge) != 32 {
		t.Fatalf("k=8 shape: hosts=%d core=%d edge=%d", len(ft8.Hosts), len(ft8.Core), len(ft8.Edge))
	}
}

func TestFatTreeValidation(t *testing.T) {
	for _, k := range []int{0, 3, 5} {
		if _, err := BuildFatTree(netsim.DefaultConfig(), fixedScheme(100e9), FatTreeOpts{K: k, RateBps: 100e9, Delay: sim.Microsecond}); err == nil {
			t.Errorf("k=%d accepted", k)
		}
	}
}

func TestFatTreePathLinks(t *testing.T) {
	ft := MustFatTree(netsim.DefaultConfig(), fixedScheme(100e9), FatTreeOpts{K: 4, RateBps: 100e9, Delay: sim.Microsecond})
	// k=4: hosts 0,1 share an edge; 0,2 share a pod; 0,4 cross pods.
	if got := ft.PathLinks(0, 1); got != 2 {
		t.Fatalf("same-edge links = %d", got)
	}
	if got := ft.PathLinks(0, 2); got != 4 {
		t.Fatalf("same-pod links = %d", got)
	}
	if got := ft.PathLinks(0, 4); got != 6 {
		t.Fatalf("cross-pod links = %d", got)
	}
}

func TestFatTreeAllPairsReachable(t *testing.T) {
	// k=4, a flow between every ordered pair of a representative subset
	// covering same-edge, same-pod, and cross-pod paths.
	ft := MustFatTree(netsim.DefaultConfig(), fixedScheme(100e9), FatTreeOpts{K: 4, RateBps: 100e9, Delay: sim.Microsecond})
	hosts := []int{0, 1, 2, 5, 8, 15}
	id := uint64(1)
	var flows []*netsim.Flow
	for _, s := range hosts {
		for _, d := range hosts {
			if s == d {
				continue
			}
			flows = append(flows, ft.AddFlow(id, s, d, 20_000, 0))
			id++
		}
	}
	ft.Net.RunUntil(20 * sim.Millisecond)
	for _, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d (%d->%d) incomplete", f.ID, f.SrcHost.ID(), f.DstHost.ID())
		}
	}
	if ft.Net.Drops.N != 0 {
		t.Fatalf("drops: %d", ft.Net.Drops.N)
	}
}

// Property: random pairs complete on a k=4 fat-tree (reachability under
// ECMP hashing for arbitrary flow IDs, which vary the hash).
func TestQuickFatTreeRandomPairs(t *testing.T) {
	f := func(seed int64) bool {
		ft := MustFatTree(netsim.DefaultConfig(), fixedScheme(100e9), FatTreeOpts{K: 4, RateBps: 100e9, Delay: sim.Microsecond})
		rng := sim.NewRNG(seed)
		var flows []*netsim.Flow
		for i := 0; i < 6; i++ {
			s := rng.Intn(16)
			d := rng.Intn(15)
			if d >= s {
				d++
			}
			flows = append(flows, ft.AddFlow(uint64(i+1), s, d, 10_000, 0))
		}
		ft.Net.RunUntil(20 * sim.Millisecond)
		for _, fl := range flows {
			if !fl.Done() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestFatTreeECMPSpreadsLoad(t *testing.T) {
	// Many cross-pod flows should use more than one core switch.
	ft := MustFatTree(netsim.DefaultConfig(), fixedScheme(100e9), FatTreeOpts{K: 4, RateBps: 100e9, Delay: sim.Microsecond})
	for i := 0; i < 24; i++ {
		src := i % 4       // pod 0
		dst := 8 + (i % 8) // pod 2+
		ft.AddFlow(uint64(i+1), src, dst, 30_000, 0)
	}
	ft.Net.RunUntil(20 * sim.Millisecond)
	used := 0
	for _, core := range ft.Core {
		var tx uint64
		for p := 0; p < core.NumPorts(); p++ {
			tx += core.PortAt(p).TxDataBytes()
		}
		if tx > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("only %d core switches carried traffic", used)
	}
}

func TestIdealFCTMonotoneInSize(t *testing.T) {
	c := MustChain(netsim.DefaultConfig(), fixedScheme(100e9), DefaultChainOpts(1))
	prev := sim.Time(0)
	for _, size := range []int64{100, 1000, 10_000, 100_000, 1_000_000} {
		v := c.IdealFCT(0, size)
		if v <= prev {
			t.Fatalf("IdealFCT(%d) = %v not increasing", size, v)
		}
		prev = v
	}
}
