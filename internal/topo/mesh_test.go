package topo

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

func TestMeshValidation(t *testing.T) {
	cfg := netsim.DefaultConfig()
	sch := fixedScheme(100e9)
	bad := []MeshOpts{
		{Switches: 0, HostsPerSwitch: 1, Trees: 1, RateBps: 100e9, Delay: sim.Microsecond},
		{Switches: 2, HostsPerSwitch: 0, Trees: 1, RateBps: 100e9, Delay: sim.Microsecond},
		{Switches: 2, HostsPerSwitch: 1, Trees: 0, RateBps: 100e9, Delay: sim.Microsecond},
		// Disconnected graph.
		{Switches: 3, Links: [][2]int{{0, 1}}, HostsPerSwitch: 1, Trees: 1, RateBps: 100e9, Delay: sim.Microsecond},
		// Self-loop.
		{Switches: 2, Links: [][2]int{{0, 0}, {0, 1}}, HostsPerSwitch: 1, Trees: 1, RateBps: 100e9, Delay: sim.Microsecond},
	}
	for i, o := range bad {
		if _, err := BuildMesh(cfg, sch, o); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestMeshFig6AllPairs(t *testing.T) {
	m := MustMesh(netsim.DefaultConfig(), fixedScheme(100e9), Fig6Opts())
	if len(m.Hosts) != 6 || len(m.Switches) != 6 {
		t.Fatalf("shape: %d hosts %d switches", len(m.Hosts), len(m.Switches))
	}
	id := uint64(1)
	var flows []*netsim.Flow
	for s := range m.Hosts {
		for d := range m.Hosts {
			if s == d {
				continue
			}
			flows = append(flows, m.AddFlow(id, s, d, 20_000, 0))
			id++
		}
	}
	m.Net.RunUntil(20 * sim.Millisecond)
	for _, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d incomplete", f.ID)
		}
	}
	if m.Net.Drops.N != 0 {
		t.Fatalf("drops: %d", m.Net.Drops.N)
	}
}

// pathRecorder counts per-switch data and ACK transits per flow.
type pathRecorder struct {
	dataPath map[uint64]map[int32]bool
	ackPath  map[uint64]map[int32]bool
}

func newPathRecorder() *pathRecorder {
	return &pathRecorder{
		dataPath: map[uint64]map[int32]bool{},
		ackPath:  map[uint64]map[int32]bool{},
	}
}

func (p *pathRecorder) OnEnqueue(sw *netsim.Switch, pkt *packet.Packet, _ int) {
	rec := p.dataPath
	m := rec[pkt.FlowID]
	if m == nil {
		m = map[int32]bool{}
		rec[pkt.FlowID] = m
	}
	m[sw.ID()] = true
}

func (p *pathRecorder) OnDequeue(sw *netsim.Switch, pkt *packet.Packet, _ int) {
	if pkt.Type != packet.Ack && pkt.Type != packet.Nack {
		return
	}
	m := p.ackPath[pkt.FlowID]
	if m == nil {
		m = map[int32]bool{}
		p.ackPath[pkt.FlowID] = m
	}
	m[sw.ID()] = true
}

func TestMeshTreeRoutingIsSymmetric(t *testing.T) {
	// The Observation-2 guarantee: for every flow, the set of switches its
	// ACKs traverse equals the set its data traverses.
	rec := newPathRecorder()
	sch := fixedScheme(100e9)
	sch.NewSwitchHook = func(*netsim.Switch) netsim.SwitchHook { return rec }
	m := MustMesh(netsim.DefaultConfig(), sch, Fig6Opts())

	id := uint64(1)
	for s := range m.Hosts {
		for d := range m.Hosts {
			if s != d {
				m.AddFlow(id, s, d, 10_000, 0)
				id++
			}
		}
	}
	m.Net.RunUntil(20 * sim.Millisecond)

	for fid, dp := range rec.dataPath {
		ap := rec.ackPath[fid]
		if len(ap) != len(dp) {
			t.Fatalf("flow %d: data over %d switches, acks over %d", fid, len(dp), len(ap))
		}
		for sw := range dp {
			if !ap[sw] {
				t.Fatalf("flow %d: ack path missed switch %d", fid, sw)
			}
		}
	}
}

func TestMeshUsesMultipleTrees(t *testing.T) {
	// With three trees and many flows between the same host pair... flows
	// between different pairs must spread over more than one path: check
	// that at least two distinct link sets carry traffic between the
	// triangle switches.
	m := MustMesh(netsim.DefaultConfig(), fixedScheme(100e9), Fig6Opts())
	for i := uint64(0); i < 30; i++ {
		src := int(i) % 6
		dst := (int(i) + 3) % 6
		if src != dst {
			m.AddFlow(i+1, src, dst, 15_000, 0)
		}
	}
	m.Net.RunUntil(20 * sim.Millisecond)
	// Count switch-to-switch ports that carried data.
	used := 0
	for _, sw := range m.Switches {
		for p := 1; p < sw.NumPorts(); p++ { // port 0 is the host
			if sw.PortAt(p).Peer() == nil {
				continue
			}
			if _, isHost := sw.PortAt(p).Peer().Owner().(*netsim.Host); isHost {
				continue
			}
			if sw.PortAt(p).TxDataBytes() > 0 {
				used++
			}
		}
	}
	if used < 4 {
		t.Fatalf("only %d inter-switch ports used; trees not diversifying", used)
	}
}

func TestMeshWithFNCCStyleHook(t *testing.T) {
	// FNCC's INT-into-ACK must see consistent input ports on the mesh too:
	// run with the echo receiver + data-stamp hook and verify hop counts
	// match path lengths (no duplicated or missed stamps).
	sch := fixedScheme(100e9)
	stamp := 0
	sch.NewSwitchHook = func(*netsim.Switch) netsim.SwitchHook { return stampCounter{&stamp} }
	m := MustMesh(netsim.DefaultConfig(), sch, Fig6Opts())
	f := m.AddFlow(1, 0, 5, 30_000, 0)
	m.Net.RunUntil(10 * sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if stamp == 0 {
		t.Fatal("no ACK stamps on mesh")
	}
}

type stampCounter struct{ n *int }

func (stampCounter) OnEnqueue(*netsim.Switch, *packet.Packet, int) {}
func (s stampCounter) OnDequeue(sw *netsim.Switch, pkt *packet.Packet, port int) {
	if pkt.Type == packet.Ack {
		*s.n++
	}
}
