package topo

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// MeshOpts describes an arbitrary switch graph with hosts hanging off every
// switch — the setting of the paper's Observation 2, method 2 (Fig 6):
// build multiple spanning trees, each with a unique path between any two
// nodes, and pin each flow (and its ACKs) to one tree. Path symmetry is
// then structural rather than a property of the ECMP hash.
type MeshOpts struct {
	// Switches is the number of switches (graph vertices).
	Switches int
	// Links lists undirected switch-index pairs (graph edges). The graph
	// must be connected.
	Links [][2]int
	// HostsPerSwitch attaches this many hosts to every switch.
	HostsPerSwitch int
	// Trees is how many spanning trees to build (roots chosen round-robin
	// over the switches). Each flow hashes to one tree.
	Trees int
	// RateBps and Delay are uniform link parameters.
	RateBps int64
	Delay   sim.Time
}

// Mesh is a built mesh with tree-based symmetric routing.
type Mesh struct {
	Net      *netsim.Network
	Opts     MeshOpts
	Hosts    []*netsim.Host
	Switches []*netsim.Switch
	// TreeRoots records the root switch of each spanning tree.
	TreeRoots []int
}

// Fig6Opts returns a small multi-path mesh in the spirit of the paper's
// Fig 6 example: six switches, cyclic links, three spanning trees.
func Fig6Opts() MeshOpts {
	return MeshOpts{
		Switches: 6,
		Links: [][2]int{
			{0, 1}, {0, 2}, {1, 2}, // A-B-C triangle
			{1, 3}, {1, 4}, {2, 4}, {2, 5}, {4, 5}, // leaves D,E,F multi-homed
		},
		HostsPerSwitch: 1,
		Trees:          3,
		RateBps:        100e9,
		Delay:          1500 * sim.Nanosecond,
	}
}

// BuildMesh constructs the topology and installs, for every destination
// host, one next-hop entry per spanning tree at every switch. The ECMP
// selector (hash % Trees) then picks the same tree at every switch of both
// directions, so a flow's data and ACK paths coincide by construction.
func BuildMesh(cfg netsim.Config, scheme netsim.Scheme, opts MeshOpts) (*Mesh, error) {
	if opts.Switches < 1 {
		return nil, fmt.Errorf("topo: mesh needs switches")
	}
	if opts.HostsPerSwitch < 1 {
		return nil, fmt.Errorf("topo: mesh needs hosts")
	}
	if opts.Trees < 1 {
		return nil, fmt.Errorf("topo: mesh needs >= 1 tree")
	}
	adj := make([][]int, opts.Switches) // neighbor switch -> via link index
	type edge struct{ a, b int }
	for li, l := range opts.Links {
		a, b := l[0], l[1]
		if a < 0 || a >= opts.Switches || b < 0 || b >= opts.Switches || a == b {
			return nil, fmt.Errorf("topo: bad link %d: %v", li, l)
		}
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	if !connected(adj) {
		return nil, fmt.Errorf("topo: mesh graph not connected")
	}

	// Base RTT: worst case is the graph diameter along the worst tree; use
	// a generous bound of Switches+1 links each way.
	links := opts.Switches + 1
	mtuTx := sim.TxTime(cfg.MTUBytes, opts.RateBps)
	cfg.BaseRTT = sim.Time(links) * (2*opts.Delay + mtuTx)

	n, err := netsim.New(cfg, scheme)
	if err != nil {
		return nil, err
	}
	m := &Mesh{Net: n, Opts: opts}

	// Ports: 0..HostsPerSwitch-1 for hosts, then one per incident link in
	// Links order.
	portOf := make([]map[int]int, opts.Switches) // switch -> neighbor -> port
	nextPort := make([]int, opts.Switches)
	for i := 0; i < opts.Switches; i++ {
		portOf[i] = make(map[int]int)
		nextPort[i] = opts.HostsPerSwitch
	}
	degree := make([]int, opts.Switches)
	for _, l := range opts.Links {
		degree[l[0]]++
		degree[l[1]]++
	}
	for i := 0; i < opts.Switches; i++ {
		m.Switches = append(m.Switches, n.NewSwitch(opts.HostsPerSwitch+degree[i]))
	}
	for i := 0; i < opts.Switches; i++ {
		for h := 0; h < opts.HostsPerSwitch; h++ {
			host := n.NewHost()
			m.Hosts = append(m.Hosts, host)
			netsim.Connect(host.Port(), m.Switches[i].PortAt(h), opts.RateBps, opts.Delay)
		}
	}
	for _, l := range opts.Links {
		a, b := l[0], l[1]
		pa, pb := nextPort[a], nextPort[b]
		nextPort[a]++
		nextPort[b]++
		portOf[a][b] = pa
		portOf[b][a] = pb
		netsim.Connect(m.Switches[a].PortAt(pa), m.Switches[b].PortAt(pb), opts.RateBps, opts.Delay)
	}

	// Spanning trees: BFS from round-robin roots. parent[t][s] is s's
	// parent switch in tree t (-1 at the root).
	parents := make([][]int, opts.Trees)
	for t := 0; t < opts.Trees; t++ {
		root := (t * maxInt(1, opts.Switches/opts.Trees)) % opts.Switches
		m.TreeRoots = append(m.TreeRoots, root)
		parents[t] = bfsTree(adj, root, t)
	}

	// Tree next-hop: within tree t, the next hop from s toward switch d is
	// the neighbor of s on the unique tree path. Derive it by rooting the
	// tree at d: next hop = parent of s in a BFS of the tree from d.
	treeAdj := make([][][]int, opts.Trees)
	for t := range parents {
		ta := make([][]int, opts.Switches)
		for s, p := range parents[t] {
			if p >= 0 {
				ta[s] = append(ta[s], p)
				ta[p] = append(ta[p], s)
			}
		}
		treeAdj[t] = ta
	}

	hostSwitch := func(hi int) int { return hi / opts.HostsPerSwitch }
	hostPort := func(hi int) int { return hi % opts.HostsPerSwitch }

	for hi, host := range m.Hosts {
		d := hostSwitch(hi)
		for s := 0; s < opts.Switches; s++ {
			ports := make([]int, 0, opts.Trees)
			for t := 0; t < opts.Trees; t++ {
				if s == d {
					ports = append(ports, hostPort(hi))
					continue
				}
				next := bfsParent(treeAdj[t], d, s)
				if next < 0 {
					return nil, fmt.Errorf("topo: tree %d does not span switch %d", t, s)
				}
				ports = append(ports, portOf[s][next])
			}
			m.Switches[s].SetRoute(host.ID(), ports...)
		}
	}
	return m, nil
}

// MustMesh is BuildMesh that panics on error.
func MustMesh(cfg netsim.Config, scheme netsim.Scheme, opts MeshOpts) *Mesh {
	m, err := BuildMesh(cfg, scheme, opts)
	if err != nil {
		panic(err)
	}
	return m
}

// AddFlow wires a flow between host indexes (IdealFCT left zero: mesh path
// lengths vary per tree, so slowdown analysis uses chain/fat-tree).
func (m *Mesh) AddFlow(id uint64, src, dst int, size int64, start sim.Time) *netsim.Flow {
	return m.Net.AddFlow(id, m.Hosts[src], m.Hosts[dst], size, start)
}

// connected checks graph connectivity over switch adjacency.
func connected(adj [][]int) bool {
	if len(adj) == 0 {
		return false
	}
	seen := make([]bool, len(adj))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range adj[s] {
			if !seen[nb] {
				seen[nb] = true
				count++
				stack = append(stack, nb)
			}
		}
	}
	return count == len(adj)
}

// bfsTree returns parent pointers of a BFS spanning tree rooted at root.
// The salt rotates neighbor visit order so different trees take different
// shapes even from the same root.
func bfsTree(adj [][]int, root, salt int) []int {
	parent := make([]int, len(adj))
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[root] = -1
	queue := []int{root}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		nbs := adj[s]
		for k := range nbs {
			nb := nbs[(k+salt)%len(nbs)]
			if parent[nb] == -2 {
				parent[nb] = s
				queue = append(queue, nb)
			}
		}
	}
	return parent
}

// bfsParent returns the parent of target in a BFS of tree adjacency ta
// rooted at root — i.e. target's next hop toward root within the tree.
func bfsParent(ta [][]int, root, target int) int {
	parent := make([]int, len(ta))
	for i := range parent {
		parent[i] = -2
	}
	parent[root] = -1
	queue := []int{root}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, nb := range ta[s] {
			if parent[nb] == -2 {
				parent[nb] = s
				queue = append(queue, nb)
			}
		}
	}
	if parent[target] == -2 {
		return -1
	}
	return parent[target]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
