package core

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topo"
)

const gbps100 = int64(100e9)

func chain2(t *testing.T, sch netsim.Scheme) *topo.Chain {
	t.Helper()
	return topo.MustChain(netsim.DefaultConfig(), sch, topo.DefaultChainOpts(2))
}

// sniff wraps the FNCC sender and records the ACK telemetry it sees.
type sniff struct {
	*Sender
	lastHops int
	lastN    uint16
	ordering packet.HopOrdering
	firstHop packet.IntHop
}

func (s *sniff) OnAck(f *netsim.Flow, ack *packet.Packet, now sim.Time) {
	s.lastHops = ack.NHop()
	s.lastN = ack.N
	s.ordering = ack.Ordering
	if ack.NHop() > 0 {
		s.firstHop = ack.Hops[0]
	}
	s.Sender.OnAck(f, ack, now)
}

func TestFNCCAckCarriesReturnPathINT(t *testing.T) {
	cfg := DefaultConfig()
	sch := NewScheme(cfg)
	var probe *sniff
	inner := sch.NewSenderCC
	sch.NewSenderCC = func(f *netsim.Flow) netsim.SenderCC {
		s := &sniff{Sender: inner(f).(*Sender)}
		if probe == nil {
			probe = s
		}
		return s
	}
	c := chain2(t, sch)
	f := c.AddFlow(1, 0, 200_000, 0)
	c.Net.RunUntil(sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if probe.lastHops != 3 {
		t.Fatalf("ACK hops = %d, want 3 (one per switch)", probe.lastHops)
	}
	if probe.ordering != packet.ReceiverToSender {
		t.Fatal("FNCC ACK must be receiver->sender ordered")
	}
	if probe.lastN != 1 {
		t.Fatalf("N = %d, want 1 (single inbound flow)", probe.lastN)
	}
	// Hops[0] is stamped by the switch nearest the receiver: the last chain
	// switch, whose egress toward the receiver is port 1.
	lastSw := c.Switches[len(c.Switches)-1]
	if probe.firstHop.SwitchID != lastSw.ID() || probe.firstHop.PortID != 1 {
		t.Fatalf("Hops[0] = switch %d port %d, want switch %d port 1",
			probe.firstHop.SwitchID, probe.firstHop.PortID, lastSw.ID())
	}
}

func TestFNCCDataCarriesNoINT(t *testing.T) {
	// FNCC's CP only touches ACKs: a hook counting data INT must stay zero.
	cfg := DefaultConfig()
	sch := NewScheme(cfg)
	c := chain2(t, sch)
	f := c.AddFlow(1, 0, 100_000, 0)
	c.Net.RunUntil(sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	// Inspect the hooks: insertions happened (on ACKs); if data carried
	// INT the packet sizes (and HPCC echo) would show. The receiver-side
	// check: FNCC's receiver never copies hops from data.
	for _, sw := range c.Switches {
		h := sw.Hook().(*SwitchHook)
		if h.Inserted == 0 {
			t.Fatalf("switch %d inserted no INT into ACKs", sw.ID())
		}
	}
}

func TestReceiverWritesN(t *testing.T) {
	cfg := DefaultConfig()
	sch := NewScheme(cfg)
	c := topo.MustChain(netsim.DefaultConfig(), sch, topo.DefaultChainOpts(4))
	for i := 0; i < 4; i++ {
		c.AddFlow(uint64(i+1), i, 2_000_000, 0)
	}
	var maxN uint16
	inner := sch.NewSenderCC
	_ = inner
	// Sample N via the sender state of flow 0 after some time: ULink is
	// internal, so instead intercept at the receiver by reading
	// ActiveInbound directly while running.
	c.Net.RunUntil(100 * sim.Microsecond)
	if got := c.Receiver.ActiveInbound(); got != 4 {
		t.Fatalf("ActiveInbound = %d, want 4", got)
	}
	ack := &packet.Packet{Type: packet.Ack}
	Receiver{}.FillAck(ack, &packet.Packet{}, c.Receiver)
	if ack.N != 4 {
		t.Fatalf("FillAck N = %d, want 4", ack.N)
	}
	_ = maxN
}

func TestReceiverNFloorsAtOne(t *testing.T) {
	cfg := netsim.DefaultConfig()
	n := netsim.MustNew(cfg, NewScheme(DefaultConfig()))
	h := n.NewHost()
	ack := &packet.Packet{Type: packet.Ack}
	Receiver{}.FillAck(ack, &packet.Packet{}, h)
	if ack.N != 1 {
		t.Fatalf("N = %d, want floor of 1", ack.N)
	}
}

func TestLHCSTriggerConditions(t *testing.T) {
	cfg := DefaultConfig()
	sch := NewScheme(cfg)
	c := chain2(t, sch)
	f := c.AddFlow(1, 0, 1<<30, sim.Second) // never started; we drive manually
	s := f.CC().(*Sender)
	h := s.HPCC

	mkAckLHCS := func(n uint16, lastB int64) *packet.Packet {
		a := &packet.Packet{Type: packet.Ack, N: n, Ordering: packet.ReceiverToSender}
		// Hops[0] = last request-path hop under FNCC ordering.
		a.AddHop(packet.IntHop{SwitchID: 5, B: lastB})
		a.AddHop(packet.IntHop{SwitchID: 4, B: gbps100})
		a.AddHop(packet.IntHop{SwitchID: 3, B: gbps100})
		return a
	}

	// Case 1: congestion at last hop above alpha -> Wc jumps to fair share.
	h.ULink = []float64{0.3, 0.5, 1.5}
	h.LastHopIndex = 2
	s.updateWc(h, f, mkAckLHCS(4, gbps100))
	wantFair := float64(gbps100) / 8 * h.T.Seconds() * cfg.Beta / 4
	if s.LHCSTriggers != 1 {
		t.Fatal("LHCS did not trigger")
	}
	if diff := h.Wc - wantFair; diff > 1 || diff < -1 {
		t.Fatalf("Wc = %v, want %v", h.Wc, wantFair)
	}

	// Case 2: most congested hop is NOT the last: no trigger.
	h.ULink = []float64{2.0, 0.5, 1.5}
	before := h.Wc
	s.updateWc(h, f, mkAckLHCS(4, gbps100))
	if s.LHCSTriggers != 1 || h.Wc != before {
		t.Fatal("LHCS fired for non-last-hop congestion")
	}

	// Case 3: last hop congested but below alpha: no trigger.
	h.ULink = []float64{0.2, 0.3, 1.01}
	s.updateWc(h, f, mkAckLHCS(4, gbps100))
	if s.LHCSTriggers != 1 {
		t.Fatal("LHCS fired below alpha")
	}

	// Case 4: N == 0 (no concurrency info): no trigger.
	h.ULink = []float64{0.2, 0.3, 2.0}
	s.updateWc(h, f, mkAckLHCS(0, gbps100))
	if s.LHCSTriggers != 1 {
		t.Fatal("LHCS fired without N")
	}
}

func TestLHCSDisabledAblation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableLHCS = false
	sch := NewScheme(cfg)
	c := chain2(t, sch)
	f := c.AddFlow(1, 0, 1<<30, sim.Second)
	s := f.CC().(*Sender)
	if s.HPCC.PreWindow != nil {
		t.Fatal("PreWindow installed despite EnableLHCS=false")
	}
}

// firstSlowdownAfter runs the Fig 9 micro-benchmark with the given scheme
// and returns the time flow0's pacing rate first drops below 85% of line
// after flow1 joins at 300us. (A lone HPCC/FNCC flow cruises near eta=95%
// of line, so the threshold must sit clearly below that.)
func firstSlowdownAfter(t *testing.T, sch netsim.Scheme) sim.Time {
	t.Helper()
	c := chain2(t, sch)
	f0 := c.AddFlow(1, 0, 1<<30, 0)
	c.AddFlow(2, 1, 1<<30, 300*sim.Microsecond)

	var at sim.Time = -1
	stop := c.Net.Eng.Ticker(200*sim.Nanosecond, func() {
		now := c.Net.Eng.Now()
		if at < 0 && now >= 300*sim.Microsecond &&
			float64(f0.CC().RateBps()) < 0.85*float64(gbps100) {
			at = now
		}
	})
	defer stop()
	c.Net.RunUntil(600 * sim.Microsecond)
	if at < 0 {
		t.Fatalf("%s never slowed down", sch.Name)
	}
	return at
}

func TestFNCCNotifiesFasterThanHPCC(t *testing.T) {
	// The paper's headline mechanism (Fig 9b): FNCC is the first to slow
	// down after congestion onset because return-path ACKs deliver INT in
	// sub-RTT time, while HPCC spends nearly a full RTT.
	fncc := firstSlowdownAfter(t, NewScheme(DefaultConfig()))
	hpcc := firstSlowdownAfter(t, cc.NewHPCCScheme(cc.DefaultHPCCConfig()))
	if fncc >= hpcc {
		t.Fatalf("FNCC slowdown at %v not before HPCC at %v", fncc, hpcc)
	}
	// The gap should be material: a few microseconds on a ~13us RTT.
	if hpcc-fncc < sim.Microsecond {
		t.Fatalf("notification advantage only %v", hpcc-fncc)
	}
}

func TestFNCCQueuePeakBelowHPCC(t *testing.T) {
	// Fig 9a: FNCC's earlier reaction caps the bottleneck queue lower.
	peak := func(sch netsim.Scheme) int64 {
		c := chain2(t, sch)
		c.AddFlow(1, 0, 1<<30, 0)
		c.AddFlow(2, 1, 1<<30, 300*sim.Microsecond)
		var maxQ int64
		stop := c.Net.Eng.Ticker(sim.Microsecond, func() {
			if q := c.BottleneckPort().QueueBytes(); q > maxQ {
				maxQ = q
			}
		})
		defer stop()
		c.Net.RunUntil(800 * sim.Microsecond)
		return maxQ
	}
	qf := peak(NewScheme(DefaultConfig()))
	qh := peak(cc.NewHPCCScheme(cc.DefaultHPCCConfig()))
	if qf == 0 || qh == 0 {
		t.Fatalf("no queue built (fncc=%d hpcc=%d)", qf, qh)
	}
	if qf >= qh {
		t.Fatalf("FNCC peak %dKB not below HPCC peak %dKB", qf/1000, qh/1000)
	}
}

func TestLHCSJumpsToFairRate(t *testing.T) {
	// Fig 13d: last-hop congestion with LHCS pins the flows near
	// fair*beta = B/N*0.9 quickly.
	opts := topo.DefaultChainOpts(2)
	opts.SenderAttach = []int{0, 2} // flow1 joins at the last switch
	c := topo.MustChain(netsim.DefaultConfig(), NewScheme(DefaultConfig()), opts)
	f0 := c.AddFlow(1, 0, 1<<30, 0)
	f1 := c.AddFlow(2, 1, 1<<30, 300*sim.Microsecond)
	c.Net.RunUntil(420 * sim.Microsecond)

	s0 := f0.CC().(*Sender)
	if s0.LHCSTriggers == 0 {
		t.Fatal("LHCS never triggered under last-hop congestion")
	}
	// Both flows should sit near 45G (fair 50G * beta 0.9) shortly after.
	r0, r1 := float64(f0.CC().RateBps()), float64(f1.CC().RateBps())
	for i, r := range []float64{r0, r1} {
		if r < 30e9 || r > 65e9 {
			t.Fatalf("flow%d rate %.1fG not near fair*beta (45G)", i, r/1e9)
		}
	}
	_ = f1
}

func TestFNCCWithPeriodicTable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TableUpdatePeriod = 2 * sim.Microsecond
	c := chain2(t, NewScheme(cfg))
	f0 := c.AddFlow(1, 0, 2_000_000, 0)
	f1 := c.AddFlow(2, 1, 2_000_000, 0)
	c.Net.RunUntil(5 * sim.Millisecond)
	if !f0.Done() || !f1.Done() {
		t.Fatal("flows incomplete with periodic All_INT_Table")
	}
}

func TestFNCCSurvivesAsymmetricECMP(t *testing.T) {
	// Ablation A1: with direction-sensitive hashing FNCC's ACKs may sample
	// the wrong path, but the mechanism must remain safe (flows complete).
	cfg := netsim.DefaultConfig()
	cfg.SymmetricECMP = false
	c := topo.MustChain(cfg, NewScheme(DefaultConfig()), topo.DefaultChainOpts(2))
	f0 := c.AddFlow(1, 0, 1_000_000, 0)
	f1 := c.AddFlow(2, 1, 1_000_000, 0)
	c.Net.RunUntil(5 * sim.Millisecond)
	if !f0.Done() || !f1.Done() {
		t.Fatal("flows incomplete under asymmetric hashing")
	}
}

func TestFNCCPauseFramesAtMostHPCC(t *testing.T) {
	// Fig 3's shape at a stress level that actually provokes PFC: tighten
	// the pause threshold so the slower scheme hits it.
	pauses := func(sch netsim.Scheme) int64 {
		cfg := netsim.DefaultConfig()
		cfg.PFCPauseBytes = 120 << 10
		cfg.PFCResumeBytes = 100 << 10
		c := topo.MustChain(cfg, sch, topo.DefaultChainOpts(2))
		c.AddFlow(1, 0, 1<<30, 0)
		c.AddFlow(2, 1, 1<<30, 300*sim.Microsecond)
		c.Net.RunUntil(900 * sim.Microsecond)
		return c.Net.PauseFrames.N
	}
	pf := pauses(NewScheme(DefaultConfig()))
	ph := pauses(cc.NewHPCCScheme(cc.DefaultHPCCConfig()))
	if pf > ph {
		t.Fatalf("FNCC pauses (%d) exceed HPCC (%d)", pf, ph)
	}
}

func TestSenderNameAndDefaults(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Alpha <= 1 || cfg.Beta >= 1 || !cfg.EnableLHCS {
		t.Fatalf("defaults off: %+v", cfg)
	}
	c := chain2(t, NewScheme(cfg))
	f := c.AddFlow(1, 0, 1000, sim.Second)
	if f.CC().Name() != "FNCC" {
		t.Fatal("name")
	}
}
