package core

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topo"
)

// FNCC on the Fig 6 multi-path mesh with spanning-tree routing: the whole
// Observation-2 story — ACKs must traverse exactly the data path's switches
// (in reverse), so the INT they accumulate describes the right queues.

func TestFNCCOnMeshCompletes(t *testing.T) {
	m := topo.MustMesh(netsim.DefaultConfig(), NewScheme(DefaultConfig()), topo.Fig6Opts())
	var flows []*netsim.Flow
	id := uint64(1)
	for s := range m.Hosts {
		for d := range m.Hosts {
			if s != d {
				flows = append(flows, m.AddFlow(id, s, d, 50_000, 0))
				id++
			}
		}
	}
	m.Net.RunUntil(20 * sim.Millisecond)
	for _, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d incomplete on mesh", f.ID)
		}
	}
	if m.Net.Drops.N != 0 {
		t.Fatalf("drops: %d", m.Net.Drops.N)
	}
}

func TestFNCCMeshAckIntConsistent(t *testing.T) {
	// Sniff FNCC ACK telemetry on the mesh: every ACK with INT must carry
	// a constant hop count per flow (path pinned to one tree) and a stable
	// pathID — the reroute-detection field of Fig 7.
	cfg := DefaultConfig()
	sch := NewScheme(cfg)
	flows := map[uint64]*ackSeen{}
	inner := sch.NewSenderCC
	sch.NewSenderCC = func(f *netsim.Flow) netsim.SenderCC {
		return &ackSniffer{Sender: inner(f).(*Sender), flows: flows}
	}
	m := topo.MustMesh(netsim.DefaultConfig(), sch, topo.Fig6Opts())
	id := uint64(1)
	for s := range m.Hosts {
		for d := range m.Hosts {
			if s != d {
				m.AddFlow(id, s, d, 80_000, 0)
				id++
			}
		}
	}
	m.Net.RunUntil(20 * sim.Millisecond)

	checked := 0
	for fid, s := range flows {
		if s.count < 2 {
			continue
		}
		checked++
		if s.mixed {
			t.Fatalf("flow %d: ACKs saw varying hop counts / pathIDs (path not pinned)", fid)
		}
		if s.hops < 1 || s.hops > 6 {
			t.Fatalf("flow %d: implausible hop count %d", fid, s.hops)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d flows checked", checked)
	}
}

// ackSeen aggregates per-flow ACK telemetry observations.
type ackSeen struct {
	hops   int
	pathID uint16
	count  int
	mixed  bool
}

type ackSniffer struct {
	*Sender
	flows map[uint64]*ackSeen
}

func (a *ackSniffer) OnAck(f *netsim.Flow, ack *packet.Packet, now sim.Time) {
	if ack.NHop() > 0 {
		s := a.flows[f.ID]
		if s == nil {
			s = &ackSeen{hops: ack.NHop(), pathID: ack.PathID()}
			a.flows[f.ID] = s
		}
		s.count++
		if s.hops != ack.NHop() || s.pathID != ack.PathID() {
			s.mixed = true
		}
	}
	a.Sender.OnAck(f, ack, now)
}

func TestPeriodicTableStaleness(t *testing.T) {
	// With a large All_INT_Table refresh period the INT is stale but the
	// system must remain stable and still outperform nothing-at-all:
	// flows complete and the queue stays bounded by the PFC threshold.
	cfg := DefaultConfig()
	cfg.TableUpdatePeriod = 20 * sim.Microsecond // ~1.5 RTTs stale
	c := topo.MustChain(netsim.DefaultConfig(), NewScheme(cfg), topo.DefaultChainOpts(2))
	c.AddFlow(1, 0, 1<<30, 0)
	c.AddFlow(2, 1, 1<<30, 300*sim.Microsecond)
	var maxQ int64
	stop := c.Net.Eng.Ticker(sim.Microsecond, func() {
		if q := c.BottleneckPort().QueueBytes(); q > maxQ {
			maxQ = q
		}
	})
	defer stop()
	c.Net.RunUntil(1200 * sim.Microsecond)
	if maxQ == 0 {
		t.Fatal("no queue — broken setup")
	}
	if maxQ > 500<<10 {
		t.Fatalf("stale-table queue hit %dKB (PFC threshold)", maxQ>>10)
	}
	if c.Net.Drops.N != 0 {
		t.Fatal("drops")
	}
}

func TestStaleTableWorseThanLive(t *testing.T) {
	// Freshness matters: the live-read table (period 0) should hold the
	// queue no higher than a very stale one.
	peak := func(period sim.Time) int64 {
		cfg := DefaultConfig()
		cfg.TableUpdatePeriod = period
		c := topo.MustChain(netsim.DefaultConfig(), NewScheme(cfg), topo.DefaultChainOpts(2))
		c.AddFlow(1, 0, 1<<30, 0)
		c.AddFlow(2, 1, 1<<30, 300*sim.Microsecond)
		var maxQ int64
		stop := c.Net.Eng.Ticker(sim.Microsecond, func() {
			if q := c.BottleneckPort().QueueBytes(); q > maxQ {
				maxQ = q
			}
		})
		defer stop()
		c.Net.RunUntil(900 * sim.Microsecond)
		return maxQ
	}
	live := peak(0)
	stale := peak(50 * sim.Microsecond)
	if live > stale+20_000 {
		t.Fatalf("live table (%dKB) much worse than 50us-stale (%dKB)?", live>>10, stale>>10)
	}
}

func TestFNCCMultiClassFabric(t *testing.T) {
	// FNCC on a 2-SL fabric: both classes' flows complete, per-class PFC
	// does not wedge the INT-in-ACK path (ACKs ride the flow's class).
	ncfg := netsim.DefaultConfig()
	ncfg.PriorityLevels = 2
	c := topo.MustChain(ncfg, NewScheme(DefaultConfig()), topo.DefaultChainOpts(2))
	f0 := c.AddFlow(1, 0, 1_000_000, 0)
	f0.Class = 0
	f1 := c.AddFlow(2, 1, 1_000_000, 0)
	f1.Class = 1
	c.Net.RunUntil(10 * sim.Millisecond)
	if !f0.Done() || !f1.Done() {
		t.Fatal("multi-class FNCC flows incomplete")
	}
}
