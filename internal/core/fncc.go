// Package core implements FNCC — Fast Notification Congestion Control —
// the paper's contribution. FNCC extends HPCC with:
//
//  1. Fast notification (§3.1, Observations 1-3): switches do not stamp INT
//     on data packets; instead each switch keeps an All_INT_Table of
//     per-egress-port telemetry and inserts the *request-path* port's entry
//     into transiting ACKs (Algorithm 1). Because an ACK's input port is
//     the data's output port, indexing the table by the ACK's input port
//     yields exactly the queue the flow's data is building. The sender thus
//     observes congestion in sub-RTT time.
//
//  2. Last-Hop Congestion Speedup (LHCS, §3.2.2, Observation 4): the
//     receiver writes the number of concurrent inbound flows N (live RDMA
//     QPs) into every ACK; when the sender's hop detection finds the most
//     congested link is the last hop with U > α, it sets the reference
//     window directly to the fair share Wc = B·RTT·β/N (Algorithm 2).
//
// The Reaction Point reuses internal/cc's HPCC implementation of
// Algorithm 3 wholesale, installing LHCS as the PreWindow hook —
// mirroring how the paper layers FNCC on HPCC.
package core

import (
	"repro/internal/cc"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Config parameterizes FNCC.
type Config struct {
	// HPCC carries the inherited window-algorithm constants (η, maxStage,
	// W_AI).
	HPCC cc.HPCCConfig
	// Alpha is the LHCS trigger threshold on U_max, "slightly larger than
	// one" (paper: 1.05).
	Alpha float64
	// Beta scales the fair window to drain the standing queue, "slightly
	// smaller than one" (paper: 0.9).
	Beta float64
	// EnableLHCS switches the last-hop speedup on (off = the paper's
	// "FNCC without LHCS" ablation of Fig 13c-d).
	EnableLHCS bool
	// TableUpdatePeriod is the All_INT_Table refresh interval. Zero means
	// the egress engine reads live port state — the limit the paper's
	// "updated periodically" approaches on a line-rate data plane.
	TableUpdatePeriod sim.Time
}

// DefaultConfig returns the paper's FNCC constants.
func DefaultConfig() Config {
	return Config{
		HPCC:              cc.DefaultHPCCConfig(),
		Alpha:             1.05,
		Beta:              0.9,
		EnableLHCS:        true,
		TableUpdatePeriod: 0,
	}
}

// Sender is FNCC's Reaction Point: HPCC's window machinery plus LHCS.
type Sender struct {
	*cc.HPCC
	cfg Config
	// LHCSTriggers counts Algorithm 2 firings (observability for tests and
	// the Fig 13d analysis).
	LHCSTriggers int64
}

// NewSender builds the per-flow RP state.
func NewSender(cfg Config, f *netsim.Flow) *Sender {
	s := &Sender{
		HPCC: cc.NewHPCC(cfg.HPCC, f),
		cfg:  cfg,
	}
	if cfg.EnableLHCS {
		s.HPCC.PreWindow = s.updateWc
	}
	return s
}

// Name implements netsim.SenderCC.
func (s *Sender) Name() string { return "FNCC" }

// LHCSCount reports how many times the last-hop speedup fired (harness
// observability).
func (s *Sender) LHCSCount() int64 { return s.LHCSTriggers }

// updateWc is Algorithm 2 (and Algorithm 3's UpdateWc): if the most
// congested hop is the last hop and exceeds α, jump the reference window to
// the fair share B·RTT·β/N.
func (s *Sender) updateWc(h *cc.HPCC, f *netsim.Flow, ack *packet.Packet) {
	if ack.N == 0 {
		return // no concurrency information on this ACK
	}
	// Hop_Detection (lines 3-8): index of the maximum per-link utilization.
	uMax, hop := 0.0, -1
	for j, u := range h.ULink {
		if u > uMax {
			uMax = u
			hop = j
		}
	}
	if hop < 0 || hop != h.LastHopIndex || uMax <= s.cfg.Alpha {
		return
	}
	last, ok := ack.LastHop()
	if !ok {
		return
	}
	// Line 12: Wc <- B×RTT×β / N, with B the last-hop bandwidth from INT.
	fair := float64(last.B) / 8 * h.T.Seconds() * s.cfg.Beta / float64(ack.N)
	h.SetWc(fair)
	s.LHCSTriggers++
}

// Receiver is FNCC's ACK Generation Point: it writes the live inbound QP
// count N into every ACK (§3.2.3) and leaves INT insertion to the switches
// on the return path.
type Receiver struct{}

// FillAck implements netsim.ReceiverCC.
func (Receiver) FillAck(ack, data *packet.Packet, h *netsim.Host) {
	ack.Ordering = packet.ReceiverToSender
	n := h.ActiveInbound()
	if n < 1 {
		n = 1 // the acked flow itself is still live from the RP's view
	}
	if n > 0xffff {
		n = 0xffff // 16-bit field (§3.2.3: supports 64k connections)
	}
	ack.N = uint16(n)
}

// WantCnp implements netsim.ReceiverCC.
func (Receiver) WantCnp(*packet.Packet, *netsim.Host, sim.Time) bool { return false }

// SwitchHook is FNCC's Congestion Point (Algorithm 1 / Fig 8): maintain the
// All_INT_Table and insert the request-path INT into ACKs at the egress
// engine. Data packets pass untouched — FNCC's data plane adds zero bytes
// to application traffic.
type SwitchHook struct {
	sw  *netsim.Switch
	cfg Config

	// table is the All_INT_Table: per-port {B, TS, txBytes, qLen}. Only
	// used when TableUpdatePeriod > 0; otherwise entries are read live.
	table []packet.IntHop
	// Inserted counts INT insertions into ACKs (observability).
	Inserted int64
}

// NewSwitchHook installs the CP state on one switch.
func NewSwitchHook(cfg Config, sw *netsim.Switch) *SwitchHook {
	h := &SwitchHook{sw: sw, cfg: cfg}
	if cfg.TableUpdatePeriod > 0 {
		h.table = make([]packet.IntHop, sw.NumPorts())
		h.refresh()
		sw.Engine().Ticker(cfg.TableUpdatePeriod, h.refresh)
	}
	return h
}

// refresh snapshots every port's INT into the table (the "Management
// module will update All_INT_Table periodically" path of §4.1).
func (h *SwitchHook) refresh() {
	for i := range h.table {
		if h.sw.PortAt(i).Peer() != nil {
			h.table[i] = h.sw.PortINT(i)
		}
	}
}

// lookup returns the INT for the given request-path egress port.
func (h *SwitchHook) lookup(port int) packet.IntHop {
	if h.table != nil {
		return h.table[port]
	}
	return h.sw.PortINT(port)
}

// OnEnqueue implements netsim.SwitchHook.
func (*SwitchHook) OnEnqueue(*netsim.Switch, *packet.Packet, int) {}

// OnDequeue implements netsim.SwitchHook: the egress engine of
// Algorithm 1 (lines 6-10). For an ACK, look up All_INT_Table with the
// ACK's recorded input port — by Observation 3 that port is the egress of
// the corresponding request-path data — and insert the record.
func (h *SwitchHook) OnDequeue(sw *netsim.Switch, pkt *packet.Packet, outPort int) {
	if pkt.Type != packet.Ack && pkt.Type != packet.Nack {
		return
	}
	hop := h.lookup(int(pkt.InputPort))
	pkt.AddHop(hop)
	h.Inserted++
}

// NewScheme assembles the complete FNCC mechanism.
func NewScheme(cfg Config) netsim.Scheme {
	return netsim.Scheme{
		Name: "FNCC",
		NewSenderCC: func(f *netsim.Flow) netsim.SenderCC {
			return NewSender(cfg, f)
		},
		Receiver: Receiver{},
		NewSwitchHook: func(sw *netsim.Switch) netsim.SwitchHook {
			return NewSwitchHook(cfg, sw)
		},
	}
}
