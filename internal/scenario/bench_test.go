package scenario

import "testing"

// benchFCTSpec is one small Fig 14-style point, identical under both
// backends so the packet/fluid ns/op ratio is the backend speedup on the
// same experiment (cmd/benchguard derives it into BENCH_3.json and CI
// fails if it drops below 50x).
func benchFCTSpec(backend string) Spec {
	return Spec{Kind: KindFCT, Scheme: "FNCC", Backend: backend,
		Topo: TopoSpec{K: 4}, Workload: WorkloadSpec{CDF: "websearch"},
		Load: 0.5, Seed: 2, DurationUs: 500}
}

func benchRun(b *testing.B, sp Spec) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(sp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFCTPointPacket is the packet-engine cost of one small FCT point.
func BenchmarkFCTPointPacket(b *testing.B) { benchRun(b, benchFCTSpec(BackendPacket)) }

// BenchmarkFCTPointFluid is the fluid-backend cost of the same point.
func BenchmarkFCTPointFluid(b *testing.B) { benchRun(b, benchFCTSpec(BackendFluid)) }

// benchFCTSpecK8 is the paper-scale k=8 WebSearch point (128 hosts, 2k+
// flows) used by the parallel-speedup gate: heavy enough that per-window
// work dominates barrier cost.
func benchFCTSpecK8(workers int) Spec {
	return Spec{Kind: KindFCT, Scheme: "FNCC",
		Workload: WorkloadSpec{CDF: "websearch"}, Load: 0.5, Seed: 2,
		DurationUs: 300, Workers: workers}
}

// BenchmarkFCTPointPacketK8 is the serial cost of the k=8 point.
func BenchmarkFCTPointPacketK8(b *testing.B) { benchRun(b, benchFCTSpecK8(0)) }

// BenchmarkFCTPointPacketParallel is the same point on the LP-sharded
// executor with 4 workers (bit-identical result). benchguard derives
// packet_parallel_speedup = K8/Parallel into the perf snapshot and CI
// floors it at 2x.
func BenchmarkFCTPointPacketParallel(b *testing.B) { benchRun(b, benchFCTSpecK8(4)) }
