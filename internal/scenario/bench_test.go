package scenario

import "testing"

// benchFCTSpec is one small Fig 14-style point, identical under both
// backends so the packet/fluid ns/op ratio is the backend speedup on the
// same experiment (cmd/benchguard derives it into BENCH_3.json and CI
// fails if it drops below 50x).
func benchFCTSpec(backend string) Spec {
	return Spec{Kind: KindFCT, Scheme: "FNCC", Backend: backend,
		Topo: TopoSpec{K: 4}, Workload: WorkloadSpec{CDF: "websearch"},
		Load: 0.5, Seed: 2, DurationUs: 500}
}

func benchRun(b *testing.B, sp Spec) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(sp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFCTPointPacket is the packet-engine cost of one small FCT point.
func BenchmarkFCTPointPacket(b *testing.B) { benchRun(b, benchFCTSpec(BackendPacket)) }

// BenchmarkFCTPointFluid is the fluid-backend cost of the same point.
func BenchmarkFCTPointFluid(b *testing.B) { benchRun(b, benchFCTSpec(BackendFluid)) }
