package scenario

// Traffic patterns the fixed exp runners cannot express: permutation,
// all-to-all shuffle, and a mixed Poisson-background + periodic-incast
// workload, all on the fat-tree. Each returns the same flat metric map as
// the exp-backed kinds so sweep tables compose across kinds.

import (
	"fmt"

	"repro/internal/exp"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/workload"
)

// attachNetProbe wires the spec's telemetry block (if any) to a fat-tree
// fabric for a run spanning the given horizon.
func attachNetProbe(ft *topo.FatTree, sp Spec, span sim.Time) *telemetry.NetProbe {
	cfg := sp.Telemetry.Config()
	if cfg == nil {
		return nil
	}
	return telemetry.AttachNet(ft.Net, *cfg, telemetry.Samples(span, cfg.Interval))
}

// probeOutput stops a probe and extracts its output (nil-safe).
func probeOutput(tp *telemetry.NetProbe) *telemetry.Output {
	if tp == nil {
		return nil
	}
	tp.Stop()
	return tp.Output()
}

// buildFatTree constructs the spec's fat-tree with the (possibly overridden)
// scheme installed and the seed threaded into fabric randomness.
func buildFatTree(sp Spec) (*topo.FatTree, error) {
	scheme, err := BuildScheme(sp.Scheme, sp.CC)
	if err != nil {
		return nil, err
	}
	ncfg := netsim.DefaultConfig()
	ncfg.Seed = sp.Seed
	opts := topo.FatTreeOpts{K: sp.Topo.K, RateBps: sp.Topo.RateBps(),
		CoreRateBps: sp.Topo.CoreRateBps(), Delay: sp.Topo.Delay(),
		Workers: sp.Workers}
	return topo.BuildFatTree(ncfg, scheme, opts)
}

// fabricMetrics folds the run-wide counters and FCT stats shared by the
// pattern kinds: completion bookkeeping, makespan, slowdowns, PFC/drops.
func fabricMetrics(ft *topo.FatTree, generated int, done bool) map[string]float64 {
	m := map[string]float64{
		"completed":    float64(ft.Net.FCT.N()),
		"generated":    float64(generated),
		"pause_frames": float64(ft.Net.PauseFrames.N),
		"drops":        float64(ft.Net.Drops.N),
		"completed_all": func() float64 {
			if done {
				return 1
			}
			return 0
		}(),
	}
	var makespan sim.Time
	for _, r := range ft.Net.FCT.Records {
		if r.Finish > makespan {
			makespan = r.Finish
		}
	}
	m["makespan_us"] = timeUs(makespan)
	slowdownMetrics(m, ft.Net.FCT)
	return m
}

// runPermutation sends one FlowBytes flow per host to the host Shift away
// (default hosts/2, i.e. always cross-pod on a fat-tree): an admissible
// pattern — every host sends and receives exactly once — that exercises
// every tier of the fabric simultaneously.
func runPermutation(sp Spec) (map[string]float64, *telemetry.Output, error) {
	probe := exp.BeginPerf()
	ft, err := buildFatTree(sp)
	if err != nil {
		return nil, nil, err
	}
	hosts := len(ft.Hosts)
	shift := sp.Workload.Shift
	if shift == 0 {
		shift = hosts / 2
	}
	if shift%hosts == 0 {
		return nil, nil, fmt.Errorf("permutation shift %d maps hosts to themselves", shift)
	}
	for i := 0; i < hosts; i++ {
		ft.AddFlow(uint64(i+1), i, (i+shift)%hosts, sp.Workload.FlowBytes, 0)
	}
	tp := attachNetProbe(ft, sp, sp.Duration())
	done := ft.Net.RunToCompletion(sp.Duration())
	tel := probeOutput(tp)
	m := fabricMetrics(ft, hosts, done)
	perfMetrics(m, probe.End(ft.Net))
	return m, tel, nil
}

// runAllToAll is the shuffle: every host sends FlowBytes to every other
// host, all starting at t=0. Each host simultaneously fans out to and
// receives from hosts-1 peers, the worst admissible stress the fabric
// supports.
func runAllToAll(sp Spec) (map[string]float64, *telemetry.Output, error) {
	probe := exp.BeginPerf()
	ft, err := buildFatTree(sp)
	if err != nil {
		return nil, nil, err
	}
	hosts := len(ft.Hosts)
	id := uint64(1)
	for src := 0; src < hosts; src++ {
		for dst := 0; dst < hosts; dst++ {
			if dst == src {
				continue
			}
			ft.AddFlow(id, src, dst, sp.Workload.FlowBytes, 0)
			id++
		}
	}
	tp := attachNetProbe(ft, sp, sp.Duration())
	done := ft.Net.RunToCompletion(sp.Duration())
	tel := probeOutput(tp)
	m := fabricMetrics(ft, hosts*(hosts-1), done)
	perfMetrics(m, probe.End(ft.Net))
	return m, tel, nil
}

// runMixed layers periodic Fanout-to-1 incast bursts (every BurstEveryUs,
// victim host 0) over an open-loop Poisson background at Load, the
// composite pattern production fabrics actually see. The run drains after
// the arrival horizon like the FCT experiment.
func runMixed(sp Spec) (map[string]float64, *telemetry.Output, error) {
	probe := exp.BeginPerf()
	ft, err := buildFatTree(sp)
	if err != nil {
		return nil, nil, err
	}
	hosts := len(ft.Hosts)
	if sp.Workload.Fanout >= hosts {
		return nil, nil, fmt.Errorf("mixed fanout %d needs < %d hosts", sp.Workload.Fanout, hosts)
	}
	cdf, ok := workload.ByName(sp.Workload.CDF)
	if !ok {
		return nil, nil, fmt.Errorf("unknown workload CDF %q", sp.Workload.CDF)
	}
	horizon := sp.Duration()
	flows, err := workload.Generate(workload.GenConfig{
		Hosts:     hosts,
		AccessBps: sp.Topo.RateBps(),
		Load:      sp.Load,
		CDF:       cdf,
		Horizon:   horizon,
		Seed:      sp.Seed,
		FirstID:   1,
	})
	if err != nil {
		return nil, nil, err
	}
	for _, fs := range flows {
		ft.AddFlow(fs.ID, fs.SrcHost, fs.DstHost, fs.SizeBytes, fs.Start)
	}
	// Bursts: responders 1..Fanout all answer host 0 at once, every period.
	id := uint64(len(flows) + 1)
	burstFlows := 0
	period := sim.Time(sp.Workload.BurstEveryUs) * sim.Microsecond
	for t := period; t < horizon; t += period {
		for r := 1; r <= sp.Workload.Fanout; r++ {
			ft.AddFlow(id, r, 0, sp.Workload.FlowBytes, t)
			id++
			burstFlows++
		}
	}
	tp := attachNetProbe(ft, sp, horizon*11)
	done := ft.Net.RunToCompletion(horizon * 11) // horizon + 10x drain
	tel := probeOutput(tp)
	m := fabricMetrics(ft, len(flows)+burstFlows, done)
	m["burst_flows"] = float64(burstFlows)
	m["offered_load"] = workload.OfferedLoad(flows, hosts, sp.Topo.RateBps(), horizon)
	perfMetrics(m, probe.End(ft.Net))
	return m, tel, nil
}
