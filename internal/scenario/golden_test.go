package scenario

import (
	"math"
	"testing"
)

// The values below were produced by the pre-refactor tree (commit 95e041c,
// heap-allocated events and per-frame packet allocation) and are compared
// bit-exactly: the pooled engine and pooled packets must change *nothing*
// observable — same event order, same byte counts, same floating-point
// accumulation — only the speed. Hex float literals pin the exact IEEE-754
// payloads.
//
// Perf telemetry (engine_events_per_sec, mallocs_per_run...) is
// intentionally absent: those metrics are host-dependent by design.

var goldenMicro = map[string]map[string]float64{
	"FNCC": {
		"drops":             0x0p+00,
		"first_slowdown_us": 0x1.35p+08, // 309
		// mean_util moved from 0x1.f343dcee87408p-01 when the engine
		// adopted the canonical (at, schedAt, key, seq) collision order:
		// simultaneous link deliveries now fire in port-UID order instead of
		// historical scheduling order, which is what lets the sharded
		// parallel executor reproduce serial runs bit-exactly. One FNCC ACK
		// in this scenario collides with a data delivery and reads INT state
		// one frame earlier. Every other metric here is unaffected.
		"mean_util":    0x1.ee571484a397p-01,
		"pause_frames": 0x0p+00,
		// queue_peak_bytes = 103224
		"queue_peak_bytes": 0x1.9338p+16,
		"resume_frames":    0x0p+00,
	},
	"FNCC-noLHCS": {
		"drops":             0x0p+00,
		"first_slowdown_us": 0x1.36p+08, // 310
		"mean_util":         0x1.e169866eadfa9p-01,
		"pause_frames":      0x0p+00,
		"queue_peak_bytes":  0x1.ec2ap+16, // 125994
		"resume_frames":     0x0p+00,
	},
	"HPCC": {
		"drops":             0x0p+00,
		"first_slowdown_us": 0x1.3fp+08, // 319
		"mean_util":         0x1.c63e749a9225ep-01,
		"pause_frames":      0x0p+00,
		"queue_peak_bytes":  0x1.374fp+17, // 159390
		"resume_frames":     0x0p+00,
	},
	"DCQCN": {
		"drops":             0x0p+00,
		"first_slowdown_us": 0x1.4ep+08, // 334
		"mean_util":         0x1.0018b5823e6eap+00,
		"pause_frames":      0x0p+00,
		"queue_peak_bytes":  0x1.82e98p+18, // 396198
		"resume_frames":     0x0p+00,
	},
	"RoCC": {
		"drops":             0x0p+00,
		"first_slowdown_us": -0x1p+00, // never
		"mean_util":         0x1.0018b5823e6eap+00,
		"pause_frames":      0x1p+01,       // 2
		"queue_peak_bytes":  0x1.0016ap+20, // 1048938
		"resume_frames":     0x0p+00,
	},
	"Timely": {
		"drops":             0x0p+00,
		"first_slowdown_us": 0x1.4dp+08, // 333
		"mean_util":         0x1.0018b5823e6eap+00,
		"pause_frames":      0x0p+00,
		"queue_peak_bytes":  0x1.c71a8p+18, // 466026
		"resume_frames":     0x0p+00,
	},
	"Swift": {
		"drops":             0x0p+00,
		"first_slowdown_us": -0x1p+00,
		"mean_util":         0x1.0018b5823e6eap+00,
		"pause_frames":      0x0p+00,
		"queue_peak_bytes":  0x1.9f14p+17, // 212520
		"resume_frames":     0x0p+00,
	},
	"ExpressPass": {
		"drops":             0x0p+00,
		"first_slowdown_us": -0x1p+00,
		"mean_util":         0x1.98c4fa54cff5bp-04,
		"pause_frames":      0x0p+00,
		"queue_peak_bytes":  0x0p+00,
		"resume_frames":     0x0p+00,
	},
}

var goldenIncast = map[string]map[string]float64{
	"FNCC": {
		"all_done_us":      0x1.6fdba0a526959p+05, // 45.98224
		"jain_min":         0x1.ffc83d218cd71p-01,
		"lhcs_triggers":    0x1.3bp+08, // 315
		"pause_frames":     0x0p+00,
		"queue_peak_bytes": 0x1.a4ea8p+18, // 431018
	},
	"DCQCN": {
		"all_done_us":      0x1.6fdba0a526959p+05,
		"jain_min":         0x1.c924924924925p-01,
		"lhcs_triggers":    0x0p+00,
		"pause_frames":     0x0p+00,
		"queue_peak_bytes": 0x1.a4ea8p+18,
	},
}

func checkGolden(t *testing.T, label string, got, want map[string]float64) {
	t.Helper()
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("%s: metric %q missing", label, k)
			continue
		}
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Errorf("%s: %s = %x (%v), pre-refactor tree produced %x (%v)",
				label, k, g, g, w, w)
		}
	}
}

// TestGoldenMicroDeterminism runs the micro scenario for every scheme and
// demands bit-identical metrics versus the pre-refactor tree.
func TestGoldenMicroDeterminism(t *testing.T) {
	for scheme, want := range goldenMicro {
		sp := Spec{
			Name: "golden-micro", Kind: KindMicro, Scheme: scheme,
			Topo:       TopoSpec{Senders: 2, RateGbps: 100},
			DurationUs: 400,
		}
		res, err := Run(sp)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		checkGolden(t, "micro/"+scheme, res.Metrics, want)
	}
}

// TestGoldenIncastDeterminism covers a second kind — bursty many-to-one
// with PFC interplay — for a window-based and a rate-based scheme.
func TestGoldenIncastDeterminism(t *testing.T) {
	for scheme, want := range goldenIncast {
		sp := Spec{
			Name: "golden-incast", Kind: KindIncast, Scheme: scheme,
			Topo:       TopoSpec{RateGbps: 100},
			Workload:   WorkloadSpec{Fanout: 8, FlowBytes: 64_000},
			DurationUs: 2000,
		}
		res, err := Run(sp)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		checkGolden(t, "incast/"+scheme, res.Metrics, want)
	}
}

// TestGoldenRunTwiceIdentical guards run-to-run determinism within this
// tree: two executions of the same spec (fresh engine + pools each) must
// agree bit-exactly on every non-perf metric.
func TestGoldenRunTwiceIdentical(t *testing.T) {
	sp := Spec{
		Kind: KindMicro, Scheme: "FNCC",
		Topo:       TopoSpec{Senders: 3, RateGbps: 100},
		DurationUs: 300,
	}
	a, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	perf := map[string]bool{
		"engine_events": true, "engine_events_per_sec": true,
		"event_reuse_rate": true, "pool_hit_rate": true,
		"mallocs_per_run": true, "alloc_bytes_per_run": true,
	}
	for k, va := range a.Metrics {
		if perf[k] && k != "engine_events" && k != "event_reuse_rate" && k != "pool_hit_rate" {
			continue // wall-clock / allocator noise
		}
		if math.Float64bits(va) != math.Float64bits(b.Metrics[k]) {
			t.Errorf("run-to-run drift on %s: %v vs %v", k, va, b.Metrics[k])
		}
	}
}
