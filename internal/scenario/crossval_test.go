package scenario

import (
	"math"
	"testing"
)

// Cross-validation: the fluid backend is only trustworthy if it reproduces
// the packet engine's FCT statistics on scenarios small enough to run both.
// The tolerances below are the model's validated error envelope — they are
// quoted in DESIGN.md's Backends section, so a change here must update the
// docs. Both engines are deterministic, so these comparisons are exact
// regressions, not flaky statistical checks; measured agreement at the time
// of writing is ~3% (permutation), ~5-8% (fct), ~9% (incast).

// relDiff is |a-b| / b.
func relDiff(a, b float64) float64 { return math.Abs(a-b) / math.Abs(b) }

// runPair executes the same spec under both backends.
func runPair(t *testing.T, sp Spec) (packet, fluid *Result) {
	t.Helper()
	sp.Backend = BackendPacket
	packet, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	sp.Backend = BackendFluid
	fluid, err = Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	return packet, fluid
}

// TestCrossValidatePermutation: identical flow sets and identical ECMP
// placement (the fluid fat-tree replicates the packet hash) make the
// cross-pod permutation the tightest comparison: mean slowdown within 10%.
func TestCrossValidatePermutation(t *testing.T) {
	const tolerance = 0.10
	pk, fl := runPair(t, Spec{Kind: KindPermutation, Scheme: "FNCC",
		Topo: TopoSpec{K: 4}, Workload: WorkloadSpec{FlowBytes: 200_000}})
	if pk.Metrics["completed_all"] != 1 || fl.Metrics["completed_all"] != 1 {
		t.Fatal("a backend missed the permutation deadline")
	}
	p, f := pk.Metrics["slowdown_avg"], fl.Metrics["slowdown_avg"]
	if d := relDiff(f, p); d > tolerance {
		t.Errorf("mean slowdown: packet %.4f, fluid %.4f, rel diff %.1f%% > %.0f%%",
			p, f, 100*d, 100*tolerance)
	}
	if d := relDiff(fl.Metrics["makespan_us"], pk.Metrics["makespan_us"]); d > tolerance {
		t.Errorf("makespan: packet %.2fus, fluid %.2fus, rel diff %.1f%%",
			pk.Metrics["makespan_us"], fl.Metrics["makespan_us"], 100*d)
	}
}

// TestCrossValidateFCT: a small Poisson FCT run (k=4 WebSearch) with the
// same generated trace under both backends; mean slowdown within 15%.
func TestCrossValidateFCT(t *testing.T) {
	const tolerance = 0.15
	for _, tc := range []struct {
		load float64
		seed int64
	}{{0.4, 1}, {0.5, 2}} {
		pk, fl := runPair(t, Spec{Kind: KindFCT, Scheme: "FNCC",
			Topo: TopoSpec{K: 4}, Workload: WorkloadSpec{CDF: "websearch"},
			Load: tc.load, Seed: tc.seed, DurationUs: 300})
		if pk.Metrics["generated"] != fl.Metrics["generated"] {
			t.Fatalf("load %v seed %d: backends saw different traces (%v vs %v flows)",
				tc.load, tc.seed, pk.Metrics["generated"], fl.Metrics["generated"])
		}
		if pk.Metrics["completed"] == 0 {
			t.Fatalf("load %v seed %d: no completions", tc.load, tc.seed)
		}
		p, f := pk.Metrics["slowdown_avg"], fl.Metrics["slowdown_avg"]
		if d := relDiff(f, p); d > tolerance {
			t.Errorf("load %v seed %d: mean slowdown packet %.4f, fluid %.4f, rel diff %.1f%% > %.0f%%",
				tc.load, tc.seed, p, f, 100*d, 100*tolerance)
		}
	}
}

// TestCrossValidateIncast: the fluid incast has no queue build-up or PFC,
// so its completion time should undershoot packet slightly but stay within
// 15% on a moderate burst.
func TestCrossValidateIncast(t *testing.T) {
	const tolerance = 0.15
	pk, fl := runPair(t, Spec{Kind: KindIncast, Scheme: "FNCC",
		Workload: WorkloadSpec{Fanout: 8, FlowBytes: 1 << 19}, DurationUs: 100_000})
	p, f := pk.Metrics["all_done_us"], fl.Metrics["all_done_us"]
	if p < 0 || f < 0 {
		t.Fatalf("a backend missed the incast deadline: packet %v, fluid %v", p, f)
	}
	if d := relDiff(f, p); d > tolerance {
		t.Errorf("all-done: packet %.2fus, fluid %.2fus, rel diff %.1f%% > %.0f%%",
			p, f, 100*d, 100*tolerance)
	}
}
