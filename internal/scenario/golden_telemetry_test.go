package scenario

import (
	"math"
	"testing"
)

// Golden probe series for the seeded incast run (the same spec as
// TestGoldenIncastDeterminism plus a telemetry block): the first 8 samples
// of the last-hop queue, its utilization, flow 1's pacing rate, and — for
// DCQCN — the ECN/CNP/alpha chain, pinned bit-exactly. Probes are read-only
// observers, so any drift here means either the probe layer perturbed the
// simulation or the simulation itself changed; both must be deliberate.
//
// Values produced by this tree at the telemetry layer's introduction.
var goldenIncastSeries = map[string]map[string][]float64{
	"FNCC": {
		"sw2/p1/queue_bytes": {0x1.228ep+18, 0x1.a4ea8p+18, 0x1.66a78p+18, 0x1.29ep+18, 0x1.da31p+17, 0x1.60a2p+17, 0x1.ce26p+16, 0x1.aa34p+15},
		"sw2/p1/util":        {0x1.4fc1df3300de4p-01, 0x1.fdda8bd230b9dp-01, 0x1.052502eec7c95p+00, 0x1.fdda8bd230b9dp-01, 0x1.fdda8bd230b9dp-01, 0x1.fdda8bd230b9dp-01, 0x1.fdda8bd230b9dp-01, 0x1.052502eec7c95p+00},
		"flow1/rate_bps":     {0x1.74876e8p+36, 0x1.5e8497e38p+33, 0x1.77bf38f7p+32, 0x1.32db6bffp+32, 0x1.1f0b5fccp+32, 0x1.201a54p+32, 0x1.2f13f66ep+32, 0x1.4b5e1505p+32},
	},
	"DCQCN": {
		"sw2/p1/queue_bytes": {0x1.228ep+18, 0x1.a4ea8p+18, 0x1.66a78p+18, 0x1.29ep+18, 0x1.da31p+17, 0x1.60a2p+17, 0x1.ce26p+16, 0x1.aa34p+15},
		"sw2/p1/util":        {0x1.4fc1df3300de4p-01, 0x1.fdda8bd230b9dp-01, 0x1.052502eec7c95p+00, 0x1.fdda8bd230b9dp-01, 0x1.fdda8bd230b9dp-01, 0x1.fdda8bd230b9dp-01, 0x1.fdda8bd230b9dp-01, 0x1.052502eec7c95p+00},
		"flow1/rate_bps":     {0x1.74876e8p+36, 0x1.74876e8p+36, 0x1.74876e8p+36, 0x1.74876e8p+36, 0x1.74876e8p+36, 0x1.74876e8p+36, 0x1.74876e8p+35, 0x1.74876e8p+35},
		"sw2/ecn_marks":      {0x1p+03, 0x1.3cp+06, 0x1.3cp+06, 0x1.3cp+06, 0x1.3cp+06, 0x1.3cp+06, 0x1.3cp+06, 0x1.3cp+06},
		"host3/cnp_rx":       {0x0p+00, 0x0p+00, 0x0p+00, 0x0p+00, 0x0p+00, 0x0p+00, 0x1p+00, 0x1p+00},
		"flow1/cc/alpha":     {0x1p+00, 0x1p+00, 0x1p+00, 0x1p+00, 0x1p+00, 0x1p+00, 0x1p+00, 0x1p+00},
	},
}

// goldenFluidSeries is the fluid twin: 8 equal senders split the 100 G
// receiver access link (12.5 G each) and hold its occupancy at exactly 1.
var goldenFluidSeries = map[string][]float64{
	"flow1/rate_bps":   {0x1.74876e8p+33, 0x1.74876e8p+33, 0x1.74876e8p+33, 0x1.74876e8p+33, 0x1.74876e8p+33, 0x1.74876e8p+33, 0x1.74876e8p+33, 0x1.74876e8p+33},
	"link10/occupancy": {0x1p+00, 0x1p+00, 0x1p+00, 0x1p+00, 0x1p+00, 0x1p+00, 0x1p+00, 0x1p+00},
}

func goldenIncastTelemetrySpec(scheme string) Spec {
	return Spec{
		Name: "golden-incast-telemetry", Kind: KindIncast, Scheme: scheme,
		Topo:       TopoSpec{RateGbps: 100},
		Workload:   WorkloadSpec{Fanout: 8, FlowBytes: 64_000},
		DurationUs: 2000,
		Telemetry: &TelemetrySpec{
			IntervalUs: 5,
			Probes:     []string{"queue", "switch", "host", "cc"},
			TraceCap:   1024,
		},
	}
}

func checkGoldenSeries(t *testing.T, label string, res *Result, want map[string][]float64) {
	t.Helper()
	if res.Telemetry == nil {
		t.Fatalf("%s: no telemetry in result", label)
	}
	for name, vals := range want {
		s := res.Telemetry.SeriesByName(name)
		if s == nil {
			t.Errorf("%s: series %q missing", label, name)
			continue
		}
		if len(s.Values) < len(vals) {
			t.Errorf("%s: %s has %d samples, want >= %d", label, name, len(s.Values), len(vals))
			continue
		}
		for i, w := range vals {
			if math.Float64bits(s.Values[i]) != math.Float64bits(w) {
				t.Errorf("%s: %s[%d] = %x (%v), golden %x (%v)",
					label, name, i, s.Values[i], s.Values[i], w, w)
			}
		}
	}
}

// TestGoldenIncastTelemetrySeries pins the probe series of the seeded
// incast run for a window-based and a rate-based scheme on the packet
// backend, and checks telemetry does not disturb the run's metrics (which
// TestGoldenIncastDeterminism pins without telemetry).
func TestGoldenIncastTelemetrySeries(t *testing.T) {
	for scheme, want := range goldenIncastSeries {
		res, err := Run(goldenIncastTelemetrySpec(scheme))
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		checkGoldenSeries(t, "incast/"+scheme, res, want)
		if base, ok := goldenIncast[scheme]; ok {
			checkGolden(t, "incast-with-telemetry/"+scheme, res.Metrics, base)
		}
		if res.Telemetry.TraceTotal == 0 || len(res.Telemetry.Trace) == 0 {
			t.Errorf("%s: flight recorder captured nothing", scheme)
		}
		if len(res.Telemetry.Trace) > 1024 {
			t.Errorf("%s: trace exceeded its cap: %d", scheme, len(res.Telemetry.Trace))
		}
	}
}

// TestGoldenIncastTelemetrySeriesFluid pins the fluid twin's rate and
// bottleneck-occupancy series for the same flow set.
func TestGoldenIncastTelemetrySeriesFluid(t *testing.T) {
	sp := goldenIncastTelemetrySpec("FNCC")
	sp.Backend = BackendFluid
	sp.Telemetry = &TelemetrySpec{IntervalUs: 5, Probes: []string{"rate", "link"}}
	res, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	checkGoldenSeries(t, "incast/fluid", res, goldenFluidSeries)
}
