package scenario

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Result is one executed scenario: its provenance (normalized spec + hash)
// and a flat scalar metric map that aggregates and exports trivially.
type Result struct {
	Spec    Spec               `json:"spec"`
	Hash    string             `json:"hash"`
	Metrics map[string]float64 `json:"metrics"`
	// Telemetry carries the probe series and event trace when the spec has
	// a telemetry block; nil otherwise. It round-trips through the harness
	// cache with the rest of the result.
	Telemetry *telemetry.Output `json:"telemetry,omitempty"`
	// Cached reports whether the harness served this result from its disk
	// cache instead of simulating.
	Cached bool `json:"-"`
}

// MetricNames returns the result's metric keys sorted.
func (r *Result) MetricNames() []string {
	names := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// knownMetrics indexes every metric any kind can emit; Validate rejects
// Collect entries outside it.
var knownMetrics = map[string]bool{
	"queue_peak_bytes": true, "mean_util": true, "pause_frames": true,
	"resume_frames": true, "drops": true, "first_slowdown_us": true,
	"lhcs_triggers": true, "jain_all_active": true, "duration_us": true,
	"completed": true, "generated": true, "offered_load": true,
	"slowdown_avg": true, "slowdown_median": true, "slowdown_p95": true,
	"slowdown_p99": true, "all_done_us": true, "jain_min": true,
	"makespan_us": true, "completed_all": true, "burst_flows": true,
	// Simulator-performance telemetry (exp.PerfStats), attached to every
	// run so sweeps regression-track engine throughput and pool efficiency.
	// The engine/pool rates are deterministic; the wall-clock and
	// allocation counters are host-dependent trend indicators.
	"engine_events": true, "engine_events_per_sec": true,
	"event_reuse_rate": true, "pool_hit_rate": true,
	"mallocs_per_run": true, "alloc_bytes_per_run": true,
	// Fluid-backend incremental-engine telemetry: full vs worklist passes
	// and the affected fraction (links/flows/heap keys touched per event).
	// Deterministic for a given spec, like engine_events.
	"fluid_full_passes": true, "fluid_incremental_passes": true,
	"fluid_links_touched_per_event": true, "fluid_flows_touched_per_event": true,
	"fluid_heap_invalidations_per_event": true,
	// Telemetry bookkeeping, present only when the spec has a telemetry
	// block: probe samples recorded and trace events captured.
	"telemetry_samples": true, "trace_events": true,
	// Parallel-executor telemetry, present only when workers > 1 sharded
	// the run: partition size, worker count, barrier rounds and cross-shard
	// frame deliveries. All deterministic for a given spec.
	"parallel_workers": true, "parallel_shards": true,
	"parallel_windows": true, "cross_shard_messages": true,
}

// perfMetrics folds a runner's PerfStats into the flat metric map.
func perfMetrics(m map[string]float64, p exp.PerfStats) {
	m["engine_events"] = float64(p.Events)
	m["engine_events_per_sec"] = p.EventsPerSec
	m["event_reuse_rate"] = p.EventReuseRate
	m["pool_hit_rate"] = p.PoolHitRate
	m["mallocs_per_run"] = float64(p.Mallocs)
	m["alloc_bytes_per_run"] = float64(p.AllocBytes)
	if p.Shard.Shards > 0 {
		m["parallel_workers"] = float64(p.Shard.Workers)
		m["parallel_shards"] = float64(p.Shard.Shards)
		m["parallel_windows"] = float64(p.Shard.Windows)
		m["cross_shard_messages"] = float64(p.Shard.Messages)
	}
}

// BuildScheme constructs the named scheme with parameter overrides applied.
// Supported keys: alpha, beta, lhcs (0/1), table_update_us for the FNCC
// variants; eta, max_stage, wai_bytes, min_wnd_bytes for FNCC variants and
// HPCC. Other schemes accept no overrides.
func BuildScheme(name string, over map[string]float64) (netsim.Scheme, error) {
	if len(over) == 0 {
		return exp.NewScheme(name)
	}
	switch name {
	case exp.SchemeFNCC, exp.SchemeFNCCNoLHCS:
		cfg := core.DefaultConfig()
		if name == exp.SchemeFNCCNoLHCS {
			cfg.EnableLHCS = false
		}
		for k, v := range over {
			switch k {
			case "alpha":
				cfg.Alpha = v
			case "beta":
				cfg.Beta = v
			case "lhcs":
				cfg.EnableLHCS = v != 0
			case "table_update_us":
				cfg.TableUpdatePeriod = sim.Time(v * float64(sim.Microsecond))
			default:
				if err := applyHPCCOverride(&cfg.HPCC, k, v); err != nil {
					return netsim.Scheme{}, err
				}
			}
		}
		s := core.NewScheme(cfg)
		s.Name = name
		return s, nil
	case exp.SchemeHPCC:
		cfg := cc.DefaultHPCCConfig()
		for k, v := range over {
			if err := applyHPCCOverride(&cfg, k, v); err != nil {
				return netsim.Scheme{}, err
			}
		}
		return cc.NewHPCCScheme(cfg), nil
	default:
		// Reject overrides rather than silently running defaults.
		if _, err := exp.NewScheme(name); err != nil {
			return netsim.Scheme{}, err
		}
		return netsim.Scheme{}, fmt.Errorf("scenario: scheme %q accepts no cc overrides", name)
	}
}

func applyHPCCOverride(cfg *cc.HPCCConfig, k string, v float64) error {
	switch k {
	case "eta":
		cfg.Eta = v
	case "max_stage":
		cfg.MaxStage = int(v)
	case "wai_bytes":
		cfg.WaiBytes = v
	case "min_wnd_bytes":
		cfg.MinWndBytes = v
	default:
		return fmt.Errorf("scenario: unknown cc override %q", k)
	}
	return nil
}

// schemeBuilder adapts a spec's scheme+overrides to the exp injection point.
func schemeBuilder(sp Spec) exp.SchemeBuilder {
	if len(sp.CC) == 0 {
		return nil // let the runner use its registry default
	}
	return func() (netsim.Scheme, error) { return BuildScheme(sp.Scheme, sp.CC) }
}

// Sink observes every executed run. ObserveRun fires once per successful
// simulation — never for cache hits, which don't simulate — with the
// normalized spec, its content hash, and the full metric map *before* any
// Collect filtering, so engine-level stats (engine_events, pool_hit_rate,
// fluid_full_passes, ...) reach the sink even when the spec's Collect list
// strips them from the result. The callback runs synchronously on the
// run's goroutine and must not retain or mutate the map.
//
// This is the hook the harness uses to feed the operational-metrics
// registry (internal/obs); a nil Sink costs one pointer test per run.
type Sink interface {
	ObserveRun(sp Spec, hash string, metrics map[string]float64)
}

// Run validates, normalizes and executes one scenario.
func Run(sp Spec) (*Result, error) { return RunWithSink(sp, nil) }

// RunWithSink is Run with an observer attached; see Sink.
func RunWithSink(sp Spec, sink Sink) (*Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	n := sp.Normalized()
	var (
		m   map[string]float64
		tel *telemetry.Output
		err error
	)
	if n.BackendName() == BackendFluid {
		switch n.Kind {
		case KindFCT:
			m, tel, err = runFCTFluid(n)
		case KindIncast:
			m, tel, err = runIncastFluid(n)
		case KindPermutation:
			m, tel, err = runPermutationFluid(n)
		case KindAllToAll:
			m, tel, err = runAllToAllFluid(n)
		default:
			// Unreachable: Validate rejects fluid for other kinds.
			err = fmt.Errorf("scenario: kind %q has no fluid runner", n.Kind)
		}
		return finishRun(n, m, tel, err, sink)
	}
	switch n.Kind {
	case KindMicro:
		m, tel, err = runMicro(n)
	case KindHop:
		m, tel, err = runHop(n)
	case KindFairness:
		m, tel, err = runFairness(n)
	case KindFCT:
		m, tel, err = runFCT(n)
	case KindIncast:
		m, tel, err = runIncast(n)
	case KindPermutation:
		m, tel, err = runPermutation(n)
	case KindAllToAll:
		m, tel, err = runAllToAll(n)
	case KindMixed:
		m, tel, err = runMixed(n)
	default:
		err = fmt.Errorf("scenario: unknown kind %q", n.Kind)
	}
	return finishRun(n, m, tel, err, sink)
}

// finishRun wraps errors with the run identity, folds telemetry bookkeeping
// into the metric map, notifies the sink, and applies the Collect filter,
// shared by the packet and fluid dispatch paths.
func finishRun(n Spec, m map[string]float64, tel *telemetry.Output, err error, sink Sink) (*Result, error) {
	if err != nil {
		return nil, fmt.Errorf("scenario %s/%s/%s: %w", n.Kind, n.BackendName(), n.Scheme, err)
	}
	if tel != nil {
		m["telemetry_samples"] = float64(tel.Samples)
		m["trace_events"] = float64(tel.TraceTotal)
	}
	hash := n.Hash()
	if sink != nil {
		sink.ObserveRun(n, hash, m)
	}
	if len(n.Collect) > 0 {
		keep := make(map[string]float64, len(n.Collect))
		for _, k := range n.Collect {
			if v, ok := m[k]; ok {
				keep[k] = v
			}
		}
		m = keep
	}
	return &Result{Spec: n, Hash: hash, Metrics: m, Telemetry: tel}, nil
}

func runMicro(sp Spec) (map[string]float64, *telemetry.Output, error) {
	cfg := exp.DefaultMicroConfig(sp.Scheme, sp.Topo.RateBps())
	cfg.Senders = sp.Topo.Senders
	cfg.Duration = sp.Duration()
	cfg.MakeScheme = schemeBuilder(sp)
	cfg.Telemetry = sp.Telemetry.Config()
	cfg.Workers = sp.Workers
	r, err := exp.RunMicro(cfg)
	if err != nil {
		return nil, nil, err
	}
	m := map[string]float64{
		"queue_peak_bytes":  r.QueuePeak,
		"mean_util":         r.MeanUtil,
		"pause_frames":      float64(r.PauseFrames),
		"resume_frames":     float64(r.ResumeFrames),
		"drops":             float64(r.Drops),
		"first_slowdown_us": timeUs(r.FirstSlowdown),
	}
	perfMetrics(m, r.Perf)
	return m, r.Telemetry, nil
}

func runHop(sp Spec) (map[string]float64, *telemetry.Output, error) {
	cfg := exp.DefaultHopConfig(sp.Scheme, exp.HopPosition(sp.Hop))
	cfg.RateBps = sp.Topo.RateBps()
	cfg.Duration = sp.Duration()
	cfg.MakeScheme = schemeBuilder(sp)
	cfg.Telemetry = sp.Telemetry.Config()
	cfg.Workers = sp.Workers
	r, err := exp.RunHop(cfg)
	if err != nil {
		return nil, nil, err
	}
	m := map[string]float64{
		"queue_peak_bytes": r.QueuePeak,
		"mean_util":        r.MeanUtil,
		"lhcs_triggers":    float64(r.LHCSTriggers),
	}
	perfMetrics(m, r.Perf)
	return m, r.Telemetry, nil
}

func runFairness(sp Spec) (map[string]float64, *telemetry.Output, error) {
	cfg := exp.DefaultFairnessConfig(sp.Scheme)
	cfg.Senders = sp.Topo.Senders
	cfg.RateBps = sp.Topo.RateBps()
	cfg.Stagger = sim.Time(sp.Workload.StaggerUs) * sim.Microsecond
	cfg.MakeScheme = schemeBuilder(sp)
	cfg.Telemetry = sp.Telemetry.Config()
	cfg.Workers = sp.Workers
	r, err := exp.RunFairness(cfg)
	if err != nil {
		return nil, nil, err
	}
	m := map[string]float64{
		"jain_all_active": r.JainAllActive,
		"duration_us":     timeUs(r.Duration),
	}
	perfMetrics(m, r.Perf)
	return m, r.Telemetry, nil
}

func runFCT(sp Spec) (map[string]float64, *telemetry.Output, error) {
	cfg := exp.FCTConfig{
		Scheme:      sp.Scheme,
		K:           sp.Topo.K,
		RateBps:     sp.Topo.RateBps(),
		Workload:    sp.Workload.CDF,
		Load:        sp.Load,
		Horizon:     sp.Duration(),
		DrainFactor: 10,
		Seed:        sp.Seed,
		CoreRateBps: sp.Topo.CoreRateBps(),
		MakeScheme:  schemeBuilder(sp),
		Telemetry:   sp.Telemetry.Config(),
		Workers:     sp.Workers,
	}
	r, err := exp.RunFCT(cfg)
	if err != nil {
		return nil, nil, err
	}
	m := map[string]float64{
		"completed":    float64(r.Completed),
		"generated":    float64(r.Generated),
		"offered_load": r.OfferedLoad,
		"pause_frames": float64(r.PauseFrames),
		"drops":        float64(r.Drops),
	}
	slowdownMetrics(m, r.Collector)
	perfMetrics(m, r.Perf)
	return m, r.Telemetry, nil
}

func runIncast(sp Spec) (map[string]float64, *telemetry.Output, error) {
	cfg := exp.DefaultIncastConfig(sp.Scheme)
	cfg.Fanout = sp.Workload.Fanout
	cfg.BytesPerSender = sp.Workload.FlowBytes
	cfg.RateBps = sp.Topo.RateBps()
	cfg.Deadline = sp.Duration()
	cfg.MakeScheme = schemeBuilder(sp)
	cfg.Telemetry = sp.Telemetry.Config()
	cfg.Workers = sp.Workers
	r, err := exp.RunIncast(cfg)
	if err != nil {
		return nil, nil, err
	}
	m := map[string]float64{
		"queue_peak_bytes": float64(r.QueuePeak),
		"pause_frames":     float64(r.PauseFrames),
		"all_done_us":      timeUs(r.AllDoneAt),
		"jain_min":         r.JainFinalRates,
		"lhcs_triggers":    float64(r.LHCSTriggers),
	}
	perfMetrics(m, r.Perf)
	return m, r.Telemetry, nil
}

// slowdownMetrics folds a collector's whole-range slowdown distribution into
// the metric map.
func slowdownMetrics(m map[string]float64, col *metrics.FCTCollector) {
	d := col.SlowdownDist(0, math.MaxInt64)
	if d.N() == 0 {
		return
	}
	m["slowdown_avg"] = d.Mean()
	m["slowdown_median"] = d.Median()
	m["slowdown_p95"] = d.P95()
	m["slowdown_p99"] = d.P99()
}

// timeUs renders a simulation time in microseconds, passing through the -1
// "never" sentinel.
func timeUs(t sim.Time) float64 {
	if t < 0 {
		return -1
	}
	return float64(t) / float64(sim.Microsecond)
}
