package scenario

import (
	"fmt"
	"sort"
)

// Entry is one named built-in scenario.
type Entry struct {
	Spec Spec
	// Desc is a one-line description for `fnccbench list`.
	Desc string
}

// builtin holds the registry. Specs are sparse — Normalized fills the
// paper defaults — and every entry must Validate (enforced by tests).
var builtin = []Entry{
	{
		Spec: Spec{Name: "micro", Kind: KindMicro, Scheme: "FNCC"},
		Desc: "Figs 1b-d/9: two-elephant dumbbell; queue, rates, utilization",
	},
	{
		Spec: Spec{Name: "hop-first", Kind: KindHop, Scheme: "FNCC", Hop: "first"},
		Desc: "Fig 13a: congestion at the first hop of the chain",
	},
	{
		Spec: Spec{Name: "hop-last", Kind: KindHop, Scheme: "FNCC", Hop: "last"},
		Desc: "Fig 13c: congestion at the last hop (LHCS territory)",
	},
	{
		Spec: Spec{Name: "fairness", Kind: KindFairness, Scheme: "FNCC"},
		Desc: "Fig 13e: staggered join/leave convergence, Jain index",
	},
	{
		Spec: Spec{Name: "fct-websearch", Kind: KindFCT, Scheme: "FNCC",
			Workload: WorkloadSpec{CDF: "websearch"}},
		Desc: "Fig 14: k=8 fat-tree, WebSearch Poisson at 50% load",
	},
	{
		Spec: Spec{Name: "fct-hadoop", Kind: KindFCT, Scheme: "FNCC",
			Workload: WorkloadSpec{CDF: "hadoop"}},
		Desc: "Fig 15: k=8 fat-tree, FB_Hadoop Poisson at 50% load",
	},
	{
		Spec: Spec{Name: "incast", Kind: KindIncast, Scheme: "FNCC"},
		Desc: "§3.2.2: 16-to-1 last-hop burst motivating LHCS",
	},
	{
		Spec: Spec{Name: "permutation", Kind: KindPermutation, Scheme: "FNCC"},
		Desc: "new: cross-pod permutation, one 1MB flow per host",
	},
	{
		Spec: Spec{Name: "alltoall", Kind: KindAllToAll, Scheme: "FNCC"},
		Desc: "new: full shuffle, every host to every other host",
	},
	{
		Spec: Spec{Name: "oversub-websearch", Kind: KindFCT, Scheme: "FNCC",
			Topo:     TopoSpec{Oversub: 2},
			Workload: WorkloadSpec{CDF: "websearch"}},
		Desc: "new: WebSearch at 50% load on a 2:1 oversubscribed core",
	},
	{
		Spec: Spec{Name: "mixed-websearch-incast", Kind: KindMixed, Scheme: "FNCC"},
		Desc: "new: WebSearch background plus periodic 8-to-1 incast bursts",
	},
	{
		Spec: Spec{Name: "fct-websearch-fluid", Kind: KindFCT, Scheme: "FNCC",
			Backend:  BackendFluid,
			Workload: WorkloadSpec{CDF: "websearch"}},
		Desc: "new: Fig 14 point on the flow-level fluid backend (ms, not minutes)",
	},
	{
		Spec: Spec{Name: "permutation-fluid", Kind: KindPermutation, Scheme: "FNCC",
			Backend: BackendFluid},
		Desc: "new: cross-pod permutation on the fluid backend",
	},
	{
		Spec: Spec{Name: "fct-websearch-fluid-k16", Kind: KindFCT, Scheme: "FNCC",
			Backend:  BackendFluid,
			Topo:     TopoSpec{K: 16},
			Workload: WorkloadSpec{CDF: "websearch"}},
		Desc: "new: WebSearch FCT on a k=16 fat-tree (1024 hosts), incremental fluid engine",
	},
	{
		Spec: Spec{Name: "permutation-fluid-k32", Kind: KindPermutation, Scheme: "FNCC",
			Backend: BackendFluid,
			Topo:    TopoSpec{K: 32}},
		Desc: "new: 8192-host cross-pod permutation, incremental fluid engine",
	},
}

// Builtin returns the registry entries sorted by name.
func Builtin() []Entry {
	out := append([]Entry(nil), builtin...)
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// Names lists the registered scenario names sorted.
func Names() []string {
	es := Builtin()
	names := make([]string, len(es))
	for i, e := range es {
		names[i] = e.Spec.Name
	}
	return names
}

// Lookup resolves a registry name to its spec.
func Lookup(name string) (Spec, error) {
	for _, e := range builtin {
		if e.Spec.Name == name {
			return e.Spec, nil
		}
	}
	return Spec{}, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
}
