package scenario

import (
	"math"
	"testing"
)

type recordingSink struct {
	calls  int
	spec   Spec
	hash   string
	events float64
	keys   map[string]bool
}

func (s *recordingSink) ObserveRun(sp Spec, hash string, m map[string]float64) {
	s.calls++
	s.spec = sp
	s.hash = hash
	s.events = m["engine_events"]
	s.keys = map[string]bool{}
	for k := range m {
		s.keys[k] = true
	}
}

// TestRunWithSink pins the sink contract: one call per run, the normalized
// spec and final hash, and the full pre-Collect metric map — a Collect
// filter that strips the perf columns from the result must not strip them
// from the sink, or the obs registry would go blind exactly when sweeps
// trim their output.
func TestRunWithSink(t *testing.T) {
	sp := Spec{Kind: KindMicro, Scheme: "FNCC", DurationUs: 50,
		Collect: []string{"engine_events"}}
	sink := &recordingSink{}
	res, err := RunWithSink(sp, sink)
	if err != nil {
		t.Fatal(err)
	}
	if sink.calls != 1 {
		t.Fatalf("sink called %d times, want 1", sink.calls)
	}
	if sink.hash != res.Hash {
		t.Errorf("sink hash %s != result hash %s", sink.hash, res.Hash)
	}
	if sink.spec.Topo.Senders == 0 {
		t.Error("sink saw an un-normalized spec")
	}
	if sink.events <= 0 {
		t.Errorf("sink engine_events = %g, want > 0", sink.events)
	}
	if !sink.keys["engine_events"] || !sink.keys["mean_util"] {
		t.Errorf("sink metric map missing pre-Collect keys: %v", sink.keys)
	}
	if len(res.Metrics) != 1 {
		t.Errorf("Collect filter broken: result has %d metrics", len(res.Metrics))
	}
	if res.Metrics["engine_events"] <= 0 {
		t.Error("collected metric missing from result")
	}
}

// TestRunWithSinkFluid covers the fluid dispatch path's sink call and the
// fluid_* pass counters the obs layer accumulates.
func TestRunWithSinkFluid(t *testing.T) {
	sp := Spec{Kind: KindFCT, Scheme: "FNCC", Backend: BackendFluid,
		Topo: TopoSpec{K: 4}, Workload: WorkloadSpec{CDF: "websearch"},
		Load: 0.3, DurationUs: 200}
	sink := &recordingSink{}
	if _, err := RunWithSink(sp, sink); err != nil {
		t.Fatal(err)
	}
	if sink.calls != 1 {
		t.Fatalf("sink called %d times, want 1", sink.calls)
	}
	if !sink.keys["fluid_full_passes"] {
		t.Errorf("fluid sink map lacks fluid_full_passes: %v", sink.keys)
	}
}

// TestRunNilSinkIdentical pins that attaching a sink changes nothing about
// the result itself: Run and RunWithSink produce bit-identical metrics.
func TestRunNilSinkIdentical(t *testing.T) {
	sp := Spec{Kind: KindMicro, Scheme: "FNCC", DurationUs: 50}
	a, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWithSink(sp, &recordingSink{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash || len(a.Metrics) != len(b.Metrics) {
		t.Fatalf("result identity differs: %s/%d vs %s/%d", a.Hash, len(a.Metrics), b.Hash, len(b.Metrics))
	}
	// Wall-clock and allocation columns vary run to run on any host
	// (exp.PerfStats documents them as trend indicators); the modelled
	// and engine-count metrics must match exactly.
	hostDependent := map[string]bool{"engine_events_per_sec": true,
		"mallocs_per_run": true, "alloc_bytes_per_run": true}
	for k, v := range a.Metrics {
		if hostDependent[k] {
			continue
		}
		if math.Float64bits(v) != math.Float64bits(b.Metrics[k]) {
			t.Errorf("metric %s differs: %g vs %g", k, v, b.Metrics[k])
		}
	}
}
