package scenario

import (
	"encoding/json"
	"math"
	"testing"
)

// partitionDependent lists the metric keys that legitimately differ between
// the serial and the sharded executor: pool/slot hit rates depend on how the
// event and packet populations split across per-shard pools, the wall-clock
// and allocator counters are host noise, and the parallel_* keys exist only
// on sharded runs. Everything else — including the exact engine event count —
// must match bit-for-bit.
var partitionDependent = map[string]bool{
	"engine_events_per_sec": true,
	"event_reuse_rate":      true,
	"pool_hit_rate":         true,
	"mallocs_per_run":       true,
	"alloc_bytes_per_run":   true,
	"parallel_workers":      true,
	"parallel_shards":       true,
	"parallel_windows":      true,
	"cross_shard_messages":  true,
}

// diffResults demands bit-identical metrics and telemetry between a serial
// and a parallel run of the same spec.
func diffResults(t *testing.T, label string, serial, par *Result) {
	t.Helper()
	for k, sv := range serial.Metrics {
		if partitionDependent[k] {
			continue
		}
		pv, ok := par.Metrics[k]
		if !ok {
			t.Errorf("%s: metric %q missing from parallel run", label, k)
			continue
		}
		if math.Float64bits(sv) != math.Float64bits(pv) {
			t.Errorf("%s: %s diverged: serial %x (%v), parallel %x (%v)",
				label, k, sv, sv, pv, pv)
		}
	}
	for k := range par.Metrics {
		if !partitionDependent[k] {
			if _, ok := serial.Metrics[k]; !ok {
				t.Errorf("%s: parallel run grew metric %q", label, k)
			}
		}
	}
	// Telemetry series: JSON encoding of float64 is injective on bit
	// patterns (shortest round-trip representation), so byte equality here
	// is bit equality of every sample.
	sj, err := json.Marshal(serial.Telemetry)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	pj, err := json.Marshal(par.Telemetry)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if string(sj) != string(pj) {
		t.Errorf("%s: telemetry diverged:\nserial   %.200s...\nparallel %.200s...",
			label, sj, pj)
	}
}

// runPair executes sp serially and with the given worker count and diffs.
func runSerialParallelPair(t *testing.T, label string, sp Spec, workers int) {
	t.Helper()
	serial, err := Run(sp)
	if err != nil {
		t.Fatalf("%s serial: %v", label, err)
	}
	sp.Workers = workers
	par, err := Run(sp)
	if err != nil {
		t.Fatalf("%s workers=%d: %v", label, workers, err)
	}
	if workers > 1 {
		if par.Metrics["parallel_shards"] < 2 {
			t.Errorf("%s workers=%d: expected a sharded run, got parallel_shards=%v",
				label, workers, par.Metrics["parallel_shards"])
		}
	}
	diffResults(t, label, serial, par)
}

// differentialMatrix covers every packet kind, both topology families, both
// Poisson CDFs, oversubscription, telemetry probes and an explicit scheme
// override. Durations are trimmed versus the registry defaults so the full
// serial-vs-{2,4,8} matrix stays test-suite friendly; bit-identity is
// horizon-independent, and each point still crosses thousands of
// conservative windows.
var differentialMatrix = []struct {
	label string
	spec  Spec
}{
	{"micro", Spec{Kind: KindMicro, Scheme: "FNCC", DurationUs: 600}},
	{"micro-telemetry", Spec{Kind: KindMicro, Scheme: "FNCC", DurationUs: 500,
		Telemetry: &TelemetrySpec{IntervalUs: 5, Probes: []string{"queue", "switch", "host", "cc"}}}},
	{"hop-first", Spec{Kind: KindHop, Scheme: "FNCC", Hop: "first", DurationUs: 400}},
	{"hop-last", Spec{Kind: KindHop, Scheme: "FNCC", Hop: "last", DurationUs: 400}},
	{"fairness", Spec{Kind: KindFairness, Scheme: "FNCC",
		Workload: WorkloadSpec{StaggerUs: 300}}},
	{"incast", Spec{Kind: KindIncast, Scheme: "FNCC",
		Workload: WorkloadSpec{Fanout: 8, FlowBytes: 200_000}, DurationUs: 20_000}},
	{"fct-websearch", Spec{Kind: KindFCT, Scheme: "FNCC",
		Workload: WorkloadSpec{CDF: "websearch"}, DurationUs: 300}},
	{"fct-hadoop-telemetry", Spec{Kind: KindFCT, Scheme: "FNCC",
		Workload: WorkloadSpec{CDF: "hadoop"}, DurationUs: 150, Seed: 3,
		Telemetry: &TelemetrySpec{IntervalUs: 20, Probes: []string{"queue"}}}},
	{"oversub-websearch", Spec{Kind: KindFCT, Scheme: "FNCC",
		Topo:     TopoSpec{Oversub: 2},
		Workload: WorkloadSpec{CDF: "websearch"}, DurationUs: 300}},
	{"permutation", Spec{Kind: KindPermutation, Scheme: "FNCC",
		Workload: WorkloadSpec{FlowBytes: 64_000}, DurationUs: 10_000}},
	{"alltoall", Spec{Kind: KindAllToAll, Scheme: "FNCC",
		Workload: WorkloadSpec{FlowBytes: 20_000}, DurationUs: 10_000}},
	{"mixed", Spec{Kind: KindMixed, Scheme: "FNCC", DurationUs: 400}},
	{"micro-hpcc", Spec{Kind: KindMicro, Scheme: "HPCC",
		CC: map[string]float64{"eta": 0.9}, DurationUs: 500}},
}

// TestParallelMatchesSerial is the differential matrix from the parallel
// executor's acceptance bar: every packet scenario kind, serial vs 2/4/8
// workers, bit-exact metrics and telemetry. Worker count must never matter:
// the partition is fixed by the topology and the merge order is canonical.
func TestParallelMatchesSerial(t *testing.T) {
	workerCounts := []int{2, 4, 8}
	if testing.Short() {
		workerCounts = []int{4}
	}
	for _, tc := range differentialMatrix {
		tc := tc
		t.Run(tc.label, func(t *testing.T) {
			t.Parallel()
			for _, w := range workerCounts {
				runSerialParallelPair(t, tc.label, tc.spec, w)
			}
		})
	}
}

// TestWorkersHashNeutralForSerial pins the cache-identity contract of the
// workers knob: 0, 1 and absent are the same serial experiment and must
// share one hash; workers > 1 keys a distinct entry (its result carries the
// parallel_* metrics).
func TestWorkersHashNeutralForSerial(t *testing.T) {
	base := Spec{Kind: KindMicro, Scheme: "FNCC"}
	h := base.Hash()
	for _, w := range []int{0, 1} {
		sp := base
		sp.Workers = w
		if got := sp.Hash(); got != h {
			t.Errorf("workers=%d changed hash: %s vs %s", w, got, h)
		}
		if n := sp.Normalized(); n.Workers != 0 {
			t.Errorf("workers=%d survived normalization as %d", w, n.Workers)
		}
	}
	sp := base
	sp.Workers = 4
	if got := sp.Hash(); got == h {
		t.Errorf("workers=4 kept the serial hash %s", h)
	}
}

// TestWorkersValidation: the knob is packet-only and incompatible with the
// event flight recorder (the trace sink is not shard-aware).
func TestWorkersValidation(t *testing.T) {
	bad := []Spec{
		{Kind: KindMicro, Scheme: "FNCC", Workers: -1},
		{Kind: KindFCT, Scheme: "FNCC", Backend: BackendFluid, Workers: 4},
		{Kind: KindMicro, Scheme: "FNCC", Workers: 2,
			Telemetry: &TelemetrySpec{IntervalUs: 10, Probes: []string{"queue"}, TraceCap: 64}},
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("spec %d: expected validation error", i)
		}
	}
	ok := Spec{Kind: KindMicro, Scheme: "FNCC", Workers: 8,
		Telemetry: &TelemetrySpec{IntervalUs: 10, Probes: []string{"queue"}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("workers with trace-free telemetry should validate: %v", err)
	}
}

// FuzzParallelEquivalence searches for topology/workload/scheme corners
// where the sharded executor diverges from serial. Inputs are folded into
// small admissible scenarios; any divergence is a soundness bug in the
// conservative window protocol or the canonical merge order.
func FuzzParallelEquivalence(f *testing.F) {
	f.Add(uint8(0), uint8(2), uint8(2), uint16(200), uint8(0))
	f.Add(uint8(1), uint8(8), uint8(3), uint16(300), uint8(1))
	f.Add(uint8(2), uint8(3), uint8(5), uint16(150), uint8(2))
	f.Add(uint8(3), uint8(4), uint8(8), uint16(250), uint8(3))
	f.Fuzz(func(t *testing.T, kindSel, sizeSel, workers uint8, durUs uint16, schemeSel uint8) {
		w := 2 + int(workers)%7 // 2..8
		dur := 100 + int64(durUs)%400
		schemes := []string{"FNCC", "FNCC-noLHCS", "HPCC", "DCQCN"}
		scheme := schemes[int(schemeSel)%len(schemes)]
		var sp Spec
		switch kindSel % 4 {
		case 0: // chain, varying sender count
			sp = Spec{Kind: KindMicro, Scheme: scheme,
				Topo: TopoSpec{Senders: 2 + int(sizeSel)%5}, DurationUs: dur}
		case 1: // chain incast, varying fanout
			sp = Spec{Kind: KindIncast, Scheme: scheme,
				Workload:   WorkloadSpec{Fanout: 2 + int(sizeSel)%8, FlowBytes: 40_000},
				DurationUs: 10 * dur}
		case 2: // fat-tree shuffle
			sp = Spec{Kind: KindAllToAll, Scheme: scheme,
				Workload:   WorkloadSpec{FlowBytes: 5_000 + 1_000*int64(sizeSel%8)},
				DurationUs: 20 * dur}
		case 3: // fat-tree Poisson, varying seed
			sp = Spec{Kind: KindFCT, Scheme: scheme, Seed: 1 + int64(sizeSel),
				Workload: WorkloadSpec{CDF: "websearch"}, DurationUs: dur}
		}
		serial, err := Run(sp)
		if err != nil {
			t.Skip() // inadmissible corner (e.g. fanout vs hosts)
		}
		sp.Workers = w
		par, err := Run(sp)
		if err != nil {
			t.Fatalf("parallel run failed where serial succeeded: %v", err)
		}
		for k, sv := range serial.Metrics {
			if partitionDependent[k] {
				continue
			}
			if pv := par.Metrics[k]; math.Float64bits(sv) != math.Float64bits(pv) {
				t.Errorf("workers=%d %s/%s: %s diverged: serial %v, parallel %v",
					w, sp.Kind, scheme, k, sv, pv)
			}
		}
	})
}
