package scenario

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/exp"
)

// goldenSpec exercises every spec field.
func goldenSpec() Spec {
	return Spec{
		Name:       "golden",
		Kind:       KindFCT,
		Scheme:     "FNCC",
		CC:         map[string]float64{"alpha": 1.1, "eta": 0.9},
		Topo:       TopoSpec{K: 4, Oversub: 2},
		Workload:   WorkloadSpec{CDF: "websearch"},
		Load:       0.4,
		Seed:       7,
		DurationUs: 500,
		Collect:    []string{"slowdown_p99", "slowdown_avg"},
	}
}

// TestCanonicalGolden pins the canonical encoding and hash. These are the
// harness's cache keys: changing them silently invalidates every existing
// result cache, so a schema change must update this test deliberately.
func TestCanonicalGolden(t *testing.T) {
	const wantCanonical = `{"kind":"fct","scheme":"FNCC","cc":{"alpha":1.1,"eta":0.9},` +
		`"topo":{"kind":"fattree","k":4,"rate_gbps":100,"oversub":2,"delay_ns":1500},` +
		`"workload":{"cdf":"websearch"},"load":0.4,"seed":7,"duration_us":500,` +
		`"collect":["slowdown_avg","slowdown_p99"]}`
	const wantHash = "sc-9d255570be198529" // fncc-scenario-v2 epoch

	sp := goldenSpec()
	c, err := sp.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(c) != wantCanonical {
		t.Errorf("canonical encoding drifted:\n got %s\nwant %s", c, wantCanonical)
	}
	if h := sp.Hash(); h != wantHash {
		t.Errorf("hash drifted: got %s, want %s", h, wantHash)
	}
	// Hashing twice (map iteration, collect sorting) must be stable.
	if h2 := sp.Hash(); h2 != wantHash {
		t.Errorf("hash unstable across calls: %s", h2)
	}
}

// TestHashIgnoresName: renames must not invalidate cached results; any
// semantic change must.
func TestHashIgnoresName(t *testing.T) {
	a := goldenSpec()
	b := goldenSpec()
	b.Name = "renamed"
	if a.Hash() != b.Hash() {
		t.Error("hash depends on Name")
	}
	b = goldenSpec()
	b.Seed = 8
	if a.Hash() == b.Hash() {
		t.Error("hash ignores Seed")
	}
	// Defaults are part of the identity: an explicit paper default hashes
	// like the sparse spec.
	sparse := Spec{Kind: KindMicro, Scheme: "FNCC"}
	full := Spec{Kind: KindMicro, Scheme: "FNCC",
		Topo:       TopoSpec{Kind: "chain", Switches: 3, Senders: 2, RateGbps: 100, DelayNs: 1500},
		DurationUs: 1200}
	if sparse.Hash() != full.Hash() {
		t.Error("sparse and explicitly-defaulted specs hash differently")
	}
}

// TestSpecRoundTrip: JSON round-trips preserve the spec exactly.
func TestSpecRoundTrip(t *testing.T) {
	for _, e := range Builtin() {
		sp := e.Spec.Normalized()
		data, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("%s: marshal: %v", sp.Name, err)
		}
		back, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", sp.Name, err)
		}
		if !reflect.DeepEqual(sp, back) {
			t.Errorf("%s: round-trip drift:\n got %+v\nwant %+v", sp.Name, back, sp)
		}
		if sp.Hash() != back.Hash() {
			t.Errorf("%s: round-trip changed the hash", sp.Name)
		}
	}
}

// TestParseSpecRejectsUnknownFields: typos in spec files fail loudly.
func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec([]byte(`{"kind":"micro","scheme":"FNCC","topoo":{}}`))
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("unknown field accepted: %v", err)
	}
}

// TestRegistry: the built-ins cover every exp runner plus the new traffic
// patterns, and each entry validates.
func TestRegistry(t *testing.T) {
	entries := Builtin()
	if len(entries) < 8 {
		t.Fatalf("registry has %d entries, want >= 8", len(entries))
	}
	kinds := map[string]bool{}
	for _, e := range entries {
		if e.Spec.Name == "" || e.Desc == "" {
			t.Errorf("registry entry %+v missing name or description", e.Spec)
		}
		if err := e.Spec.Validate(); err != nil {
			t.Errorf("builtin %q invalid: %v", e.Spec.Name, err)
		}
		kinds[e.Spec.Kind] = true
		if _, err := Lookup(e.Spec.Name); err != nil {
			t.Errorf("Lookup(%q): %v", e.Spec.Name, err)
		}
	}
	for _, k := range Kinds() {
		if !kinds[k] {
			t.Errorf("no builtin scenario of kind %q", k)
		}
	}
	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Error("Lookup accepted an unknown name")
	}
}

// TestValidateRejects: each class of malformed spec is caught.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"unknown kind", func(s *Spec) { s.Kind = "nope" }},
		{"unknown scheme", func(s *Spec) { s.Scheme = "TCP" }},
		{"bad cc key", func(s *Spec) { s.CC = map[string]float64{"gamma": 1} }},
		{"cc on dcqcn", func(s *Spec) { s.Scheme = "DCQCN"; s.CC = map[string]float64{"alpha": 1} }},
		{"odd fat-tree", func(s *Spec) { s.Kind = KindFCT; s.Topo.K = 5 }},
		{"chain for fct", func(s *Spec) { s.Kind = KindFCT; s.Topo.Kind = "chain" }},
		{"bad load", func(s *Spec) { s.Kind = KindFCT; s.Load = 1.5 }},
		{"bad cdf", func(s *Spec) { s.Kind = KindFCT; s.Workload.CDF = "uniform" }},
		{"bad hop", func(s *Spec) { s.Kind = KindHop; s.Hop = "fourth" }},
		{"fanout 1", func(s *Spec) { s.Kind = KindIncast; s.Workload.Fanout = 1 }},
		{"negative duration", func(s *Spec) { s.DurationUs = -5 }},
		{"oversub below 1", func(s *Spec) { s.Kind = KindFCT; s.Topo.Oversub = 0.5 }},
		{"bad collect", func(s *Spec) { s.Collect = []string{"latency"} }},
		// Knobs the kind's runner ignores are rejected, not silently
		// dropped (they would mint a fresh cache key for the same run).
		{"seed on micro", func(s *Spec) { s.Seed = 1 }},
		{"load on micro", func(s *Spec) { s.Load = 0.5 }},
		{"hop on micro", func(s *Spec) { s.Hop = "last" }},
		{"cdf on incast", func(s *Spec) { s.Kind = KindIncast; s.Workload.CDF = "websearch" }},
		{"switches not 3", func(s *Spec) { s.Topo.Switches = 6 }},
		{"k on chain kind", func(s *Spec) { s.Topo.K = 4 }},
		{"delay on fct", func(s *Spec) { s.Kind = KindFCT; s.Topo.DelayNs = 5000 }},
		{"negative shift", func(s *Spec) { s.Kind = KindPermutation; s.Workload.Shift = -1 }},
		{"negative burst", func(s *Spec) { s.Kind = KindMixed; s.Workload.BurstEveryUs = -1 }},
		{"negative flow bytes", func(s *Spec) { s.Kind = KindIncast; s.Workload.FlowBytes = -1 }},
		{"duration on fairness", func(s *Spec) { s.Kind = KindFairness; s.DurationUs = 100 }},
		// Non-finite floats must be rejected here: json.Marshal cannot
		// encode them, so letting one through would panic in Hash.
		{"NaN load", func(s *Spec) { s.Kind = KindFCT; s.Load = math.NaN() }},
		{"NaN oversub", func(s *Spec) { s.Kind = KindFCT; s.Topo.Oversub = math.NaN() }},
		{"NaN cc override", func(s *Spec) { s.CC = map[string]float64{"alpha": math.NaN()} }},
		{"Inf cc override", func(s *Spec) { s.CC = map[string]float64{"beta": math.Inf(1)} }},
	}
	for _, tc := range cases {
		sp := Spec{Kind: KindMicro, Scheme: "FNCC"}
		tc.mut(&sp)
		if err := sp.Validate(); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
	}
	if err := (Spec{Kind: KindMicro, Scheme: "FNCC"}).Validate(); err != nil {
		t.Errorf("minimal valid spec rejected: %v", err)
	}
}

// TestBuildSchemeOverrides: overrides land in the built scheme and bad ones
// error.
func TestBuildSchemeOverrides(t *testing.T) {
	s, err := BuildScheme(exp.SchemeFNCC, map[string]float64{
		"alpha": 1.2, "beta": 0.8, "lhcs": 0, "eta": 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != exp.SchemeFNCC {
		t.Errorf("scheme name %q", s.Name)
	}
	if _, err := BuildScheme(exp.SchemeHPCC, map[string]float64{"eta": 0.9}); err != nil {
		t.Errorf("hpcc eta override: %v", err)
	}
	if _, err := BuildScheme(exp.SchemeHPCC, map[string]float64{"alpha": 1.1}); err == nil {
		t.Error("hpcc accepted an fncc-only override")
	}
	if _, err := BuildScheme(exp.SchemeRoCC, map[string]float64{"eta": 0.9}); err == nil {
		t.Error("rocc accepted overrides")
	}
}

// TestRunEveryKind executes one cheap scenario per kind end to end and
// checks the metrics each kind promises.
func TestRunEveryKind(t *testing.T) {
	cases := []struct {
		spec Spec
		want []string
	}{
		{Spec{Kind: KindMicro, Scheme: "FNCC", DurationUs: 600},
			[]string{"queue_peak_bytes", "mean_util", "first_slowdown_us"}},
		{Spec{Kind: KindHop, Scheme: "FNCC", Hop: "middle", DurationUs: 500},
			[]string{"queue_peak_bytes", "mean_util", "lhcs_triggers"}},
		{Spec{Kind: KindFairness, Scheme: "FNCC", Topo: TopoSpec{Senders: 2},
			Workload: WorkloadSpec{StaggerUs: 300}},
			[]string{"jain_all_active", "duration_us"}},
		{Spec{Kind: KindFCT, Scheme: "FNCC", Topo: TopoSpec{K: 4}, DurationUs: 300, Seed: 2},
			[]string{"completed", "generated", "slowdown_avg", "offered_load"}},
		{Spec{Kind: KindIncast, Scheme: "FNCC",
			Workload: WorkloadSpec{Fanout: 4, FlowBytes: 200_000}, DurationUs: 20_000},
			[]string{"queue_peak_bytes", "all_done_us", "jain_min"}},
		{Spec{Kind: KindPermutation, Scheme: "FNCC", Topo: TopoSpec{K: 4},
			Workload: WorkloadSpec{FlowBytes: 200_000}},
			[]string{"completed", "makespan_us", "slowdown_avg", "completed_all"}},
		{Spec{Kind: KindAllToAll, Scheme: "FNCC", Topo: TopoSpec{K: 2},
			Workload: WorkloadSpec{FlowBytes: 100_000}},
			[]string{"completed", "makespan_us", "slowdown_avg"}},
		{Spec{Kind: KindMixed, Scheme: "FNCC", Topo: TopoSpec{K: 4}, DurationUs: 600,
			Workload: WorkloadSpec{Fanout: 4, FlowBytes: 20_000, BurstEveryUs: 200}},
			[]string{"completed", "burst_flows", "slowdown_avg"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.spec.Kind, func(t *testing.T) {
			t.Parallel()
			res, err := Run(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.Hash != tc.spec.Hash() {
				t.Errorf("result hash %s != spec hash %s", res.Hash, tc.spec.Hash())
			}
			for _, m := range tc.want {
				if _, ok := res.Metrics[m]; !ok {
					t.Errorf("metric %q missing (have %v)", m, res.MetricNames())
				}
			}
			for m := range res.Metrics {
				if !knownMetrics[m] {
					t.Errorf("emitted metric %q not in knownMetrics", m)
				}
			}
		})
	}
}

// TestRunCollectFilters: Collect keeps only the requested metrics.
func TestRunCollectFilters(t *testing.T) {
	sp := Spec{Kind: KindMicro, Scheme: "FNCC", DurationUs: 400,
		Collect: []string{"queue_peak_bytes", "drops"}}
	res, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) != 2 {
		t.Fatalf("collect kept %v, want exactly queue_peak_bytes+drops", res.MetricNames())
	}
}

// TestPermutationCompletes: the pattern is admissible, so every flow must
// finish well before the deadline and the pattern must actually cross pods.
func TestPermutationCompletes(t *testing.T) {
	res, err := Run(Spec{Kind: KindPermutation, Scheme: "HPCC",
		Topo: TopoSpec{K: 4}, Workload: WorkloadSpec{FlowBytes: 100_000}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["completed_all"] != 1 {
		t.Error("permutation missed its deadline")
	}
	if res.Metrics["completed"] != 16 {
		t.Errorf("completed %v flows, want 16", res.Metrics["completed"])
	}
}
