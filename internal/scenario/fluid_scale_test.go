package scenario

import (
	"testing"
	"time"
)

// TestDatacenterFluidScenarioSpecs pins the identity of the two
// datacenter-scale fluid scenarios introduced with the incremental
// water-filling engine. The hashes are cache keys: if either drifts, every
// stored result for these scenarios is silently orphaned, so a schema or
// default change must update this test deliberately.
func TestDatacenterFluidScenarioSpecs(t *testing.T) {
	cases := []struct {
		name string
		k    int
		kind string
		hash string
	}{
		{"fct-websearch-fluid-k16", 16, KindFCT, "sc-bacbcc54285f9595"},
		{"permutation-fluid-k32", 32, KindPermutation, "sc-2f3451166865ffb4"},
	}
	for _, tc := range cases {
		sp, err := Lookup(tc.name)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := sp.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", tc.name, err)
		}
		n := sp.Normalized()
		if n.Backend != BackendFluid {
			t.Errorf("%s: backend %q, want fluid", tc.name, n.Backend)
		}
		if n.Kind != tc.kind || n.Topo.K != tc.k {
			t.Errorf("%s: kind %q k=%d, want %q k=%d", tc.name, n.Kind, n.Topo.K, tc.kind, tc.k)
		}
		if h := sp.Hash(); h != tc.hash {
			t.Errorf("%s: hash drifted: got %s, want %s", tc.name, h, tc.hash)
		}
	}
}

// TestFCTWebsearchFluidK16Interactive runs the 1024-host WebSearch point
// end to end on the incremental engine and checks both the result shape
// (flows complete, affected-fraction telemetry present and plausible) and
// that the run stays interactive. The wall-clock bound is deliberately
// loose for slow CI hosts; the README documents the ~sub-second local
// number.
func TestFCTWebsearchFluidK16Interactive(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-host scenario run")
	}
	sp, err := Lookup("fct-websearch-fluid-k16")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	t.Logf("k=16 websearch fluid run took %v (%v engine events)",
		elapsed, res.Metrics["engine_events"])
	if elapsed > 30*time.Second {
		t.Errorf("run took %v; the interactive-speed contract is broken", elapsed)
	}
	if res.Metrics["completed"] == 0 || res.Metrics["generated"] == 0 {
		t.Errorf("no flows ran: %+v", res.Metrics)
	}
	if res.Metrics["fluid_incremental_passes"] == 0 {
		t.Error("incremental engine never took the incremental path at k=16")
	}
	if res.Metrics["fluid_full_passes"]+res.Metrics["fluid_incremental_passes"] !=
		res.Metrics["engine_events"] {
		t.Errorf("pass accounting broken: full %v + incremental %v != events %v",
			res.Metrics["fluid_full_passes"], res.Metrics["fluid_incremental_passes"],
			res.Metrics["engine_events"])
	}
	if res.Metrics["fluid_flows_touched_per_event"] <= 0 {
		t.Error("affected-fraction telemetry missing from the metric map")
	}
}
