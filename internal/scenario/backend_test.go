package scenario

import (
	"strings"
	"testing"
)

// TestBackendValidation: the fluid backend is accepted exactly for the
// FCT-style kinds and rejected, with a pointer at the supported set, for
// the inherently packet-level ones.
func TestBackendValidation(t *testing.T) {
	fluidOK := map[string]bool{
		KindFCT: true, KindIncast: true, KindPermutation: true, KindAllToAll: true,
	}
	for _, kind := range Kinds() {
		sp := Spec{Kind: kind, Scheme: "FNCC", Backend: BackendFluid}
		err := sp.Validate()
		if fluidOK[kind] && err != nil {
			t.Errorf("kind %q rejects fluid: %v", kind, err)
		}
		if !fluidOK[kind] {
			if err == nil {
				t.Errorf("kind %q accepted the fluid backend", kind)
			} else if !strings.Contains(err.Error(), "packet-level") {
				t.Errorf("kind %q rejection does not explain itself: %v", kind, err)
			}
		}
	}
	// Explicit "packet" is the default spelled out.
	sp := Spec{Kind: KindMicro, Scheme: "FNCC", Backend: BackendPacket}
	if err := sp.Validate(); err != nil {
		t.Errorf("explicit packet backend rejected: %v", err)
	}
	sp.Backend = "quantum"
	if err := sp.Validate(); err == nil {
		t.Error("unknown backend accepted")
	}
}

// TestBackendHashing: "packet" normalizes to the zero value — the same
// canonical bytes and hash as before the Backend field existed, keeping old
// caches valid — while "fluid" mints a distinct identity.
func TestBackendHashing(t *testing.T) {
	base := Spec{Kind: KindFCT, Scheme: "FNCC"}
	packet := base
	packet.Backend = BackendPacket
	if got, want := packet.Hash(), base.Hash(); got != want {
		t.Errorf("explicit packet hash %s != default hash %s", got, want)
	}
	c, err := packet.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(c), "backend") {
		t.Errorf("packet backend leaks into the canonical encoding: %s", c)
	}
	fluidSp := base
	fluidSp.Backend = BackendFluid
	if fluidSp.Hash() == base.Hash() {
		t.Error("fluid and packet specs share a hash (cache poisoning)")
	}
	if c, _ := fluidSp.Canonical(); !strings.Contains(string(c), `"backend":"fluid"`) {
		t.Errorf("fluid backend missing from canonical encoding: %s", c)
	}
}

// TestBackendCCOverrides: fluid accepts only its own convergence knob;
// packet-level scheme parameters must fail loudly instead of being
// silently ignored.
func TestBackendCCOverrides(t *testing.T) {
	sp := Spec{Kind: KindFCT, Scheme: "FNCC", Backend: BackendFluid,
		CC: map[string]float64{FluidSchemeCCKey: 0}}
	if err := sp.Validate(); err != nil {
		t.Errorf("fluid_tau_rtts=0 (instant baseline) rejected: %v", err)
	}
	sp.CC = map[string]float64{"alpha": 1.1}
	if err := sp.Validate(); err == nil {
		t.Error("fluid backend accepted a packet-level cc override")
	}
	sp.CC = map[string]float64{FluidSchemeCCKey: -1}
	if err := sp.Validate(); err == nil {
		t.Error("negative fluid_tau_rtts accepted")
	}
	// The fluid knob is equally meaningless under packet.
	sp = Spec{Kind: KindFCT, Scheme: "FNCC", CC: map[string]float64{FluidSchemeCCKey: 1}}
	if err := sp.Validate(); err == nil {
		t.Error("packet backend accepted fluid_tau_rtts")
	}
}

// TestRunFluidKinds executes each fluid-capable kind end to end and checks
// the metric surface: FCT statistics present, queue/PFC counters absent
// (the model has no queues — emitting zeros would read as "measured, and
// zero").
func TestRunFluidKinds(t *testing.T) {
	cases := []struct {
		spec    Spec
		want    []string
		notWant []string
	}{
		{Spec{Kind: KindFCT, Scheme: "FNCC", Backend: BackendFluid,
			Topo: TopoSpec{K: 4}, DurationUs: 300, Seed: 2},
			[]string{"completed", "generated", "slowdown_avg", "offered_load"},
			[]string{"pause_frames", "drops"}},
		{Spec{Kind: KindIncast, Scheme: "FNCC", Backend: BackendFluid,
			Workload: WorkloadSpec{Fanout: 4, FlowBytes: 200_000}, DurationUs: 20_000},
			[]string{"all_done_us", "jain_min"},
			[]string{"queue_peak_bytes", "pause_frames"}},
		{Spec{Kind: KindPermutation, Scheme: "FNCC", Backend: BackendFluid,
			Topo: TopoSpec{K: 4}, Workload: WorkloadSpec{FlowBytes: 200_000}},
			[]string{"completed", "makespan_us", "slowdown_avg", "completed_all"},
			[]string{"pause_frames", "drops"}},
		{Spec{Kind: KindAllToAll, Scheme: "FNCC", Backend: BackendFluid,
			Topo: TopoSpec{K: 2}, Workload: WorkloadSpec{FlowBytes: 100_000}},
			[]string{"completed", "makespan_us", "slowdown_avg"},
			[]string{"pause_frames"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.spec.Kind, func(t *testing.T) {
			t.Parallel()
			res, err := Run(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range tc.want {
				if _, ok := res.Metrics[m]; !ok {
					t.Errorf("metric %q missing (have %v)", m, res.MetricNames())
				}
			}
			for _, m := range tc.notWant {
				if _, ok := res.Metrics[m]; ok {
					t.Errorf("fluid run emitted packet-level metric %q", m)
				}
			}
			for m := range res.Metrics {
				if !knownMetrics[m] {
					t.Errorf("emitted metric %q not in knownMetrics", m)
				}
			}
			if res.Metrics["completed"] != res.Metrics["generated"] &&
				tc.spec.Kind != KindIncast {
				t.Errorf("completed %v != generated %v",
					res.Metrics["completed"], res.Metrics["generated"])
			}
		})
	}
}

// TestFluidInstantBaselineBeatsLagged: on a contended scenario the
// idealized instant max-min baseline must finish no later than any lagged
// scheme — the sanity ordering that makes scheme comparisons on the fluid
// backend meaningful.
func TestFluidInstantBaselineBeatsLagged(t *testing.T) {
	base := Spec{Kind: KindIncast, Scheme: "DCQCN", Backend: BackendFluid,
		Workload: WorkloadSpec{Fanout: 8, FlowBytes: 500_000}, DurationUs: 50_000}
	lagged, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	instant := base
	instant.CC = map[string]float64{FluidSchemeCCKey: 0}
	ideal, err := Run(instant)
	if err != nil {
		t.Fatal(err)
	}
	li, ok1 := lagged.Metrics["all_done_us"]
	ii, ok2 := ideal.Metrics["all_done_us"]
	if !ok1 || !ok2 || li < 0 || ii < 0 {
		t.Fatalf("incast runs missed the deadline: lagged %v ideal %v", li, ii)
	}
	if ii > li {
		t.Errorf("instant baseline (%v us) slower than lagged DCQCN (%v us)", ii, li)
	}
}
