package scenario

// Fluid-backend runners: the same declarative kinds (fct, incast,
// permutation, alltoall) executed on the flow-level fluid approximation
// (internal/fluid) instead of the packet engine. Each runner offers the
// identical flow set — same workload generator, same seeds, same flow IDs
// (which drive ECMP placement) — so a fluid point is the fast companion of
// the packet point with the same spec hash modulo the backend field.

import (
	"fmt"

	"repro/internal/fluid"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// attachFluidProbe wires the spec's telemetry block (if any) to a fluid sim
// for a run spanning the given horizon. Must be called after every AddFlow:
// the probe snapshots the flow set at attach time.
func attachFluidProbe(s *fluid.Sim, sp Spec, span sim.Time) *telemetry.FluidProbe {
	cfg := sp.Telemetry.Config()
	if cfg == nil {
		return nil
	}
	return telemetry.AttachFluid(s, *cfg, telemetry.Samples(span, cfg.Interval))
}

// fluidProbeOutput extracts a fluid probe's output (nil-safe).
func fluidProbeOutput(tp *telemetry.FluidProbe) *telemetry.Output {
	if tp == nil {
		return nil
	}
	return tp.Output()
}

// fluidModel resolves the spec's rate-convergence model: the per-scheme
// calibration by default, or the explicit fluid_tau_rtts cc override
// (0 = idealized instant max-min).
func fluidModel(sp Spec, baseRTT sim.Time) (fluid.Model, error) {
	if v, ok := sp.CC[FluidSchemeCCKey]; ok {
		return fluid.Model{Tau: sim.Time(v * float64(baseRTT))}, nil
	}
	return fluid.ModelFor(sp.Scheme, baseRTT)
}

// fluidFatTree builds the spec's fat-tree as a fluid fabric.
func fluidFatTree(sp Spec) (*fluid.Fabric, error) {
	return fluid.NewFatTree(fluid.DefaultConfig(), fluid.FatTreeOpts{
		K: sp.Topo.K, RateBps: sp.Topo.RateBps(),
		CoreRateBps: sp.Topo.CoreRateBps(), Delay: sp.Topo.Delay(),
	})
}

// fluidPerfMetrics is the fluid analog of perfMetrics: events here are rate
// recomputations, not packet events, which is exactly why the backend is
// fast — report them under the same keys so sweeps compare throughput.
// The fluid_* columns expose the incremental engine's affected-fraction
// telemetry: how much of the fabric each event actually touched, and how
// often the worklist overran into a global pass.
func fluidPerfMetrics(m map[string]float64, st fluid.Stats) {
	m["engine_events"] = float64(st.Events)
	if st.WallSeconds > 0 {
		m["engine_events_per_sec"] = float64(st.Events) / st.WallSeconds
	}
	m["fluid_full_passes"] = float64(st.Recomputes)
	m["fluid_incremental_passes"] = float64(st.IncrementalPasses)
	if st.Events > 0 {
		ev := float64(st.Events)
		m["fluid_links_touched_per_event"] = float64(st.LinksTouched) / ev
		m["fluid_flows_touched_per_event"] = float64(st.FlowsTouched) / ev
		m["fluid_heap_invalidations_per_event"] = float64(st.HeapInvalidations) / ev
	}
}

// runFCTFluid is the fluid twin of runFCT: identical Poisson workload
// (same CDF, load, seed, horizon, flow IDs), FCT slowdowns from max-min
// rate sharing instead of per-packet simulation.
func runFCTFluid(sp Spec) (map[string]float64, *telemetry.Output, error) {
	fb, err := fluidFatTree(sp)
	if err != nil {
		return nil, nil, err
	}
	model, err := fluidModel(sp, fb.BaseRTT)
	if err != nil {
		return nil, nil, err
	}
	cdf, ok := workload.ByName(sp.Workload.CDF)
	if !ok {
		return nil, nil, fmt.Errorf("unknown workload CDF %q", sp.Workload.CDF)
	}
	horizon := sp.Duration()
	flows, err := workload.Generate(workload.GenConfig{
		Hosts:     fb.Hosts,
		AccessBps: sp.Topo.RateBps(),
		Load:      sp.Load,
		CDF:       cdf,
		Horizon:   horizon,
		Seed:      sp.Seed,
		FirstID:   1,
	})
	if err != nil {
		return nil, nil, err
	}
	s := fluid.NewSim(fb, model)
	for _, fs := range flows {
		if _, err := s.AddFlow(fs.ID, fs.SrcHost, fs.DstHost, fs.SizeBytes, fs.Start); err != nil {
			return nil, nil, err
		}
	}
	tp := attachFluidProbe(s, sp, horizon*11)
	res := s.Run(horizon * 11) // horizon + 10x drain, like exp.RunFCT
	m := map[string]float64{
		"completed":    float64(res.Completed),
		"generated":    float64(res.Generated),
		"offered_load": workload.OfferedLoad(flows, fb.Hosts, sp.Topo.RateBps(), horizon),
	}
	slowdownMetrics(m, res.FCT)
	fluidPerfMetrics(m, res.Stats)
	return m, fluidProbeOutput(tp), nil
}

// runIncastFluid is the fluid twin of runIncast: Fanout senders behind the
// last-hop switch of the 3-switch chain, one BytesPerSender flow each. The
// receiver access link is the single bottleneck; max-min shares it equally,
// so jain_min is 1 by construction (reported for table parity).
func runIncastFluid(sp Spec) (map[string]float64, *telemetry.Output, error) {
	attach := make([]int, sp.Workload.Fanout)
	for i := range attach {
		attach[i] = sp.Topo.Switches - 1
	}
	fb, err := fluid.NewChain(fluid.DefaultConfig(), fluid.ChainOpts{
		Switches:     sp.Topo.Switches,
		SenderAttach: attach,
		RateBps:      sp.Topo.RateBps(),
		Delay:        sp.Topo.Delay(),
	})
	if err != nil {
		return nil, nil, err
	}
	model, err := fluidModel(sp, fb.BaseRTT)
	if err != nil {
		return nil, nil, err
	}
	s := fluid.NewSim(fb, model)
	receiver := fb.Hosts - 1
	for i := 0; i < sp.Workload.Fanout; i++ {
		if _, err := s.AddFlow(uint64(i+1), i, receiver, sp.Workload.FlowBytes, 0); err != nil {
			return nil, nil, err
		}
	}
	tp := attachFluidProbe(s, sp, sp.Duration())
	res := s.Run(sp.Duration())
	m := map[string]float64{
		"all_done_us": -1,
		"jain_min":    1,
	}
	if res.Completed == res.Generated {
		m["all_done_us"] = timeUs(maxFinish(res))
	}
	fluidPerfMetrics(m, res.Stats)
	return m, fluidProbeOutput(tp), nil
}

// runPermutationFluid mirrors runPermutation's flow set exactly (IDs drive
// ECMP placement, so collisions land on the same fabric links as packet).
func runPermutationFluid(sp Spec) (map[string]float64, *telemetry.Output, error) {
	fb, err := fluidFatTree(sp)
	if err != nil {
		return nil, nil, err
	}
	model, err := fluidModel(sp, fb.BaseRTT)
	if err != nil {
		return nil, nil, err
	}
	hosts := fb.Hosts
	shift := sp.Workload.Shift
	if shift == 0 {
		shift = hosts / 2
	}
	if shift%hosts == 0 {
		return nil, nil, fmt.Errorf("permutation shift %d maps hosts to themselves", shift)
	}
	s := fluid.NewSim(fb, model)
	for i := 0; i < hosts; i++ {
		if _, err := s.AddFlow(uint64(i+1), i, (i+shift)%hosts, sp.Workload.FlowBytes, 0); err != nil {
			return nil, nil, err
		}
	}
	tp := attachFluidProbe(s, sp, sp.Duration())
	res := s.Run(sp.Duration())
	return fluidFabricMetrics(res), fluidProbeOutput(tp), nil
}

// runAllToAllFluid mirrors runAllToAll's shuffle flow set.
func runAllToAllFluid(sp Spec) (map[string]float64, *telemetry.Output, error) {
	fb, err := fluidFatTree(sp)
	if err != nil {
		return nil, nil, err
	}
	model, err := fluidModel(sp, fb.BaseRTT)
	if err != nil {
		return nil, nil, err
	}
	hosts := fb.Hosts
	s := fluid.NewSim(fb, model)
	id := uint64(1)
	for src := 0; src < hosts; src++ {
		for dst := 0; dst < hosts; dst++ {
			if dst == src {
				continue
			}
			if _, err := s.AddFlow(id, src, dst, sp.Workload.FlowBytes, 0); err != nil {
				return nil, nil, err
			}
			id++
		}
	}
	tp := attachFluidProbe(s, sp, sp.Duration())
	res := s.Run(sp.Duration())
	return fluidFabricMetrics(res), fluidProbeOutput(tp), nil
}

// fluidFabricMetrics folds a fluid pattern run into the flat metric map the
// packet patterns emit (minus the queue/PFC counters the model lacks).
func fluidFabricMetrics(res *fluid.Result) map[string]float64 {
	m := map[string]float64{
		"completed": float64(res.Completed),
		"generated": float64(res.Generated),
		"completed_all": func() float64 {
			if res.Completed == res.Generated {
				return 1
			}
			return 0
		}(),
		"makespan_us": timeUs(maxFinish(res)),
	}
	slowdownMetrics(m, res.FCT)
	fluidPerfMetrics(m, res.Stats)
	return m
}

// maxFinish returns the latest completion in the run (0 if none).
func maxFinish(res *fluid.Result) sim.Time {
	var last sim.Time
	for _, r := range res.FCT.Records {
		if r.Finish > last {
			last = r.Finish
		}
	}
	return last
}
