// Package scenario is the declarative front end of the simulator: a
// JSON-serializable Spec describes one experiment (topology, congestion-
// control scheme with parameter overrides, workload, load point, seed,
// duration and the metrics to collect), and Run executes it on the existing
// exp runners or on the pattern generators defined here. Specs normalize to
// a canonical encoding with a stable content hash, which is what the sweep
// harness (internal/harness) keys its result cache on. A registry of named
// built-in scenarios covers every figure runner plus traffic patterns the
// runners cannot express (permutation, all-to-all shuffle, oversubscribed
// fat-trees, mixed background+incast).
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Scenario kinds: which runner interprets the spec.
const (
	// KindMicro is the Fig 9 / Fig 1b-d dumbbell micro-benchmark.
	KindMicro = "micro"
	// KindHop is the Fig 13a-d hop-location study.
	KindHop = "hop"
	// KindFairness is the Fig 13e staggered join/leave experiment.
	KindFairness = "fairness"
	// KindFCT is the §5.5 fat-tree Poisson FCT experiment (Figs 14-15),
	// optionally with an oversubscribed core (Topo.Oversub > 1).
	KindFCT = "fct"
	// KindIncast is the N-to-1 last-hop burst of §3.2.2.
	KindIncast = "incast"
	// KindPermutation sends one fixed-size flow per host to the host a
	// constant shift away — an admissible pattern that loads every tier.
	KindPermutation = "permutation"
	// KindAllToAll is the shuffle: every host sends to every other host
	// simultaneously.
	KindAllToAll = "alltoall"
	// KindMixed layers periodic incast bursts over a Poisson background
	// workload on a fat-tree.
	KindMixed = "mixed"
)

// Kinds lists every runnable scenario kind in canonical order.
func Kinds() []string {
	return []string{KindMicro, KindHop, KindFairness, KindFCT, KindIncast,
		KindPermutation, KindAllToAll, KindMixed}
}

// chainKinds run on the dumbbell chain, fatTreeKinds on the fat-tree.
var (
	chainKinds   = map[string]bool{KindMicro: true, KindHop: true, KindFairness: true, KindIncast: true}
	fatTreeKinds = map[string]bool{KindFCT: true, KindPermutation: true, KindAllToAll: true, KindMixed: true}
)

// Simulation backends: which engine executes the spec.
const (
	// BackendPacket is the full per-packet event simulation (the default).
	BackendPacket = "packet"
	// BackendFluid is the flow-level max-min fluid approximation
	// (internal/fluid): milliseconds per point instead of minutes, FCT
	// metrics only. Supported for the FCT-style kinds; kinds whose metrics
	// are inherently packet-level (queues, PFC, pacing-rate timelines)
	// reject it at validation.
	BackendFluid = "fluid"
)

// Backends lists the simulation backends in canonical order.
func Backends() []string { return []string{BackendPacket, BackendFluid} }

// fluidKinds are the kinds the fluid backend can execute: their outputs are
// flow-completion statistics, which the fluid model approximates. The
// others measure queue dynamics, PFC or sub-RTT rate timelines that only
// the packet engine produces.
var fluidKinds = map[string]bool{
	KindFCT: true, KindIncast: true, KindPermutation: true, KindAllToAll: true,
}

// fluidKindNames lists the fluid-capable kinds in canonical kind order.
func fluidKindNames() []string {
	var out []string
	for _, k := range Kinds() {
		if fluidKinds[k] {
			out = append(out, k)
		}
	}
	return out
}

// FluidSchemeCCKey is the one cc override the fluid backend consumes: the
// rate-convergence time constant in units of the fabric base RTT (0 = the
// idealized instant max-min baseline). All packet-level scheme parameters
// are rejected under the fluid backend — it would silently ignore them.
const FluidSchemeCCKey = "fluid_tau_rtts"

// TopoSpec declares the fabric. Kind is derived from the scenario kind when
// empty ("chain" for micro/hop/fairness/incast, "fattree" for the rest).
type TopoSpec struct {
	// Kind is "chain" or "fattree".
	Kind string `json:"kind,omitempty"`
	// Switches is the chain length M (default 3).
	Switches int `json:"switches,omitempty"`
	// Senders is the chain sender count (micro/fairness; default per kind).
	Senders int `json:"senders,omitempty"`
	// K is the fat-tree arity (default per kind; k^3/4 hosts).
	K int `json:"k,omitempty"`
	// RateGbps is the uniform link rate in Gbit/s (default 100).
	RateGbps int64 `json:"rate_gbps,omitempty"`
	// Oversub oversubscribes the fat-tree core: agg-core links run at
	// RateGbps/Oversub. Zero or 1 keeps the paper's 1:1 fabric.
	Oversub float64 `json:"oversub,omitempty"`
	// DelayNs is the per-link propagation delay (default 1500).
	DelayNs int64 `json:"delay_ns,omitempty"`
}

// RateBps converts the declared link rate to bit/s.
func (t TopoSpec) RateBps() int64 { return t.RateGbps * 1e9 }

// CoreRateBps resolves the fat-tree aggregation-core link rate under the
// declared oversubscription; zero means 1:1 (the topo builder's default).
func (t TopoSpec) CoreRateBps() int64 {
	if t.Oversub > 1 {
		return int64(float64(t.RateBps()) / t.Oversub)
	}
	return 0
}

// Delay converts the declared propagation delay to simulation time.
func (t TopoSpec) Delay() sim.Time { return sim.Time(t.DelayNs) * sim.Nanosecond }

// WorkloadSpec declares the traffic the scenario offers.
type WorkloadSpec struct {
	// CDF names the flow-size distribution for Poisson kinds
	// ("websearch" | "hadoop").
	CDF string `json:"cdf,omitempty"`
	// FlowBytes is the per-flow transfer size for the fixed-size patterns
	// (incast, permutation, alltoall, mixed bursts).
	FlowBytes int64 `json:"flow_bytes,omitempty"`
	// Fanout is the incast width (incast, mixed bursts).
	Fanout int `json:"fanout,omitempty"`
	// Shift is the permutation destination offset; zero means hosts/2
	// (maximally cross-pod).
	Shift int `json:"shift,omitempty"`
	// StaggerUs is the fairness join/leave spacing in microseconds.
	StaggerUs int64 `json:"stagger_us,omitempty"`
	// BurstEveryUs is the mixed-kind incast period in microseconds.
	BurstEveryUs int64 `json:"burst_every_us,omitempty"`
}

// Spec is one declarative experiment. The zero values of most fields are
// filled by Normalized; Name is descriptive only and excluded from the
// content hash so renames never invalidate cached results.
type Spec struct {
	// Name labels the scenario in tables and the registry.
	Name string `json:"name,omitempty"`
	// Kind selects the runner (see Kinds).
	Kind string `json:"kind"`
	// Backend selects the simulation engine: "packet" (default, omitted
	// from the canonical encoding) or "fluid". The backend is part of the
	// content hash, so packet and fluid results never share a cache entry.
	Backend string `json:"backend,omitempty"`
	// Scheme is the congestion-control scheme under test (exp registry name).
	Scheme string `json:"scheme"`
	// CC overrides scheme parameters by name: alpha, beta, lhcs (0/1),
	// table_update_us (FNCC variants); eta, max_stage, wai_bytes,
	// min_wnd_bytes (FNCC variants and HPCC).
	CC map[string]float64 `json:"cc,omitempty"`
	// Topo declares the fabric.
	Topo TopoSpec `json:"topo"`
	// Workload declares the offered traffic.
	Workload WorkloadSpec `json:"workload"`
	// Load is the target average access-link load for Poisson kinds.
	Load float64 `json:"load,omitempty"`
	// Seed drives workload generation and fabric randomness.
	Seed int64 `json:"seed,omitempty"`
	// DurationUs bounds the run: observation window (micro/hop), arrival
	// horizon (fct/mixed) or completion deadline (incast/permutation/
	// alltoall). Fairness derives its span from StaggerUs instead.
	DurationUs int64 `json:"duration_us,omitempty"`
	// Hop is the congestion position for KindHop: first|middle|last.
	Hop string `json:"hop,omitempty"`
	// Collect filters the metrics kept in the Result; empty keeps all.
	Collect []string `json:"collect,omitempty"`
	// Telemetry opts the run into in-simulation probes and event tracing.
	// Nil (or an all-zero block) means off and normalizes away, so specs
	// without telemetry keep their pre-telemetry canonical encoding and
	// hash. A configured block is part of the content hash: sampled runs
	// never share a cache entry with unsampled ones.
	Telemetry *TelemetrySpec `json:"telemetry,omitempty"`
	// Workers selects the packet engine's execution mode: values > 1 run
	// the LP-sharded parallel executor (internal/netsim) with that many
	// worker goroutines; 0 or 1 run the classic serial engine. Parallel
	// runs are bit-identical to serial, so 0 and 1 normalize to the
	// omitted zero value and leave the canonical encoding — and therefore
	// the cache hash — unchanged. Workers > 1 does enter the hash: a
	// sharded run emits extra execution metrics (parallel_*), so it keeps
	// a distinct cache identity.
	Workers int `json:"workers,omitempty"`
}

// TelemetrySpec is the spec-level telemetry block (see internal/telemetry).
type TelemetrySpec struct {
	// IntervalUs is the sampling period in microseconds.
	IntervalUs int64 `json:"interval_us,omitempty"`
	// Probes selects the probe classes to sample; the backend's supported
	// set is enforced at validation (packet: queue, switch, host, cc;
	// fluid: rate, link).
	Probes []string `json:"probes,omitempty"`
	// TraceCap bounds the event flight-recorder (packet backend only).
	TraceCap int `json:"trace_cap,omitempty"`
}

// Config converts the block to the runtime telemetry configuration.
func (t *TelemetrySpec) Config() *telemetry.Config {
	if t == nil {
		return nil
	}
	return &telemetry.Config{
		Interval: sim.Time(t.IntervalUs) * sim.Microsecond,
		Probes:   t.Probes,
		TraceCap: t.TraceCap,
	}
}

// SupportedProbes returns the probe classes the spec's backend can sample
// (used by `fnccbench show` and telemetry validation).
func (s Spec) SupportedProbes() []string {
	if s.BackendName() == BackendFluid {
		return telemetry.FluidProbes()
	}
	return telemetry.PacketProbes()
}

// Duration converts DurationUs to simulation time.
func (s Spec) Duration() sim.Time { return sim.Time(s.DurationUs) * sim.Microsecond }

// BackendName resolves the effective backend: the zero value means packet.
func (s Spec) BackendName() string {
	if s.Backend == "" {
		return BackendPacket
	}
	return s.Backend
}

// Normalized returns a copy with every defaultable field filled, so specs
// that mean the same experiment encode (and hash) identically.
func (s Spec) Normalized() Spec {
	n := s
	if n.Backend == BackendPacket {
		n.Backend = "" // packet is the zero value: default specs keep
		// their pre-backend canonical encoding and hash, so existing
		// result caches stay valid.
	}
	if n.Workers == 1 {
		n.Workers = 0 // one worker is the serial engine: hash-neutral
	}
	if n.Topo.Kind == "" {
		if fatTreeKinds[n.Kind] {
			n.Topo.Kind = "fattree"
		} else {
			n.Topo.Kind = "chain"
		}
	}
	if n.Topo.RateGbps == 0 {
		n.Topo.RateGbps = 100
	}
	if n.Topo.DelayNs == 0 {
		n.Topo.DelayNs = 1500
	}
	if n.Topo.Oversub == 1 {
		n.Topo.Oversub = 0 // 1:1 is the zero value
	}
	if n.Topo.Kind == "chain" && n.Topo.Switches == 0 {
		n.Topo.Switches = 3
	}
	switch n.Kind {
	case KindMicro:
		defInt(&n.Topo.Senders, 2)
		defInt64(&n.DurationUs, 1200)
	case KindHop:
		defInt(&n.Topo.Senders, 2)
		defInt64(&n.DurationUs, 800)
		if n.Hop == "" {
			n.Hop = "last"
		}
	case KindFairness:
		defInt(&n.Topo.Senders, 4)
		defInt64(&n.Workload.StaggerUs, 1000)
	case KindFCT:
		defInt(&n.Topo.K, 8)
		defStr(&n.Workload.CDF, "websearch")
		defFloat(&n.Load, 0.5)
		defInt64(&n.DurationUs, 2000)
		defInt64(&n.Seed, 1)
	case KindIncast:
		defInt(&n.Workload.Fanout, 16)
		defInt64(&n.Workload.FlowBytes, 2<<20)
		defInt64(&n.DurationUs, 100_000)
	case KindPermutation:
		defInt(&n.Topo.K, 8)
		defInt64(&n.Workload.FlowBytes, 1<<20)
		defInt64(&n.DurationUs, 50_000)
	case KindAllToAll:
		defInt(&n.Topo.K, 4)
		defInt64(&n.Workload.FlowBytes, 100_000)
		defInt64(&n.DurationUs, 50_000)
	case KindMixed:
		defInt(&n.Topo.K, 4)
		defStr(&n.Workload.CDF, "websearch")
		defFloat(&n.Load, 0.3)
		defInt(&n.Workload.Fanout, 8)
		defInt64(&n.Workload.FlowBytes, 64_000)
		defInt64(&n.Workload.BurstEveryUs, 500)
		defInt64(&n.DurationUs, 2000)
		defInt64(&n.Seed, 1)
	}
	if len(n.Collect) > 0 {
		c := append([]string(nil), n.Collect...)
		sort.Strings(c)
		n.Collect = c
	}
	if n.Telemetry != nil {
		t := *n.Telemetry // deep copy: Normalized must not alias the input
		if len(t.Probes) > 0 {
			ps := append([]string(nil), t.Probes...)
			sort.Strings(ps)
			w := 0
			for i, p := range ps {
				if i == 0 || p != ps[i-1] {
					ps[w] = p
					w++
				}
			}
			t.Probes = ps[:w]
		}
		if t.IntervalUs == 0 && len(t.Probes) == 0 && t.TraceCap == 0 {
			n.Telemetry = nil // all-zero block == off: hash as if absent
		} else {
			n.Telemetry = &t
		}
	}
	return n
}

func defInt(p *int, v int) {
	if *p == 0 {
		*p = v
	}
}

func defInt64(p *int64, v int64) {
	if *p == 0 {
		*p = v
	}
}

func defFloat(p *float64, v float64) {
	if *p == 0 {
		*p = v
	}
}

func defStr(p *string, v string) {
	if *p == "" {
		*p = v
	}
}

// Validate checks a spec for runnability. It normalizes first, so callers
// may validate sparse specs.
func (s Spec) Validate() error {
	n := s.Normalized()
	kindOK := false
	for _, k := range Kinds() {
		if n.Kind == k {
			kindOK = true
			break
		}
	}
	if !kindOK {
		return fmt.Errorf("scenario: unknown kind %q (have %v)", n.Kind, Kinds())
	}
	switch n.Backend {
	case "": // packet (normalized zero value)
		if _, err := BuildScheme(n.Scheme, n.CC); err != nil {
			return err
		}
	case BackendFluid:
		if !fluidKinds[n.Kind] {
			return fmt.Errorf("scenario: kind %q is inherently packet-level; backend %q supports %v",
				n.Kind, BackendFluid, fluidKindNames())
		}
		// The scheme name must exist (it selects the convergence model),
		// but packet-level cc overrides are meaningless here and silently
		// ignoring them would mint a distinct cache identity for an
		// unchanged experiment.
		if _, err := BuildScheme(n.Scheme, nil); err != nil {
			return err
		}
		for k, v := range n.CC {
			if k != FluidSchemeCCKey {
				return fmt.Errorf("scenario: backend %q accepts only the %q cc override, got %q",
					BackendFluid, FluidSchemeCCKey, k)
			}
			if !(v >= 0) { // inverted so NaN fails
				return fmt.Errorf("scenario: %s = %v must be >= 0", FluidSchemeCCKey, v)
			}
		}
	default:
		return fmt.Errorf("scenario: unknown backend %q (have %v)", n.Backend, Backends())
	}
	switch n.Topo.Kind {
	case "chain":
		if !chainKinds[n.Kind] {
			return fmt.Errorf("scenario: kind %q needs a fattree topology", n.Kind)
		}
		if n.Topo.Switches < 1 {
			return fmt.Errorf("scenario: chain needs >= 1 switch")
		}
	case "fattree":
		if !fatTreeKinds[n.Kind] {
			return fmt.Errorf("scenario: kind %q needs a chain topology", n.Kind)
		}
		if n.Topo.K < 2 || n.Topo.K%2 != 0 {
			return fmt.Errorf("scenario: fat-tree arity %d must be even and >= 2", n.Topo.K)
		}
	default:
		return fmt.Errorf("scenario: unknown topology kind %q", n.Topo.Kind)
	}
	if n.Topo.RateGbps <= 0 {
		return fmt.Errorf("scenario: non-positive link rate %d Gbps", n.Topo.RateGbps)
	}
	// Inverted comparisons so NaN fails the check instead of slipping
	// through to a json.Marshal panic in Hash.
	if n.Topo.Oversub != 0 && !(n.Topo.Oversub >= 1) {
		return fmt.Errorf("scenario: oversubscription factor %v must be >= 1", n.Topo.Oversub)
	}
	for k, v := range n.CC {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("scenario: cc override %q = %v is not finite", k, v)
		}
	}
	if n.Kind == KindFCT || n.Kind == KindMixed {
		if !(n.Load > 0 && n.Load <= 1) {
			return fmt.Errorf("scenario: load %v out of (0,1]", n.Load)
		}
		if _, ok := workload.ByName(n.Workload.CDF); !ok {
			return fmt.Errorf("scenario: unknown workload CDF %q", n.Workload.CDF)
		}
	}
	if n.Kind == KindHop {
		switch n.Hop {
		case "first", "middle", "last":
		default:
			return fmt.Errorf("scenario: hop position %q not in first|middle|last", n.Hop)
		}
	}
	if (n.Kind == KindIncast || n.Kind == KindMixed) && n.Workload.Fanout < 2 {
		return fmt.Errorf("scenario: fanout %d must be >= 2", n.Workload.Fanout)
	}
	if n.Kind != KindFairness && n.DurationUs <= 0 {
		return fmt.Errorf("scenario: non-positive duration %dus", n.DurationUs)
	}
	if n.Kind == KindFairness && n.Workload.StaggerUs <= 0 {
		return fmt.Errorf("scenario: non-positive stagger %dus", n.Workload.StaggerUs)
	}
	for _, c := range n.Collect {
		if !knownMetrics[c] {
			return fmt.Errorf("scenario: unknown metric %q in collect", c)
		}
	}
	if n.Telemetry != nil {
		if err := n.Telemetry.Config().Validate(n.SupportedProbes()); err != nil {
			return fmt.Errorf("scenario: backend %q: %w", n.BackendName(), err)
		}
		if n.BackendName() == BackendFluid && n.Telemetry.TraceCap != 0 {
			return fmt.Errorf("scenario: event tracing is packet-level; backend %q rejects trace_cap",
				BackendFluid)
		}
	}
	if n.Workers < 0 {
		return fmt.Errorf("scenario: negative workers %d", n.Workers)
	}
	if n.Workers > 1 {
		if n.BackendName() == BackendFluid {
			return fmt.Errorf("scenario: workers selects the packet engine's parallel executor; backend %q rejects it",
				BackendFluid)
		}
		if n.Telemetry != nil && n.Telemetry.TraceCap != 0 {
			return fmt.Errorf("scenario: event tracing (trace_cap) is unsupported under the parallel executor (workers=%d)",
				n.Workers)
		}
	}
	return n.validateKnobUse()
}

// in reports whether kind is one of kinds.
func in(kind string, kinds ...string) bool {
	for _, k := range kinds {
		if kind == k {
			return true
		}
	}
	return false
}

// validateKnobUse rejects knobs the kind's runner does not consume. A spec
// claiming a fabric the simulation will not build must fail loudly: silently
// ignoring the field would both mislead the user and mint a fresh cache
// identity for an unchanged experiment. Runs on a normalized spec.
func (n Spec) validateKnobUse() error {
	ban := func(used bool, set bool, field string) error {
		if !used && set {
			return fmt.Errorf("scenario: kind %q does not use %s", n.Kind, field)
		}
		return nil
	}
	checks := []error{
		// Fabric randomness only feeds the fat-tree kinds (workload
		// generation and WRED); the chain runners are fully deterministic.
		ban(in(n.Kind, KindFCT, KindPermutation, KindAllToAll, KindMixed), n.Seed != 0, "seed"),
		ban(in(n.Kind, KindFCT, KindMixed), n.Load != 0, "load"),
		ban(n.Kind == KindHop, n.Hop != "", "hop"),
		ban(in(n.Kind, KindMicro, KindHop, KindFairness), n.Topo.Senders != 0, "topo.senders"),
		ban(fatTreeKinds[n.Kind], n.Topo.K != 0, "topo.k"),
		ban(chainKinds[n.Kind], n.Topo.Switches != 0, "topo.switches"),
		ban(fatTreeKinds[n.Kind], n.Topo.Oversub != 0, "topo.oversub"),
		ban(in(n.Kind, KindFCT, KindMixed), n.Workload.CDF != "", "workload.cdf"),
		ban(in(n.Kind, KindIncast, KindPermutation, KindAllToAll, KindMixed),
			n.Workload.FlowBytes != 0, "workload.flow_bytes"),
		ban(in(n.Kind, KindIncast, KindMixed), n.Workload.Fanout != 0, "workload.fanout"),
		ban(n.Kind == KindPermutation, n.Workload.Shift != 0, "workload.shift"),
		ban(n.Kind == KindFairness, n.Workload.StaggerUs != 0, "workload.stagger_us"),
		ban(n.Kind == KindMixed, n.Workload.BurstEveryUs != 0, "workload.burst_every_us"),
		ban(n.Kind != KindFairness, n.DurationUs != 0, "duration_us"),
	}
	for _, err := range checks {
		if err != nil {
			return err
		}
	}
	// Values the runners fix internally must match what will actually be
	// simulated.
	if chainKinds[n.Kind] && n.Topo.Switches != 3 {
		return fmt.Errorf("scenario: the chain runners fix topo.switches at 3, got %d", n.Topo.Switches)
	}
	if n.Kind == KindHop && n.Topo.Senders != 2 {
		return fmt.Errorf("scenario: the hop runner fixes topo.senders at 2, got %d", n.Topo.Senders)
	}
	if !in(n.Kind, KindPermutation, KindAllToAll, KindMixed) && n.Topo.DelayNs != 1500 {
		return fmt.Errorf("scenario: kind %q fixes topo.delay_ns at 1500, got %d", n.Kind, n.Topo.DelayNs)
	}
	// Positivity of the pattern knobs (defaults fill zeros, so anything
	// non-positive here was set explicitly).
	if in(n.Kind, KindIncast, KindPermutation, KindAllToAll, KindMixed) && n.Workload.FlowBytes <= 0 {
		return fmt.Errorf("scenario: non-positive flow_bytes %d", n.Workload.FlowBytes)
	}
	if n.Kind == KindPermutation && n.Workload.Shift < 0 {
		return fmt.Errorf("scenario: negative permutation shift %d", n.Workload.Shift)
	}
	if n.Kind == KindMixed && n.Workload.BurstEveryUs <= 0 {
		return fmt.Errorf("scenario: non-positive burst period %dus", n.Workload.BurstEveryUs)
	}
	if n.Seed < 0 {
		return fmt.Errorf("scenario: negative seed %d", n.Seed)
	}
	return nil
}

// Canonical returns the spec's canonical encoding: normalized, name
// stripped, compact JSON. Struct fields marshal in declaration order and
// map keys sort, so the bytes are deterministic across runs and platforms.
func (s Spec) Canonical() ([]byte, error) {
	n := s.Normalized()
	n.Name = ""
	return json.Marshal(n)
}

// cacheEpoch folds the simulator's behavioral version into every spec
// hash. Bump it whenever simulation semantics change (CC algorithms,
// topology wiring, workload generation, metric definitions) so stale
// harness caches invalidate instead of silently serving pre-change
// numbers.
//
// v2: the event engine adopted the canonical (at, schedAt, key, seq)
// collision order — simultaneous link deliveries fire in port-UID order
// instead of historical scheduling order (the invariant that makes the
// LP-sharded parallel executor bit-identical to serial). Collision
// instants are rare but real: one golden micro metric moved, so v1
// caches would serve stale numbers.
const cacheEpoch = "fncc-scenario-v2\n"

// Hash is the stable content hash of the canonical encoding (salted with
// cacheEpoch), the key the harness caches results under. Specs differing
// only by Name collide by design.
func (s Spec) Hash() string {
	b, err := s.Canonical()
	if err != nil {
		// Validate rejects non-finite floats, the only way a Spec can
		// fail to marshal.
		panic(fmt.Sprintf("scenario: canonical encoding failed: %v", err))
	}
	sum := sha256.Sum256(append([]byte(cacheEpoch), b...))
	return "sc-" + hex.EncodeToString(sum[:8])
}

// ParseSpec decodes a JSON spec, rejecting unknown fields so typos in spec
// files fail loudly instead of silently running defaults.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: bad spec: %w", err)
	}
	return s, nil
}
