package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzSpecRoundTrip: for any JSON that parses and validates, the canonical
// encoding must be a fixed point — decode → Validate → Canonical → decode →
// Canonical yields the same bytes, the same hash, and still validates.
// This is the invariant the harness cache rests on: if canonicalization
// were not idempotent, a spec could hash differently depending on whether
// it arrived from a user file or from a cached result's embedded spec.
func FuzzSpecRoundTrip(f *testing.F) {
	// Seed corpus: every registry scenario, both sparse (as registered) and
	// canonical (as cached), plus a kitchen-sink spec and some near-misses.
	for _, e := range Builtin() {
		sparse, err := e.Spec.Canonical()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(sparse)
		raw, err := json.Marshal(e.Spec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	g, err := goldenSpec().Canonical()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(g)
	f.Add([]byte(`{"kind":"incast","backend":"fluid","scheme":"FNCC"}`))
	f.Add([]byte(`{"kind":"fct","scheme":"HPCC","cc":{"eta":0.9},"topo":{"oversub":1}}`))
	f.Add([]byte(`{"kind":"hop","scheme":"DCQCN","hop":"middle"}`))
	f.Add([]byte(`{"kind":"fct","scheme":"FNCC","load":1e-3,"seed":9007199254740993}`))
	// Telemetry-bearing specs: packet probes, fluid probes, and a block that
	// needs normalization (duplicate probes) plus a trace cap.
	f.Add([]byte(`{"kind":"incast","scheme":"FNCC","telemetry":{"interval_us":10,"probes":["queue","host"]}}`))
	f.Add([]byte(`{"kind":"incast","backend":"fluid","scheme":"FNCC","telemetry":{"interval_us":50,"probes":["rate","link"]}}`))
	f.Add([]byte(`{"kind":"micro","scheme":"DCQCN","telemetry":{"interval_us":5,"probes":["cc","queue","cc"],"trace_cap":256}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := ParseSpec(data)
		if err != nil {
			return // malformed JSON / unknown fields: out of scope
		}
		if err := sp.Validate(); err != nil {
			return // invalid specs need not round-trip
		}
		c1, err := sp.Canonical()
		if err != nil {
			t.Fatalf("valid spec failed to canonicalize: %v\nspec: %s", err, data)
		}
		h1 := sp.Hash()

		sp2, err := ParseSpec(c1)
		if err != nil {
			t.Fatalf("canonical encoding does not re-parse: %v\ncanonical: %s", err, c1)
		}
		if err := sp2.Validate(); err != nil {
			t.Fatalf("canonical encoding does not re-validate: %v\ncanonical: %s", err, c1)
		}
		c2, err := sp2.Canonical()
		if err != nil {
			t.Fatalf("re-canonicalization failed: %v", err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonical encoding is not a fixed point:\n first: %s\nsecond: %s", c1, c2)
		}
		if h2 := sp2.Hash(); h2 != h1 {
			t.Fatalf("hash changed across canonical round-trip: %s -> %s", h1, h2)
		}
	})
}
