package fluid

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
)

// FatTreeOpts mirrors topo.FatTreeOpts: a three-level k-ary fat-tree with
// optional core oversubscription.
type FatTreeOpts struct {
	// K is the arity; k pods, (k/2)^2 cores, k^3/4 hosts. Even, >= 2.
	K int
	// RateBps is the access and edge-aggregation link rate.
	RateBps int64
	// CoreRateBps is the aggregation-core rate; zero means RateBps.
	CoreRateBps int64
	// Delay is the uniform propagation delay.
	Delay sim.Time
}

func (o FatTreeOpts) coreRate() int64 {
	if o.CoreRateBps > 0 {
		return o.CoreRateBps
	}
	return o.RateBps
}

// NewFatTree builds the fluid fat-tree fabric. Paths replicate the packet
// engine's routing exactly — same wiring, same symmetric ECMP hash over the
// same per-flow 5-tuple — so a given flow set collides on the same
// aggregation and core links under both backends. That shared placement is
// what lets small-scenario cross-validation compare like with like.
func NewFatTree(cfg Config, o FatTreeOpts) (*Fabric, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k := o.K
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("fluid: fat-tree arity %d must be even and >= 2", k)
	}
	if o.RateBps <= 0 {
		return nil, fmt.Errorf("fluid: non-positive link rate")
	}
	half := k / 2
	hosts := k * k * k / 4
	// Directed link layout, in blocks:
	//   [0,H)          host access up (host → edge)
	//   [H,2H)         host access down (edge → host)
	//   [2H, 2H+E)     edge→agg up, index (pod*half+e)*half + a
	//   [2H+E, 2H+2E)  agg→edge down, same (pod, e, a) indexing
	//   [2H+2E, +C)    agg→core up, index (pod*half+a)*half + j
	//   [.., +2C)      core→agg down, same (pod, a, j) indexing
	// where E = C = k * half * half.
	E := k * half * half
	base := struct{ upH, downH, upEA, downEA, upAC, downAC int }{
		0, hosts, 2 * hosts, 2*hosts + E, 2*hosts + 2*E, 2*hosts + 3*E,
	}
	links := make([]float64, 2*hosts+4*E)
	for i := 0; i < 2*hosts+2*E; i++ {
		links[i] = float64(o.RateBps)
	}
	for i := 2*hosts + 2*E; i < len(links); i++ {
		links[i] = float64(o.coreRate())
	}

	// BaseRTT mirrors topo.BuildFatTree: 6-link longest path.
	mtuTx := sim.TxTime(cfg.MTUBytes, o.RateBps)
	ackTx := sim.TxTime(packet.AckBaseBytes+5*packet.IntHopBytes, o.RateBps)
	baseRTT := 6 * (2*o.Delay + mtuTx + ackTx)

	podOf := func(h int) int { return h / (half * half) }
	edgeOf := func(h int) int { return (h % (half * half)) / half }

	fb := &Fabric{
		Cfg:       cfg,
		LinkBps:   links,
		Hosts:     hosts,
		AccessBps: o.RateBps,
		Delay:     o.Delay,
		BaseRTT:   baseRTT,
	}
	fb.route = func(id uint64, src, dst int) ([]int, error) {
		sp, se := podOf(src), edgeOf(src)
		dp, de := podOf(dst), edgeOf(dst)
		if sp == dp && se == de {
			return []int{base.upH + src, base.downH + dst}, nil
		}
		// The packet engine hashes the flow 5-tuple once per switch over
		// equal-cost sets of identical size (k/2), so every hop picks the
		// same index a. Tuple fields replicate netsim.AddFlow: host IDs as
		// addresses (the fat-tree builder numbers hosts 0..H-1 first) and
		// the RoCEv2 port pair.
		h := packet.SymmetricHash(packet.FiveTuple{
			SrcAddr: int32(src), DstAddr: int32(dst),
			SrcPort: uint16(49152 + id%16384), DstPort: 4791,
			Proto: 17,
		})
		a := int(h % uint64(half))
		if sp == dp {
			return []int{
				base.upH + src,
				base.upEA + (sp*half+se)*half + a,
				base.downEA + (sp*half+de)*half + a,
				base.downH + dst,
			}, nil
		}
		return []int{
			base.upH + src,
			base.upEA + (sp*half+se)*half + a,
			base.upAC + (sp*half+a)*half + a,
			base.downAC + (dp*half+a)*half + a,
			base.downEA + (dp*half+de)*half + a,
			base.downH + dst,
		}, nil
	}
	fb.pathLinks = func(src, dst int) int {
		if podOf(src) != podOf(dst) {
			return 6
		}
		if edgeOf(src) != edgeOf(dst) {
			return 4
		}
		return 2
	}
	return fb, nil
}
