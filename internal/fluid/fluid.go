// Package fluid is the flow-level fast-approximation backend: instead of
// simulating every packet, ACK and queue, it models each active flow at a
// continuous rate over a capacitated link graph. Rates are the global
// max-min fair allocation (progressive water-filling), recomputed on the
// only two events that can change them — a flow arriving or finishing — so
// a whole run costs O(flows) rate recomputations instead of O(packets)
// events. Per-scheme fidelity comes from a first-order convergence model: a
// scheme's rate does not jump to its new fair share but approaches it
// exponentially with a time constant calibrated per scheme (FNCC's fast
// notification converges in a fraction of an RTT, DCQCN's delayed CNP
// feedback takes tens). Completion times feed the same metrics.FCTCollector
// the packet engine uses, so slowdown tables are directly comparable.
//
// The model is deliberately blind to everything queue-level: no PFC, no
// ECN marks, no drops, no incast microbursts shorter than an RTT. Use it
// for sweep breadth (FCT trends over loads, sizes, schemes, topologies) and
// the packet engine for ground truth; internal/scenario cross-validates the
// two on small scenarios.
package fluid

import (
	"fmt"
	"sort"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Config carries the wire-format constants the fluid model shares with the
// packet engine, so byte-overhead accounting (and therefore ideal FCTs and
// slowdowns) match exactly.
type Config struct {
	// MTUBytes is the maximum frame size (paper: 1518).
	MTUBytes int
	// HeaderBytes is the per-segment framing overhead.
	HeaderBytes int
}

// DefaultConfig mirrors netsim.DefaultConfig's wire constants.
func DefaultConfig() Config {
	return Config{MTUBytes: 1518, HeaderBytes: packet.DataHeaderBytes}
}

// PayloadBytes is the application payload carried by a full-MTU segment.
func (c Config) PayloadBytes() int { return c.MTUBytes - c.HeaderBytes }

func (c Config) validate() error {
	if c.MTUBytes <= c.HeaderBytes {
		return fmt.Errorf("fluid: MTU %d does not fit %d-byte headers", c.MTUBytes, c.HeaderBytes)
	}
	return nil
}

// wireBytes expands an application transfer to on-the-wire bytes: payload
// plus per-segment framing, the same expansion the packet engine performs
// one frame at a time.
func (c Config) wireBytes(size int64) int64 {
	payload := int64(c.PayloadBytes())
	nPkts := (size + payload - 1) / payload
	return size + nPkts*int64(c.HeaderBytes)
}

// Model is a scheme's rate-convergence behavior in the fluid approximation.
type Model struct {
	// Tau is the first-order convergence time constant: after a fair-share
	// change a flow's rate closes the gap as 1-exp(-t/Tau). Zero means the
	// idealized instant max-min baseline.
	Tau sim.Time
}

// Instant is the idealized baseline: rates are always exactly max-min fair.
func Instant() Model { return Model{} }

// tauRTTs calibrates each congestion-control scheme's convergence lag in
// units of the fabric base RTT. The ordering is what matters (and what the
// packet engine reproduces): FNCC's switch-table fast notification reacts
// within a fraction of an RTT; ExpressPass credits settle in about one;
// HPCC's per-ACK INT takes a few; the delay-gradient and CNP-based schemes
// trail far behind.
var tauRTTs = map[string]float64{
	"FNCC":        0.5,
	"FNCC-noLHCS": 0.5,
	"ExpressPass": 1,
	"HPCC":        2,
	"Swift":       4,
	"Timely":      6,
	"RoCC":        8,
	"DCQCN":       25,
}

// ModelFor returns the named scheme's convergence model on a fabric with
// the given base RTT. Scheme names are the exp registry's.
func ModelFor(scheme string, baseRTT sim.Time) (Model, error) {
	rtts, ok := tauRTTs[scheme]
	if !ok {
		return Model{}, fmt.Errorf("fluid: no convergence model for scheme %q", scheme)
	}
	return Model{Tau: sim.Time(rtts * float64(baseRTT))}, nil
}

// Schemes lists the scheme names ModelFor accepts, sorted.
func Schemes() []string {
	out := make([]string, 0, len(tauRTTs))
	for name := range tauRTTs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
