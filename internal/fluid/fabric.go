package fluid

import (
	"fmt"

	"repro/internal/sim"
)

// Fabric is a capacitated directed-link graph plus the routing that maps a
// flow to the links it traverses. Builders (NewChain, NewFatTree) fill it;
// the Sim only ever sees link indices, so any topology reduces to the same
// water-filling problem.
type Fabric struct {
	Cfg Config
	// LinkBps is the capacity of each directed link in bit/s.
	LinkBps []float64
	// Hosts is the number of end hosts (flow endpoints are host indices).
	Hosts int
	// AccessBps is the uniform host access-link rate, the serialization
	// rate of the ideal (unloaded) FCT model.
	AccessBps int64
	// Delay is the uniform per-link propagation delay.
	Delay sim.Time
	// BaseRTT is the longest-path round-trip, the time base for Model taus.
	BaseRTT sim.Time

	// route returns the directed links flow id traverses from src to dst.
	// The flow id participates because ECMP fabrics hash it for path choice.
	route func(id uint64, src, dst int) ([]int, error)
	// pathLinks is the hop count between two hosts (for ideal FCT).
	pathLinks func(src, dst int) int
}

// PathLinks returns the link count between two hosts.
func (fb *Fabric) PathLinks(src, dst int) int { return fb.pathLinks(src, dst) }

// IdealFCT is the standalone completion time between two hosts: the wire
// volume serializes once at the access rate, the last segment then
// store-and-forwards across the remaining hops, and every link adds its
// propagation delay. The formula is identical to the packet topologies'
// (topo.idealFCT), so fluid and packet slowdowns share a denominator.
func (fb *Fabric) IdealFCT(src, dst int, size int64) sim.Time {
	links := fb.pathLinks(src, dst)
	payload := int64(fb.Cfg.PayloadBytes())
	nPkts := (size + payload - 1) / payload
	wire := size + nPkts*int64(fb.Cfg.HeaderBytes)
	lastPkt := size - (nPkts-1)*payload + int64(fb.Cfg.HeaderBytes)
	t := sim.TxTime(int(wire), fb.AccessBps)
	t += sim.Time(links-1) * sim.TxTime(int(lastPkt), fb.AccessBps)
	t += sim.Time(links) * fb.Delay
	return t
}

// latencyOffset is the non-serialization part of the ideal FCT: per-hop
// store-and-forward of the last segment plus propagation. The fluid
// transfer time models serialization at the fluid rate; adding this offset
// makes an uncontended fluid flow's FCT equal its ideal FCT exactly.
func (fb *Fabric) latencyOffset(src, dst int, size int64) sim.Time {
	links := fb.pathLinks(src, dst)
	payload := int64(fb.Cfg.PayloadBytes())
	nPkts := (size + payload - 1) / payload
	lastPkt := size - (nPkts-1)*payload + int64(fb.Cfg.HeaderBytes)
	return sim.Time(links-1)*sim.TxTime(int(lastPkt), fb.AccessBps) +
		sim.Time(links)*fb.Delay
}

func (fb *Fabric) checkHost(h int) error {
	if h < 0 || h >= fb.Hosts {
		return fmt.Errorf("fluid: host %d out of range [0,%d)", h, fb.Hosts)
	}
	return nil
}
