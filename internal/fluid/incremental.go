package fluid

import (
	"fmt"
	"math"
)

// linkState is the persistent per-link allocation state the incremental
// engine keeps alive across events (the old engine rebuilt occupant lists
// from scratch every pass).
type linkState struct {
	// flows holds the occupant flow indices (positions in Sim.flows).
	flows []int32
	// level is the link's water level: the fair share a flow bottlenecked
	// here receives. +Inf while the link is unsaturated or empty.
	level float64
	// queued marks the link as already sitting on the worklist.
	queued bool
}

// addOccupant registers flow fi on link l.
func (s *Sim) addOccupant(l int32, fi int32) {
	ls := &s.links[l]
	if len(ls.flows) == 0 {
		s.occupied++
	}
	ls.flows = append(ls.flows, fi)
}

// removeOccupant drops flow fi from link l by scan + swap-remove. Occupant
// lists are short (one link's concurrent flows, not the global active set),
// so the scan is cheap; the swap perturbs only iteration order, and every
// consumer of that order is order-independent in value (min/compare
// arithmetic and integer counts).
func (s *Sim) removeOccupant(l int32, fi int32) {
	ls := &s.links[l]
	for i, v := range ls.flows {
		if v == fi {
			last := len(ls.flows) - 1
			ls.flows[i] = ls.flows[last]
			ls.flows = ls.flows[:last]
			break
		}
	}
	if len(ls.flows) == 0 {
		s.occupied--
		ls.level = math.Inf(1)
	}
}

// enqueueLink pushes l onto the worklist unless it is already there.
func (s *Sim) enqueueLink(l int32) {
	if !s.links[l].queued {
		s.links[l].queued = true
		s.work = append(s.work, l)
	}
}

// clearWork empties the worklist, resetting the queued marks of any links
// still waiting (a full pass supersedes whatever relaxation was pending).
func (s *Sim) clearWork() {
	for _, l := range s.work {
		s.links[l].queued = false
	}
	s.work = s.work[:0]
}

// levelsClose reports whether two water levels (or flow targets) agree to
// within the propagation threshold (Sim.Tolerance). Levels within this
// relative distance are treated as unchanged, which is what stops
// relaxation waves from ringing on float noise — and, at coarse
// tolerances, what confines a wave to the links where the event's effect
// is material. At the default threshold the differential checker's much
// looser 1e-9 budget bounds the drift this can leave standing (the gap
// never compounds — each pass compares against the fresh solve).
func (s *Sim) levelsClose(a, b float64) bool {
	if a == b {
		return true // also covers +Inf == +Inf
	}
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return false
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := math.Abs(a)
	if bb := math.Abs(b); bb > m {
		m = bb
	}
	tol := s.Tolerance
	if tol == 0 {
		tol = 1e-12
	}
	return d <= tol*m
}

// solveLink computes link l's single-link water level given its occupants'
// constraints elsewhere: each occupant is capped by the minimum level of
// the other links on its path (its ceil), and the level L satisfies
// sum_i min(ceil_i, L) = capacity. Peeling solves this exactly: start from
// capacity/n, repeatedly move occupants whose ceil lies below the current
// candidate into the "remote" (capped) group, and redistribute what is
// left over the rest. The candidate only grows, so each occupant peels at
// most once. Returns +Inf when every occupant is capped below saturation.
func (s *Sim) solveLink(l int32) float64 {
	ls := &s.links[l]
	n := len(ls.flows)
	if n == 0 {
		return math.Inf(1)
	}
	ceil := s.ceil[:0]
	for _, fi := range ls.flows {
		f := s.flows[fi]
		c := math.Inf(1)
		for _, pl := range f.path {
			if int32(pl) == l {
				continue
			}
			if lv := s.links[pl].level; lv < c {
				c = lv
			}
		}
		ceil = append(ceil, c)
	}
	s.ceil = ceil

	capacity := s.fab.LinkBps[l]
	local := n
	sumRemote := 0.0
	L := capacity / float64(local)
	for {
		peeled := false
		for i, c := range ceil {
			if c < L {
				sumRemote += c
				local--
				ceil[i] = math.Inf(1) // consumed: never peels again
				peeled = true
			}
		}
		if !peeled {
			break
		}
		if local == 0 {
			return math.Inf(1) // all occupants capped elsewhere
		}
		L = (capacity - sumRemote) / float64(local)
	}
	return L
}

// pathMinLevel returns the minimum water level over f's path — the flow's
// max-min target once the levels have converged.
func (s *Sim) pathMinLevel(f *Flow) float64 {
	m := math.Inf(1)
	for _, l := range f.path {
		if lv := s.links[l].level; lv < m {
			m = lv
		}
	}
	return m
}

// pathCapMin is the last-resort placement level: the smallest raw link
// capacity on f's path.
func (s *Sim) pathCapMin(f *Flow) float64 {
	m := math.Inf(1)
	for _, l := range f.path {
		if c := s.fab.LinkBps[l]; c < m {
			m = c
		}
	}
	return m
}

// relax drains the worklist: pop a link, re-solve its water level from its
// occupants' constraints, and — when the level moved — retarget the
// occupants, re-queueing the other links of every flow whose target
// changed. That re-queue rule is the bottleneck-dependency closure: a
// link's solve depends on other links only through the ceils of shared
// flows, and (as DESIGN.md argues) a shared flow can change a neighbor's
// solve only when its own max-min target moved — so unchanged targets
// prune the wave. The work budget bounds pathological cascades: once
// relaxation has cost about as much as a global pass, it gives up and the
// caller falls back to fullPass (the abandoned partial state is harmless —
// the full pass rewrites every level and target).
func (s *Sim) relax(now float64) bool {
	budget := 128 + 4*len(s.active)
	units := 0
	for n := 0; n < len(s.work); n++ {
		l := s.work[n]
		ls := &s.links[l]
		ls.queued = false
		units += len(ls.flows) + 1
		if units > budget {
			for _, rest := range s.work[n+1:] {
				s.links[rest].queued = false
			}
			s.work = s.work[:0]
			return false
		}
		newL := s.solveLink(l)
		if s.levelsClose(ls.level, newL) {
			continue
		}
		ls.level = newL
		s.st.LinksTouched++
		for _, fi := range ls.flows {
			f := s.flows[fi]
			nt := s.pathMinLevel(f)
			if math.IsInf(nt, 1) {
				continue // defensive; a changed level leaves a finite path min
			}
			if f.rate >= 0 && s.levelsClose(f.target, nt) {
				continue
			}
			s.setTarget(f, nt, now)
			for _, pl := range f.path {
				if int32(pl) != l {
					s.enqueueLink(int32(pl))
				}
			}
		}
	}
	s.work = s.work[:0]
	return true
}

// fullPass recomputes the global max-min allocation by progressive filling
// over the persistent occupant lists, reseeding every occupied link's water
// level. It is the mass-arrival seed pass and the worklist-overrun
// fallback, and shares its core with the differential checker's reference
// solver.
func (s *Sim) fullPass(now float64) {
	s.clearWork()
	s.st.Recomputes++
	s.progressiveFill(
		func(l int32, level float64) { s.links[l].level = level },
		func(f *Flow, level float64) {
			if f.rate >= 0 && s.levelsClose(f.target, level) {
				return // untouched: keep the flow's lazy state and heap key
			}
			s.setTarget(f, level, now)
		},
	)
}

// progressiveFill runs one global water-filling pass over the persistent
// occupant lists: raise every unfrozen flow uniformly until some link
// saturates, freeze the flows crossing it at the current level, repeat.
// onLevel is called once per occupied link with its final level (the
// saturation level, or +Inf if the link never saturates); assign is called
// once per flow as it freezes. State mutation happens only through those
// callbacks plus the remaining/count/frozen scratch, which is what lets
// the differential checker replay a pass without touching live state.
func (s *Sim) progressiveFill(onLevel func(l int32, level float64), assign func(f *Flow, level float64)) {
	seed := s.seed[:0]
	for l := range s.links {
		if len(s.links[l].flows) == 0 {
			continue // empty links stay at +Inf (maintained on removal)
		}
		s.remaining[l] = s.fab.LinkBps[l]
		s.count[l] = len(s.links[l].flows)
		seed = append(seed, int32(l))
	}
	s.seed = seed
	live := append(s.live[:0], seed...)
	frozen := s.growFrozen(len(s.active))
	for i := range frozen {
		frozen[i] = false
	}
	unfrozen := len(s.active)
	level := 0.0
	for unfrozen > 0 {
		delta := math.Inf(1)
		w := 0
		for _, l := range live {
			if s.count[l] > 0 {
				live[w] = l
				w++
				if share := s.remaining[l] / float64(s.count[l]); share < delta {
					delta = share
				}
			}
		}
		live = live[:w]
		level += delta
		froze := false
		for _, l := range live {
			s.remaining[l] -= delta * float64(s.count[l])
		}
		for _, l := range live {
			// Saturated: capacity exhausted to within float noise.
			if s.remaining[l] > 1e-9*s.fab.LinkBps[l] {
				continue
			}
			onLevel(l, level)
			for _, fi := range s.links[l].flows {
				f := s.flows[fi]
				if frozen[f.actIdx] {
					continue
				}
				frozen[f.actIdx] = true
				assign(f, level)
				froze = true
				unfrozen--
				for _, pl := range f.path {
					s.count[pl]--
				}
			}
		}
		if !froze {
			break // numeric guard; delta selection should always freeze
		}
	}
	s.live = live
	// Occupied links that never saturated carry no constraint: level +Inf.
	// Also drain the count scratch back to all-zero for the next pass.
	for _, l := range seed {
		s.count[l] = 0
		if s.remaining[l] > 1e-9*s.fab.LinkBps[l] {
			onLevel(l, math.Inf(1))
		}
	}
	// Numeric-guard leftovers (should not happen): place any unfrozen flow
	// at its current path minimum so it never runs free.
	if unfrozen > 0 {
		for _, f := range s.active {
			if frozen[f.actIdx] {
				continue
			}
			nt := s.pathMinLevel(f)
			if math.IsInf(nt, 1) {
				if f.rate >= 0 {
					continue // keep the previous target
				}
				nt = s.pathCapMin(f)
			}
			assign(f, nt)
		}
	}
}

func (s *Sim) growFrozen(n int) []bool {
	if cap(s.checkF) < n {
		s.checkF = make([]bool, n)
	}
	s.checkF = s.checkF[:n]
	return s.checkF
}

// checkDifferential replays the just-processed event through the full-pass
// reference solver into scratch and panics if any active flow's incremental
// target strays beyond 1e-9 relative — the guard that keeps the worklist
// engine pinned to the progressive-filling fixed point. Enabled by
// Sim.Differential (tests and fuzzing only; it makes every event O(global)).
func (s *Sim) checkDifferential(now float64) {
	if cap(s.checkT) < len(s.active) {
		s.checkT = make([]float64, len(s.active))
	}
	want := s.checkT[:len(s.active)]
	for i, f := range s.active {
		want[i] = f.target // leftovers keep their incremental value
	}
	s.progressiveFill(
		func(l int32, level float64) {},
		func(f *Flow, level float64) { want[f.actIdx] = level },
	)
	for i, f := range s.active {
		w := want[i]
		d := math.Abs(f.target - w)
		if d > 1e-9*math.Max(math.Abs(w), 1) {
			panic(fmt.Sprintf(
				"fluid: differential check failed at t=%.9fs: flow %d incremental target %g, full-pass %g (rel %g)",
				now, f.ID, f.target, w, d/math.Max(math.Abs(w), 1)))
		}
	}
}
