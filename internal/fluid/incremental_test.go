package fluid

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// randomFlowSim builds a fluid sim over a k=4 fat-tree (or an 8-sender
// chain) loaded with n pseudo-random flows: mixed sizes, staggered starts,
// random host pairs. Deterministic per seed.
func randomFlowSim(t testing.TB, seed int64, n int, chain bool, model Model) *Sim {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var fb *Fabric
	var err error
	if chain {
		attach := make([]int, 8)
		for i := range attach {
			attach[i] = i % 3
		}
		fb, err = NewChain(DefaultConfig(), ChainOpts{
			Switches: 3, SenderAttach: attach, RateBps: 100e9, Delay: 1500 * sim.Nanosecond,
		})
	} else {
		fb, err = NewFatTree(DefaultConfig(), FatTreeOpts{K: 4, RateBps: 100e9, Delay: 1500 * sim.Nanosecond})
	}
	if err != nil {
		t.Fatal(err)
	}
	s := NewSim(fb, model)
	for i := 0; i < n; i++ {
		size := int64(1 + rng.Intn(1<<20))
		start := sim.Time(rng.Intn(200)) * sim.Microsecond
		var src, dst int
		if chain {
			src = rng.Intn(8)
			dst = 8 // the chain receiver
		} else {
			src = rng.Intn(fb.Hosts)
			dst = (src + 1 + rng.Intn(fb.Hosts-1)) % fb.Hosts
		}
		if _, err := s.AddFlow(uint64(i+1), src, dst, size, start); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestIncrementalMatchesFullPass runs mixed random workloads twice — once
// on the incremental engine with the differential checker armed (so every
// event is verified against the full-pass fixed point at 1e-9 relative),
// once with ForceFullPass — and then compares the recorded FCTs between
// the two engines.
func TestIncrementalMatchesFullPass(t *testing.T) {
	for _, tc := range []struct {
		name  string
		chain bool
		model Model
	}{
		{"fattree-instant", false, Instant()},
		{"fattree-lagged", false, Model{Tau: 20 * sim.Microsecond}},
		{"chain-instant", true, Instant()},
		{"chain-lagged", true, Model{Tau: 50 * sim.Microsecond}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inc := randomFlowSim(t, 42, 64, tc.chain, tc.model)
			inc.Differential = true
			ri := inc.Run(sim.Second)

			full := randomFlowSim(t, 42, 64, tc.chain, tc.model)
			full.ForceFullPass = true
			rf := full.Run(sim.Second)

			if ri.Completed != rf.Completed || ri.Completed != ri.Generated {
				t.Fatalf("completed %d (incremental) vs %d (full) of %d",
					ri.Completed, rf.Completed, ri.Generated)
			}
			ri.FCT.SortByStart()
			rf.FCT.SortByStart()
			for i := range ri.FCT.Records {
				a, b := ri.FCT.Records[i], rf.FCT.Records[i]
				if a.FlowID != b.FlowID {
					t.Fatalf("record %d: flow %d vs %d", i, a.FlowID, b.FlowID)
				}
				fa, fb := a.FCT().Seconds(), b.FCT().Seconds()
				if d := math.Abs(fa - fb); d > 1e-6*math.Max(fa, fb) {
					t.Errorf("flow %d: FCT %g (incremental) vs %g (full), rel %g",
						a.FlowID, fa, fb, d/math.Max(fa, fb))
				}
			}
			if ri.Stats.IncrementalPasses == 0 {
				t.Error("incremental run never took the incremental path")
			}
		})
	}
}

// TestStatsAccounting pins the pass bookkeeping: every event is either a
// full pass or an incremental pass, ForceFullPass makes them all full, and
// the affected-fraction counters move only on the incremental engine's
// actual work.
func TestStatsAccounting(t *testing.T) {
	inc := randomFlowSim(t, 7, 48, false, Instant())
	ri := inc.Run(sim.Second)
	if got := ri.Stats.Recomputes + ri.Stats.IncrementalPasses; got != ri.Stats.Events {
		t.Errorf("Recomputes %d + IncrementalPasses %d != Events %d",
			ri.Stats.Recomputes, ri.Stats.IncrementalPasses, ri.Stats.Events)
	}
	if ri.Stats.IncrementalPasses == 0 {
		t.Error("expected some incremental passes")
	}
	if ri.Stats.FlowsTouched == 0 || ri.Stats.HeapInvalidations == 0 {
		t.Errorf("affected-fraction counters did not move: %+v", ri.Stats)
	}

	full := randomFlowSim(t, 7, 48, false, Instant())
	full.ForceFullPass = true
	rf := full.Run(sim.Second)
	if rf.Stats.Recomputes != rf.Stats.Events || rf.Stats.IncrementalPasses != 0 {
		t.Errorf("ForceFullPass: Recomputes %d, IncrementalPasses %d, Events %d",
			rf.Stats.Recomputes, rf.Stats.IncrementalPasses, rf.Stats.Events)
	}
	if rf.Stats.LinksTouched != 0 {
		t.Errorf("full passes must not count incremental link touches, got %d", rf.Stats.LinksTouched)
	}
}

// TestRateAtLazyProfile: RateAt must evaluate the exponential profile at
// arbitrary instants without mutating state, matching RateBps at the
// settle point and the target in the far limit.
func TestRateAtLazyProfile(t *testing.T) {
	fb, err := NewChain(DefaultConfig(), ChainOpts{
		Switches: 3, SenderAttach: []int{0, 0}, RateBps: 100e9, Delay: 1500 * sim.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSim(fb, Model{Tau: 20 * sim.Microsecond})
	s.tau = s.model.Tau.Seconds()
	f, _ := s.AddFlow(1, 0, 2, 1<<20, 0)
	s.prepare()
	s.activate(f, 0)
	s.fullPass(0)
	f.rate = 2 * f.target // synthetic transient, decaying down
	at0 := s.RateAt(f, 0)
	if at0 != f.RateBps() {
		t.Errorf("RateAt(t0) %g != RateBps %g", at0, f.RateBps())
	}
	mid := s.RateAt(f, 20*sim.Microsecond)
	if !(mid < at0 && mid > f.TargetBps()) {
		t.Errorf("RateAt(tau) %g not between rate %g and target %g", mid, at0, f.TargetBps())
	}
	far := s.RateAt(f, sim.Second)
	if math.Abs(far-f.TargetBps()) > 1e-3*f.TargetBps() {
		t.Errorf("RateAt(inf) %g, want ~target %g", far, f.TargetBps())
	}
	if s.RateAt(f, 10*sim.Microsecond) != s.RateAt(f, 10*sim.Microsecond) {
		t.Error("RateAt mutated state")
	}
}

// TestLinkRateBpsOccupancy: LinkRateBps sums occupant rates off the
// persistent per-link state; a fully subscribed bottleneck reads exactly
// its capacity under instant convergence.
func TestLinkRateBpsOccupancy(t *testing.T) {
	const fanout = 8
	attach := make([]int, fanout)
	for i := range attach {
		attach[i] = 2
	}
	fb, err := NewChain(DefaultConfig(), ChainOpts{
		Switches: 3, SenderAttach: attach, RateBps: 100e9, Delay: 1500 * sim.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSim(fb, Instant())
	for i := 0; i < fanout; i++ {
		if _, err := s.AddFlow(uint64(i+1), i, fanout, 1<<20, 0); err != nil {
			t.Fatal(err)
		}
	}
	s.prepare()
	for _, f := range s.Flows() {
		s.activate(f, 0)
	}
	s.fullPass(0)
	recv := s.Flows()[0].Path()
	bottleneck := recv[len(recv)-1]
	if got := s.LinkRateBps(bottleneck, 0); got != 100e9 {
		t.Errorf("bottleneck occupancy %g, want exactly 100e9", got)
	}
}

// TestFinishHeapOrdering exercises the indexed heap directly: pops come
// out in (key, seq) order across pushes, key updates, and removals.
func TestFinishHeapOrdering(t *testing.T) {
	var h finishHeap
	mk := func(seq int32, key float64) *Flow {
		f := &Flow{seq: seq, key: key, heapIdx: -1}
		h.Push(f)
		return f
	}
	f3 := mk(3, 5)
	mk(1, 2)
	f2 := mk(2, 2)
	mk(0, 9)
	f3.key = 1
	h.Fix(int(f3.heapIdx))
	h.Remove(int(f2.heapIdx))
	if f2.heapIdx != -1 {
		t.Errorf("removed flow keeps heap index %d", f2.heapIdx)
	}
	var got []int32
	for h.Len() > 0 {
		top := h.Min()
		h.Remove(int(top.heapIdx))
		got = append(got, top.seq)
	}
	want := []int32{3, 1, 0} // key 1, then key 2 (seq 1), then key 9
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}
