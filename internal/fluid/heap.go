package fluid

// finishHeap is an indexed binary min-heap of the active flows ordered by
// (key, seq). A flow's key is an absolute predicted finish time: a cheap
// lower bound (now + remaining/max(rate, target)) when the flow's target
// last changed, promoted to the exact Newton solve only when the flow
// reaches the heap top and the bound actually matters (refineNextFinish).
// seq — position in the start-sorted flow list — breaks ties, so
// simultaneous finishes pop in arrival order, exactly the order the old
// linear scan over the active slice produced.
type finishHeap struct{ a []*Flow }

func (h *finishHeap) Len() int { return len(h.a) }

// Min returns the current minimum without removing it.
func (h *finishHeap) Min() *Flow { return h.a[0] }

func (h *finishHeap) less(i, j int) bool {
	if h.a[i].key != h.a[j].key {
		return h.a[i].key < h.a[j].key
	}
	return h.a[i].seq < h.a[j].seq
}

func (h *finishHeap) swap(i, j int) {
	h.a[i], h.a[j] = h.a[j], h.a[i]
	h.a[i].heapIdx = int32(i)
	h.a[j].heapIdx = int32(j)
}

// Push inserts f, recording its index in f.heapIdx.
func (h *finishHeap) Push(f *Flow) {
	f.heapIdx = int32(len(h.a))
	h.a = append(h.a, f)
	h.up(len(h.a) - 1)
}

// Remove deletes the flow at index i.
func (h *finishHeap) Remove(i int) {
	last := len(h.a) - 1
	f := h.a[i]
	if i != last {
		h.swap(i, last)
	}
	h.a = h.a[:last]
	f.heapIdx = -1
	if i < last {
		h.Fix(i)
	}
}

// Fix restores the heap invariant after the key at index i changed.
func (h *finishHeap) Fix(i int) {
	if !h.down(i) {
		h.up(i)
	}
}

func (h *finishHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *finishHeap) down(i int) bool {
	start := i
	n := len(h.a)
	for {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && h.less(r, kid) {
			kid = r
		}
		if !h.less(kid, i) {
			break
		}
		h.swap(i, kid)
		i = kid
	}
	return i > start
}
