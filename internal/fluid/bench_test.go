package fluid

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// largeActiveSim builds the datacenter-scale workload for the incremental
// benchmarks: a k=16 fat-tree (1024 hosts, 6144 links) carrying 50k+
// concurrent flows — a rack-local elephant floor arriving in one opening
// batch plus a stream of staggered cross-fabric mice whose arrivals and
// finishes are the events under measurement (datacenter traces put most
// bytes rack-local, with a latency-sensitive cross-fabric foreground).
// This is the regime incremental recomputation is built for: an event's
// level changes stay inside the racks it touches — racks couple only
// through the transient mice, whose per-hop amplitude decay (one shared
// flow in ~40 occupants) kills the wave below the precision contract
// within a hop — and the unsaturated aggregation/core layer does not
// carry levels across the fabric at all. Deterministic per the fixed seed.
func largeActiveSim(tb testing.TB) *Sim {
	tb.Helper()
	const (
		elephants = 50_000
		mice      = 1_024
		rackHosts = 8 // k/2 hosts per edge switch at k=16
	)
	fb, err := NewFatTree(DefaultConfig(), FatTreeOpts{
		K: 16, RateBps: 100e9, Delay: 1500 * sim.Nanosecond,
	})
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20240716))
	s := NewSim(fb, Instant())
	// Interactive-scale precision contract, identical for both engine
	// variants: rate changes below 0.1% relative do not propagate — far
	// below the fluid model's own 5-15% cross-validation error against the
	// packet engine. On a fabric this loaded the exact fixed point moves
	// globally by tiny amounts on every event; the contract is what makes
	// "affected" a local notion (see DESIGN.md).
	s.Tolerance = 1e-3
	id := uint64(1)
	add := func(src, dst int, size int64, start sim.Time) {
		if _, err := s.AddFlow(id, src, dst, size, start); err != nil {
			tb.Fatal(err)
		}
		id++
	}
	for i := 0; i < elephants; i++ {
		src := rng.Intn(fb.Hosts)
		rack := src - src%rackHosts
		dst := rack + (src-rack+1+rng.Intn(rackHosts-1))%rackHosts
		add(src, dst, int64(16<<20+rng.Intn(48<<20)), 0)
	}
	for i := 0; i < mice; i++ {
		src := rng.Intn(fb.Hosts)
		dst := (src + 1 + rng.Intn(fb.Hosts-1)) % fb.Hosts
		add(src, dst, int64(32<<10+rng.Intn(224<<10)), sim.Time(rng.Intn(500))*sim.Microsecond)
	}
	return s
}

const largeActiveDeadline = 3 * sim.Millisecond

// BenchmarkFluidLargeActive measures the incremental engine on the
// 50k-concurrent-flow point: every mouse arrival/finish relaxes only the
// bottleneck-dependency closure of its path instead of re-solving the
// global allocation.
func BenchmarkFluidLargeActive(b *testing.B) {
	benchLargeActive(b, false)
}

// BenchmarkFluidLargeActiveFullPass is the same workload with the
// incremental path disabled — the pre-incremental engine's cost model, and
// the denominator of the fluid_incremental_speedup CI ratio.
func BenchmarkFluidLargeActiveFullPass(b *testing.B) {
	benchLargeActive(b, true)
}

func benchLargeActive(b *testing.B, forceFull bool) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := largeActiveSim(b)
		s.ForceFullPass = forceFull
		b.StartTimer()
		res := s.Run(largeActiveDeadline)
		b.StopTimer()
		if res.Stats.MaxActive < 50_000 {
			b.Fatalf("max active %d, want >= 50000", res.Stats.MaxActive)
		}
		if res.Completed < 500 {
			b.Fatalf("only %d finishes; the bench must exercise steady-state events", res.Completed)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Stats.Events), "events")
			ev := float64(res.Stats.Events)
			b.ReportMetric(float64(res.Stats.FlowsTouched)/ev, "flows/event")
			if !forceFull {
				b.ReportMetric(float64(res.Stats.LinksTouched)/ev, "links/event")
			}
		}
		b.StartTimer()
	}
}
