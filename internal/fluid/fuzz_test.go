package fluid

import (
	"testing"

	"repro/internal/sim"
)

// FuzzIncrementalWaterfill drives random flow sets (sizes, starts, host
// pairs) over fat-tree and chain fabrics with the differential checker
// armed: every event's incremental targets are compared against the
// full-pass fixed point at 1e-9 relative, and any divergence panics. The
// fuzzer explores the seed/shape space; the checker is the oracle.
func FuzzIncrementalWaterfill(f *testing.F) {
	f.Add(int64(1), uint8(8), false, false)
	f.Add(int64(2), uint8(40), false, true)
	f.Add(int64(3), uint8(96), true, false)
	f.Add(int64(4), uint8(64), true, true)
	f.Add(int64(1<<40), uint8(255), false, true)

	f.Fuzz(func(t *testing.T, seed int64, n uint8, chain, lagged bool) {
		flows := 2 + int(n)%96
		model := Instant()
		if lagged {
			model = Model{Tau: 20 * sim.Microsecond}
		}
		s := randomFlowSim(t, seed, flows, chain, model)
		s.Differential = true
		res := s.Run(sim.Second)
		if res.Completed != res.Generated {
			t.Fatalf("only %d/%d flows completed within a generous deadline",
				res.Completed, res.Generated)
		}
		if got := res.Stats.Recomputes + res.Stats.IncrementalPasses; got != res.Stats.Events {
			t.Fatalf("pass accounting broken: %d full + %d incremental != %d events",
				res.Stats.Recomputes, res.Stats.IncrementalPasses, res.Stats.Events)
		}
	})
}
