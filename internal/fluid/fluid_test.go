package fluid

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// testFabric hand-builds a fabric over explicit links so max-min properties
// can be checked against closed forms, independent of topology builders.
func testFabric(linkBps []float64, routes map[[2]int][]int) *Fabric {
	fb := &Fabric{
		Cfg:       DefaultConfig(),
		LinkBps:   linkBps,
		Hosts:     8,
		AccessBps: 100e9,
		Delay:     1500 * sim.Nanosecond,
		BaseRTT:   13 * sim.Microsecond,
	}
	fb.route = func(id uint64, src, dst int) ([]int, error) {
		return routes[[2]int{src, dst}], nil
	}
	fb.pathLinks = func(src, dst int) int { return len(routes[[2]int{src, dst}]) }
	return fb
}

// TestWaterfillClassic pins the textbook max-min example: flow A on link 0
// (cap 1), flow B on links 0+1 (caps 1, 2), flow C on link 1. Progressive
// filling gives A=B=0.5 (link 0 bottleneck) and C=1.5 (link 1 remainder).
// Both solvers — the global full pass and the worklist relaxation from a
// cold start — must land on that fixed point.
func TestWaterfillClassic(t *testing.T) {
	build := func() (*Sim, [3]*Flow) {
		fb := testFabric([]float64{1, 2}, map[[2]int][]int{
			{0, 4}: {0}, {1, 5}: {0, 1}, {2, 6}: {1},
		})
		s := NewSim(fb, Instant())
		a, _ := s.AddFlow(1, 0, 4, 1000, 0)
		b, _ := s.AddFlow(2, 1, 5, 1000, 0)
		c, _ := s.AddFlow(3, 2, 6, 1000, 0)
		s.prepare()
		for _, f := range []*Flow{a, b, c} {
			s.activate(f, 0)
		}
		return s, [3]*Flow{a, b, c}
	}
	check := func(label string, fl [3]*Flow) {
		for i, want := range []float64{0.5, 0.5, 1.5} {
			if got := fl[i].target; math.Abs(got-want) > 1e-9 {
				t.Errorf("%s: flow %d target %g, want %g", label, fl[i].ID, got, want)
			}
		}
	}
	s, fl := build()
	s.fullPass(0)
	check("fullPass", fl)
	s, fl = build()
	if !s.relax(0) {
		t.Fatal("relax overran its budget on a three-flow network")
	}
	check("relax", fl)
}

// TestSingleFlowHitsIdeal: an uncontended fluid flow must complete in
// exactly its ideal FCT (slowdown 1), the calibration that anchors fluid
// slowdowns to the packet engine's denominator.
func TestSingleFlowHitsIdeal(t *testing.T) {
	fb, err := NewFatTree(DefaultConfig(), FatTreeOpts{K: 4, RateBps: 100e9, Delay: 1500 * sim.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int64{999, 100_000, 5 << 20} {
		s := NewSim(fb, Instant())
		if _, err := s.AddFlow(1, 0, 9, size, 0); err != nil {
			t.Fatal(err)
		}
		res := s.Run(sim.Second)
		if res.Completed != 1 {
			t.Fatalf("size %d: flow did not complete", size)
		}
		r := res.FCT.Records[0]
		got, want := r.FCT(), fb.IdealFCT(0, 9, size)
		// FromSeconds round-trips through float64 seconds: allow 1ns.
		if d := got - want; d < -sim.Nanosecond || d > sim.Nanosecond {
			t.Errorf("size %d: FCT %v, ideal %v", size, got, want)
		}
		if s := r.Slowdown(); s != 1 {
			t.Errorf("size %d: slowdown %g, want exactly 1", size, s)
		}
	}
}

// TestIncastSharesEqually: N chain senders behind one receiver link each
// get rate/N under instant max-min, so the burst completes in N times one
// flow's serialization plus the path latency.
func TestIncastSharesEqually(t *testing.T) {
	const fanout, size = 8, int64(1 << 20)
	attach := make([]int, fanout)
	for i := range attach {
		attach[i] = 2
	}
	fb, err := NewChain(DefaultConfig(), ChainOpts{
		Switches: 3, SenderAttach: attach, RateBps: 100e9, Delay: 1500 * sim.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSim(fb, Instant())
	for i := 0; i < fanout; i++ {
		if _, err := s.AddFlow(uint64(i+1), i, fanout, size, 0); err != nil {
			t.Fatal(err)
		}
	}
	res := s.Run(sim.Second)
	if res.Completed != fanout {
		t.Fatalf("completed %d/%d", res.Completed, fanout)
	}
	wire := fb.Cfg.wireBytes(size)
	serial := sim.FromSeconds(float64(fanout) * 8 * float64(wire) / 100e9)
	want := serial + fb.latencyOffset(0, fanout, size)
	for _, r := range res.FCT.Records {
		if d := r.FCT() - want; d < -10*sim.Nanosecond || d > 10*sim.Nanosecond {
			t.Errorf("flow %d FCT %v, want %v", r.FlowID, r.FCT(), want)
		}
	}
}

// TestConvergenceLagSlowsRampUp: with a finished flow freeing capacity, a
// laggy scheme ramps to the new share slowly, so the survivor's FCT must
// exceed the instant baseline's — and a larger tau must cost more.
func TestConvergenceLagSlowsRampUp(t *testing.T) {
	run := func(model Model) sim.Time {
		fb, err := NewChain(DefaultConfig(), ChainOpts{
			Switches: 3, SenderAttach: []int{0, 0}, RateBps: 100e9, Delay: 1500 * sim.Nanosecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		s := NewSim(fb, model)
		s.AddFlow(1, 0, 2, 4<<20, 0) // long flow
		s.AddFlow(2, 1, 2, 1<<20, 0) // short flow finishes first
		res := s.Run(sim.Second)
		if res.Completed != 2 {
			t.Fatal("flows did not complete")
		}
		for _, r := range res.FCT.Records {
			if r.FlowID == 1 {
				return r.FCT()
			}
		}
		t.Fatal("flow 1 missing")
		return 0
	}
	instant := run(Instant())
	fast := run(Model{Tau: 10 * sim.Microsecond})
	slow := run(Model{Tau: 200 * sim.Microsecond})
	if !(instant < fast && fast < slow) {
		t.Errorf("long-flow FCT ordering violated: instant %v, fast %v, slow %v", instant, fast, slow)
	}
}

// TestDeterminism: identical flow sets produce bit-identical records.
func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		fb, err := NewFatTree(DefaultConfig(), FatTreeOpts{K: 4, RateBps: 100e9, Delay: 1500 * sim.Nanosecond})
		if err != nil {
			t.Fatal(err)
		}
		s := NewSim(fb, Model{Tau: 20 * sim.Microsecond})
		for i := 0; i < 16; i++ {
			s.AddFlow(uint64(i+1), i, (i+5)%16, int64(50_000+i*7777), sim.Time(i)*sim.Microsecond)
		}
		res := s.Run(sim.Second)
		out := make([]float64, 0, res.Completed)
		res.FCT.SortByStart()
		for _, r := range res.FCT.Records {
			out = append(out, r.Slowdown())
		}
		return out
	}
	a, b := run(), run()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("completed %d/%d flows, want 16", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs across identical runs: %x vs %x", i, a[i], b[i])
		}
	}
}

// TestDeadline: flows that cannot finish by the deadline are not recorded
// and the run reports the shortfall.
func TestDeadline(t *testing.T) {
	fb, err := NewChain(DefaultConfig(), ChainOpts{
		Switches: 3, SenderAttach: []int{0, 0}, RateBps: 100e9, Delay: 1500 * sim.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSim(fb, Instant())
	s.AddFlow(1, 0, 2, 1<<30, 0) // ~86ms at shared 50G
	s.AddFlow(2, 1, 2, 1<<30, 0)
	res := s.Run(sim.Millisecond)
	if res.Completed != 0 || res.Generated != 2 {
		t.Errorf("completed %d/%d, want 0/2", res.Completed, res.Generated)
	}
}

// TestModelFor covers every scheme the exp registry exposes and pins the
// ordering that makes the lag model meaningful: FNCC's fast notification
// converges faster than HPCC's per-ACK INT, which beats DCQCN's CNPs.
func TestModelFor(t *testing.T) {
	const rtt = 13 * sim.Microsecond
	taus := map[string]sim.Time{}
	for _, name := range Schemes() {
		m, err := ModelFor(name, rtt)
		if err != nil {
			t.Fatalf("ModelFor(%q): %v", name, err)
		}
		if m.Tau <= 0 {
			t.Errorf("scheme %q has non-positive tau %v", name, m.Tau)
		}
		taus[name] = m.Tau
	}
	if !(taus["FNCC"] < taus["HPCC"] && taus["HPCC"] < taus["DCQCN"]) {
		t.Errorf("tau ordering violated: FNCC %v, HPCC %v, DCQCN %v",
			taus["FNCC"], taus["HPCC"], taus["DCQCN"])
	}
	if _, err := ModelFor("TCP", rtt); err == nil {
		t.Error("ModelFor accepted an unknown scheme")
	}
}

// TestFatTreeRouting: paths have the right length per host-pair locality,
// stay within link-index bounds, and never use a down link in the up
// direction (indices are block-structured, so block membership checks it).
func TestFatTreeRouting(t *testing.T) {
	const k = 4
	fb, err := NewFatTree(DefaultConfig(), FatTreeOpts{K: k, RateBps: 100e9, Delay: 1500 * sim.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	hosts := k * k * k / 4
	for src := 0; src < hosts; src++ {
		for dst := 0; dst < hosts; dst++ {
			if src == dst {
				continue
			}
			path, err := fb.route(uint64(src*hosts+dst+1), src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if len(path) != fb.PathLinks(src, dst) {
				t.Fatalf("%d->%d: path len %d, PathLinks %d", src, dst, len(path), fb.PathLinks(src, dst))
			}
			if path[0] != src {
				t.Fatalf("%d->%d: first link %d is not the source access link", src, dst, path[0])
			}
			if path[len(path)-1] != hosts+dst {
				t.Fatalf("%d->%d: last link %d is not the destination access link", src, dst, path[len(path)-1])
			}
			for _, l := range path {
				if l < 0 || l >= len(fb.LinkBps) {
					t.Fatalf("%d->%d: link %d out of range", src, dst, l)
				}
			}
		}
	}
}

// TestOversubscribedCore: a lone cross-pod flow is bottlenecked by the
// slowest link on its path, so with a 2:1 core its transfer rate must
// equal the core rate, not the access rate.
func TestOversubscribedCore(t *testing.T) {
	fb, err := NewFatTree(DefaultConfig(), FatTreeOpts{
		K: 4, RateBps: 100e9, CoreRateBps: 50e9, Delay: 1500 * sim.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const size = 10 << 20
	s := NewSim(fb, Instant())
	// Host 0 (pod 0) to host 15 (pod 3): 6-link cross-pod path.
	if _, err := s.AddFlow(1, 0, 15, size, 0); err != nil {
		t.Fatal(err)
	}
	res := s.Run(sim.Second)
	if res.Completed != 1 {
		t.Fatal("flow did not complete")
	}
	r := res.FCT.Records[0]
	transfer := r.FCT() - fb.latencyOffset(0, 15, size)
	wantSec := 8 * float64(fb.Cfg.wireBytes(size)) / 50e9
	if got := transfer.Seconds(); math.Abs(got-wantSec)/wantSec > 1e-6 {
		t.Errorf("cross-pod transfer %gs, want %gs (core-rate bound)", got, wantSec)
	}
}
