package fluid

import (
	"fmt"
	"math"
	"slices"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Flow is one fluid transfer. Rates evolve piecewise between events: at
// every arrival/finish the water-filling pass assigns each flow a new
// max-min target, and the flow's instantaneous rate decays toward it with
// the model's time constant.
//
// Flow state is lazy: remBits and rate are a snapshot at t0, the last time
// the flow's target changed. Flows untouched by an event are not advanced —
// the exponential profile integrates exactly over any span, so settling
// only on target changes loses nothing and turns the per-event cost from
// O(active) into O(affected).
type Flow struct {
	ID        uint64
	Src, Dst  int
	SizeBytes int64
	Start     sim.Time
	// Finish is the completion time (-1 if the deadline hit first).
	Finish sim.Time
	// Ideal is the unloaded-network FCT (slowdown denominator).
	Ideal sim.Time

	path    []int
	remBits float64 // remaining on-the-wire bits as of t0
	rate    float64 // instantaneous rate (bit/s) as of t0
	target  float64 // current max-min fair share (bit/s)
	t0      float64 // seconds; when remBits/rate were last settled
	offset  sim.Time

	seq        int32   // position in Sim.flows after the start-order sort
	actIdx     int32   // position in Sim.active (-1 when inactive)
	heapIdx    int32   // position in the finish heap (-1 when absent)
	key        float64 // heap key: absolute finish time (lower bound or exact)
	exact      bool    // key is the exact finish time, not just a lower bound
	placedPass int64   // pass that first placed the flow (see setTarget)
}

// Path returns the flow's resolved route as fabric link indices. Callers
// must not mutate the returned slice.
func (f *Flow) Path() []int { return f.path }

// RateBps returns the flow's instantaneous rate in bit/s as of the flow's
// last settle point (0 before the flow's first placement). For the rate at
// an arbitrary instant use Sim.RateAt, which evaluates the lazy profile.
func (f *Flow) RateBps() float64 {
	if f.rate < 0 {
		return 0 // sentinel: not yet placed by water-filling
	}
	return f.rate
}

// TargetBps returns the flow's current max-min fair share in bit/s.
func (f *Flow) TargetBps() float64 { return f.target }

// Stats is one run's fluid-engine telemetry. The affected-* totals
// (LinksTouched, FlowsTouched, HeapInvalidations) divide by Events to give
// the per-event affected fraction the incremental engine is built around.
type Stats struct {
	// Events counts arrival and finish events processed.
	Events int
	// Recomputes counts full water-filling passes: batch-arrival seeding
	// plus every worklist overrun that fell back to a global rebuild.
	// (Historically this was a synonym for Events; with the incremental
	// engine, Recomputes + IncrementalPasses == Events.)
	Recomputes int
	// IncrementalPasses counts events settled by worklist relaxation alone.
	IncrementalPasses int
	// MaxActive is the peak concurrent flow count.
	MaxActive int
	// LinksTouched totals links whose water level changed across all
	// incremental passes (full passes touch every occupied link and are
	// not counted here — Recomputes already measures them).
	LinksTouched int64
	// FlowsTouched totals flows whose max-min target changed in any pass.
	FlowsTouched int64
	// HeapInvalidations totals finish-heap key updates forced by target
	// changes (each one re-arms a lazy lower bound for later refinement).
	HeapInvalidations int64
	// WallSeconds is the host wall-clock time of Run.
	WallSeconds float64
}

// Result is one completed fluid run.
type Result struct {
	// FCT collects completed flows, directly comparable with the packet
	// engine's collector (same Ideal model, same Slowdown definition).
	FCT *metrics.FCTCollector
	// Completed / Generated track deadline success like the packet runners.
	Completed int
	Generated int
	Stats     Stats
}

// Sim accumulates flows and runs them to completion. Not safe for
// concurrent use; results are deterministic for a given flow set.
type Sim struct {
	fab   *Fabric
	model Model
	tau   float64 // model.Tau in seconds, cached for the run
	flows []*Flow

	// Persistent incremental water-filling state (alive across events).
	active   []*Flow
	links    []linkState
	occupied int     // links with at least one occupant
	work     []int32 // relaxation worklist (link indices)
	heap     finishHeap

	// Scratch (amortized, reused across passes).
	ceil      []float64 // solveLink
	remaining []float64 // progressiveFill
	count     []int     // progressiveFill
	seed      []int32   // progressiveFill: occupied-link list
	live      []int32   // progressiveFill: still-filling subset
	checkT    []float64 // differential checker targets
	checkF    []bool    // progressiveFill frozen flags

	st     *Stats // current run's stats (a throwaway before Run starts)
	passID int64  // identifies the current recompute pass

	// ForceFullPass disables incremental recomputation: every event runs a
	// global progressive-filling pass. This is the benchmark baseline
	// (BenchmarkFluidLargeActiveFullPass) and a bisection aid.
	ForceFullPass bool
	// Tolerance is the relative water-level change below which relaxation
	// does not propagate (0 means the 1e-12 default, which tracks the
	// full-pass fixed point to well under the differential checker's 1e-9
	// budget). Dense fabrics couple every link to every other within a few
	// sharing hops, so each event perturbs the exact fixed point globally
	// by a tiny amount; coarsening the tolerance (say 1e-6) confines the
	// relaxation wave to the links where the change is material, which is
	// the precision/locality trade-off that makes 50k-flow runs
	// interactive. Must stay at the default when Differential is set.
	Tolerance float64
	// Differential replays every pass through the full-pass solver and
	// panics if any incremental target strays beyond 1e-9 relative — the
	// correctness harness for the incremental engine (tests and fuzzing).
	Differential bool

	// Telemetry probe: when set, Run invokes probeFn at every multiple of
	// probeEvery as a first-class loop event. Sampling is read-only over
	// the lazy flow state (RateAt / LinkRateBps), so probing perturbs
	// nothing — not even float rounding.
	probeFn    func(now sim.Time, active []*Flow)
	probeEvery float64 // seconds
	nextProbe  float64 // seconds
}

// Fabric returns the fabric the simulation runs over.
func (s *Sim) Fabric() *Fabric { return s.fab }

// Flows returns every flow added so far (callers must not mutate).
func (s *Sim) Flows() []*Flow { return s.flows }

// SetProbe installs a sampling callback invoked at every multiple of the
// period during Run. Install before Run; a nil fn disables probing.
func (s *Sim) SetProbe(every sim.Time, fn func(now sim.Time, active []*Flow)) {
	if fn != nil && every <= 0 {
		panic(fmt.Sprintf("fluid: non-positive probe period %v", every))
	}
	s.probeFn = fn
	s.probeEvery = every.Seconds()
	s.nextProbe = s.probeEvery
}

// NewSim prepares a run over fab under the scheme convergence model.
func NewSim(fab *Fabric, model Model) *Sim {
	return &Sim{
		fab:       fab,
		model:     model,
		links:     newLinkStates(len(fab.LinkBps)),
		remaining: make([]float64, len(fab.LinkBps)),
		count:     make([]int, len(fab.LinkBps)),
		st:        &Stats{},
	}
}

func newLinkStates(n int) []linkState {
	ls := make([]linkState, n)
	for i := range ls {
		ls[i].level = math.Inf(1)
	}
	return ls
}

// AddFlow registers a transfer of size bytes from src to dst starting at
// start, resolving its route immediately.
func (s *Sim) AddFlow(id uint64, src, dst int, size int64, start sim.Time) (*Flow, error) {
	if err := s.fab.checkHost(src); err != nil {
		return nil, err
	}
	if err := s.fab.checkHost(dst); err != nil {
		return nil, err
	}
	if src == dst {
		return nil, fmt.Errorf("fluid: flow %d with src == dst", id)
	}
	if size <= 0 {
		return nil, fmt.Errorf("fluid: flow %d has non-positive size", id)
	}
	path, err := s.fab.route(id, src, dst)
	if err != nil {
		return nil, err
	}
	f := &Flow{
		ID: id, Src: src, Dst: dst, SizeBytes: size, Start: start,
		Finish:  -1,
		Ideal:   s.fab.IdealFCT(src, dst, size),
		path:    path,
		remBits: 8 * float64(s.fab.Cfg.wireBytes(size)),
		rate:    -1, // sentinel: placed at its first target
		offset:  s.fab.latencyOffset(src, dst, size),
		actIdx:  -1,
		heapIdx: -1,
	}
	s.flows = append(s.flows, f)
	return f, nil
}

// prepare sorts the flow list into event order (start time, then ID) and
// assigns each flow its stable sequence number — the deterministic
// tie-break the finish heap uses.
func (s *Sim) prepare() {
	slices.SortStableFunc(s.flows, func(a, b *Flow) int {
		if a.Start != b.Start {
			if a.Start < b.Start {
				return -1
			}
			return 1
		}
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
	for i, f := range s.flows {
		f.seq = int32(i)
	}
}

// Run executes the event loop until every flow finishes or the next event
// would pass the deadline, and reports whether all flows completed. Flow
// FCTs are the fluid transfer duration plus the per-path latency offset, so
// an uncontended flow completes in exactly its ideal FCT.
func (s *Sim) Run(deadline sim.Time) *Result {
	wall := time.Now()
	s.prepare()
	res := &Result{FCT: metrics.NewFCTCollector(), Generated: len(s.flows)}
	s.st = &res.Stats
	horizon := deadline.Seconds()
	s.tau = s.model.Tau.Seconds()

	next := 0
	t := 0.0
	for next < len(s.flows) || s.heap.Len() > 0 {
		ta := math.Inf(1)
		if next < len(s.flows) {
			ta = s.flows[next].Start.Seconds()
		}
		cutoff := ta
		if s.probeFn != nil && s.nextProbe < cutoff {
			cutoff = s.nextProbe
		}
		ff := s.refineNextFinish(cutoff)
		tf := math.Inf(1)
		if ff != nil {
			tf = ff.key
		}
		if s.probeFn != nil && s.nextProbe <= ta && s.nextProbe <= tf {
			if s.nextProbe > horizon {
				break
			}
			t = s.nextProbe
			s.probeFn(sim.FromSeconds(t), s.active)
			s.nextProbe += s.probeEvery
			continue
		}
		if ta <= tf {
			// Arrival first (ties prefer the arrival so the newcomer
			// competes for the remaining bytes of coincident finishers).
			if ta > horizon {
				break
			}
			t = ta
			first := next
			for next < len(s.flows) && s.flows[next].Start.Seconds() <= t {
				s.activate(s.flows[next], t)
				next++
			}
			s.recompute(t, s.flows[first:next])
		} else {
			if tf > horizon {
				break
			}
			t = tf
			s.finish(ff, t, res)
			s.recompute(t, nil)
		}
		res.Stats.Events++
		if len(s.active) > res.Stats.MaxActive {
			res.Stats.MaxActive = len(s.active)
		}
	}
	res.Stats.WallSeconds = time.Since(wall).Seconds()
	return res
}

// activate makes f active at time t: join the active set and the occupant
// list of every path link, seed those links into the worklist, and enter
// the finish heap (the coming pass assigns the real target and key).
func (s *Sim) activate(f *Flow, t float64) {
	f.actIdx = int32(len(s.active))
	s.active = append(s.active, f)
	f.t0 = t
	for _, l := range f.path {
		s.addOccupant(int32(l), f.seq)
		s.enqueueLink(int32(l))
	}
	f.key = t
	f.exact = false
	s.heap.Push(f)
}

// finish settles f exactly at its completion instant, records the FCT, and
// removes the flow from the active set (index-tracked swap-remove) and from
// its links' occupant lists, seeding the freed links into the worklist.
func (s *Sim) finish(f *Flow, t float64, res *Result) {
	s.settle(f, t)
	f.remBits = 0
	dur := sim.FromSeconds(t) - f.Start
	f.Finish = f.Start + dur + f.offset
	res.FCT.Record(metrics.FCTRecord{
		FlowID: f.ID, SizeBytes: f.SizeBytes,
		Start: f.Start, Finish: f.Finish, Ideal: f.Ideal,
	})
	res.Completed++
	s.heap.Remove(int(f.heapIdx))
	last := len(s.active) - 1
	moved := s.active[last]
	s.active[f.actIdx] = moved
	moved.actIdx = f.actIdx
	s.active = s.active[:last]
	f.actIdx = -1
	for _, l := range f.path {
		s.removeOccupant(int32(l), f.seq)
		s.enqueueLink(int32(l))
	}
}

// recompute brings the allocation to its new fixed point after an event.
// Small perturbations relax incrementally from the seeded worklist; mass
// arrivals (a worklist already covering a large share of the occupied
// links) and worklist overruns run a full progressive-filling pass. added
// holds the flows activated by this event, for the placement guard.
func (s *Sim) recompute(now float64, added []*Flow) {
	s.passID++
	switch {
	case s.ForceFullPass || len(s.work) > s.occupied/4+8:
		s.fullPass(now)
	case s.relax(now):
		s.st.IncrementalPasses++
	default:
		s.fullPass(now) // worklist overran its budget
	}
	// Placement guard: relaxation places an arriving flow as a side effect
	// of its links' level changes; if an arrival perturbed nothing beyond
	// the propagation threshold, place it at its path minimum directly.
	for _, f := range added {
		if f.rate < 0 {
			nt := s.pathMinLevel(f)
			if math.IsInf(nt, 1) {
				nt = s.pathCapMin(f)
			}
			s.setTarget(f, nt, now)
		}
	}
	if s.Differential {
		s.checkDifferential(now)
	}
}

// setTarget settles f at now under its old profile, installs the new
// max-min target, and re-arms the flow's finish-heap key with the cheap
// lower bound now + rem/max(rate, target) — the exact Newton solve is
// deferred until the flow reaches the heap top (refineNextFinish).
//
// A flow being placed for the first time starts at its fair share with no
// transient. Relaxation may walk a new flow through intermediate levels
// before the pass converges, so retargets within the placing pass move the
// rate with the target (the intermediate value was never a real rate the
// convergence model should decay from).
func (s *Sim) setTarget(f *Flow, nt, now float64) {
	switch {
	case f.rate < 0:
		f.target = nt
		f.rate = nt
		f.t0 = now
		f.placedPass = s.passID
	case f.placedPass == s.passID:
		f.target = nt
		f.rate = nt
	default:
		s.settle(f, now)
		f.target = nt
		if s.tau == 0 {
			f.rate = nt
		}
	}
	s.st.FlowsTouched++
	f.key = now + f.remBits/math.Max(f.rate, f.target)
	f.exact = false
	s.heap.Fix(int(f.heapIdx))
	s.st.HeapInvalidations++
}

// settle integrates f's rate profile from its last settle point to now:
// debit the delivered bits and move the instantaneous rate to the profile
// endpoint. The exponential integrates exactly over any span, so settling
// lazily (only on target changes and at finish) is loss-free.
func (s *Sim) settle(f *Flow, now float64) {
	dt := now - f.t0
	if dt > 0 {
		f.remBits -= deliver(f, dt, s.tau)
		if f.remBits < 0 {
			f.remBits = 0
		}
		if s.tau == 0 {
			f.rate = f.target
		} else {
			f.rate = f.target + (f.rate-f.target)*math.Exp(-dt/s.tau)
		}
	}
	f.t0 = now
}

// refineNextFinish narrows the finish heap's minimum to an exact time, but
// only as far as needed: refinement stops as soon as the heap minimum — a
// lower bound on every future finish — is at or past cutoff (the next
// arrival or probe instant). This is the lazy lower-bound prune that used
// to live in the linear nextFinish scan, moved into the heap key. Returns
// nil when no finish can precede cutoff (ties go to the cutoff event,
// matching the old scan's arrival/probe-wins semantics).
func (s *Sim) refineNextFinish(cutoff float64) *Flow {
	for s.heap.Len() > 0 {
		top := s.heap.Min()
		if top.exact {
			return top
		}
		if top.key >= cutoff {
			return nil
		}
		top.key = top.t0 + solveFinish(top, s.tau)
		top.exact = true
		s.heap.Fix(int(top.heapIdx))
	}
	return nil
}

// RateAt evaluates f's instantaneous rate at now from the lazy profile
// without mutating any state (0 before the flow's first placement). now
// must not precede the flow's last settle point.
func (s *Sim) RateAt(f *Flow, now sim.Time) float64 {
	if f.rate < 0 {
		return 0
	}
	dt := now.Seconds() - f.t0
	if dt <= 0 || s.tau == 0 || f.rate == f.target {
		return f.rate
	}
	return f.target + (f.rate-f.target)*math.Exp(-dt/s.tau)
}

// LinkRateBps sums the instantaneous rates of link l's occupants at now —
// the persistent occupant set makes this O(occupants of l) instead of a
// scan of every active flow's path.
func (s *Sim) LinkRateBps(l int, now sim.Time) float64 {
	sum := 0.0
	for _, fi := range s.links[l].flows {
		sum += s.RateAt(s.flows[fi], now)
	}
	return sum
}

// deliver integrates a flow's rate profile over dt seconds: the rate decays
// exponentially from f.rate toward f.target, so the delivered volume is
// target*dt plus the transient's area (rate-target)*tau*(1-exp(-dt/tau)).
func deliver(f *Flow, dt, tau float64) float64 {
	if tau == 0 || f.rate == f.target {
		return f.target * dt
	}
	return f.target*dt + (f.rate-f.target)*tau*(1-math.Exp(-dt/tau))
}

// solveFinish inverts the delivered-volume integral for the time at which
// the flow's remaining bits hit zero (as a delta from the flow's settle
// point t0). The integrand (the instantaneous rate) always lies between
// min(rate, target) and max(rate, target) and both are positive, so the
// root is bracketed by rem/max and rem/min; Newton steps (the derivative
// is the rate, one shared Exp per iteration) converge quadratically, with
// bisection as the in-bracket safeguard.
func solveFinish(f *Flow, tau float64) float64 {
	if f.remBits <= 0 {
		return 0
	}
	if tau == 0 || f.rate == f.target {
		return f.remBits / f.target
	}
	lo := f.remBits / math.Max(f.rate, f.target)
	hi := f.remBits / math.Min(f.rate, f.target)
	dt := lo
	for i := 0; i < 64 && hi-lo > 1e-13*hi; i++ {
		e := math.Exp(-dt / tau)
		g := f.target*dt + (f.rate-f.target)*tau*(1-e) - f.remBits
		if g < 0 {
			lo = dt
		} else {
			hi = dt
		}
		rate := f.target + (f.rate-f.target)*e // = deliver'(dt), > 0
		next := dt - g/rate
		if !(next > lo && next < hi) {
			next = 0.5 * (lo + hi)
		}
		dt = next
	}
	return hi
}
