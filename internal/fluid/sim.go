package fluid

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Flow is one fluid transfer. Rates evolve piecewise between events: at
// every arrival/finish the water-filling pass assigns each flow a new
// max-min target, and the flow's instantaneous rate decays toward it with
// the model's time constant.
type Flow struct {
	ID        uint64
	Src, Dst  int
	SizeBytes int64
	Start     sim.Time
	// Finish is the completion time (-1 if the deadline hit first).
	Finish sim.Time
	// Ideal is the unloaded-network FCT (slowdown denominator).
	Ideal sim.Time

	path    []int
	remBits float64 // remaining on-the-wire bits
	rate    float64 // instantaneous rate (bit/s) at time t0
	target  float64 // current max-min fair share (bit/s)
	frozen  bool    // water-filling scratch
	offset  sim.Time
}

// Path returns the flow's resolved route as fabric link indices. Callers
// must not mutate the returned slice.
func (f *Flow) Path() []int { return f.path }

// RateBps returns the flow's instantaneous rate in bit/s as of the last
// event the simulation advanced to (0 before the flow's first placement).
func (f *Flow) RateBps() float64 {
	if f.rate < 0 {
		return 0 // sentinel: not yet placed by water-filling
	}
	return f.rate
}

// TargetBps returns the flow's current max-min fair share in bit/s.
func (f *Flow) TargetBps() float64 { return f.target }

// Stats is one run's fluid-engine telemetry.
type Stats struct {
	// Events counts arrival and finish events processed.
	Events int
	// Recomputes counts water-filling passes (== Events).
	Recomputes int
	// MaxActive is the peak concurrent flow count.
	MaxActive int
	// WallSeconds is the host wall-clock time of Run.
	WallSeconds float64
}

// Result is one completed fluid run.
type Result struct {
	// FCT collects completed flows, directly comparable with the packet
	// engine's collector (same Ideal model, same Slowdown definition).
	FCT *metrics.FCTCollector
	// Completed / Generated track deadline success like the packet runners.
	Completed int
	Generated int
	Stats     Stats
}

// Sim accumulates flows and runs them to completion. Not safe for
// concurrent use; results are deterministic for a given flow set.
type Sim struct {
	fab   *Fabric
	model Model
	flows []*Flow

	// water-filling scratch, sized to the link count. count stays all-zero
	// between passes; remaining/flowsOn are only valid for touched links.
	remaining []float64
	count     []int
	flowsOn   [][]int32
	links     []int32

	// Telemetry probe: when set, Run advances the fluid state to every
	// multiple of probeEvery and invokes probeFn there, as a first-class
	// loop event (exact rate/volume semantics, not interpolation).
	probeFn    func(now sim.Time, active []*Flow)
	probeEvery float64 // seconds
	nextProbe  float64 // seconds
}

// Fabric returns the fabric the simulation runs over.
func (s *Sim) Fabric() *Fabric { return s.fab }

// Flows returns every flow added so far (callers must not mutate).
func (s *Sim) Flows() []*Flow { return s.flows }

// SetProbe installs a sampling callback invoked at every multiple of the
// period during Run, with the simulation state advanced exactly to the
// probe instant. Install before Run; a nil fn disables probing.
func (s *Sim) SetProbe(every sim.Time, fn func(now sim.Time, active []*Flow)) {
	if fn != nil && every <= 0 {
		panic(fmt.Sprintf("fluid: non-positive probe period %v", every))
	}
	s.probeFn = fn
	s.probeEvery = every.Seconds()
	s.nextProbe = s.probeEvery
}

// NewSim prepares a run over fab under the scheme convergence model.
func NewSim(fab *Fabric, model Model) *Sim {
	return &Sim{
		fab:       fab,
		model:     model,
		remaining: make([]float64, len(fab.LinkBps)),
		count:     make([]int, len(fab.LinkBps)),
		flowsOn:   make([][]int32, len(fab.LinkBps)),
	}
}

// AddFlow registers a transfer of size bytes from src to dst starting at
// start, resolving its route immediately.
func (s *Sim) AddFlow(id uint64, src, dst int, size int64, start sim.Time) (*Flow, error) {
	if err := s.fab.checkHost(src); err != nil {
		return nil, err
	}
	if err := s.fab.checkHost(dst); err != nil {
		return nil, err
	}
	if src == dst {
		return nil, fmt.Errorf("fluid: flow %d with src == dst", id)
	}
	if size <= 0 {
		return nil, fmt.Errorf("fluid: flow %d has non-positive size", id)
	}
	path, err := s.fab.route(id, src, dst)
	if err != nil {
		return nil, err
	}
	f := &Flow{
		ID: id, Src: src, Dst: dst, SizeBytes: size, Start: start,
		Finish:  -1,
		Ideal:   s.fab.IdealFCT(src, dst, size),
		path:    path,
		remBits: 8 * float64(s.fab.Cfg.wireBytes(size)),
		rate:    -1, // sentinel: placed at its first target
		offset:  s.fab.latencyOffset(src, dst, size),
	}
	s.flows = append(s.flows, f)
	return f, nil
}

// Run executes the event loop until every flow finishes or the next event
// would pass the deadline, and reports whether all flows completed. Flow
// FCTs are the fluid transfer duration plus the per-path latency offset, so
// an uncontended flow completes in exactly its ideal FCT.
func (s *Sim) Run(deadline sim.Time) *Result {
	wall := time.Now()
	sort.SliceStable(s.flows, func(i, j int) bool {
		if s.flows[i].Start != s.flows[j].Start {
			return s.flows[i].Start < s.flows[j].Start
		}
		return s.flows[i].ID < s.flows[j].ID
	})
	res := &Result{FCT: metrics.NewFCTCollector(), Generated: len(s.flows)}
	horizon := deadline.Seconds()
	tau := s.model.Tau.Seconds()

	var active []*Flow
	next := 0
	t := 0.0
	for next < len(s.flows) || len(active) > 0 {
		ta := math.Inf(1)
		if next < len(s.flows) {
			ta = s.flows[next].Start.Seconds()
		}
		tf, fi := s.nextFinish(active, tau)
		tf += t
		if s.probeFn != nil && s.nextProbe <= ta && s.nextProbe <= tf {
			// Probe instant precedes the next arrival/finish: advance the
			// fluid state exactly to it and sample. Rates and targets are
			// untouched (no water-filling pass), so probing perturbs only
			// the float rounding of the split exponential integrals.
			if s.nextProbe > horizon {
				break
			}
			s.advance(active, s.nextProbe-t, tau)
			t = s.nextProbe
			s.probeFn(sim.FromSeconds(t), active)
			s.nextProbe += s.probeEvery
			continue
		}
		if ta <= tf {
			// Arrival first (ties prefer the arrival so the newcomer
			// competes for the remaining bytes of coincident finishers).
			if ta > horizon {
				break
			}
			s.advance(active, ta-t, tau)
			t = ta
			for next < len(s.flows) && s.flows[next].Start.Seconds() <= t {
				active = append(active, s.flows[next])
				next++
			}
		} else {
			if tf > horizon {
				break
			}
			s.advance(active, tf-t, tau)
			t = tf
			f := active[fi]
			dur := sim.FromSeconds(t) - f.Start
			f.Finish = f.Start + dur + f.offset
			res.FCT.Record(metrics.FCTRecord{
				FlowID: f.ID, SizeBytes: f.SizeBytes,
				Start: f.Start, Finish: f.Finish, Ideal: f.Ideal,
			})
			res.Completed++
			active = append(active[:fi], active[fi+1:]...)
		}
		s.waterfill(active)
		res.Stats.Events++
		res.Stats.Recomputes++
		if len(active) > res.Stats.MaxActive {
			res.Stats.MaxActive = len(active)
		}
	}
	res.Stats.WallSeconds = time.Since(wall).Seconds()
	return res
}

// deliver integrates a flow's rate profile over dt seconds: the rate decays
// exponentially from f.rate toward f.target, so the delivered volume is
// target*dt plus the transient's area (rate-target)*tau*(1-exp(-dt/tau)).
func deliver(f *Flow, dt, tau float64) float64 {
	if tau == 0 || f.rate == f.target {
		return f.target * dt
	}
	return f.target*dt + (f.rate-f.target)*tau*(1-math.Exp(-dt/tau))
}

// advance moves every active flow dt seconds forward: debit the delivered
// bits and settle the instantaneous rate at the profile's endpoint.
func (s *Sim) advance(active []*Flow, dt, tau float64) {
	if dt <= 0 {
		return
	}
	for _, f := range active {
		f.remBits -= deliver(f, dt, tau)
		if f.remBits < 0 {
			f.remBits = 0
		}
		if tau == 0 {
			f.rate = f.target
		} else {
			f.rate = f.target + (f.rate-f.target)*math.Exp(-dt/tau)
		}
	}
}

// nextFinish returns the earliest completion among active flows as a delta
// from now, plus its index (math.Inf if none are active). A flow's finish
// can never beat rem/max(rate, target) — the rate profile is bounded by
// both endpoints — so that cheap lower bound prunes the exact solve for
// most flows on large active sets (the fluid hot path).
func (s *Sim) nextFinish(active []*Flow, tau float64) (float64, int) {
	best, bi := math.Inf(1), -1
	for i, f := range active {
		if f.remBits/math.Max(f.rate, f.target) >= best {
			continue
		}
		if dt := solveFinish(f, tau); dt < best {
			best, bi = dt, i
		}
	}
	return best, bi
}

// solveFinish inverts the delivered-volume integral for the time at which
// the flow's remaining bits hit zero. The integrand (the instantaneous
// rate) always lies between min(rate, target) and max(rate, target) and
// both are positive, so the root is bracketed by rem/max and rem/min;
// Newton steps (the derivative is the rate, one shared Exp per iteration)
// converge quadratically, with bisection as the in-bracket safeguard.
func solveFinish(f *Flow, tau float64) float64 {
	if f.remBits <= 0 {
		return 0
	}
	if tau == 0 || f.rate == f.target {
		return f.remBits / f.target
	}
	lo := f.remBits / math.Max(f.rate, f.target)
	hi := f.remBits / math.Min(f.rate, f.target)
	dt := lo
	for i := 0; i < 64 && hi-lo > 1e-13*hi; i++ {
		e := math.Exp(-dt / tau)
		g := f.target*dt + (f.rate-f.target)*tau*(1-e) - f.remBits
		if g < 0 {
			lo = dt
		} else {
			hi = dt
		}
		rate := f.target + (f.rate-f.target)*e // = deliver'(dt), > 0
		next := dt - g/rate
		if !(next > lo && next < hi) {
			next = 0.5 * (lo + hi)
		}
		dt = next
	}
	return hi
}

// waterfill computes the global max-min fair allocation by progressive
// filling: raise every unfrozen flow's rate uniformly until some link
// saturates, freeze the flows crossing it at the current level, and repeat.
// Targets are written per flow; instantaneous rates then chase them under
// the convergence model (newly placed flows start at their first target).
//
// Only links that carry flows are ever touched (the worklist s.links), a
// per-link occupant list freezes exactly the flows on a saturated link, and
// freezing decrements counts along just the frozen flow's path — so a pass
// costs O(active·pathlen + rounds·liveLinks) rather than rescanning every
// flow against every link each round. This is the fluid backend's hot loop.
func (s *Sim) waterfill(active []*Flow) {
	s.links = s.links[:0]
	for i, f := range active {
		f.frozen = false
		for _, l := range f.path {
			if s.count[l] == 0 {
				s.remaining[l] = s.fab.LinkBps[l]
				s.flowsOn[l] = s.flowsOn[l][:0]
				s.links = append(s.links, int32(l))
			}
			s.count[l]++
			s.flowsOn[l] = append(s.flowsOn[l], int32(i))
		}
	}
	unfrozen := len(active)
	level := 0.0
	live := s.links
	for unfrozen > 0 {
		delta := math.Inf(1)
		w := 0
		for _, l := range live {
			if s.count[l] > 0 {
				live[w] = l
				w++
				if share := s.remaining[l] / float64(s.count[l]); share < delta {
					delta = share
				}
			}
		}
		live = live[:w]
		level += delta
		froze := false
		for _, l := range live {
			s.remaining[l] -= delta * float64(s.count[l])
		}
		for _, l := range live {
			// Saturated: capacity exhausted to within float noise.
			if s.remaining[l] > 1e-9*s.fab.LinkBps[l] {
				continue
			}
			for _, fi := range s.flowsOn[l] {
				f := active[fi]
				if f.frozen {
					continue
				}
				f.frozen = true
				f.target = level
				froze = true
				unfrozen--
				for _, pl := range f.path {
					s.count[pl]--
				}
			}
		}
		if !froze {
			break // numeric guard; delta selection should always freeze
		}
	}
	// Leave the scratch counts zeroed for the next pass (only touched links
	// need clearing, and frozen-flow decrements already drained most).
	for _, l := range s.links {
		s.count[l] = 0
	}
	for _, f := range active {
		if f.rate < 0 {
			f.rate = f.target // new flow: placed at its first fair share
		}
		if s.model.Tau == 0 {
			f.rate = f.target
		}
	}
}
