package fluid

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
)

// ChainOpts mirrors topo.ChainOpts: a linear switch chain with senders
// hanging off it and one receiver behind the last switch. Only the forward
// (sender → receiver) direction carries fluid volume; ACK bandwidth is
// negligible and not modeled.
type ChainOpts struct {
	// Switches is the chain length M.
	Switches int
	// SenderAttach lists, per sender, the switch index it attaches to.
	SenderAttach []int
	// RateBps is the uniform link rate.
	RateBps int64
	// Delay is the uniform propagation delay.
	Delay sim.Time
}

// NewChain builds the fluid chain fabric. Hosts 0..len(SenderAttach)-1 are
// the senders; host len(SenderAttach) is the receiver (the only legal
// destination). Directed links: one access link per sender, the M-1
// inter-switch links, and the final switch→receiver link every flow shares.
func NewChain(cfg Config, o ChainOpts) (*Fabric, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if o.Switches < 1 {
		return nil, fmt.Errorf("fluid: chain needs >= 1 switch")
	}
	if len(o.SenderAttach) == 0 {
		return nil, fmt.Errorf("fluid: chain needs >= 1 sender")
	}
	if o.RateBps <= 0 {
		return nil, fmt.Errorf("fluid: non-positive link rate")
	}
	for i, at := range o.SenderAttach {
		if at < 0 || at >= o.Switches {
			return nil, fmt.Errorf("fluid: sender %d attach point %d out of range", i, at)
		}
	}
	senders := len(o.SenderAttach)
	receiver := senders
	// Link layout: [0,senders) sender access; [senders, senders+M-1) the
	// chain hops i→i+1; last index the receiver access link.
	nLinks := senders + o.Switches
	links := make([]float64, nLinks)
	for i := range links {
		links[i] = float64(o.RateBps)
	}

	// BaseRTT mirrors topo.BuildChain's longest-path formula.
	mtuTx := sim.TxTime(cfg.MTUBytes, o.RateBps)
	ackTx := sim.TxTime(packet.AckBaseBytes+o.Switches*packet.IntHopBytes, o.RateBps)
	baseRTT := sim.Time(o.Switches+1) * (2*o.Delay + mtuTx + ackTx)

	fb := &Fabric{
		Cfg:       cfg,
		LinkBps:   links,
		Hosts:     senders + 1,
		AccessBps: o.RateBps,
		Delay:     o.Delay,
		BaseRTT:   baseRTT,
	}
	fb.route = func(id uint64, src, dst int) ([]int, error) {
		if dst != receiver {
			return nil, fmt.Errorf("fluid: chain flows must target the receiver (host %d), got %d", receiver, dst)
		}
		if src == receiver {
			return nil, fmt.Errorf("fluid: the chain receiver cannot send")
		}
		at := o.SenderAttach[src]
		path := []int{src}
		for h := at; h < o.Switches; h++ {
			path = append(path, senders+h)
		}
		return path, nil
	}
	fb.pathLinks = func(src, dst int) int {
		if src == receiver {
			src, dst = dst, src
		}
		return o.Switches - o.SenderAttach[src] + 1
	}
	return fb, nil
}
