package metrics

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// FCTRecord captures one completed flow.
type FCTRecord struct {
	FlowID    uint64
	SizeBytes int64
	Start     sim.Time
	Finish    sim.Time
	// Ideal is the standalone completion time of the same flow on an empty
	// network (store-and-forward first packet + remaining bytes at the
	// bottleneck rate). Slowdown = actual / ideal, the paper's metric.
	Ideal sim.Time
}

// FCT returns the measured completion time.
func (r FCTRecord) FCT() sim.Time { return r.Finish - r.Start }

// Slowdown returns FCT normalized by the ideal FCT (>= 1 in a well-behaved
// simulation; values below 1 indicate an ideal-model mismatch and are
// clamped so they remain visible but cannot flip comparisons).
func (r FCTRecord) Slowdown() float64 {
	if r.Ideal <= 0 {
		return 0
	}
	s := float64(r.FCT()) / float64(r.Ideal)
	if s < 1 {
		return 1
	}
	return s
}

// FCTCollector accumulates completed flows for one simulation run.
type FCTCollector struct {
	Records []FCTRecord
}

// NewFCTCollector returns an empty collector.
func NewFCTCollector() *FCTCollector { return &FCTCollector{} }

// Record appends one completed flow.
func (c *FCTCollector) Record(r FCTRecord) { c.Records = append(c.Records, r) }

// Merge folds another collector's records into c.
func (c *FCTCollector) Merge(o *FCTCollector) {
	c.Records = append(c.Records, o.Records...)
}

// N returns the number of completed flows.
func (c *FCTCollector) N() int { return len(c.Records) }

// SlowdownDist returns the slowdown distribution of flows whose size lies in
// (lo, hi] bytes. Pass lo=0 to include the smallest flows, hi=1<<62 for no
// upper bound.
func (c *FCTCollector) SlowdownDist(lo, hi int64) *Dist {
	d := NewDist()
	for _, r := range c.Records {
		if r.SizeBytes > lo && r.SizeBytes <= hi {
			d.Observe(r.Slowdown())
		}
	}
	return d
}

// Bucket is one flow-size bin of the Figs 14/15 tables.
type Bucket struct {
	Label  string
	LoByte int64 // exclusive
	HiByte int64 // inclusive
}

// BucketStats is the per-bucket summary row: avg / median / p95 / p99
// slowdown, matching the four panels of Figs 14 and 15.
type BucketStats struct {
	Bucket
	N      int
	Avg    float64
	Median float64
	P95    float64
	P99    float64
}

// BucketTable computes one row per bucket.
func (c *FCTCollector) BucketTable(buckets []Bucket) []BucketStats {
	out := make([]BucketStats, 0, len(buckets))
	for _, b := range buckets {
		d := c.SlowdownDist(b.LoByte, b.HiByte)
		out = append(out, BucketStats{
			Bucket: b, N: d.N(),
			Avg: d.Mean(), Median: d.Median(), P95: d.P95(), P99: d.P99(),
		})
	}
	return out
}

// FormatBucketTable renders rows for several schemes side by side, one
// statistic at a time — the textual equivalent of one panel of Fig 14/15.
// stats maps scheme name -> rows (all computed over the same buckets).
func FormatBucketTable(stat string, order []string, stats map[string][]BucketStats) string {
	var b strings.Builder
	pick := func(r BucketStats) float64 {
		switch stat {
		case "avg":
			return r.Avg
		case "median":
			return r.Median
		case "p95":
			return r.P95
		case "p99":
			return r.P99
		default:
			panic("metrics: unknown stat " + stat)
		}
	}
	fmt.Fprintf(&b, "%-8s", "size")
	for _, s := range order {
		fmt.Fprintf(&b, "%12s", s)
	}
	fmt.Fprintf(&b, "%8s\n", "n")
	var nRows int
	for _, rows := range stats {
		nRows = len(rows)
		break
	}
	for i := 0; i < nRows; i++ {
		var label string
		var n int
		for _, s := range order {
			label = stats[s][i].Label
			n = stats[s][i].N
			break
		}
		fmt.Fprintf(&b, "%-8s", label)
		for _, s := range order {
			fmt.Fprintf(&b, "%12.2f", pick(stats[s][i]))
		}
		fmt.Fprintf(&b, "%8d\n", n)
	}
	return b.String()
}

// SortByStart orders records chronologically (stable output for goldens).
func (c *FCTCollector) SortByStart() {
	sort.Slice(c.Records, func(i, j int) bool {
		if c.Records[i].Start != c.Records[j].Start {
			return c.Records[i].Start < c.Records[j].Start
		}
		return c.Records[i].FlowID < c.Records[j].FlowID
	})
}

// Counter is a named monotonic event counter (PFC pauses, ECN marks, drops).
type Counter struct {
	Name string
	N    int64
}

// Inc adds one.
func (c *Counter) Inc() { c.N++ }

// Add adds n (n may be negative only in tests; production callers add >= 0).
func (c *Counter) Add(n int64) { c.N += n }
