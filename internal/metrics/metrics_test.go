package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("q")
	s.Add(0, 1)
	s.Add(sim.Microsecond, 5)
	s.Add(2*sim.Microsecond, 3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Max() != 5 {
		t.Fatalf("Max = %v", s.Max())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
}

func TestSeriesOrderEnforced(t *testing.T) {
	s := NewSeries("q")
	s.Add(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on time regression")
		}
	}()
	s.Add(5, 2)
}

func TestSeriesSameTimeAllowed(t *testing.T) {
	s := NewSeries("q")
	s.Add(10, 1)
	s.Add(10, 2) // equal timestamps are fine (two events in one instant)
	if s.Len() != 2 {
		t.Fatal("same-time sample rejected")
	}
}

func TestSeriesAt(t *testing.T) {
	s := NewSeries("q")
	s.Add(10, 1)
	s.Add(20, 2)
	s.Add(30, 3)
	cases := []struct {
		t    sim.Time
		want float64
	}{{5, 0}, {10, 1}, {15, 1}, {20, 2}, {35, 3}}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%d) = %v want %v", c.t, got, c.want)
		}
	}
}

func TestSeriesWindows(t *testing.T) {
	s := NewSeries("q")
	for i := 0; i <= 10; i++ {
		s.Add(sim.Time(i), float64(i))
	}
	if got := s.MaxIn(2, 5); got != 5 {
		t.Fatalf("MaxIn = %v", got)
	}
	if got := s.MeanIn(2, 4); got != 3 {
		t.Fatalf("MeanIn = %v", got)
	}
	if got := s.MeanIn(100, 200); got != 0 {
		t.Fatalf("MeanIn empty window = %v", got)
	}
}

func TestTWMeanIn(t *testing.T) {
	s := NewSeries("q")
	s.Add(0, 0)
	s.Add(10, 100) // value 0 holds for [0,10), 100 for [10,20)
	s.Add(20, 50)  // 50 for [20,40]
	if got := s.TWMeanIn(0, 20); got != 50 {
		t.Fatalf("TWMean [0,20] = %v want 50", got)
	}
	// [0,40]: 0*10 + 100*10 + 50*20 = 2000 over 40 = 50.
	if got := s.TWMeanIn(0, 40); got != 50 {
		t.Fatalf("TWMean [0,40] = %v want 50", got)
	}
	// Window starting mid-step: [15,20] is all value 100.
	if got := s.TWMeanIn(15, 20); got != 100 {
		t.Fatalf("TWMean [15,20] = %v want 100", got)
	}
	if got := s.TWMeanIn(20, 20); got != 0 {
		t.Fatalf("degenerate window = %v", got)
	}
	// Uniform sampling: TWMeanIn == MeanIn (up to step-vs-sample phase).
	u := NewSeries("u")
	for i := 0; i <= 100; i++ {
		u.Add(sim.Time(i), float64(i%10))
	}
	tw := u.TWMeanIn(0, 100)
	m := u.MeanIn(0, 100)
	if tw < m-1 || tw > m+1 {
		t.Fatalf("uniform TWMean %v vs Mean %v", tw, m)
	}
}

func TestFirstAboveBelow(t *testing.T) {
	s := NewSeries("q")
	s.Add(0, 0)
	s.Add(10, 50)
	s.Add(20, 100)
	s.Add(30, 20)
	at, ok := s.FirstAbove(60)
	if !ok || at != 20 {
		t.Fatalf("FirstAbove = %v %v", at, ok)
	}
	at, ok = s.FirstBelowAfter(15, 30)
	if !ok || at != 30 {
		t.Fatalf("FirstBelowAfter = %v %v", at, ok)
	}
	if _, ok := s.FirstAbove(1000); ok {
		t.Fatal("FirstAbove should miss")
	}
}

func TestSeriesCSVAndDownsample(t *testing.T) {
	s := NewSeries("queue")
	s.Add(sim.Microsecond, 1.5)
	csv := s.CSV()
	if !strings.Contains(csv, "queue") || !strings.Contains(csv, "1.000,1.500") {
		t.Fatalf("CSV = %q", csv)
	}
	for i := 0; i < 10; i++ {
		s.Add(sim.Time(i+2)*sim.Microsecond, float64(i))
	}
	d := s.Downsample(3)
	if d.Len() != (s.Len()+2)/3 {
		t.Fatalf("Downsample len = %d of %d", d.Len(), s.Len())
	}
}

func TestDistQuantiles(t *testing.T) {
	d := NewDist()
	for i := 1; i <= 100; i++ {
		d.Observe(float64(i))
	}
	if d.N() != 100 || d.Min() != 1 || d.Max() != 100 {
		t.Fatal("basic stats wrong")
	}
	if m := d.Median(); math.Abs(m-50.5) > 1e-9 {
		t.Fatalf("median = %v", m)
	}
	if p := d.P99(); math.Abs(p-99.01) > 1e-9 {
		t.Fatalf("p99 = %v", p)
	}
	if mean := d.Mean(); math.Abs(mean-50.5) > 1e-9 {
		t.Fatalf("mean = %v", mean)
	}
}

func TestDistEdgeCases(t *testing.T) {
	d := NewDist()
	if d.Quantile(0.5) != 0 || d.Mean() != 0 || d.Max() != 0 {
		t.Fatal("empty dist should return zeros")
	}
	d.Observe(7)
	if d.Quantile(0) != 7 || d.Quantile(1) != 7 || d.Median() != 7 {
		t.Fatal("single-element quantiles wrong")
	}
}

func TestDistRejectsNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDist().Observe(math.NaN())
}

func TestDistQuantileRangePanics(t *testing.T) {
	d := NewDist()
	d.Observe(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Quantile(1.5)
}

func TestDistMerge(t *testing.T) {
	a, b := NewDist(), NewDist()
	a.Observe(1)
	b.Observe(3)
	a.Merge(b)
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatal("merge wrong")
	}
}

// Property: Quantile agrees with a sort-based reference at the sample points.
func TestQuickQuantileAgainstReference(t *testing.T) {
	f := func(raw []float64) bool {
		d := NewDist()
		var clean []float64
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			d.Observe(v)
			clean = append(clean, v)
		}
		if len(clean) == 0 {
			return true
		}
		sort.Float64s(clean)
		// Quantile(k/(n-1)) must hit clean[k] exactly.
		n := len(clean)
		if n == 1 {
			return d.Quantile(0.7) == clean[0]
		}
		for k := 0; k < n; k++ {
			q := float64(k) / float64(n-1)
			got := d.Quantile(q)
			if math.Abs(got-clean[k]) > 1e-9*math.Max(1, math.Abs(clean[k])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestJainIndex(t *testing.T) {
	if v := JainIndex([]float64{10, 10, 10, 10}); math.Abs(v-1) > 1e-12 {
		t.Fatalf("equal shares: %v", v)
	}
	if v := JainIndex([]float64{40, 0, 0, 0}); math.Abs(v-0.25) > 1e-12 {
		t.Fatalf("single hog: %v", v)
	}
	if JainIndex(nil) != 0 || JainIndex([]float64{0, 0}) != 0 {
		t.Fatal("degenerate inputs")
	}
}

// Property: Jain index is scale-invariant and within (0, 1].
func TestQuickJainIndex(t *testing.T) {
	f := func(xs []uint16, scale uint8) bool {
		if len(xs) == 0 {
			return true
		}
		a := make([]float64, len(xs))
		b := make([]float64, len(xs))
		nonzero := false
		k := float64(scale%9) + 1
		for i, x := range xs {
			a[i] = float64(x)
			b[i] = float64(x) * k
			if x != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			return true
		}
		ja, jb := JainIndex(a), JainIndex(b)
		return ja > 0 && ja <= 1+1e-12 && math.Abs(ja-jb) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFCTRecord(t *testing.T) {
	r := FCTRecord{
		SizeBytes: 1000,
		Start:     10 * sim.Microsecond,
		Finish:    30 * sim.Microsecond,
		Ideal:     10 * sim.Microsecond,
	}
	if r.FCT() != 20*sim.Microsecond {
		t.Fatalf("FCT = %v", r.FCT())
	}
	if r.Slowdown() != 2 {
		t.Fatalf("Slowdown = %v", r.Slowdown())
	}
}

func TestSlowdownClamp(t *testing.T) {
	r := FCTRecord{Start: 0, Finish: 5, Ideal: 10}
	if r.Slowdown() != 1 {
		t.Fatalf("sub-ideal slowdown should clamp to 1, got %v", r.Slowdown())
	}
	r.Ideal = 0
	if r.Slowdown() != 0 {
		t.Fatal("zero ideal should yield 0")
	}
}

func TestBucketTable(t *testing.T) {
	c := NewFCTCollector()
	add := func(size int64, slow float64) {
		c.Record(FCTRecord{
			SizeBytes: size,
			Start:     0,
			Finish:    sim.Time(slow * 1000),
			Ideal:     1000,
		})
	}
	add(5_000, 1.5)
	add(8_000, 2.5)
	add(50_000, 4.0)
	buckets := []Bucket{
		{Label: "10KB", LoByte: 0, HiByte: 10_000},
		{Label: "100KB", LoByte: 10_000, HiByte: 100_000},
	}
	rows := c.BucketTable(buckets)
	if rows[0].N != 2 || rows[1].N != 1 {
		t.Fatalf("bucket counts: %+v", rows)
	}
	if rows[0].Avg != 2.0 || rows[1].P99 != 4.0 {
		t.Fatalf("bucket stats: %+v", rows)
	}

	out := FormatBucketTable("avg", []string{"fncc"}, map[string][]BucketStats{"fncc": rows})
	if !strings.Contains(out, "10KB") || !strings.Contains(out, "2.00") {
		t.Fatalf("table:\n%s", out)
	}
}

func TestCollectorMergeSort(t *testing.T) {
	a, b := NewFCTCollector(), NewFCTCollector()
	a.Record(FCTRecord{FlowID: 2, Start: 20})
	b.Record(FCTRecord{FlowID: 1, Start: 10})
	a.Merge(b)
	a.SortByStart()
	if a.N() != 2 || a.Records[0].FlowID != 1 {
		t.Fatalf("merge/sort: %+v", a.Records)
	}
}

func TestCounter(t *testing.T) {
	c := Counter{Name: "pause"}
	c.Inc()
	c.Add(4)
	if c.N != 5 {
		t.Fatalf("counter = %d", c.N)
	}
}

func TestFormatBucketTableUnknownStatPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rows := []BucketStats{{Bucket: Bucket{Label: "1KB"}, N: 1}}
	FormatBucketTable("nope", []string{"x"}, map[string][]BucketStats{"x": rows})
}
