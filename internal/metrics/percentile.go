package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Dist accumulates scalar observations and answers exact order statistics.
// The evaluation's sample counts (thousands of flows per bucket) are small
// enough that an exact sorted-sample implementation is both simpler and more
// trustworthy than a streaming sketch.
type Dist struct {
	vals   []float64
	sorted bool
}

// NewDist returns an empty distribution.
func NewDist() *Dist { return &Dist{} }

// Observe records one value. NaN is rejected with a panic: it silently
// poisons every downstream statistic.
func (d *Dist) Observe(v float64) {
	if math.IsNaN(v) {
		panic("metrics: Observe(NaN)")
	}
	d.vals = append(d.vals, v)
	d.sorted = false
}

// Merge folds other's observations into d (for the parallel seed runner).
func (d *Dist) Merge(other *Dist) {
	d.vals = append(d.vals, other.vals...)
	d.sorted = false
}

// N returns the number of observations.
func (d *Dist) N() int { return len(d.vals) }

// Mean returns the arithmetic mean (0 if empty).
func (d *Dist) Mean() float64 {
	if len(d.vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range d.vals {
		s += v
	}
	return s / float64(len(d.vals))
}

func (d *Dist) ensureSorted() {
	if !d.sorted {
		sort.Float64s(d.vals)
		d.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) using the
// nearest-rank-with-interpolation definition (same as numpy's "linear").
// Returns 0 for an empty distribution.
func (d *Dist) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v out of [0,1]", q))
	}
	n := len(d.vals)
	if n == 0 {
		return 0
	}
	d.ensureSorted()
	if n == 1 {
		return d.vals[0]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	if lo >= n-1 {
		return d.vals[n-1]
	}
	frac := pos - float64(lo)
	return d.vals[lo]*(1-frac) + d.vals[lo+1]*frac
}

// Median is Quantile(0.5).
func (d *Dist) Median() float64 { return d.Quantile(0.5) }

// P95 is Quantile(0.95).
func (d *Dist) P95() float64 { return d.Quantile(0.95) }

// P99 is Quantile(0.99).
func (d *Dist) P99() float64 { return d.Quantile(0.99) }

// Max returns the largest observation (0 if empty).
func (d *Dist) Max() float64 {
	if len(d.vals) == 0 {
		return 0
	}
	d.ensureSorted()
	return d.vals[len(d.vals)-1]
}

// Min returns the smallest observation (0 if empty).
func (d *Dist) Min() float64 {
	if len(d.vals) == 0 {
		return 0
	}
	d.ensureSorted()
	return d.vals[0]
}

// JainIndex computes Jain's fairness index over a set of throughputs:
// (Σx)² / (n·Σx²). It is 1.0 for perfectly equal allocations and 1/n for a
// single hog, and is the standard summary for the Fig 13e fairness runs.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
