// Package metrics collects and summarizes the quantities the paper plots:
// queue-length time series (Figs 1, 9, 13), per-flow rates, link utilization
// (Fig 9g-h, 13), PFC pause counts (Fig 3), and flow-completion-time
// slowdown tables (Figs 14, 15).
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Point is one time-series sample.
type Point struct {
	T sim.Time
	V float64
}

// Series is an append-only time series. Samples must be appended in
// non-decreasing time order (the simulator guarantees this).
type Series struct {
	Name   string
	Points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample, panicking on time regression — out-of-order samples
// always indicate a harness bug and would silently corrupt peaks/averages.
func (s *Series) Add(t sim.Time, v float64) {
	if n := len(s.Points); n > 0 && t < s.Points[n-1].T {
		panic(fmt.Sprintf("metrics: series %q sample at %v before %v",
			s.Name, t, s.Points[n-1].T))
	}
	s.Points = append(s.Points, Point{t, v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Max returns the maximum sample value, or 0 for an empty series.
func (s *Series) Max() float64 {
	m := 0.0
	for i, p := range s.Points {
		if i == 0 || p.V > m {
			m = p.V
		}
	}
	return m
}

// MaxIn returns the maximum value among samples with from <= T <= to.
func (s *Series) MaxIn(from, to sim.Time) float64 {
	m := 0.0
	first := true
	for _, p := range s.Points {
		if p.T < from || p.T > to {
			continue
		}
		if first || p.V > m {
			m = p.V
			first = false
		}
	}
	return m
}

// Mean returns the arithmetic mean of the sample values (0 if empty).
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// MeanIn averages samples with from <= T <= to (0 if none).
func (s *Series) MeanIn(from, to sim.Time) float64 {
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.T >= from && p.T <= to {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TWMeanIn returns the time-weighted mean over [from, to], treating the
// series as a step function (each sample holds until the next). It is the
// right average for irregularly sampled state like queue occupancy; for
// uniformly ticked series it coincides with MeanIn.
func (s *Series) TWMeanIn(from, to sim.Time) float64 {
	if to <= from || len(s.Points) == 0 {
		return 0
	}
	var weighted float64
	cur := s.At(from)
	last := from
	for _, p := range s.Points {
		if p.T <= from {
			continue
		}
		if p.T > to {
			break
		}
		weighted += cur * float64(p.T-last)
		cur = p.V
		last = p.T
	}
	weighted += cur * float64(to-last)
	return weighted / float64(to-from)
}

// At returns the most recent value at or before t (0 before first sample).
func (s *Series) At(t sim.Time) float64 {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > t })
	if i == 0 {
		return 0
	}
	return s.Points[i-1].V
}

// FirstAbove returns the earliest sample time with V >= threshold, or
// (0, false) if the series never reaches it.
func (s *Series) FirstAbove(threshold float64) (sim.Time, bool) {
	for _, p := range s.Points {
		if p.V >= threshold {
			return p.T, true
		}
	}
	return 0, false
}

// FirstBelowAfter returns the earliest time at or after 'after' with
// V <= threshold, or (0, false).
func (s *Series) FirstBelowAfter(after sim.Time, threshold float64) (sim.Time, bool) {
	for _, p := range s.Points {
		if p.T >= after && p.V <= threshold {
			return p.T, true
		}
	}
	return 0, false
}

// CSV renders "time_us,value" lines, the format the cmd tools emit for
// re-plotting the paper's time-series figures.
func (s *Series) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\ntime_us,value\n", s.Name)
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%.3f,%.3f\n", p.T.Micros(), p.V)
	}
	return b.String()
}

// Downsample returns a copy keeping every k-th point (k >= 1), useful when
// printing dense series to a terminal.
func (s *Series) Downsample(k int) *Series {
	if k < 1 {
		panic("metrics: Downsample k < 1")
	}
	out := NewSeries(s.Name)
	for i := 0; i < len(s.Points); i += k {
		out.Points = append(out.Points, s.Points[i])
	}
	return out
}
