package metrics

import (
	"testing"

	"repro/internal/sim"
)

func BenchmarkDistObserveQuantile(b *testing.B) {
	d := NewDist()
	for i := 0; i < b.N; i++ {
		d.Observe(float64(i % 1000))
		if i%4096 == 4095 {
			_ = d.P95() // forces re-sort after appends
		}
	}
}

func BenchmarkSeriesAdd(b *testing.B) {
	s := NewSeries("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(sim.Time(i), float64(i))
	}
}

func BenchmarkJainIndex(b *testing.B) {
	xs := make([]float64, 128)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	var v float64
	for i := 0; i < b.N; i++ {
		v += JainIndex(xs)
	}
	_ = v
}
