package sim

import "testing"

func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000), func() {})
		if e.Pending() > 1024 {
			for e.Step() {
			}
		}
	}
	for e.Step() {
	}
}

func BenchmarkEngineHotLoop(b *testing.B) {
	// A self-rescheduling event — the steady-state pattern of a busy port.
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(100, tick)
		}
	}
	e.After(100, tick)
	b.ResetTimer()
	e.Run()
	if n != b.N {
		b.Fatalf("ran %d of %d", n, b.N)
	}
}

func BenchmarkEngineCancel(b *testing.B) {
	e := NewEngine()
	evs := make([]*Event, 0, 1024)
	for i := 0; i < b.N; i++ {
		evs = append(evs, e.Schedule(Time(i), func() {}))
		if len(evs) == 1024 {
			for _, ev := range evs {
				e.Cancel(ev)
			}
			evs = evs[:0]
		}
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var x uint64
	for i := 0; i < b.N; i++ {
		x ^= r.Uint64()
	}
	_ = x
}

func BenchmarkRNGExp(b *testing.B) {
	r := NewRNG(1)
	var x float64
	for i := 0; i < b.N; i++ {
		x += r.ExpFloat64()
	}
	_ = x
}

func BenchmarkTxTime(b *testing.B) {
	var t Time
	for i := 0; i < b.N; i++ {
		t += TxTime(1518, 400e9)
	}
	_ = t
}
