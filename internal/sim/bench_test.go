package sim

import "testing"

func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000), func() {})
		if e.Pending() > 1024 {
			for e.Step() {
			}
		}
	}
	for e.Step() {
	}
}

func BenchmarkEngineHotLoop(b *testing.B) {
	// A self-rescheduling event — the steady-state pattern of a busy port.
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(100, tick)
		}
	}
	e.After(100, tick)
	b.ResetTimer()
	e.Run()
	if n != b.N {
		b.Fatalf("ran %d of %d", n, b.N)
	}
}

func BenchmarkEngineCancel(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	evs := make([]Event, 0, 1024)
	for i := 0; i < b.N; i++ {
		evs = append(evs, e.Schedule(Time(i), func() {}))
		if len(evs) == 1024 {
			for _, ev := range evs {
				e.Cancel(ev)
			}
			evs = evs[:0]
			for e.Step() { // sweep tombstones so the queue stays bounded
			}
		}
	}
}

// BenchmarkEngineScheduleArgFire is the closure-free hot path: a
// package-scope callback plus a pointer argument, zero allocations per
// event.
func BenchmarkEngineScheduleArgFire(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	var sink int
	bump := func(v any) { *v.(*int)++ }
	for i := 0; i < b.N; i++ {
		e.AfterArg(Time(i%1000), bump, &sink)
		if e.Pending() > 1024 {
			for e.Step() {
			}
		}
	}
	for e.Step() {
	}
	if sink != b.N {
		b.Fatalf("fired %d of %d", sink, b.N)
	}
}

// BenchmarkEngineChurn is the mixed steady-state pattern of a busy
// simulation: schedule, cancel half (retransmission timers disarmed by
// ACKs), fire the rest.
func BenchmarkEngineChurn(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		keep := e.Schedule(Time(2*i), func() {})
		kill := e.Schedule(Time(2*i+1), func() {})
		e.Cancel(kill)
		_ = keep
		e.Step()
	}
	for e.Step() {
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var x uint64
	for i := 0; i < b.N; i++ {
		x ^= r.Uint64()
	}
	_ = x
}

func BenchmarkRNGExp(b *testing.B) {
	r := NewRNG(1)
	var x float64
	for i := 0; i < b.N; i++ {
		x += r.ExpFloat64()
	}
	_ = x
}

func BenchmarkTxTime(b *testing.B) {
	var t Time
	for i := 0; i < b.N; i++ {
		t += TxTime(1518, 400e9)
	}
	_ = t
}
