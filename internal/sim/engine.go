package sim

import (
	"fmt"
	"math"
)

// The engine is allocation-free in steady state. Events live in a
// slot slab owned by the engine; Schedule hands out value-type handles
// carrying a generation counter, freed slots recycle through a freelist, and
// cancellation is O(1) lazy tombstoning swept when the priority queue pops
// the entry. The (time, schedAt, key, seq) tiebreak gives every event a
// unique position in a strict total order, so firing order — and therefore
// every downstream measurement — is deterministic and, for keyed link
// deliveries, reproducible by the sharded parallel executor (see HeadKey).

// Event is a handle to a scheduled callback, returned by Schedule/After so
// the caller can cancel it (e.g. a retransmission timer disarmed by an ACK).
// It is a value type; the zero Event refers to nothing and is safe to Cancel
// or query. A handle goes stale once its event fires or is cancelled: stale
// handles are inert — in particular, cancelling one never affects a later
// event that recycled the same internal slot (the generation check).
type Event struct {
	e    *Engine
	slot int32
	gen  uint32
}

// Pending reports whether the event is still scheduled: not yet fired and
// not cancelled. Zero and stale handles report false.
func (ev Event) Pending() bool {
	if ev.e == nil {
		return false
	}
	s := &ev.e.slots[ev.slot]
	return s.gen == ev.gen && s.live
}

// At returns the firing time of a pending event, and 0 for zero or stale
// handles (check Pending when the distinction matters).
func (ev Event) At() Time {
	if !ev.Pending() {
		return 0
	}
	return ev.e.slots[ev.slot].at
}

// slot is the pooled storage behind one Event handle. A slot is occupied
// from Schedule until its queue entry is popped (fired or swept as a
// tombstone); only then does it return to the freelist with its generation
// bumped, which is what invalidates outstanding handles.
type slot struct {
	gen   uint32
	live  bool // scheduled and not cancelled
	at    Time
	fn    func()
	argFn func(any)
	arg   any
}

// KeyNone is the ordering key of every event scheduled without an explicit
// key. It sorts after all explicit keys, so keyed events (link deliveries)
// fire before unkeyed ones when both share an (at, schedAt) instant — the
// canonical collision order the sharded executor reproduces (see HeadKey).
const KeyNone int32 = math.MaxInt32

// entry is one priority-queue element. It carries the ordering key inline so
// sift operations never chase into the slot slab.
type entry struct {
	at      Time
	schedAt Time   // engine time when the event was scheduled (see HeadKey)
	seq     uint64 // final tiebreak: scheduling order
	key     int32  // canonical collision key (KeyNone unless keyed)
	slot    int32
}

// before orders by (at, schedAt, key, seq). Because seq is assigned in
// scheduling order and the clock never moves backwards, seq is monotone in
// schedAt; for unkeyed events this order is therefore identical to the
// classic (at, seq) order. The key term canonicalizes only true collisions:
// distinct events sharing both firing and scheduling instants.
func (a entry) before(b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

// EngineStats is the scheduler's own performance telemetry, surfaced by the
// experiment harness so every sweep tracks engine throughput and pool
// efficiency as first-class outputs.
type EngineStats struct {
	// Processed counts events that fired.
	Processed uint64
	// Scheduled counts Schedule/After calls.
	Scheduled uint64
	// Canceled counts effective Cancel calls (stale/no-op cancels excluded).
	Canceled uint64
	// SlotReuses counts schedules served from the freelist instead of
	// growing the slab — the event-pool hit count.
	SlotReuses uint64
	// Slots is the slab size: the high-water mark of simultaneously live
	// events (plus unswept tombstones).
	Slots int
}

// ReuseRate is SlotReuses/Scheduled: the fraction of schedules that recycled
// a freed slot (approaches 1 in steady state).
func (s EngineStats) ReuseRate() float64 {
	if s.Scheduled == 0 {
		return 0
	}
	return float64(s.SlotReuses) / float64(s.Scheduled)
}

// Engine is a single-threaded discrete-event scheduler.
//
// The zero value is not usable; construct with NewEngine. An Engine must be
// driven from one goroutine; the harness-level parallelism in this project
// runs one independent Engine per (scheme, seed, sweep-point) instead of
// parallelizing inside a run.
type Engine struct {
	now     Time
	seq     uint64
	queue   []entry
	slots   []slot
	free    []int32
	live    int // scheduled, not cancelled, not fired
	stopped bool

	processed  uint64
	scheduled  uint64
	canceled   uint64
	slotReuses uint64
}

// NewEngine returns an engine positioned at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Processed returns how many events have fired so far (for harness stats).
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return e.live }

// Stats returns the engine's cumulative scheduling telemetry.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Processed:  e.processed,
		Scheduled:  e.scheduled,
		Canceled:   e.canceled,
		SlotReuses: e.slotReuses,
		Slots:      len(e.slots),
	}
}

// alloc returns a free slot index, recycling before growing the slab.
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		i := e.free[n-1]
		e.free = e.free[:n-1]
		e.slotReuses++
		return i
	}
	e.slots = append(e.slots, slot{})
	return int32(len(e.slots) - 1)
}

// release returns a popped slot to the freelist, bumping the generation so
// every outstanding handle to it goes stale.
func (e *Engine) release(i int32) {
	s := &e.slots[i]
	s.gen++
	s.live = false
	s.at = 0
	s.fn = nil
	s.argFn = nil
	s.arg = nil
	e.free = append(e.free, i)
}

func (e *Engine) push(at Time, key int32, fn func(), argFn func(any), arg any) Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	i := e.alloc()
	s := &e.slots[i]
	s.live = true
	s.at = at
	s.fn = fn
	s.argFn = argFn
	s.arg = arg
	e.queue = append(e.queue, entry{at: at, schedAt: e.now, seq: e.seq, key: key, slot: i})
	e.seq++
	e.scheduled++
	e.live++
	e.siftUp(len(e.queue) - 1)
	return Event{e: e, slot: i, gen: s.gen}
}

// Schedule registers fn to run at absolute time at. Scheduling in the past
// panics: it always indicates a modelling bug, and silently reordering time
// would corrupt every downstream measurement.
func (e *Engine) Schedule(at Time, fn func()) Event {
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	return e.push(at, KeyNone, fn, nil, nil)
}

// After registers fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// ScheduleArg registers fn(arg) to run at absolute time at. It is the
// allocation-free alternative to Schedule for hot paths: passing a
// package-level function plus a pointer argument avoids the closure capture
// a literal would heap-allocate on every call.
func (e *Engine) ScheduleArg(at Time, fn func(any), arg any) Event {
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	return e.push(at, KeyNone, nil, fn, arg)
}

// AfterArg registers fn(arg) to run d after the current time; see
// ScheduleArg.
func (e *Engine) AfterArg(d Time, fn func(any), arg any) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.ScheduleArg(e.now+d, fn, arg)
}

// AfterArgKeyed is AfterArg with an explicit collision key below KeyNone.
// Events that share an (at, schedAt) instant fire in key order, regardless
// of scheduling order within the instant — the hook netsim uses to give
// simultaneous link deliveries a canonical, executor-independent order.
func (e *Engine) AfterArgKeyed(d Time, key int32, fn func(any), arg any) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	if key < 0 || key == KeyNone {
		panic(fmt.Sprintf("sim: event key %d out of range", key))
	}
	return e.push(e.now+d, key, nil, fn, arg)
}

// Cancel deactivates ev if it has not fired. Safe to call on zero or stale
// handles (including a handle whose slot has been recycled by a newer event
// — the generation check makes that a no-op). The queue entry is tombstoned
// in O(1) and swept when it reaches the front.
func (e *Engine) Cancel(ev Event) {
	if ev.e != e || ev.e == nil {
		return
	}
	s := &e.slots[ev.slot]
	if s.gen != ev.gen || !s.live {
		return
	}
	s.live = false
	s.fn = nil
	s.argFn = nil
	s.arg = nil
	e.canceled++
	e.live--
}

// Stop makes the current Run/RunUntil call return after the in-flight event.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the earliest pending event and returns true, or returns false
// if the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ent := e.queue[0]
		e.popTop()
		s := &e.slots[ent.slot]
		if !s.live {
			e.release(ent.slot) // tombstoned by Cancel; sweep
			continue
		}
		fn, argFn, arg := s.fn, s.argFn, s.arg
		e.release(ent.slot) // free before firing so fn can recycle the slot
		e.now = ent.at
		e.processed++
		e.live--
		if argFn != nil {
			argFn(arg)
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run drains the event queue or stops when Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil processes events with firing time <= deadline, then advances the
// clock to the deadline. Events scheduled exactly at the deadline do fire.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		// Peek, sweeping tombstones off the front.
		for len(e.queue) > 0 && !e.slots[e.queue[0].slot].live {
			i := e.queue[0].slot
			e.popTop()
			e.release(i)
		}
		if len(e.queue) == 0 || e.queue[0].at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// HeadKey peeks at the earliest pending event and returns its ordering key
// prefix (firing time, scheduling time, collision key). The triple is the
// merge key used by the sharded parallel executor: it is meaningful across
// engines — a cross-shard frame delivery carries the same triple — so the
// shard loop can merge its calendar of remote deliveries with the local
// queue in exactly the serial engine's order. Tombstones are swept off the
// front so the answer reflects a live event. ok is false when the queue is
// empty.
func (e *Engine) HeadKey() (at, schedAt Time, key int32, ok bool) {
	for len(e.queue) > 0 && !e.slots[e.queue[0].slot].live {
		i := e.queue[0].slot
		e.popTop()
		e.release(i)
	}
	if len(e.queue) == 0 {
		return 0, 0, 0, false
	}
	return e.queue[0].at, e.queue[0].schedAt, e.queue[0].key, true
}

// AdvanceTo moves the clock forward to t without firing anything. The
// sharded executor uses it to position an engine at a remote delivery's
// timestamp before invoking the receive path, and to align all engines on a
// window boundary. Moving time backwards panics, exactly like scheduling in
// the past.
func (e *Engine) AdvanceTo(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: AdvanceTo %v before now %v", t, e.now))
	}
	e.now = t
}

// siftUp restores the heap property after appending at index i.
func (e *Engine) siftUp(i int) {
	q := e.queue
	ent := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !ent.before(q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = ent
}

// popTop removes the minimum entry and restores the heap property.
func (e *Engine) popTop() {
	q := e.queue
	n := len(q) - 1
	ent := q[n]
	q[n] = entry{}
	e.queue = q[:n]
	if n == 0 {
		return
	}
	// Sift the former last element down from the root.
	q = e.queue
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && q[r].before(q[l]) {
			child = r
		}
		if !q[child].before(ent) {
			break
		}
		q[i] = q[child]
		i = child
	}
	q[i] = ent
}

// ticker is the reusable state behind Engine.Ticker: one allocation at
// creation, zero per tick (the reschedule goes through the arg path).
type ticker struct {
	e       *Engine
	period  Time
	fn      func()
	stopped bool
	ev      Event
}

func tickerFire(v any) {
	t := v.(*ticker)
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.ev = t.e.AfterArg(t.period, tickerFire, t)
	}
}

// Ticker invokes fn every period until cancel is invoked or the engine
// drains. It returns a stop function. The first tick fires one period from
// now.
func (e *Engine) Ticker(period Time, fn func()) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker period %v", period))
	}
	t := &ticker{e: e, period: period, fn: fn}
	t.ev = e.AfterArg(period, tickerFire, t)
	return func() {
		t.stopped = true
		e.Cancel(t.ev)
	}
}
