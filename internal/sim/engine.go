package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. It is returned by Schedule/After so the
// caller can cancel it (e.g. a retransmission timer disarmed by an ACK).
type Event struct {
	at       Time
	seq      uint64 // tiebreak: same-time events fire in scheduling order
	index    int    // heap index, -1 once popped or cancelled
	fn       func()
	canceled bool
}

// At returns the firing time of the event.
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler.
//
// The zero value is not usable; construct with NewEngine. An Engine must be
// driven from one goroutine; the harness-level parallelism in this project
// runs one independent Engine per (scheme, seed, sweep-point) instead of
// parallelizing inside a run.
type Engine struct {
	now       Time
	seq       uint64
	events    eventHeap
	stopped   bool
	processed uint64
}

// NewEngine returns an engine positioned at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Processed returns how many events have fired so far (for harness stats).
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule registers fn to run at absolute time at. Scheduling in the past
// panics: it always indicates a modelling bug, and silently reordering time
// would corrupt every downstream measurement.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After registers fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel removes ev from the queue if it has not fired. Safe to call twice.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	heap.Remove(&e.events, ev.index)
	ev.index = -1
}

// Stop makes the current Run/RunUntil call return after the in-flight event.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the earliest pending event and returns true, or returns false
// if the queue is empty.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.processed++
		ev.fn()
		return true
	}
	return false
}

// Run drains the event queue or stops when Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil processes events with firing time <= deadline, then advances the
// clock to the deadline. Events scheduled exactly at the deadline do fire.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		// Peek.
		var next *Event
		for len(e.events) > 0 && e.events[0].canceled {
			heap.Pop(&e.events)
		}
		if len(e.events) > 0 {
			next = e.events[0]
		}
		if next == nil || next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Ticker invokes fn every period until cancel is invoked or the engine
// drains. It returns a stop function. The first tick fires one period from
// now.
func (e *Engine) Ticker(period Time, fn func()) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker period %v", period))
	}
	stopped := false
	var ev *Event
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			ev = e.After(period, tick)
		}
	}
	ev = e.After(period, tick)
	return func() {
		stopped = true
		e.Cancel(ev)
	}
}
