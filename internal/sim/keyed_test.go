package sim

import "testing"

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", name)
		}
	}()
	fn()
}

// TestAfterArgKeyedValidation pins the argument contract: keys are positive
// and strictly below KeyNone (the unkeyed sentinel), callbacks are non-nil,
// delays are non-negative.
func TestAfterArgKeyedValidation(t *testing.T) {
	fn := func(any) {}
	mustPanic(t, "negative key", func() {
		NewEngine().AfterArgKeyed(0, -1, fn, nil)
	})
	mustPanic(t, "KeyNone key", func() {
		NewEngine().AfterArgKeyed(0, KeyNone, fn, nil)
	})
	mustPanic(t, "nil callback", func() {
		NewEngine().AfterArgKeyed(0, 1, nil, nil)
	})
	mustPanic(t, "negative delay", func() {
		NewEngine().AfterArgKeyed(-1, 1, fn, nil)
	})
	// Key 0 and KeyNone-1 are both legal endpoints.
	e := NewEngine()
	e.AfterArgKeyed(0, 0, fn, nil)
	e.AfterArgKeyed(0, KeyNone-1, fn, nil)
}

// TestKeyedOrderAtInstant checks the canonical collision order: events that
// share (at, schedAt) fire in key order regardless of scheduling order, and
// keyed events precede unkeyed ones at the same instant (every real key is
// below the KeyNone sentinel).
func TestKeyedOrderAtInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	rec := func(arg any) { got = append(got, arg.(int)) }

	// Schedule out of key order, all at t=10 from t=0 (same schedAt).
	e.Schedule(10, func() { got = append(got, 999) }) // unkeyed: fires last
	e.AfterArgKeyed(10, 7, rec, 7)
	e.AfterArgKeyed(10, 2, rec, 2)
	e.AfterArgKeyed(10, 5, rec, 5)
	e.AfterArgKeyed(10, 0, rec, 0)
	e.Run()

	want := []int{0, 2, 5, 7, 999}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v (canonical key order, unkeyed last)", got, want)
		}
	}
}

// TestKeyedOrderSchedAtDominates checks that scheduling time outranks the
// key: an event scheduled earlier (smaller schedAt) fires before a
// same-deadline event scheduled later, even when the later one has a smaller
// key. This is what makes the comparator an extension of the engine's
// original FIFO tiebreak rather than a reordering of it.
func TestKeyedOrderSchedAtDominates(t *testing.T) {
	e := NewEngine()
	var got []int
	rec := func(arg any) { got = append(got, arg.(int)) }

	e.AfterArgKeyed(10, 9, rec, 9) // schedAt 0
	e.Schedule(5, func() {
		e.AfterArgKeyed(5, 1, rec, 1) // same deadline 10, schedAt 5
	})
	e.Run()

	if len(got) != 2 || got[0] != 9 || got[1] != 1 {
		t.Fatalf("fired %v, want [9 1] (earlier schedAt wins over smaller key)", got)
	}
}

// TestHeadKeyPrefix pins the HeadKey peek the sharded merge loop depends on:
// it reports the live head's (at, schedAt, key) triple, sweeps tombstones,
// and reports ok=false on an empty queue.
func TestHeadKeyPrefix(t *testing.T) {
	e := NewEngine()
	if _, _, _, ok := e.HeadKey(); ok {
		t.Fatal("empty engine reported a head")
	}

	fn := func(any) {}
	ev := e.AfterArgKeyed(10, 3, fn, nil)
	e.Schedule(20, func() {})

	at, schedAt, key, ok := e.HeadKey()
	if !ok || at != 10 || schedAt != 0 || key != 3 {
		t.Fatalf("HeadKey = (%v, %v, %d, %v), want (10, 0, 3, true)", at, schedAt, key, ok)
	}

	// Cancel the keyed head: the peek must sweep the tombstone and report
	// the unkeyed event with the KeyNone sentinel.
	e.Cancel(ev)
	at, schedAt, key, ok = e.HeadKey()
	if !ok || at != 20 || schedAt != 0 || key != KeyNone {
		t.Fatalf("after cancel HeadKey = (%v, %v, %d, %v), want (20, 0, %d, true)",
			at, schedAt, key, ok, KeyNone)
	}

	e.Run()
	if _, _, _, ok := e.HeadKey(); ok {
		t.Fatal("drained engine reported a head")
	}
}

// TestAdvanceTo pins the clock-positioning primitive the shard loop uses
// before injecting a remote delivery: forward moves are exact, backward
// moves panic.
func TestAdvanceTo(t *testing.T) {
	e := NewEngine()
	e.AdvanceTo(42)
	if e.Now() != 42 {
		t.Fatalf("Now = %v after AdvanceTo(42)", e.Now())
	}
	e.AdvanceTo(42) // idempotent
	mustPanic(t, "backward AdvanceTo", func() { e.AdvanceTo(41) })
}
