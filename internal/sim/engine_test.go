package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1_000_000_000_000*Picosecond {
		t.Fatalf("Second = %d ps", int64(Second))
	}
	if Microsecond.Micros() != 1 {
		t.Fatalf("Micros: %v", Microsecond.Micros())
	}
	if FromSeconds(1.5) != Second+500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{1500 * Picosecond, "1.500ns"},
		{Microsecond, "1.000us"},
		{300 * Microsecond, "300.000us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000000s"},
		{-Microsecond, "-1.000us"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTxTimeExactAtPaperRates(t *testing.T) {
	// One MTU at each rate the paper sweeps must be integral picoseconds.
	cases := []struct {
		rate int64
		want Time
	}{
		{100e9, 121440 * Picosecond},
		{200e9, 60720 * Picosecond},
		{400e9, 30360 * Picosecond},
	}
	for _, c := range cases {
		if got := TxTime(1518, c.rate); got != c.want {
			t.Errorf("TxTime(1518, %d) = %v want %v", c.rate, got, c.want)
		}
	}
}

func TestTxTimeLargeNoOverflow(t *testing.T) {
	// 1 GB at 1 Gbps = 8 seconds; naive bits*Second overflows int64.
	got := TxTime(1<<30, 1e9)
	want := Time(8589934592) * Nanosecond / 1 // 2^30*8 ns
	if got != want {
		t.Fatalf("TxTime(1GiB, 1Gbps) = %v want %v", got, want)
	}
}

func TestBytesAtInvertsTxTime(t *testing.T) {
	for _, rate := range []int64{25e9, 100e9, 200e9, 400e9} {
		for _, size := range []int{64, 1024, 1518, 9000} {
			d := TxTime(size, rate)
			got := BytesAt(rate, d)
			// Truncation may lose at most one byte.
			if got < int64(size)-1 || got > int64(size) {
				t.Errorf("BytesAt(%d, TxTime(%d)) = %d", rate, size, got)
			}
		}
	}
}

func TestTxTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TxTime(100, 0)
}

func TestEngineFiresInOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{30, 10, 20, 10, 0} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	e.Run()
	want := []Time{0, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v want %v", got, want)
		}
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(42, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered: got[%d] = %d", i, v)
		}
	}
}

func TestEngineNowAdvances(t *testing.T) {
	e := NewEngine()
	e.Schedule(5*Microsecond, func() {
		if e.Now() != 5*Microsecond {
			t.Errorf("Now inside event = %v", e.Now())
		}
		e.After(2*Microsecond, func() {
			if e.Now() != 7*Microsecond {
				t.Errorf("chained Now = %v", e.Now())
			}
		})
	})
	e.Run()
	if e.Now() != 7*Microsecond {
		t.Fatalf("final Now = %v", e.Now())
	}
	if e.Processed() != 2 {
		t.Fatalf("Processed = %d", e.Processed())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine().Schedule(0, nil)
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	if !ev.Pending() {
		t.Fatal("Pending() false for scheduled event")
	}
	if ev.At() != 10 {
		t.Fatalf("At() = %v want 10", ev.At())
	}
	e.Cancel(ev)
	e.Cancel(ev) // double-cancel is safe
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if ev.Pending() {
		t.Fatal("Pending() true after Cancel")
	}
}

func TestZeroEventHandle(t *testing.T) {
	e := NewEngine()
	var ev Event
	if ev.Pending() {
		t.Fatal("zero handle pending")
	}
	if ev.At() != 0 {
		t.Fatal("zero handle has a firing time")
	}
	e.Cancel(ev) // must be a no-op, not a panic
}

// TestStaleHandleCancelIsNoOp is the pooled-engine safety property: after an
// event's slot is recycled by a newer event, cancelling the old handle must
// not touch the new occupant.
func TestStaleHandleCancelIsNoOp(t *testing.T) {
	e := NewEngine()
	ev1 := e.Schedule(10, func() {})
	e.Cancel(ev1)
	for e.Step() { // sweeps the tombstone, freeing the slot
	}

	fired := false
	ev2 := e.Schedule(20, func() { fired = true })
	e.Cancel(ev1) // stale: same slot, older generation
	if !ev2.Pending() {
		t.Fatal("stale cancel deactivated the slot's new occupant")
	}
	e.Run()
	if !fired {
		t.Fatal("recycled event did not fire after stale cancel")
	}

	// A handle to a fired event is equally inert.
	e.Cancel(ev2)
	fired3 := false
	ev3 := e.Schedule(30, func() { fired3 = true })
	e.Cancel(ev2)
	e.Run()
	if !fired3 {
		t.Fatal("fired-handle cancel corrupted a later event")
	}
	_ = ev3
}

// TestSlotReuse asserts the freelist actually recycles: steady-state
// schedule/fire churn must not grow the slab.
func TestSlotReuse(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10_000; i++ {
		e.Schedule(Time(i), func() {})
		e.Step()
	}
	st := e.Stats()
	if st.Slots > 2 {
		t.Fatalf("slab grew to %d slots under sequential churn", st.Slots)
	}
	if st.ReuseRate() < 0.99 {
		t.Fatalf("reuse rate %.3f, want ~1", st.ReuseRate())
	}
	if st.Processed != 10_000 || st.Scheduled != 10_000 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestEngineSteadyStateZeroAlloc pins the benchmark claim as a test: warm
// schedule/cancel/fire churn allocates nothing.
func TestEngineSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	noop := func() {}
	argNoop := func(any) {}
	// Warm the slab and the queue.
	for i := 0; i < 64; i++ {
		e.After(Time(i), noop)
	}
	for e.Step() {
	}
	allocs := testing.AllocsPerRun(1000, func() {
		a := e.After(10, noop)
		b := e.AfterArg(20, argNoop, e)
		e.Cancel(a)
		_ = b
		e.Step() // sweeps a's tombstone, fires b
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/cancel/fire allocates %.1f/op (want 0)", allocs)
	}
}

func TestScheduleArg(t *testing.T) {
	e := NewEngine()
	type box struct{ n int }
	b := &box{}
	bump := func(v any) { v.(*box).n++ }
	e.ScheduleArg(5, bump, b)
	e.AfterArg(7, bump, b)
	e.Run()
	if b.n != 2 {
		t.Fatalf("arg events fired %d times, want 2", b.n)
	}
	if e.Now() != 7 {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestCancelFromInsideEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	var victim Event
	e.Schedule(5, func() { e.Cancel(victim) })
	victim = e.Schedule(10, func() { fired = true })
	e.Schedule(15, func() {})
	e.Run()
	if fired {
		t.Fatal("victim fired despite cancel")
	}
	if e.Now() != 15 {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %v", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v want 20", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 3 {
		t.Fatalf("fired %v", fired)
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %v want 100", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i), func() {
			n++
			if n == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if n != 3 {
		t.Fatalf("processed %d events after Stop, want 3", n)
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending = %d", e.Pending())
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var stop func()
	stop = e.Ticker(10*Microsecond, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 4 {
			stop()
		}
	})
	e.RunUntil(Millisecond)
	if len(ticks) != 4 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i, at := range ticks {
		if at != Time(i+1)*10*Microsecond {
			t.Fatalf("tick %d at %v", i, at)
		}
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine().Ticker(0, func() {})
}

// Property: for any set of random (time, id) pairs, events fire sorted by
// time with ties broken by insertion order.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, d := range delays {
			at := Time(d)
			i := i
			e.Schedule(at, func() { fired = append(fired, rec{at, i}) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		ok := sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].at != fired[j].at {
				return fired[i].at < fired[j].at
			}
			return fired[i].seq < fired[j].seq
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: TxTime is monotone in size and antitone in rate.
func TestQuickTxTimeMonotone(t *testing.T) {
	f := func(a, b uint16, r uint8) bool {
		rate := int64(r%4+1) * 100e9
		sa, sb := int(a), int(b)
		if sa > sb {
			sa, sb = sb, sa
		}
		return TxTime(sa, rate) <= TxTime(sb, rate) &&
			TxTime(sb, rate) >= TxTime(sb, 2*rate)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
