// Package sim provides a deterministic discrete-event simulation engine
// with picosecond time resolution.
//
// The engine is the substrate every other package builds on: links schedule
// serialization and propagation completions, switches schedule control-timer
// ticks (RoCC PI updates, INT table refreshes), and hosts schedule pacing
// deadlines and retransmission timeouts. Events scheduled for the same
// instant fire in scheduling order, which makes runs bit-reproducible for a
// given seed.
package sim

import "fmt"

// Time is a simulation timestamp or duration in picoseconds.
//
// Picoseconds keep every quantity in the paper integral: one 1518-byte MTU
// serializes in exactly 30360 ps at 400 Gbps, 60720 ps at 200 Gbps and
// 121440 ps at 100 Gbps, and the paper's 1.5 us propagation delay is
// 1500000 ps. An int64 covers about 106 days, far beyond any experiment.
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String renders the time with an adaptive unit, e.g. "305.2us".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%v", -t)
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// FromSeconds converts floating-point seconds to Time, rounding to the
// nearest picosecond.
func FromSeconds(s float64) Time { return Time(s*float64(Second) + 0.5) }

// TxTime returns the serialization delay of sizeBytes at rateBps.
//
// The computation is ordered to avoid int64 overflow for realistic inputs:
// bytes up to ~1 GB and rates up to ~10 Tbps.
func TxTime(sizeBytes int, rateBps int64) Time {
	if rateBps <= 0 {
		panic(fmt.Sprintf("sim.TxTime: non-positive rate %d", rateBps))
	}
	bits := int64(sizeBytes) * 8
	if bits <= (1<<63-1)/int64(Second) {
		// Exact integer path; covers every packet-sized input (up to ~1 MB).
		return Time(bits * int64(Second) / rateBps)
	}
	// Bulk path for giant transfers: integer seconds plus a float remainder.
	// The remainder is < 1 s, so float64 rounding error is < 1 ps relative
	// to a picosecond-scale result.
	sec := bits / rateBps
	rem := bits % rateBps
	frac := float64(rem) / float64(rateBps) * float64(Second)
	return Time(sec)*Second + Time(frac+0.5)
}

// BytesAt returns how many bytes a link at rateBps serializes in d.
func BytesAt(rateBps int64, d Time) int64 {
	if d <= 0 {
		return 0
	}
	// rate * d / (8 * Second), split to avoid overflow.
	sec := int64(d) / int64(Second)
	rem := int64(d) % int64(Second)
	return rateBps/8*sec + (rateBps*rem)/(8*int64(Second))
}
