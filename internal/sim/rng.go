package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64-seeded xoshiro256**). The experiments need reproducible
// streams that are stable across Go releases, which math/rand's global
// source does not guarantee; rolling the generator also keeps the module
// stdlib-only in spirit (no behavioural dependence on rand internals).
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed int64) *RNG {
	r := &RNG{}
	x := uint64(seed)
	for i := range r.s {
		// splitmix64 to spread a possibly low-entropy seed.
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not start at the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// ExpFloat64 returns an exponentially distributed value with mean 1,
// via inverse transform. Used for Poisson inter-arrival times.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	// Guard u == 0: -log(0) is +Inf.
	for u == 0 {
		u = r.Float64()
	}
	return -ln(u)
}

// Fork derives an independent child stream; children created in the same
// order from the same parent are identical across runs.
func (r *RNG) Fork() *RNG {
	return NewRNG(int64(r.Uint64()))
}

func ln(x float64) float64 { return math.Log(x) }
