package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/100 identical draws from different seeds", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered %d values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exp mean = %v, want ~1", mean)
	}
}

func TestForkIndependence(t *testing.T) {
	p1, p2 := NewRNG(99), NewRNG(99)
	c1, c2 := p1.Fork(), p2.Fork()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("forked children not reproducible")
		}
	}
	// Child stream should differ from parent continuation.
	if p1.Uint64() == c1.Uint64() {
		t.Log("coincidental equality is possible but suspicious") // not fatal
	}
}

// Property: Int63n stays within bounds for arbitrary positive n.
func TestQuickInt63nBounds(t *testing.T) {
	r := NewRNG(17)
	f := func(n int64) bool {
		if n <= 0 {
			n = -n + 1
		}
		v := r.Int63n(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
