package packet

import (
	"sync"
	"testing"
)

// TestPoolsDisjointUnderConcurrency models the LP-sharded executor's memory
// discipline: each shard owns a private Pool and drives it from its own
// goroutine, with no locking inside Get/Put. The test runs one goroutine per
// pool doing Get/mutate/Put churn concurrently (so -race would flag any
// accidental sharing), then checks the frame sets the pools handed out are
// pairwise disjoint — a frame recycled by shard A must never surface from
// shard B's pool.
func TestPoolsDisjointUnderConcurrency(t *testing.T) {
	const (
		shards = 8
		rounds = 2000
		depth  = 16 // frames simultaneously checked out per shard
	)
	pools := make([]*Pool, shards)
	seen := make([]map[*Packet]struct{}, shards)
	for i := range pools {
		pools[i] = NewPool()
		seen[i] = map[*Packet]struct{}{}
	}

	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := pools[i]
			live := make([]*Packet, 0, depth)
			for r := 0; r < rounds; r++ {
				for len(live) < depth {
					pkt := p.Get()
					pkt.FlowID = uint64(i) // shard-colored payload
					pkt.AddHop(IntHop{SwitchID: int32(i)})
					seen[i][pkt] = struct{}{}
					live = append(live, pkt)
				}
				// Release in FIFO order so recycling actually cycles frames.
				for len(live) > depth/2 {
					pkt := live[0]
					live = live[1:]
					if pkt.FlowID != uint64(i) {
						t.Errorf("shard %d holds frame colored %d", i, pkt.FlowID)
						return
					}
					p.Put(pkt)
				}
			}
		}(i)
	}
	wg.Wait()

	for i := 0; i < shards; i++ {
		for j := i + 1; j < shards; j++ {
			for pkt := range seen[i] {
				if _, shared := seen[j][pkt]; shared {
					t.Fatalf("pools %d and %d handed out the same frame %p", i, j, pkt)
				}
			}
		}
	}
	for i, p := range pools {
		st := p.Stats()
		if st.Gets == 0 || st.News == 0 || st.Puts == 0 {
			t.Fatalf("pool %d saw no traffic: %+v", i, st)
		}
		if st.HitRate() <= 0.5 {
			t.Fatalf("pool %d hit rate %.3f — churn did not recycle", i, st.HitRate())
		}
	}
}

// TestDoublePutAcrossPools checks the single-owner guard is a property of the
// frame, not the pool: releasing a frame into a second shard's pool while the
// first still holds it panics just like a same-pool double Put. This is the
// failure mode a cross-shard delivery bug would produce (sender shard and
// receiver shard both believing they own the frame).
func TestDoublePutAcrossPools(t *testing.T) {
	a, b := NewPool(), NewPool()
	pkt := a.Get()
	a.Put(pkt)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-pool double Put did not panic")
		}
	}()
	b.Put(pkt)
}

// TestPoolStatsAggregate pins the arithmetic the sharded Network uses to
// report one fabric-wide pool_hit_rate: per-shard counters sum, and HitRate
// over the sum equals (ΣGets-ΣNews)/ΣGets — not the mean of per-shard rates.
func TestPoolStatsAggregate(t *testing.T) {
	mk := func(gets, news, puts int) *Pool {
		p := NewPool()
		live := []*Packet{}
		for i := 0; i < gets; i++ {
			// First `news` gets must miss: keep the pool empty until then.
			pkt := p.Get()
			if i < news-1 {
				live = append(live, pkt)
			} else {
				p.Put(pkt)
				if len(live) > 0 {
					p.Put(live[0])
					live = live[1:]
				}
			}
		}
		for _, pkt := range live {
			p.Put(pkt)
		}
		st := p.Stats()
		if int(st.Gets) != gets || int(st.News) != news || int(st.Puts) != puts {
			t.Fatalf("pool construction off: want gets=%d news=%d puts=%d, got %+v",
				gets, news, puts, st)
		}
		return p
	}
	// Two shards with very different hit rates.
	p1 := mk(10, 5, 10) // hit rate 0.5
	p2 := mk(90, 1, 90) // hit rate ~0.989

	var total PoolStats
	for _, p := range []*Pool{p1, p2} {
		s := p.Stats()
		total.Gets += s.Gets
		total.News += s.News
		total.Puts += s.Puts
	}
	if total.Gets != 100 || total.News != 6 || total.Puts != 100 {
		t.Fatalf("aggregate = %+v", total)
	}
	if got, want := total.HitRate(), 0.94; got != want {
		t.Fatalf("aggregate hit rate = %v want %v", got, want)
	}
	// The wrong aggregation (mean of rates) would give ~0.744; make sure the
	// pinned value actually distinguishes the two.
	mean := (p1.Stats().HitRate() + p2.Stats().HitRate()) / 2
	if mean == total.HitRate() {
		t.Fatal("test lost its discriminating power")
	}
}
