package packet

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestSizeBytes(t *testing.T) {
	cases := []struct {
		name string
		p    Packet
		want int
	}{
		{"full data", Packet{Type: Data, PayloadBytes: 1452}, DataHeaderBytes + 1452},
		{"data with 3 INT", Packet{Type: Data, PayloadBytes: 1000, Hops: make([]IntHop, 3)}, DataHeaderBytes + 1000 + 24},
		{"bare ack", Packet{Type: Ack}, AckBaseBytes},
		{"ack with 3 INT", Packet{Type: Ack, Hops: make([]IntHop, 3)}, AckBaseBytes + 24},
		{"nack", Packet{Type: Nack}, AckBaseBytes},
		{"cnp", Packet{Type: Cnp}, CnpBytes},
		{"pause", Packet{Type: PfcPause}, PfcFrameBytes},
		{"resume", Packet{Type: PfcResume}, PfcFrameBytes},
	}
	for _, c := range cases {
		if got := c.p.SizeBytes(); got != c.want {
			t.Errorf("%s: SizeBytes = %d want %d", c.name, got, c.want)
		}
	}
}

func TestAckSmallerThanData(t *testing.T) {
	// Observation 3: ACKs are a few dozen bytes, data up to MTU. Even with a
	// full complement of INT hops the ACK must stay far below the MTU.
	ack := Packet{Type: Ack, Hops: make([]IntHop, 5)}
	if ack.SizeBytes() >= 150 {
		t.Fatalf("ACK with 5 hops is %dB, should be ~100B", ack.SizeBytes())
	}
}

func TestAddHopBound(t *testing.T) {
	p := Packet{Type: Ack}
	for i := 0; i < MaxIntHops; i++ {
		p.AddHop(IntHop{SwitchID: int32(i)})
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic past MaxIntHops")
		}
	}()
	p.AddHop(IntHop{})
}

func TestPathID(t *testing.T) {
	p := Packet{Type: Ack}
	p.AddHop(IntHop{SwitchID: 0x3})
	p.AddHop(IntHop{SwitchID: 0x5})
	if got := p.PathID(); got != 0x6 {
		t.Fatalf("PathID = %#x want 0x6", got)
	}
	// XOR is order-invariant: same switches, other direction, same ID.
	q := Packet{Type: Ack}
	q.AddHop(IntHop{SwitchID: 0x5})
	q.AddHop(IntHop{SwitchID: 0x3})
	if p.PathID() != q.PathID() {
		t.Fatal("PathID depends on hop order")
	}
}

func TestLastHopOrdering(t *testing.T) {
	h0 := IntHop{SwitchID: 0} // first hop from sender
	h1 := IntHop{SwitchID: 1}
	h2 := IntHop{SwitchID: 2} // last hop before receiver

	hpcc := Packet{Type: Ack, Ordering: SenderToReceiver, Hops: []IntHop{h0, h1, h2}}
	fncc := Packet{Type: Ack, Ordering: ReceiverToSender, Hops: []IntHop{h2, h1, h0}}

	lh, ok := hpcc.LastHop()
	if !ok || lh.SwitchID != 2 {
		t.Fatalf("hpcc LastHop = %+v", lh)
	}
	lf, ok := fncc.LastHop()
	if !ok || lf.SwitchID != 2 {
		t.Fatalf("fncc LastHop = %+v", lf)
	}
	for i := 0; i < 3; i++ {
		if hpcc.HopAtDistanceFromSender(i).SwitchID != int32(i) {
			t.Fatalf("hpcc hop %d mismatch", i)
		}
		if fncc.HopAtDistanceFromSender(i).SwitchID != int32(i) {
			t.Fatalf("fncc hop %d mismatch", i)
		}
	}
}

func TestLastHopEmpty(t *testing.T) {
	p := Packet{Type: Ack}
	if _, ok := p.LastHop(); ok {
		t.Fatal("LastHop ok on empty hops")
	}
}

func TestClone(t *testing.T) {
	p := &Packet{Type: Ack, FlowID: 9, Hops: []IntHop{{SwitchID: 1}}}
	q := p.Clone()
	q.Hops[0].SwitchID = 42
	q.FlowID = 10
	if p.Hops[0].SwitchID != 1 || p.FlowID != 9 {
		t.Fatal("Clone shares state with original")
	}
}

func TestTypeString(t *testing.T) {
	if Data.String() != "DATA" || PfcPause.String() != "PAUSE" {
		t.Fatal("Type.String mismatch")
	}
	if !PfcPause.IsControl() || !PfcResume.IsControl() || Data.IsControl() {
		t.Fatal("IsControl wrong")
	}
	if Type(99).String() == "" {
		t.Fatal("unknown type should still render")
	}
}

func TestIntHopFields(t *testing.T) {
	h := IntHop{B: 100e9, TS: 5 * sim.Microsecond, TxBytes: 123456, QLen: 789}
	if h.B != 100e9 || h.TS != 5*sim.Microsecond || h.TxBytes != 123456 || h.QLen != 789 {
		t.Fatal("IntHop field roundtrip failed")
	}
}

func TestSymmetricHashInvariance(t *testing.T) {
	ft := FiveTuple{SrcAddr: 12, DstAddr: 99, SrcPort: 4791, DstPort: 1021, Proto: 17}
	if SymmetricHash(ft) != SymmetricHash(ft.Reverse()) {
		t.Fatal("SymmetricHash not symmetric")
	}
	if AsymmetricHash(ft) == AsymmetricHash(ft.Reverse()) {
		t.Fatal("AsymmetricHash unexpectedly symmetric for this tuple")
	}
}

// Property: symmetric hash is invariant under Reverse for all tuples.
func TestQuickSymmetricHash(t *testing.T) {
	f := func(sa, da int32, sp, dp uint16) bool {
		ft := FiveTuple{SrcAddr: sa, DstAddr: da, SrcPort: sp, DstPort: dp, Proto: 17}
		return SymmetricHash(ft) == SymmetricHash(ft.Reverse())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: distinct flows rarely collide (sanity of distribution): over
// random tuples, the low 3 bits of the hash should hit all 8 buckets.
func TestHashBucketCoverage(t *testing.T) {
	seen := make(map[uint64]int)
	for i := 0; i < 4096; i++ {
		ft := FiveTuple{
			SrcAddr: int32(i * 7), DstAddr: int32(i*13 + 1),
			SrcPort: uint16(i * 31), DstPort: uint16(i*17 + 3), Proto: 17,
		}
		seen[SymmetricHash(ft)%8]++
	}
	for b := uint64(0); b < 8; b++ {
		if seen[b] < 256 {
			t.Fatalf("bucket %d underpopulated: %d/4096", b, seen[b])
		}
	}
}

func TestTupleFromPacket(t *testing.T) {
	p := Packet{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20}
	ft := p.Tuple()
	if ft.SrcAddr != 1 || ft.DstAddr != 2 || ft.SrcPort != 10 || ft.DstPort != 20 || ft.Proto != 17 {
		t.Fatalf("Tuple = %+v", ft)
	}
}

func TestSizeBytesPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := Packet{Type: Type(77)}
	p.SizeBytes()
}
