package packet

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestRateCodeRoundtrip(t *testing.T) {
	for _, bps := range []int64{10e9, 25e9, 100e9, 200e9, 400e9, 1600e9} {
		code, err := EncodeRate(bps)
		if err != nil {
			t.Fatalf("encode %d: %v", bps, err)
		}
		got, err := DecodeRate(code)
		if err != nil || got != bps {
			t.Fatalf("roundtrip %d -> %d (%v)", bps, got, err)
		}
	}
	if _, err := EncodeRate(123); err == nil {
		t.Fatal("off-table rate encoded")
	}
	if _, err := DecodeRate(15); err == nil {
		t.Fatal("out-of-table code decoded")
	}
}

func TestEncodeHopRoundtrip(t *testing.T) {
	h := IntHop{
		B:       100e9,
		TS:      5 * sim.Microsecond,
		TxBytes: 640_000, // 10000 units, no wrap
		QLen:    128_000, // 2000 units
	}
	w, err := EncodeHop(h)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecodeHop(w)
	if err != nil {
		t.Fatal(err)
	}
	if d.B != 100e9 {
		t.Fatalf("B = %d", d.B)
	}
	if d.TSNs != 5000 {
		t.Fatalf("TSNs = %d", d.TSNs)
	}
	if d.TxUnits != 10000 {
		t.Fatalf("TxUnits = %d", d.TxUnits)
	}
	if d.QLenBytes != 128_000 {
		t.Fatalf("QLenBytes = %d", d.QLenBytes)
	}
}

func TestQLenSaturates(t *testing.T) {
	h := IntHop{B: 100e9, QLen: 100 << 20} // 100 MB queue
	w, _ := EncodeHop(h)
	d, _ := DecodeHop(w)
	want := uint32((1<<16 - 1) * 64)
	if d.QLenBytes != want {
		t.Fatalf("QLen = %d, want saturation at %d", d.QLenBytes, want)
	}
}

func TestTSDeltaAcrossWrap(t *testing.T) {
	// prev just before wrap, cur just after: delta must stay small.
	prev := uint32(1<<24 - 10)
	cur := uint32(5)
	if got := TSDeltaNs(prev, cur); got != 15 {
		t.Fatalf("wrap delta = %d, want 15", got)
	}
	if got := TSDeltaNs(100, 200); got != 100 {
		t.Fatalf("plain delta = %d", got)
	}
}

func TestTxDeltaAcrossWrap(t *testing.T) {
	prev := uint32(1<<20 - 2)
	cur := uint32(3)
	if got := TxDeltaBytes(prev, cur); got != 5*64 {
		t.Fatalf("wrap delta = %d, want %d", got, 5*64)
	}
}

// Property: for any two consecutive true samples whose gaps fit within the
// wrap periods, the wire-reconstructed deltas equal the true deltas (up to
// the 64-byte quantization of txBytes).
func TestQuickWireDeltasMatchTruth(t *testing.T) {
	f := func(startTx uint64, gapUnits uint32, startTsNs uint32, gapNs uint32) bool {
		gapUnits %= 1 << 20 // under one txBytes wrap
		gapNs %= 1 << 24    // under one timestamp wrap

		h1 := IntHop{
			B:       400e9,
			TS:      sim.Time(startTsNs) * sim.Nanosecond,
			TxBytes: (startTx % (1 << 40)) &^ 63, // 64B-aligned
		}
		h2 := h1
		h2.TS += sim.Time(gapNs) * sim.Nanosecond
		h2.TxBytes += uint64(gapUnits) * 64

		w1, err1 := EncodeHop(h1)
		w2, err2 := EncodeHop(h2)
		if err1 != nil || err2 != nil {
			return false
		}
		d1, _ := DecodeHop(w1)
		d2, _ := DecodeHop(w2)
		return TSDeltaNs(d1.TSNs, d2.TSNs) == gapNs &&
			TxDeltaBytes(d1.TxUnits, d2.TxUnits) == uint64(gapUnits)*64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: encoding never produces a word that fails to decode.
func TestQuickEncodeDecodeTotal(t *testing.T) {
	f := func(ts int64, tx uint64, q uint32) bool {
		if ts < 0 {
			ts = -ts
		}
		h := IntHop{B: 200e9, TS: sim.Time(ts), TxBytes: tx, QLen: q}
		w, err := EncodeHop(h)
		if err != nil {
			return false
		}
		_, err = DecodeHop(w)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeHopRejectsUnknownRate(t *testing.T) {
	if _, err := EncodeHop(IntHop{B: 12345}); err == nil {
		t.Fatal("unknown rate encoded")
	}
}
