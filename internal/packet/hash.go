package packet

// ECMP path selection (Observation 2 / Fig 5).
//
// A data packet and its ACK carry mirrored 5-tuples: the ACK swaps source
// and destination addresses and ports. FNCC requires both directions to
// traverse the same switches, which the paper achieves with a symmetric
// routing table plus a hash that is invariant under that swap. SymmetricHash
// implements the invariant hash; AsymmetricHash is the conventional
// direction-sensitive hash, kept for the routing-asymmetry ablation.

// FiveTuple is the ECMP hash input. Proto is fixed (UDP for RoCEv2) but kept
// for fidelity with the hash description in the paper.
type FiveTuple struct {
	SrcAddr, DstAddr int32
	SrcPort, DstPort uint16
	Proto            uint8
}

// Reverse returns the tuple as seen by the reverse-direction packet.
func (ft FiveTuple) Reverse() FiveTuple {
	return FiveTuple{
		SrcAddr: ft.DstAddr, DstAddr: ft.SrcAddr,
		SrcPort: ft.DstPort, DstPort: ft.SrcPort,
		Proto: ft.Proto,
	}
}

// Tuple extracts the packet's 5-tuple.
func (p *Packet) Tuple() FiveTuple {
	return FiveTuple{
		SrcAddr: p.Src, DstAddr: p.Dst,
		SrcPort: p.SrcPort, DstPort: p.DstPort,
		Proto: 17, // UDP, RoCEv2
	}
}

func mix64(x uint64) uint64 {
	// splitmix64 finalizer: cheap, well-distributed, stateless.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Mix64 exposes the hash finalizer for callers that need to fold extra
// entropy into a path-selection hash with full low-bit diffusion (e.g.
// per-packet spraying folds the sequence number through it — a plain
// multiply leaves bit 0 constant for even sequence strides).
func Mix64(x uint64) uint64 { return mix64(x) }

// SymmetricHash hashes the 5-tuple such that a tuple and its Reverse()
// produce the same value: the (addr, port) endpoint pairs are combined with
// commutative operations before mixing. With symmetric routing tables, equal
// hashes yield equal paths for data and ACK.
func SymmetricHash(ft FiveTuple) uint64 {
	a := uint64(uint32(ft.SrcAddr))<<16 | uint64(ft.SrcPort)
	b := uint64(uint32(ft.DstAddr))<<16 | uint64(ft.DstPort)
	// Commutative combine: unordered pair {a, b}.
	sum := a + b
	xor := a ^ b
	return mix64(sum<<1 ^ mix64(xor) ^ uint64(ft.Proto))
}

// AsymmetricHash is the conventional ECMP hash, sensitive to direction.
// FNCC degrades under it because ACKs may sample a different path than the
// data they acknowledge (ablation A1 in DESIGN.md).
func AsymmetricHash(ft FiveTuple) uint64 {
	a := uint64(uint32(ft.SrcAddr))<<16 | uint64(ft.SrcPort)
	b := uint64(uint32(ft.DstAddr))<<16 | uint64(ft.DstPort)
	return mix64(a ^ mix64(b) ^ uint64(ft.Proto))
}
