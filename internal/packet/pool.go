package packet

import "fmt"

// Pool recycles Packet structs for one simulation engine. Like the engine it
// serves, a Pool is single-threaded by design: the harness parallelizes
// across independent runs, never inside one, so Get/Put take no locks.
//
// Ownership discipline (see DESIGN.md "Hot-path memory discipline"): every
// frame has exactly one owner — the host that built it, then the egress
// queue, the wire, and finally the node whose Receive consumes it. The
// consuming sink calls Put exactly once:
//
//   - a host Puts every frame it terminates (data after ACK generation,
//     ACKs/NACKs after the sender CC ran, CNPs, credits, PFC frames);
//   - a switch Puts PFC frames (link-local) and data frames it drops;
//   - forwarded frames are not Put — ownership moves to the next queue.
//
// Observers (trace hooks, CC callbacks) may read a packet during their
// callback but must copy anything they keep: after the sink returns, the
// struct is recycled and every field is zeroed.
type Pool struct {
	free []*Packet

	gets uint64
	news uint64
	puts uint64
}

// PoolStats is the pool's cumulative telemetry, surfaced per run by the
// experiment harness.
type PoolStats struct {
	// Gets counts acquisitions.
	Gets uint64
	// News counts acquisitions that had to allocate a fresh Packet (pool
	// misses).
	News uint64
	// Puts counts releases.
	Puts uint64
}

// HitRate is the fraction of Gets served by recycling ((Gets-News)/Gets);
// it approaches 1 in steady state.
func (s PoolStats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Gets-s.News) / float64(s.Gets)
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Stats returns cumulative acquisition/release counts.
func (p *Pool) Stats() PoolStats {
	return PoolStats{Gets: p.gets, News: p.news, Puts: p.puts}
}

// Free returns how many recycled packets are currently pooled.
func (p *Pool) Free() int { return len(p.free) }

// Get returns a zeroed packet, recycling a released one when available.
func (p *Pool) Get() *Packet {
	p.gets++
	if n := len(p.free); n > 0 {
		pkt := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		pkt.pooled = false
		return pkt
	}
	p.news++
	return &Packet{}
}

// Put releases a packet back to the pool, resetting it first. Putting the
// same packet twice without an intervening Get panics — a double release
// means two owners believed they held the frame, which is exactly the
// corruption the single-owner rule exists to prevent. Put accepts packets
// the pool did not create (tests hand-build frames); nil is a no-op.
func (p *Pool) Put(pkt *Packet) {
	if pkt == nil {
		return
	}
	if pkt.pooled {
		panic(fmt.Sprintf("packet: double Put of %v", pkt))
	}
	pkt.Reset()
	pkt.pooled = true
	p.puts++
	p.free = append(p.free, pkt)
}

// Reset zeroes the packet for reuse, keeping the Hops backing array (its
// capacity is the point of pooling: INT append stays allocation-free). The
// retained array is cleared so no stale hop record can leak into the next
// occupant.
func (pkt *Packet) Reset() {
	hops := pkt.Hops[:cap(pkt.Hops)]
	for i := range hops {
		hops[i] = IntHop{}
	}
	*pkt = Packet{Hops: hops[:0]}
}
