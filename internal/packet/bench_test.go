package packet

import (
	"testing"

	"repro/internal/sim"
)

func BenchmarkSymmetricHash(b *testing.B) {
	ft := FiveTuple{SrcAddr: 12, DstAddr: 99, SrcPort: 4791, DstPort: 1021, Proto: 17}
	var x uint64
	for i := 0; i < b.N; i++ {
		ft.SrcPort = uint16(i)
		x ^= SymmetricHash(ft)
	}
	_ = x
}

func BenchmarkAsymmetricHash(b *testing.B) {
	ft := FiveTuple{SrcAddr: 12, DstAddr: 99, SrcPort: 4791, DstPort: 1021, Proto: 17}
	var x uint64
	for i := 0; i < b.N; i++ {
		ft.SrcPort = uint16(i)
		x ^= AsymmetricHash(ft)
	}
	_ = x
}

func BenchmarkEncodeDecodeHop(b *testing.B) {
	h := IntHop{B: 400e9, TS: 123 * sim.Microsecond, TxBytes: 9_999_936, QLen: 65536}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := EncodeHop(h)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeHop(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAddHopAndSize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := Packet{Type: Ack}
		for h := 0; h < 5; h++ {
			p.AddHop(IntHop{SwitchID: int32(h), B: 100e9})
		}
		if p.SizeBytes() == 0 {
			b.Fatal("size")
		}
	}
}
