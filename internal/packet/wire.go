package packet

// Wire encoding of INT hop records (Fig 7).
//
// On the wire one hop record is 64 bits: a 4-bit bandwidth code, a 24-bit
// timestamp, a 20-bit txBytes counter and a 16-bit queue length — all but
// the bandwidth code wrapping. The simulator carries unwrapped values in
// IntHop for convenience; this file provides the faithful bit-level
// encoding plus the delta arithmetic an RP implementation performs on
// wrapped counters, and is exercised by the tests to show the narrow
// fields lose nothing the algorithm needs.
//
// Units were chosen to the paper's bit budget at data-center scales:
//
//   - B: 4-bit code indexing a rate table (25G..1.6T covers the roadmap).
//   - TS: 24 bits of nanoseconds -> wraps every ~16.8 ms, far longer than
//     any RTT, so deltas between consecutive ACKs are unambiguous.
//   - txBytes: 20 bits of 64-byte units -> wraps every 64 MB; at 400 Gbps
//     that is ~1.3 ms, again far beyond an ACK interval.
//   - qLen: 16 bits of 64-byte units -> saturates at ~4.2 MB, matching
//     shared-buffer scales; deeper queues clamp.

import "fmt"

// Field widths and unit scales of the Fig 7 layout.
const (
	wireTSBits      = 24
	wireTxBits      = 20
	wireQLenBits    = 16
	wireTxUnitBytes = 64
	wireQUnitBytes  = 64

	tsWrap = 1 << wireTSBits
	txWrap = 1 << wireTxBits
	qMax   = 1<<wireQLenBits - 1
)

// rateTable is the 4-bit bandwidth code space (bps). Index 0 is reserved
// for "unknown".
var rateTable = []int64{
	0,
	10e9, 25e9, 40e9, 50e9, 100e9, 200e9, 400e9, 800e9, 1600e9,
}

// EncodeRate returns the 4-bit code for a link rate, or an error for rates
// outside the table (hardware would be provisioned with its own table).
func EncodeRate(bps int64) (uint8, error) {
	for i, r := range rateTable {
		if r == bps {
			return uint8(i), nil
		}
	}
	return 0, fmt.Errorf("packet: rate %d bps not in 4-bit code table", bps)
}

// DecodeRate inverts EncodeRate. Code 0 decodes to 0 ("unknown").
func DecodeRate(code uint8) (int64, error) {
	if int(code) >= len(rateTable) {
		return 0, fmt.Errorf("packet: rate code %d out of table", code)
	}
	return rateTable[code], nil
}

// WireHop is the packed 64-bit representation of one INT record.
type WireHop uint64

// EncodeHop packs an IntHop into the Fig 7 bit layout. Timestamp and
// txBytes wrap; qLen saturates. Encoding fails only for rates outside the
// code table.
func EncodeHop(h IntHop) (WireHop, error) {
	code, err := EncodeRate(h.B)
	if err != nil {
		return 0, err
	}
	tsNs := uint64(h.TS/1000) % tsWrap           // ps -> ns, wrapped
	tx := (h.TxBytes / wireTxUnitBytes) % txWrap // 64B units, wrapped
	q := uint64(h.QLen) / wireQUnitBytes         // 64B units, saturated
	if q > qMax {
		q = qMax
	}
	w := uint64(code)&0xf |
		tsNs<<4 |
		tx<<(4+wireTSBits) |
		q<<(4+wireTSBits+wireTxBits)
	return WireHop(w), nil
}

// DecodedHop is the unpacked view of a WireHop: wrapped fields in their
// wire units. It deliberately does not pretend to be an IntHop — absolute
// values are unrecoverable; only deltas are meaningful.
type DecodedHop struct {
	// B is the decoded link rate in bps.
	B int64
	// TSNs is the wrapped 24-bit timestamp in nanoseconds.
	TSNs uint32
	// TxUnits is the wrapped 20-bit transmitted count in 64-byte units.
	TxUnits uint32
	// QLenBytes is the saturating queue length in bytes.
	QLenBytes uint32
}

// DecodeHop unpacks a WireHop.
func DecodeHop(w WireHop) (DecodedHop, error) {
	code := uint8(w & 0xf)
	b, err := DecodeRate(code)
	if err != nil {
		return DecodedHop{}, err
	}
	return DecodedHop{
		B:         b,
		TSNs:      uint32((w >> 4) & (tsWrap - 1)),
		TxUnits:   uint32((w >> (4 + wireTSBits)) & (txWrap - 1)),
		QLenBytes: uint32((w>>(4+wireTSBits+wireTxBits))&qMax) * wireQUnitBytes,
	}, nil
}

// TSDeltaNs reconstructs the elapsed nanoseconds between two wrapped
// timestamps, assuming the true gap is under one wrap period (~16.8 ms —
// guaranteed between consecutive ACKs of a live flow).
func TSDeltaNs(prev, cur uint32) uint32 {
	return (cur - prev) & (tsWrap - 1)
}

// TxDeltaBytes reconstructs the bytes transmitted between two wrapped
// txBytes samples (true delta under one wrap, 64 MB).
func TxDeltaBytes(prev, cur uint32) uint64 {
	return uint64((cur-prev)&(txWrap-1)) * wireTxUnitBytes
}
