// Package packet defines the on-wire units exchanged by hosts and switches:
// RoCE-style data segments, ACKs carrying in-network telemetry (INT), DCQCN
// congestion-notification packets (CNPs), and PFC pause/resume frames.
//
// The struct layouts mirror the formats the paper describes: one INT hop
// record is the 64-bit {B, TS, txBytes, qLen} tuple of HPCC, and the FNCC
// ACK additionally carries the 16-bit concurrent-flow count N and the
// (nHop, pathID) pair of Fig 7.
package packet

import (
	"fmt"

	"repro/internal/sim"
)

// Type discriminates the frame kinds the simulator forwards.
type Type uint8

const (
	// Data is an application payload segment (RC RDMA Write traffic).
	Data Type = iota
	// Ack acknowledges data cumulatively and carries INT back to the sender.
	Ack
	// Nack requests go-back-N retransmission from an explicit sequence.
	Nack
	// Cnp is DCQCN's congestion notification packet.
	Cnp
	// PfcPause pauses the upstream transmitter (802.1Qbb).
	PfcPause
	// PfcResume releases a previously paused transmitter.
	PfcResume
	// Credit is a receiver-driven transmission grant (ExpressPass-style
	// schemes; §6's "receiver-driven notification" class). PayloadBytes
	// holds the granted byte count.
	Credit
)

// String implements fmt.Stringer for diagnostics.
func (t Type) String() string {
	switch t {
	case Data:
		return "DATA"
	case Ack:
		return "ACK"
	case Nack:
		return "NACK"
	case Cnp:
		return "CNP"
	case PfcPause:
		return "PAUSE"
	case PfcResume:
		return "RESUME"
	case Credit:
		return "CREDIT"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// IsControl reports whether the frame bypasses data queues (PFC frames are
// link-local control traffic transmitted at highest priority).
func (t Type) IsControl() bool { return t == PfcPause || t == PfcResume }

// Wire-size constants in bytes.
const (
	// DataHeaderBytes models Eth+IP+UDP+IB BTH framing of a RoCEv2 segment.
	DataHeaderBytes = 66
	// AckBaseBytes is an ACK before any INT hop records: L2+IP+UDP+BTH+AETH
	// plus FNCC's 16-bit N field and the 4-bit nHop / 12-bit pathID pair.
	AckBaseBytes = 64
	// IntHopBytes is one {B, TS, txBytes, qLen} record: 4+24+20+16 = 64 bits.
	IntHopBytes = 8
	// CnpBytes is the size of a DCQCN congestion notification packet.
	CnpBytes = 64
	// CreditBytes is the wire size of a credit grant (ExpressPass uses
	// minimum-size Ethernet frames).
	CreditBytes = 84
	// PfcFrameBytes is the size of an 802.1Qbb pause/resume frame.
	PfcFrameBytes = 64
	// MaxIntHops bounds the nHop field (4 bits in the Fig 7 layout).
	MaxIntHops = 15
)

// IntHop is the per-hop telemetry record.
//
// The wire encoding packs it into 64 bits (Fig 7): 4-bit bandwidth code,
// 24-bit timestamp, 20-bit txBytes and 16-bit qLen, all wrapping. In the
// simulator we keep the unwrapped values — the sender-side algorithms are
// defined on deltas, which the real hardware reconstructs from the wrapped
// fields; carrying full precision changes nothing observable.
type IntHop struct {
	// SwitchID identifies the stamping switch (contributes to pathID XOR).
	SwitchID int32
	// PortID is the stamped egress port on that switch.
	PortID int32
	// B is the port's link bandwidth in bits per second.
	B int64
	// TS is the switch timestamp when the record was captured.
	TS sim.Time
	// TxBytes is the cumulative byte count transmitted by the port.
	TxBytes uint64
	// QLen is the port's egress queue occupancy in bytes.
	QLen uint32
}

// HopOrdering says how a packet's Hops slice is indexed.
type HopOrdering uint8

const (
	// SenderToReceiver: Hops[0] is the first hop on the request path
	// (HPCC convention — switches append INT as the data packet travels).
	SenderToReceiver HopOrdering = iota
	// ReceiverToSender: Hops[0] is the LAST hop of the request path
	// (FNCC convention — the ACK accumulates INT on the return path, so the
	// switch nearest the receiver inserts first; Algorithm 3 line 25 indexes
	// the last-hop bandwidth as ack.L[0].B).
	ReceiverToSender
)

// Packet is a simulated frame. A single struct covers every Type; unused
// fields stay zero. Packets are passed by pointer and owned by exactly one
// queue or link at a time.
type Packet struct {
	Type Type

	// FlowID identifies the flow (QP) for Data/Ack/Nack/Cnp frames.
	FlowID uint64

	// Class is the 802.1p priority / RoCEv2 service level the frame rides
	// on. The paper's experiments use a single class ("packets from all
	// sources are transferred on the same service level"); the substrate
	// supports several with strict-priority scheduling and per-class PFC,
	// the capability §3.2.1 elides "for clarity of description".
	Class uint8

	// Src and Dst are end-host node IDs. Control frames (PFC) are link-local
	// and leave these zero.
	Src, Dst int32

	// SrcPort and DstPort complete the 5-tuple used for ECMP hashing.
	SrcPort, DstPort uint16

	// Seq is the first payload byte's sequence number (Data), or the
	// cumulative acknowledgment (Ack: all bytes < Seq received; Nack: resume
	// from Seq).
	Seq int64

	// PayloadBytes is the application data carried (Data only).
	PayloadBytes int

	// Last marks the final segment of a flow, prompting an immediate ACK
	// even under cumulative-ACK coalescing.
	Last bool

	// SendTime records when the sender injected the packet (for RTT/trace).
	SendTime sim.Time

	// ECN is the congestion-experienced codepoint (set by DCQCN marking).
	ECN bool

	// Hops carries INT records; see Ordering for indexing.
	Hops []IntHop
	// Ordering declares how Hops is indexed.
	Ordering HopOrdering

	// N is FNCC's concurrent-flow count written by the receiver (Ack only).
	N uint16

	// FairRateBps is RoCC's advertised fair rate: the minimum across
	// congested ports on the path; zero means "no advertisement".
	FairRateBps int64

	// AckedECN tells the sender the acked data had ECN marks (piggybacked
	// echo; DCQCN uses dedicated CNPs, this field supports ECN-echo
	// variants and tests).
	AckedECN bool

	// PauseClass is the 802.1Qbb priority being paused/resumed.
	PauseClass uint8

	// EchoTS echoes the acknowledged data packet's SendTime back to the
	// sender (RTT-based schemes like Timely need it; INT-based schemes
	// leave it zero).
	EchoTS sim.Time

	// InputPort is switch-local metadata: the port the frame arrived on.
	// Algorithm 1 line 3 records it so the egress engine can look up the
	// request-path INT for ACKs. It is rewritten at every switch.
	InputPort int32

	// pooled marks a packet currently resident in a Pool; Pool.Put uses it
	// to detect double releases (two owners for one frame).
	pooled bool
}

// SizeBytes returns the frame's wire size, including all INT records.
func (p *Packet) SizeBytes() int {
	switch p.Type {
	case Data:
		return DataHeaderBytes + p.PayloadBytes + len(p.Hops)*IntHopBytes
	case Ack, Nack:
		return AckBaseBytes + len(p.Hops)*IntHopBytes
	case Cnp:
		return CnpBytes
	case Credit:
		return CreditBytes
	case PfcPause, PfcResume:
		return PfcFrameBytes
	default:
		panic(fmt.Sprintf("packet: SizeBytes on unknown type %d", p.Type))
	}
}

// AddHop appends an INT record, enforcing the 4-bit nHop bound.
func (p *Packet) AddHop(h IntHop) {
	if len(p.Hops) >= MaxIntHops {
		panic(fmt.Sprintf("packet: more than %d INT hops", MaxIntHops))
	}
	p.Hops = append(p.Hops, h)
}

// NHop returns the number of INT records (Fig 7's nHop field).
func (p *Packet) NHop() int { return len(p.Hops) }

// PathID returns the XOR of stamping switch IDs (Fig 7's 12-bit pathID),
// which lets a sender detect that consecutive ACKs took different paths.
func (p *Packet) PathID() uint16 {
	var x uint16
	for i := range p.Hops {
		x ^= uint16(p.Hops[i].SwitchID) & 0x0fff
	}
	return x
}

// LastHop returns the INT record of the request path's final hop under the
// packet's declared ordering, and false if there are no hops.
func (p *Packet) LastHop() (IntHop, bool) {
	if len(p.Hops) == 0 {
		return IntHop{}, false
	}
	if p.Ordering == ReceiverToSender {
		return p.Hops[0], true
	}
	return p.Hops[len(p.Hops)-1], true
}

// HopAtDistanceFromSender returns the i-th hop counted from the sender,
// normalizing over Ordering. i must be in [0, NHop).
func (p *Packet) HopAtDistanceFromSender(i int) IntHop {
	if p.Ordering == ReceiverToSender {
		return p.Hops[len(p.Hops)-1-i]
	}
	return p.Hops[i]
}

// String renders a compact diagnostic form.
func (p *Packet) String() string {
	return fmt.Sprintf("%s flow=%d %d->%d seq=%d size=%dB hops=%d",
		p.Type, p.FlowID, p.Src, p.Dst, p.Seq, p.SizeBytes(), len(p.Hops))
}

// Clone deep-copies the packet (the Hops slice is not shared). Used where a
// frame logically forks, e.g. tracing.
func (p *Packet) Clone() *Packet {
	q := *p
	q.pooled = false // the copy is owned by the caller, not any pool
	if p.Hops != nil {
		q.Hops = append([]IntHop(nil), p.Hops...)
	}
	return &q
}
