package packet

import "testing"

func TestPoolRecycles(t *testing.T) {
	p := NewPool()
	a := p.Get()
	a.Type = Data
	a.PayloadBytes = 1452
	a.AddHop(IntHop{SwitchID: 7, B: 100e9})
	p.Put(a)

	b := p.Get()
	if b != a {
		t.Fatal("pool did not recycle the released packet")
	}
	if b.Type != 0 || b.PayloadBytes != 0 || b.FlowID != 0 || len(b.Hops) != 0 {
		t.Fatalf("recycled packet not reset: %+v", b)
	}
	if cap(b.Hops) == 0 {
		t.Fatal("Reset dropped the Hops capacity the pool exists to keep")
	}

	st := p.Stats()
	if st.Gets != 2 || st.News != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v want 0.5", got)
	}
}

func TestPoolResetClearsStaleHops(t *testing.T) {
	p := NewPool()
	a := p.Get()
	a.AddHop(IntHop{SwitchID: 42, QLen: 9999})
	p.Put(a)
	b := p.Get()
	// Appending after recycle must see zeroed backing storage, not hop 42.
	b.Hops = b.Hops[:1]
	if b.Hops[0].SwitchID != 0 || b.Hops[0].QLen != 0 {
		t.Fatalf("stale hop record survived Reset: %+v", b.Hops[0])
	}
}

func TestPoolDoublePutPanics(t *testing.T) {
	p := NewPool()
	a := p.Get()
	p.Put(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic")
		}
	}()
	p.Put(a)
}

func TestPoolAcceptsForeignPackets(t *testing.T) {
	p := NewPool()
	p.Put(&Packet{Type: Cnp}) // hand-built frame enters the pool
	p.Put(nil)                // no-op
	if p.Free() != 1 {
		t.Fatalf("Free = %d", p.Free())
	}
	if got := p.Get(); got.Type != 0 {
		t.Fatalf("foreign packet not reset: %+v", got)
	}
}

func TestCloneIsNotPooled(t *testing.T) {
	p := NewPool()
	a := p.Get()
	a.AddHop(IntHop{SwitchID: 1})
	c := a.Clone()
	p.Put(a)
	p.Put(c) // the clone is an independent frame; releasing it must not trip
	if p.Free() != 2 {
		t.Fatalf("Free = %d", p.Free())
	}
}

func TestPoolSteadyStateZeroAlloc(t *testing.T) {
	p := NewPool()
	// Warm: one packet with hop capacity in circulation.
	w := p.Get()
	w.AddHop(IntHop{})
	p.Put(w)
	allocs := testing.AllocsPerRun(1000, func() {
		pkt := p.Get()
		pkt.Type = Ack
		pkt.AddHop(IntHop{SwitchID: 3, B: 400e9})
		p.Put(pkt)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/AddHop/Put allocates %.1f/op", allocs)
	}
}
