package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestParallelMapOrdering: results land at their job's index regardless of
// worker interleaving.
func TestParallelMapOrdering(t *testing.T) {
	jobs := make([]int, 100)
	for i := range jobs {
		jobs[i] = i
	}
	for _, workers := range []int{0, 1, 2, 7, 100, 1000} {
		out := ParallelMap(jobs, workers, func(j int) int { return j * j })
		if len(out) != len(jobs) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(out), len(jobs))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestParallelMapZeroJobs: no jobs means an empty, non-nil result and no
// worker goroutines left behind.
func TestParallelMapZeroJobs(t *testing.T) {
	out := ParallelMap(nil, 8, func(j int) int { t.Fatal("fn called"); return 0 })
	if out == nil || len(out) != 0 {
		t.Fatalf("got %v, want empty slice", out)
	}
}

// TestParallelMapWorkerClamp: never more concurrent fn calls than jobs, nor
// than the requested worker count.
func TestParallelMapWorkerClamp(t *testing.T) {
	var cur, peak atomic.Int64
	var mu sync.Mutex
	jobs := make([]int, 30)
	ParallelMap(jobs, 4, func(int) int {
		n := cur.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		runtime.Gosched()
		cur.Add(-1)
		return 0
	})
	if p := peak.Load(); p > 4 {
		t.Fatalf("observed %d concurrent workers, want <= 4", p)
	}

	// More workers than jobs: must not deadlock and must still complete.
	out := ParallelMap([]int{1, 2}, 64, func(j int) int { return j })
	if len(out) != 2 || out[0] != 1 || out[1] != 2 {
		t.Fatalf("clamped run returned %v", out)
	}
}

// TestParallelMapSerialFallback: workers <= 1 runs inline, in order.
func TestParallelMapSerialFallback(t *testing.T) {
	var order []int
	jobs := []int{10, 20, 30}
	ParallelMap(jobs, 1, func(j int) int {
		order = append(order, j) // safe: serial path runs on one goroutine
		return j
	})
	if len(order) != 3 || order[0] != 10 || order[1] != 20 || order[2] != 30 {
		t.Fatalf("serial path ran out of order: %v", order)
	}
}
