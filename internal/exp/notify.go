package exp

import (
	"repro/internal/sim"
)

// NotifyConfig is the E10 experiment quantifying Fig 2/Fig 12's theoretical
// model: with congestion placed at each hop of the chain, how long after
// onset does the victim sender first react, per scheme?
type NotifyConfig struct {
	Schemes []string
	RateBps int64
}

// DefaultNotifyConfig compares all four schemes at 100 G.
func DefaultNotifyConfig() NotifyConfig {
	return NotifyConfig{Schemes: AllSchemes(), RateBps: 100e9}
}

// NotifyRow is one (scheme, hop) measurement.
type NotifyRow struct {
	Scheme string
	Hop    HopPosition
	// Latency is the time from congestion onset (the second flow's start)
	// to the victim's first rate decrease; -1 if it never reacted.
	Latency sim.Time
}

// RunNotify measures notification latency for each scheme at each hop
// position, in parallel.
func RunNotify(cfg NotifyConfig) ([]NotifyRow, error) {
	type job struct {
		scheme string
		hop    HopPosition
	}
	var jobs []job
	for _, s := range cfg.Schemes {
		for _, h := range []HopPosition{HopFirst, HopMiddle, HopLast} {
			jobs = append(jobs, job{s, h})
		}
	}
	type out struct {
		row NotifyRow
		err error
	}
	results := ParallelMap(jobs, 0, func(j job) out {
		hc := DefaultHopConfig(j.scheme, j.hop)
		hc.RateBps = cfg.RateBps
		hc.Flow1Stop = false // persistent congestion for a clean onset edge
		hc.SampleEvery = 200 * sim.Nanosecond
		hc.Duration = 600 * sim.Microsecond
		r, err := RunHop(hc)
		if err != nil {
			return out{err: err}
		}
		lat := sim.Time(-1)
		threshold := 0.85 * float64(cfg.RateBps)
		for _, p := range r.Rates[0].Points {
			if p.T >= hc.Flow1Start && p.V < threshold {
				lat = p.T - hc.Flow1Start
				break
			}
		}
		return out{row: NotifyRow{Scheme: j.scheme, Hop: j.hop, Latency: lat}}
	})
	rows := make([]NotifyRow, 0, len(results))
	for _, o := range results {
		if o.err != nil {
			return nil, o.err
		}
		rows = append(rows, o.row)
	}
	return rows, nil
}
