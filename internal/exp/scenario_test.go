package exp

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Scenario tests beyond the paper's figures: classic congestion-control
// sanity checks that a credible CC implementation must pass.

// TestParkingLot runs the parking-lot topology: a long flow crossing all
// three hops competes with short-path flows joining at each switch. The
// long-path flow must not be starved (it should get a meaningful share of
// its bottleneck), and no queue may grow unboundedly.
func TestParkingLot(t *testing.T) {
	for _, schemeName := range []string{SchemeFNCC, SchemeHPCC} {
		opts := topo.DefaultChainOpts(3)
		opts.SenderAttach = []int{0, 1, 2} // long flow + one joiner per hop
		c := topo.MustChain(netsim.DefaultConfig(), MustScheme(schemeName), opts)

		long := c.AddFlow(1, 0, 1<<40, 0)
		c.AddFlow(2, 1, 1<<40, 0)
		c.AddFlow(3, 2, 1<<40, 0)
		c.Net.RunUntil(3 * sim.Millisecond)

		// Long flow's goodput over the last millisecond.
		acked0 := long.SndUna()
		c.Net.RunUntil(4 * sim.Millisecond)
		goodput := float64(long.SndUna()-acked0) * 8 / sim.Millisecond.Seconds()

		// Fair share at its tightest constraint is B/2 per hop; accepted
		// band is wide — the assertion is "not starved, not dominating".
		if goodput < 15e9 {
			t.Errorf("%s: long flow starved in parking lot: %.1fG", schemeName, goodput/1e9)
		}
		if goodput > 70e9 {
			t.Errorf("%s: long flow dominating: %.1fG", schemeName, goodput/1e9)
		}
		if c.Net.Drops.N != 0 {
			t.Errorf("%s: drops in parking lot", schemeName)
		}
	}
}

// TestFlowChurn exercises rapid join/leave: 50 short flows arriving every
// ~20us over a shared bottleneck; everything must complete and the FCT
// collector must be consistent.
func TestFlowChurn(t *testing.T) {
	c := topo.MustChain(netsim.DefaultConfig(), MustScheme(SchemeFNCC), topo.DefaultChainOpts(4))
	n := 50
	for i := 0; i < n; i++ {
		c.AddFlow(uint64(i+1), i%4, 100_000, sim.Time(i)*20*sim.Microsecond)
	}
	if !c.Net.RunToCompletion(sim.Second) {
		t.Fatal("churn flows incomplete")
	}
	if c.Net.FCT.N() != n {
		t.Fatalf("FCT records %d != %d", c.Net.FCT.N(), n)
	}
	for _, r := range c.Net.FCT.Records {
		if r.Finish <= r.Start {
			t.Fatalf("record %d: finish %v <= start %v", r.FlowID, r.Finish, r.Start)
		}
		if r.Slowdown() < 1 {
			t.Fatalf("record %d: slowdown %v < 1", r.FlowID, r.Slowdown())
		}
	}
}

// TestTimelyRunsOnMicro drives the Timely extension through the standard
// micro-benchmark: it must slow down after the join (later than FNCC) and
// keep the queue bounded.
func TestTimelyRunsOnMicro(t *testing.T) {
	cfg := DefaultMicroConfig(SchemeTimely, 100e9)
	cfg.Duration = 900 * sim.Microsecond
	r, err := RunMicro(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.FirstSlowdown < 0 {
		t.Fatal("Timely never slowed down")
	}
	if r.Drops != 0 {
		t.Fatalf("drops: %d", r.Drops)
	}
	fncc, err := RunMicro(DefaultMicroConfig(SchemeFNCC, 100e9))
	if err != nil {
		t.Fatal(err)
	}
	if r.FirstSlowdown < fncc.FirstSlowdown {
		t.Errorf("RTT-based Timely (%v) reacted before INT-in-ACK FNCC (%v)?",
			r.FirstSlowdown, fncc.FirstSlowdown)
	}
}

// TestSwiftRunsOnMicro drives the Swift extension through the standard
// micro-benchmark.
func TestSwiftRunsOnMicro(t *testing.T) {
	cfg := DefaultMicroConfig(SchemeSwift, 100e9)
	cfg.Duration = 900 * sim.Microsecond
	r, err := RunMicro(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Drops != 0 {
		t.Fatalf("drops: %d", r.Drops)
	}
	if r.QueuePeak == 0 || r.QueuePeak > 500<<10 {
		t.Fatalf("Swift queue peak %.0fKB", r.QueuePeak/1024)
	}
}

// TestMicroSenderScaling: the dumbbell with 4 senders still converges to
// an aggregate near line rate for FNCC (N scales in LHCS).
func TestMicroSenderScaling(t *testing.T) {
	cfg := DefaultMicroConfig(SchemeFNCC, 100e9)
	cfg.Senders = 4
	cfg.Flow1Start = 100 * sim.Microsecond
	cfg.Duration = 1500 * sim.Microsecond
	r, err := RunMicro(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rates) != 4 {
		t.Fatalf("rate series: %d", len(r.Rates))
	}
	if r.MeanUtil < 0.7 {
		t.Fatalf("4-sender utilization %.2f", r.MeanUtil)
	}
	if r.QueuePeak > 500<<10 {
		t.Fatalf("queue peak %dKB at PFC threshold", int64(r.QueuePeak)/1024)
	}
}
