package exp

import (
	"runtime/metrics"
	"time"

	"repro/internal/netsim"
)

// PerfStats is one run's simulator-performance telemetry: engine throughput
// and the efficiency of the event and packet pools. Every runner attaches
// it to its result so sweeps track perf as a first-class, cached,
// regression-comparable output alongside the modelled metrics.
//
// WallSeconds, EventsPerSec, Mallocs and AllocBytes depend on the machine
// and on what else the process is doing — under ParallelMap the memory
// deltas are process-global, so concurrent runs inflate each other's
// counts. They are trend indicators, not exact per-run attributions; the
// engine/pool counters (Events, EventReuseRate, PoolHitRate) are exact and
// deterministic.
type PerfStats struct {
	// Events is the number of simulation events the engine fired.
	Events uint64 `json:"events"`
	// WallSeconds is the host wall-clock time the run took.
	WallSeconds float64 `json:"wall_seconds"`
	// EventsPerSec is Events/WallSeconds.
	EventsPerSec float64 `json:"events_per_sec"`
	// EventReuseRate is the engine slot-pool hit rate (≈1 in steady state).
	EventReuseRate float64 `json:"event_reuse_rate"`
	// PoolHitRate is the packet-pool hit rate (≈1 in steady state).
	PoolHitRate float64 `json:"pool_hit_rate"`
	// Mallocs is the process heap-allocation count delta across the run.
	Mallocs uint64 `json:"mallocs"`
	// AllocBytes is the total bytes allocated across the run.
	AllocBytes uint64 `json:"alloc_bytes"`
	// Shard summarizes the parallel packet executor when the run was
	// sharded; Shard.Shards == 0 for serial runs. Windows and Messages are
	// deterministic for a given topology partition, like Events.
	Shard netsim.ShardStats `json:"shard,omitempty"`
}

// allocSamples reads the cumulative heap-allocation counters through
// runtime/metrics, which unlike runtime.ReadMemStats does not stop the
// world — probing must not serialize the ParallelMap workers it measures.
func allocSamples() (objects, bytes uint64) {
	s := [2]metrics.Sample{
		{Name: "/gc/heap/allocs:objects"},
		{Name: "/gc/heap/allocs:bytes"},
	}
	metrics.Read(s[:])
	return s[0].Value.Uint64(), s[1].Value.Uint64()
}

// PerfProbe captures the process state at run start; End closes the
// measurement against the run's network.
type PerfProbe struct {
	mallocs0 uint64
	bytes0   uint64
	t0       time.Time
}

// BeginPerf starts a run measurement. Call before building the network so
// topology construction and flow setup are attributed to the run.
func BeginPerf() PerfProbe {
	objects, bytes := allocSamples()
	return PerfProbe{mallocs0: objects, bytes0: bytes, t0: time.Now()}
}

// End finalizes the measurement, folding in the engine and pool counters.
func (p PerfProbe) End(net *netsim.Network) PerfStats {
	wall := time.Since(p.t0).Seconds()
	objects, bytes := allocSamples()
	es := net.TotalEngineStats()
	ps := net.TotalPoolStats()
	out := PerfStats{
		Events:         es.Processed,
		WallSeconds:    wall,
		EventReuseRate: es.ReuseRate(),
		PoolHitRate:    ps.HitRate(),
		Mallocs:        objects - p.mallocs0,
		AllocBytes:     bytes - p.bytes0,
		Shard:          net.ShardStats(),
	}
	if wall > 0 {
		out.EventsPerSec = float64(es.Processed) / wall
	}
	return out
}
