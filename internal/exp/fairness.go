package exp

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topo"
)

// FairnessConfig is the Fig 13e experiment: N long-lived flows into one
// receiver; every Stagger a new sender joins, then (after all have joined)
// they exit in joining order, again one per Stagger. Throughput per flow is
// sampled throughout.
//
// The paper staggers by 100 ms; at packet granularity that is an expensive
// run, so Stagger is a parameter — the shape (stair-step convergence to
// B/k at every membership change) is invariant to it as long as Stagger
// spans many RTTs.
type FairnessConfig struct {
	Scheme      string
	Senders     int
	RateBps     int64
	Stagger     sim.Time
	SampleEvery sim.Time
	// Workers > 1 enables the sharded parallel packet executor
	// (bit-identical to serial; see topo.ChainOpts.Workers).
	Workers int
	// MakeScheme, when non-nil, overrides the registry lookup of Scheme.
	MakeScheme SchemeBuilder `json:"-"`
	// Telemetry, when enabled, attaches in-simulation probes for the run.
	Telemetry *telemetry.Config `json:"-"`
}

// DefaultFairnessConfig uses a CI-friendly 1 ms stagger (≈75 RTTs).
func DefaultFairnessConfig(scheme string) FairnessConfig {
	return FairnessConfig{
		Scheme:      scheme,
		Senders:     4,
		RateBps:     100e9,
		Stagger:     sim.Millisecond,
		SampleEvery: 20 * sim.Microsecond,
	}
}

// FairnessResult carries per-flow goodput series and Jain indexes.
type FairnessResult struct {
	Scheme string
	// Goodput holds one series per flow: acked bits per second, averaged
	// over each sample window.
	Goodput []*metrics.Series
	// JainAllActive is Jain's index over the flows active in the window
	// where all Senders overlap, averaged across samples.
	JainAllActive float64
	// Duration is the total simulated span.
	Duration sim.Time
	// Perf is the run's simulator-performance telemetry.
	Perf PerfStats
	// Telemetry is the probe output (nil unless configured).
	Telemetry *telemetry.Output
}

// RunFairness executes the experiment.
func RunFairness(cfg FairnessConfig) (*FairnessResult, error) {
	if cfg.Senders < 2 {
		return nil, fmt.Errorf("exp: fairness needs >= 2 senders")
	}
	probe := BeginPerf()
	scheme, err := buildScheme(cfg.Scheme, cfg.MakeScheme)
	if err != nil {
		return nil, err
	}
	opts := topo.DefaultChainOpts(cfg.Senders)
	opts.RateBps = cfg.RateBps
	opts.Workers = cfg.Workers
	c, err := topo.BuildChain(netsim.DefaultConfig(), scheme, opts)
	if err != nil {
		return nil, err
	}

	// Flow i is sized to live from i*Stagger until (Senders+i)*Stagger if
	// it received exactly its fair share throughout; line-rate elephants
	// trimmed by CC will complete near that point. To keep exits at
	// deterministic times instead, give each flow "infinite" size and
	// measure over the join phase plus one full-membership window; exits
	// are forced by the flow sizes below.
	//
	// Fair-share integral for flow i joining at i*S and exiting at
	// (Senders+i)*S: S * B * (sum over windows of 1/active).
	dur := sim.Time(2*cfg.Senders) * cfg.Stagger
	flows := make([]*netsim.Flow, cfg.Senders)
	for i := range flows {
		bytes := fairShareBytes(cfg.Senders, i, cfg.Stagger, cfg.RateBps)
		flows[i] = c.AddFlow(uint64(i+1), i, bytes, sim.Time(i)*cfg.Stagger)
	}

	res := &FairnessResult{Scheme: cfg.Scheme, Duration: dur}
	lastAcked := make([]int64, cfg.Senders)
	for i := range flows {
		res.Goodput = append(res.Goodput,
			metrics.NewSeries(fmt.Sprintf("%s/flow%d_goodput_bps", cfg.Scheme, i)))
	}
	var jainSum float64
	var jainN int
	allFrom := sim.Time(cfg.Senders-1) * cfg.Stagger
	allTo := sim.Time(cfg.Senders) * cfg.Stagger
	win := cfg.SampleEvery.Seconds()
	stop := c.Net.GlobalTicker(cfg.SampleEvery, func() {
		now := c.Net.Eng.Now()
		var rates []float64
		for i, f := range flows {
			acked := f.SndUna()
			bps := float64(acked-lastAcked[i]) * 8 / win
			lastAcked[i] = acked
			res.Goodput[i].Add(now, bps)
			if now >= allFrom && now < allTo {
				rates = append(rates, bps)
			}
		}
		if len(rates) == cfg.Senders {
			jainSum += metrics.JainIndex(rates)
			jainN++
		}
	})
	tp := telemetry.AttachNet(c.Net, deref(cfg.Telemetry),
		telemetry.Samples(dur, telemetryInterval(cfg.Telemetry)))
	c.Net.RunUntil(dur)
	stop()
	if tp != nil {
		tp.Stop()
		res.Telemetry = tp.Output()
	}
	if jainN > 0 {
		res.JainAllActive = jainSum / float64(jainN)
	}
	res.Perf = probe.End(c.Net)
	return res, nil
}

// fairShareBytes integrates flow i's fair share of B across the membership
// schedule (joins at i*S, exits in join order once everyone has joined).
func fairShareBytes(n, i int, s sim.Time, rateBps int64) int64 {
	bytesPerWindow := float64(rateBps) / 8 * s.Seconds()
	total := 0.0
	// Windows are [k*S, (k+1)*S); flow i is active for k in [i, n+i).
	for k := i; k < n+i; k++ {
		active := 0
		for j := 0; j < n; j++ {
			if k >= j && k < n+j {
				active++
			}
		}
		if active > 0 {
			total += bytesPerWindow / float64(active)
		}
	}
	return int64(total)
}
