package exp

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topo"
)

// HopPosition selects where the joining flow collides with the base flow
// (Fig 11): at the first, middle, or last switch of the M=3 chain.
type HopPosition string

// Hop positions of the Fig 13 gains study.
const (
	HopFirst  HopPosition = "first"
	HopMiddle HopPosition = "middle"
	HopLast   HopPosition = "last"
)

// HopConfig is the Fig 13a-d experiment: congestion placed at a chosen hop,
// FNCC (with and without LHCS) against HPCC.
type HopConfig struct {
	Position    HopPosition
	Scheme      string
	RateBps     int64
	Flow1Start  sim.Time
	Flow1Stop   bool // second flow is finite so congestion clears (Fig 13d)
	Flow1Bytes  int64
	Duration    sim.Time
	SampleEvery sim.Time
	// Workers > 1 enables the sharded parallel packet executor
	// (bit-identical to serial; see topo.ChainOpts.Workers).
	Workers int
	// MakeScheme, when non-nil, overrides the registry lookup of Scheme.
	MakeScheme SchemeBuilder `json:"-"`
	// Telemetry, when enabled, attaches in-simulation probes for the run.
	Telemetry *telemetry.Config `json:"-"`
}

// DefaultHopConfig mirrors §5.4: 100 Gbps, flow1 joins at 300 us and (for
// the rate plot) drains around 450 us.
func DefaultHopConfig(scheme string, pos HopPosition) HopConfig {
	return HopConfig{
		Position:    pos,
		Scheme:      scheme,
		RateBps:     100e9,
		Flow1Start:  300 * sim.Microsecond,
		Flow1Stop:   true,
		Flow1Bytes:  1_800_000, // ~150us at line rate, clears by ~450us
		Duration:    800 * sim.Microsecond,
		SampleEvery: sim.Microsecond,
	}
}

// HopResult carries the Fig 13 quantities.
type HopResult struct {
	Scheme   string
	Position HopPosition
	// Queue is the contended egress queue over time.
	Queue *metrics.Series
	// Util is the contended link utilization.
	Util *metrics.Series
	// Rates are the two flows' pacing rates.
	Rates [2]*metrics.Series
	// QueuePeak is the figure's headline number (bytes).
	QueuePeak float64
	// MeanUtil averages utilization over the congestion episode.
	MeanUtil float64
	// LHCSTriggers counts Algorithm 2 firings on flow 0 (FNCC only).
	LHCSTriggers int64
	// Perf is the run's simulator-performance telemetry.
	Perf PerfStats
	// Telemetry is the probe output (nil unless configured).
	Telemetry *telemetry.Output
}

// RunHop executes one hop-location experiment.
func RunHop(cfg HopConfig) (*HopResult, error) {
	probe := BeginPerf()
	scheme, err := buildScheme(cfg.Scheme, cfg.MakeScheme)
	if err != nil {
		return nil, err
	}
	attach := map[HopPosition]int{HopFirst: 0, HopMiddle: 1, HopLast: 2}
	at, ok := attach[cfg.Position]
	if !ok {
		return nil, fmt.Errorf("exp: unknown hop position %q", cfg.Position)
	}
	opts := topo.DefaultChainOpts(2)
	opts.RateBps = cfg.RateBps
	opts.SenderAttach = []int{0, at}
	opts.Workers = cfg.Workers
	c, err := topo.BuildChain(netsim.DefaultConfig(), scheme, opts)
	if err != nil {
		return nil, err
	}

	f0 := c.AddFlow(1, 0, 1<<40, 0)
	f1Bytes := int64(1 << 40)
	if cfg.Flow1Stop {
		f1Bytes = cfg.Flow1Bytes
	}
	f1 := c.AddFlow(2, 1, f1Bytes, cfg.Flow1Start)

	// The contended egress is the attach switch's port toward the receiver.
	port := c.HopPort(at)
	res := &HopResult{
		Scheme:   cfg.Scheme,
		Position: cfg.Position,
		Queue:    metrics.NewSeries(fmt.Sprintf("%s/%s/queue_bytes", cfg.Scheme, cfg.Position)),
		Util:     metrics.NewSeries(fmt.Sprintf("%s/%s/utilization", cfg.Scheme, cfg.Position)),
	}
	res.Rates[0] = metrics.NewSeries(cfg.Scheme + "/flow0_rate_bps")
	res.Rates[1] = metrics.NewSeries(cfg.Scheme + "/flow1_rate_bps")

	var lastTx uint64
	winBits := float64(cfg.RateBps) * cfg.SampleEvery.Seconds()
	stop := c.Net.GlobalTicker(cfg.SampleEvery, func() {
		now := c.Net.Eng.Now()
		res.Queue.Add(now, float64(port.QueueBytes()))
		tx := port.TxBytes()
		res.Util.Add(now, float64(tx-lastTx)*8/winBits)
		lastTx = tx
		res.Rates[0].Add(now, float64(f0.CC().RateBps()))
		res.Rates[1].Add(now, float64(f1.CC().RateBps()))
	})
	tp := telemetry.AttachNet(c.Net, deref(cfg.Telemetry),
		telemetry.Samples(cfg.Duration, telemetryInterval(cfg.Telemetry)))
	c.Net.RunUntil(cfg.Duration)
	stop()
	if tp != nil {
		tp.Stop()
		res.Telemetry = tp.Output()
	}

	res.QueuePeak = res.Queue.Max()
	res.MeanUtil = res.Util.MeanIn(cfg.Flow1Start, cfg.Duration)
	if lh, ok := lhcsTriggersOf(f0); ok {
		res.LHCSTriggers = lh
	}
	res.Perf = probe.End(c.Net)
	return res, nil
}

// lhcsTriggersOf extracts the LHCS counter from an FNCC sender.
func lhcsTriggersOf(f *netsim.Flow) (int64, bool) {
	type counter interface{ LHCSCount() int64 }
	if c, ok := f.CC().(counter); ok {
		return c.LHCSCount(), true
	}
	return 0, false
}

// HopGain summarizes Fig 13's headline: the queue-depth reduction of a
// scheme relative to HPCC at the same hop position.
func HopGain(scheme, hpcc *HopResult) float64 {
	if hpcc.QueuePeak == 0 {
		return 0
	}
	return 1 - scheme.QueuePeak/hpcc.QueuePeak
}
