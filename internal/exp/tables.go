package exp

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// FormatMicroTable renders the Fig 9 summary rows: first-slowdown time,
// queue peak, mean utilization and PFC pauses per scheme.
func FormatMicroTable(rateBps int64, rs []*MicroResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "micro-benchmark @ %dGbps (flow1 joins at 300us)\n", rateBps/1e9)
	fmt.Fprintf(&b, "%-12s %14s %14s %10s %8s %7s\n",
		"scheme", "1st slowdown", "queue peak", "mean util", "pauses", "drops")
	for _, r := range rs {
		slow := "never"
		if r.FirstSlowdown >= 0 {
			slow = r.FirstSlowdown.String()
		}
		fmt.Fprintf(&b, "%-12s %14s %12.1fKB %9.1f%% %8d %7d\n",
			r.Scheme, slow, r.QueuePeak/1000, 100*r.MeanUtil, r.PauseFrames, r.Drops)
	}
	return b.String()
}

// FormatHopTable renders the Fig 13a-c comparison, including queue-depth
// reduction vs HPCC when an HPCC row is present at the same position.
func FormatHopTable(rs []*HopResult) string {
	hpcc := map[HopPosition]*HopResult{}
	for _, r := range rs {
		if r.Scheme == SchemeHPCC {
			hpcc[r.Position] = r
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-8s %14s %10s %12s %8s\n",
		"scheme", "hop", "queue peak", "mean util", "vs HPCC", "LHCS")
	for _, r := range rs {
		gain := "-"
		if base, ok := hpcc[r.Position]; ok && r.Scheme != SchemeHPCC {
			// Positive = queue reduction relative to HPCC (the Fig 13
			// headline percentages).
			gain = fmt.Sprintf("%+.1f%%", 100*HopGain(r, base))
		}
		fmt.Fprintf(&b, "%-12s %-8s %12.1fKB %9.1f%% %12s %8d\n",
			r.Scheme, r.Position, r.QueuePeak/1000, 100*r.MeanUtil, gain, r.LHCSTriggers)
	}
	return b.String()
}

// FormatNotifyTable renders the E10 notification-latency matrix.
func FormatNotifyTable(rows []NotifyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-8s %14s\n", "scheme", "hop", "notify latency")
	for _, r := range rows {
		lat := "never"
		if r.Latency >= 0 {
			lat = r.Latency.String()
		}
		fmt.Fprintf(&b, "%-12s %-8s %14s\n", r.Scheme, r.Hop, lat)
	}
	return b.String()
}

// FormatFCTTables renders all four panels (avg/median/p95/p99) of a
// Fig 14/15-style table for the given workload.
func FormatFCTTables(workloadName string, merged map[string]*metrics.FCTCollector, order []string) (string, error) {
	buckets, err := BucketsFor(workloadName)
	if err != nil {
		return "", err
	}
	stats := make(map[string][]metrics.BucketStats, len(merged))
	for name, col := range merged {
		stats[name] = col.BucketTable(buckets)
	}
	var b strings.Builder
	for _, stat := range []string{"avg", "median", "p95", "p99"} {
		fmt.Fprintf(&b, "\n== %s FCT slowdown (%s) ==\n", stat, workloadName)
		b.WriteString(metrics.FormatBucketTable(stat, order, stats))
	}
	return b.String(), nil
}

// FormatHeadlines renders the §5.5 headline reductions for a workload
// (small-flow p95 and large-flow median, FNCC vs each baseline).
func FormatHeadlines(workloadName string, merged map[string]*metrics.FCTCollector) string {
	fncc := merged[SchemeFNCC]
	if fncc == nil {
		return ""
	}
	var b strings.Builder
	small := int64(100_000)
	large := int64(1_000_000)
	for _, base := range []string{SchemeHPCC, SchemeDCQCN} {
		bl := merged[base]
		if bl == nil {
			continue
		}
		if fncc.SlowdownDist(0, small).N() > 0 {
			fmt.Fprintf(&b, "%s: flows<100KB p95 slowdown reduction vs %s: %.1f%%\n",
				workloadName, base, 100*SlowdownReduction("p95", fncc, bl, 0, small))
		}
		// The large-flow headline needs flows strictly above 1MB (WebSearch
		// has them; FB_Hadoop tops out at exactly 1MB).
		if fncc.SlowdownDist(large, 1<<62).N() > 0 {
			fmt.Fprintf(&b, "%s: flows>1MB median slowdown reduction vs %s: %.1f%%\n",
				workloadName, base, 100*SlowdownReduction("median", fncc, bl, large, 1<<62))
		}
	}
	return b.String()
}

// SeriesToCSV bundles several series into one multi-section CSV document.
func SeriesToCSV(series ...*metrics.Series) string {
	var b strings.Builder
	for _, s := range series {
		b.WriteString(s.CSV())
		b.WriteString("\n")
	}
	return b.String()
}

// FmtRate pretty-prints a bps value in Gbps.
func FmtRate(bps float64) string { return fmt.Sprintf("%.1fG", bps/1e9) }

// FmtTime proxies sim.Time formatting for cmd tools.
func FmtTime(t sim.Time) string { return t.String() }
