package exp

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topo"
)

// IncastConfig is the N-to-1 burst scenario motivating LHCS (§3.2.2,
// Observation 4): N senders, all attached at the receiver-side switch,
// start simultaneously; every byte of congestion lands on the last hop.
type IncastConfig struct {
	Scheme string
	// Fanout is N, the number of simultaneous senders.
	Fanout int
	// BytesPerSender is each responder's transfer size.
	BytesPerSender int64
	// RateBps is the uniform link rate.
	RateBps int64
	// Deadline bounds the run.
	Deadline sim.Time
	// Workers > 1 enables the sharded parallel packet executor
	// (bit-identical to serial; see topo.ChainOpts.Workers).
	Workers int
	// MakeScheme, when non-nil, overrides the registry lookup of Scheme.
	MakeScheme SchemeBuilder `json:"-"`
	// Telemetry, when enabled, attaches in-simulation probes for the run.
	Telemetry *telemetry.Config `json:"-"`
}

// DefaultIncastConfig is a 16:1, 2 MB-per-sender burst at 100 G.
func DefaultIncastConfig(scheme string) IncastConfig {
	return IncastConfig{
		Scheme:         scheme,
		Fanout:         16,
		BytesPerSender: 2 << 20,
		RateBps:        100e9,
		Deadline:       100 * sim.Millisecond,
	}
}

// IncastResult summarizes one incast run.
type IncastResult struct {
	Scheme string
	Fanout int
	// QueuePeak is the last-hop egress peak (bytes).
	QueuePeak int64
	// PauseFrames counts PFC pauses at the last-hop switch.
	PauseFrames int64
	// AllDoneAt is when the last responder finished (-1 if the deadline
	// hit first).
	AllDoneAt sim.Time
	// JainFinalRates is Jain's index over the senders' pacing rates while
	// all are active, sampled at its minimum after the first RTT (worst
	// observed unfairness once control is in effect).
	JainFinalRates float64
	// LHCSTriggers totals Algorithm 2 firings across senders (FNCC only).
	LHCSTriggers int64
	// Perf is the run's simulator-performance telemetry.
	Perf PerfStats
	// Telemetry is the probe output (nil unless configured).
	Telemetry *telemetry.Output
}

// RunIncast executes the burst.
func RunIncast(cfg IncastConfig) (*IncastResult, error) {
	if cfg.Fanout < 2 {
		return nil, fmt.Errorf("exp: incast needs fanout >= 2")
	}
	probe := BeginPerf()
	scheme, err := buildScheme(cfg.Scheme, cfg.MakeScheme)
	if err != nil {
		return nil, err
	}
	opts := topo.DefaultChainOpts(cfg.Fanout)
	opts.RateBps = cfg.RateBps
	opts.Workers = cfg.Workers
	for i := range opts.SenderAttach {
		opts.SenderAttach[i] = opts.Switches - 1 // all on the last switch
	}
	c, err := topo.BuildChain(netsim.DefaultConfig(), scheme, opts)
	if err != nil {
		return nil, err
	}
	flows := make([]*netsim.Flow, cfg.Fanout)
	for i := range flows {
		flows[i] = c.AddFlow(uint64(i+1), i, cfg.BytesPerSender, 0)
	}

	res := &IncastResult{Scheme: cfg.Scheme, Fanout: cfg.Fanout, AllDoneAt: -1, JainFinalRates: 1}
	port := c.HopPort(opts.Switches - 1)
	baseRTT := c.Net.Cfg.BaseRTT
	stop := c.Net.GlobalTicker(5*sim.Microsecond, func() {
		if q := port.QueueBytes(); q > res.QueuePeak {
			res.QueuePeak = q
		}
		if c.Net.Eng.Now() < baseRTT {
			return
		}
		rates := make([]float64, 0, cfg.Fanout)
		for _, f := range flows {
			if !f.Finished() {
				rates = append(rates, float64(f.CC().RateBps()))
			}
		}
		if len(rates) == cfg.Fanout {
			if j := metrics.JainIndex(rates); j < res.JainFinalRates {
				res.JainFinalRates = j
			}
		}
	})
	tp := telemetry.AttachNet(c.Net, deref(cfg.Telemetry),
		telemetry.Samples(cfg.Deadline, telemetryInterval(cfg.Telemetry)))
	if c.Net.RunToCompletion(cfg.Deadline) {
		last := sim.Time(0)
		for _, f := range flows {
			if f.FinishedAt > last {
				last = f.FinishedAt
			}
		}
		res.AllDoneAt = last
	}
	stop()
	if tp != nil {
		tp.Stop()
		res.Telemetry = tp.Output()
	}
	res.PauseFrames = c.Switches[opts.Switches-1].PauseFrames
	for _, f := range flows {
		if lh, ok := lhcsTriggersOf(f); ok {
			res.LHCSTriggers += lh
		}
	}
	res.Perf = probe.End(c.Net)
	return res, nil
}

// FormatIncastTable renders incast results side by side.
func FormatIncastTable(rs []*IncastResult) string {
	out := fmt.Sprintf("%-14s %8s %14s %8s %12s %10s %8s\n",
		"scheme", "fanout", "queue peak", "pauses", "done at", "jain(min)", "LHCS")
	for _, r := range rs {
		done := "timeout"
		if r.AllDoneAt >= 0 {
			done = r.AllDoneAt.String()
		}
		out += fmt.Sprintf("%-14s %8d %12.1fKB %8d %12s %10.3f %8d\n",
			r.Scheme, r.Fanout, float64(r.QueuePeak)/1000, r.PauseFrames,
			done, r.JainFinalRates, r.LHCSTriggers)
	}
	return out
}
