package exp

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// BenchmarkMicroSteadyState runs the complete §5.1 micro-benchmark — build,
// 400 us of simulated congestion, teardown — once per iteration. Unlike the
// engine/forwarding benches this includes all per-run setup, so allocs/op
// is the whole run's allocation budget; the pooling work cut it from
// ~125k to well under 5k per run (see BENCH_2.json for the pinned point).
func BenchmarkMicroSteadyState(b *testing.B) {
	cfg := DefaultMicroConfig(SchemeFNCC, 100e9)
	cfg.Duration = 400 * sim.Microsecond
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := RunMicro(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.QueuePeak <= 0 {
			b.Fatal("no queue buildup: benchmark not exercising the hot path")
		}
	}
}

// BenchmarkMicroTelemetryOn is BenchmarkMicroSteadyState with every packet
// probe class sampling at 10x the base RTT (13 us -> 130 us interval), the
// recommended production cadence. cmd/benchguard pins the ratio of this
// bench to the telemetry-off one at <= 1.05: probes must cost under 5%.
func BenchmarkMicroTelemetryOn(b *testing.B) {
	cfg := DefaultMicroConfig(SchemeFNCC, 100e9)
	cfg.Duration = 400 * sim.Microsecond
	cfg.Telemetry = &telemetry.Config{
		Interval: 130 * sim.Microsecond, // 10 RTTs
		Probes:   telemetry.PacketProbes(),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := RunMicro(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.Telemetry == nil || r.Telemetry.Samples == 0 {
			b.Fatal("telemetry not sampling: benchmark measures nothing")
		}
	}
}

// BenchmarkFCTFatTree is the harness-scale data point: a k=4 fat-tree under
// Poisson load, the per-sweep-point unit of cmd/fnccbench.
func BenchmarkFCTFatTree(b *testing.B) {
	cfg := DefaultFCTConfig(SchemeFNCC, "websearch")
	cfg.K = 4
	cfg.Horizon = 500 * sim.Microsecond
	cfg.DrainFactor = 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunFCT(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
