package exp

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topo"
)

// deref is the nil-tolerant Config unwrap shared by the runners.
func deref(c *telemetry.Config) telemetry.Config {
	if c == nil {
		return telemetry.Config{}
	}
	return *c
}

// telemetryInterval returns the configured sampling interval (0 when off).
func telemetryInterval(c *telemetry.Config) sim.Time {
	if c == nil {
		return 0
	}
	return c.Interval
}

// MicroConfig is the Fig 9 / Fig 1b-d / Fig 3 micro-benchmark: the Fig 10
// dumbbell (M=3), flow0 from t=0 and flow1 joining at Flow1Start, both
// line-rate elephants; queue length, per-flow rates and bottleneck
// utilization are sampled over time.
type MicroConfig struct {
	// RateBps is the uniform link rate (the figures sweep 100/200/400 G).
	RateBps int64
	// Senders is N in Fig 10 (micro-benchmarks use 2).
	Senders int
	// Flow1Start is when the second and later flows join (paper: 300 us;
	// sender i>=1 starts at i*Flow1Start).
	Flow1Start sim.Time
	// Duration is the observation window.
	Duration sim.Time
	// SampleEvery is the series sampling period.
	SampleEvery sim.Time
	// PFCPauseBytes overrides the pause threshold (paper micro: 500 KB);
	// zero keeps the netsim default.
	PFCPauseBytes int64
	// Workers > 1 enables the sharded parallel packet executor
	// (bit-identical to serial; see topo.ChainOpts.Workers).
	Workers int
	// Scheme names the algorithm under test.
	Scheme string
	// MakeScheme, when non-nil, overrides the registry lookup of Scheme
	// (scenario layer injection point).
	MakeScheme SchemeBuilder `json:"-"`
	// Telemetry, when enabled, attaches in-simulation probes for the run.
	Telemetry *telemetry.Config `json:"-"`
}

// DefaultMicroConfig returns the §5.1 setup at the given rate.
func DefaultMicroConfig(scheme string, rateBps int64) MicroConfig {
	return MicroConfig{
		RateBps:       rateBps,
		Senders:       2,
		Flow1Start:    300 * sim.Microsecond,
		Duration:      1200 * sim.Microsecond,
		SampleEvery:   sim.Microsecond,
		PFCPauseBytes: 500 << 10,
		Scheme:        scheme,
	}
}

// MicroResult carries everything the micro figures plot.
type MicroResult struct {
	Scheme string
	// Queue is the bottleneck egress queue length over time (bytes).
	Queue *metrics.Series
	// Rates holds one pacing-rate series per flow (bps).
	Rates []*metrics.Series
	// Util is the bottleneck link utilization per sample window (0..1).
	Util *metrics.Series
	// PauseFrames and ResumeFrames count PFC activity at the congestion
	// point switch (Fig 3).
	PauseFrames  int64
	ResumeFrames int64
	// Drops counts fabric-wide losses (zero with PFC).
	Drops int64
	// FirstSlowdown is when flow0's rate first drops below 85% of line
	// after Flow1Start (the Fig 9b reaction-time comparison); -1 if never.
	FirstSlowdown sim.Time
	// QueuePeak is max(Queue) in bytes.
	QueuePeak float64
	// MeanUtil is the average bottleneck utilization from Flow1Start to the
	// end of the window.
	MeanUtil float64
	// Perf is the run's simulator-performance telemetry.
	Perf PerfStats
	// Telemetry is the probe output (nil unless configured).
	Telemetry *telemetry.Output
}

// RunMicro executes the micro-benchmark for one scheme.
func RunMicro(cfg MicroConfig) (*MicroResult, error) {
	if cfg.Senders < 2 {
		return nil, fmt.Errorf("exp: micro needs >= 2 senders")
	}
	probe := BeginPerf()
	scheme, err := buildScheme(cfg.Scheme, cfg.MakeScheme)
	if err != nil {
		return nil, err
	}
	ncfg := netsim.DefaultConfig()
	if cfg.PFCPauseBytes > 0 {
		ncfg.PFCPauseBytes = cfg.PFCPauseBytes
		ncfg.PFCResumeBytes = cfg.PFCPauseBytes * 9 / 10
	}
	opts := topo.DefaultChainOpts(cfg.Senders)
	opts.RateBps = cfg.RateBps
	opts.Workers = cfg.Workers
	c, err := topo.BuildChain(ncfg, scheme, opts)
	if err != nil {
		return nil, err
	}

	flows := make([]*netsim.Flow, cfg.Senders)
	for i := range flows {
		flows[i] = c.AddFlow(uint64(i+1), i, 1<<40, sim.Time(i)*cfg.Flow1Start)
	}

	res := &MicroResult{
		Scheme:        cfg.Scheme,
		Queue:         metrics.NewSeries(cfg.Scheme + "/queue_bytes"),
		Util:          metrics.NewSeries(cfg.Scheme + "/utilization"),
		FirstSlowdown: -1,
	}
	for i := range flows {
		res.Rates = append(res.Rates, metrics.NewSeries(fmt.Sprintf("%s/flow%d_rate_bps", cfg.Scheme, i)))
	}

	bport := c.BottleneckPort()
	var lastTx uint64
	winBits := float64(cfg.RateBps) * cfg.SampleEvery.Seconds()
	stop := c.Net.GlobalTicker(cfg.SampleEvery, func() {
		now := c.Net.Eng.Now()
		res.Queue.Add(now, float64(bport.QueueBytes()))
		tx := bport.TxBytes()
		res.Util.Add(now, float64(tx-lastTx)*8/winBits)
		lastTx = tx
		for i, f := range flows {
			res.Rates[i].Add(now, float64(f.CC().RateBps()))
		}
		if res.FirstSlowdown < 0 && now >= cfg.Flow1Start &&
			float64(flows[0].CC().RateBps()) < 0.85*float64(cfg.RateBps) {
			res.FirstSlowdown = now
		}
	})
	tp := telemetry.AttachNet(c.Net, deref(cfg.Telemetry),
		telemetry.Samples(cfg.Duration, telemetryInterval(cfg.Telemetry)))
	c.Net.RunUntil(cfg.Duration)
	stop()
	if tp != nil {
		tp.Stop()
		res.Telemetry = tp.Output()
	}

	res.PauseFrames = c.Switches[0].PauseFrames
	res.ResumeFrames = c.Switches[0].ResumeFrames
	res.Drops = c.Net.Drops.N
	res.QueuePeak = res.Queue.Max()
	res.MeanUtil = res.Util.MeanIn(cfg.Flow1Start, cfg.Duration)
	res.Perf = probe.End(c.Net)
	return res, nil
}

// RunMicroAll runs the micro-benchmark for several schemes in parallel.
func RunMicroAll(schemes []string, rateBps int64, mut func(*MicroConfig)) ([]*MicroResult, error) {
	cfgs := make([]MicroConfig, len(schemes))
	for i, s := range schemes {
		cfgs[i] = DefaultMicroConfig(s, rateBps)
		if mut != nil {
			mut(&cfgs[i])
		}
	}
	type out struct {
		r   *MicroResult
		err error
	}
	res := ParallelMap(cfgs, 0, func(c MicroConfig) out {
		r, err := RunMicro(c)
		return out{r, err}
	})
	rs := make([]*MicroResult, len(res))
	for i, o := range res {
		if o.err != nil {
			return nil, o.err
		}
		rs[i] = o.r
	}
	return rs, nil
}
