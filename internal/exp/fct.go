package exp

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/workload"
)

// FCTConfig is the §5.5 large-scale experiment: a k-ary fat-tree driven by
// an open-loop Poisson workload at a target load; the output is the FCT
// slowdown table per flow-size bucket (Figs 14, 15).
type FCTConfig struct {
	Scheme string
	// K is the fat-tree arity (paper: 8 -> 128 hosts).
	K int
	// RateBps is the uniform link rate (paper: 100 G).
	RateBps int64
	// Workload is "websearch" or "hadoop".
	Workload string
	// Load is the average access-link load (paper: 0.5).
	Load float64
	// Horizon is the arrival window; the run then drains until all flows
	// complete or DrainFactor*Horizon elapses.
	Horizon sim.Time
	// DrainFactor bounds the post-arrival drain phase.
	DrainFactor int
	// Seed drives workload generation and fabric randomness.
	Seed int64
	// CoreRateBps oversubscribes the aggregation-core tier when set below
	// RateBps; zero keeps the paper's 1:1 fabric.
	CoreRateBps int64
	// Workers > 1 enables the sharded parallel packet executor
	// (bit-identical to serial; see topo.FatTreeOpts.Workers).
	Workers int
	// MakeScheme, when non-nil, overrides the registry lookup of Scheme.
	MakeScheme SchemeBuilder `json:"-"`
	// Telemetry, when enabled, attaches in-simulation probes for the run.
	Telemetry *telemetry.Config `json:"-"`
}

// DefaultFCTConfig mirrors §5.5 at a CI-friendly horizon; cmd/fctsweep
// raises Horizon and K for paper-scale runs.
func DefaultFCTConfig(scheme, wl string) FCTConfig {
	return FCTConfig{
		Scheme:      scheme,
		K:           8,
		RateBps:     100e9,
		Workload:    wl,
		Load:        0.5,
		Horizon:     2 * sim.Millisecond,
		DrainFactor: 10,
		Seed:        1,
	}
}

// WebSearchBuckets are the Fig 14 x-axis flow-size bins.
func WebSearchBuckets() []metrics.Bucket {
	edges := []int64{10_000, 20_000, 30_000, 50_000, 80_000, 200_000,
		1_000_000, 2_000_000, 5_000_000, 10_000_000, 30_000_000}
	return bucketize(edges, []string{"10KB", "20KB", "30KB", "50KB", "80KB",
		"200KB", "1MB", "2MB", "5MB", "10MB", "30MB"})
}

// HadoopBuckets are the Fig 15 x-axis flow-size bins.
func HadoopBuckets() []metrics.Bucket {
	edges := []int64{75, 250, 350, 1_000, 2_000, 6_000, 10_000, 15_000,
		23_000, 24_000, 25_000, 100_000, 1_000_000}
	return bucketize(edges, []string{"75B", "250B", "350B", "1KB", "2KB",
		"6KB", "10KB", "15KB", "23KB", "24KB", "25KB", "100KB", "1MB"})
}

func bucketize(edges []int64, labels []string) []metrics.Bucket {
	out := make([]metrics.Bucket, len(edges))
	lo := int64(0)
	for i, hi := range edges {
		out[i] = metrics.Bucket{Label: labels[i], LoByte: lo, HiByte: hi}
		lo = hi
	}
	return out
}

// BucketsFor returns the figure buckets for a workload name.
func BucketsFor(wl string) ([]metrics.Bucket, error) {
	switch wl {
	case "websearch", "WebSearch":
		return WebSearchBuckets(), nil
	case "hadoop", "fbhadoop", "FB_Hadoop":
		return HadoopBuckets(), nil
	default:
		return nil, fmt.Errorf("exp: no buckets for workload %q", wl)
	}
}

// FCTResult is one run's outcome.
type FCTResult struct {
	Scheme    string
	Workload  string
	Seed      int64
	Collector *metrics.FCTCollector
	// Completed / Generated track drain success.
	Completed int
	Generated int
	// OfferedLoad is the realized workload load.
	OfferedLoad float64
	// PauseFrames, Drops: fabric counters for the run.
	PauseFrames int64
	Drops       int64
	// Perf is the run's simulator-performance telemetry.
	Perf PerfStats
	// Telemetry is the probe output (nil unless configured).
	Telemetry *telemetry.Output
}

// RunFCT executes one (scheme, seed) large-scale run.
func RunFCT(cfg FCTConfig) (*FCTResult, error) {
	probe := BeginPerf()
	scheme, err := buildScheme(cfg.Scheme, cfg.MakeScheme)
	if err != nil {
		return nil, err
	}
	cdf, ok := workload.ByName(cfg.Workload)
	if !ok {
		return nil, fmt.Errorf("exp: unknown workload %q", cfg.Workload)
	}
	ncfg := netsim.DefaultConfig()
	ncfg.Seed = cfg.Seed
	ftOpts := topo.FatTreeOpts{K: cfg.K, RateBps: cfg.RateBps,
		CoreRateBps: cfg.CoreRateBps, Delay: 1500 * sim.Nanosecond,
		Workers: cfg.Workers}
	ft, err := topo.BuildFatTree(ncfg, scheme, ftOpts)
	if err != nil {
		return nil, err
	}

	flows, err := workload.Generate(workload.GenConfig{
		Hosts:     len(ft.Hosts),
		AccessBps: cfg.RateBps,
		Load:      cfg.Load,
		CDF:       cdf,
		Horizon:   cfg.Horizon,
		Seed:      cfg.Seed,
		FirstID:   1,
	})
	if err != nil {
		return nil, err
	}
	for _, fs := range flows {
		ft.AddFlow(fs.ID, fs.SrcHost, fs.DstHost, fs.SizeBytes, fs.Start)
	}

	drain := cfg.Horizon * sim.Time(cfg.DrainFactor)
	if cfg.DrainFactor <= 0 {
		drain = cfg.Horizon * 10
	}
	tp := telemetry.AttachNet(ft.Net, deref(cfg.Telemetry),
		telemetry.Samples(cfg.Horizon+drain, telemetryInterval(cfg.Telemetry)))
	ft.Net.RunToCompletion(cfg.Horizon + drain)

	res := &FCTResult{
		Scheme:      cfg.Scheme,
		Workload:    cfg.Workload,
		Seed:        cfg.Seed,
		Collector:   ft.Net.FCT,
		Completed:   ft.Net.FCT.N(),
		Generated:   len(flows),
		OfferedLoad: workload.OfferedLoad(flows, len(ft.Hosts), cfg.RateBps, cfg.Horizon),
		PauseFrames: ft.Net.PauseFrames.N,
		Drops:       ft.Net.Drops.N,
	}
	if tp != nil {
		tp.Stop()
		res.Telemetry = tp.Output()
	}
	res.Perf = probe.End(ft.Net)
	return res, nil
}

// RunFCTSweep runs scheme x seed in parallel and merges each scheme's
// collectors across seeds (the paper averages 5 repetitions).
func RunFCTSweep(base FCTConfig, schemes []string, seeds []int64) (map[string]*metrics.FCTCollector, []*FCTResult, error) {
	type job struct {
		scheme string
		seed   int64
	}
	var jobs []job
	for _, s := range schemes {
		for _, sd := range seeds {
			jobs = append(jobs, job{s, sd})
		}
	}
	type out struct {
		r   *FCTResult
		err error
	}
	results := ParallelMap(jobs, 0, func(j job) out {
		cfg := base
		cfg.Scheme = j.scheme
		cfg.Seed = j.seed
		r, err := RunFCT(cfg)
		return out{r, err}
	})
	merged := make(map[string]*metrics.FCTCollector)
	var all []*FCTResult
	for _, o := range results {
		if o.err != nil {
			return nil, nil, o.err
		}
		all = append(all, o.r)
		if merged[o.r.Scheme] == nil {
			merged[o.r.Scheme] = metrics.NewFCTCollector()
		}
		merged[o.r.Scheme].Merge(o.r.Collector)
	}
	return merged, all, nil
}

// SlowdownReduction computes the headline percentages of §5.5: the relative
// reduction of a statistic ("avg"|"median"|"p95"|"p99") for flows in
// (loByte, hiByte], scheme vs baseline. Positive = scheme is better.
func SlowdownReduction(stat string, scheme, baseline *metrics.FCTCollector, loByte, hiByte int64) float64 {
	pick := func(d *metrics.Dist) float64 {
		switch stat {
		case "avg":
			return d.Mean()
		case "median":
			return d.Median()
		case "p95":
			return d.P95()
		case "p99":
			return d.P99()
		default:
			panic("exp: unknown stat " + stat)
		}
	}
	b := pick(baseline.SlowdownDist(loByte, hiByte))
	s := pick(scheme.SlowdownDist(loByte, hiByte))
	if b == 0 {
		return 0
	}
	return 1 - s/b
}
