package exp

import (
	"strings"
	"testing"
)

func TestRunIncastLHCSWins(t *testing.T) {
	run := func(scheme string) *IncastResult {
		cfg := DefaultIncastConfig(scheme)
		cfg.Fanout = 8
		cfg.BytesPerSender = 512 << 10
		r, err := RunIncast(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.AllDoneAt < 0 {
			t.Fatalf("%s: incast did not complete", scheme)
		}
		return r
	}
	on := run(SchemeFNCC)
	off := run(SchemeFNCCNoLHCS)
	hpcc := run(SchemeHPCC)

	if on.LHCSTriggers == 0 {
		t.Fatal("LHCS never fired during last-hop incast")
	}
	if off.LHCSTriggers != 0 || hpcc.LHCSTriggers != 0 {
		t.Fatal("LHCS counter leaked into non-LHCS schemes")
	}
	if on.QueuePeak >= off.QueuePeak {
		t.Errorf("LHCS peak %d !< no-LHCS %d", on.QueuePeak, off.QueuePeak)
	}
	if on.QueuePeak >= hpcc.QueuePeak {
		t.Errorf("FNCC peak %d !< HPCC %d", on.QueuePeak, hpcc.QueuePeak)
	}
	// LHCS assigns the fair window directly: its worst-case rate fairness
	// while all senders are active must beat the step-down schemes'.
	if on.JainFinalRates <= off.JainFinalRates {
		t.Errorf("LHCS jain %.3f !> no-LHCS %.3f", on.JainFinalRates, off.JainFinalRates)
	}

	table := FormatIncastTable([]*IncastResult{on, off, hpcc})
	if !strings.Contains(table, "FNCC-noLHCS") || !strings.Contains(table, "jain") {
		t.Fatalf("table:\n%s", table)
	}
}

func TestRunIncastValidation(t *testing.T) {
	cfg := DefaultIncastConfig(SchemeFNCC)
	cfg.Fanout = 1
	if _, err := RunIncast(cfg); err == nil {
		t.Fatal("accepted fanout 1")
	}
	cfg = DefaultIncastConfig("nope")
	if _, err := RunIncast(cfg); err == nil {
		t.Fatal("accepted unknown scheme")
	}
}

func TestExtensionsInRegistry(t *testing.T) {
	for _, name := range []string{SchemeTimely, SchemeSwift, SchemeExpressPass} {
		s, err := NewScheme(name)
		if err != nil || s.Name != name {
			t.Fatalf("%s registry: %v", name, err)
		}
	}
	names := []string{SchemeSwift, SchemeTimely, SchemeExpressPass, SchemeFNCC}
	SortSchemes(names)
	if names[0] != SchemeFNCC {
		t.Fatal("extensions should sort after the paper schemes")
	}
}

func TestExpressPassEndToEnd(t *testing.T) {
	// The receiver-driven extension through the harness: a small incast
	// where credit pacing keeps the last-hop queue near-empty.
	cfg := DefaultIncastConfig(SchemeExpressPass)
	cfg.Fanout = 8
	cfg.BytesPerSender = 256 << 10
	r, err := RunIncast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.AllDoneAt < 0 {
		t.Fatal("credit incast incomplete")
	}
	if r.PauseFrames != 0 {
		t.Fatalf("credit pacing triggered %d pauses", r.PauseFrames)
	}
	// Compare against FNCC's window burst: ExpressPass should hold a much
	// smaller peak (it never lets a BDP-sized burst leave the senders).
	fn, err := RunIncast(IncastConfig{
		Scheme: SchemeFNCC, Fanout: 8, BytesPerSender: 256 << 10,
		RateBps: 100e9, Deadline: cfg.Deadline,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.QueuePeak >= fn.QueuePeak {
		t.Fatalf("credit peak %d !< window-burst peak %d", r.QueuePeak, fn.QueuePeak)
	}
}
