package exp

import (
	"runtime"
	"sync"
)

// ParallelMap runs fn over jobs on a bounded worker pool and returns the
// results in job order. Each job builds and drives its own independent
// simulation Engine, so jobs share nothing; this is where the harness gets
// its parallelism (schemes × seeds × sweep points), keeping the per-run
// simulator single-threaded and deterministic.
func ParallelMap[J, R any](jobs []J, workers int, fn func(J) R) []R {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make([]R, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	if workers <= 1 {
		for i, j := range jobs {
			out[i] = fn(j)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(jobs[i])
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
