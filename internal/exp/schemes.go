// Package exp contains the experiment harness: one runner per table/figure
// of the paper's evaluation (§5), a scheme registry, result tables, and a
// parallel multi-seed executor. DESIGN.md's experiment index maps each
// figure to the runner here that regenerates it.
package exp

import (
	"fmt"
	"sort"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/netsim"
)

// Canonical scheme names accepted by the registry.
const (
	SchemeFNCC       = "FNCC"
	SchemeFNCCNoLHCS = "FNCC-noLHCS"
	SchemeHPCC       = "HPCC"
	SchemeDCQCN      = "DCQCN"
	SchemeRoCC       = "RoCC"
	// SchemeTimely, SchemeSwift and SchemeExpressPass are extension
	// baselines (cited in the paper's related work but not part of its
	// evaluation).
	SchemeTimely      = "Timely"
	SchemeSwift       = "Swift"
	SchemeExpressPass = "ExpressPass"
)

// AllSchemes lists the four schemes of the paper's comparison.
func AllSchemes() []string {
	return []string{SchemeFNCC, SchemeHPCC, SchemeDCQCN, SchemeRoCC}
}

// NewScheme builds a scheme by name with the paper's default parameters.
func NewScheme(name string) (netsim.Scheme, error) {
	switch name {
	case SchemeFNCC:
		return core.NewScheme(core.DefaultConfig()), nil
	case SchemeFNCCNoLHCS:
		cfg := core.DefaultConfig()
		cfg.EnableLHCS = false
		s := core.NewScheme(cfg)
		s.Name = SchemeFNCCNoLHCS
		return s, nil
	case SchemeHPCC:
		return cc.NewHPCCScheme(cc.DefaultHPCCConfig()), nil
	case SchemeDCQCN:
		return cc.NewDCQCNScheme(cc.DefaultDCQCNConfig()), nil
	case SchemeRoCC:
		return cc.NewRoCCScheme(cc.DefaultRoCCConfig()), nil
	case SchemeTimely:
		return cc.NewTimelyScheme(cc.DefaultTimelyConfig()), nil
	case SchemeSwift:
		return cc.NewSwiftScheme(cc.DefaultSwiftConfig()), nil
	case SchemeExpressPass:
		return cc.NewExpressPassScheme(cc.DefaultExpressPassConfig()), nil
	default:
		return netsim.Scheme{}, fmt.Errorf("exp: unknown scheme %q (have %v)",
			name, append(AllSchemes(), SchemeFNCCNoLHCS))
	}
}

// SchemeBuilder constructs a Scheme. Every runner config carries an optional
// one so callers (the scenario layer) can inject parameter-overridden schemes
// without widening the runner signatures; nil falls back to NewScheme on the
// config's scheme name.
type SchemeBuilder func() (netsim.Scheme, error)

// buildScheme resolves a config's scheme: the injected builder if present,
// otherwise the registry defaults for name.
func buildScheme(name string, b SchemeBuilder) (netsim.Scheme, error) {
	if b != nil {
		return b()
	}
	return NewScheme(name)
}

// MustScheme is NewScheme that panics on error.
func MustScheme(name string) netsim.Scheme {
	s, err := NewScheme(name)
	if err != nil {
		panic(err)
	}
	return s
}

// SortSchemes orders names canonically (FNCC variants, HPCC, DCQCN, RoCC).
func SortSchemes(names []string) {
	rank := map[string]int{
		SchemeFNCC: 0, SchemeFNCCNoLHCS: 1, SchemeHPCC: 2, SchemeDCQCN: 3,
		SchemeRoCC: 4, SchemeTimely: 5, SchemeSwift: 6, SchemeExpressPass: 7,
	}
	sort.Slice(names, func(i, j int) bool {
		ri, iok := rank[names[i]]
		rj, jok := rank[names[j]]
		if iok && jok {
			return ri < rj
		}
		if iok != jok {
			return iok
		}
		return names[i] < names[j]
	})
}
