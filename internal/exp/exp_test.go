package exp

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestSchemeRegistry(t *testing.T) {
	for _, name := range append(AllSchemes(), SchemeFNCCNoLHCS) {
		s, err := NewScheme(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name != name {
			t.Fatalf("scheme name %q != %q", s.Name, name)
		}
	}
	if _, err := NewScheme("TCP"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestSortSchemes(t *testing.T) {
	names := []string{"RoCC", "HPCC", "FNCC", "DCQCN"}
	SortSchemes(names)
	want := []string{"FNCC", "HPCC", "DCQCN", "RoCC"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("order %v", names)
		}
	}
}

func TestParallelMapOrderAndCoverage(t *testing.T) {
	jobs := make([]int, 100)
	for i := range jobs {
		jobs[i] = i
	}
	got := ParallelMap(jobs, 8, func(x int) int { return x * x })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	// Degenerate pools.
	if r := ParallelMap([]int{}, 4, func(x int) int { return x }); len(r) != 0 {
		t.Fatal("empty jobs")
	}
	if r := ParallelMap([]int{5}, 0, func(x int) int { return x + 1 }); r[0] != 6 {
		t.Fatal("auto workers")
	}
}

func TestRunMicroShapes(t *testing.T) {
	// The central integration test: run all four schemes on the Fig 9
	// micro-benchmark at 100G and assert the paper's qualitative ordering.
	rs, err := RunMicroAll(AllSchemes(), 100e9, func(c *MicroConfig) {
		c.Duration = 800 * sim.Microsecond
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*MicroResult{}
	for _, r := range rs {
		byName[r.Scheme] = r
		if r.Queue.Len() == 0 || r.Util.Len() == 0 {
			t.Fatalf("%s: empty series", r.Scheme)
		}
		if r.Drops != 0 {
			t.Fatalf("%s: %d drops with PFC on", r.Scheme, r.Drops)
		}
	}
	fncc, hpcc, dcqcn := byName[SchemeFNCC], byName[SchemeHPCC], byName[SchemeDCQCN]

	// Fig 9b: FNCC reacts first.
	if fncc.FirstSlowdown < 0 || hpcc.FirstSlowdown < 0 {
		t.Fatalf("no slowdown: fncc=%v hpcc=%v", fncc.FirstSlowdown, hpcc.FirstSlowdown)
	}
	if fncc.FirstSlowdown >= hpcc.FirstSlowdown {
		t.Errorf("FNCC slowdown %v not before HPCC %v", fncc.FirstSlowdown, hpcc.FirstSlowdown)
	}
	// Fig 9a: queue peaks ordered FNCC < HPCC < DCQCN.
	if !(fncc.QueuePeak < hpcc.QueuePeak) {
		t.Errorf("queue peaks: FNCC %.0f !< HPCC %.0f", fncc.QueuePeak, hpcc.QueuePeak)
	}
	if !(hpcc.QueuePeak < dcqcn.QueuePeak) {
		t.Errorf("queue peaks: HPCC %.0f !< DCQCN %.0f", hpcc.QueuePeak, dcqcn.QueuePeak)
	}
	// Fig 9g: FNCC keeps utilization high after the join.
	if fncc.MeanUtil < 0.85 {
		t.Errorf("FNCC mean utilization %.2f < 0.85", fncc.MeanUtil)
	}

	table := FormatMicroTable(100e9, rs)
	if !strings.Contains(table, "FNCC") || !strings.Contains(table, "queue peak") {
		t.Fatalf("table:\n%s", table)
	}
}

func TestRunMicroHigherRates(t *testing.T) {
	// Fig 9c-f robustness: the FNCC < HPCC queue ordering must hold at
	// 400G too (shorter windows keep this cheap).
	for _, rate := range []int64{400e9} {
		rs, err := RunMicroAll([]string{SchemeFNCC, SchemeHPCC}, rate, func(c *MicroConfig) {
			c.Duration = 600 * sim.Microsecond
		})
		if err != nil {
			t.Fatal(err)
		}
		if !(rs[0].QueuePeak < rs[1].QueuePeak) {
			t.Errorf("@%dG: FNCC peak %.0f !< HPCC %.0f", rate/1e9, rs[0].QueuePeak, rs[1].QueuePeak)
		}
	}
}

func TestRunMicroValidation(t *testing.T) {
	cfg := DefaultMicroConfig(SchemeFNCC, 100e9)
	cfg.Senders = 1
	if _, err := RunMicro(cfg); err == nil {
		t.Fatal("accepted 1 sender")
	}
	cfg = DefaultMicroConfig("nope", 100e9)
	if _, err := RunMicro(cfg); err == nil {
		t.Fatal("accepted unknown scheme")
	}
}

func TestRunHopPositionsAndLHCSGain(t *testing.T) {
	// Fig 13a-c: FNCC's queue reduction vs HPCC is largest at the first
	// hop, smaller mid-chain; at the last hop LHCS recovers the gain.
	run := func(scheme string, pos HopPosition) *HopResult {
		r, err := RunHop(DefaultHopConfig(scheme, pos))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	for _, pos := range []HopPosition{HopFirst, HopMiddle, HopLast} {
		h := run(SchemeHPCC, pos)
		f := run(SchemeFNCC, pos)
		if f.QueuePeak >= h.QueuePeak {
			t.Errorf("%s: FNCC peak %.0f !< HPCC %.0f", pos, f.QueuePeak, h.QueuePeak)
		}
	}
	// Last hop: LHCS beats no-LHCS (Fig 13c's 38.5% vs 8.4%).
	lhcsOn := run(SchemeFNCC, HopLast)
	lhcsOff := run(SchemeFNCCNoLHCS, HopLast)
	if lhcsOn.LHCSTriggers == 0 {
		t.Error("LHCS never fired at the last hop")
	}
	if lhcsOff.LHCSTriggers != 0 {
		t.Error("LHCS fired while disabled")
	}
	if lhcsOn.QueuePeak >= lhcsOff.QueuePeak {
		t.Errorf("LHCS on peak %.0f !< off %.0f", lhcsOn.QueuePeak, lhcsOff.QueuePeak)
	}

	table := FormatHopTable([]*HopResult{run(SchemeHPCC, HopLast), lhcsOn, lhcsOff})
	if !strings.Contains(table, "last") {
		t.Fatalf("table:\n%s", table)
	}
}

func TestRunHopValidation(t *testing.T) {
	cfg := DefaultHopConfig(SchemeFNCC, HopPosition("nowhere"))
	if _, err := RunHop(cfg); err == nil {
		t.Fatal("accepted bad position")
	}
}

func TestRunFairness(t *testing.T) {
	cfg := DefaultFairnessConfig(SchemeFNCC)
	cfg.Stagger = 400 * sim.Microsecond // CI-scale
	r, err := RunFairness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Goodput) != 4 {
		t.Fatalf("goodput series: %d", len(r.Goodput))
	}
	// Fig 13e: good fairness on short time scales.
	if r.JainAllActive < 0.85 {
		t.Fatalf("Jain index %.3f < 0.85 during full overlap", r.JainAllActive)
	}
}

func TestRunFairnessValidation(t *testing.T) {
	cfg := DefaultFairnessConfig(SchemeFNCC)
	cfg.Senders = 1
	if _, err := RunFairness(cfg); err == nil {
		t.Fatal("accepted 1 sender")
	}
}

func TestFairShareBytesSchedule(t *testing.T) {
	// The staggered join/leave schedule is a tent: flow i and flow n-1-i
	// mirror each other, and summing every flow's fair-share integral
	// recovers exactly the busy time — (2n-1) full windows of B.
	n := 4
	s := sim.Millisecond
	rate := int64(100e9)
	var total int64
	for i := 0; i < n; i++ {
		a := fairShareBytes(n, i, s, rate)
		b := fairShareBytes(n, n-1-i, s, rate)
		if a != b {
			t.Fatalf("mirror flows %d/%d budgets differ: %d vs %d", i, n-1-i, a, b)
		}
		total += a
	}
	perWindow := int64(float64(rate) / 8 * s.Seconds())
	want := perWindow * int64(2*n-1)
	if total < want-want/1000 || total > want+want/1000 {
		t.Fatalf("total budget %d, want ~%d (2n-1 windows)", total, want)
	}
	// Edge flows see the emptiest windows, so they get the biggest budget.
	if fairShareBytes(n, 0, s, rate) <= fairShareBytes(n, 1, s, rate) {
		t.Fatal("edge flow should out-earn middle flow")
	}
}

func TestBuckets(t *testing.T) {
	ws := WebSearchBuckets()
	if len(ws) != 11 || ws[0].Label != "10KB" || ws[10].HiByte != 30_000_000 {
		t.Fatalf("websearch buckets: %+v", ws)
	}
	hd := HadoopBuckets()
	if len(hd) != 13 || hd[0].LoByte != 0 || hd[0].HiByte != 75 {
		t.Fatalf("hadoop buckets: %+v", hd)
	}
	// Contiguity.
	for i := 1; i < len(ws); i++ {
		if ws[i].LoByte != ws[i-1].HiByte {
			t.Fatal("websearch buckets not contiguous")
		}
	}
	if _, err := BucketsFor("nope"); err == nil {
		t.Fatal("unknown workload buckets")
	}
}

func TestRunFCTSmall(t *testing.T) {
	// Small fat-tree FCT smoke: k=4, short horizon, two schemes; asserts
	// completion, record plausibility and the small-flow p95 ordering
	// FNCC <= DCQCN (DCQCN's sluggishness shows even at this scale).
	if testing.Short() {
		t.Skip("large integration run")
	}
	base := DefaultFCTConfig(SchemeFNCC, "hadoop")
	base.K = 4
	base.Horizon = 500 * sim.Microsecond
	base.Load = 0.4
	merged, runs, err := RunFCTSweep(base, []string{SchemeFNCC, SchemeDCQCN}, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if r.Generated == 0 {
			t.Fatalf("%s/seed%d: no flows generated", r.Scheme, r.Seed)
		}
		if r.Completed < r.Generated*95/100 {
			t.Fatalf("%s/seed%d: only %d/%d completed", r.Scheme, r.Seed, r.Completed, r.Generated)
		}
		if r.OfferedLoad < 0.15 || r.OfferedLoad > 0.8 {
			t.Fatalf("offered load %.2f implausible", r.OfferedLoad)
		}
	}
	fncc := merged[SchemeFNCC].SlowdownDist(0, 100_000)
	dcqcn := merged[SchemeDCQCN].SlowdownDist(0, 100_000)
	if fncc.N() == 0 || dcqcn.N() == 0 {
		t.Fatal("empty slowdown distributions")
	}
	if fncc.P95() > dcqcn.P95()*1.1 {
		t.Errorf("small-flow p95: FNCC %.2f vs DCQCN %.2f", fncc.P95(), dcqcn.P95())
	}

	tables, err := FormatFCTTables("hadoop", merged, []string{SchemeFNCC, SchemeDCQCN})
	if err != nil || !strings.Contains(tables, "p95") {
		t.Fatalf("tables err=%v:\n%s", err, tables)
	}
	_ = FormatHeadlines("hadoop", merged)
}

func TestRunFCTValidation(t *testing.T) {
	cfg := DefaultFCTConfig(SchemeFNCC, "nope")
	if _, err := RunFCT(cfg); err == nil {
		t.Fatal("accepted unknown workload")
	}
	cfg = DefaultFCTConfig("nope", "hadoop")
	if _, err := RunFCT(cfg); err == nil {
		t.Fatal("accepted unknown scheme")
	}
}

func TestRunNotifyOrdering(t *testing.T) {
	// E10: FNCC's notification latency at the first hop must undercut
	// HPCC's, and FNCC's own latency should grow from last toward first
	// hop relative advantage (Fig 12's geometry).
	cfg := NotifyConfig{Schemes: []string{SchemeFNCC, SchemeHPCC}, RateBps: 100e9}
	rows, err := RunNotify(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lat := map[string]map[HopPosition]sim.Time{}
	for _, r := range rows {
		if lat[r.Scheme] == nil {
			lat[r.Scheme] = map[HopPosition]sim.Time{}
		}
		if r.Latency < 0 {
			t.Fatalf("%s@%s never reacted", r.Scheme, r.Hop)
		}
		lat[r.Scheme][r.Hop] = r.Latency
	}
	if lat[SchemeFNCC][HopFirst] >= lat[SchemeHPCC][HopFirst] {
		t.Errorf("first-hop latency: FNCC %v !< HPCC %v",
			lat[SchemeFNCC][HopFirst], lat[SchemeHPCC][HopFirst])
	}
	// The title claim: FNCC's notification is sub-RTT at every hop
	// (base RTT of the M=3 dumbbell at 100G is ~13.5us).
	baseRTT := 13500 * sim.Nanosecond
	for hop, l := range lat[SchemeFNCC] {
		if l >= baseRTT {
			t.Errorf("FNCC@%s notification %v is not sub-RTT (%v)", hop, l, baseRTT)
		}
	}
	out := FormatNotifyTable(rows)
	if !strings.Contains(out, "FNCC") {
		t.Fatalf("table:\n%s", out)
	}
}

func TestSlowdownReduction(t *testing.T) {
	a, b := metrics.NewFCTCollector(), metrics.NewFCTCollector()
	rec := func(c *metrics.FCTCollector, slow float64) {
		c.Record(metrics.FCTRecord{SizeBytes: 50_000, Finish: sim.Time(slow * 1000), Ideal: 1000})
	}
	for i := 0; i < 10; i++ {
		rec(a, 2.0) // scheme
		rec(b, 4.0) // baseline
	}
	if got := SlowdownReduction("p95", a, b, 0, 100_000); got != 0.5 {
		t.Fatalf("reduction = %v", got)
	}
	if got := SlowdownReduction("avg", a, b, 1<<40, 1<<41); got != 0 {
		t.Fatalf("empty bucket reduction = %v", got)
	}
}
