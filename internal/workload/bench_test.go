package workload

import (
	"testing"

	"repro/internal/sim"
)

func BenchmarkSampleWebSearch(b *testing.B) {
	c := WebSearch()
	rng := sim.NewRNG(1)
	var x int64
	for i := 0; i < b.N; i++ {
		x += c.Sample(rng)
	}
	_ = x
}

func BenchmarkSampleHadoop(b *testing.B) {
	c := FBHadoop()
	rng := sim.NewRNG(1)
	var x int64
	for i := 0; i < b.N; i++ {
		x += c.Sample(rng)
	}
	_ = x
}

func BenchmarkGenerate1ms128Hosts(b *testing.B) {
	cfg := GenConfig{
		Hosts: 128, AccessBps: 100e9, Load: 0.5,
		CDF: FBHadoop(), Horizon: sim.Millisecond, Seed: 1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		flows, err := Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(flows) == 0 {
			b.Fatal("no flows")
		}
	}
}
