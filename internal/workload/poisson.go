package workload

import (
	"fmt"

	"repro/internal/sim"
)

// FlowSpec is one generated flow: who sends how much to whom, starting when.
type FlowSpec struct {
	ID        uint64
	SrcHost   int
	DstHost   int
	SizeBytes int64
	Start     sim.Time
}

// GenConfig parameterizes an open-loop Poisson workload over a host set.
type GenConfig struct {
	// Hosts is the number of end hosts; flows pick src != dst uniformly.
	Hosts int
	// AccessBps is the per-host access-link rate; with Load it fixes the
	// aggregate arrival rate.
	AccessBps int64
	// Load is the target average utilization of access links in (0, 1],
	// e.g. 0.5 for the paper's 50% runs.
	Load float64
	// CDF is the flow-size distribution.
	CDF *CDF
	// Horizon is the generation window: flows start in [0, Horizon).
	Horizon sim.Time
	// Seed drives all randomness for this workload.
	Seed int64
	// FirstID numbers the generated flows sequentially starting here.
	FirstID uint64
}

func (c *GenConfig) validate() error {
	switch {
	case c.Hosts < 2:
		return fmt.Errorf("workload: need >= 2 hosts, got %d", c.Hosts)
	case c.AccessBps <= 0:
		return fmt.Errorf("workload: non-positive access rate")
	case c.Load <= 0 || c.Load > 1:
		return fmt.Errorf("workload: load %v out of (0,1]", c.Load)
	case c.CDF == nil:
		return fmt.Errorf("workload: nil CDF")
	case c.Horizon <= 0:
		return fmt.Errorf("workload: non-positive horizon")
	}
	return nil
}

// Generate produces the flow arrivals for the whole fabric, sorted by start
// time. Arrivals form a Poisson process whose rate makes the expected
// per-host injected bit-rate equal Load × AccessBps:
//
//	λ_total = Hosts × Load × AccessBps / (8 × E[size])  flows per second.
func Generate(cfg GenConfig) ([]FlowSpec, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(cfg.Seed)
	mean := cfg.CDF.MeanBytes()
	lambdaPerSec := float64(cfg.Hosts) * cfg.Load * float64(cfg.AccessBps) / (8 * mean)
	meanGapPs := float64(sim.Second) / lambdaPerSec

	var flows []FlowSpec
	id := cfg.FirstID
	t := sim.Time(0)
	for {
		gap := sim.Time(rng.ExpFloat64() * meanGapPs)
		t += gap
		if t >= cfg.Horizon {
			break
		}
		src := rng.Intn(cfg.Hosts)
		dst := rng.Intn(cfg.Hosts - 1)
		if dst >= src {
			dst++
		}
		flows = append(flows, FlowSpec{
			ID:        id,
			SrcHost:   src,
			DstHost:   dst,
			SizeBytes: cfg.CDF.Sample(rng),
			Start:     t,
		})
		id++
	}
	return flows, nil
}

// TotalBytes sums the sizes of the generated flows.
func TotalBytes(flows []FlowSpec) int64 {
	var s int64
	for _, f := range flows {
		s += f.SizeBytes
	}
	return s
}

// OfferedLoad computes the realized average access-link load of a generated
// trace (for validating Generate against its target).
func OfferedLoad(flows []FlowSpec, hosts int, accessBps int64, horizon sim.Time) float64 {
	if horizon <= 0 || hosts == 0 {
		return 0
	}
	bits := float64(TotalBytes(flows)) * 8
	return bits / (float64(hosts) * float64(accessBps) * horizon.Seconds())
}
