package workload

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// FuzzParseCDF drives the CDF-file parser with arbitrary input: it must
// never panic, and any distribution it accepts must uphold the sampling
// invariants (positive sizes within [min, max]).
func FuzzParseCDF(f *testing.F) {
	f.Add("6000 0\n10000 0.5\n200000 1\n")
	f.Add("# comment\n75 0.1\n1000000 1.0\n")
	f.Add("")
	f.Add("1 1")
	f.Add("nonsense\n\n## \n-5 0.5\n10 1\n")
	f.Add("10 0.5\n9 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		c, err := ParseCDF("fuzz", strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		rng := sim.NewRNG(1)
		for i := 0; i < 50; i++ {
			s := c.Sample(rng)
			if s < 1 || s > c.MaxBytes() {
				t.Fatalf("accepted CDF sampled %d outside [1, %d] for %q",
					s, c.MaxBytes(), input)
			}
		}
		// Round-trip: formatting an accepted CDF must re-parse.
		if _, err := ParseCDF("again", strings.NewReader(FormatCDF(c))); err != nil {
			t.Fatalf("roundtrip failed for %q: %v", input, err)
		}
	})
}
