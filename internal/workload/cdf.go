// Package workload generates the traffic the paper evaluates on: flow sizes
// drawn from the public WebSearch (DCTCP) and FB_Hadoop (Facebook) traces,
// with open-loop Poisson arrivals at a target average link load (§5.5 uses
// 50%).
package workload

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// CDFPoint is one breakpoint of a piecewise-linear flow-size CDF: P(size <=
// Bytes) = Cum.
type CDFPoint struct {
	Bytes float64
	Cum   float64
}

// CDF is a piecewise-linear cumulative distribution over flow sizes in
// bytes, sampled by inverse transform. This mirrors the distribution files
// shipped with the HPCC simulator that the paper's workloads come from.
type CDF struct {
	name   string
	points []CDFPoint
}

// NewCDF validates and builds a CDF. Points must be strictly increasing in
// Bytes, non-decreasing in Cum, start at Cum >= 0 and end at Cum == 1.
func NewCDF(name string, points []CDFPoint) (*CDF, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("workload: CDF %q needs >= 2 points", name)
	}
	for i, p := range points {
		if p.Bytes < 1 {
			return nil, fmt.Errorf("workload: CDF %q point %d: size %v below one byte", name, i, p.Bytes)
		}
		if p.Bytes > 1<<60 {
			return nil, fmt.Errorf("workload: CDF %q point %d: size %v beyond int64 range", name, i, p.Bytes)
		}
		if p.Cum < 0 || p.Cum > 1 {
			return nil, fmt.Errorf("workload: CDF %q point %d: cum %v out of [0,1]", name, i, p.Cum)
		}
		if i > 0 {
			if p.Bytes <= points[i-1].Bytes {
				return nil, fmt.Errorf("workload: CDF %q point %d: sizes not increasing", name, i)
			}
			if p.Cum < points[i-1].Cum {
				return nil, fmt.Errorf("workload: CDF %q point %d: cum decreasing", name, i)
			}
		}
	}
	if points[len(points)-1].Cum != 1 {
		return nil, fmt.Errorf("workload: CDF %q must end at cum=1", name)
	}
	cp := append([]CDFPoint(nil), points...)
	return &CDF{name: name, points: cp}, nil
}

// MustCDF is NewCDF for package-level literals; it panics on invalid input.
func MustCDF(name string, points []CDFPoint) *CDF {
	c, err := NewCDF(name, points)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the distribution's name.
func (c *CDF) Name() string { return c.name }

// MinBytes returns the smallest producible flow size.
func (c *CDF) MinBytes() int64 { return int64(c.points[0].Bytes) }

// MaxBytes returns the largest producible flow size.
func (c *CDF) MaxBytes() int64 { return int64(c.points[len(c.points)-1].Bytes) }

// MeanBytes returns the analytic mean of the piecewise-linear distribution.
// Each linear CDF segment contributes (cum_i - cum_{i-1}) probability mass
// uniformly spread over (bytes_{i-1}, bytes_i], whose mean is the midpoint.
// Mass at the first point (points[0].Cum > 0) sits exactly at points[0].
func (c *CDF) MeanBytes() float64 {
	mean := c.points[0].Cum * c.points[0].Bytes
	for i := 1; i < len(c.points); i++ {
		dm := c.points[i].Cum - c.points[i-1].Cum
		mid := (c.points[i].Bytes + c.points[i-1].Bytes) / 2
		mean += dm * mid
	}
	return mean
}

// Sample draws a flow size via inverse transform with the supplied RNG.
// The result is at least 1 byte.
func (c *CDF) Sample(rng *sim.RNG) int64 {
	u := rng.Float64()
	if u <= c.points[0].Cum {
		return int64(c.points[0].Bytes)
	}
	// Find the first breakpoint with Cum >= u and interpolate within the
	// segment ending there.
	i := sort.Search(len(c.points), func(i int) bool { return c.points[i].Cum >= u })
	if i >= len(c.points) {
		return c.MaxBytes()
	}
	lo, hi := c.points[i-1], c.points[i]
	if hi.Cum == lo.Cum {
		return int64(hi.Bytes)
	}
	frac := (u - lo.Cum) / (hi.Cum - lo.Cum)
	size := lo.Bytes + frac*(hi.Bytes-lo.Bytes)
	if size < 1 {
		size = 1
	}
	return int64(size)
}

// Quantile returns the flow size at cumulative probability q (0<=q<=1).
func (c *CDF) Quantile(q float64) int64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("workload: quantile %v out of range", q))
	}
	if q <= c.points[0].Cum {
		return int64(c.points[0].Bytes)
	}
	i := sort.Search(len(c.points), func(i int) bool { return c.points[i].Cum >= q })
	if i >= len(c.points) {
		return c.MaxBytes()
	}
	lo, hi := c.points[i-1], c.points[i]
	if hi.Cum == lo.Cum {
		return int64(hi.Bytes)
	}
	frac := (q - lo.Cum) / (hi.Cum - lo.Cum)
	return int64(lo.Bytes + frac*(hi.Bytes-lo.Bytes))
}
