package workload

// The two public data-center traces the paper evaluates on (§5.5, citing
// Montazeri et al. [19] and Roy et al. [20]). The breakpoints below follow
// the distribution files published with the HPCC/Homa simulation artifacts;
// the bucket edges match the x-axes of the paper's Figs 14 and 15 exactly
// (10KB…30MB for WebSearch, 75B…1MB for FB_Hadoop), so every figure bucket
// is populated.

// WebSearch returns the DCTCP web-search flow-size distribution: a heavy
// mix where most flows are tens of KB but most *bytes* belong to multi-MB
// flows. Mean ≈ 1.6 MB.
func WebSearch() *CDF {
	return MustCDF("WebSearch", []CDFPoint{
		{Bytes: 6_000, Cum: 0.00},
		{Bytes: 10_000, Cum: 0.15},
		{Bytes: 20_000, Cum: 0.20},
		{Bytes: 30_000, Cum: 0.30},
		{Bytes: 50_000, Cum: 0.40},
		{Bytes: 80_000, Cum: 0.53},
		{Bytes: 200_000, Cum: 0.60},
		{Bytes: 1_000_000, Cum: 0.70},
		{Bytes: 2_000_000, Cum: 0.80},
		{Bytes: 5_000_000, Cum: 0.90},
		{Bytes: 10_000_000, Cum: 0.97},
		{Bytes: 30_000_000, Cum: 1.00},
	})
}

// FBHadoop returns the Facebook Hadoop-cluster flow-size distribution:
// dominated by sub-MTU and few-KB flows with a thin tail to 1 MB.
// Mean ≈ 12 KB.
func FBHadoop() *CDF {
	return MustCDF("FB_Hadoop", []CDFPoint{
		{Bytes: 75, Cum: 0.10},
		{Bytes: 250, Cum: 0.20},
		{Bytes: 350, Cum: 0.30},
		{Bytes: 1_000, Cum: 0.50},
		{Bytes: 2_000, Cum: 0.60},
		{Bytes: 6_000, Cum: 0.70},
		{Bytes: 10_000, Cum: 0.80},
		{Bytes: 15_000, Cum: 0.90},
		{Bytes: 23_000, Cum: 0.95},
		{Bytes: 24_000, Cum: 0.97},
		{Bytes: 25_000, Cum: 0.98},
		{Bytes: 100_000, Cum: 0.99},
		{Bytes: 1_000_000, Cum: 1.00},
	})
}

// Uniform returns a degenerate "distribution" producing sizes uniformly in
// [lo, hi] bytes — handy for controlled tests and microbenchmarks.
func Uniform(lo, hi int64) *CDF {
	if lo >= hi {
		panic("workload: Uniform requires lo < hi")
	}
	return MustCDF("Uniform", []CDFPoint{
		{Bytes: float64(lo), Cum: 0},
		{Bytes: float64(hi), Cum: 1},
	})
}

// Fixed returns a distribution in which every flow has exactly size bytes.
func Fixed(size int64) *CDF {
	return MustCDF("Fixed", []CDFPoint{
		{Bytes: float64(size), Cum: 1.0 - 1e-12},
		{Bytes: float64(size) + 1, Cum: 1},
	})
}

// ByName resolves the distributions the CLI tools accept.
func ByName(name string) (*CDF, bool) {
	switch name {
	case "websearch", "WebSearch":
		return WebSearch(), true
	case "hadoop", "fbhadoop", "FB_Hadoop":
		return FBHadoop(), true
	default:
		return nil, false
	}
}
