package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestNewCDFValidation(t *testing.T) {
	cases := []struct {
		name string
		pts  []CDFPoint
	}{
		{"too few", []CDFPoint{{1, 1}}},
		{"zero size", []CDFPoint{{0, 0}, {10, 1}}},
		{"cum > 1", []CDFPoint{{1, 0}, {10, 1.5}}},
		{"sizes not increasing", []CDFPoint{{10, 0}, {10, 1}}},
		{"cum decreasing", []CDFPoint{{1, 0.5}, {10, 0.2}, {20, 1}}},
		{"not ending at 1", []CDFPoint{{1, 0}, {10, 0.9}}},
	}
	for _, c := range cases {
		if _, err := NewCDF(c.name, c.pts); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := NewCDF("ok", []CDFPoint{{1, 0.1}, {10, 1}}); err != nil {
		t.Fatalf("valid CDF rejected: %v", err)
	}
}

func TestMustCDFPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCDF("bad", []CDFPoint{{1, 1}})
}

func TestSampleRange(t *testing.T) {
	for _, c := range []*CDF{WebSearch(), FBHadoop()} {
		rng := sim.NewRNG(1)
		for i := 0; i < 50000; i++ {
			s := c.Sample(rng)
			if s < c.MinBytes() || s > c.MaxBytes() {
				t.Fatalf("%s: sample %d out of [%d, %d]", c.Name(), s, c.MinBytes(), c.MaxBytes())
			}
		}
	}
}

func TestSampleMeanMatchesAnalytic(t *testing.T) {
	for _, c := range []*CDF{WebSearch(), FBHadoop(), Uniform(100, 10000)} {
		rng := sim.NewRNG(7)
		const n = 300000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(c.Sample(rng))
		}
		got := sum / n
		want := c.MeanBytes()
		if math.Abs(got-want)/want > 0.03 {
			t.Errorf("%s: empirical mean %.0f vs analytic %.0f", c.Name(), got, want)
		}
	}
}

func TestWebSearchShape(t *testing.T) {
	c := WebSearch()
	// Most flows are < 200KB but the mean is MB-scale (heavy tail).
	if q := c.Quantile(0.6); q > 200_000 {
		t.Fatalf("60th percentile %d should be <= 200KB", q)
	}
	if m := c.MeanBytes(); m < 1_000_000 || m > 3_000_000 {
		t.Fatalf("WebSearch mean %.0f outside [1MB, 3MB]", m)
	}
}

func TestFBHadoopShape(t *testing.T) {
	c := FBHadoop()
	// Half the flows fit in a single MTU.
	if q := c.Quantile(0.5); q > 1518 {
		t.Fatalf("median %d should fit one MTU", q)
	}
	if m := c.MeanBytes(); m < 5_000 || m > 40_000 {
		t.Fatalf("Hadoop mean %.0f outside [5KB, 40KB]", m)
	}
}

func TestQuantileMonotone(t *testing.T) {
	c := WebSearch()
	prev := int64(0)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := c.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at %v: %d < %d", q, v, prev)
		}
		prev = v
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WebSearch().Quantile(-0.1)
}

func TestFixedDistribution(t *testing.T) {
	c := Fixed(5000)
	rng := sim.NewRNG(3)
	for i := 0; i < 1000; i++ {
		if s := c.Sample(rng); s < 5000 || s > 5001 {
			t.Fatalf("Fixed(5000) sampled %d", s)
		}
	}
}

func TestByName(t *testing.T) {
	if c, ok := ByName("websearch"); !ok || c.Name() != "WebSearch" {
		t.Fatal("websearch lookup failed")
	}
	if c, ok := ByName("hadoop"); !ok || c.Name() != "FB_Hadoop" {
		t.Fatal("hadoop lookup failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown name resolved")
	}
}

// Property: samples are always within [min, max] and positive for any seed.
func TestQuickSampleBounds(t *testing.T) {
	c := FBHadoop()
	f := func(seed int64) bool {
		rng := sim.NewRNG(seed)
		for i := 0; i < 100; i++ {
			s := c.Sample(rng)
			if s < 1 || s < c.MinBytes() || s > c.MaxBytes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateValidation(t *testing.T) {
	base := GenConfig{Hosts: 4, AccessBps: 100e9, Load: 0.5, CDF: FBHadoop(), Horizon: sim.Millisecond}
	bad := []GenConfig{}
	for _, mut := range []func(*GenConfig){
		func(c *GenConfig) { c.Hosts = 1 },
		func(c *GenConfig) { c.AccessBps = 0 },
		func(c *GenConfig) { c.Load = 0 },
		func(c *GenConfig) { c.Load = 1.5 },
		func(c *GenConfig) { c.CDF = nil },
		func(c *GenConfig) { c.Horizon = 0 },
	} {
		c := base
		mut(&c)
		bad = append(bad, c)
	}
	for i, c := range bad {
		if _, err := Generate(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestGenerateLoadAndOrdering(t *testing.T) {
	cfg := GenConfig{
		Hosts: 16, AccessBps: 100e9, Load: 0.5,
		CDF: FBHadoop(), Horizon: 20 * sim.Millisecond, Seed: 11,
	}
	flows, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) < 1000 {
		t.Fatalf("only %d flows generated", len(flows))
	}
	for i := 1; i < len(flows); i++ {
		if flows[i].Start < flows[i-1].Start {
			t.Fatal("flows not sorted by start")
		}
		if flows[i].ID != flows[i-1].ID+1 {
			t.Fatal("flow IDs not sequential")
		}
	}
	for _, f := range flows {
		if f.SrcHost == f.DstHost {
			t.Fatal("self-flow generated")
		}
		if f.SrcHost < 0 || f.SrcHost >= 16 || f.DstHost < 0 || f.DstHost >= 16 {
			t.Fatal("host out of range")
		}
	}
	load := OfferedLoad(flows, cfg.Hosts, cfg.AccessBps, cfg.Horizon)
	if math.Abs(load-0.5) > 0.1 {
		t.Fatalf("offered load %.3f, want ~0.5", load)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{
		Hosts: 8, AccessBps: 100e9, Load: 0.3,
		CDF: WebSearch(), Horizon: 5 * sim.Millisecond, Seed: 42,
	}
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	cfg.Seed = 43
	c, _ := Generate(cfg)
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical workloads")
		}
	}
}

func TestDestinationsRoughlyUniform(t *testing.T) {
	cfg := GenConfig{
		Hosts: 8, AccessBps: 100e9, Load: 0.8,
		CDF: FBHadoop(), Horizon: 20 * sim.Millisecond, Seed: 5,
	}
	flows, _ := Generate(cfg)
	counts := make([]int, 8)
	for _, f := range flows {
		counts[f.DstHost]++
	}
	mean := float64(len(flows)) / 8
	for h, n := range counts {
		if math.Abs(float64(n)-mean) > 0.25*mean {
			t.Fatalf("host %d received %d flows, mean %.0f", h, n, mean)
		}
	}
}

func TestUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Uniform(10, 10)
}
