package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseCDF reads a flow-size distribution in the format used by the
// HPCC/Homa simulation artifacts the paper's workloads come from: one
// "<size_bytes> <cumulative_probability>" pair per line, increasing in
// both columns, ending at probability 1. Blank lines and '#' comments are
// ignored.
//
//	# WebSearch flow size distribution
//	6000    0
//	10000   0.15
//	...
//	30000000 1.0
func ParseCDF(name string, r io.Reader) (*CDF, error) {
	var points []CDFPoint
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("workload: %s line %d: want 'bytes cum', got %q", name, line, text)
		}
		bytes, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: %s line %d: bad size: %v", name, line, err)
		}
		cum, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: %s line %d: bad probability: %v", name, line, err)
		}
		points = append(points, CDFPoint{Bytes: bytes, Cum: cum})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: %s: %w", name, err)
	}
	return NewCDF(name, points)
}

// FormatCDF writes a CDF back in the same file format (round-trips with
// ParseCDF), so custom distributions can be exported for other tools.
func FormatCDF(c *CDF) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s flow size distribution (bytes cum)\n", c.name)
	for _, p := range c.points {
		// %g keeps fractional sizes distinct so the output always
		// re-parses (sizes must stay strictly increasing).
		fmt.Fprintf(&b, "%g %g\n", p.Bytes, p.Cum)
	}
	return b.String()
}
