package workload

import (
	"strings"
	"testing"
)

func TestParseCDF(t *testing.T) {
	in := `
# comment
6000    0
10000   0.15

200000  0.6
30000000 1.0
`
	c, err := ParseCDF("test", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.MinBytes() != 6000 || c.MaxBytes() != 30_000_000 {
		t.Fatalf("range [%d, %d]", c.MinBytes(), c.MaxBytes())
	}
	if q := c.Quantile(0.15); q != 10_000 {
		t.Fatalf("Quantile(0.15) = %d", q)
	}
}

func TestParseCDFErrors(t *testing.T) {
	cases := []string{
		"6000 0\n10000",                  // missing column
		"abc 0\n10000 1",                 // bad size
		"6000 zero\n10000 1",             // bad probability
		"6000 0\n10000 0.9",              // does not end at 1
		"6000 0.5\n10000 0.2\n2000000 1", // decreasing cum
	}
	for i, in := range cases {
		if _, err := ParseCDF("bad", strings.NewReader(in)); err == nil {
			t.Errorf("case %d: accepted %q", i, in)
		}
	}
}

func TestFormatParseRoundtrip(t *testing.T) {
	for _, c := range []*CDF{WebSearch(), FBHadoop()} {
		out := FormatCDF(c)
		back, err := ParseCDF(c.Name(), strings.NewReader(out))
		if err != nil {
			t.Fatalf("%s: %v\n%s", c.Name(), err, out)
		}
		if back.MeanBytes() != c.MeanBytes() {
			t.Fatalf("%s: mean changed %v -> %v", c.Name(), c.MeanBytes(), back.MeanBytes())
		}
		if back.MinBytes() != c.MinBytes() || back.MaxBytes() != c.MaxBytes() {
			t.Fatalf("%s: range changed", c.Name())
		}
	}
}
