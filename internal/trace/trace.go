// Package trace provides recorders for netsim's fabric-wide trace stream:
// a bounded ring buffer, per-flow filtering, and text rendering. Attach one
// with Recorder.Attach(net) while debugging an experiment; detach (or never
// attach) in measured runs.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/netsim"
)

// Recorder captures the last Cap trace events in a ring buffer.
type Recorder struct {
	// Cap bounds retained events; 0 means unbounded.
	Cap int
	// FlowID, when nonzero, keeps only events of that flow.
	FlowID uint64
	// KindMask selects event kinds; nil keeps all.
	Kinds map[netsim.TraceEventKind]bool

	events []netsim.TraceEvent
	start  int // ring start when wrapped
	total  uint64
}

// NewRecorder returns a ring recorder with the given capacity.
func NewRecorder(capacity int) *Recorder { return &Recorder{Cap: capacity} }

// Attach installs the recorder on a network (replacing any previous Trace
// sink) and returns a detach function.
func (r *Recorder) Attach(n *netsim.Network) (detach func()) {
	n.Trace = r.Observe
	return func() {
		if fnPtrEq(n.Trace, r.Observe) {
			n.Trace = nil
		}
	}
}

// fnPtrEq guards detach against replacing someone else's sink; function
// values are not comparable in Go, so the best available check is "was a
// sink present" — callers detach in LIFO order in practice.
func fnPtrEq(a func(netsim.TraceEvent), b func(netsim.TraceEvent)) bool {
	return a != nil && b != nil
}

// Observe ingests one event (usable directly as Network.Trace).
func (r *Recorder) Observe(ev netsim.TraceEvent) {
	if r.FlowID != 0 && ev.FlowID != r.FlowID {
		return
	}
	if r.Kinds != nil && !r.Kinds[ev.Kind] {
		return
	}
	r.total++
	if r.Cap <= 0 || len(r.events) < r.Cap {
		r.events = append(r.events, ev)
		return
	}
	r.events[r.start] = ev
	r.start = (r.start + 1) % r.Cap
}

// Total returns how many events passed the filters (including evicted).
func (r *Recorder) Total() uint64 { return r.total }

// Len returns how many events are retained.
func (r *Recorder) Len() int { return len(r.events) }

// Events returns retained events in arrival order.
func (r *Recorder) Events() []netsim.TraceEvent {
	out := make([]netsim.TraceEvent, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Drops returns the retained drop events.
func (r *Recorder) Drops() []netsim.TraceEvent {
	var out []netsim.TraceEvent
	for _, ev := range r.Events() {
		if ev.Kind == netsim.TraceDrop {
			out = append(out, ev)
		}
	}
	return out
}

// String renders the retained events, one line each.
func (r *Recorder) String() string {
	var b strings.Builder
	for _, ev := range r.Events() {
		fmt.Fprintf(&b, "%12s %-6s node=%d port=%d %s flow=%d seq=%d %dB\n",
			ev.At, ev.Kind, ev.Node, ev.Port, ev.Type, ev.FlowID, ev.Seq, ev.Size)
	}
	return b.String()
}
