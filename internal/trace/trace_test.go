package trace

import (
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

type nullCC struct{ rate int64 }

func (c *nullCC) Name() string                                 { return "null" }
func (c *nullCC) OnAck(*netsim.Flow, *packet.Packet, sim.Time) {}
func (c *nullCC) OnCnp(*netsim.Flow, sim.Time)                 {}
func (c *nullCC) WindowBytes() int64                           { return 1 << 40 }
func (c *nullCC) RateBps() int64                               { return c.rate }

type nullRecv struct{}

func (nullRecv) FillAck(ack, data *packet.Packet, _ *netsim.Host)    {}
func (nullRecv) WantCnp(*packet.Packet, *netsim.Host, sim.Time) bool { return false }

func pair(t *testing.T, cfg netsim.Config) (*netsim.Network, *netsim.Host, *netsim.Host) {
	t.Helper()
	n := netsim.MustNew(cfg, netsim.Scheme{
		Name:        "null",
		NewSenderCC: func(*netsim.Flow) netsim.SenderCC { return &nullCC{rate: 100e9} },
		Receiver:    nullRecv{},
	})
	h0, h1 := n.NewHost(), n.NewHost()
	netsim.Connect(h0.Port(), h1.Port(), 100e9, sim.Microsecond)
	return n, h0, h1
}

func TestRecorderCapturesTx(t *testing.T) {
	n, h0, h1 := pair(t, netsim.DefaultConfig())
	rec := NewRecorder(0)
	detach := rec.Attach(n)
	defer detach()
	n.AddFlow(1, h0, h1, 5000, 0)
	n.RunUntil(sim.Millisecond)

	if rec.Total() == 0 || rec.Len() == 0 {
		t.Fatal("no events recorded")
	}
	evs := rec.Events()
	// First event: first data segment leaving h0.
	if evs[0].Type != packet.Data || evs[0].Node != h0.ID() || evs[0].Seq != 0 {
		t.Fatalf("first event = %+v", evs[0])
	}
	// Must contain ACK transmissions from h1.
	foundAck := false
	for _, ev := range evs {
		if ev.Type == packet.Ack && ev.Node == h1.ID() {
			foundAck = true
		}
	}
	if !foundAck {
		t.Fatal("no ACK tx recorded")
	}
	if !strings.Contains(rec.String(), "DATA") {
		t.Fatalf("render:\n%s", rec.String())
	}
}

func TestRecorderRingEviction(t *testing.T) {
	n, h0, h1 := pair(t, netsim.DefaultConfig())
	rec := NewRecorder(4)
	rec.Attach(n)
	n.AddFlow(1, h0, h1, 50_000, 0)
	n.RunUntil(sim.Millisecond)
	if rec.Len() != 4 {
		t.Fatalf("ring kept %d, want 4", rec.Len())
	}
	if rec.Total() <= 4 {
		t.Fatalf("total %d should exceed cap", rec.Total())
	}
	evs := rec.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("ring events out of order")
		}
	}
}

func TestRecorderFlowFilter(t *testing.T) {
	n, h0, h1 := pair(t, netsim.DefaultConfig())
	rec := NewRecorder(0)
	rec.FlowID = 2
	rec.Attach(n)
	n.AddFlow(1, h0, h1, 20_000, 0)
	n.AddFlow(2, h0, h1, 20_000, 0)
	n.RunUntil(sim.Millisecond)
	for _, ev := range rec.Events() {
		if ev.FlowID != 2 {
			t.Fatalf("filter leak: %+v", ev)
		}
	}
	if rec.Len() == 0 {
		t.Fatal("filter dropped everything")
	}
}

func TestRecorderKindFilterAndDrops(t *testing.T) {
	cfg := netsim.DefaultConfig()
	cfg.PFCEnabled = false
	cfg.SharedBufferBytes = 8_000
	n := netsim.MustNew(cfg, netsim.Scheme{
		Name:        "null",
		NewSenderCC: func(*netsim.Flow) netsim.SenderCC { return &nullCC{rate: 100e9} },
		Receiver:    nullRecv{},
	})
	// 2:1 overload through a switch with a tiny buffer to force drops.
	h0, h1, h2 := n.NewHost(), n.NewHost(), n.NewHost()
	sw := n.NewSwitch(3)
	netsim.Connect(h0.Port(), sw.PortAt(0), 100e9, sim.Microsecond)
	netsim.Connect(h1.Port(), sw.PortAt(1), 100e9, sim.Microsecond)
	netsim.Connect(h2.Port(), sw.PortAt(2), 100e9, sim.Microsecond)
	sw.SetRoute(h2.ID(), 2)
	sw.SetRoute(h0.ID(), 0)
	sw.SetRoute(h1.ID(), 1)

	rec := NewRecorder(0)
	rec.Kinds = map[netsim.TraceEventKind]bool{netsim.TraceDrop: true}
	rec.Attach(n)
	n.AddFlow(1, h0, h2, 500_000, 0)
	n.AddFlow(2, h1, h2, 500_000, 0)
	n.RunUntil(200 * sim.Microsecond)

	if n.Drops.N == 0 {
		t.Fatal("no drops provoked")
	}
	if int64(rec.Len()) != n.Drops.N {
		t.Fatalf("recorded %d drops, counter says %d", rec.Len(), n.Drops.N)
	}
	for _, ev := range rec.Drops() {
		if ev.Kind != netsim.TraceDrop || ev.Port != -1 || ev.Node != sw.ID() {
			t.Fatalf("bad drop event: %+v", ev)
		}
	}
	if !strings.Contains(rec.String(), "drop") {
		t.Fatal("render missing drops")
	}
}

func TestDetach(t *testing.T) {
	n, h0, h1 := pair(t, netsim.DefaultConfig())
	rec := NewRecorder(0)
	detach := rec.Attach(n)
	detach()
	n.AddFlow(1, h0, h1, 5000, 0)
	n.RunUntil(sim.Millisecond)
	if rec.Len() != 0 {
		t.Fatal("recorder saw events after detach")
	}
}
