package cc

import (
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Timely (Mittal et al., SIGCOMM'15) is an RTT-gradient rate controller.
// The paper cites it among the end-to-end schemes whose "shared drawback is
// their delayed reaction to congestion" (§6) but does not include it in the
// evaluation; this implementation is provided as an extension so the
// harness can compare a purely delay-based RP on the same substrate.
type TimelyConfig struct {
	// EwmaAlpha weighs new RTT-difference samples (paper: 0.875 applied to
	// the *previous* estimate, i.e. new sample weight 0.125).
	EwmaAlpha float64
	// TLow / THigh bracket the gradient band: below TLow additive
	// increase, above THigh multiplicative decrease regardless of slope.
	TLow, THigh sim.Time
	// AddStepBps is the additive increase step δ.
	AddStepBps int64
	// Beta is the multiplicative-decrease factor.
	Beta float64
	// HAIThresh is how many consecutive negative-gradient samples enter
	// hyper-active increase (N·δ).
	HAIThresh int
	// MinRateBps floors the rate.
	MinRateBps int64
}

// DefaultTimelyConfig returns constants scaled to 100G fabrics with ~13 us
// base RTTs (the original paper targeted 10G/ms-scale; thresholds scale
// with the fabric's RTT).
func DefaultTimelyConfig() TimelyConfig {
	return TimelyConfig{
		EwmaAlpha:  0.125,
		TLow:       20 * sim.Microsecond,
		THigh:      100 * sim.Microsecond,
		AddStepBps: 2e9,
		Beta:       0.8,
		HAIThresh:  5,
		MinRateBps: 100e6,
	}
}

// Timely is the per-flow RP state.
type Timely struct {
	cfg TimelyConfig
	b   int64

	rate     float64
	prevRTT  sim.Time
	rttDiff  float64 // EWMA of RTT differences, in seconds
	negCount int
	minRTT   sim.Time
}

// NewTimely builds RP state for one flow, starting at line rate.
func NewTimely(cfg TimelyConfig, f *netsim.Flow) *Timely {
	b := f.SrcHost.Port().RateBps()
	return &Timely{
		cfg:    cfg,
		b:      b,
		rate:   float64(b),
		minRTT: f.SrcHost.Net().Cfg.BaseRTT,
	}
}

// Name implements netsim.SenderCC.
func (t *Timely) Name() string { return "Timely" }

// WindowBytes implements netsim.SenderCC (rate-based).
func (t *Timely) WindowBytes() int64 { return 1 << 40 }

// RateBps implements netsim.SenderCC.
func (t *Timely) RateBps() int64 { return int64(t.rate) }

// OnCnp implements netsim.SenderCC (unused).
func (t *Timely) OnCnp(*netsim.Flow, sim.Time) {}

// OnAck implements netsim.SenderCC: the Timely update on each RTT sample.
func (t *Timely) OnAck(f *netsim.Flow, ack *packet.Packet, now sim.Time) {
	if ack.EchoTS == 0 {
		return
	}
	rtt := now - ack.EchoTS
	if rtt <= 0 {
		return
	}
	if t.prevRTT == 0 {
		t.prevRTT = rtt
		return
	}
	newDiff := (rtt - t.prevRTT).Seconds()
	t.prevRTT = rtt
	t.rttDiff = (1-t.cfg.EwmaAlpha)*t.rttDiff + t.cfg.EwmaAlpha*newDiff
	gradient := t.rttDiff / t.minRTT.Seconds()

	switch {
	case rtt < t.cfg.TLow:
		t.negCount = 0
		t.rate += float64(t.cfg.AddStepBps)
	case rtt > t.cfg.THigh:
		t.negCount = 0
		t.rate *= 1 - t.cfg.Beta*(1-t.cfg.THigh.Seconds()/rtt.Seconds())
	case gradient <= 0:
		t.negCount++
		n := 1.0
		if t.negCount >= t.cfg.HAIThresh {
			n = 5
		}
		t.rate += n * float64(t.cfg.AddStepBps)
	default:
		t.negCount = 0
		dec := 1 - t.cfg.Beta*gradient
		if dec < 0.5 {
			dec = 0.5 // bound a single-step decrease
		}
		t.rate *= dec
	}
	if t.rate > float64(t.b) {
		t.rate = float64(t.b)
	}
	if t.rate < float64(t.cfg.MinRateBps) {
		t.rate = float64(t.cfg.MinRateBps)
	}
}

// timelyReceiver echoes the data packet's send timestamp so the sender can
// sample RTT.
type timelyReceiver struct{}

// FillAck implements netsim.ReceiverCC.
func (timelyReceiver) FillAck(ack, data *packet.Packet, _ *netsim.Host) {
	ack.EchoTS = data.SendTime
}

// WantCnp implements netsim.ReceiverCC.
func (timelyReceiver) WantCnp(*packet.Packet, *netsim.Host, sim.Time) bool { return false }

// NewTimelyScheme assembles the Timely extension baseline. Switches need no
// hook: the fabric only contributes queueing delay.
func NewTimelyScheme(cfg TimelyConfig) netsim.Scheme {
	return netsim.Scheme{
		Name: "Timely",
		NewSenderCC: func(f *netsim.Flow) netsim.SenderCC {
			return NewTimely(cfg, f)
		},
		Receiver: timelyReceiver{},
	}
}
