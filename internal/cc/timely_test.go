package cc

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topo"
)

func timelyAck(echo sim.Time) *packet.Packet {
	return &packet.Packet{Type: packet.Ack, EchoTS: echo}
}

func TestTimelyStartsAtLineRate(t *testing.T) {
	_, f := newTestFlow(t, NewTimelyScheme(DefaultTimelyConfig()))
	if f.CC().RateBps() != gbps100 {
		t.Fatalf("initial rate %d", f.CC().RateBps())
	}
}

func TestTimelyLowRTTIncreases(t *testing.T) {
	_, f := newTestFlow(t, NewTimelyScheme(DefaultTimelyConfig()))
	tl := f.CC().(*Timely)
	tl.rate = 50e9
	// Two samples below TLow (RTT 13us): first primes, second updates.
	tl.OnAck(f, timelyAck(100*sim.Microsecond), 113*sim.Microsecond)
	tl.OnAck(f, timelyAck(200*sim.Microsecond), 213*sim.Microsecond)
	if tl.RateBps() <= 50e9 {
		t.Fatalf("rate did not increase: %d", tl.RateBps())
	}
}

func TestTimelyHighRTTDecreases(t *testing.T) {
	_, f := newTestFlow(t, NewTimelyScheme(DefaultTimelyConfig()))
	tl := f.CC().(*Timely)
	tl.OnAck(f, timelyAck(10*sim.Microsecond), 160*sim.Microsecond) // prime, RTT 150us
	r0 := tl.RateBps()
	tl.OnAck(f, timelyAck(100*sim.Microsecond), 300*sim.Microsecond) // RTT 200us > THigh
	if tl.RateBps() >= r0 {
		t.Fatalf("rate did not decrease above THigh: %d -> %d", r0, tl.RateBps())
	}
}

func TestTimelyGradientDecrease(t *testing.T) {
	_, f := newTestFlow(t, NewTimelyScheme(DefaultTimelyConfig()))
	tl := f.CC().(*Timely)
	// Rising RTTs inside the band -> positive gradient -> decrease.
	tl.OnAck(f, timelyAck(10*sim.Microsecond), 50*sim.Microsecond) // RTT 40us
	r0 := tl.RateBps()
	tl.OnAck(f, timelyAck(20*sim.Microsecond), 90*sim.Microsecond) // RTT 70us
	// prevRTT 40 -> 70: +30us step on a 13us minRTT: strong gradient.
	if tl.RateBps() >= r0 {
		t.Fatalf("no gradient decrease: %d -> %d", r0, tl.RateBps())
	}
}

func TestTimelyHAIMode(t *testing.T) {
	cfg := DefaultTimelyConfig()
	_, f := newTestFlow(t, NewTimelyScheme(cfg))
	tl := f.CC().(*Timely)
	tl.rate = 10e9
	// Constant mid-band RTTs: gradient 0 -> negCount grows -> HAI after 5.
	rtt := 50 * sim.Microsecond
	now := 100 * sim.Microsecond
	tl.OnAck(f, timelyAck(now-rtt), now)
	var last int64 = tl.RateBps()
	var steps []int64
	for i := 0; i < 8; i++ {
		now += 10 * sim.Microsecond
		tl.OnAck(f, timelyAck(now-rtt), now) // rtt == prev -> diff 0
		steps = append(steps, tl.RateBps()-last)
		last = tl.RateBps()
	}
	if steps[len(steps)-1] <= steps[0] {
		t.Fatalf("HAI did not amplify steps: %v", steps)
	}
}

func TestTimelyIgnoresUnechoedAcks(t *testing.T) {
	_, f := newTestFlow(t, NewTimelyScheme(DefaultTimelyConfig()))
	tl := f.CC().(*Timely)
	r0 := tl.RateBps()
	tl.OnAck(f, &packet.Packet{Type: packet.Ack}, 100*sim.Microsecond)
	if tl.RateBps() != r0 {
		t.Fatal("unechoed ACK changed rate")
	}
}

func TestTimelyClosedLoopBoundsQueue(t *testing.T) {
	// Two Timely elephants on the dumbbell: the queue must stabilize
	// (delay-based control) rather than grow to the PFC threshold.
	cfg := netsim.DefaultConfig()
	c := topo.MustChain(cfg, NewTimelyScheme(DefaultTimelyConfig()), topo.DefaultChainOpts(2))
	f0 := c.AddFlow(1, 0, 1<<30, 0)
	f1 := c.AddFlow(2, 1, 1<<30, 0)
	var maxQ int64
	stop := c.Net.Eng.Ticker(sim.Microsecond, func() {
		if q := c.BottleneckPort().QueueBytes(); q > maxQ {
			maxQ = q
		}
	})
	defer stop()
	c.Net.RunUntil(2 * sim.Millisecond)
	// Timely oscillates and often undershoots (one reason INT-based schemes
	// superseded it); assert sanity, not efficiency.
	sum := f0.CC().RateBps() + f1.CC().RateBps()
	if sum < 10e9 || sum > 140e9 {
		t.Fatalf("aggregate rate %.1fG implausible", float64(sum)/1e9)
	}
	if maxQ == 0 {
		t.Fatal("no queue at all — setup broken")
	}
	if c.Net.Drops.N != 0 {
		t.Fatalf("drops: %d", c.Net.Drops.N)
	}
}

func TestTimelyRateFloor(t *testing.T) {
	cfg := DefaultTimelyConfig()
	_, f := newTestFlow(t, NewTimelyScheme(cfg))
	tl := f.CC().(*Timely)
	tl.OnAck(f, timelyAck(0), 500*sim.Microsecond)
	for i := 0; i < 200; i++ {
		tl.OnAck(f, timelyAck(0), 10*sim.Millisecond) // huge RTTs
	}
	if tl.RateBps() < cfg.MinRateBps {
		t.Fatalf("rate %d under floor", tl.RateBps())
	}
}
