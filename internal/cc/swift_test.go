package cc

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topo"
)

func swiftAck(echo sim.Time) *packet.Packet {
	return &packet.Packet{Type: packet.Ack, EchoTS: echo}
}

func TestSwiftStartsAtBDP(t *testing.T) {
	_, f := newTestFlow(t, NewSwiftScheme(DefaultSwiftConfig()))
	s := f.CC().(*Swift)
	bdp := float64(gbps100) / 8 * (13 * sim.Microsecond).Seconds()
	if s.wnd < bdp*0.99 || s.wnd > bdp*1.01 {
		t.Fatalf("w0 = %v, want ~%v", s.wnd, bdp)
	}
}

func TestSwiftIncreasesBelowTarget(t *testing.T) {
	_, f := newTestFlow(t, NewSwiftScheme(DefaultSwiftConfig()))
	s := f.CC().(*Swift)
	s.wnd = 50_000
	w0 := s.wnd
	// RTT 13us, far below the ~27us+ target.
	s.OnAck(f, swiftAck(100*sim.Microsecond), 113*sim.Microsecond)
	if s.wnd <= w0 {
		t.Fatalf("no increase below target: %v", s.wnd)
	}
}

func TestSwiftDecreasesAboveTarget(t *testing.T) {
	_, f := newTestFlow(t, NewSwiftScheme(DefaultSwiftConfig()))
	s := f.CC().(*Swift)
	w0 := s.wnd
	// RTT 200us, far above target.
	s.OnAck(f, swiftAck(100*sim.Microsecond), 300*sim.Microsecond)
	if s.wnd >= w0 {
		t.Fatalf("no decrease above target: %v", s.wnd)
	}
	if s.wnd < w0*(1-DefaultSwiftConfig().MaxMdf)-1 {
		t.Fatalf("decrease exceeded MaxMdf: %v -> %v", w0, s.wnd)
	}
}

func TestSwiftOneCutPerRTT(t *testing.T) {
	_, f := newTestFlow(t, NewSwiftScheme(DefaultSwiftConfig()))
	s := f.CC().(*Swift)
	s.OnAck(f, swiftAck(100*sim.Microsecond), 300*sim.Microsecond)
	w1 := s.wnd
	// Second congested ACK 1us later: inside the same RTT, only AI-free
	// hold (no second cut).
	s.OnAck(f, swiftAck(101*sim.Microsecond), 301*sim.Microsecond)
	if s.wnd < w1 {
		t.Fatalf("second cut within one RTT: %v -> %v", w1, s.wnd)
	}
}

func TestSwiftFlowScalingRaisesTargetForSmallWindows(t *testing.T) {
	_, f := newTestFlow(t, NewSwiftScheme(DefaultSwiftConfig()))
	s := f.CC().(*Swift)
	s.wnd = 100_000
	big := s.target()
	s.wnd = 1518
	small := s.target()
	if small <= big {
		t.Fatalf("flow scaling: target(small wnd) %v !> target(big wnd) %v", small, big)
	}
}

func TestSwiftClosedLoop(t *testing.T) {
	c := topo.MustChain(netsim.DefaultConfig(), NewSwiftScheme(DefaultSwiftConfig()), topo.DefaultChainOpts(2))
	f0 := c.AddFlow(1, 0, 1<<30, 0)
	f1 := c.AddFlow(2, 1, 1<<30, 0)
	var maxQ int64
	stop := c.Net.Eng.Ticker(sim.Microsecond, func() {
		if q := c.BottleneckPort().QueueBytes(); q > maxQ {
			maxQ = q
		}
	})
	defer stop()
	c.Net.RunUntil(3 * sim.Millisecond)
	// Swift is window-limited: judge it by goodput, not pacing rate.
	a0, a1 := f0.SndUna(), f1.SndUna()
	c.Net.RunUntil(4 * sim.Millisecond)
	g0 := float64(f0.SndUna()-a0) * 8 / sim.Millisecond.Seconds()
	g1 := float64(f1.SndUna()-a1) * 8 / sim.Millisecond.Seconds()
	if sum := g0 + g1; sum < 60e9 || sum > 110e9 {
		t.Fatalf("aggregate goodput %.1fG not near line rate", sum/1e9)
	}
	if ratio := g0 / g1; ratio < 0.5 || ratio > 2 {
		t.Fatalf("unfair goodput split: %.1fG / %.1fG", g0/1e9, g1/1e9)
	}
	if maxQ == 0 || maxQ > 450_000 {
		t.Fatalf("queue peak %dKB", maxQ>>10)
	}
	if c.Net.Drops.N != 0 {
		t.Fatal("drops")
	}
}

func TestSwiftInRegistryViaScheme(t *testing.T) {
	// Swift is wired through exp's registry in a separate package; here we
	// verify the scheme constructor contract directly.
	sch := NewSwiftScheme(DefaultSwiftConfig())
	if sch.Name != "Swift" || sch.NewSenderCC == nil || sch.Receiver == nil {
		t.Fatal("malformed Swift scheme")
	}
}
