package cc

import (
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// RoCCConfig parameterizes the switch-driven PI controller of Taheri et al.
// RoCC computes a per-port fair rate at the switch and advertises it to the
// senders of transiting flows; the paper characterizes it as needing
// "millisecond-level delays to converge", which these gains reproduce.
type RoCCConfig struct {
	// QRefBytes is the target standing queue at the controlled egress.
	QRefBytes int64
	// Period is the PI update interval.
	Period sim.Time
	// Kp and Ki are the proportional and integral gains, expressed as
	// rate deltas (bps) per byte of queue error per update.
	Kp float64
	Ki float64
	// MinRateBps floors the advertised fair rate.
	MinRateBps int64
	// IdleRaise is the multiplicative relaxation toward line rate applied
	// when the queue is empty (lets the advertisement decay away).
	IdleRaise float64
}

// DefaultRoCCConfig returns gains that converge on millisecond scales at
// 100 Gbps, matching the paper's depiction ("RoCC is hard to converge at
// the microsecond level").
func DefaultRoCCConfig() RoCCConfig {
	return RoCCConfig{
		QRefBytes:  100 << 10,
		Period:     50 * sim.Microsecond,
		Kp:         25_000, // bps per queue-byte of error per update
		Ki:         2_500,
		MinRateBps: 50e6,
		IdleRaise:  1.02,
	}
}

// RoCCSender obeys the advertised fair rate from ACKs.
type RoCCSender struct {
	b    int64
	rate float64
	cfg  RoCCConfig
}

// NewRoCCSender builds RP state for one flow, starting at line rate.
func NewRoCCSender(cfg RoCCConfig, f *netsim.Flow) *RoCCSender {
	b := f.SrcHost.Port().RateBps()
	return &RoCCSender{b: b, rate: float64(b), cfg: cfg}
}

// Name implements netsim.SenderCC.
func (r *RoCCSender) Name() string { return "RoCC" }

// WindowBytes implements netsim.SenderCC (rate-based scheme).
func (r *RoCCSender) WindowBytes() int64 { return 1 << 40 }

// RateBps implements netsim.SenderCC.
func (r *RoCCSender) RateBps() int64 { return int64(r.rate) }

// OnAck implements netsim.SenderCC: adopt the path's minimum advertised
// fair rate; with no advertisement, relax toward line rate.
func (r *RoCCSender) OnAck(f *netsim.Flow, ack *packet.Packet, now sim.Time) {
	if ack.FairRateBps > 0 {
		r.rate = float64(ack.FairRateBps)
		if r.rate > float64(r.b) {
			r.rate = float64(r.b)
		}
		if r.rate < float64(r.cfg.MinRateBps) {
			r.rate = float64(r.cfg.MinRateBps)
		}
		return
	}
	r.rate *= r.cfg.IdleRaise
	if r.rate > float64(r.b) {
		r.rate = float64(r.b)
	}
}

// OnCnp implements netsim.SenderCC (unused).
func (r *RoCCSender) OnCnp(*netsim.Flow, sim.Time) {}

// roccReceiver copies the switch's advertisement into the ACK.
type roccReceiver struct{}

// FillAck implements netsim.ReceiverCC.
func (roccReceiver) FillAck(ack, data *packet.Packet, _ *netsim.Host) {
	ack.FairRateBps = data.FairRateBps
}

// WantCnp implements netsim.ReceiverCC.
func (roccReceiver) WantCnp(*packet.Packet, *netsim.Host, sim.Time) bool { return false }

// roccHook runs one PI controller per egress port and stamps the minimum
// fair rate along the path into transiting data packets.
type roccHook struct {
	cfg  RoCCConfig
	sw   *netsim.Switch
	fair []float64 // per-port advertised rate, bps
	qPrv []int64   // previous queue sample
	hot  []bool    // whether the port is currently advertising
}

func newRoCCHook(cfg RoCCConfig, sw *netsim.Switch) *roccHook {
	h := &roccHook{
		cfg:  cfg,
		sw:   sw,
		fair: make([]float64, sw.NumPorts()),
		qPrv: make([]int64, sw.NumPorts()),
		hot:  make([]bool, sw.NumPorts()),
	}
	for i := range h.fair {
		h.fair[i] = float64(maxRate(sw, i))
	}
	sw.Engine().Ticker(cfg.Period, h.update)
	return h
}

func maxRate(sw *netsim.Switch, port int) int64 {
	if r := sw.PortAt(port).RateBps(); r > 0 {
		return r
	}
	return 100e9 // unwired port (never carries traffic); placeholder
}

// update is one PI step per port:
//
//	fair += Kp*(qref - q) - Ki*(q - qPrev)
//
// A port is "hot" (advertising) while it holds a standing queue; once the
// queue empties the advertisement relaxes multiplicatively back to line
// rate and switches off.
func (h *roccHook) update() {
	for i := range h.fair {
		port := h.sw.PortAt(i)
		if port.Peer() == nil {
			continue
		}
		b := float64(port.RateBps())
		q := port.QueueBytes()
		if q > 0 || h.hot[i] {
			e := float64(h.cfg.QRefBytes - q)
			h.fair[i] += h.cfg.Kp*e - h.cfg.Ki*float64(q-h.qPrv[i])
			if h.fair[i] < float64(h.cfg.MinRateBps) {
				h.fair[i] = float64(h.cfg.MinRateBps)
			}
			if h.fair[i] >= b {
				h.fair[i] = b
				h.hot[i] = q > 0
			} else {
				h.hot[i] = true
			}
		}
		h.qPrv[i] = q
	}
}

// OnEnqueue implements netsim.SwitchHook.
func (h *roccHook) OnEnqueue(*netsim.Switch, *packet.Packet, int) {}

// OnDequeue implements netsim.SwitchHook: stamp the path-minimum fair rate.
func (h *roccHook) OnDequeue(sw *netsim.Switch, pkt *packet.Packet, outPort int) {
	if pkt.Type != packet.Data || !h.hot[outPort] {
		return
	}
	adv := int64(h.fair[outPort])
	if pkt.FairRateBps == 0 || adv < pkt.FairRateBps {
		pkt.FairRateBps = adv
	}
}

// NewRoCCScheme assembles the complete RoCC baseline.
func NewRoCCScheme(cfg RoCCConfig) netsim.Scheme {
	return netsim.Scheme{
		Name: "RoCC",
		NewSenderCC: func(f *netsim.Flow) netsim.SenderCC {
			return NewRoCCSender(cfg, f)
		},
		Receiver: roccReceiver{},
		NewSwitchHook: func(sw *netsim.Switch) netsim.SwitchHook {
			return newRoCCHook(cfg, sw)
		},
	}
}
