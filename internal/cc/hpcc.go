// Package cc implements the baseline congestion-control schemes the paper
// compares against: HPCC (Li et al., SIGCOMM'19), DCQCN (Zhu et al.,
// SIGCOMM'15) and RoCC (Taheri et al., CoNEXT'20). Each scheme provides the
// three plug points netsim defines: sender (RP), receiver (ACK generation)
// and switch hook (CP).
//
// HPCC deserves special care: FNCC (internal/core) is an extension of it and
// reuses this implementation of the paper's Algorithm 3 verbatim, changing
// only where INT is stamped and adding the last-hop speedup.
package cc

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// HPCCConfig holds the window-algorithm constants of Algorithm 3.
type HPCCConfig struct {
	// Eta is the target utilization η, close to 1 (paper: 0.95).
	Eta float64
	// MaxStage bounds consecutive additive-increase rounds before a
	// multiplicative adjustment (paper: 5).
	MaxStage int
	// WaiBytes is the additive-increase step W_AI, "kept very small".
	WaiBytes float64
	// MinWndBytes floors the window (one MTU keeps flows alive).
	MinWndBytes float64
}

// DefaultHPCCConfig returns the constants used throughout the evaluation.
func DefaultHPCCConfig() HPCCConfig {
	return HPCCConfig{
		Eta:         0.95,
		MaxStage:    5,
		WaiBytes:    800,
		MinWndBytes: 1518,
	}
}

// HPCC is the per-flow Reaction Point state of Algorithm 3. The same struct
// serves FNCC, which installs PreWindow (the UpdateWc call of line 30) and
// feeds it ACKs whose INT was stamped on the return path.
type HPCC struct {
	Cfg HPCCConfig

	// T is the base RTT (the algorithm's T), B the NIC line rate.
	T sim.Time
	B int64

	// W and Wc are the working and reference windows in bytes (per-ACK /
	// per-RTT scheme of Equations 5-6).
	W, Wc float64
	// U is the EWMA-filtered max link utilization (line 13).
	U float64
	// ULink holds the latest per-link u' values, indexed by distance from
	// the sender (Hop_Detection input; Algorithm 3 line 9 stores U_i).
	ULink []float64
	// LastHopIndex is len(ULink)-1 after an ACK with INT; -1 before.
	LastHopIndex int

	incStage      int
	lastUpdateSeq int64
	maxWnd        float64

	// prev is L: the previous ACK's INT, normalized to distance-from-sender
	// order, plus the path signature to detect reroutes.
	prev     []packet.IntHop
	prevPath uint16
	hasPrev  bool

	// PreWindow, when non-nil, runs before the window computation on every
	// ACK carrying INT — FNCC's UpdateWc (Algorithm 3 line 30) hooks here.
	PreWindow func(h *HPCC, f *netsim.Flow, ack *packet.Packet)

	rate int64
}

// NewHPCC builds RP state for one flow: the window starts at one
// bandwidth-delay product plus an MTU so a new flow can fill the pipe
// immediately (HPCC §4.3: flows start at line rate).
func NewHPCC(cfg HPCCConfig, f *netsim.Flow) *HPCC {
	b := f.SrcHost.Port().RateBps()
	t := f.SrcHost.Net().Cfg.BaseRTT
	if b <= 0 || t <= 0 {
		panic(fmt.Sprintf("cc: flow %d missing rate/RTT (B=%d T=%v)", f.ID, b, t))
	}
	bdp := float64(b) / 8 * t.Seconds()
	h := &HPCC{
		Cfg:          cfg,
		T:            t,
		B:            b,
		W:            bdp + float64(cfg.MinWndBytes),
		U:            0,
		LastHopIndex: -1,
		maxWnd:       bdp + float64(cfg.MinWndBytes),
	}
	h.Wc = h.W
	h.rate = b
	return h
}

// Name implements netsim.SenderCC.
func (h *HPCC) Name() string { return "HPCC" }

// WindowBytes implements netsim.SenderCC.
func (h *HPCC) WindowBytes() int64 { return int64(h.W) }

// RateBps implements netsim.SenderCC: R = W/T (Algorithm 3 line 47).
func (h *HPCC) RateBps() int64 { return h.rate }

// OnCnp implements netsim.SenderCC (HPCC ignores CNPs).
func (h *HPCC) OnCnp(*netsim.Flow, sim.Time) {}

// OnAck implements netsim.SenderCC: the NewACK procedure (lines 41-48).
func (h *HPCC) OnAck(f *netsim.Flow, ack *packet.Packet, now sim.Time) {
	if ack.NHop() == 0 {
		return // no telemetry (e.g. duplicate ACK before first INT)
	}
	u, ok := h.measureInflight(ack)
	if !ok {
		return // first sample on this path only primes L
	}
	if h.PreWindow != nil {
		h.PreWindow(h, f, ack)
	}
	if ack.Seq > h.lastUpdateSeq {
		h.W = h.computeWind(u, true)
		h.lastUpdateSeq = f.SndNxt()
	} else {
		h.W = h.computeWind(u, false)
	}
	h.rate = int64(h.W * 8 / h.T.Seconds())
}

// measureInflight is the MeasureInFlight function (lines 4-15): per-link
// normalized in-flight bytes from consecutive INT samples, EWMA-filtered.
// It returns (U, true) when a window update is possible, or (0, false) while
// priming the previous-sample state.
func (h *HPCC) measureInflight(ack *packet.Packet) (float64, bool) {
	n := ack.NHop()
	// Reroute or first ACK: reset L and prime.
	if !h.hasPrev || len(h.prev) != n || h.prevPath != ack.PathID() {
		h.storePrev(ack)
		return 0, false
	}

	if len(h.ULink) != n {
		h.ULink = make([]float64, n)
	}
	u := 0.0
	tau := sim.Time(0)
	for i := 0; i < n; i++ {
		cur := ack.HopAtDistanceFromSender(i)
		prev := h.prev[i]
		dt := cur.TS - prev.TS
		if dt <= 0 {
			// Same-instant samples (e.g. two ACKs stamped in one event):
			// keep the previous estimate for this link.
			continue
		}
		txRate := float64(cur.TxBytes-prev.TxBytes) * 8 / dt.Seconds() // bps
		qmin := float64(min64(int64(cur.QLen), int64(prev.QLen)))
		uLink := qmin*8/(float64(cur.B)*h.T.Seconds()) + txRate/float64(cur.B)
		h.ULink[i] = uLink
		if uLink > u {
			u = uLink
			tau = dt
		}
	}
	h.LastHopIndex = n - 1
	h.storePrev(ack)
	if tau > h.T {
		tau = h.T
	}
	if tau <= 0 {
		return h.U, true // all links skipped; reuse the filtered estimate
	}
	frac := float64(tau) / float64(h.T)
	h.U = (1-frac)*h.U + frac*u
	return h.U, true
}

// computeWind is ComputeWind (lines 29-40) minus the UpdateWc hook, which
// ran earlier: multiplicative adjustment when overloaded or out of AI
// budget, additive increase otherwise.
func (h *HPCC) computeWind(u float64, updateWc bool) float64 {
	var w float64
	if u >= h.Cfg.Eta || h.incStage >= h.Cfg.MaxStage {
		w = h.Wc/(u/h.Cfg.Eta) + h.Cfg.WaiBytes
		if updateWc {
			h.incStage = 0
			h.Wc = h.clamp(w)
		}
	} else {
		w = h.Wc + h.Cfg.WaiBytes
		if updateWc {
			h.incStage++
			h.Wc = h.clamp(w)
		}
	}
	return h.clamp(w)
}

func (h *HPCC) clamp(w float64) float64 {
	if w < h.Cfg.MinWndBytes {
		return h.Cfg.MinWndBytes
	}
	if w > h.maxWnd {
		return h.maxWnd
	}
	return w
}

// SetWc force-sets the reference window (FNCC's last-hop speedup does this)
// and refreshes the pacing rate.
func (h *HPCC) SetWc(w float64) {
	h.Wc = h.clamp(w)
	if h.W > h.Wc {
		h.W = h.Wc
	}
	h.rate = int64(h.W * 8 / h.T.Seconds())
}

func (h *HPCC) storePrev(ack *packet.Packet) {
	n := ack.NHop()
	if cap(h.prev) < n {
		h.prev = make([]packet.IntHop, n)
	}
	h.prev = h.prev[:n]
	for i := 0; i < n; i++ {
		h.prev[i] = ack.HopAtDistanceFromSender(i)
	}
	h.prevPath = ack.PathID()
	h.hasPrev = true
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// hpccReceiver echoes the data packet's accumulated INT into the ACK
// (HPCC's ACK generation: "the target end-host generates ACK containing all
// INTs and sends them back").
type hpccReceiver struct{}

// FillAck implements netsim.ReceiverCC.
func (hpccReceiver) FillAck(ack, data *packet.Packet, _ *netsim.Host) {
	ack.Ordering = packet.SenderToReceiver
	ack.Hops = append(ack.Hops[:0], data.Hops...)
}

// WantCnp implements netsim.ReceiverCC.
func (hpccReceiver) WantCnp(*packet.Packet, *netsim.Host, sim.Time) bool { return false }

// hpccHook stamps egress INT on every data packet at dequeue — the CP
// behaviour of HPCC's Fig 4a ("insert INT into packet" at each switch).
type hpccHook struct{}

// OnEnqueue implements netsim.SwitchHook.
func (hpccHook) OnEnqueue(*netsim.Switch, *packet.Packet, int) {}

// OnDequeue implements netsim.SwitchHook.
func (hpccHook) OnDequeue(sw *netsim.Switch, pkt *packet.Packet, outPort int) {
	if pkt.Type == packet.Data {
		pkt.AddHop(sw.PortINT(outPort))
	}
}

// NewHPCCScheme assembles the complete HPCC baseline.
func NewHPCCScheme(cfg HPCCConfig) netsim.Scheme {
	return netsim.Scheme{
		Name: "HPCC",
		NewSenderCC: func(f *netsim.Flow) netsim.SenderCC {
			return NewHPCC(cfg, f)
		},
		Receiver:      hpccReceiver{},
		NewSwitchHook: func(*netsim.Switch) netsim.SwitchHook { return hpccHook{} },
	}
}
