package cc

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topo"
)

const gbps100 = int64(100e9)

// newTestFlow builds a two-host network and one registered (not started)
// flow so CC constructors have a line rate and base RTT to read.
func newTestFlow(t *testing.T, sch netsim.Scheme) (*netsim.Network, *netsim.Flow) {
	t.Helper()
	cfg := netsim.DefaultConfig()
	cfg.BaseRTT = 13 * sim.Microsecond
	n := netsim.MustNew(cfg, sch)
	h0, h1 := n.NewHost(), n.NewHost()
	netsim.Connect(h0.Port(), h1.Port(), gbps100, 1500*sim.Nanosecond)
	f := n.AddFlow(1, h0, h1, 1<<30, sim.Second) // starts far in the future
	return n, f
}

// mkAck crafts an HPCC-style ACK with one INT hop.
func mkAck(seq int64, ts sim.Time, txBytes uint64, qlen uint32, b int64) *packet.Packet {
	return &packet.Packet{
		Type: packet.Ack, Seq: seq, Ordering: packet.SenderToReceiver,
		Hops: []packet.IntHop{{SwitchID: 1, PortID: 1, B: b, TS: ts, TxBytes: txBytes, QLen: qlen}},
	}
}

func TestHPCCInitialWindowIsBDP(t *testing.T) {
	_, f := newTestFlow(t, NewHPCCScheme(DefaultHPCCConfig()))
	h := f.CC().(*HPCC)
	bdp := float64(gbps100) / 8 * h.T.Seconds()
	if math.Abs(h.W-(bdp+1518)) > 1 {
		t.Fatalf("W0 = %v, want BDP+MTU = %v", h.W, bdp+1518)
	}
	if h.RateBps() != gbps100 {
		t.Fatalf("initial rate = %d", h.RateBps())
	}
}

func TestHPCCDecreasesUnderCongestion(t *testing.T) {
	_, f := newTestFlow(t, NewHPCCScheme(DefaultHPCCConfig()))
	h := f.CC().(*HPCC)
	w0 := h.W

	// Two samples 10us apart: full-rate txRate plus a deep queue =>
	// U well above eta => multiplicative decrease.
	bytesIn10us := uint64(sim.BytesAt(gbps100, 10*sim.Microsecond))
	h.OnAck(f, mkAck(1_000, 100*sim.Microsecond, 1_000_000, 400_000, gbps100), 0)
	h.OnAck(f, mkAck(2_000, 110*sim.Microsecond, 1_000_000+bytesIn10us, 400_000, gbps100), 0)

	if h.W >= w0 {
		t.Fatalf("window did not shrink: %v -> %v", w0, h.W)
	}
	if h.RateBps() >= gbps100 {
		t.Fatalf("rate did not shrink: %d", h.RateBps())
	}
	// Deep queue + line-rate tx: utilization far above 1.
	if h.U < 1 {
		t.Fatalf("U = %v, want > 1", h.U)
	}
}

func TestHPCCAdditiveIncreaseWhenIdle(t *testing.T) {
	cfg := DefaultHPCCConfig()
	_, f := newTestFlow(t, NewHPCCScheme(cfg))
	h := f.CC().(*HPCC)
	h.W, h.Wc = 50_000, 50_000 // mid-range so AI is visible

	// Low utilization: half-rate tx, empty queue.
	bytesIn10us := uint64(sim.BytesAt(gbps100/2, 10*sim.Microsecond))
	h.OnAck(f, mkAck(1_000, 100*sim.Microsecond, 0, 0, gbps100), 0)
	w1 := h.W
	h.OnAck(f, mkAck(2_000, 110*sim.Microsecond, bytesIn10us, 0, gbps100), 0)
	if h.W <= w1 {
		t.Fatalf("window should additively increase: %v -> %v", w1, h.W)
	}
	if h.W > w1+2*cfg.WaiBytes {
		t.Fatalf("increase %v exceeds AI step", h.W-w1)
	}
}

func TestHPCCMaxStageForcesMI(t *testing.T) {
	cfg := DefaultHPCCConfig()
	_, f := newTestFlow(t, NewHPCCScheme(cfg))
	h := f.CC().(*HPCC)
	h.W, h.Wc = 50_000, 50_000

	// Prime, then feed many low-utilization per-RTT updates. Window updates
	// happen when ack.Seq > lastUpdateSeq; with SndNxt()==0 on an unstarted
	// flow every positive seq qualifies, so every ACK is a "first ACK of a
	// new window".
	ts := 100 * sim.Microsecond
	var tx uint64
	h.OnAck(f, mkAck(1, ts, tx, 0, gbps100), 0)
	for i := 0; i < cfg.MaxStage+2; i++ {
		ts += 10 * sim.Microsecond
		tx += uint64(sim.BytesAt(gbps100/2, 10*sim.Microsecond))
		h.OnAck(f, mkAck(int64(i+2), ts, tx, 0, gbps100), 0)
	}
	// After MaxStage AI rounds the MI branch fires: with U ~ 0.5 the window
	// jumps well above the AI staircase (Wc/(U/eta) ~ 1.9x).
	if h.W < 80_000 {
		t.Fatalf("MI jump missing: W = %v", h.W)
	}
}

func TestHPCCWindowClamps(t *testing.T) {
	_, f := newTestFlow(t, NewHPCCScheme(DefaultHPCCConfig()))
	h := f.CC().(*HPCC)
	maxW := h.W

	// Monstrous congestion cannot push W below one MTU.
	h.OnAck(f, mkAck(1_000, 100*sim.Microsecond, 0, 10_000_000, gbps100), 0)
	h.OnAck(f, mkAck(2_000, 101*sim.Microsecond,
		uint64(sim.BytesAt(gbps100, sim.Microsecond)), 10_000_000, gbps100), 0)
	if h.W < 1518 {
		t.Fatalf("W below MTU: %v", h.W)
	}
	// And repeated idle increases cannot exceed the initial BDP cap.
	h.W, h.Wc = maxW, maxW
	ts := sim.Millisecond
	var tx uint64
	for i := 0; i < 50; i++ {
		ts += 10 * sim.Microsecond
		tx += 1000
		h.OnAck(f, mkAck(int64(3000+i), ts, tx, 0, gbps100), 0)
	}
	if h.W > maxW+1 {
		t.Fatalf("W exceeded cap: %v > %v", h.W, maxW)
	}
}

func TestHPCCFirstAckOnlyPrimes(t *testing.T) {
	_, f := newTestFlow(t, NewHPCCScheme(DefaultHPCCConfig()))
	h := f.CC().(*HPCC)
	w0 := h.W
	h.OnAck(f, mkAck(1_000, 100*sim.Microsecond, 1_000_000, 500_000, gbps100), 0)
	if h.W != w0 {
		t.Fatalf("first ACK changed the window: %v -> %v", w0, h.W)
	}
}

func TestHPCCPathChangeResets(t *testing.T) {
	_, f := newTestFlow(t, NewHPCCScheme(DefaultHPCCConfig()))
	h := f.CC().(*HPCC)
	h.OnAck(f, mkAck(1_000, 100*sim.Microsecond, 1000, 0, gbps100), 0)
	// Same flow, different path (2 hops now): must re-prime, not compute
	// garbage deltas.
	ack := mkAck(2_000, 110*sim.Microsecond, 500, 0, gbps100)
	ack.AddHop(packet.IntHop{SwitchID: 7, B: gbps100, TS: 110 * sim.Microsecond, TxBytes: 1, QLen: 0})
	w0 := h.W
	h.OnAck(f, ack, 0)
	if h.W != w0 {
		t.Fatal("window updated from cross-path INT delta")
	}
}

func TestHPCCIgnoresAckWithoutINT(t *testing.T) {
	_, f := newTestFlow(t, NewHPCCScheme(DefaultHPCCConfig()))
	h := f.CC().(*HPCC)
	w0 := h.W
	h.OnAck(f, &packet.Packet{Type: packet.Ack, Seq: 500}, 0)
	if h.W != w0 {
		t.Fatal("INT-less ACK changed state")
	}
}

func TestHPCCZeroIntervalGuard(t *testing.T) {
	_, f := newTestFlow(t, NewHPCCScheme(DefaultHPCCConfig()))
	h := f.CC().(*HPCC)
	// Two ACKs stamped in the same instant: dt == 0 must not divide.
	h.OnAck(f, mkAck(1_000, 100*sim.Microsecond, 1000, 0, gbps100), 0)
	h.OnAck(f, mkAck(2_000, 100*sim.Microsecond, 1000, 0, gbps100), 0)
	h.OnAck(f, mkAck(3_000, 100*sim.Microsecond, 1000, 0, gbps100), 0)
	if math.IsNaN(h.W) || math.IsInf(h.W, 0) {
		t.Fatalf("window poisoned: %v", h.W)
	}
}

// Property: the HPCC window stays within [MinWnd, BDP+MTU] and finite for
// arbitrary INT sequences (adversarial telemetry cannot break invariants).
func TestQuickHPCCWindowBounds(t *testing.T) {
	_, f := newTestFlow(t, NewHPCCScheme(DefaultHPCCConfig()))
	h := f.CC().(*HPCC)
	maxW := h.W
	seq := int64(0)
	ts := sim.Time(1)
	fn := func(dtNs uint32, txDelta uint32, qlen uint32) bool {
		seq += 1000
		ts += sim.Time(dtNs%1_000_000) * sim.Nanosecond
		ack := mkAck(seq, ts, uint64(txDelta)*uint64(seq), qlen, gbps100)
		h.OnAck(f, ack, ts)
		return h.W >= 1517.9 && h.W <= maxW+1 && !math.IsNaN(h.W) && !math.IsInf(h.W, 0) &&
			h.RateBps() >= 0 && h.RateBps() <= gbps100+1
	}
	if err := quickCheck(fn, 3000); err != nil {
		t.Fatal(err)
	}
}

// quickCheck is a tiny driver (testing/quick's reflection interferes with
// the closure's accumulated state ordering less predictably; a plain seeded
// loop keeps the sequence adversarial yet reproducible).
func quickCheck(fn func(uint32, uint32, uint32) bool, n int) error {
	rng := sim.NewRNG(99)
	for i := 0; i < n; i++ {
		if !fn(uint32(rng.Uint64()), uint32(rng.Uint64()), uint32(rng.Uint64())) {
			return fmt.Errorf("invariant violated at iteration %d", i)
		}
	}
	return nil
}

func TestDCQCNCnpCutsRate(t *testing.T) {
	_, f := newTestFlow(t, NewDCQCNScheme(DefaultDCQCNConfig()))
	d := f.CC().(*DCQCN)
	if d.RateBps() != gbps100 {
		t.Fatalf("initial rate %d", d.RateBps())
	}
	d.OnCnp(f, 0)
	// alpha starts at 1: first cut halves the rate.
	if got := d.RateBps(); got != gbps100/2 {
		t.Fatalf("rate after first CNP = %d, want %d", got, gbps100/2)
	}
	if math.Abs(d.alpha-(1-1.0/256+1.0/256)) > 1e-12 { // (1-g)*1+g = 1
		t.Fatalf("alpha = %v", d.alpha)
	}
	d.OnCnp(f, 0)
	if got := d.RateBps(); got != gbps100/4 {
		t.Fatalf("rate after second CNP = %d", got)
	}
}

func TestDCQCNRateFloor(t *testing.T) {
	cfg := DefaultDCQCNConfig()
	_, f := newTestFlow(t, NewDCQCNScheme(cfg))
	d := f.CC().(*DCQCN)
	for i := 0; i < 100; i++ {
		d.OnCnp(f, 0)
	}
	if d.RateBps() < cfg.MinRateBps {
		t.Fatalf("rate %d below floor %d", d.RateBps(), cfg.MinRateBps)
	}
}

func TestDCQCNFastRecoveryAndAI(t *testing.T) {
	cfg := DefaultDCQCNConfig()
	n, f := newTestFlow(t, NewDCQCNScheme(cfg))
	d := f.CC().(*DCQCN)
	d.OnCnp(f, 0) // rc=50G, rt=100G, stages reset, timers armed

	// Fast recovery: each timer tick halves the gap to rt.
	n.Eng.RunUntil(cfg.IncTimer + sim.Microsecond)
	r1 := d.RateBps()
	if r1 <= gbps100/2 || r1 > 80e9 {
		t.Fatalf("after 1 FR step rate = %d", r1)
	}
	// After F ticks we are in additive increase; rate approaches rt=100G
	// and rt grows in small RateAI steps; rate must keep rising slowly.
	n.Eng.RunUntil(cfg.IncTimer * 20)
	r2 := d.RateBps()
	if r2 <= r1 {
		t.Fatalf("rate stopped recovering: %d -> %d", r1, r2)
	}
	if r2 > gbps100 {
		t.Fatalf("rate above line: %d", r2)
	}
}

func TestDCQCNAlphaDecays(t *testing.T) {
	cfg := DefaultDCQCNConfig()
	n, f := newTestFlow(t, NewDCQCNScheme(cfg))
	d := f.CC().(*DCQCN)
	d.OnCnp(f, 0)
	a0 := d.alpha
	n.Eng.RunUntil(cfg.AlphaTimer*10 + sim.Microsecond)
	if d.alpha >= a0 {
		t.Fatalf("alpha did not decay: %v -> %v", a0, d.alpha)
	}
}

func TestDCQCNByteCounterTriggersIncrease(t *testing.T) {
	cfg := DefaultDCQCNConfig()
	cfg.ByteCounter = 10_000 // tiny for the test
	_, f := newTestFlow(t, NewDCQCNScheme(cfg))
	d := f.CC().(*DCQCN)
	d.OnCnp(f, 0)
	r0 := d.RateBps()
	d.OnAck(f, &packet.Packet{Type: packet.Ack, Seq: 20_000}, 0)
	if d.RateBps() <= r0 {
		t.Fatalf("byte counter did not trigger increase: %d -> %d", r0, d.RateBps())
	}
	if d.byteStage != 1 {
		t.Fatalf("byteStage = %d", d.byteStage)
	}
}

func TestWREDMarking(t *testing.T) {
	cfg := netsim.DefaultConfig()
	dc := DefaultDCQCNConfig()
	// Force queue buildup with the DCQCN scheme on a 2:1 dumbbell and a
	// tiny Kmin: marks must appear, and CNPs must slow the senders.
	dc.KminBytes = 20_000
	dc.KmaxBytes = 80_000
	sch := NewDCQCNScheme(dc)
	c := topo.MustChain(cfg, sch, topo.DefaultChainOpts(2))
	f0 := c.AddFlow(1, 0, 3_000_000, 0)
	f1 := c.AddFlow(2, 1, 3_000_000, 0)
	c.Net.RunUntil(500 * sim.Microsecond)

	r0 := f0.CC().RateBps()
	r1 := f1.CC().RateBps()
	if r0 >= gbps100 && r1 >= gbps100 {
		t.Fatalf("DCQCN never slowed down: %d / %d", r0, r1)
	}
}

func TestRoCCSenderObeysAdvertisement(t *testing.T) {
	_, f := newTestFlow(t, NewRoCCScheme(DefaultRoCCConfig()))
	r := f.CC().(*RoCCSender)
	r.OnAck(f, &packet.Packet{Type: packet.Ack, FairRateBps: 30e9}, 0)
	if r.RateBps() != 30e9 {
		t.Fatalf("rate = %d", r.RateBps())
	}
	// No advertisement: relax upward.
	r.OnAck(f, &packet.Packet{Type: packet.Ack}, 0)
	if r.RateBps() <= 30e9 {
		t.Fatal("rate did not relax upward")
	}
	// Advertisement above line rate clamps.
	r.OnAck(f, &packet.Packet{Type: packet.Ack, FairRateBps: 500e9}, 0)
	if r.RateBps() != gbps100 {
		t.Fatalf("rate = %d, want line", r.RateBps())
	}
}

func TestRoCCConvergesToFairShareEventually(t *testing.T) {
	// Two flows into one 100G bottleneck: within a few ms the PI controller
	// should bring the aggregate near the line rate with a bounded queue.
	cfg := netsim.DefaultConfig()
	sch := NewRoCCScheme(DefaultRoCCConfig())
	c := topo.MustChain(cfg, sch, topo.DefaultChainOpts(2))
	f0 := c.AddFlow(1, 0, 1<<30, 0)
	f1 := c.AddFlow(2, 1, 1<<30, 0)
	c.Net.RunUntil(5 * sim.Millisecond)

	r0, r1 := float64(f0.CC().RateBps()), float64(f1.CC().RateBps())
	sum := r0 + r1
	if sum < 0.5*float64(gbps100) || sum > 1.4*float64(gbps100) {
		t.Fatalf("aggregate rate %.1fG far from line rate", sum/1e9)
	}
	// Fairness between the two flows (PI advertises one rate to both).
	if ratio := r0 / r1; ratio < 0.5 || ratio > 2 {
		t.Fatalf("unfair split: %.1fG vs %.1fG", r0/1e9, r1/1e9)
	}
}

func TestHPCCClosedLoopBoundsQueue(t *testing.T) {
	// The marquee sanity check: HPCC on the paper's dumbbell keeps the
	// bottleneck queue around/below ~BDP rather than at the PFC threshold.
	cfg := netsim.DefaultConfig()
	sch := NewHPCCScheme(DefaultHPCCConfig())
	c := topo.MustChain(cfg, sch, topo.DefaultChainOpts(2))
	c.AddFlow(1, 0, 1<<30, 0)
	c.AddFlow(2, 1, 1<<30, 300*sim.Microsecond)

	maxQ := int64(0)
	stop := c.Net.Eng.Ticker(sim.Microsecond, func() {
		if q := c.BottleneckPort().QueueBytes(); q > maxQ {
			maxQ = q
		}
	})
	defer stop()
	c.Net.RunUntil(1200 * sim.Microsecond)

	if maxQ == 0 {
		t.Fatal("no queue ever built — setup broken")
	}
	if maxQ > 450_000 {
		t.Fatalf("HPCC queue peaked at %dKB — congestion control ineffective", maxQ/1000)
	}
	if c.Net.PauseFrames.N > 4 {
		t.Fatalf("HPCC triggered %d pauses", c.Net.PauseFrames.N)
	}
}

func TestHPCCFairConvergence(t *testing.T) {
	cfg := netsim.DefaultConfig()
	sch := NewHPCCScheme(DefaultHPCCConfig())
	c := topo.MustChain(cfg, sch, topo.DefaultChainOpts(2))
	f0 := c.AddFlow(1, 0, 1<<30, 0)
	f1 := c.AddFlow(2, 1, 1<<30, 0)
	c.Net.RunUntil(3 * sim.Millisecond)
	r0, r1 := float64(f0.CC().RateBps()), float64(f1.CC().RateBps())
	if r0/r1 < 0.6 || r0/r1 > 1.7 {
		t.Fatalf("HPCC unfair: %.1fG vs %.1fG", r0/1e9, r1/1e9)
	}
	sum := r0 + r1
	if sum < 0.7*float64(gbps100) || sum > 1.2*float64(gbps100) {
		t.Fatalf("aggregate %.1fG not near line rate", sum/1e9)
	}
}
