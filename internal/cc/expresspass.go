package cc

import (
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// ExpressPass (Cho et al.) is the paper's example of receiver-driven
// notification (§6): the receiver paces *credit* packets to each sender;
// every credit grants one data segment, so the data arrival rate at the
// receiver can never exceed the credit rate and last-hop queues stay
// near-empty by construction. The paper notes its practical weakness —
// "managing distinct timers on RDMA NICs to orchestrate credit pacing for
// each flow poses challenges" — which is visible here as one engine timer
// per active inbound flow.
//
// This is an extension baseline; it is not part of the paper's evaluation.
type ExpressPassConfig struct {
	// CreditRateFraction is the fraction of the access link granted via
	// credits (ExpressPass leaves headroom so data never queues; the
	// original uses ~84.7%% to absorb credit jitter).
	CreditRateFraction float64
	// SegmentBytes is the data payload granted per credit (one MTU
	// payload).
	SegmentBytes int
	// MaxOutstandingSegs bounds unspent credits per flow, so a stalled
	// sender does not accumulate an unbounded burst allowance.
	MaxOutstandingSegs int64
}

// DefaultExpressPassConfig returns the published pacing headroom.
func DefaultExpressPassConfig() ExpressPassConfig {
	return ExpressPassConfig{
		CreditRateFraction: 0.847,
		SegmentBytes:       1452,
		MaxOutstandingSegs: 8,
	}
}

// ExpressPassSender transmits only against received credits.
type ExpressPassSender struct {
	b int64
	f *netsim.Flow
}

// NewExpressPassSender builds the per-flow sender state.
func NewExpressPassSender(f *netsim.Flow) *ExpressPassSender {
	return &ExpressPassSender{b: f.SrcHost.Port().RateBps(), f: f}
}

// Name implements netsim.SenderCC.
func (e *ExpressPassSender) Name() string { return "ExpressPass" }

// WindowBytes implements netsim.SenderCC: the window is exactly the
// credited-but-unsent byte allowance.
func (e *ExpressPassSender) WindowBytes() int64 {
	w := e.f.Credited() - e.f.SndUna()
	if w < 0 {
		return 0
	}
	return w
}

// RateBps implements netsim.SenderCC: credit arrival does the pacing, so
// granted segments leave at line rate.
func (e *ExpressPassSender) RateBps() int64 { return e.b }

// OnAck implements netsim.SenderCC (credit schemes ignore ACK telemetry).
func (e *ExpressPassSender) OnAck(*netsim.Flow, *packet.Packet, sim.Time) {}

// OnCnp implements netsim.SenderCC.
func (e *ExpressPassSender) OnCnp(*netsim.Flow, sim.Time) {}

// OnCredit implements netsim.CreditSink (the grant is already folded into
// Flow.Credited by the host; nothing extra to track).
func (e *ExpressPassSender) OnCredit(*netsim.Flow, int64, sim.Time) {}

// expressPassReceiver runs one credit pacer per active inbound flow and
// splits the credited rate evenly across them.
type expressPassReceiver struct {
	cfg    ExpressPassConfig
	cancel map[uint64]func()
}

func newExpressPassReceiver(cfg ExpressPassConfig) *expressPassReceiver {
	return &expressPassReceiver{cfg: cfg, cancel: make(map[uint64]func())}
}

// FillAck implements netsim.ReceiverCC (plain cumulative ACKs).
func (r *expressPassReceiver) FillAck(ack, data *packet.Packet, _ *netsim.Host) {}

// WantCnp implements netsim.ReceiverCC.
func (r *expressPassReceiver) WantCnp(*packet.Packet, *netsim.Host, sim.Time) bool {
	return false
}

// OnInboundStart implements netsim.CreditPacer: arm this flow's credit
// timer. The inter-credit gap is recomputed every tick from the live
// active-inbound count, so shares stay fair as flows come and go.
func (r *expressPassReceiver) OnInboundStart(f *netsim.Flow, h *netsim.Host) {
	eng := h.Engine()
	seg := r.cfg.SegmentBytes
	wire := seg + packet.DataHeaderBytes
	creditRate := float64(h.Port().RateBps()) * r.cfg.CreditRateFraction

	var granted int64
	stopped := false
	var tick func()
	schedule := func() {
		n := h.ActiveInbound()
		if n < 1 {
			n = 1
		}
		gap := sim.TxTime(wire, int64(creditRate)) * sim.Time(n)
		eng.After(gap, tick)
	}
	tick = func() {
		if stopped || f.Done() {
			return
		}
		// Stop granting once the whole transfer is credited, and bound the
		// unspent allowance so a slow sender cannot hoard a burst.
		if granted < f.SizeBytes &&
			granted-f.SndUna() < r.cfg.MaxOutstandingSegs*int64(seg) {
			grant := int64(seg)
			if rem := f.SizeBytes - granted; rem < grant {
				grant = rem
			}
			granted += grant
			h.SendCredit(f, int(grant))
		}
		schedule()
	}
	r.cancel[f.ID] = func() { stopped = true }
	schedule()
}

// OnInboundDone implements netsim.CreditPacer.
func (r *expressPassReceiver) OnInboundDone(f *netsim.Flow, _ *netsim.Host) {
	if stop, ok := r.cancel[f.ID]; ok {
		stop()
		delete(r.cancel, f.ID)
	}
}

// NewExpressPassScheme assembles the receiver-driven extension baseline.
// Note the scheme holds per-network receiver state, so a fresh Scheme is
// required per Network (the registry constructs one per run).
func NewExpressPassScheme(cfg ExpressPassConfig) netsim.Scheme {
	return netsim.Scheme{
		Name: "ExpressPass",
		NewSenderCC: func(f *netsim.Flow) netsim.SenderCC {
			return NewExpressPassSender(f)
		},
		Receiver: newExpressPassReceiver(cfg),
	}
}
