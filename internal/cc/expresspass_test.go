package cc

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topo"
)

func TestExpressPassSingleFlowCompletes(t *testing.T) {
	c := topo.MustChain(netsim.DefaultConfig(),
		NewExpressPassScheme(DefaultExpressPassConfig()), topo.DefaultChainOpts(1))
	f := c.AddFlow(1, 0, 500_000, 0)
	c.Net.RunUntil(10 * sim.Millisecond)
	if !f.Done() {
		t.Fatalf("credit flow incomplete: credited=%d rcvNxt=%d", f.Credited(), f.RcvNxt())
	}
	// Goodput is credit-bounded: the transfer cannot beat the credit rate.
	minTime := sim.TxTime(500_000, int64(100e9*0.847))
	if fct := f.FinishedAt - f.Start; fct < minTime {
		t.Fatalf("FCT %v faster than the credit rate allows (%v)", fct, minTime)
	}
}

func TestExpressPassSenderIsCreditGated(t *testing.T) {
	// Without credits nothing may leave. Build a pair whose receiver never
	// grants: use the sender/receiver pieces but a plain receiver.
	sch := NewExpressPassScheme(DefaultExpressPassConfig())
	sch.Receiver = hpccReceiver{} // no CreditPacer: no credits ever
	n := netsim.MustNew(netsim.DefaultConfig(), sch)
	h0, h1 := n.NewHost(), n.NewHost()
	netsim.Connect(h0.Port(), h1.Port(), 100e9, 1500*sim.Nanosecond)
	f := n.AddFlow(1, h0, h1, 10_000, 0)
	n.RunUntil(sim.Millisecond)
	if f.SndNxt() != 0 {
		t.Fatalf("sender transmitted %d bytes without credits", f.SndNxt())
	}
}

func TestExpressPassLastHopStaysShallow(t *testing.T) {
	// The selling point: an 8:1 incast at the last hop where the receiver
	// paces all senders — the last-hop data queue stays within a few
	// segments, with zero PFC pauses.
	opts := topo.DefaultChainOpts(8)
	for i := range opts.SenderAttach {
		opts.SenderAttach[i] = opts.Switches - 1
	}
	c := topo.MustChain(netsim.DefaultConfig(),
		NewExpressPassScheme(DefaultExpressPassConfig()), opts)
	var flows []*netsim.Flow
	for i := 0; i < 8; i++ {
		flows = append(flows, c.AddFlow(uint64(i+1), i, 256<<10, 0))
	}
	port := c.HopPort(opts.Switches - 1)
	var maxQ int64
	stop := c.Net.Eng.Ticker(2*sim.Microsecond, func() {
		if q := port.QueueBytes(); q > maxQ {
			maxQ = q
		}
	})
	defer stop()
	if !c.Net.RunToCompletion(100 * sim.Millisecond) {
		t.Fatal("incast incomplete")
	}
	// Credit pacing bounds the queue to ~MaxOutstandingSegs per flow worst
	// case; in practice far less. Assert well under one BDP (163KB).
	if maxQ > 120_000 {
		t.Fatalf("credit-paced incast queue peaked at %dKB", maxQ>>10)
	}
	if c.Net.PauseFrames.N != 0 {
		t.Fatalf("pauses under credit pacing: %d", c.Net.PauseFrames.N)
	}
}

func TestExpressPassFairAcrossFlows(t *testing.T) {
	// Two concurrent inbound flows split the credit rate evenly: their
	// completions of equal sizes should land close together.
	opts := topo.DefaultChainOpts(2)
	c := topo.MustChain(netsim.DefaultConfig(),
		NewExpressPassScheme(DefaultExpressPassConfig()), opts)
	f0 := c.AddFlow(1, 0, 300_000, 0)
	f1 := c.AddFlow(2, 1, 300_000, 0)
	if !c.Net.RunToCompletion(100 * sim.Millisecond) {
		t.Fatal("flows incomplete")
	}
	d0 := f0.FinishedAt - f0.Start
	d1 := f1.FinishedAt - f1.Start
	ratio := float64(d0) / float64(d1)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("unfair credit split: %v vs %v", d0, d1)
	}
}

func TestExpressPassCreditAccounting(t *testing.T) {
	c := topo.MustChain(netsim.DefaultConfig(),
		NewExpressPassScheme(DefaultExpressPassConfig()), topo.DefaultChainOpts(1))
	f := c.AddFlow(1, 0, 100_000, 0)
	c.Net.RunUntil(20 * sim.Millisecond)
	if !f.Done() {
		t.Fatal("incomplete")
	}
	// Credits granted are bounded by size + one segment of slack.
	if f.Credited() > f.SizeBytes+1452 {
		t.Fatalf("over-granted: %d for %d", f.Credited(), f.SizeBytes)
	}
	if f.Credited() < f.SizeBytes {
		t.Fatalf("under-granted: %d for %d", f.Credited(), f.SizeBytes)
	}
}
