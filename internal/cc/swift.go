package cc

import (
	"math"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Swift (Kumar et al., SIGCOMM'20) is Google's delay-target congestion
// control: a congestion window driven by the gap between measured RTT and a
// topology-scaled target delay, with multiplicative decrease bounded per
// RTT. Like Timely it is cited in the paper's §6 ("end-to-end notification
// ... delayed reaction to congestion") but not evaluated; it is provided as
// an extension baseline on the same substrate.
type SwiftConfig struct {
	// BaseTargetDelay is the fixed component of the target.
	BaseTargetDelay sim.Time
	// PerHopDelay scales the target with path length (hop count is taken
	// from the fabric's base RTT when INT is absent, so this implementation
	// uses a flat fabric component).
	PerHopDelay sim.Time
	// AIBytes is the additive increase per RTT when below target.
	AIBytes float64
	// Beta is the multiplicative-decrease gain.
	Beta float64
	// MaxMdf bounds a single multiplicative decrease.
	MaxMdf float64
	// FsRange enables flow-scaling: the target grows by up to this many
	// microseconds divided by sqrt(cwnd in MTUs), letting many small
	// windows coexist.
	FsRange sim.Time
	// MinWndBytes / MaxWndFactor bound the window ([min, factor*BDP]).
	MinWndBytes  float64
	MaxWndFactor float64
}

// DefaultSwiftConfig returns constants scaled to the 100G/13us fabric.
func DefaultSwiftConfig() SwiftConfig {
	return SwiftConfig{
		BaseTargetDelay: 25 * sim.Microsecond,
		PerHopDelay:     2 * sim.Microsecond,
		AIBytes:         3036, // 2 MTU per RTT
		Beta:            0.8,
		MaxMdf:          0.5,
		FsRange:         30 * sim.Microsecond,
		MinWndBytes:     1518,
		MaxWndFactor:    1.2,
	}
}

// Swift is the per-flow RP state.
type Swift struct {
	cfg SwiftConfig
	b   int64
	t   sim.Time // base RTT

	wnd     float64
	lastCut sim.Time
	rate    int64
}

// NewSwift builds RP state for one flow, starting at one BDP.
func NewSwift(cfg SwiftConfig, f *netsim.Flow) *Swift {
	b := f.SrcHost.Port().RateBps()
	t := f.SrcHost.Net().Cfg.BaseRTT
	s := &Swift{cfg: cfg, b: b, t: t}
	s.wnd = float64(b) / 8 * t.Seconds()
	s.rate = b
	return s
}

// Name implements netsim.SenderCC.
func (s *Swift) Name() string { return "Swift" }

// WindowBytes implements netsim.SenderCC.
func (s *Swift) WindowBytes() int64 { return int64(s.wnd) }

// RateBps implements netsim.SenderCC.
func (s *Swift) RateBps() int64 { return s.rate }

// OnCnp implements netsim.SenderCC (unused).
func (s *Swift) OnCnp(*netsim.Flow, sim.Time) {}

// swiftTelemetryVars is returned by TelemetryVars (stable, never mutated).
var swiftTelemetryVars = []string{"target_delay_us", "wnd_bytes"}

// TelemetryVars implements netsim.Observable.
func (s *Swift) TelemetryVars() []string { return swiftTelemetryVars }

// TelemetrySample implements netsim.Observable: the flow-scaled delay
// target and the congestion window, Swift's two decision variables.
func (s *Swift) TelemetrySample(out []float64) {
	out[0] = s.target().Micros()
	out[1] = s.wnd
}

// target computes the flow-scaled target delay.
func (s *Swift) target() sim.Time {
	t := s.cfg.BaseTargetDelay + s.cfg.PerHopDelay
	if s.cfg.FsRange > 0 {
		mtus := s.wnd / 1518
		if mtus < 1 {
			mtus = 1
		}
		fs := float64(s.cfg.FsRange) / math.Sqrt(mtus)
		max := float64(s.cfg.FsRange)
		if fs > max {
			fs = max
		}
		t += sim.Time(fs)
	}
	return t
}

// OnAck implements netsim.SenderCC: Swift's per-ACK window update.
func (s *Swift) OnAck(f *netsim.Flow, ack *packet.Packet, now sim.Time) {
	if ack.EchoTS == 0 {
		return
	}
	rtt := now - ack.EchoTS
	if rtt <= 0 {
		return
	}
	target := s.target()
	if rtt < target {
		// Additive increase, amortized per ACK over the window.
		if s.wnd > 0 {
			s.wnd += s.cfg.AIBytes * 1452 / s.wnd
		}
	} else if now-s.lastCut >= s.t {
		// At most one multiplicative decrease per RTT.
		mdf := s.cfg.Beta * float64(rtt-target) / float64(rtt)
		if mdf > s.cfg.MaxMdf {
			mdf = s.cfg.MaxMdf
		}
		s.wnd *= 1 - mdf
		s.lastCut = now
	}
	maxW := float64(s.b) / 8 * s.t.Seconds() * s.cfg.MaxWndFactor
	if s.wnd < s.cfg.MinWndBytes {
		s.wnd = s.cfg.MinWndBytes
	}
	if s.wnd > maxW {
		s.wnd = maxW
	}
	s.rate = int64(s.wnd * 8 / s.t.Seconds())
	if s.rate > s.b {
		s.rate = s.b
	}
}

// NewSwiftScheme assembles the Swift extension baseline (reuses Timely's
// timestamp-echo receiver; switches need no hook).
func NewSwiftScheme(cfg SwiftConfig) netsim.Scheme {
	return netsim.Scheme{
		Name: "Swift",
		NewSenderCC: func(f *netsim.Flow) netsim.SenderCC {
			return NewSwift(cfg, f)
		},
		Receiver: timelyReceiver{},
	}
}
