package cc

import (
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// DCQCNConfig holds the Zhu et al. parameters, defaulted to the values the
// paper calls "the default values recommended in research [25, 31]".
type DCQCNConfig struct {
	// G is the EWMA gain g for alpha (1/256).
	G float64
	// AlphaTimer is the alpha-recovery period with no CNPs (55 us).
	AlphaTimer sim.Time
	// IncTimer is the rate-increase timer period (55 us).
	IncTimer sim.Time
	// ByteCounter triggers a rate-increase event every this many sent bytes
	// (10 MB).
	ByteCounter int64
	// F is the fast-recovery stage count (5).
	F int
	// RateAIBps is the additive-increase step (40 Mbps).
	RateAIBps int64
	// RateHAIBps is the hyper-increase step (400 Mbps).
	RateHAIBps int64
	// MinRateBps floors the sending rate.
	MinRateBps int64
	// CnpInterval is the receiver-side minimum CNP spacing per flow (50 us).
	CnpInterval sim.Time
	// KminBytes/KmaxBytes/Pmax parameterize WRED ECN marking at switches,
	// at 100 Gbps reference; they scale linearly with port rate.
	KminBytes int64
	KmaxBytes int64
	Pmax      float64
}

// DefaultDCQCNConfig returns the published defaults (marking thresholds per
// the HPCC evaluation's 100 Gbps settings).
func DefaultDCQCNConfig() DCQCNConfig {
	return DCQCNConfig{
		G:           1.0 / 256,
		AlphaTimer:  55 * sim.Microsecond,
		IncTimer:    55 * sim.Microsecond,
		ByteCounter: 10 << 20,
		F:           5,
		RateAIBps:   40e6,
		RateHAIBps:  400e6,
		MinRateBps:  10e6,
		CnpInterval: 50 * sim.Microsecond,
		KminBytes:   100 << 10,
		KmaxBytes:   400 << 10,
		Pmax:        0.2,
	}
}

// DCQCN is the per-flow Reaction Point: rate-based MIMD with alpha state.
// It is deliberately sluggish at 100G+ — that sluggishness (one RTT to get
// the first CNP, 55 us timers, 40 Mbps additive steps) is exactly what
// Figs 1, 3, 9, 14 and 15 of the paper exhibit.
type DCQCN struct {
	cfg  DCQCNConfig
	eng  *sim.Engine
	flow *netsim.Flow
	b    int64 // line rate

	rc, rt     float64 // current and target rates, bps
	alpha      float64
	byteStage  int
	timeStage  int
	acked      int64 // bytes acknowledged since the last byte-counter event
	lastAckSeq int64

	alphaEv sim.Event
	incEv   sim.Event
	done    bool
}

// NewDCQCN builds RP state for one flow, starting at line rate.
func NewDCQCN(cfg DCQCNConfig, f *netsim.Flow) *DCQCN {
	d := &DCQCN{
		cfg:   cfg,
		eng:   f.SrcHost.Engine(),
		flow:  f,
		b:     f.SrcHost.Port().RateBps(),
		alpha: 1,
	}
	d.rc = float64(d.b)
	d.rt = d.rc
	return d
}

// Name implements netsim.SenderCC.
func (d *DCQCN) Name() string { return "DCQCN" }

// WindowBytes implements netsim.SenderCC: DCQCN is purely rate-based.
func (d *DCQCN) WindowBytes() int64 { return 1 << 40 }

// RateBps implements netsim.SenderCC.
func (d *DCQCN) RateBps() int64 { return int64(d.rc) }

// dcqcnTelemetryVars is returned by TelemetryVars (stable, never mutated).
var dcqcnTelemetryVars = []string{"alpha", "target_rate_bps"}

// TelemetryVars implements netsim.Observable.
func (d *DCQCN) TelemetryVars() []string { return dcqcnTelemetryVars }

// TelemetrySample implements netsim.Observable: the RP's alpha (congestion
// estimate) and target rate rt, the two internals Fig 1's analysis turns on.
func (d *DCQCN) TelemetrySample(out []float64) {
	out[0] = d.alpha
	out[1] = d.rt
}

// OnAck implements netsim.SenderCC: drives the byte counter. The counter
// tracks transmitted bytes; cumulative-ACK progress is the RP's proxy for
// it (identical in steady state).
func (d *DCQCN) OnAck(f *netsim.Flow, ack *packet.Packet, now sim.Time) {
	if f.Finished() {
		d.stopTimers()
		return
	}
	if ack.Seq > d.lastAckSeq {
		d.acked += ack.Seq - d.lastAckSeq
		d.lastAckSeq = ack.Seq
	}
	if d.acked >= d.cfg.ByteCounter {
		d.acked = 0
		d.byteStage++
		d.increase()
	}
}

// OnCnp implements netsim.SenderCC: the CNP reaction of DCQCN —
// rt <- rc; rc <- rc(1 - alpha/2); alpha <- (1-g)alpha + g; stages reset.
func (d *DCQCN) OnCnp(f *netsim.Flow, now sim.Time) {
	if f.Finished() {
		d.stopTimers()
		return
	}
	d.rt = d.rc
	d.rc = d.rc * (1 - d.alpha/2)
	if d.rc < float64(d.cfg.MinRateBps) {
		d.rc = float64(d.cfg.MinRateBps)
	}
	d.alpha = (1-d.cfg.G)*d.alpha + d.cfg.G
	d.byteStage, d.timeStage = 0, 0
	d.acked = 0
	d.armAlphaTimer()
	d.armIncTimer()
}

// dcqcnAlphaFired is the alpha-decay callback (arg-passing path: the timer
// re-arms every period without allocating a closure).
func dcqcnAlphaFired(v any) {
	d := v.(*DCQCN)
	d.alphaEv = sim.Event{}
	if d.done || d.flow.Finished() {
		return
	}
	d.alpha *= 1 - d.cfg.G
	d.armAlphaTimer()
}

// armAlphaTimer restarts alpha decay: with no CNP for AlphaTimer,
// alpha <- (1-g)alpha, repeatedly.
func (d *DCQCN) armAlphaTimer() {
	d.eng.Cancel(d.alphaEv)
	d.alphaEv = d.eng.AfterArg(d.cfg.AlphaTimer, dcqcnAlphaFired, d)
}

// dcqcnIncFired is the periodic rate-increase callback.
func dcqcnIncFired(v any) {
	d := v.(*DCQCN)
	d.incEv = sim.Event{}
	if d.done || d.flow.Finished() {
		return
	}
	d.timeStage++
	d.increase()
	d.armIncTimer()
}

// armIncTimer restarts the periodic rate-increase timer.
func (d *DCQCN) armIncTimer() {
	d.eng.Cancel(d.incEv)
	d.incEv = d.eng.AfterArg(d.cfg.IncTimer, dcqcnIncFired, d)
}

// increase applies one rate-increase event: fast recovery while both stage
// counters are below F, hyper increase when both exceed it, additive
// otherwise.
func (d *DCQCN) increase() {
	switch {
	case d.byteStage < d.cfg.F && d.timeStage < d.cfg.F:
		// Fast recovery: rc approaches rt.
	case d.byteStage >= d.cfg.F && d.timeStage >= d.cfg.F:
		d.rt += float64(d.cfg.RateHAIBps)
	default:
		d.rt += float64(d.cfg.RateAIBps)
	}
	if d.rt > float64(d.b) {
		d.rt = float64(d.b)
	}
	d.rc = (d.rc + d.rt) / 2
}

func (d *DCQCN) stopTimers() {
	d.done = true
	d.eng.Cancel(d.alphaEv)
	d.alphaEv = sim.Event{}
	d.eng.Cancel(d.incEv)
	d.incEv = sim.Event{}
}

// dcqcnReceiver emits paced CNPs for ECN-marked arrivals; ACKs carry no INT.
type dcqcnReceiver struct {
	interval sim.Time
}

// FillAck implements netsim.ReceiverCC: DCQCN ACKs are plain.
func (dcqcnReceiver) FillAck(ack, data *packet.Packet, _ *netsim.Host) {
	ack.AckedECN = data.ECN
}

// WantCnp implements netsim.ReceiverCC: at most one CNP per flow per
// interval, matching NIC behaviour.
func (r dcqcnReceiver) WantCnp(data *packet.Packet, h *netsim.Host, now sim.Time) bool {
	f := h.InboundFlow(data.FlowID)
	if f == nil {
		return false
	}
	if f.CnpLastAt != 0 && now-f.CnpLastAt < r.interval {
		return false
	}
	f.CnpLastAt = now
	return true
}

// wredHook is the switch-side ECN marker: probabilistic marking between
// Kmin and Kmax on instantaneous egress queue length, thresholds scaled
// with port rate.
type wredHook struct {
	cfg DCQCNConfig
	sw  *netsim.Switch
	rng *sim.RNG
}

// OnEnqueue implements netsim.SwitchHook.
func (w *wredHook) OnEnqueue(sw *netsim.Switch, pkt *packet.Packet, outPort int) {
	if pkt.Type != packet.Data {
		return
	}
	port := sw.PortAt(outPort)
	scale := float64(port.RateBps()) / 100e9
	kmin := float64(w.cfg.KminBytes) * scale
	kmax := float64(w.cfg.KmaxBytes) * scale
	q := float64(port.QueueBytes())
	switch {
	case q <= kmin:
		return
	case q >= kmax:
		pkt.ECN = true
	default:
		p := w.cfg.Pmax * (q - kmin) / (kmax - kmin)
		if w.rng.Float64() < p {
			pkt.ECN = true
		}
	}
}

// OnDequeue implements netsim.SwitchHook.
func (w *wredHook) OnDequeue(*netsim.Switch, *packet.Packet, int) {}

// NewDCQCNScheme assembles the complete DCQCN baseline.
func NewDCQCNScheme(cfg DCQCNConfig) netsim.Scheme {
	return netsim.Scheme{
		Name: "DCQCN",
		NewSenderCC: func(f *netsim.Flow) netsim.SenderCC {
			d := NewDCQCN(cfg, f)
			// Timers run from flow start; the engine is positioned before
			// Start when flows are added, so arm lazily at first event.
			f.SrcHost.Engine().Schedule(f.Start, func() {
				d.armAlphaTimer()
				d.armIncTimer()
			})
			return d
		},
		Receiver: dcqcnReceiver{interval: cfg.CnpInterval},
		NewSwitchHook: func(sw *netsim.Switch) netsim.SwitchHook {
			return &wredHook{cfg: cfg, sw: sw, rng: sw.Net().Rand.Fork()}
		},
	}
}
