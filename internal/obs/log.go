package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// Log modes accepted by the CLI's -log flag.
const (
	LogText = "text"
	LogJSON = "json"
	LogOff  = "off"
)

// ParseLogMode normalizes a -log flag value, rejecting anything but
// text|json|off with an error suitable for a usage message.
func ParseLogMode(s string) (string, error) {
	switch s {
	case LogText, LogJSON, LogOff:
		return s, nil
	case "":
		return LogText, nil
	default:
		return "", fmt.Errorf("obs: unknown log mode %q (want text, json, or off)", s)
	}
}

// discardHandler drops every record without formatting it. (slog gained a
// built-in DiscardHandler after the Go version this module pins.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// NewLogger builds the CLI's structured logger: text or JSON records on w,
// or a logger that discards everything for "off". The mode goes through
// ParseLogMode, so a malformed flag value errors instead of silently
// defaulting.
func NewLogger(mode string, w io.Writer) (*slog.Logger, error) {
	m, err := ParseLogMode(mode)
	if err != nil {
		return nil, err
	}
	switch m {
	case LogJSON:
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	case LogOff:
		return slog.New(discardHandler{}), nil
	default:
		return slog.New(slog.NewTextHandler(w, nil)), nil
	}
}
