package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime/metrics"
	"sync"
	"time"
)

// Span is one timed region of sweep execution. A sweep is a root span;
// each job is a child carrying its spec hash/backend/seed; phases
// (cache-lookup, simulate, cache-store, export) are grandchildren. CPUNs
// and AllocBytes are process-wide deltas across the span — under a
// parallel sweep concurrent jobs inflate each other's numbers, so they
// are attribution hints, not exact costs (the same caveat exp.PerfStats
// documents for its wall/alloc counters).
type Span struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	// StartUnixNs is the wall-clock start; DurNs the wall duration.
	StartUnixNs int64 `json:"start_unix_ns"`
	DurNs       int64 `json:"dur_ns"`
	// CPUNs is the process user+system CPU consumed while the span was
	// open (0 where the platform has no rusage).
	CPUNs int64 `json:"cpu_ns,omitempty"`
	// AllocBytes is the process heap-allocation byte delta across the span.
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
	// Attrs are free-form labels: hash, backend, seed, outcome.
	Attrs map[string]string `json:"attrs,omitempty"`

	tracer *Tracer
	start  time.Time
	cpu0   int64
	alloc0 uint64
}

// Tracer collects finished spans and tracks open ones. All methods are
// safe for concurrent use and no-ops on a nil *Tracer (Start then returns
// a nil *Span, whose methods are also no-ops), so span instrumentation
// costs one pointer test when tracing is off.
type Tracer struct {
	mu     sync.Mutex
	nextID uint64
	done   []Span
	open   map[uint64]*Span
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{open: map[uint64]*Span{}}
}

// allocBytesNow reads the cumulative process heap-allocation bytes without
// stopping the world (same runtime/metrics channel exp.PerfStats uses).
func allocBytesNow() uint64 {
	s := [1]metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(s[:])
	return s[0].Value.Uint64()
}

// Start opens a span under parent (nil parent = root). Returns nil on a
// nil tracer.
func (t *Tracer) Start(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		Name:        name,
		StartUnixNs: time.Now().UnixNano(),
		tracer:      t,
		start:       time.Now(),
		cpu0:        processCPUNs(),
		alloc0:      allocBytesNow(),
	}
	if parent != nil {
		s.Parent = parent.ID
	}
	t.mu.Lock()
	t.nextID++
	s.ID = t.nextID
	t.open[s.ID] = s
	t.mu.Unlock()
	return s
}

// SetAttr labels the span (no-op on nil).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = map[string]string{}
	}
	s.Attrs[key] = value
	s.tracer.mu.Unlock()
}

// End closes the span, folding in wall/CPU/alloc deltas, and files it with
// the tracer (no-op on nil; ending twice files once).
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, isOpen := t.open[s.ID]; !isOpen {
		return
	}
	delete(t.open, s.ID)
	s.DurNs = time.Since(s.start).Nanoseconds()
	if cpu := processCPUNs(); cpu > 0 && s.cpu0 > 0 {
		s.CPUNs = cpu - s.cpu0
	}
	s.AllocBytes = int64(allocBytesNow() - s.alloc0)
	t.done = append(t.done, *s)
}

// Spans returns a copy of the finished spans in completion order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.done))
	copy(out, t.done)
	return out
}

// ActiveSpan is an open span's live state, surfaced by /progress so a
// stalled sweep shows which jobs it is stuck in.
type ActiveSpan struct {
	ID        uint64            `json:"id"`
	Parent    uint64            `json:"parent,omitempty"`
	Name      string            `json:"name"`
	ElapsedNs int64             `json:"elapsed_ns"`
	Attrs     map[string]string `json:"attrs,omitempty"`
}

// Active returns the currently open spans, oldest first.
func (t *Tracer) Active() []ActiveSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ActiveSpan, 0, len(t.open))
	for _, s := range t.open {
		a := ActiveSpan{ID: s.ID, Parent: s.Parent, Name: s.Name,
			ElapsedNs: time.Since(s.start).Nanoseconds()}
		if len(s.Attrs) > 0 {
			a.Attrs = make(map[string]string, len(s.Attrs))
			for k, v := range s.Attrs {
				a.Attrs[k] = v
			}
		}
		out = append(out, a)
	}
	// Map iteration is unordered; oldest-first (smallest ID) reads best.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// WriteJSONL streams the finished spans one JSON object per line — the
// on-disk format `fnccbench sweep -spans` exports next to the sweep table.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range t.Spans() {
		if err := enc.Encode(s); err != nil {
			return fmt.Errorf("obs: span encode: %w", err)
		}
	}
	return bw.Flush()
}

// ReadSpansJSONL parses a JSONL span stream (blank lines skipped).
func ReadSpansJSONL(r io.Reader) ([]Span, error) {
	var spans []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(b, &s); err != nil {
			return nil, fmt.Errorf("obs: spans line %d: %w", line, err)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: spans read: %w", err)
	}
	return spans, nil
}

// chromeEvent is one Chrome trace-event ("X" complete event). Perfetto and
// chrome://tracing both load the JSON-array format directly.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TsUs float64           `json:"ts"`
	Durs float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace converts spans to the Chrome trace-event JSON array.
// Each root span (and the job tree under it) gets its own track: the
// "thread" id is the span's root ancestor, so parallel jobs render as
// parallel rows instead of one overlapping smear.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	// Resolve each span's root ancestor for track assignment.
	parent := make(map[uint64]uint64, len(spans))
	for _, s := range spans {
		parent[s.ID] = s.Parent
	}
	rootOf := func(id uint64) uint64 {
		for hops := 0; hops < len(spans); hops++ {
			p := parent[id]
			if p == 0 {
				return id
			}
			id = p
		}
		return id
	}
	// Jobs are the tracks: a span whose parent is a root (or itself a
	// root) anchors a track; phase spans inherit the enclosing job's.
	track := make(map[uint64]uint64, len(spans))
	var assign func(id uint64) uint64
	assign = func(id uint64) uint64 {
		if tid, ok := track[id]; ok {
			return tid
		}
		p := parent[id]
		var tid uint64
		switch {
		case p == 0: // root span: its own track
			tid = id
		case parent[p] == 0: // job span directly under a root
			tid = id
		default:
			tid = assign(p)
		}
		track[id] = tid
		return tid
	}
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		args := s.Attrs
		if s.CPUNs > 0 || s.AllocBytes != 0 {
			args = make(map[string]string, len(s.Attrs)+2)
			for k, v := range s.Attrs {
				args[k] = v
			}
			args["cpu_ns"] = fmt.Sprintf("%d", s.CPUNs)
			args["alloc_bytes"] = fmt.Sprintf("%d", s.AllocBytes)
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  "sweep",
			Ph:   "X",
			TsUs: float64(s.StartUnixNs) / 1e3,
			Durs: float64(s.DurNs) / 1e3,
			PID:  int(rootOf(s.ID)),
			TID:  assign(s.ID),
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(events)
}
