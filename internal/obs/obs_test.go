package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs")
	c.Add(3)
	r.Counter("jobs").Add(2) // same instrument by name
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("rate")
	g.Set(1.5)
	g.Set(2.5)
	if got := r.Gauge("rate").Value(); got != 2.5 {
		t.Errorf("gauge = %g, want 2.5", got)
	}
	h := r.Histogram("wall")
	for _, v := range []float64{1, 2, 4, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if s.Counters["jobs"] != 5 || s.Gauges["rate"] != 2.5 {
		t.Errorf("snapshot mismatch: %+v", s)
	}
	hs := s.Histograms["wall"]
	if hs.Count != 4 || hs.Sum != 1007 || hs.Min != 1 || hs.Max != 1000 {
		t.Errorf("hist snapshot = %+v", hs)
	}
	if hs.P50 < 1 || hs.P50 > 4 {
		t.Errorf("p50 = %g, want within [1,4]", hs.P50)
	}
	if hs.P99 != 1000 { // quantile clamps to observed max
		t.Errorf("p99 = %g, want 1000", hs.P99)
	}
}

// TestNilSafety is the zero-cost-off contract: every method on nil
// top-level handles and nil instruments must be a no-op, never a panic.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	if s := r.Snapshot(); len(s.Counters) != 0 || s.Counters == nil {
		t.Errorf("nil registry snapshot = %+v", s)
	}
	if names := r.CounterNames(); names != nil {
		t.Errorf("nil registry counter names = %v", names)
	}
	var tr *Tracer
	sp := tr.Start("job", nil)
	if sp != nil {
		t.Fatalf("nil tracer Start = %v, want nil span", sp)
	}
	sp.SetAttr("k", "v")
	sp.End()
	if got := tr.Spans(); got != nil {
		t.Errorf("nil tracer spans = %v", got)
	}
	if got := tr.Active(); got != nil {
		t.Errorf("nil tracer active = %v", got)
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	h := &Histogram{}
	h.Observe(0)
	h.Observe(-5)
	h.Observe(math.NaN())
	h.Observe(math.MaxFloat64)
	s := h.snapshot()
	if s.Count != 4 {
		t.Errorf("count = %d, want 4", s.Count)
	}
	// No panic and quantiles stay finite-or-max is the contract here.
	if math.IsInf(s.P50, 0) {
		t.Errorf("p50 overflowed: %g", s.P50)
	}
}

func TestTracerSpans(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("sweep", nil)
	job := tr.Start("job", root)
	job.SetAttr("hash", "sc-123")
	phase := tr.Start("simulate", job)

	active := tr.Active()
	if len(active) != 3 {
		t.Fatalf("active = %d spans, want 3", len(active))
	}
	if active[0].Name != "sweep" || active[1].Attrs["hash"] != "sc-123" {
		t.Errorf("active order/attrs wrong: %+v", active)
	}

	phase.End()
	job.End()
	job.End() // double End files once
	root.End()
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("finished = %d spans, want 3", len(spans))
	}
	// Completion order: phase, job, root; parent links intact.
	if spans[0].Name != "simulate" || spans[0].Parent != job.ID {
		t.Errorf("phase span wrong: %+v", spans[0])
	}
	if spans[1].Parent != root.ID || spans[1].Attrs["hash"] != "sc-123" {
		t.Errorf("job span wrong: %+v", spans[1])
	}
	if spans[2].Parent != 0 {
		t.Errorf("root has parent %d", spans[2].Parent)
	}
	for _, s := range spans {
		if s.DurNs < 0 || s.StartUnixNs == 0 {
			t.Errorf("span %s timing not filled: %+v", s.Name, s)
		}
	}
	if len(tr.Active()) != 0 {
		t.Errorf("spans still open after End: %v", tr.Active())
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("sweep", nil)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s := tr.Start("job", root)
				s.SetAttr("k", "v")
				tr.Active()
				s.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := len(tr.Spans()); got != 16*50+1 {
		t.Errorf("spans = %d, want %d", got, 16*50+1)
	}
}

func TestSpansJSONLRoundTrip(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("sweep", nil)
	job := tr.Start("job", root)
	job.SetAttr("hash", "sc-1")
	job.End()
	root.End()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpansJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[0].Name != "job" || spans[0].Attrs["hash"] != "sc-1" {
		t.Fatalf("round trip lost data: %+v", spans)
	}
	if _, err := ReadSpansJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Error("malformed JSONL accepted")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("sweep", nil)
	j1 := tr.Start("job", root)
	p1 := tr.Start("simulate", j1)
	j2 := tr.Start("job", root)
	p1.End()
	j1.End()
	j2.End()
	root.End()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("converter output is not a JSON array: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4", len(events))
	}
	for _, e := range events {
		if e["ph"] != "X" {
			t.Errorf("event phase %v, want X", e["ph"])
		}
	}
	// The phase span must share its job's track; the two jobs must differ.
	var jobTids []float64
	var phaseTid float64
	for _, e := range events {
		switch e["name"] {
		case "job":
			jobTids = append(jobTids, e["tid"].(float64))
		case "simulate":
			phaseTid = e["tid"].(float64)
		}
	}
	if len(jobTids) != 2 || jobTids[0] == jobTids[1] {
		t.Errorf("jobs share a track: %v", jobTids)
	}
	if phaseTid != float64(j1.ID) {
		t.Errorf("phase tid = %g, want job track %d", phaseTid, j1.ID)
	}
}

func TestValidateAddr(t *testing.T) {
	good := []string{":8080", ":0", "127.0.0.1:9999", "localhost:8080", "[::1]:8080"}
	for _, a := range good {
		if err := ValidateAddr(a); err != nil {
			t.Errorf("ValidateAddr(%q) = %v, want nil", a, err)
		}
	}
	bad := []string{"", "8080", ":notaport", ":-1", ":70000", "host name:80", "a/b:80", "::1:8080x"}
	for _, a := range bad {
		if err := ValidateAddr(a); err == nil {
			t.Errorf("ValidateAddr(%q) accepted", a)
		}
	}
}

func TestParseLogMode(t *testing.T) {
	for _, m := range []string{"text", "json", "off"} {
		if got, err := ParseLogMode(m); err != nil || got != m {
			t.Errorf("ParseLogMode(%q) = %q, %v", m, got, err)
		}
	}
	if got, err := ParseLogMode(""); err != nil || got != LogText {
		t.Errorf("ParseLogMode(\"\") = %q, %v, want text default", got, err)
	}
	if _, err := ParseLogMode("verbose"); err == nil {
		t.Error("ParseLogMode accepted junk")
	}
}

func TestNewLoggerModes(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(LogJSON, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "k", 1)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil || rec["msg"] != "hello" {
		t.Errorf("json log record bad: %q err=%v", buf.String(), err)
	}
	buf.Reset()
	lg, err = NewLogger(LogOff, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lg.Error("should not appear")
	if buf.Len() != 0 {
		t.Errorf("off logger wrote %q", buf.String())
	}
	if _, err := NewLogger("xml", &buf); err == nil {
		t.Error("NewLogger accepted junk mode")
	}
}

func TestDebugMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("harness.cache_hits").Add(7)
	reg.Gauge("sweep.jobs_done").Set(3)
	progress := func() any {
		return map[string]int{"done": 3, "total": 10}
	}
	srv := httptest.NewServer(NewDebugMux(reg, progress))
	defer srv.Close()

	var snap Snapshot
	getJSON(t, srv.URL+"/debug/vars", &snap)
	if snap.Counters["harness.cache_hits"] != 7 || snap.Gauges["sweep.jobs_done"] != 3 {
		t.Errorf("/debug/vars = %+v", snap)
	}
	var prog map[string]int
	getJSON(t, srv.URL+"/progress", &prog)
	if prog["done"] != 3 || prog["total"] != 10 {
		t.Errorf("/progress = %v", prog)
	}
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", resp.StatusCode)
	}
}

// TestDebugMuxNil pins that a mux over nil registry/progress serves empty
// JSON instead of panicking — the CLI builds the mux before the sweep
// starts populating anything.
func TestDebugMuxNil(t *testing.T) {
	srv := httptest.NewServer(NewDebugMux(nil, nil))
	defer srv.Close()
	var snap Snapshot
	getJSON(t, srv.URL+"/debug/vars", &snap)
	if snap.Counters == nil {
		t.Error("nil registry snapshot has nil maps")
	}
	var empty map[string]any
	getJSON(t, srv.URL+"/progress", &empty)
	if len(empty) != 0 {
		t.Errorf("/progress over nil = %v", empty)
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("GET %s: content-type %q", url, ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func TestListenRejectsMalformed(t *testing.T) {
	for _, addr := range []string{"", "nope", ":badport"} {
		if _, err := Listen(addr); err == nil {
			t.Errorf("Listen(%q) accepted", addr)
		}
	}
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
}
