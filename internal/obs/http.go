package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// ValidateAddr checks a -listen flag value: a host:port (host may be
// empty, meaning all interfaces) with a numeric port in range, or a bare
// ":port". It never panics on malformed input — the CLI fuzz seed corpus
// feeds it garbage — and returns usage-quality errors.
func ValidateAddr(addr string) error {
	if addr == "" {
		return fmt.Errorf("obs: empty listen address")
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("obs: listen address %q: %v (want host:port, e.g. :8080)", addr, err)
	}
	n, err := strconv.Atoi(port)
	if err != nil {
		return fmt.Errorf("obs: listen address %q: port %q is not a number", addr, port)
	}
	if n < 0 || n > 65535 {
		return fmt.Errorf("obs: listen address %q: port %d out of range", addr, n)
	}
	if host != "" {
		if ip := net.ParseIP(host); ip == nil {
			// Hostnames are allowed (resolved at listen time); reject
			// obvious junk that SplitHostPort lets through.
			for _, r := range host {
				if r == ' ' || r == '/' {
					return fmt.Errorf("obs: listen address %q: bad host %q", addr, host)
				}
			}
		}
	}
	return nil
}

// ProgressFunc supplies /progress's JSON body: whatever live state the
// caller wants exposed (the harness Progress snapshot plus active span
// states, in fnccbench).
type ProgressFunc func() any

// NewDebugMux builds the live debug surface for a long-running sweep:
//
//	/debug/vars     registry snapshot (expvar-style JSON)
//	/debug/pprof/*  standard pprof handlers (profile, heap, trace, ...)
//	/progress       the caller's live progress value as JSON
//
// reg and progress may be nil; the endpoints then serve empty objects.
func NewDebugMux(reg *Registry, progress ProgressFunc) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, reg.Snapshot())
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		var v any
		if progress != nil {
			v = progress()
		}
		if v == nil {
			v = struct{}{}
		}
		writeJSON(w, v)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Listen validates and binds the debug address, returning the listener so
// the caller can report the bound address (":0" picks a free port) and
// serve the mux on it.
func Listen(addr string) (net.Listener, error) {
	if err := ValidateAddr(addr); err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	return l, nil
}
