//go:build unix

package obs

import "syscall"

// processCPUNs returns the process's cumulative user+system CPU time in
// nanoseconds, or 0 if rusage is unavailable. Process-wide by nature:
// span CPU deltas taken from it overlap under parallel execution.
func processCPUNs() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return (ru.Utime.Nano() + ru.Stime.Nano())
}
