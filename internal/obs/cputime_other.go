//go:build !unix

package obs

// processCPUNs reports 0 where rusage is unavailable; spans then carry
// wall time and alloc deltas only.
func processCPUNs() int64 { return 0 }
