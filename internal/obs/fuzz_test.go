package obs

import (
	"net"
	"strings"
	"testing"
)

// FuzzValidateAddr is the -listen flag's armor: whatever byte soup arrives
// on the command line must produce a clean error or a usable address,
// never a panic. Accepted addresses must then actually satisfy the
// net.SplitHostPort contract the listener path relies on.
func FuzzValidateAddr(f *testing.F) {
	for _, seed := range []string{
		"", ":8080", ":0", ":65535", ":65536", ":-1", "8080",
		"127.0.0.1:80", "localhost:http", "[::1]:443", "[::1]", "::1:80",
		"host:port:extra", " :80", "a b:80", "a/b:80", ":notaport",
		"\x00:80", ":8080\n", "☃:80", strings.Repeat(":", 100),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, addr string) {
		err := ValidateAddr(addr)
		if err != nil {
			return // rejected cleanly
		}
		// Accepted: the downstream listener path must not re-fail parsing.
		if _, _, splitErr := net.SplitHostPort(addr); splitErr != nil {
			t.Errorf("ValidateAddr(%q) accepted but SplitHostPort fails: %v", addr, splitErr)
		}
	})
}

// FuzzParseLogMode pins the -log flag surface: only text|json|off (and the
// empty default) pass, everything else errors without panicking, and
// NewLogger never returns a nil logger for an accepted mode.
func FuzzParseLogMode(f *testing.F) {
	for _, seed := range []string{"", "text", "json", "off", "JSON", "Text",
		"verbose", "0", "json ", "\x00", "json\njson"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, mode string) {
		m, err := ParseLogMode(mode)
		if err != nil {
			if mode == LogText || mode == LogJSON || mode == LogOff || mode == "" {
				t.Errorf("ParseLogMode(%q) rejected a valid mode: %v", mode, err)
			}
			return
		}
		if m != LogText && m != LogJSON && m != LogOff {
			t.Errorf("ParseLogMode(%q) = %q, not a canonical mode", mode, m)
		}
		lg, err := NewLogger(mode, nullWriter{})
		if err != nil || lg == nil {
			t.Errorf("NewLogger(%q) = %v, %v after ParseLogMode accepted it", mode, lg, err)
		}
	})
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }
