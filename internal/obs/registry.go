// Package obs is the simulator's operational-observability layer: where
// internal/telemetry watches the simulated fabric (queue depths, flow
// rates), obs watches the simulator process itself — how fast sweeps run,
// what the cache is doing, where wall-clock time goes.
//
// Three pillars, all strictly opt-in with the same zero-cost-off contract
// the telemetry layer pinned:
//
//   - a metrics Registry of lock-cheap counters/gauges/histograms with an
//     expvar-style JSON snapshot, fed by the harness (cache hits, job
//     progress) and by per-run engine stats via the scenario.Sink hook;
//   - a span Tracer that turns a sweep into a root span with one child
//     span per job (cache-lookup → simulate → cache-store phases),
//     exported as JSONL and convertible to the Chrome trace-event format
//     for Perfetto / chrome://tracing;
//   - a live HTTP debug mux serving /debug/vars (registry snapshot),
//     /debug/pprof/* and /progress for long-running sweeps.
//
// Every type is nil-safe: methods on a nil *Registry, *Tracer, or on the
// nil instruments they hand out are no-ops, so call sites instrument
// unconditionally and a nil top-level handle turns the whole layer off at
// the cost of a pointer test.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. The nil Counter discards
// adds, so holders never branch on configuration.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 (last write wins). The nil Gauge discards
// sets.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last set value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of base-2 magnitude buckets a Histogram keeps:
// bucket i counts observations in [2^(i-1), 2^i) for i > 0, bucket 0
// counts v < 1 (including zero and negatives). 64 buckets cover any
// float64 magnitude a sweep produces (nanoseconds through event counts).
const histBuckets = 64

// Histogram accumulates a value distribution in coarse base-2 buckets —
// enough to answer "are job wall times bimodal" without per-observation
// allocation. Observations take one mutex; jobs observe at millisecond
// scale, so contention is irrelevant.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [histBuckets]int64
}

// Observe records v (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
	h.mu.Unlock()
}

// bucketOf maps a value to its base-2 magnitude bucket.
func bucketOf(v float64) int {
	if v < 1 || math.IsNaN(v) {
		return 0
	}
	b := 1 + int(math.Log2(v))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// HistSnapshot is a histogram's point-in-time summary. P50/P90/P99 are
// bucket-resolution estimates (upper bound of the containing base-2
// bucket), not exact order statistics.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

func (h *Histogram) snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count == 0 {
		return s
	}
	s.Mean = h.sum / float64(h.count)
	s.P50 = h.quantileLocked(0.50)
	s.P90 = h.quantileLocked(0.90)
	s.P99 = h.quantileLocked(0.99)
	return s
}

// quantileLocked walks the buckets to the one containing rank q*count and
// returns its upper bound, clamped to the observed max (mu held).
func (h *Histogram) quantileLocked(q float64) float64 {
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen >= rank {
			upper := 1.0
			if i > 0 {
				upper = math.Ldexp(1, i) // 2^i, bucket i covers [2^(i-1), 2^i)
			}
			return math.Min(upper, h.max)
		}
	}
	return h.max
}

// Registry is a named instrument table. Instruments are created on first
// lookup and live for the registry's lifetime, so callers cache the
// pointer and pay only the atomic op per update. All methods are safe for
// concurrent use; all are no-ops on a nil *Registry (returning nil
// instruments, whose methods are themselves no-ops).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if needed (nil on a nil
// registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed (nil on a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed (nil on a
// nil registry).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is the registry's full state at one instant, the JSON body of
// /debug/vars. Maps are sorted-key stable under encoding/json.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot captures every instrument's current value. On a nil registry it
// returns an empty (but non-nil-mapped) snapshot so callers can encode it
// unconditionally.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	// Instrument reads happen outside the registry lock: a histogram
	// snapshot takes the histogram's own mutex and must not serialize
	// against concurrent instrument creation.
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.snapshot()
	}
	return s
}

// CounterNames returns the registered counter names sorted, for stable
// summary lines.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for k := range r.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
