package netsim

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Port is one transmit/receive attachment point of a Node. Each port owns
// one egress FIFO per priority class (virtual lane) plus a control lane for
// PFC frames (link-local, highest priority, immune to pausing). Classes are
// scheduled strict-priority — class 0 first — and PFC pauses each class
// independently (802.1Qbb). With the paper's single service level this
// degenerates to one FIFO.
//
// Transmission is store-and-forward: a frame occupies the transmitter for
// its serialization time, then arrives at the peer after the link's
// propagation delay.
type Port struct {
	owner Node
	index int
	net   *Network
	// uid is the port's fabric-wide creation index: the canonical collision
	// key ordering simultaneous link deliveries (sim.Engine key semantics).
	// Identical between serial and sharded builds of the same topology.
	uid int32

	// Execution context: the owning shard's engine/pool under sharded
	// execution, the Network's own otherwise (see shard.go).
	eng        *sim.Engine
	shard      *Shard
	longPauses *metrics.Counter

	// Link endpoint.
	peer  *Port
	rate  int64    // bps
	delay sim.Time // propagation

	// Egress state, per priority class.
	queues      [][]*packet.Packet
	classBytes  []int64
	paused      []bool
	pausedSince []sim.Time       // valid while paused[class]
	queueBytes  int64            // total across classes
	control     []*packet.Packet // PFC frames, transmitted first, never paused
	busy        bool

	// In-flight transmission state. txPkt is the frame occupying the
	// transmitter (at most one); wire is the propagation FIFO — frames that
	// finished serializing and are crossing the link, delivered in order
	// because every frame on a link shares the same propagation delay.
	txPkt  *packet.Packet
	txSize int
	wire   []*packet.Packet

	// Telemetry, readable by INT hooks.
	txBytes     uint64 // cumulative bytes that completed serialization
	txDataBytes uint64 // cumulative data-only bytes (utilization accounting)

	// onDequeue lets the owning node update shared-buffer/PFC accounting
	// the moment a frame starts serializing.
	onDequeue func(p *Port, pkt *packet.Packet)
	// onIdle fires when the transmitter finishes a frame and finds nothing
	// eligible to send; hosts use it to pull the next paced packet.
	onIdle func(p *Port)
}

// newPort constructs a port with the network's configured class count.
func newPort(owner Node, index int, net *Network) *Port {
	n := net.Cfg.PriorityLevels
	eng, _, sh := net.buildCtx()
	p := &Port{
		owner: owner, index: index, net: net, uid: net.nextPortUID,
		eng: eng, shard: sh, longPauses: &net.LongPauses,
		queues:      make([][]*packet.Packet, n),
		classBytes:  make([]int64, n),
		paused:      make([]bool, n),
		pausedSince: make([]sim.Time, n),
	}
	net.nextPortUID++
	if sh != nil {
		p.longPauses = &sh.longPauses
	}
	return p
}

// Owner returns the node this port belongs to.
func (p *Port) Owner() Node { return p.owner }

// Index returns the port number on its owner.
func (p *Port) Index() int { return p.index }

// Peer returns the port at the far end of the link (nil if unwired).
func (p *Port) Peer() *Port { return p.peer }

// RateBps returns the link rate.
func (p *Port) RateBps() int64 { return p.rate }

// PropDelay returns the link's one-way propagation delay.
func (p *Port) PropDelay() sim.Time { return p.delay }

// QueueBytes returns total egress occupancy across classes (excludes the
// frame currently serializing — it has left the buffer).
func (p *Port) QueueBytes() int64 { return p.queueBytes }

// ClassQueueBytes returns one class's egress occupancy.
func (p *Port) ClassQueueBytes(class int) int64 { return p.classBytes[class] }

// QueueFrames returns the number of queued frames across classes.
func (p *Port) QueueFrames() int {
	n := 0
	for _, q := range p.queues {
		n += len(q)
	}
	return n
}

// TxBytes returns cumulative bytes transmitted (all frame types).
func (p *Port) TxBytes() uint64 { return p.txBytes }

// TxDataBytes returns cumulative data bytes transmitted.
func (p *Port) TxDataBytes() uint64 { return p.txDataBytes }

// Paused reports the PFC pause state of class 0 (the only class in
// single-SL configurations).
func (p *Port) Paused() bool { return p.paused[0] }

// ClassPaused reports one class's pause state.
func (p *Port) ClassPaused(class int) bool { return p.paused[class] }

// Connect wires two ports with a full-duplex link of the given rate and
// propagation delay. Both directions share the parameters, as in the paper
// (all links 100/200/400 Gbps with 1.5 us delay).
func Connect(a, b *Port, rateBps int64, delay sim.Time) {
	if a.peer != nil || b.peer != nil {
		panic(fmt.Sprintf("netsim: port already wired (%d/%d <-> %d/%d)",
			a.owner.ID(), a.index, b.owner.ID(), b.index))
	}
	if rateBps <= 0 {
		panic("netsim: non-positive link rate")
	}
	if delay < 0 {
		panic("netsim: negative propagation delay")
	}
	a.peer, b.peer = b, a
	a.rate, b.rate = rateBps, rateBps
	a.delay, b.delay = delay, delay
	if a.shard != nil && a.shard != b.shard {
		// A boundary-crossing link: its propagation delay is a lookahead
		// candidate for the conservative parallel executor.
		a.net.sharding.observeLink(delay)
	}
}

// classIndex clamps a class value to the configured levels (frames from a
// misconfigured class land in the lowest priority rather than corrupting
// memory). It takes the raw field so eligibility checks need not build a
// throwaway packet.
func (p *Port) classIndex(c uint8) int {
	ci := int(c)
	if ci >= len(p.queues) {
		ci = len(p.queues) - 1
	}
	return ci
}

// class returns the frame's clamped priority.
func (p *Port) class(pkt *packet.Packet) int { return p.classIndex(pkt.Class) }

// enqueue appends a frame to the appropriate egress lane and starts the
// transmitter if idle.
func (p *Port) enqueue(pkt *packet.Packet) {
	if p.peer == nil {
		panic(fmt.Sprintf("netsim: enqueue on unwired port %d/%d", p.owner.ID(), p.index))
	}
	if pkt.Type.IsControl() {
		p.control = append(p.control, pkt)
	} else {
		c := p.class(pkt)
		p.queues[c] = append(p.queues[c], pkt)
		size := int64(pkt.SizeBytes())
		p.classBytes[c] += size
		p.queueBytes += size
	}
	p.kick()
}

// setClassPaused updates one class's PFC state, feeds the long-pause
// watchdog, and restarts transmission on release.
func (p *Port) setClassPaused(class int, v bool) {
	if class >= len(p.paused) {
		class = len(p.paused) - 1
	}
	was := p.paused[class]
	p.paused[class] = v
	now := p.eng.Now()
	switch {
	case v && !was:
		p.pausedSince[class] = now
	case !v && was:
		if th := p.net.Cfg.PFCLongPause; th > 0 && now-p.pausedSince[class] >= th {
			p.longPauses.Inc()
		}
	}
	if !v {
		p.kick()
		if !p.busy && p.onIdle != nil {
			p.onIdle(p)
		}
	}
}

// PausedFor returns how long the class has been continuously paused
// (0 if not paused).
func (p *Port) PausedFor(class int, now sim.Time) sim.Time {
	if !p.paused[class] {
		return 0
	}
	return now - p.pausedSince[class]
}

// next pops the highest-priority eligible frame, or nil.
func (p *Port) next() *packet.Packet {
	if len(p.control) > 0 {
		pkt := p.control[0]
		copy(p.control, p.control[1:])
		p.control = p.control[:len(p.control)-1]
		return pkt
	}
	for c := range p.queues {
		if p.paused[c] || len(p.queues[c]) == 0 {
			continue
		}
		pkt := p.queues[c][0]
		copy(p.queues[c], p.queues[c][1:])
		p.queues[c] = p.queues[c][:len(p.queues[c])-1]
		size := int64(pkt.SizeBytes())
		p.classBytes[c] -= size
		p.queueBytes -= size
		return pkt
	}
	return nil
}

// kick starts serializing the next eligible frame if the port is idle.
func (p *Port) kick() {
	if p.busy {
		return
	}
	pkt := p.next()
	if pkt == nil {
		return
	}

	p.busy = true
	if p.onDequeue != nil {
		p.onDequeue(p, pkt)
	}
	if p.net.Trace != nil {
		p.net.Trace(TraceEvent{
			Kind: TraceTx, At: p.eng.Now(),
			Node: p.owner.ID(), Port: p.index,
			Type: pkt.Type, FlowID: pkt.FlowID, Seq: pkt.Seq, Size: pkt.SizeBytes(),
		})
	}

	size := pkt.SizeBytes()
	p.txPkt = pkt
	p.txSize = size
	p.eng.AfterArg(sim.TxTime(size, p.rate), portTxDone, p)
}

// portTxDone fires when the transmitter finishes serializing a frame: the
// frame moves onto the wire (propagation FIFO), telemetry updates, and the
// next eligible frame starts. Arg-passing callback — no closure per frame.
func portTxDone(v any) {
	p := v.(*Port)
	pkt, size := p.txPkt, p.txSize
	p.txPkt = nil
	p.busy = false
	p.txBytes += uint64(size)
	if pkt.Type == packet.Data {
		p.txDataBytes += uint64(size)
	}
	if p.shard != p.peer.shard {
		// The peer lives in another shard: hand the frame to the barrier
		// exchange instead of the local wire (shard.go invariant 2). Both
		// shard fields are nil in serial mode, so this branch is free there.
		p.shard.sendRemote(p, pkt)
	} else {
		p.wire = append(p.wire, pkt)
		p.eng.AfterArgKeyed(p.delay, p.uid, portDeliver, p)
	}
	p.kick()
	if !p.busy && p.onIdle != nil {
		p.onIdle(p)
	}
}

// portDeliver completes a frame's link propagation: the oldest frame on the
// wire reaches the peer. FIFO order is exact because serialization
// completions are strictly ordered and the propagation delay is a link
// constant.
func portDeliver(v any) {
	p := v.(*Port)
	pkt := p.wire[0]
	n := copy(p.wire, p.wire[1:])
	p.wire[n] = nil
	p.wire = p.wire[:n]
	peer := p.peer
	peer.owner.Receive(pkt, peer.index)
}
