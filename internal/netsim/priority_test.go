package netsim

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Tests for the multi-service-level extension (strict-priority virtual
// lanes with per-class PFC), which the paper elides "for clarity of
// description" (§3.2.1).

func multiClassPair(t *testing.T, levels int) (*Network, *Host, *Host) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.PriorityLevels = levels
	return directPair(t, cfg, fixedScheme(gbps100), gbps100)
}

func TestPriorityLevelsValidation(t *testing.T) {
	for _, lv := range []int{0, -1, 9} {
		cfg := DefaultConfig()
		cfg.PriorityLevels = lv
		if _, err := New(cfg, fixedScheme(gbps100)); err == nil {
			t.Errorf("levels=%d accepted", lv)
		}
	}
}

func TestStrictPriorityScheduling(t *testing.T) {
	// Saturate a switch egress with class-1 traffic, then start a class-0
	// flow: the high-priority flow must see near-line service while the
	// low-priority flow is starved to the leftovers.
	cfg := DefaultConfig()
	cfg.PriorityLevels = 2
	cfg.PFCEnabled = false
	n, senders, recv, _ := chain(t, cfg, fixedScheme(gbps100), 2, 3, gbps100)

	lo := n.AddFlow(1, senders[0], recv, 4_000_000, 0)
	lo.Class = 1
	hi := n.AddFlow(2, senders[1], recv, 1_000_000, 50*sim.Microsecond)
	hi.Class = 0

	n.RunUntil(300 * sim.Microsecond)
	// By 300us the 1MB class-0 flow (80us at line rate, starting at 50us)
	// must be done; the class-1 elephant must not be.
	if !hi.Done() {
		t.Fatalf("high-priority flow starved: rcvNxt=%d", hi.RcvNxt())
	}
	if lo.Done() {
		t.Fatal("low-priority elephant finished implausibly early")
	}
	n.RunUntil(5 * sim.Millisecond)
	if !lo.Done() {
		t.Fatal("low-priority flow never completed after contention cleared")
	}
}

func TestPerClassPFCPausesOnlyThatClass(t *testing.T) {
	// Two classes share the bottleneck; a tight PFC threshold pauses the
	// overloading class at the upstream. The other class must keep
	// flowing: its completion cannot wait for the paused class's drain.
	cfg := DefaultConfig()
	cfg.PriorityLevels = 2
	cfg.PFCPauseBytes = 30_000
	cfg.PFCResumeBytes = 20_000
	n, senders, recv, sws := chain(t, cfg, fixedScheme(gbps100), 2, 3, gbps100)

	bulk := n.AddFlow(1, senders[0], recv, 3_000_000, 0)
	bulk.Class = 1
	urgent := n.AddFlow(2, senders[1], recv, 500_000, 0)
	urgent.Class = 0

	n.RunUntil(10 * sim.Millisecond)
	if !bulk.Done() || !urgent.Done() {
		t.Fatal("flows incomplete")
	}
	if n.PauseFrames.N == 0 {
		t.Fatal("no pauses under 2:1 overload with tight threshold")
	}
	// Completion order: the urgent class-0 flow (500KB) must have beaten
	// the bulk class-1 flow (3MB) decisively.
	if urgent.FinishedAt >= bulk.FinishedAt {
		t.Fatalf("urgent finished at %v, after bulk at %v", urgent.FinishedAt, bulk.FinishedAt)
	}
	_ = sws
}

func TestClassClampOnOutOfRange(t *testing.T) {
	// A frame with Class beyond the configured levels lands in the lowest
	// lane instead of panicking.
	n, h0, h1 := multiClassPair(t, 2)
	f := n.AddFlow(1, h0, h1, 10_000, 0)
	f.Class = 7 // clamped to 1
	n.RunUntil(sim.Millisecond)
	if !f.Done() {
		t.Fatal("out-of-range class flow incomplete")
	}
}

func TestAcksInheritFlowClass(t *testing.T) {
	n, h0, h1 := multiClassPair(t, 4)
	f := n.AddFlow(1, h0, h1, 10_000, 0)
	f.Class = 2
	var ackClass uint8 = 255
	n.Trace = func(ev TraceEvent) {
		if ev.Type == packet.Ack && ev.Node == h1.ID() {
			// Trace doesn't carry class; sniff via a receiver-side check
			// below instead.
			_ = ev
		}
	}
	// Direct check: generated ACKs carry the flow's class.
	probe := &classSniffCC{}
	sch := Scheme{
		Name: "sniff",
		NewSenderCC: func(*Flow) SenderCC {
			probe.fixedCC = fixedCC{rate: gbps100, window: 1 << 40}
			return probe
		},
		Receiver: echoReceiver{},
	}
	cfg := DefaultConfig()
	cfg.PriorityLevels = 4
	n2, a, b := directPair(t, cfg, sch, gbps100)
	f2 := n2.AddFlow(1, a, b, 10_000, 0)
	f2.Class = 2
	n2.RunUntil(sim.Millisecond)
	if probe.lastClass != 2 {
		t.Fatalf("ACK class = %d, want 2", probe.lastClass)
	}
	_ = f
	_ = ackClass
}

type classSniffCC struct {
	fixedCC
	lastClass uint8
}

func (c *classSniffCC) OnAck(f *Flow, ack *packet.Packet, now sim.Time) {
	c.lastClass = ack.Class
}

func TestSingleClassUnchangedTiming(t *testing.T) {
	// Regression guard: with PriorityLevels=1 the class machinery must not
	// perturb the exact single-flow timing established before the rework.
	cfg := DefaultConfig()
	n, h0, h1 := directPair(t, cfg, fixedScheme(gbps100), gbps100)
	size := int64(2 * cfg.PayloadBytes())
	f := n.AddFlow(1, h0, h1, size, 0)
	n.RunUntil(sim.Millisecond)
	want := 2*sim.TxTime(1518, gbps100) + prop
	if f.FinishedAt != want {
		t.Fatalf("FinishedAt = %v want %v", f.FinishedAt, want)
	}
}
