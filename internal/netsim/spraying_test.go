package netsim

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Per-packet spraying ablation (§6's critique of packet-spraying schemes:
// reordering needs "more robust support in RDMA networks").

// sprayDiamond builds h0 - swL = {m0|m1} = swR - h1 with *unequal* middle
// path delays so spraying actually reorders packets.
func sprayDiamond(t *testing.T, cfg Config) (*Network, *Host, *Host) {
	t.Helper()
	n := MustNew(cfg, fixedScheme(gbps100))
	h0, h1 := n.NewHost(), n.NewHost()
	swL, swR := n.NewSwitch(3), n.NewSwitch(3)
	m0, m1 := n.NewSwitch(2), n.NewSwitch(2)
	Connect(h0.Port(), swL.PortAt(0), gbps100, prop)
	Connect(h1.Port(), swR.PortAt(0), gbps100, prop)
	Connect(swL.PortAt(1), m0.PortAt(0), gbps100, prop)
	Connect(swL.PortAt(2), m1.PortAt(0), gbps100, 4*prop) // slow path
	Connect(m0.PortAt(1), swR.PortAt(1), gbps100, prop)
	Connect(m1.PortAt(1), swR.PortAt(2), gbps100, 4*prop)
	swL.SetRoute(h1.ID(), 1, 2)
	swL.SetRoute(h0.ID(), 0)
	swR.SetRoute(h0.ID(), 1, 2)
	swR.SetRoute(h1.ID(), 0)
	for _, m := range []*Switch{m0, m1} {
		m.SetRoute(h1.ID(), 1)
		m.SetRoute(h0.ID(), 0)
	}
	return n, h0, h1
}

func TestSprayingReordersButRecovers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PacketSpraying = true
	cfg.NackMinGap = sim.Microsecond
	n, h0, h1 := sprayDiamond(t, cfg)

	// Count NACK transmissions (go-back-N kicking in on reorder).
	var nacks int
	n.Trace = func(ev TraceEvent) {
		if ev.Type == packet.Nack {
			nacks++
		}
	}
	f := n.AddFlow(1, h0, h1, 500_000, 0)
	n.RunUntil(50 * sim.Millisecond)

	if !f.Done() {
		t.Fatal("sprayed flow never completed (GBN failed to recover)")
	}
	if nacks == 0 {
		t.Fatal("unequal-delay spraying produced no reordering NACKs")
	}
}

func TestNoSprayingNoReorder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PacketSpraying = false
	n, h0, h1 := sprayDiamond(t, cfg)
	var nacks int
	n.Trace = func(ev TraceEvent) {
		if ev.Type == packet.Nack {
			nacks++
		}
	}
	f := n.AddFlow(1, h0, h1, 500_000, 0)
	n.RunUntil(50 * sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if nacks != 0 {
		t.Fatalf("per-flow hashing produced %d NACKs", nacks)
	}
}

func TestSprayingWastesRetransmissions(t *testing.T) {
	// The §6 point, quantified. On an unloaded diamond spraying can even
	// finish sooner (it harvests both paths), but it pays in go-back-N
	// retransmissions: the sender must emit strictly more wire bytes than
	// the transfer needs, while pinned paths emit exactly the minimum.
	run := func(spray bool) (sent uint64, need uint64) {
		cfg := DefaultConfig()
		cfg.PacketSpraying = spray
		cfg.NackMinGap = sim.Microsecond
		n, h0, h1 := sprayDiamond(t, cfg)
		size := int64(500_000)
		f := n.AddFlow(1, h0, h1, size, 0)
		n.RunUntil(100 * sim.Millisecond)
		if !f.Done() {
			t.Fatal("incomplete")
		}
		payload := int64(cfg.PayloadBytes())
		nPkts := (size + payload - 1) / payload
		return h0.Port().TxDataBytes(), uint64(size + nPkts*66)
	}
	sprayedSent, need := run(true)
	pinnedSent, _ := run(false)
	if pinnedSent != need {
		t.Fatalf("pinned paths retransmitted: sent %d, need %d", pinnedSent, need)
	}
	if sprayedSent <= need {
		t.Fatalf("spraying sent %d <= minimum %d — no reorder waste?", sprayedSent, need)
	}
}
