// Package netsim is the packet-level network substrate: hosts with paced,
// windowed RDMA-style flows; output-queued store-and-forward switches with
// shared-buffer accounting, ECMP routing and PFC; and links with explicit
// serialization and propagation delays.
//
// The package is congestion-control agnostic. A Scheme plugs the three
// algorithm locations the paper names into the substrate:
//
//   - SenderCC   — the Reaction Point (RP) at the sending host,
//   - ReceiverCC — the ACK Generation Point at the receiving host,
//   - SwitchHook — the Congestion Point (CP) behaviour at every switch.
//
// HPCC, DCQCN and RoCC live in internal/cc; FNCC (the paper's contribution)
// lives in internal/core. All of them implement these three interfaces.
package netsim

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Config carries the fabric-wide constants of an experiment (§5 setup).
type Config struct {
	// MTUBytes is the maximum frame size (paper: 1518).
	MTUBytes int
	// BaseRTT is the fabric round-trip time used by window-based schemes
	// (HPCC's T). The topology builder computes it for the longest path.
	BaseRTT sim.Time
	// PFCEnabled turns priority flow control on (paper: on, threshold 500KB).
	PFCEnabled bool
	// PFCPauseBytes is the per-ingress-port byte threshold that triggers a
	// PAUSE toward the upstream device.
	PFCPauseBytes int64
	// PFCResumeBytes is the hysteresis level at which RESUME is sent; it
	// must be below PFCPauseBytes.
	PFCResumeBytes int64
	// SharedBufferBytes is a switch's total packet memory; data frames
	// arriving beyond it are dropped (only reachable with PFC disabled).
	SharedBufferBytes int64
	// AckEveryN makes the receiver coalesce one cumulative ACK per N
	// in-order data packets (1 = per-packet, the default; §3.2.3 notes FNCC
	// supports cumulative ACKs).
	AckEveryN int
	// SymmetricECMP selects the Observation-2 symmetric hash so data and
	// ACK packets traverse identical paths. Disabling it is the A1 ablation.
	SymmetricECMP bool
	// PacketSpraying switches ECMP from per-flow to per-packet load
	// balancing: every frame re-rolls its path. §6 notes this "likelihood
	// of packet reordering ... needs more robust support in RDMA
	// networks"; with go-back-N it manifests as NACK storms, and it
	// scrambles FNCC's per-path INT. Provided as an ablation.
	PacketSpraying bool
	// NackMinGap rate-limits out-of-order NACKs per flow.
	NackMinGap sim.Time
	// RetxTimeout is the go-back-N backstop timer (0 disables).
	RetxTimeout sim.Time
	// Seed drives all stochastic fabric behaviour (WRED marking).
	Seed int64
	// PriorityLevels is the number of service levels (virtual lanes) per
	// port. Ports schedule them strict-priority (class 0 highest) and PFC
	// pauses per class, per 802.1Qbb. The paper's experiments use 1.
	PriorityLevels int
	// PFCLongPause is the watchdog threshold: a port-class continuously
	// paused longer than this is counted in Network.LongPauses and
	// reported by DeadlockSuspects — the §2.3 "PFC deadlocks and PFC
	// storms" risk signal. Zero disables the watchdog.
	PFCLongPause sim.Time
}

// DefaultConfig returns the paper's evaluation constants.
func DefaultConfig() Config {
	return Config{
		MTUBytes:          1518,
		BaseRTT:           13 * sim.Microsecond, // dumbbell M=3 at 100G; topo overrides
		PFCEnabled:        true,
		PFCPauseBytes:     500 << 10, // 500 KB (§5.1)
		PFCResumeBytes:    450 << 10,
		SharedBufferBytes: 32 << 20,
		AckEveryN:         1,
		SymmetricECMP:     true,
		NackMinGap:        10 * sim.Microsecond,
		RetxTimeout:       4 * sim.Millisecond,
		PriorityLevels:    1,
		PFCLongPause:      500 * sim.Microsecond,
	}
}

// PayloadBytes is the application payload carried by a full-MTU segment.
func (c Config) PayloadBytes() int { return c.MTUBytes - packet.DataHeaderBytes }

func (c Config) validate() error {
	switch {
	case c.MTUBytes <= packet.DataHeaderBytes:
		return fmt.Errorf("netsim: MTU %d does not fit headers", c.MTUBytes)
	case c.AckEveryN < 1:
		return fmt.Errorf("netsim: AckEveryN must be >= 1")
	case c.PFCEnabled && c.PFCResumeBytes >= c.PFCPauseBytes:
		return fmt.Errorf("netsim: PFC resume threshold must be below pause threshold")
	case c.SharedBufferBytes <= 0:
		return fmt.Errorf("netsim: non-positive shared buffer")
	case c.PriorityLevels < 1 || c.PriorityLevels > 8:
		return fmt.Errorf("netsim: priority levels %d out of [1,8]", c.PriorityLevels)
	}
	return nil
}

// Node is anything with ports: a Host or a Switch.
type Node interface {
	// ID is the fabric-unique node identifier. Hosts and switches share one
	// ID space so INT records and routing tables are unambiguous.
	ID() int32
	// Receive ingests a frame that finished propagating on inPort's link.
	Receive(pkt *packet.Packet, inPort int)
	// PortAt returns the i-th port.
	PortAt(i int) *Port
	// NumPorts returns the port count.
	NumPorts() int
}

// SenderCC is the per-flow Reaction Point algorithm at the sending host.
type SenderCC interface {
	// Name identifies the scheme in traces and tables.
	Name() string
	// OnAck processes a cumulative acknowledgment (possibly carrying INT,
	// a fair-rate advertisement, or FNCC's N field). NACKs are delivered
	// here too: they carry the same telemetry as ACKs.
	OnAck(f *Flow, ack *packet.Packet, now sim.Time)
	// OnCnp processes a DCQCN congestion notification.
	OnCnp(f *Flow, now sim.Time)
	// WindowBytes caps the flow's in-flight bytes. Rate-only schemes return
	// a huge value.
	WindowBytes() int64
	// RateBps is the pacing rate for the flow's next packet.
	RateBps() int64
}

// ReceiverCC is the ACK Generation Point behaviour.
type ReceiverCC interface {
	// FillAck populates scheme-specific ACK fields (INT echo for HPCC, the
	// concurrent-flow count N for FNCC, fair-rate echo for RoCC) before the
	// ACK is injected. data is the packet being acknowledged; host is the
	// acknowledging receiver.
	FillAck(ack, data *packet.Packet, host *Host)
	// WantCnp reports whether a CNP should be emitted for this data packet
	// (DCQCN; others return false). Pacing is the receiver's job: the host
	// calls this for every ECN-marked packet.
	WantCnp(data *packet.Packet, host *Host, now sim.Time) bool
}

// Observable is an optional SenderCC extension: a scheme that implements it
// exposes named internal state variables (e.g. DCQCN's alpha, Swift's scaled
// target delay) for time-series sampling by internal/telemetry. The contract
// is allocation-free sampling: TelemetryVars is called once at probe attach,
// TelemetrySample on every tick into a caller-owned scratch slice.
type Observable interface {
	// TelemetryVars names the exposed variables in sample order. The result
	// must be stable for the flow's lifetime.
	TelemetryVars() []string
	// TelemetrySample writes the current value of each variable into out,
	// which has at least len(TelemetryVars()) elements. Implementations must
	// not allocate or mutate scheme state.
	TelemetrySample(out []float64)
}

// CreditSink is an optional SenderCC extension for receiver-driven schemes:
// the host delivers arriving Credit frames here.
type CreditSink interface {
	// OnCredit reports a transmission grant of the given bytes.
	OnCredit(f *Flow, bytes int64, now sim.Time)
}

// CreditPacer is an optional ReceiverCC extension for receiver-driven
// schemes: the network notifies inbound QP lifecycle so the receiver can
// run per-flow credit pacing.
type CreditPacer interface {
	// OnInboundStart fires when an inbound QP becomes live at host.
	OnInboundStart(f *Flow, host *Host)
	// OnInboundDone fires when the inbound transfer completes.
	OnInboundDone(f *Flow, host *Host)
}

// SwitchHook is the per-switch Congestion Point behaviour.
type SwitchHook interface {
	// OnEnqueue fires after pkt is appended to outPort's egress queue.
	OnEnqueue(sw *Switch, pkt *packet.Packet, outPort int)
	// OnDequeue fires when pkt begins transmission on outPort, after queue
	// accounting has been updated (queue length excludes pkt).
	OnDequeue(sw *Switch, pkt *packet.Packet, outPort int)
}

// NopHook is a SwitchHook that does nothing (plain drop-tail fabric).
type NopHook struct{}

// OnEnqueue implements SwitchHook.
func (NopHook) OnEnqueue(*Switch, *packet.Packet, int) {}

// OnDequeue implements SwitchHook.
func (NopHook) OnDequeue(*Switch, *packet.Packet, int) {}

// Scheme bundles the three plug points of one congestion-control algorithm.
type Scheme struct {
	// Name labels output rows ("FNCC", "HPCC", "DCQCN", "RoCC").
	Name string
	// NewSenderCC builds the per-flow RP state. Called once per flow at
	// AddFlow time.
	NewSenderCC func(f *Flow) SenderCC
	// Receiver is the (stateless or host-keyed) ACK generation behaviour.
	Receiver ReceiverCC
	// NewSwitchHook builds per-switch CP state; nil means NopHook.
	NewSwitchHook func(sw *Switch) SwitchHook
}
