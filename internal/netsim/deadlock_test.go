package netsim

import (
	"testing"

	"repro/internal/sim"
)

// PFC cyclic-buffer-dependency tests (§2.3: "pauses can trigger PFC
// deadlocks and PFC storms"). A three-switch ring with clockwise
// shortest-path routing creates the classic dependency cycle; tiny PFC
// thresholds plus uncontrolled line-rate senders then wedge the ring. The
// long-pause watchdog must flag it — and spanning-tree routing (the
// paper's Observation 2 / TCP-Bolt remedy, tested in internal/topo) never
// builds the cycle in the first place.

// buildRing wires three switches in a cycle, one host each, with every
// flow routed clockwise across two inter-switch links.
func buildRing(t *testing.T, cfg Config, sch Scheme) (*Network, [3]*Host, [3]*Switch) {
	t.Helper()
	n := MustNew(cfg, sch)
	var hosts [3]*Host
	var sws [3]*Switch
	for i := range sws {
		sws[i] = n.NewSwitch(3) // port 0: host, 1: clockwise out, 2: from ccw
		hosts[i] = n.NewHost()
		Connect(hosts[i].Port(), sws[i].PortAt(0), gbps100, prop)
	}
	for i := range sws {
		Connect(sws[i].PortAt(1), sws[(i+1)%3].PortAt(2), gbps100, prop)
	}
	// Clockwise routing: switch i reaches host j != i via port 1.
	for i := range sws {
		for j, h := range hosts {
			if i == j {
				sws[i].SetRoute(h.ID(), 0)
			} else {
				sws[i].SetRoute(h.ID(), 1)
			}
		}
	}
	return n, hosts, sws
}

func TestRingCyclicDependencyFlagsLongPauses(t *testing.T) {
	// Uncontrolled line-rate senders + small per-ingress PFC thresholds:
	// each inter-switch link carries two flows (2:1 overload), every
	// switch pauses its counter-clockwise neighbour, and the pause cycle
	// self-sustains. The watchdog must flag it.
	cfg := DefaultConfig()
	cfg.PFCPauseBytes = 25_000
	cfg.PFCResumeBytes = 20_000
	cfg.PFCLongPause = 200 * sim.Microsecond
	n, hosts, _ := buildRing(t, cfg, fixedScheme(gbps100))
	// Flow i: host i -> host i+2 (two clockwise hops); all three overlap
	// pairwise on every ring link.
	for i := 0; i < 3; i++ {
		n.AddFlow(uint64(i+1), hosts[i], hosts[(i+2)%3], 1<<30, 0)
	}
	n.RunUntil(3 * sim.Millisecond)

	if n.PauseFrames.N == 0 {
		t.Fatal("ring never paused — setup broken")
	}
	suspects := n.DeadlockSuspects()
	if n.LongPauses.N == 0 && len(suspects) == 0 {
		t.Fatal("cyclic dependency produced no long-pause signal")
	}
	if n.Drops.N != 0 {
		t.Fatalf("PFC on but %d drops", n.Drops.N)
	}
}

func TestRingWithFNCCStyleControlAvoidsLongPauses(t *testing.T) {
	// Same ring, same thresholds, but a window-limited CC (one BDP per
	// flow, i.e. what FNCC/HPCC enforce within an RTT of congestion):
	// queues stay under the PFC threshold and the watchdog stays quiet.
	cfg := DefaultConfig()
	cfg.PFCPauseBytes = 60_000
	cfg.PFCResumeBytes = 50_000
	cfg.PFCLongPause = 200 * sim.Microsecond
	cfg.BaseRTT = 10 * sim.Microsecond
	sch := Scheme{
		Name: "windowed",
		NewSenderCC: func(f *Flow) SenderCC {
			return &fixedCC{rate: gbps100 / 2, window: 40_000}
		},
		Receiver: echoReceiver{},
	}
	n, hosts, _ := buildRing(t, cfg, sch)
	for i := 0; i < 3; i++ {
		n.AddFlow(uint64(i+1), hosts[i], hosts[(i+2)%3], 5_000_000, 0)
	}
	n.RunUntil(3 * sim.Millisecond)
	if n.LongPauses.N != 0 || len(n.DeadlockSuspects()) != 0 {
		t.Fatalf("windowed senders still wedged the ring: %d long pauses", n.LongPauses.N)
	}
}

func TestDeadlockWatchdogDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PFCLongPause = 0
	n, hosts, _ := buildRing(t, cfg, fixedScheme(gbps100))
	n.AddFlow(1, hosts[0], hosts[2], 1_000_000, 0)
	n.RunUntil(sim.Millisecond)
	if n.LongPauses.N != 0 || n.DeadlockSuspects() != nil {
		t.Fatal("disabled watchdog reported")
	}
}

func TestPausedForAccounting(t *testing.T) {
	cfg := DefaultConfig()
	n, h0, h1 := directPair(t, cfg, fixedScheme(gbps100), gbps100)
	_ = h1
	n.Eng.Schedule(10*sim.Microsecond, func() {
		h0.Port().setClassPaused(0, true)
	})
	n.Eng.Schedule(30*sim.Microsecond, func() {
		if d := h0.Port().PausedFor(0, n.Eng.Now()); d != 20*sim.Microsecond {
			t.Errorf("PausedFor = %v want 20us", d)
		}
		h0.Port().setClassPaused(0, false)
		if d := h0.Port().PausedFor(0, n.Eng.Now()); d != 0 {
			t.Errorf("PausedFor after resume = %v", d)
		}
	})
	n.RunUntil(sim.Millisecond)
}
