package netsim

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Flow is one unidirectional RDMA-style data transfer (an RC Write over a
// queue pair). Sender-side state lives here; receiver-side state (rcvNxt,
// coalescing counters) does too, owned by the destination host.
type Flow struct {
	ID        uint64
	SrcHost   *Host
	DstHost   *Host
	SrcPort   uint16
	DstPort   uint16
	SizeBytes int64
	Start     sim.Time

	// Class is the service level the flow's frames ride on (0 = highest
	// priority; the paper's experiments put everything on one SL). Set it
	// after AddFlow, before the flow starts.
	Class uint8

	// IdealFCT is the standalone completion time used for slowdown; the
	// harness fills it from the topology before the run.
	IdealFCT sim.Time

	cc SenderCC

	// Sender state.
	sndNxt     int64
	sndUna     int64
	nextSendAt sim.Time
	finished   bool
	retxEv     sim.Event
	retxSnap   int64 // sndUna when the retx timer was armed
	lastRate   int64 // last pacing rate reported to Network.Trace

	// Receiver state.
	credited int64 // bytes granted by receiver credits (credit schemes)

	rcvNxt     int64
	rcvDone    bool
	ackPending int
	lastNackAt sim.Time
	FinishedAt sim.Time // receiver-side completion (valid once rcvDone)
	// CnpLastAt is receiver-side DCQCN state: when the last CNP for this
	// flow was emitted (CNPs are paced to one per interval per flow).
	CnpLastAt sim.Time
}

// CC returns the flow's congestion-control state (harnesses sample rates).
func (f *Flow) CC() SenderCC { return f.cc }

// SndNxt returns the next byte sequence to transmit.
func (f *Flow) SndNxt() int64 { return f.sndNxt }

// SndUna returns the lowest unacknowledged byte.
func (f *Flow) SndUna() int64 { return f.sndUna }

// Inflight returns the bytes sent but not yet cumulatively acknowledged.
func (f *Flow) Inflight() int64 { return f.sndNxt - f.sndUna }

// Finished reports sender-side completion (all bytes acknowledged).
func (f *Flow) Finished() bool { return f.finished }

// Credited returns total bytes granted by receiver credits.
func (f *Flow) Credited() int64 { return f.credited }

// RcvNxt returns the receiver's next expected byte.
func (f *Flow) RcvNxt() int64 { return f.rcvNxt }

// Done reports receiver-side completion.
func (f *Flow) Done() bool { return f.rcvDone }

// Host is an end station with a single NIC port. It originates paced,
// window-limited data flows and generates ACKs/NACKs/CNPs for inbound ones.
type Host struct {
	id   int32
	net  *Network
	port *Port

	// Execution context: the owning shard's engine/pool/collector under
	// sharded execution, the Network's own otherwise (see shard.go).
	eng   *sim.Engine
	pool  *packet.Pool
	shard *Shard
	fct   *metrics.FCTCollector

	sending []*Flow // flows this host originates, active or pending
	rr      int     // round-robin cursor over sending
	byID    map[uint64]*Flow
	inbound map[uint64]*Flow

	activeInbound int // live inbound QPs: FNCC's N (Observation 4)

	// Telemetry counters (cumulative; sampled by internal/telemetry).
	cnpRx int64 // CNP frames received by this host's sender side
	retx  int64 // go-back-N rewinds (NACK- or timeout-triggered)

	pacerEv sim.Event
}

// CnpRx returns how many CNP frames this host has received.
func (h *Host) CnpRx() int64 { return h.cnpRx }

// RetxEvents returns how many go-back-N rewinds this host's flows took.
func (h *Host) RetxEvents() int64 { return h.retx }

// ID implements Node.
func (h *Host) ID() int32 { return h.id }

// NumPorts implements Node.
func (h *Host) NumPorts() int { return 1 }

// PortAt implements Node.
func (h *Host) PortAt(i int) *Port {
	if i != 0 {
		panic(fmt.Sprintf("netsim: host %d has a single port", h.id))
	}
	return h.port
}

// Port returns the host's NIC port.
func (h *Host) Port() *Port { return h.port }

// Net returns the owning network.
func (h *Host) Net() *Network { return h.net }

// Engine returns the event engine driving this host: the Network's engine in
// serial mode, the owning shard's under sharded execution. CC
// implementations must schedule host-side timers here, never on Net().Eng.
func (h *Host) Engine() *sim.Engine { return h.eng }

// Shard returns the shard owning this host (nil when running serial).
func (h *Host) Shard() *Shard { return h.shard }

// ActiveInbound returns the number of inbound flows whose QP is live: the
// count the FNCC receiver writes into ACKs as N.
func (h *Host) ActiveInbound() int { return h.activeInbound }

// InboundFlow returns the receiver-side flow state for a live inbound QP
// (nil if unknown). Receiver CC implementations use it for per-flow pacing
// state such as DCQCN's CNP timer.
func (h *Host) InboundFlow(id uint64) *Flow { return h.inbound[id] }

// Receive implements Node. A host terminates every frame type it accepts,
// so it is a packet sink: each arm releases pkt to the pool once the
// handlers (which may read but must not retain it) return.
func (h *Host) Receive(pkt *packet.Packet, inPort int) {
	switch pkt.Type {
	case packet.PfcPause:
		h.port.setClassPaused(int(pkt.PauseClass), true)
	case packet.PfcResume:
		h.port.setClassPaused(int(pkt.PauseClass), false)
	case packet.Data:
		h.handleData(pkt)
	case packet.Ack, packet.Nack:
		h.handleAck(pkt)
	case packet.Cnp:
		h.cnpRx++
		if f, ok := h.byID[pkt.FlowID]; ok && !f.finished {
			f.cc.OnCnp(f, h.eng.Now())
		}
	case packet.Credit:
		if f, ok := h.byID[pkt.FlowID]; ok && !f.finished {
			f.credited += int64(pkt.PayloadBytes)
			if sink, ok := f.cc.(CreditSink); ok {
				sink.OnCredit(f, int64(pkt.PayloadBytes), h.eng.Now())
			}
			h.trySend()
		}
	default:
		panic(fmt.Sprintf("netsim: host %d received %v", h.id, pkt.Type))
	}
	h.pool.Put(pkt)
}

// handleData runs the receiver side: in-order delivery, go-back-N NACKs,
// cumulative ACK generation, CNP generation, and completion accounting.
func (h *Host) handleData(d *packet.Packet) {
	f, ok := h.inbound[d.FlowID]
	if !ok {
		panic(fmt.Sprintf("netsim: host %d: data for unknown flow %d", h.id, d.FlowID))
	}
	now := h.eng.Now()
	cfg := &h.net.Cfg

	// DCQCN: every ECN-marked arrival may elicit a CNP, paced by the
	// receiver CC.
	if d.ECN && h.net.Scheme.Receiver.WantCnp(d, h, now) {
		cnp := h.pool.Get()
		cnp.Type, cnp.FlowID = packet.Cnp, f.ID
		cnp.Src, cnp.Dst = h.id, f.SrcHost.id
		cnp.SrcPort, cnp.DstPort = f.DstPort, f.SrcPort
		cnp.Class = f.Class
		cnp.SendTime = now
		h.sendControl(cnp)
	}

	switch {
	case d.Seq == f.rcvNxt:
		f.rcvNxt += int64(d.PayloadBytes)
		if f.rcvNxt >= f.SizeBytes && !f.rcvDone {
			f.rcvDone = true
			f.FinishedAt = now
			h.activeInbound--
			if pacer, ok := h.net.Scheme.Receiver.(CreditPacer); ok {
				pacer.OnInboundDone(f, h)
			}
			h.completeFlow(f, now)
		}
		f.ackPending++
		if f.ackPending >= cfg.AckEveryN || d.Last || f.rcvDone {
			f.ackPending = 0
			h.sendAck(f, d, packet.Ack)
		}
	case d.Seq > f.rcvNxt:
		// Gap: request go-back-N, rate limited per flow.
		if now-f.lastNackAt >= cfg.NackMinGap {
			f.lastNackAt = now
			h.sendAck(f, d, packet.Nack)
		}
	default:
		// Stale retransmission overlap; re-ACK cumulatively so the sender
		// advances.
		h.sendAck(f, d, packet.Ack)
	}
}

// sendAck emits a cumulative ACK or NACK for flow f, letting the scheme's
// receiver fill its fields (INT echo, N, fair rate).
func (h *Host) sendAck(f *Flow, data *packet.Packet, typ packet.Type) {
	ack := h.pool.Get()
	ack.Type, ack.FlowID = typ, f.ID
	ack.Src, ack.Dst = h.id, f.SrcHost.id
	ack.SrcPort, ack.DstPort = f.DstPort, f.SrcPort
	ack.Seq = f.rcvNxt
	ack.Class = f.Class
	ack.SendTime = h.eng.Now()
	h.net.Scheme.Receiver.FillAck(ack, data, h)
	h.sendControl(ack)
}

// sendControl pushes a non-data frame straight into the NIC queue (ACKs are
// small and are not paced).
func (h *Host) sendControl(pkt *packet.Packet) {
	h.port.enqueue(pkt)
}

// SendCredit emits a receiver-driven transmission grant for inbound flow f
// (ExpressPass-style schemes; see netsim.CreditPacer).
func (h *Host) SendCredit(f *Flow, bytes int) {
	cr := h.pool.Get()
	cr.Type, cr.FlowID = packet.Credit, f.ID
	cr.Src, cr.Dst = h.id, f.SrcHost.id
	cr.SrcPort, cr.DstPort = f.DstPort, f.SrcPort
	cr.PayloadBytes = bytes
	cr.Class = f.Class
	cr.SendTime = h.eng.Now()
	h.sendControl(cr)
}

// handleAck runs the sender side on ACK/NACK arrival.
func (h *Host) handleAck(a *packet.Packet) {
	f, ok := h.byID[a.FlowID]
	if !ok {
		panic(fmt.Sprintf("netsim: host %d: ack for unknown flow %d", h.id, a.FlowID))
	}
	now := h.eng.Now()

	progressed := false
	if a.Seq > f.sndUna {
		f.sndUna = a.Seq
		progressed = true
	}
	if a.Type == packet.Nack {
		// Go-back-N rewind: resume from the receiver's cumulative point.
		if f.sndNxt > f.sndUna {
			f.sndNxt = f.sndUna
			h.retx++
		}
	}

	if !f.finished {
		// NACKs carry the same telemetry as ACKs (both traverse the return
		// path), so the RP consumes either.
		f.cc.OnAck(f, a, now)
	}

	if f.sndUna >= f.SizeBytes && !f.finished {
		f.finished = true
		h.eng.Cancel(f.retxEv)
		f.retxEv = sim.Event{}
	} else if progressed {
		h.armRetx(f)
	}
	h.trySend()
}

// startFlow activates a pending flow at its start time.
func (h *Host) startFlow(f *Flow) {
	h.sending = append(h.sending, f)
	h.trySend()
}

// trySend is the NIC scheduler: if the transmitter is free, pick the next
// eligible flow round-robin and serialize exactly one packet. Eligibility =
// has bytes, within CC window, past its pacing deadline. If every flow is
// only pacing-blocked, arm the pacer timer for the earliest deadline.
func (h *Host) trySend() {
	p := h.port
	if p.busy || p.QueueFrames() > 0 {
		return // transmitter occupied; onIdle will call back
	}
	now := h.eng.Now()
	payload := h.net.Cfg.PayloadBytes()

	soonest := sim.Time(-1)
	n := len(h.sending)
	for i := 0; i < n; i++ {
		idx := (h.rr + i) % n
		f := h.sending[idx]
		if f.finished || f.sndNxt >= f.SizeBytes {
			continue
		}
		if p.ClassPaused(p.classIndex(f.Class)) {
			continue // this service level is PFC-paused; others may go
		}
		seg := int64(payload)
		if remain := f.SizeBytes - f.sndNxt; remain < seg {
			seg = remain
		}
		if f.Inflight()+seg > f.cc.WindowBytes() {
			continue // window-limited: an ACK will reopen
		}
		if now < f.nextSendAt {
			if soonest < 0 || f.nextSendAt < soonest {
				soonest = f.nextSendAt
			}
			continue
		}
		h.rr = (idx + 1) % n
		h.sendSegment(f, int(seg), now)
		return
	}
	if soonest >= 0 {
		h.armPacer(soonest)
	}
}

// sendSegment injects one data segment of flow f.
func (h *Host) sendSegment(f *Flow, payload int, now sim.Time) {
	pkt := h.pool.Get()
	pkt.Type, pkt.FlowID = packet.Data, f.ID
	pkt.Src, pkt.Dst = h.id, f.DstHost.id
	pkt.SrcPort, pkt.DstPort = f.SrcPort, f.DstPort
	pkt.Seq, pkt.PayloadBytes = f.sndNxt, payload
	pkt.Last = f.sndNxt+int64(payload) >= f.SizeBytes
	pkt.Class = f.Class
	pkt.SendTime = now
	f.sndNxt += int64(payload)

	// Pace the next packet at the CC rate, clamped to the line rate.
	rate := f.cc.RateBps()
	if lr := h.port.RateBps(); rate > lr {
		rate = lr
	}
	if rate < 1e6 {
		rate = 1e6 // never stall completely: 1 Mbps floor
	}
	if h.net.Trace != nil && rate != f.lastRate {
		f.lastRate = rate
		h.net.Trace(TraceEvent{
			Kind: TraceRateChange, At: now,
			Node: h.id, Port: 0,
			Type: pkt.Type, FlowID: f.ID, Seq: pkt.Seq, Size: pkt.SizeBytes(),
			Rate: rate,
		})
	}
	f.nextSendAt = now + sim.TxTime(pkt.SizeBytes(), rate)

	if !f.retxEv.Pending() {
		h.armRetx(f)
	}
	h.port.enqueue(pkt)
}

// hostPacerFired is the pacing wakeup callback (arg-passing schedule path:
// no closure per wakeup).
func hostPacerFired(v any) {
	h := v.(*Host)
	h.pacerEv = sim.Event{}
	h.trySend()
}

// armPacer (re)schedules the host's single pacing wakeup.
func (h *Host) armPacer(at sim.Time) {
	if h.pacerEv.Pending() && h.pacerEv.At() <= at {
		return // an earlier-or-equal wakeup is already pending
	}
	h.eng.Cancel(h.pacerEv)
	h.pacerEv = h.eng.ScheduleArg(at, hostPacerFired, h)
}

// flowRetxFired is the go-back-N backstop callback: rewind to the last
// cumulative ACK if nothing progressed for a full RTO.
func flowRetxFired(v any) {
	f := v.(*Flow)
	h := f.SrcHost
	f.retxEv = sim.Event{}
	if f.finished {
		return
	}
	if f.sndUna == f.retxSnap && f.Inflight() > 0 {
		// No progress for a full RTO with data outstanding: rewind.
		f.sndNxt = f.sndUna
		h.retx++
		h.trySend()
	}
	h.armRetx(f)
}

// armRetx (re)arms the go-back-N backstop timer for f.
func (h *Host) armRetx(f *Flow) {
	cfg := &h.net.Cfg
	if cfg.RetxTimeout <= 0 || f.finished {
		return
	}
	h.eng.Cancel(f.retxEv)
	f.retxSnap = f.sndUna
	f.retxEv = h.eng.AfterArg(cfg.RetxTimeout, flowRetxFired, f)
}
