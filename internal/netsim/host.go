package netsim

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Flow is one unidirectional RDMA-style data transfer (an RC Write over a
// queue pair). Sender-side state lives here; receiver-side state (rcvNxt,
// coalescing counters) does too, owned by the destination host.
type Flow struct {
	ID        uint64
	SrcHost   *Host
	DstHost   *Host
	SrcPort   uint16
	DstPort   uint16
	SizeBytes int64
	Start     sim.Time

	// Class is the service level the flow's frames ride on (0 = highest
	// priority; the paper's experiments put everything on one SL). Set it
	// after AddFlow, before the flow starts.
	Class uint8

	// IdealFCT is the standalone completion time used for slowdown; the
	// harness fills it from the topology before the run.
	IdealFCT sim.Time

	cc SenderCC

	// Sender state.
	sndNxt     int64
	sndUna     int64
	nextSendAt sim.Time
	finished   bool
	retxEv     *sim.Event

	// Receiver state.
	credited int64 // bytes granted by receiver credits (credit schemes)

	rcvNxt     int64
	rcvDone    bool
	ackPending int
	lastNackAt sim.Time
	FinishedAt sim.Time // receiver-side completion (valid once rcvDone)
	// CnpLastAt is receiver-side DCQCN state: when the last CNP for this
	// flow was emitted (CNPs are paced to one per interval per flow).
	CnpLastAt sim.Time
}

// CC returns the flow's congestion-control state (harnesses sample rates).
func (f *Flow) CC() SenderCC { return f.cc }

// SndNxt returns the next byte sequence to transmit.
func (f *Flow) SndNxt() int64 { return f.sndNxt }

// SndUna returns the lowest unacknowledged byte.
func (f *Flow) SndUna() int64 { return f.sndUna }

// Inflight returns the bytes sent but not yet cumulatively acknowledged.
func (f *Flow) Inflight() int64 { return f.sndNxt - f.sndUna }

// Finished reports sender-side completion (all bytes acknowledged).
func (f *Flow) Finished() bool { return f.finished }

// Credited returns total bytes granted by receiver credits.
func (f *Flow) Credited() int64 { return f.credited }

// RcvNxt returns the receiver's next expected byte.
func (f *Flow) RcvNxt() int64 { return f.rcvNxt }

// Done reports receiver-side completion.
func (f *Flow) Done() bool { return f.rcvDone }

// Host is an end station with a single NIC port. It originates paced,
// window-limited data flows and generates ACKs/NACKs/CNPs for inbound ones.
type Host struct {
	id   int32
	net  *Network
	port *Port

	sending []*Flow // flows this host originates, active or pending
	rr      int     // round-robin cursor over sending
	byID    map[uint64]*Flow
	inbound map[uint64]*Flow

	activeInbound int // live inbound QPs: FNCC's N (Observation 4)

	pacerEv *sim.Event
}

// ID implements Node.
func (h *Host) ID() int32 { return h.id }

// NumPorts implements Node.
func (h *Host) NumPorts() int { return 1 }

// PortAt implements Node.
func (h *Host) PortAt(i int) *Port {
	if i != 0 {
		panic(fmt.Sprintf("netsim: host %d has a single port", h.id))
	}
	return h.port
}

// Port returns the host's NIC port.
func (h *Host) Port() *Port { return h.port }

// Net returns the owning network.
func (h *Host) Net() *Network { return h.net }

// ActiveInbound returns the number of inbound flows whose QP is live: the
// count the FNCC receiver writes into ACKs as N.
func (h *Host) ActiveInbound() int { return h.activeInbound }

// InboundFlow returns the receiver-side flow state for a live inbound QP
// (nil if unknown). Receiver CC implementations use it for per-flow pacing
// state such as DCQCN's CNP timer.
func (h *Host) InboundFlow(id uint64) *Flow { return h.inbound[id] }

// Receive implements Node.
func (h *Host) Receive(pkt *packet.Packet, inPort int) {
	switch pkt.Type {
	case packet.PfcPause:
		h.port.setClassPaused(int(pkt.PauseClass), true)
	case packet.PfcResume:
		h.port.setClassPaused(int(pkt.PauseClass), false)
	case packet.Data:
		h.handleData(pkt)
	case packet.Ack, packet.Nack:
		h.handleAck(pkt)
	case packet.Cnp:
		if f, ok := h.byID[pkt.FlowID]; ok && !f.finished {
			f.cc.OnCnp(f, h.net.Eng.Now())
		}
	case packet.Credit:
		if f, ok := h.byID[pkt.FlowID]; ok && !f.finished {
			f.credited += int64(pkt.PayloadBytes)
			if sink, ok := f.cc.(CreditSink); ok {
				sink.OnCredit(f, int64(pkt.PayloadBytes), h.net.Eng.Now())
			}
			h.trySend()
		}
	default:
		panic(fmt.Sprintf("netsim: host %d received %v", h.id, pkt.Type))
	}
}

// handleData runs the receiver side: in-order delivery, go-back-N NACKs,
// cumulative ACK generation, CNP generation, and completion accounting.
func (h *Host) handleData(d *packet.Packet) {
	f, ok := h.inbound[d.FlowID]
	if !ok {
		panic(fmt.Sprintf("netsim: host %d: data for unknown flow %d", h.id, d.FlowID))
	}
	now := h.net.Eng.Now()
	cfg := &h.net.Cfg

	// DCQCN: every ECN-marked arrival may elicit a CNP, paced by the
	// receiver CC.
	if d.ECN && h.net.Scheme.Receiver.WantCnp(d, h, now) {
		h.sendControl(&packet.Packet{
			Type: packet.Cnp, FlowID: f.ID,
			Src: h.id, Dst: f.SrcHost.id,
			SrcPort: f.DstPort, DstPort: f.SrcPort,
			Class:    f.Class,
			SendTime: now,
		})
	}

	switch {
	case d.Seq == f.rcvNxt:
		f.rcvNxt += int64(d.PayloadBytes)
		if f.rcvNxt >= f.SizeBytes && !f.rcvDone {
			f.rcvDone = true
			f.FinishedAt = now
			h.activeInbound--
			if pacer, ok := h.net.Scheme.Receiver.(CreditPacer); ok {
				pacer.OnInboundDone(f, h)
			}
			h.net.flowCompleted(f, now)
		}
		f.ackPending++
		if f.ackPending >= cfg.AckEveryN || d.Last || f.rcvDone {
			f.ackPending = 0
			h.sendAck(f, d, packet.Ack)
		}
	case d.Seq > f.rcvNxt:
		// Gap: request go-back-N, rate limited per flow.
		if now-f.lastNackAt >= cfg.NackMinGap {
			f.lastNackAt = now
			h.sendAck(f, d, packet.Nack)
		}
	default:
		// Stale retransmission overlap; re-ACK cumulatively so the sender
		// advances.
		h.sendAck(f, d, packet.Ack)
	}
}

// sendAck emits a cumulative ACK or NACK for flow f, letting the scheme's
// receiver fill its fields (INT echo, N, fair rate).
func (h *Host) sendAck(f *Flow, data *packet.Packet, typ packet.Type) {
	ack := &packet.Packet{
		Type: typ, FlowID: f.ID,
		Src: h.id, Dst: f.SrcHost.id,
		SrcPort: f.DstPort, DstPort: f.SrcPort,
		Seq:      f.rcvNxt,
		Class:    f.Class,
		SendTime: h.net.Eng.Now(),
	}
	h.net.Scheme.Receiver.FillAck(ack, data, h)
	h.sendControl(ack)
}

// sendControl pushes a non-data frame straight into the NIC queue (ACKs are
// small and are not paced).
func (h *Host) sendControl(pkt *packet.Packet) {
	h.port.enqueue(pkt)
}

// SendCredit emits a receiver-driven transmission grant for inbound flow f
// (ExpressPass-style schemes; see netsim.CreditPacer).
func (h *Host) SendCredit(f *Flow, bytes int) {
	h.sendControl(&packet.Packet{
		Type: packet.Credit, FlowID: f.ID,
		Src: h.id, Dst: f.SrcHost.id,
		SrcPort: f.DstPort, DstPort: f.SrcPort,
		PayloadBytes: bytes,
		Class:        f.Class,
		SendTime:     h.net.Eng.Now(),
	})
}

// handleAck runs the sender side on ACK/NACK arrival.
func (h *Host) handleAck(a *packet.Packet) {
	f, ok := h.byID[a.FlowID]
	if !ok {
		panic(fmt.Sprintf("netsim: host %d: ack for unknown flow %d", h.id, a.FlowID))
	}
	now := h.net.Eng.Now()

	progressed := false
	if a.Seq > f.sndUna {
		f.sndUna = a.Seq
		progressed = true
	}
	if a.Type == packet.Nack {
		// Go-back-N rewind: resume from the receiver's cumulative point.
		if f.sndNxt > f.sndUna {
			f.sndNxt = f.sndUna
		}
	}

	if !f.finished {
		// NACKs carry the same telemetry as ACKs (both traverse the return
		// path), so the RP consumes either.
		f.cc.OnAck(f, a, now)
	}

	if f.sndUna >= f.SizeBytes && !f.finished {
		f.finished = true
		if f.retxEv != nil {
			h.net.Eng.Cancel(f.retxEv)
			f.retxEv = nil
		}
	} else if progressed {
		h.armRetx(f)
	}
	h.trySend()
}

// startFlow activates a pending flow at its start time.
func (h *Host) startFlow(f *Flow) {
	h.sending = append(h.sending, f)
	h.trySend()
}

// trySend is the NIC scheduler: if the transmitter is free, pick the next
// eligible flow round-robin and serialize exactly one packet. Eligibility =
// has bytes, within CC window, past its pacing deadline. If every flow is
// only pacing-blocked, arm the pacer timer for the earliest deadline.
func (h *Host) trySend() {
	p := h.port
	if p.busy || p.QueueFrames() > 0 {
		return // transmitter occupied; onIdle will call back
	}
	now := h.net.Eng.Now()
	payload := h.net.Cfg.PayloadBytes()

	soonest := sim.Time(-1)
	n := len(h.sending)
	for i := 0; i < n; i++ {
		idx := (h.rr + i) % n
		f := h.sending[idx]
		if f.finished || f.sndNxt >= f.SizeBytes {
			continue
		}
		if p.ClassPaused(p.class(&packet.Packet{Class: f.Class})) {
			continue // this service level is PFC-paused; others may go
		}
		seg := int64(payload)
		if remain := f.SizeBytes - f.sndNxt; remain < seg {
			seg = remain
		}
		if f.Inflight()+seg > f.cc.WindowBytes() {
			continue // window-limited: an ACK will reopen
		}
		if now < f.nextSendAt {
			if soonest < 0 || f.nextSendAt < soonest {
				soonest = f.nextSendAt
			}
			continue
		}
		h.rr = (idx + 1) % n
		h.sendSegment(f, int(seg), now)
		return
	}
	if soonest >= 0 {
		h.armPacer(soonest)
	}
}

// sendSegment injects one data segment of flow f.
func (h *Host) sendSegment(f *Flow, payload int, now sim.Time) {
	pkt := &packet.Packet{
		Type: packet.Data, FlowID: f.ID,
		Src: h.id, Dst: f.DstHost.id,
		SrcPort: f.SrcPort, DstPort: f.DstPort,
		Seq: f.sndNxt, PayloadBytes: payload,
		Last:     f.sndNxt+int64(payload) >= f.SizeBytes,
		Class:    f.Class,
		SendTime: now,
	}
	f.sndNxt += int64(payload)

	// Pace the next packet at the CC rate, clamped to the line rate.
	rate := f.cc.RateBps()
	if lr := h.port.RateBps(); rate > lr {
		rate = lr
	}
	if rate < 1e6 {
		rate = 1e6 // never stall completely: 1 Mbps floor
	}
	f.nextSendAt = now + sim.TxTime(pkt.SizeBytes(), rate)

	if f.retxEv == nil {
		h.armRetx(f)
	}
	h.port.enqueue(pkt)
}

// armPacer (re)schedules the host's single pacing wakeup.
func (h *Host) armPacer(at sim.Time) {
	if h.pacerEv != nil && !h.pacerEv.Canceled() && h.pacerEv.At() <= at && h.pacerEv.At() >= h.net.Eng.Now() {
		return // an earlier-or-equal wakeup is already pending
	}
	if h.pacerEv != nil {
		h.net.Eng.Cancel(h.pacerEv)
	}
	h.pacerEv = h.net.Eng.Schedule(at, func() {
		h.pacerEv = nil
		h.trySend()
	})
}

// armRetx (re)arms the go-back-N backstop timer for f.
func (h *Host) armRetx(f *Flow) {
	cfg := &h.net.Cfg
	if cfg.RetxTimeout <= 0 || f.finished {
		return
	}
	if f.retxEv != nil {
		h.net.Eng.Cancel(f.retxEv)
	}
	snap := f.sndUna
	f.retxEv = h.net.Eng.After(cfg.RetxTimeout, func() {
		f.retxEv = nil
		if f.finished {
			return
		}
		if f.sndUna == snap && f.Inflight() > 0 {
			// No progress for a full RTO with data outstanding: rewind.
			f.sndNxt = f.sndUna
			h.trySend()
		}
		h.armRetx(f)
	})
}
