package netsim

import (
	"testing"

	"repro/internal/sim"
)

// forwardFixture builds the minimal forwarding path — one sender, one
// switch, one receiver — with an elephant flow that keeps the bottleneck
// busy forever, and warms it past the transient so the event and packet
// pools are primed.
func forwardFixture(rate int64) *Network {
	n := MustNew(DefaultConfig(), fixedScheme(rate))
	snd, recv := n.NewHost(), n.NewHost()
	sw := n.NewSwitch(2)
	Connect(snd.Port(), sw.PortAt(0), rate, prop)
	Connect(sw.PortAt(1), recv.Port(), rate, prop)
	sw.SetRoute(recv.ID(), 1)
	sw.SetRoute(snd.ID(), 0)
	n.AddFlow(1, snd, recv, 1<<50, 0)
	n.RunUntil(200 * sim.Microsecond) // prime pools, reach steady state
	return n
}

// BenchmarkOneHopForward measures the per-event cost of the full forwarding
// hot path in steady state: NIC send, switch ingress/egress, ACK
// generation, sender CC — all from pooled packets and pooled events. The
// acceptance bar is 0 allocs/op.
func BenchmarkOneHopForward(b *testing.B) {
	n := forwardFixture(gbps100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !n.Eng.Step() {
			b.Fatal("engine drained: fixture flow ended")
		}
	}
}

// TestForwardSteadyStateZeroAlloc pins the benchmark's claim as a test: once
// pools are warm, driving the one-hop forwarding path allocates nothing.
func TestForwardSteadyStateZeroAlloc(t *testing.T) {
	n := forwardFixture(gbps100)
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 2000; i++ {
			if !n.Eng.Step() {
				t.Fatal("engine drained")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state forwarding allocates %.1f/run (want 0)", allocs)
	}
	// The pools should be doing essentially all the work by now.
	if hr := n.Pool.Stats().HitRate(); hr < 0.85 {
		t.Fatalf("packet pool hit rate %.3f, want > 0.85", hr)
	}
	if rr := n.Eng.Stats().ReuseRate(); rr < 0.85 {
		t.Fatalf("event slot reuse rate %.3f, want > 0.85", rr)
	}
}

// TestPooledPacketLifecycle sanity-checks the single-owner rule end to end:
// after a bounded transfer drains, every pooled frame has been released
// exactly once (gets == puts; the double-Put panic guards the "at most
// once" half).
func TestPooledPacketLifecycle(t *testing.T) {
	n := MustNew(DefaultConfig(), fixedScheme(gbps100))
	snd, recv := n.NewHost(), n.NewHost()
	sw := n.NewSwitch(2)
	Connect(snd.Port(), sw.PortAt(0), gbps100, prop)
	Connect(sw.PortAt(1), recv.Port(), gbps100, prop)
	sw.SetRoute(recv.ID(), 1)
	sw.SetRoute(snd.ID(), 0)
	f := n.AddFlow(1, snd, recv, 256*1024, 0)
	n.RunUntil(10 * sim.Millisecond)
	if !f.Finished() || !f.Done() {
		t.Fatal("flow did not drain")
	}
	st := n.Pool.Stats()
	if st.Gets == 0 {
		t.Fatal("pool unused")
	}
	if st.Gets != st.Puts {
		t.Fatalf("leaked packets: %d gets vs %d puts", st.Gets, st.Puts)
	}
}
