package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Pacing correctness: property tests on inter-departure spacing.

// TestQuickPacingRespectsRate: for random sub-line pacing rates, the gap
// between consecutive data departures of a single flow is never below the
// rate's serialization interval (within one engine event of slack).
func TestQuickPacingRespectsRate(t *testing.T) {
	f := func(r uint8) bool {
		// Rates between 10G and 90G.
		rate := int64(10e9) + int64(r)%8*int64(10e9)
		cfg := DefaultConfig()
		n := MustNew(cfg, Scheme{
			Name:        "paced",
			NewSenderCC: func(*Flow) SenderCC { return &fixedCC{rate: rate, window: 1 << 40} },
			Receiver:    echoReceiver{},
		})
		h0, h1 := n.NewHost(), n.NewHost()
		Connect(h0.Port(), h1.Port(), gbps100, prop)
		n.AddFlow(1, h0, h1, 40*1452, 0)

		minGap := sim.TxTime(1518, rate)
		var last sim.Time = -1
		ok := true
		n.Trace = func(ev TraceEvent) {
			if ev.Kind != TraceTx || ev.Type != packet.Data || ev.Node != h0.ID() {
				return
			}
			if last >= 0 && ev.At-last < minGap {
				ok = false
			}
			last = ev.At
		}
		n.RunUntil(10 * sim.Millisecond)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestPacingRateChangeTakesEffect: halving the CC rate mid-flow stretches
// subsequent departures.
func TestPacingRateChangeTakesEffect(t *testing.T) {
	cc := &fixedCC{rate: gbps100, window: 1 << 40}
	n := MustNew(DefaultConfig(), Scheme{
		Name:        "switchable",
		NewSenderCC: func(*Flow) SenderCC { return cc },
		Receiver:    echoReceiver{},
	})
	h0, h1 := n.NewHost(), n.NewHost()
	Connect(h0.Port(), h1.Port(), gbps100, prop)
	n.AddFlow(1, h0, h1, 1<<20, 0)

	var gaps []sim.Time
	var last sim.Time = -1
	n.Trace = func(ev TraceEvent) {
		if ev.Kind != TraceTx || ev.Type != packet.Data {
			return
		}
		if last >= 0 {
			gaps = append(gaps, ev.At-last)
		}
		last = ev.At
	}
	n.Eng.Schedule(20*sim.Microsecond, func() { cc.rate = gbps100 / 4 })
	n.RunUntil(60 * sim.Microsecond)

	if len(gaps) < 20 {
		t.Fatalf("only %d departures", len(gaps))
	}
	early, late := gaps[2], gaps[len(gaps)-1]
	if late < 3*early {
		t.Fatalf("rate cut did not stretch departures: early %v late %v", early, late)
	}
}
