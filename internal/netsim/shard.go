package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/sim"
)

// This file implements conservative (lookahead-based) parallel execution of
// one packet simulation: the fabric is partitioned into shards (logical
// processes), each owning a contiguous set of nodes together with a private
// sim.Engine and packet.Pool. Execution proceeds in windows bounded by the
// minimum cross-shard link latency; within a window every shard drains its
// own event queue independently, and frames whose link crosses a shard
// boundary are exchanged at the barrier as timestamped messages.
//
// The design goal is bit-identical results versus the serial engine for any
// worker count. Three invariants deliver that:
//
//  1. Same-shard events keep the serial engine's order: they are scheduled
//     on the shard engine by the same code in the same relative order as the
//     serial run, so the per-shard event sequence is exactly the serial
//     sequence restricted to that shard.
//  2. Every event is ordered by the serial engine's comparator
//     (at, schedAt, key, seq), and a cross-shard delivery carries the prefix
//     (at, schedAt, key): arrival time, the transmit-completion instant that
//     scheduled it, and the source port's fabric-wide UID — the same key the
//     serial engine uses for that frame's delivery event (ports schedule
//     deliveries through AfterArgKeyed). Frames colliding on the full prefix
//     cannot exist (a port completes at most one transmit per instant), so
//     merging the remote calendar with the local queue by the prefix
//     reproduces the serial interleaving exactly. The seq tiebreak never
//     crosses the merge: it only orders same-shard events, where it equals
//     the serial restriction (invariant 1).
//  3. The window end never exceeds min-event-time + lookahead, so every
//     message generated inside a window is timestamped at or after the next
//     barrier — no shard can receive a message in its past (the classic
//     conservative-PDES soundness argument; the lookahead is the smallest
//     cross-shard propagation delay, discovered while wiring links).
//
// Observers that need a consistent global view (experiment tickers, the
// telemetry probe) register through Network.GlobalTicker: in serial mode it
// is exactly Engine.Ticker; in sharded mode the coordinator caps windows at
// each tick position and invokes the callback at the barrier, when every
// shard is parked at the tick's serial position.

// delivery is one cross-shard frame in flight: a packet that finished
// serializing on a port whose peer lives in another shard.
type delivery struct {
	at      sim.Time // arrival: transmit completion + propagation delay
	schedAt sim.Time // transmit completion (serial scheduling instant)
	srcUID  int32    // source port's fabric-wide UID (the event key)
	dst     *Port
	pkt     *packet.Packet
}

// shardKey is the cross-engine total-order prefix; see invariant 2 above.
type shardKey struct {
	at      sim.Time
	schedAt sim.Time
	key     int32
}

func (a shardKey) less(b shardKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	return a.key < b.key
}

// windowEnd is an exclusive window bound covering every event that fires
// strictly before t.
func windowEnd(t sim.Time) shardKey { return shardKey{at: t, schedAt: -1} }

// deliveryBefore orders the remote calendar by the serial comparator prefix.
// The prefix is unique across deliveries: a port completes at most one
// transmit per instant.
func deliveryBefore(a, b delivery) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	return a.srcUID < b.srcUID
}

// calendar is a binary min-heap of pending remote deliveries.
type calendar []delivery

func (c *calendar) push(d delivery) {
	q := append(*c, d)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !deliveryBefore(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*c = q
}

func (c *calendar) pop() delivery {
	q := *c
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = delivery{}
	q = q[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && deliveryBefore(q[r], q[l]) {
			child = r
		}
		if !deliveryBefore(q[child], q[i]) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	*c = q
	return top
}

// Shard is one logical process: a node partition with private engine, pool,
// FCT collector and fabric counters. Counters accumulate deltas that the
// coordinator folds into the Network totals at each run boundary.
type Shard struct {
	net   *Network
	index int
	eng   *sim.Engine
	pool  *packet.Pool
	fct   *metrics.FCTCollector

	drops       metrics.Counter
	pauseFrames metrics.Counter
	longPauses  metrics.Counter

	cal calendar     // inbound remote deliveries, merged with the engine
	out [][]delivery // outbound per destination shard, drained at barriers

	deliveries uint64 // remote frames delivered into this shard
}

// Engine returns the shard's private event engine.
func (sh *Shard) Engine() *sim.Engine { return sh.eng }

// Pool returns the shard's private packet pool.
func (sh *Shard) Pool() *packet.Pool { return sh.pool }

// Index returns the shard's position in the partition.
func (sh *Shard) Index() int { return sh.index }

// headAt returns the earliest pending time across the shard's engine and
// remote calendar.
func (sh *Shard) headAt() (sim.Time, bool) {
	ea, _, _, eok := sh.eng.HeadKey()
	if len(sh.cal) > 0 {
		if !eok || sh.cal[0].at < ea {
			return sh.cal[0].at, true
		}
	}
	return ea, eok
}

// sendRemote queues a frame that just finished serializing on p for delivery
// into the peer's shard. Called from shard execution context (single writer
// per outbox row).
func (sh *Shard) sendRemote(p *Port, pkt *packet.Packet) {
	now := p.eng.Now()
	dst := p.peer
	sh.out[dst.shard.index] = append(sh.out[dst.shard.index], delivery{
		at:      now + p.delay,
		schedAt: now,
		srcUID:  p.uid,
		dst:     dst,
		pkt:     pkt,
	})
}

// runWindow drains every event and remote delivery whose key is strictly
// below end, merging the engine queue with the calendar in serial order.
func (sh *Shard) runWindow(end shardKey) {
	for {
		ea, es, ek2, eok := sh.eng.HeadKey()
		dok := len(sh.cal) > 0
		if eok {
			ek := shardKey{at: ea, schedAt: es, key: ek2}
			// Full-prefix ties across the merge cannot exist (invariant 2);
			// the < keeps the comparison total regardless.
			if !dok || ek.less(sh.cal[0].key()) {
				if !ek.less(end) {
					return
				}
				sh.eng.Step()
				continue
			}
		} else if !dok {
			return
		}
		dk := sh.cal[0].key()
		if !dk.less(end) {
			return
		}
		d := sh.cal.pop()
		if sh.eng.Now() < d.at {
			sh.eng.AdvanceTo(d.at)
		}
		sh.deliveries++
		d.dst.owner.Receive(d.pkt, d.dst.index)
	}
}

func (d delivery) key() shardKey {
	return shardKey{at: d.at, schedAt: d.schedAt, key: d.srcUID}
}

// globalTicker is one Network.GlobalTicker registration in sharded mode.
type globalTicker struct {
	period  sim.Time
	fn      func()
	next    sim.Time
	idx     int
	stopped bool
}

// ShardStats summarizes the parallel executor's behavior for one run.
type ShardStats struct {
	// Shards is the partition size (0 when running serial).
	Shards int
	// Workers is the configured worker-goroutine count.
	Workers int
	// Lookahead is the window bound: the minimum cross-shard link delay.
	Lookahead sim.Time
	// Windows counts barrier-synchronized rounds executed.
	Windows uint64
	// Messages counts cross-shard frame deliveries exchanged at barriers.
	Messages uint64
	// Ticks counts global-ticker callbacks fired by the coordinator.
	Ticks uint64
}

// Sharding is the coordinator: it owns the partition, drives windows, routes
// messages at barriers, and fires global tickers at their serial positions.
type Sharding struct {
	net       *Network
	shards    []*Shard
	build     *Shard // partition target for nodes created now
	workers   int
	lookahead sim.Time

	tickers     []*globalTicker
	extraStarts uint64 // cross-shard flow starts split into two events
	windows     uint64
	messages    uint64
	ticks       uint64
}

// ConfigureSharding partitions the network into shards executed by workers
// goroutines. It must be called before any node is created: per-node
// execution context (engine, pool, counters) is bound at creation time.
// Topology builders call BuildShard to select the partition target while
// creating nodes, then Connect discovers the lookahead from cross-shard
// links.
func (n *Network) ConfigureSharding(shards, workers int) {
	if len(n.Hosts) > 0 || len(n.Switches) > 0 {
		panic("netsim: ConfigureSharding must run before nodes are created")
	}
	if shards < 1 {
		panic(fmt.Sprintf("netsim: invalid shard count %d", shards))
	}
	if workers < 1 {
		workers = 1
	}
	g := &Sharding{net: n, workers: workers}
	for i := 0; i < shards; i++ {
		g.shards = append(g.shards, &Shard{
			net:         n,
			index:       i,
			eng:         sim.NewEngine(),
			pool:        packet.NewPool(),
			fct:         metrics.NewFCTCollector(),
			drops:       metrics.Counter{Name: "drops"},
			pauseFrames: metrics.Counter{Name: "pause_frames"},
			longPauses:  metrics.Counter{Name: "long_pauses"},
			out:         make([][]delivery, shards),
		})
	}
	g.build = g.shards[0]
	n.sharding = g
}

// BuildShard selects the shard that owns nodes created from now on.
func (n *Network) BuildShard(i int) {
	if n.sharding == nil {
		panic("netsim: BuildShard without ConfigureSharding")
	}
	n.sharding.build = n.sharding.shards[i]
}

// Sharded reports whether the network runs under the parallel executor.
func (n *Network) Sharded() bool { return n.sharding != nil }

// Shards returns the partition (nil when running serial).
func (n *Network) Shards() []*Shard {
	if n.sharding == nil {
		return nil
	}
	return n.sharding.shards
}

// ShardStats returns the parallel executor's counters (zero value when
// running serial).
func (n *Network) ShardStats() ShardStats {
	if n.sharding == nil {
		return ShardStats{}
	}
	g := n.sharding
	return ShardStats{
		Shards:    len(g.shards),
		Workers:   g.workers,
		Lookahead: g.lookahead,
		Windows:   g.windows,
		Messages:  g.messages,
		Ticks:     g.ticks,
	}
}

// TotalEngineStats aggregates scheduler telemetry across the partition so
// the headline event count matches the serial run exactly: remote deliveries
// and coordinator ticks are events the serial engine would have processed,
// and a cross-shard flow start is one serial event split in two.
func (n *Network) TotalEngineStats() sim.EngineStats {
	total := n.Eng.Stats()
	if n.sharding == nil {
		return total
	}
	g := n.sharding
	for _, sh := range g.shards {
		s := sh.eng.Stats()
		total.Processed += s.Processed + sh.deliveries
		total.Scheduled += s.Scheduled
		total.Canceled += s.Canceled
		total.SlotReuses += s.SlotReuses
		total.Slots += s.Slots
	}
	total.Processed += g.ticks - g.extraStarts
	return total
}

// TotalPoolStats aggregates packet-pool telemetry across the partition.
func (n *Network) TotalPoolStats() packet.PoolStats {
	total := n.Pool.Stats()
	if n.sharding == nil {
		return total
	}
	for _, sh := range n.sharding.shards {
		s := sh.pool.Stats()
		total.Gets += s.Gets
		total.News += s.News
		total.Puts += s.Puts
	}
	return total
}

// GlobalTicker invokes fn every period with a consistent view of the whole
// fabric. Serial mode delegates to Engine.Ticker (bit-identical schedule);
// sharded mode fires fn at barriers where every shard is parked exactly at
// the tick's position in the serial order, so fn may read any cross-shard
// state. The first tick fires one period from now.
func (n *Network) GlobalTicker(period sim.Time, fn func()) (stop func()) {
	if n.sharding == nil {
		return n.Eng.Ticker(period, fn)
	}
	if period <= 0 {
		panic(fmt.Sprintf("netsim: non-positive ticker period %v", period))
	}
	g := n.sharding
	t := &globalTicker{
		period: period,
		fn:     fn,
		next:   n.Eng.Now() + period,
		idx:    len(g.tickers),
	}
	g.tickers = append(g.tickers, t)
	return func() { t.stopped = true }
}

// observeLink records a cross-shard link's propagation delay as a lookahead
// candidate; Connect calls it for every boundary-crossing link.
func (g *Sharding) observeLink(delay sim.Time) {
	if delay <= 0 {
		panic("netsim: cross-shard link needs positive propagation delay (lookahead)")
	}
	if g.lookahead == 0 || delay < g.lookahead {
		g.lookahead = delay
	}
}

// nextTick returns the live ticker that fires first, ordered by
// (next, schedAt, idx) where schedAt = next - period: a colliding ticker
// with the longer period scheduled its pending event earlier in the serial
// run and therefore fires first.
func (g *Sharding) nextTick() *globalTicker {
	var best *globalTicker
	for _, t := range g.tickers {
		if t.stopped {
			continue
		}
		if best == nil {
			best = t
			continue
		}
		bs, ts := best.next-best.period, t.next-t.period
		if t.next < best.next ||
			(t.next == best.next && (ts < bs || (ts == bs && t.idx < best.idx))) {
			best = t
		}
	}
	return best
}

// runWindows executes one window [*, end) on every shard, then routes the
// outboxes into the destination calendars. The barrier (WaitGroup) is the
// synchronization point that transfers packet ownership between shards.
func (g *Sharding) runWindows(end shardKey) {
	w := g.workers
	if w > len(g.shards) {
		w = len(g.shards)
	}
	if w <= 1 {
		for _, sh := range g.shards {
			sh.runWindow(end)
		}
	} else {
		var cursor atomic.Int32
		var wg sync.WaitGroup
		wg.Add(w)
		for i := 0; i < w; i++ {
			go func() {
				defer wg.Done()
				for {
					j := int(cursor.Add(1)) - 1
					if j >= len(g.shards) {
						return
					}
					g.shards[j].runWindow(end)
				}
			}()
		}
		wg.Wait()
	}
	g.windows++
	for _, sh := range g.shards {
		for di := range sh.out {
			msgs := sh.out[di]
			if len(msgs) == 0 {
				continue
			}
			dst := g.shards[di]
			for _, d := range msgs {
				dst.cal.push(d)
			}
			g.messages += uint64(len(msgs))
			sh.out[di] = sh.out[di][:0]
		}
	}
}

// runUntil is the sharded counterpart of Engine.RunUntil: it processes every
// event and tick with firing time <= limit, then aligns all clocks on limit.
func (g *Sharding) runUntil(limit sim.Time) {
	n := g.net
	if n.Trace != nil {
		panic("netsim: Network.Trace is not supported under sharded execution")
	}
	if n.OnFlowComplete != nil {
		panic("netsim: Network.OnFlowComplete is not supported under sharded execution")
	}
	endAll := windowEnd(limit + 1)
	for {
		m := sim.Time(-1)
		for _, sh := range g.shards {
			if at, ok := sh.headAt(); ok && (m < 0 || at < m) {
				m = at
			}
		}
		tk := g.nextTick()
		tickPending := tk != nil && tk.next <= limit
		if (m < 0 || m > limit) && !tickPending {
			break
		}

		end := endAll
		if m >= 0 && m <= limit && g.lookahead > 0 {
			if la := windowEnd(m + g.lookahead); la.less(end) {
				end = la
			}
		}
		fireTick := false
		if tickPending {
			// The window stops exactly at the tick's serial ordering key
			// (at, schedAt, KeyNone): keyed deliveries at the tick instant
			// still precede it, unkeyed local events at the identical
			// (at, schedAt) follow it.
			tkEnd := shardKey{at: tk.next, schedAt: tk.next - tk.period, key: sim.KeyNone}
			if !end.less(tkEnd) {
				end = tkEnd
				fireTick = true
			}
		}

		g.runWindows(end)

		if fireTick {
			at, schedAt := tk.next, tk.next-tk.period
			if n.Eng.Now() < at {
				n.Eng.AdvanceTo(at)
			}
			for _, t := range g.tickers {
				if t.stopped || t.next != at || t.next-t.period != schedAt {
					continue
				}
				g.ticks++
				t.fn()
				if !t.stopped {
					t.next = at + t.period
				}
			}
		}
	}
	for _, sh := range g.shards {
		if sh.eng.Now() < limit {
			sh.eng.AdvanceTo(limit)
		}
	}
	if n.Eng.Now() < limit {
		n.Eng.AdvanceTo(limit)
	}
	g.mergeResults()
}

// mergeResults folds per-shard counter deltas and FCT records into the
// Network-level aggregates. Records are k-way merged by
// (Finish, within-shard order, FlowID tiebreak across shards), which is the
// serial completion order: within a shard, completion order is the serial
// order restricted to the shard, and cross-shard ties at one instant are
// broken canonically.
func (g *Sharding) mergeResults() {
	n := g.net
	for _, sh := range g.shards {
		n.Drops.Add(sh.drops.N)
		sh.drops.N = 0
		n.PauseFrames.Add(sh.pauseFrames.N)
		sh.pauseFrames.N = 0
		n.LongPauses.Add(sh.longPauses.N)
		sh.longPauses.N = 0
	}
	heads := make([]int, len(g.shards))
	for {
		best := -1
		for i, sh := range g.shards {
			if heads[i] >= len(sh.fct.Records) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			a := g.shards[i].fct.Records[heads[i]]
			b := g.shards[best].fct.Records[heads[best]]
			if a.Finish < b.Finish || (a.Finish == b.Finish && a.FlowID < b.FlowID) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		n.FCT.Record(g.shards[best].fct.Records[heads[best]])
		heads[best]++
	}
	for _, sh := range g.shards {
		sh.fct.Records = sh.fct.Records[:0]
	}
}
