package netsim

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Edge-case and failure-injection tests for the substrate, beyond the
// happy paths of netsim_test.go.

func TestHostObeysPFCPause(t *testing.T) {
	// Pause the sender's NIC directly at t=10us, resume at 50us: no data
	// may serialize in between, and transmission must resume afterwards.
	cfg := DefaultConfig()
	n, h0, h1 := directPair(t, cfg, fixedScheme(gbps100), gbps100)
	f := n.AddFlow(1, h0, h1, 1_000_000, 0)

	n.Eng.Schedule(10*sim.Microsecond, func() {
		h0.Receive(&packet.Packet{Type: packet.PfcPause}, 0)
	})
	var txAtPause, txAtResume uint64
	n.Eng.Schedule(11*sim.Microsecond, func() { txAtPause = h0.Port().TxBytes() })
	n.Eng.Schedule(50*sim.Microsecond, func() {
		txAtResume = h0.Port().TxBytes()
		h0.Receive(&packet.Packet{Type: packet.PfcResume}, 0)
	})
	n.RunUntil(sim.Millisecond)

	if !f.Done() {
		t.Fatal("flow did not finish after resume")
	}
	// At most one in-flight frame may have completed serialization after
	// the pause landed.
	if txAtResume > txAtPause+1518 {
		t.Fatalf("host transmitted %d bytes while paused", txAtResume-txAtPause)
	}
}

func TestControlFramesBypassPausedQueue(t *testing.T) {
	// A paused port must still emit PFC control frames (they are what
	// un-wedges the fabric). Pause a switch egress via a deep queue and
	// verify its upstream-facing PAUSE got through while data stalled.
	cfg := DefaultConfig()
	cfg.PFCPauseBytes = 20_000
	cfg.PFCResumeBytes = 15_000
	n, senders, recv, sws := chain(t, cfg, fixedScheme(gbps100), 2, 3, gbps100)
	f0 := n.AddFlow(1, senders[0], recv, 400_000, 0)
	f1 := n.AddFlow(2, senders[1], recv, 400_000, 0)
	n.RunUntil(10 * sim.Millisecond)
	if !f0.Done() || !f1.Done() {
		t.Fatal("flows wedged under tight PFC")
	}
	if sws[0].PauseFrames == 0 || sws[0].ResumeFrames != sws[0].PauseFrames {
		t.Fatalf("pause/resume imbalance: %d/%d", sws[0].PauseFrames, sws[0].ResumeFrames)
	}
}

func TestStaleRetransmissionReAcked(t *testing.T) {
	// Deliver a duplicate data segment (seq < rcvNxt): the receiver must
	// re-ACK cumulatively rather than panic or regress.
	cfg := DefaultConfig()
	n, h0, h1 := directPair(t, cfg, fixedScheme(gbps100), gbps100)
	f := n.AddFlow(1, h0, h1, 10*1452, 0)
	n.RunUntil(5 * sim.Microsecond) // a few segments delivered
	already := f.RcvNxt()
	if already == 0 {
		t.Fatal("no progress yet; timing assumption broken")
	}
	dup := &packet.Packet{
		Type: packet.Data, FlowID: 1, Src: h0.ID(), Dst: h1.ID(),
		Seq: 0, PayloadBytes: 1452,
	}
	h1.Receive(dup, 0)
	if f.RcvNxt() != already {
		t.Fatal("duplicate moved rcvNxt")
	}
	n.RunUntil(sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow did not complete after duplicate")
	}
}

func TestRetxTimeoutRewinds(t *testing.T) {
	// Inject a gap the receiver never saw (simulate loss by advancing
	// sndNxt without transmitting... easiest real path: drop via tiny
	// buffer with NACKs disabled through a huge NackMinGap, forcing the
	// RTO path to recover).
	cfg := DefaultConfig()
	cfg.PFCEnabled = false
	cfg.SharedBufferBytes = 10_000
	cfg.NackMinGap = sim.Second // NACKs effectively off
	cfg.RetxTimeout = 200 * sim.Microsecond
	n, senders, recv, _ := chain(t, cfg, fixedScheme(gbps100), 2, 3, gbps100)
	f0 := n.AddFlow(1, senders[0], recv, 150_000, 0)
	f1 := n.AddFlow(2, senders[1], recv, 150_000, 0)
	n.RunUntil(200 * sim.Millisecond)
	if n.Drops.N == 0 {
		t.Fatal("no loss provoked")
	}
	if !f0.Done() || !f1.Done() {
		t.Fatalf("RTO did not recover (drops=%d)", n.Drops.N)
	}
}

func TestRetxDisabled(t *testing.T) {
	// RetxTimeout=0 disables the backstop; with no loss everything still
	// completes (guards the nil-timer paths).
	cfg := DefaultConfig()
	cfg.RetxTimeout = 0
	n, h0, h1 := directPair(t, cfg, fixedScheme(gbps100), gbps100)
	f := n.AddFlow(1, h0, h1, 100_000, 0)
	n.RunUntil(sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow incomplete with RTO disabled")
	}
}

func TestMinRateFloorKeepsProgress(t *testing.T) {
	// A CC that returns rate 0 must still make progress via the 1 Mbps
	// pacing floor rather than dividing by zero or stalling forever.
	sch := Scheme{
		Name:        "zero",
		NewSenderCC: func(*Flow) SenderCC { return &fixedCC{rate: 0, window: 1 << 40} },
		Receiver:    echoReceiver{},
	}
	n, h0, h1 := directPair(t, DefaultConfig(), sch, gbps100)
	f := n.AddFlow(1, h0, h1, 3000, 0)
	n.RunUntil(100 * sim.Millisecond)
	if !f.Done() {
		t.Fatal("zero-rate CC starved the flow")
	}
}

func TestTinyWindowStillSendsOneSegment(t *testing.T) {
	// Window below one MTU: the flow must still progress one segment at a
	// time (CCs clamp to >= MTU, but the substrate should not deadlock on
	// a hostile CC either — the first packet of an idle flow fits because
	// inflight is 0 and seg <= window fails... verify the documented
	// behaviour: a sub-MTU window with full-MTU segments stalls, while a
	// window of exactly one segment proceeds).
	sch := Scheme{
		Name:        "onemtu",
		NewSenderCC: func(*Flow) SenderCC { return &fixedCC{rate: gbps100, window: 1518} },
		Receiver:    echoReceiver{},
	}
	n, h0, h1 := directPair(t, DefaultConfig(), sch, gbps100)
	f := n.AddFlow(1, h0, h1, 50_000, 0)
	n.RunUntil(sim.Millisecond)
	if !f.Done() {
		t.Fatal("one-MTU window did not complete")
	}
}

func TestManyFlowsOneHostRoundRobin(t *testing.T) {
	// 8 concurrent flows from one NIC: round-robin injection must give
	// all of them forward progress and eventually complete all.
	cfg := DefaultConfig()
	n, h0, h1 := directPair(t, cfg, fixedScheme(gbps100), gbps100)
	var flows []*Flow
	for i := uint64(1); i <= 8; i++ {
		flows = append(flows, n.AddFlow(i, h0, h1, 200_000, 0))
	}
	n.RunUntil(sim.Millisecond)
	mid := 0
	for _, f := range flows {
		if f.RcvNxt() > 0 {
			mid++
		}
	}
	n.RunUntil(10 * sim.Millisecond)
	for _, f := range flows {
		if !f.Done() {
			t.Fatal("flow starved under round-robin")
		}
	}
	if mid < 8 {
		t.Fatalf("only %d/8 flows progressed concurrently", mid)
	}
}

func TestAckEveryNWithLastFlag(t *testing.T) {
	// Coalescing must not delay the final ACK: a flow whose segment count
	// is not a multiple of AckEveryN still completes promptly.
	cfg := DefaultConfig()
	cfg.AckEveryN = 4
	n, h0, h1 := directPair(t, cfg, fixedScheme(gbps100), gbps100)
	segs := 7 // 7 % 4 != 0
	f := n.AddFlow(1, h0, h1, int64(segs*cfg.PayloadBytes()), 0)
	n.RunUntil(sim.Millisecond)
	if !f.Done() || !f.Finished() {
		t.Fatal("coalesced flow did not finish (Last-flag ACK missing)")
	}
}

func TestPortAccessors(t *testing.T) {
	_, h0, h1 := directPair(t, DefaultConfig(), fixedScheme(gbps100), gbps100)
	p := h0.Port()
	if p.Owner() != h0 || p.Index() != 0 {
		t.Fatal("port identity")
	}
	if p.Peer() != h1.Port() {
		t.Fatal("peer wiring")
	}
	if p.RateBps() != gbps100 || p.PropDelay() != prop {
		t.Fatal("link params")
	}
	if p.Paused() {
		t.Fatal("fresh port paused")
	}
	if h0.NumPorts() != 1 || h0.PortAt(0) != p {
		t.Fatal("host ports")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PortAt(1) should panic on a host")
		}
	}()
	h0.PortAt(1)
}

func TestConnectValidation(t *testing.T) {
	n := MustNew(DefaultConfig(), fixedScheme(gbps100))
	a, b, c := n.NewHost(), n.NewHost(), n.NewHost()
	Connect(a.Port(), b.Port(), gbps100, prop)
	for _, fn := range []func(){
		func() { Connect(a.Port(), c.Port(), gbps100, prop) }, // a already wired
		func() { Connect(c.Port(), c.Port(), 0, prop) },       // zero rate
		func() { Connect(c.Port(), c.Port(), gbps100, -1) },   // negative delay
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTraceEventsEmitted(t *testing.T) {
	n, h0, h1 := directPair(t, DefaultConfig(), fixedScheme(gbps100), gbps100)
	var events int
	var kinds = map[TraceEventKind]int{}
	n.Trace = func(ev TraceEvent) {
		events++
		kinds[ev.Kind]++
		if ev.At > n.Eng.Now() {
			t.Error("trace event from the future")
		}
	}
	n.AddFlow(1, h0, h1, 10_000, 0)
	n.RunUntil(sim.Millisecond)
	if events == 0 || kinds[TraceTx] == 0 {
		t.Fatal("no tx trace events")
	}
	if kinds[TraceDrop] != 0 {
		t.Fatal("phantom drops")
	}
}

func TestDuplicateFlowIDPanics(t *testing.T) {
	n, h0, h1 := directPair(t, DefaultConfig(), fixedScheme(gbps100), gbps100)
	n.AddFlow(1, h0, h1, 1000, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate flow id accepted")
		}
	}()
	n.AddFlow(1, h0, h1, 1000, 0)
}

func TestSwitchZeroPortsPanics(t *testing.T) {
	n := MustNew(DefaultConfig(), fixedScheme(gbps100))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.NewSwitch(0)
}
