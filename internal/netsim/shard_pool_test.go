package netsim

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// shardedPair builds h0 <-> h1 with each host in its own shard, so every data
// frame and ACK crosses the partition boundary.
func shardedPair(t *testing.T, workers int) (*Network, *Host, *Host) {
	t.Helper()
	n := MustNew(DefaultConfig(), fixedScheme(gbps100))
	n.ConfigureSharding(2, workers)
	n.BuildShard(0)
	h0 := n.NewHost()
	n.BuildShard(1)
	h1 := n.NewHost()
	Connect(h0.Port(), h1.Port(), gbps100, prop)
	return n, h0, h1
}

// TestShardPoolsIsolated runs a sharded transfer and checks the memory
// discipline the parallel executor depends on: every shard recycles frames
// through its own private pool (traffic on both), and the root Network pool
// stays untouched — no node allocates from an engine it does not own.
func TestShardPoolsIsolated(t *testing.T) {
	n, h0, h1 := shardedPair(t, 2)
	f := n.AddFlow(1, h0, h1, 50_000, 0)
	n.RunUntil(sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}

	if root := n.Pool.Stats(); root.Gets != 0 || root.Puts != 0 {
		t.Fatalf("root pool saw traffic under sharding: %+v", root)
	}
	shards := n.Shards()
	if len(shards) != 2 {
		t.Fatalf("Shards() = %d, want 2", len(shards))
	}
	for _, sh := range shards {
		st := sh.Pool().Stats()
		// Shard 0's host builds data frames, shard 1's host builds ACKs —
		// both sides must be getting and releasing frames locally.
		if st.Gets == 0 {
			t.Fatalf("shard %d pool idle: %+v", sh.Index(), st)
		}
		if st.Puts == 0 {
			t.Fatalf("shard %d never released a frame: %+v", sh.Index(), st)
		}
	}
}

// TestTotalPoolStatsAggregates pins TotalPoolStats as the exact per-shard sum
// and checks the fabric-wide hit rate is computed over the summed counters.
func TestTotalPoolStatsAggregates(t *testing.T) {
	n, h0, h1 := shardedPair(t, 2)
	f := n.AddFlow(1, h0, h1, 50_000, 0)
	n.RunUntil(sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}

	var want packet.PoolStats
	root := n.Pool.Stats()
	want.Gets, want.News, want.Puts = root.Gets, root.News, root.Puts
	for _, sh := range n.Shards() {
		s := sh.Pool().Stats()
		want.Gets += s.Gets
		want.News += s.News
		want.Puts += s.Puts
	}
	got := n.TotalPoolStats()
	if got != want {
		t.Fatalf("TotalPoolStats = %+v, want per-shard sum %+v", got, want)
	}
	if got.Gets == 0 {
		t.Fatal("aggregate shows no pool traffic")
	}
	if hr := got.HitRate(); hr <= 0 || hr >= 1 {
		t.Fatalf("aggregate hit rate %v outside (0,1)", hr)
	}

	// Serial baseline: the same transfer on one engine builds and releases
	// exactly the same frames, so Gets and Puts must match the sharded sum.
	// News (pool misses) is partition-dependent — recycling cannot cross
	// shard pools — which is why mallocs_per_run is excluded from the
	// bit-identical differential at the scenario layer.
	ns := MustNew(DefaultConfig(), fixedScheme(gbps100))
	s0, s1 := ns.NewHost(), ns.NewHost()
	Connect(s0.Port(), s1.Port(), gbps100, prop)
	sf := ns.AddFlow(1, s0, s1, 50_000, 0)
	ns.RunUntil(sim.Millisecond)
	if !sf.Done() {
		t.Fatal("serial flow did not complete")
	}
	serial := ns.TotalPoolStats()
	if serial.Gets != got.Gets || serial.Puts != got.Puts {
		t.Fatalf("sharded pool traffic gets=%d puts=%d != serial gets=%d puts=%d",
			got.Gets, got.Puts, serial.Gets, serial.Puts)
	}
}
