package netsim

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// fixedCC is a degenerate sender CC: constant rate, huge window. It lets the
// substrate be tested independently of any real algorithm.
type fixedCC struct {
	rate   int64
	window int64
}

func (c *fixedCC) Name() string                          { return "fixed" }
func (c *fixedCC) OnAck(*Flow, *packet.Packet, sim.Time) {}
func (c *fixedCC) OnCnp(*Flow, sim.Time)                 {}
func (c *fixedCC) WindowBytes() int64                    { return c.window }
func (c *fixedCC) RateBps() int64                        { return c.rate }

// echoReceiver copies data INT into the ACK (HPCC-style echo), no CNPs.
type echoReceiver struct{}

func (echoReceiver) FillAck(ack, data *packet.Packet, _ *Host) {
	ack.Ordering = packet.SenderToReceiver
	ack.Hops = append(ack.Hops[:0], data.Hops...)
}
func (echoReceiver) WantCnp(*packet.Packet, *Host, sim.Time) bool { return false }

func fixedScheme(rate int64) Scheme {
	return Scheme{
		Name:        "fixed",
		NewSenderCC: func(*Flow) SenderCC { return &fixedCC{rate: rate, window: 1 << 40} },
		Receiver:    echoReceiver{},
	}
}

const (
	gbps100 = int64(100e9)
	prop    = sim.Time(1500 * sim.Nanosecond)
)

// directPair builds h0 <-> h1 over one link.
func directPair(t *testing.T, cfg Config, sch Scheme, rate int64) (*Network, *Host, *Host) {
	t.Helper()
	n := MustNew(cfg, sch)
	h0, h1 := n.NewHost(), n.NewHost()
	Connect(h0.Port(), h1.Port(), rate, prop)
	return n, h0, h1
}

// chain builds the Fig 10 dumbbell: nSenders hosts on switch 0, a chain of
// nSwitches switches, one receiver on the last switch. Returns the pieces.
func chain(t *testing.T, cfg Config, sch Scheme, nSenders, nSwitches int, rate int64) (*Network, []*Host, *Host, []*Switch) {
	t.Helper()
	n := MustNew(cfg, sch)
	senders := make([]*Host, nSenders)
	for i := range senders {
		senders[i] = n.NewHost()
	}
	recv := n.NewHost()
	sws := make([]*Switch, nSwitches)
	for i := range sws {
		ports := 2
		if i == 0 {
			ports = nSenders + 1
		}
		sws[i] = n.NewSwitch(ports)
	}
	// Wire senders to switch 0 (ports 0..nSenders-1), chain on high ports.
	for i, h := range senders {
		Connect(h.Port(), sws[0].PortAt(i), rate, prop)
	}
	for i := 0; i < nSwitches-1; i++ {
		up := nSenders // switch 0's uplink port
		if i > 0 {
			up = 1
		}
		Connect(sws[i].PortAt(up), sws[i+1].PortAt(0), rate, prop)
	}
	last := sws[nSwitches-1]
	lastUp := 1
	if nSwitches == 1 {
		lastUp = nSenders
	}
	Connect(last.PortAt(lastUp), recv.Port(), rate, prop)

	// Routes: downstream toward receiver, upstream toward each sender.
	for i, sw := range sws {
		up := 1
		if i == 0 {
			up = nSenders
		}
		sw.SetRoute(recv.ID(), up)
		for j, h := range senders {
			if i == 0 {
				sw.SetRoute(h.ID(), j)
			} else {
				sw.SetRoute(h.ID(), 0)
			}
		}
	}
	return n, senders, recv, sws
}

func TestDirectTransferTiming(t *testing.T) {
	cfg := DefaultConfig()
	n, h0, h1 := directPair(t, cfg, fixedScheme(gbps100), gbps100)
	size := int64(2 * cfg.PayloadBytes()) // exactly two full MTUs
	f := n.AddFlow(1, h0, h1, size, 0)
	n.RunUntil(sim.Millisecond)

	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	// Two back-to-back MTUs at 100G: finish = 2*tx(MTU) + prop.
	want := 2*sim.TxTime(1518, gbps100) + prop
	if f.FinishedAt != want {
		t.Fatalf("FinishedAt = %v want %v", f.FinishedAt, want)
	}
	if f.Inflight() != 0 || !f.Finished() {
		t.Fatal("sender state not drained")
	}
}

func TestPacingSlowerThanLine(t *testing.T) {
	cfg := DefaultConfig()
	n, h0, h1 := directPair(t, cfg, fixedScheme(gbps100/2), gbps100)
	size := int64(10 * cfg.PayloadBytes())
	f := n.AddFlow(1, h0, h1, size, 0)
	n.RunUntil(sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	// Paced at 50G, packets leave every tx(MTU@50G); last starts at
	// 9*gap, finishes serializing +tx(MTU@100G), arrives +prop.
	gap := sim.TxTime(1518, gbps100/2)
	want := 9*gap + sim.TxTime(1518, gbps100) + prop
	if f.FinishedAt != want {
		t.Fatalf("FinishedAt = %v want %v", f.FinishedAt, want)
	}
}

func TestWindowLimitsInflight(t *testing.T) {
	cfg := DefaultConfig()
	sch := Scheme{
		Name: "win",
		NewSenderCC: func(*Flow) SenderCC {
			return &fixedCC{rate: gbps100, window: 3000} // ~2 segments
		},
		Receiver: echoReceiver{},
	}
	n, h0, h1 := directPair(t, cfg, sch, gbps100)
	f := n.AddFlow(1, h0, h1, 100_000, 0)

	maxInflight := int64(0)
	stop := n.Eng.Ticker(100*sim.Nanosecond, func() {
		if v := f.Inflight(); v > maxInflight {
			maxInflight = v
		}
	})
	defer stop()
	n.RunUntil(sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	if maxInflight > 3000 {
		t.Fatalf("inflight reached %d with window 3000", maxInflight)
	}
}

func TestChainDelivery(t *testing.T) {
	cfg := DefaultConfig()
	n, senders, recv, _ := chain(t, cfg, fixedScheme(gbps100), 2, 3, gbps100)
	f0 := n.AddFlow(1, senders[0], recv, 50_000, 0)
	f1 := n.AddFlow(2, senders[1], recv, 50_000, 0)
	n.RunUntil(10 * sim.Millisecond)
	if !f0.Done() || !f1.Done() {
		t.Fatal("chain flows did not complete")
	}
	if n.Drops.N != 0 {
		t.Fatalf("unexpected drops: %d", n.Drops.N)
	}
	_ = recv
}

func TestBottleneckQueueBuilds(t *testing.T) {
	// Two line-rate senders share one egress: the bottleneck queue must
	// grow while both are active (fixed CC never slows down).
	cfg := DefaultConfig()
	cfg.PFCEnabled = false
	n, senders, recv, sws := chain(t, cfg, fixedScheme(gbps100), 2, 3, gbps100)
	n.AddFlow(1, senders[0], recv, 2_000_000, 0)
	n.AddFlow(2, senders[1], recv, 2_000_000, 0)
	n.RunUntil(50 * sim.Microsecond)
	q := sws[0].PortAt(2).QueueBytes() // switch 0 uplink
	if q < 100_000 {
		t.Fatalf("bottleneck queue only %dB after 50us of 2:1 overload", q)
	}
}

func TestPFCPausesUpstreamAndPreventsLoss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PFCPauseBytes = 30_000
	cfg.PFCResumeBytes = 20_000
	n, senders, recv, sws := chain(t, cfg, fixedScheme(gbps100), 2, 3, gbps100)
	n.AddFlow(1, senders[0], recv, 3_000_000, 0)
	n.AddFlow(2, senders[1], recv, 3_000_000, 0)
	n.RunUntil(2 * sim.Millisecond)

	if n.PauseFrames.N == 0 {
		t.Fatal("no pause frames under persistent 2:1 overload")
	}
	if n.Drops.N != 0 {
		t.Fatalf("PFC on but %d drops", n.Drops.N)
	}
	// Pauses must come from the congested switch (switch 0).
	if sws[0].PauseFrames == 0 {
		t.Fatal("congestion-point switch sent no pauses")
	}
	if sws[0].ResumeFrames == 0 {
		t.Fatal("no resumes sent")
	}
}

func TestPFCIngressAccountingDrains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PFCPauseBytes = 30_000
	cfg.PFCResumeBytes = 20_000
	n, senders, recv, sws := chain(t, cfg, fixedScheme(gbps100), 2, 3, gbps100)
	f0 := n.AddFlow(1, senders[0], recv, 500_000, 0)
	f1 := n.AddFlow(2, senders[1], recv, 500_000, 0)
	n.RunUntil(10 * sim.Millisecond)
	if !f0.Done() || !f1.Done() {
		t.Fatal("flows did not complete under PFC")
	}
	for _, sw := range sws {
		if sw.BufferedBytes() != 0 {
			t.Fatalf("switch %d buffer not drained: %d", sw.ID(), sw.BufferedBytes())
		}
		for i := range sw.ingressBytes {
			for c := range sw.ingressBytes[i] {
				if sw.ingressBytes[i][c] != 0 {
					t.Fatalf("switch %d ingress %d/%d accounting leak: %d",
						sw.ID(), i, c, sw.ingressBytes[i][c])
				}
				if sw.upstreamPaused[i][c] {
					t.Fatalf("switch %d left port %d class %d paused", sw.ID(), i, c)
				}
			}
		}
	}
}

func TestDropAndGoBackNRecovery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PFCEnabled = false
	cfg.SharedBufferBytes = 12_000 // ~8 MTUs: forces loss under 2:1
	n, senders, recv, _ := chain(t, cfg, fixedScheme(gbps100), 2, 3, gbps100)
	f0 := n.AddFlow(1, senders[0], recv, 300_000, 0)
	f1 := n.AddFlow(2, senders[1], recv, 300_000, 0)
	n.RunUntil(100 * sim.Millisecond)
	if n.Drops.N == 0 {
		t.Fatal("expected drops with tiny buffer and no PFC")
	}
	if !f0.Done() || !f1.Done() {
		t.Fatalf("flows did not recover from loss (drops=%d, f0=%v f1=%v)",
			n.Drops.N, f0.Done(), f1.Done())
	}
}

func TestHPCCStyleIntEcho(t *testing.T) {
	// With a hook that stamps INT on data at every switch, the echoed ACK
	// must carry one hop per switch, in sender->receiver order.
	cfg := DefaultConfig()
	sch := fixedScheme(gbps100)
	sch.NewSwitchHook = func(sw *Switch) SwitchHook { return dataStampHook{} }
	n, senders, recv, _ := chain(t, cfg, sch, 1, 3, gbps100)

	var sawHops int
	origReceiver := sch.Receiver
	_ = origReceiver
	f := n.AddFlow(1, senders[0], recv, 10_000, 0)
	n.RunUntil(sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	// Inspect via a second flow whose ACK we sniff through CC.
	probe := &sniffCC{}
	sch2 := sch
	sch2.NewSenderCC = func(*Flow) SenderCC { probe.fixedCC = fixedCC{rate: gbps100, window: 1 << 40}; return probe }
	n2, senders2, recv2, _ := chain(t, cfg, sch2, 1, 3, gbps100)
	n2.AddFlow(1, senders2[0], recv2, 10_000, 0)
	n2.RunUntil(sim.Millisecond)
	sawHops = probe.maxHops
	if sawHops != 3 {
		t.Fatalf("ACK carried %d INT hops, want 3", sawHops)
	}
	if probe.lastOrdering != packet.SenderToReceiver {
		t.Fatal("echoed INT should be sender->receiver ordered")
	}
	if probe.firstHopSwitch < 0 {
		t.Fatal("no hops seen")
	}
}

// dataStampHook emulates HPCC's CP: stamp egress INT on data at dequeue.
type dataStampHook struct{}

func (dataStampHook) OnEnqueue(*Switch, *packet.Packet, int) {}
func (dataStampHook) OnDequeue(sw *Switch, pkt *packet.Packet, outPort int) {
	if pkt.Type == packet.Data {
		pkt.AddHop(sw.PortINT(outPort))
	}
}

// sniffCC records telemetry of the ACKs it sees.
type sniffCC struct {
	fixedCC
	maxHops        int
	lastOrdering   packet.HopOrdering
	firstHopSwitch int32
}

func (s *sniffCC) OnAck(f *Flow, ack *packet.Packet, now sim.Time) {
	if ack.NHop() > s.maxHops {
		s.maxHops = ack.NHop()
	}
	s.lastOrdering = ack.Ordering
	if ack.NHop() > 0 {
		s.firstHopSwitch = ack.Hops[0].SwitchID
	} else {
		s.firstHopSwitch = -1
	}
}

func TestCumulativeAckCoalescing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AckEveryN = 4
	probe := &countAckCC{fixedCC: fixedCC{rate: gbps100, window: 1 << 40}}
	sch := Scheme{
		Name:        "coalesce",
		NewSenderCC: func(*Flow) SenderCC { return probe },
		Receiver:    echoReceiver{},
	}
	n, h0, h1 := directPair(t, cfg, sch, gbps100)
	segs := 16
	f := n.AddFlow(1, h0, h1, int64(segs*cfg.PayloadBytes()), 0)
	n.RunUntil(sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	if probe.acks != segs/4 {
		t.Fatalf("got %d ACKs for %d segments with AckEveryN=4", probe.acks, segs)
	}
}

type countAckCC struct {
	fixedCC
	acks int
}

func (c *countAckCC) OnAck(*Flow, *packet.Packet, sim.Time) { c.acks++ }

func TestECMPSymmetricPathsCoincide(t *testing.T) {
	// Diamond: h0 - swL - {m0|m1} - swR - h1. With symmetric hashing the
	// data and ACK of one flow must use the same middle switch.
	build := func(symmetric bool) (dataM0, dataM1, ackM0, ackM1 uint64) {
		cfg := DefaultConfig()
		cfg.SymmetricECMP = symmetric
		n := MustNew(cfg, fixedScheme(gbps100))
		h0, h1 := n.NewHost(), n.NewHost()
		swL, swR := n.NewSwitch(3), n.NewSwitch(3)
		m0, m1 := n.NewSwitch(2), n.NewSwitch(2)
		Connect(h0.Port(), swL.PortAt(0), gbps100, prop)
		Connect(h1.Port(), swR.PortAt(0), gbps100, prop)
		Connect(swL.PortAt(1), m0.PortAt(0), gbps100, prop)
		Connect(swL.PortAt(2), m1.PortAt(0), gbps100, prop)
		Connect(m0.PortAt(1), swR.PortAt(1), gbps100, prop)
		Connect(m1.PortAt(1), swR.PortAt(2), gbps100, prop)
		swL.SetRoute(h1.ID(), 1, 2)
		swL.SetRoute(h0.ID(), 0)
		swR.SetRoute(h0.ID(), 1, 2)
		swR.SetRoute(h1.ID(), 0)
		for _, m := range []*Switch{m0, m1} {
			m.SetRoute(h1.ID(), 1)
			m.SetRoute(h0.ID(), 0)
		}
		// Several flows for hash diversity.
		for i := uint64(0); i < 8; i++ {
			n.AddFlow(i+1, h0, h1, 30_000, 0)
		}
		n.RunUntil(5 * sim.Millisecond)
		// m0/m1 port 1 carries data (toward swR); port 0 carries ACKs back.
		return m0.PortAt(1).TxDataBytes(), m1.PortAt(1).TxDataBytes(),
			m0.PortAt(0).TxBytes(), m1.PortAt(0).TxBytes()
	}

	d0, d1, a0, a1 := build(true)
	if d0+d1 == 0 {
		t.Fatal("no data traversed the diamond")
	}
	if d0 == 0 || d1 == 0 {
		t.Log("all flows hashed to one path; acceptable but weakens the test")
	}
	// Symmetric: ACK bytes only where data bytes flowed.
	if (d0 == 0) != (a0 == 0) || (d1 == 0) != (a1 == 0) {
		t.Fatalf("symmetric hashing: data(m0=%d,m1=%d) acks(m0=%d,m1=%d)", d0, d1, a0, a1)
	}
	_, _, _, _ = build(false) // asymmetric mode must at least run loss-free
}

func TestActiveInboundTracksQPs(t *testing.T) {
	cfg := DefaultConfig()
	n, senders, recv, _ := chain(t, cfg, fixedScheme(gbps100), 2, 3, gbps100)
	n.AddFlow(1, senders[0], recv, 500_000, 0)
	n.AddFlow(2, senders[1], recv, 500_000, 10*sim.Microsecond)
	if recv.ActiveInbound() != 0 {
		t.Fatal("QPs active before start")
	}
	n.RunUntil(11 * sim.Microsecond)
	if recv.ActiveInbound() != 2 {
		t.Fatalf("ActiveInbound = %d want 2", recv.ActiveInbound())
	}
	n.RunUntil(10 * sim.Millisecond)
	if recv.ActiveInbound() != 0 {
		t.Fatalf("ActiveInbound = %d after completion", recv.ActiveInbound())
	}
}

func TestFCTRecorded(t *testing.T) {
	cfg := DefaultConfig()
	n, h0, h1 := directPair(t, cfg, fixedScheme(gbps100), gbps100)
	f := n.AddFlow(7, h0, h1, 5000, 2*sim.Microsecond)
	f.IdealFCT = 2 * sim.Microsecond
	var cbFlow *Flow
	n.OnFlowComplete = func(fl *Flow, at sim.Time) { cbFlow = fl }
	n.RunUntil(sim.Millisecond)
	if n.FCT.N() != 1 {
		t.Fatalf("FCT records = %d", n.FCT.N())
	}
	r := n.FCT.Records[0]
	if r.FlowID != 7 || r.SizeBytes != 5000 || r.Start != 2*sim.Microsecond {
		t.Fatalf("record = %+v", r)
	}
	if r.Ideal != 2*sim.Microsecond {
		t.Fatalf("ideal not propagated: %v", r.Ideal)
	}
	if cbFlow != f {
		t.Fatal("OnFlowComplete not invoked with the flow")
	}
}

func TestRunToCompletion(t *testing.T) {
	cfg := DefaultConfig()
	n, h0, h1 := directPair(t, cfg, fixedScheme(gbps100), gbps100)
	n.AddFlow(1, h0, h1, 100_000, 0)
	if !n.RunToCompletion(sim.Second) {
		t.Fatal("RunToCompletion returned false")
	}
	if !n.AllDone() {
		t.Fatal("AllDone false after completion")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.MTUBytes = 10 },
		func(c *Config) { c.AckEveryN = 0 },
		func(c *Config) { c.PFCResumeBytes = c.PFCPauseBytes },
		func(c *Config) { c.SharedBufferBytes = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := New(cfg, fixedScheme(gbps100)); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(DefaultConfig(), Scheme{Name: "empty"}); err == nil {
		t.Error("scheme without sender accepted")
	}
}

func TestAddFlowValidation(t *testing.T) {
	n, h0, _ := directPair(t, DefaultConfig(), fixedScheme(gbps100), gbps100)
	for _, fn := range []func(){
		func() { n.AddFlow(1, h0, h0, 100, 0) },
		func() { n.AddFlow(1, h0, n.Hosts[1], 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRouteMissingPanics(t *testing.T) {
	n := MustNew(DefaultConfig(), fixedScheme(gbps100))
	sw := n.NewSwitch(2)
	if _, err := sw.RouteTo(&packet.Packet{Dst: 99}); err == nil {
		t.Fatal("expected route error")
	}
}

func TestPortINTSnapshot(t *testing.T) {
	n := MustNew(DefaultConfig(), fixedScheme(gbps100))
	sw := n.NewSwitch(2)
	h0, h1 := n.NewHost(), n.NewHost()
	Connect(h0.Port(), sw.PortAt(0), gbps100, prop)
	Connect(h1.Port(), sw.PortAt(1), gbps100, prop)
	sw.SetRoute(h1.ID(), 1)
	sw.SetRoute(h0.ID(), 0)
	n.AddFlow(1, h0, h1, 50_000, 0)
	n.RunUntil(20 * sim.Microsecond)
	h := sw.PortINT(1)
	if h.SwitchID != sw.ID() || h.PortID != 1 || h.B != gbps100 {
		t.Fatalf("INT identity fields: %+v", h)
	}
	if h.TxBytes == 0 {
		t.Fatal("INT txBytes should be nonzero after traffic")
	}
	if h.TS != n.Eng.Now() {
		t.Fatal("INT timestamp should be 'now' for live reads")
	}
}
