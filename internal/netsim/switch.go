package netsim

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Switch is an output-queued, store-and-forward Ethernet switch with a
// shared packet buffer, ECMP routing, PFC, and a pluggable congestion-point
// hook (Fig 8's architecture: parser -> ingress pipeline -> fabric -> egress
// pipeline with INT insertion).
type Switch struct {
	id    int32
	net   *Network
	ports []*Port
	hook  SwitchHook

	// Execution context: the owning shard's engine/pool/counters under
	// sharded execution, the Network's own otherwise (see shard.go).
	eng     *sim.Engine
	pool    *packet.Pool
	shard   *Shard
	dropsC  *metrics.Counter
	pausesC *metrics.Counter

	// routes maps destination host ID to the equal-cost egress port set.
	routes map[int32][]int

	// Shared-buffer occupancy across all egress queues (data frames only).
	buffered int64

	// PFC state, per ingress port and priority class: bytes resident in the
	// shared buffer that entered through the (port, class), and whether we
	// have paused that class at its upstream.
	ingressBytes   [][]int64
	upstreamPaused [][]bool

	// PauseFrames counts PAUSE frames *sent by this switch* (Fig 3's
	// "pause frames at the congestion point").
	PauseFrames int64
	// ResumeFrames counts RESUME frames sent.
	ResumeFrames int64
	// Drops counts data frames lost to shared-buffer exhaustion.
	Drops int64
	// EcnMarks counts data frames the congestion-point hook ECN-marked at
	// this switch (sampled by internal/telemetry).
	EcnMarks int64
}

// ID implements Node.
func (s *Switch) ID() int32 { return s.id }

// NumPorts implements Node.
func (s *Switch) NumPorts() int { return len(s.ports) }

// PortAt implements Node.
func (s *Switch) PortAt(i int) *Port { return s.ports[i] }

// Net returns the owning network (hooks use it for configuration).
func (s *Switch) Net() *Network { return s.net }

// Engine returns the event engine driving this switch: the Network's engine
// in serial mode, the owning shard's under sharded execution. Switch hooks
// must arm their timers here, never on Net().Eng.
func (s *Switch) Engine() *sim.Engine { return s.eng }

// Shard returns the shard owning this switch (nil when running serial).
func (s *Switch) Shard() *Shard { return s.shard }

// Hook returns the installed congestion-point hook.
func (s *Switch) Hook() SwitchHook { return s.hook }

// BufferedBytes returns current shared-buffer occupancy.
func (s *Switch) BufferedBytes() int64 { return s.buffered }

// SetRoute installs the equal-cost egress port set toward a destination
// host. The topology builder calls this while wiring the fabric.
func (s *Switch) SetRoute(dst int32, ports ...int) {
	if len(ports) == 0 {
		panic(fmt.Sprintf("netsim: switch %d: empty route to %d", s.id, dst))
	}
	for _, p := range ports {
		if p < 0 || p >= len(s.ports) {
			panic(fmt.Sprintf("netsim: switch %d: route port %d out of range", s.id, p))
		}
	}
	s.routes[dst] = append([]int(nil), ports...)
}

// RouteTo returns the port the switch selects for pkt, applying ECMP
// hashing over the configured equal-cost set (Fig 5: with symmetric hashing
// and symmetric tables, a data packet and its ACK pick the same links).
func (s *Switch) RouteTo(pkt *packet.Packet) (int, error) {
	set, ok := s.routes[pkt.Dst]
	if !ok {
		return 0, fmt.Errorf("netsim: switch %d has no route to host %d", s.id, pkt.Dst)
	}
	if len(set) == 1 {
		return set[0], nil
	}
	var h uint64
	if s.net.Cfg.SymmetricECMP {
		h = packet.SymmetricHash(pkt.Tuple())
	} else {
		h = packet.AsymmetricHash(pkt.Tuple())
	}
	if s.net.Cfg.PacketSpraying {
		// Per-packet load balancing: fold the sequence number in so each
		// frame re-rolls its next hop.
		h ^= packet.Mix64(uint64(pkt.Seq) + 0x9e3779b97f4a7c15)
	}
	return set[h%uint64(len(set))], nil
}

// Receive implements Node: the switch's ingress engine (Algorithm 1 lines
// 1-5) plus forwarding and buffer/PFC bookkeeping.
func (s *Switch) Receive(pkt *packet.Packet, inPort int) {
	switch pkt.Type {
	case packet.PfcPause:
		s.ports[inPort].setClassPaused(int(pkt.PauseClass), true)
		s.pool.Put(pkt) // PFC is link-local: consumed here
		return
	case packet.PfcResume:
		s.ports[inPort].setClassPaused(int(pkt.PauseClass), false)
		s.pool.Put(pkt)
		return
	}

	// Algorithm 1 line 3: record the arrival port in packet metadata. For
	// ACKs this is, by Observation 3, the egress port of the corresponding
	// request-path data — the index FNCC's egress engine uses for its
	// All_INT_Table lookup.
	pkt.InputPort = int32(inPort)

	outPort, err := s.RouteTo(pkt)
	if err != nil {
		panic(err) // static topologies: a missing route is a builder bug
	}

	size := int64(pkt.SizeBytes())
	if pkt.Type == packet.Data {
		if s.buffered+size > s.net.Cfg.SharedBufferBytes {
			s.Drops++
			s.dropsC.Inc()
			if s.net.Trace != nil {
				s.net.Trace(TraceEvent{
					Kind: TraceDrop, At: s.eng.Now(),
					Node: s.id, Port: -1,
					Type: pkt.Type, FlowID: pkt.FlowID, Seq: pkt.Seq, Size: pkt.SizeBytes(),
				})
			}
			s.pool.Put(pkt) // dropped: the buffer was its last owner
			return
		}
		s.buffered += size
		if s.net.Cfg.PFCEnabled {
			class := s.clampClass(int(pkt.Class))
			s.ingressBytes[inPort][class] += size
			s.checkPause(inPort, class)
		}
	}

	s.ports[outPort].enqueue(pkt)
	if pkt.Type == packet.Data {
		if s.net.Trace != nil {
			s.net.Trace(TraceEvent{
				Kind: TraceEnqueue, At: s.eng.Now(),
				Node: s.id, Port: outPort,
				Type: pkt.Type, FlowID: pkt.FlowID, Seq: pkt.Seq, Size: pkt.SizeBytes(),
			})
		}
		wasECN := pkt.ECN
		s.hook.OnEnqueue(s, pkt, outPort)
		if pkt.ECN && !wasECN {
			s.EcnMarks++
			if s.net.Trace != nil {
				s.net.Trace(TraceEvent{
					Kind: TraceMark, At: s.eng.Now(),
					Node: s.id, Port: outPort,
					Type: pkt.Type, FlowID: pkt.FlowID, Seq: pkt.Seq, Size: pkt.SizeBytes(),
				})
			}
		}
	}
}

// onPortDequeue runs when a frame starts serializing on an egress port:
// releases shared buffer, updates PFC accounting, then lets the hook stamp
// telemetry (Algorithm 1 lines 6-10 for FNCC; HPCC stamps data instead).
func (s *Switch) onPortDequeue(p *Port, pkt *packet.Packet) {
	if pkt.Type == packet.Data {
		s.buffered -= int64(pkt.SizeBytes())
		if s.net.Cfg.PFCEnabled {
			in := int(pkt.InputPort)
			class := s.clampClass(int(pkt.Class))
			s.ingressBytes[in][class] -= int64(pkt.SizeBytes())
			s.checkResume(in, class)
		}
	}
	s.hook.OnDequeue(s, pkt, p.index)
	if pkt.Type == packet.Data && s.net.Trace != nil {
		s.net.Trace(TraceEvent{
			Kind: TraceDequeue, At: s.eng.Now(),
			Node: s.id, Port: p.index,
			Type: pkt.Type, FlowID: pkt.FlowID, Seq: pkt.Seq, Size: pkt.SizeBytes(),
		})
	}
}

func (s *Switch) clampClass(c int) int {
	if max := s.net.Cfg.PriorityLevels; c >= max {
		return max - 1
	}
	return c
}

// checkPause sends a per-class PAUSE to inPort's upstream when that
// class's buffer share crosses the threshold.
func (s *Switch) checkPause(inPort, class int) {
	if s.upstreamPaused[inPort][class] || s.ingressBytes[inPort][class] < s.net.Cfg.PFCPauseBytes {
		return
	}
	s.upstreamPaused[inPort][class] = true
	s.PauseFrames++
	s.pausesC.Inc()
	if s.net.Trace != nil {
		s.net.Trace(TraceEvent{
			Kind: TracePause, At: s.eng.Now(),
			Node: s.id, Port: inPort,
			Type: packet.PfcPause, Seq: int64(class),
		})
	}
	pf := s.pool.Get()
	pf.Type, pf.PauseClass = packet.PfcPause, uint8(class)
	s.ports[inPort].enqueue(pf)
}

// checkResume releases the upstream class once occupancy falls to the
// hysteresis level.
func (s *Switch) checkResume(inPort, class int) {
	if !s.upstreamPaused[inPort][class] || s.ingressBytes[inPort][class] > s.net.Cfg.PFCResumeBytes {
		return
	}
	s.upstreamPaused[inPort][class] = false
	s.ResumeFrames++
	if s.net.Trace != nil {
		s.net.Trace(TraceEvent{
			Kind: TraceResume, At: s.eng.Now(),
			Node: s.id, Port: inPort,
			Type: packet.PfcResume, Seq: int64(class),
		})
	}
	pf := s.pool.Get()
	pf.Type, pf.PauseClass = packet.PfcResume, uint8(class)
	s.ports[inPort].enqueue(pf)
}

// PortINT captures the live INT record of an egress port — the
// {B, TS, txBytes, qLen} tuple both HPCC (stamped on data) and FNCC (stored
// in the All_INT_Table and stamped on ACKs) use.
func (s *Switch) PortINT(port int) packet.IntHop {
	p := s.ports[port]
	return packet.IntHop{
		SwitchID: s.id,
		PortID:   int32(port),
		B:        p.RateBps(),
		TS:       s.eng.Now(),
		TxBytes:  p.TxBytes(),
		QLen:     uint32(p.QueueBytes()),
	}
}
