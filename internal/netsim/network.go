package netsim

import (
	"fmt"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Network owns the simulation: engine, configuration, scheme, nodes, flows
// and fabric-wide counters. Build order is New -> NewHost/NewSwitch ->
// Connect -> SetRoute -> AddFlow -> Run.
type Network struct {
	Eng *sim.Engine
	// Pool recycles packets across the fabric. Single-threaded like the
	// engine; see the ownership rules on packet.Pool.
	Pool *packet.Pool
	// Rand is the fabric's deterministic random source (WRED marking);
	// derived from Cfg.Seed.
	Rand   *sim.RNG
	Cfg    Config
	Scheme Scheme

	Hosts    []*Host
	Switches []*Switch
	flows    []*Flow

	nextNodeID int32

	// Drops counts data frames lost fabric-wide.
	Drops metrics.Counter
	// PauseFrames counts PAUSE frames sent fabric-wide (Fig 3).
	PauseFrames metrics.Counter
	// LongPauses counts pause episodes exceeding Cfg.PFCLongPause — the
	// PFC-storm/deadlock risk signal of §2.3.
	LongPauses metrics.Counter
	// FCT collects completed flows (receiver-side completion).
	FCT *metrics.FCTCollector

	// OnFlowComplete, when set, observes each completion after FCT records
	// it (harnesses hang per-figure logic here).
	OnFlowComplete func(f *Flow, at sim.Time)

	// Trace, when set, observes typed events fabric-wide: frame
	// transmissions, drops, enqueues/dequeues, ECN marks, PFC
	// pause/resume and sender rate changes (see TraceEventKind and
	// internal/trace for recorders). Every emit site nil-checks this
	// field, so the disabled path costs one predictable branch; leave nil
	// in performance-sensitive runs. Incompatible with sharded execution
	// (trace emission is not synchronized across shards).
	Trace func(ev TraceEvent)

	// sharding, when non-nil, switches Run* to the conservative parallel
	// executor (see shard.go). Configured before node creation.
	sharding *Sharding

	// nextPortUID numbers ports in creation order (see Port.uid).
	nextPortUID int32
}

// TraceEventKind discriminates trace records.
type TraceEventKind uint8

// Trace record kinds.
const (
	// TraceTx is a frame beginning serialization on a port.
	TraceTx TraceEventKind = iota
	// TraceDrop is a data frame lost to buffer exhaustion.
	TraceDrop
	// TraceEnqueue is a data frame appended to a switch egress queue.
	TraceEnqueue
	// TraceDequeue is a data frame leaving a switch egress queue.
	TraceDequeue
	// TraceMark is a data frame ECN-marked by the congestion-point hook.
	TraceMark
	// TracePause is a PFC PAUSE emitted toward an upstream device (Seq
	// carries the priority class).
	TracePause
	// TraceResume is the matching PFC RESUME (Seq carries the class).
	TraceResume
	// TraceRateChange is a sender picking a new pacing rate for a flow
	// (Rate carries the new value in bits/s).
	TraceRateChange
)

var traceKindNames = [...]string{
	TraceTx:         "tx",
	TraceDrop:       "drop",
	TraceEnqueue:    "enq",
	TraceDequeue:    "deq",
	TraceMark:       "mark",
	TracePause:      "pause",
	TraceResume:     "resume",
	TraceRateChange: "rate",
}

// String returns the kind's short name as used in rendered traces.
func (k TraceEventKind) String() string {
	if int(k) < len(traceKindNames) {
		return traceKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// TraceEvent is one observation delivered to Network.Trace.
type TraceEvent struct {
	Kind TraceEventKind
	At   sim.Time
	// Node and Port locate the event (Port is -1 for drops at ingress).
	Node int32
	Port int
	// Packet summary (the packet itself is owned by the simulation).
	Type   packet.Type
	FlowID uint64
	Seq    int64
	Size   int
	// Rate is the new pacing rate for TraceRateChange events (bits/s).
	Rate int64
}

// New builds an empty network with the given configuration and scheme.
func New(cfg Config, scheme Scheme) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if scheme.NewSenderCC == nil || scheme.Receiver == nil {
		return nil, fmt.Errorf("netsim: scheme %q missing sender or receiver", scheme.Name)
	}
	return &Network{
		Eng:         sim.NewEngine(),
		Pool:        packet.NewPool(),
		Rand:        sim.NewRNG(cfg.Seed),
		Cfg:         cfg,
		Scheme:      scheme,
		Drops:       metrics.Counter{Name: "drops"},
		PauseFrames: metrics.Counter{Name: "pause_frames"},
		LongPauses:  metrics.Counter{Name: "long_pauses"},
		FCT:         metrics.NewFCTCollector(),
	}, nil
}

// MustNew is New for tests and examples; it panics on error.
func MustNew(cfg Config, scheme Scheme) *Network {
	n, err := New(cfg, scheme)
	if err != nil {
		panic(err)
	}
	return n
}

func (n *Network) allocID() int32 {
	id := n.nextNodeID
	n.nextNodeID++
	return id
}

// buildCtx returns the execution context (engine, pool, shard) nodes created
// now must bind to: the Network's own in serial mode, the current build
// shard's under sharding.
func (n *Network) buildCtx() (*sim.Engine, *packet.Pool, *Shard) {
	if n.sharding == nil {
		return n.Eng, n.Pool, nil
	}
	sh := n.sharding.build
	return sh.eng, sh.pool, sh
}

// NewHost adds a single-NIC end station.
func (n *Network) NewHost() *Host {
	eng, pool, sh := n.buildCtx()
	h := &Host{
		id:      n.allocID(),
		net:     n,
		eng:     eng,
		pool:    pool,
		shard:   sh,
		fct:     n.FCT,
		byID:    make(map[uint64]*Flow),
		inbound: make(map[uint64]*Flow),
	}
	if sh != nil {
		h.fct = sh.fct
	}
	h.port = newPort(h, 0, n)
	h.port.onIdle = func(*Port) { h.trySend() }
	n.Hosts = append(n.Hosts, h)
	return h
}

// NewSwitch adds a switch with the given port count, installing the
// scheme's congestion-point hook.
func (n *Network) NewSwitch(ports int) *Switch {
	if ports < 1 {
		panic("netsim: switch needs at least one port")
	}
	eng, pool, sh := n.buildCtx()
	s := &Switch{
		id:             n.allocID(),
		net:            n,
		eng:            eng,
		pool:           pool,
		shard:          sh,
		dropsC:         &n.Drops,
		pausesC:        &n.PauseFrames,
		routes:         make(map[int32][]int),
		ingressBytes:   make([][]int64, ports),
		upstreamPaused: make([][]bool, ports),
	}
	if sh != nil {
		s.dropsC = &sh.drops
		s.pausesC = &sh.pauseFrames
	}
	for i := range s.ingressBytes {
		s.ingressBytes[i] = make([]int64, n.Cfg.PriorityLevels)
		s.upstreamPaused[i] = make([]bool, n.Cfg.PriorityLevels)
	}
	s.ports = make([]*Port, ports)
	for i := range s.ports {
		s.ports[i] = newPort(s, i, n)
		s.ports[i].onDequeue = s.onPortDequeue
	}
	if n.Scheme.NewSwitchHook != nil {
		s.hook = n.Scheme.NewSwitchHook(s)
	} else {
		s.hook = NopHook{}
	}
	n.Switches = append(n.Switches, s)
	return s
}

// Flows returns all flows added so far.
func (n *Network) Flows() []*Flow { return n.flows }

// AddFlow registers a transfer of size bytes from src to dst starting at
// start. The flow's QP exists at both ends from start onward (the receiver
// counts it in N from that moment, matching Observation 4's "the transport
// layer at the receiver possesses the number of concurrencies").
func (n *Network) AddFlow(id uint64, src, dst *Host, size int64, start sim.Time) *Flow {
	if src == dst {
		panic("netsim: flow with src == dst")
	}
	if size <= 0 {
		panic("netsim: non-positive flow size")
	}
	f := &Flow{
		ID: id, SrcHost: src, DstHost: dst,
		// RoCEv2: UDP destination port 4791; source port varies per QP for
		// ECMP entropy.
		SrcPort:   uint16(49152 + id%16384),
		DstPort:   4791,
		SizeBytes: size,
		Start:     start,
	}
	f.cc = n.Scheme.NewSenderCC(f)
	if _, dup := src.byID[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate flow id %d at host %d", id, src.id))
	}
	src.byID[id] = f
	n.flows = append(n.flows, f)
	if src.shard != nil && src.shard != dst.shard {
		// Cross-shard flow: the activation event splits into a receiver half
		// and a sender half, each scheduled on its own shard's engine at the
		// same instant (they commute — their first interaction is the first
		// data frame, at least one propagation delay later).
		dst.eng.ScheduleArg(start, flowStartDst, f)
		src.eng.ScheduleArg(start, flowStartSrc, f)
	} else {
		src.eng.ScheduleArg(start, flowStart, f)
	}
	return f
}

// flowStart activates a flow at its start time: the QP becomes live at both
// ends and the sender is kicked.
func flowStart(v any) {
	f := v.(*Flow)
	flowStartReceiver(f)
	f.SrcHost.startFlow(f)
}

// flowStartSrc is the sender half of a cross-shard activation.
func flowStartSrc(v any) {
	f := v.(*Flow)
	f.SrcHost.startFlow(f)
}

// flowStartDst is the receiver half of a cross-shard activation. It counts
// itself as an extra start the moment it fires (not at AddFlow time) so
// TotalEngineStats stays exact at horizons before every flow has started.
func flowStartDst(v any) {
	f := v.(*Flow)
	atomic.AddUint64(&f.DstHost.net.sharding.extraStarts, 1)
	flowStartReceiver(f)
}

// flowStartReceiver makes the QP live at the destination (the receiver
// counts it in N from that moment; see AddFlow).
func flowStartReceiver(f *Flow) {
	dst := f.DstHost
	dst.inbound[f.ID] = f
	dst.activeInbound++
	if pacer, ok := dst.net.Scheme.Receiver.(CreditPacer); ok {
		pacer.OnInboundStart(f, dst)
	}
}

// completeFlow records receiver-side completion into the host's collector
// (the Network's in serial mode, the shard's under sharding — merged at run
// boundaries).
func (h *Host) completeFlow(f *Flow, at sim.Time) {
	h.fct.Record(metrics.FCTRecord{
		FlowID:    f.ID,
		SizeBytes: f.SizeBytes,
		Start:     f.Start,
		Finish:    at,
		Ideal:     f.IdealFCT,
	})
	if h.net.OnFlowComplete != nil {
		h.net.OnFlowComplete(f, at)
	}
}

// RunUntil drives the simulation to the given time.
func (n *Network) RunUntil(t sim.Time) {
	if n.sharding != nil {
		n.sharding.runUntil(t)
		return
	}
	n.Eng.RunUntil(t)
}

// DeadlockSuspect identifies a port-class paused beyond the watchdog
// threshold at inspection time.
type DeadlockSuspect struct {
	Node      int32
	Port      int
	Class     int
	PausedFor sim.Time
}

// DeadlockSuspects scans all ports for classes continuously paused longer
// than Cfg.PFCLongPause right now. A non-empty result after traffic should
// have drained indicates a cyclic buffer dependency — the PFC deadlock the
// paper's §2.3 warns about (and spanning-tree routing, Observation 2,
// prevents).
func (n *Network) DeadlockSuspects() []DeadlockSuspect {
	th := n.Cfg.PFCLongPause
	if th <= 0 {
		return nil
	}
	now := n.Eng.Now()
	var out []DeadlockSuspect
	scan := func(node Node) {
		for i := 0; i < node.NumPorts(); i++ {
			p := node.PortAt(i)
			for c := 0; c < n.Cfg.PriorityLevels; c++ {
				if d := p.PausedFor(c, now); d >= th {
					out = append(out, DeadlockSuspect{
						Node: node.ID(), Port: i, Class: c, PausedFor: d,
					})
				}
			}
		}
	}
	for _, h := range n.Hosts {
		scan(h)
	}
	for _, s := range n.Switches {
		scan(s)
	}
	return out
}

// AllDone reports whether every added flow has completed at the receiver.
func (n *Network) AllDone() bool {
	for _, f := range n.flows {
		if !f.rcvDone {
			return false
		}
	}
	return true
}

// RunToCompletion alternates event processing with completion checks until
// all flows finish or the hard deadline passes; it returns true on full
// completion. Used by FCT experiments, which must drain the tail.
func (n *Network) RunToCompletion(deadline sim.Time) bool {
	const slice = 100 * sim.Microsecond
	for n.Eng.Now() < deadline {
		next := n.Eng.Now() + slice
		if next > deadline {
			next = deadline
		}
		n.RunUntil(next)
		if n.AllDone() {
			return true
		}
	}
	return n.AllDone()
}
